#include "util/snapshot.h"

#include <cstring>

#include "util/assertions.h"
#include "util/crc32.h"

namespace crkhacc::util {

PagedSnapshot::PagedSnapshot(std::size_t page_bytes, bool align_regions)
    : page_bytes_(page_bytes), align_regions_(align_regions) {
  CHECK(page_bytes_ > 0);
}

void PagedSnapshot::capture(std::span<const Region> regions) {
  Buffer& buffer = buffers_[active_ == 0 ? 1 : 0];
  buffer.region_bytes.resize(regions.size());
  buffer.region_offset.resize(regions.size());
  std::size_t total = 0;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (align_regions_ && total % page_bytes_ != 0) {
      total += page_bytes_ - total % page_bytes_;
    }
    buffer.region_offset[r] = total;
    buffer.region_bytes[r] = regions[r].bytes;
    total += regions[r].bytes;
  }
  if (align_regions_) {
    buffer.data.assign(total, 0);  // zero-fill the alignment padding
  } else {
    buffer.data.resize(total);  // packed layout: fully overwritten below
  }
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (regions[r].bytes > 0) {
      std::memcpy(buffer.data.data() + buffer.region_offset[r],
                  regions[r].data, regions[r].bytes);
    }
  }
  const std::size_t num_pages = (total + page_bytes_ - 1) / page_bytes_;
  buffer.page_crc.resize(num_pages);
  for (std::size_t p = 0; p < num_pages; ++p) {
    const std::size_t begin = p * page_bytes_;
    const std::size_t size = std::min(page_bytes_, total - begin);
    buffer.page_crc[p] = crc32(buffer.data.data() + begin, size);
  }
  // Publish only once the copy and CRCs are complete: the previous
  // capture stays restorable right up to this point.
  active_ = (active_ == 0) ? 1 : 0;
  if (captures_ < 2) ++captures_;
}

bool PagedSnapshot::verify_buffer(const Buffer& buffer) const {
  const std::size_t total = buffer.data.size();
  for (std::size_t p = 0; p < buffer.page_crc.size(); ++p) {
    const std::size_t begin = p * page_bytes_;
    const std::size_t size = std::min(page_bytes_, total - begin);
    if (crc32(buffer.data.data() + begin, size) != buffer.page_crc[p]) {
      return false;
    }
  }
  return true;
}

bool PagedSnapshot::verify() const {
  CHECK(valid());
  return verify_buffer(buffers_[active_]);
}

bool PagedSnapshot::restore(std::span<const MutableRegion> regions) const {
  CHECK(valid());
  const Buffer& buffer = buffers_[active_];
  CHECK(regions.size() == buffer.region_bytes.size());
  for (std::size_t r = 0; r < regions.size(); ++r) {
    CHECK(regions[r].bytes == buffer.region_bytes[r]);
  }
  if (!verify_buffer(buffer)) return false;
  for (std::size_t r = 0; r < regions.size(); ++r) {
    if (regions[r].bytes > 0) {
      std::memcpy(regions[r].data,
                  buffer.data.data() + buffer.region_offset[r],
                  regions[r].bytes);
    }
  }
  return true;
}

std::size_t PagedSnapshot::bytes() const {
  return valid() ? buffers_[active_].data.size() : 0;
}

std::size_t PagedSnapshot::pages() const {
  return valid() ? buffers_[active_].page_crc.size() : 0;
}

std::size_t PagedSnapshot::num_regions() const {
  return valid() ? buffers_[active_].region_bytes.size() : 0;
}

std::size_t PagedSnapshot::region_bytes(std::size_t r) const {
  CHECK(valid());
  CHECK(r < buffers_[active_].region_bytes.size());
  return buffers_[active_].region_bytes[r];
}

std::span<const std::uint32_t> PagedSnapshot::page_crcs() const {
  CHECK(valid());
  return buffers_[active_].page_crc;
}

std::size_t PagedSnapshot::region_first_page(std::size_t r) const {
  CHECK(valid());
  CHECK(align_regions_);
  CHECK(r < buffers_[active_].region_offset.size());
  return buffers_[active_].region_offset[r] / page_bytes_;
}

std::size_t PagedSnapshot::region_num_pages(std::size_t r) const {
  CHECK(valid());
  CHECK(align_regions_);
  const std::size_t bytes = region_bytes(r);
  return (bytes + page_bytes_ - 1) / page_bytes_;
}

std::optional<std::vector<std::uint8_t>> PagedSnapshot::changed_pages() const {
  CHECK(valid());
  if (captures_ < 2) return std::nullopt;
  const Buffer& cur = buffers_[active_];
  const Buffer& prev = buffers_[active_ == 0 ? 1 : 0];
  if (cur.region_bytes != prev.region_bytes ||
      cur.page_crc.size() != prev.page_crc.size()) {
    return std::nullopt;  // layout changed; no page correspondence
  }
  std::vector<std::uint8_t> changed(cur.page_crc.size(), 0);
  for (std::size_t p = 0; p < cur.page_crc.size(); ++p) {
    changed[p] = cur.page_crc[p] != prev.page_crc[p] ? 1 : 0;
  }
  return changed;
}

std::uint8_t* PagedSnapshot::mutable_payload_for_test() {
  CHECK(valid());
  return buffers_[active_].data.data();
}

}  // namespace crkhacc::util
