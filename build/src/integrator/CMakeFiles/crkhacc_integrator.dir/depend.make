# Empty dependencies file for crkhacc_integrator.
# This may be replaced when dependencies are built.
