# Empty dependencies file for crkhacc_io.
# This may be replaced when dependencies are built.
