// SPH smoothing kernels.
//
// The cubic B-spline (M4) kernel with support radius 2h, the default in
// CRKSPH's reference implementation, plus the Wendland C4 kernel used for
// high-neighbor-count configurations (CRKSPH evaluates ~270 neighbors per
// particle; Wendland kernels resist the pairing instability there).
// All functions are float-typed: the short-range solver runs FP32.
//
// Each shape also ships vector twins (w_v / dw_dr_v) for the kSimd launch
// schedule: the SAME expression DAG per lane — every multiply, divide and
// constant in the same order, branches turned into masked selects — so
// with contraction disabled (-ffp-contract=off, top-level CMakeLists) the
// vector value of a live lane is bit-identical to the scalar call. Keep
// the scalar and vector bodies in lockstep when editing either.
#pragma once

#include <cmath>
#include <numbers>

#include "gpu/simd.h"

namespace crkhacc::sph {

/// Cubic B-spline kernel W(r, h); support is r < 2h.
struct CubicSpline {
  static constexpr float kSupport = 2.0f;  ///< support radius in units of h

  /// Kernel value.
  static float w(float r, float h) {
    const float q = r / h;
    if (q >= 2.0f) return 0.0f;
    const float sigma = static_cast<float>(1.0 / std::numbers::pi) / (h * h * h);
    if (q < 1.0f) {
      return sigma * (1.0f - 1.5f * q * q + 0.75f * q * q * q);
    }
    const float t = 2.0f - q;
    return sigma * 0.25f * t * t * t;
  }

  /// Radial derivative dW/dr (<= 0 everywhere).
  static float dw_dr(float r, float h) {
    const float q = r / h;
    if (q >= 2.0f) return 0.0f;
    const float sigma = static_cast<float>(1.0 / std::numbers::pi) / (h * h * h);
    if (q < 1.0f) {
      return sigma * (-3.0f * q + 2.25f * q * q) / h;
    }
    const float t = 2.0f - q;
    return sigma * (-0.75f * t * t) / h;
  }

  /// Vector twin of w(): both piecewise branches evaluated, blended by
  /// q < 1 then zeroed for q >= 2 — per lane, bitwise equal to w().
  static gpu::simd::vfloat w_v(gpu::simd::vfloat r, gpu::simd::vfloat h) {
    namespace v = gpu::simd;
    const v::vfloat q = r / h;
    const v::vfloat sigma =
        v::broadcast(static_cast<float>(1.0 / std::numbers::pi)) /
        (h * h * h);
    const v::vfloat inner =
        sigma * (v::broadcast(1.0f) - v::broadcast(1.5f) * q * q +
                 v::broadcast(0.75f) * q * q * q);
    const v::vfloat t = v::broadcast(2.0f) - q;
    const v::vfloat outer = sigma * v::broadcast(0.25f) * t * t * t;
    const v::vfloat val =
        v::select(v::cmp_lt(q, v::broadcast(1.0f)), inner, outer);
    return v::select(v::cmp_lt(q, v::broadcast(2.0f)), val, v::vzero());
  }

  /// Vector twin of dw_dr().
  static gpu::simd::vfloat dw_dr_v(gpu::simd::vfloat r, gpu::simd::vfloat h) {
    namespace v = gpu::simd;
    const v::vfloat q = r / h;
    const v::vfloat sigma =
        v::broadcast(static_cast<float>(1.0 / std::numbers::pi)) /
        (h * h * h);
    const v::vfloat inner =
        sigma * (v::broadcast(-3.0f) * q + v::broadcast(2.25f) * q * q) / h;
    const v::vfloat t = v::broadcast(2.0f) - q;
    const v::vfloat outer = sigma * (v::broadcast(-0.75f) * t * t) / h;
    const v::vfloat val =
        v::select(v::cmp_lt(q, v::broadcast(1.0f)), inner, outer);
    return v::select(v::cmp_lt(q, v::broadcast(2.0f)), val, v::vzero());
  }
};

/// Wendland C4 kernel; support r < 2h (rescaled so h has the same meaning
/// as the cubic spline).
struct WendlandC4 {
  static constexpr float kSupport = 2.0f;

  static float w(float r, float h) {
    const float q = r / (2.0f * h);  // native Wendland variable in [0,1]
    if (q >= 1.0f) return 0.0f;
    const float sigma =
        static_cast<float>(495.0 / (32.0 * std::numbers::pi)) /
        (8.0f * h * h * h);
    const float omq = 1.0f - q;
    const float omq2 = omq * omq;
    const float omq6 = omq2 * omq2 * omq2;
    return sigma * omq6 * (1.0f + 6.0f * q + (35.0f / 3.0f) * q * q);
  }

  static float dw_dr(float r, float h) {
    const float q = r / (2.0f * h);
    if (q >= 1.0f) return 0.0f;
    const float sigma =
        static_cast<float>(495.0 / (32.0 * std::numbers::pi)) /
        (8.0f * h * h * h);
    const float omq = 1.0f - q;
    const float omq2 = omq * omq;
    const float omq5 = omq2 * omq2 * omq;
    // d/dq of omq^6 (1 + 6q + 35/3 q^2) = omq^5 (-56/3 q) (1 + 5 q)
    const float dwdq = sigma * omq5 * (-56.0f / 3.0f) * q * (1.0f + 5.0f * q);
    return dwdq / (2.0f * h);
  }

  /// Vector twin of w() — see CubicSpline::w_v for the contract.
  static gpu::simd::vfloat w_v(gpu::simd::vfloat r, gpu::simd::vfloat h) {
    namespace v = gpu::simd;
    const v::vfloat q = r / (v::broadcast(2.0f) * h);
    const v::vfloat sigma =
        v::broadcast(static_cast<float>(495.0 / (32.0 * std::numbers::pi))) /
        (v::broadcast(8.0f) * h * h * h);
    const v::vfloat omq = v::broadcast(1.0f) - q;
    const v::vfloat omq2 = omq * omq;
    const v::vfloat omq6 = omq2 * omq2 * omq2;
    const v::vfloat val =
        sigma * omq6 *
        (v::broadcast(1.0f) + v::broadcast(6.0f) * q +
         v::broadcast(35.0f / 3.0f) * q * q);
    return v::select(v::cmp_lt(q, v::broadcast(1.0f)), val, v::vzero());
  }

  /// Vector twin of dw_dr().
  static gpu::simd::vfloat dw_dr_v(gpu::simd::vfloat r, gpu::simd::vfloat h) {
    namespace v = gpu::simd;
    const v::vfloat q = r / (v::broadcast(2.0f) * h);
    const v::vfloat sigma =
        v::broadcast(static_cast<float>(495.0 / (32.0 * std::numbers::pi))) /
        (v::broadcast(8.0f) * h * h * h);
    const v::vfloat omq = v::broadcast(1.0f) - q;
    const v::vfloat omq2 = omq * omq;
    const v::vfloat omq5 = omq2 * omq2 * omq;
    const v::vfloat dwdq = sigma * omq5 * v::broadcast(-56.0f / 3.0f) * q *
                           (v::broadcast(1.0f) + v::broadcast(5.0f) * q);
    const v::vfloat val = dwdq / (v::broadcast(2.0f) * h);
    return v::select(v::cmp_lt(q, v::broadcast(1.0f)), val, v::vzero());
  }
};

}  // namespace crkhacc::sph
