// Linear BVH over points (ArborX analog).
//
// The in situ analysis pipeline (Section IV-B3) leans on ArborX for
// GPU-native spatial indexing: bounding-volume hierarchies built over
// Morton-sorted primitives with batched range queries. This is the same
// construction — points are sorted by the Morton code of their quantized
// position and a balanced binary hierarchy of fitted AABBs is built over
// the sorted order. Fixed-radius neighbor queries drive FOF and DBSCAN.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace crkhacc::tree {

class Bvh {
 public:
  /// Build over points (x[i], y[i], z[i]). Spans must stay alive for the
  /// lifetime of queries (the BVH stores copies of coordinates it needs).
  Bvh(std::span<const float> x, std::span<const float> y,
      std::span<const float> z, std::uint32_t leaf_size = 8);

  std::size_t size() const { return count_; }
  std::size_t num_nodes() const { return nodes_.size(); }

  /// Call visit(point_index) for every point within `radius` of q.
  template <typename Visitor>
  void radius_query(float qx, float qy, float qz, float radius,
                    Visitor&& visit) const {
    if (nodes_.empty()) return;
    const float r2 = radius * radius;
    std::uint32_t stack[64];
    int top = 0;
    stack[top++] = 0;
    while (top > 0) {
      const Node& node = nodes_[stack[--top]];
      if (aabb_point_distance_sq(node, qx, qy, qz) > r2) continue;
      if (node.is_leaf()) {
        for (std::uint32_t s = node.begin; s < node.end; ++s) {
          const float dx = px_[s] - qx;
          const float dy = py_[s] - qy;
          const float dz = pz_[s] - qz;
          if (dx * dx + dy * dy + dz * dz <= r2) {
            visit(index_[s]);
          }
        }
      } else {
        stack[top++] = node.left;
        stack[top++] = node.right;
      }
    }
  }

  /// Count of points within radius of q (convenience for DBSCAN cores).
  std::size_t count_within(float qx, float qy, float qz, float radius) const {
    std::size_t n = 0;
    radius_query(qx, qy, qz, radius, [&n](std::uint32_t) { ++n; });
    return n;
  }

 private:
  struct Node {
    std::array<float, 3> lo;
    std::array<float, 3> hi;
    std::uint32_t left = 0;   ///< child node index (internal only)
    std::uint32_t right = 0;
    std::uint32_t begin = 0;  ///< sorted point range (leaf only)
    std::uint32_t end = 0;

    bool is_leaf() const { return end > begin; }
  };

  static float aabb_point_distance_sq(const Node& node, float x, float y,
                                      float z);

  std::uint32_t build_range(std::uint32_t begin, std::uint32_t end);

  std::size_t count_;
  std::uint32_t leaf_size_;
  // Sorted-by-Morton copies of the coordinates plus original indices.
  std::vector<float> px_, py_, pz_;
  std::vector<std::uint32_t> index_;
  std::vector<Node> nodes_;
};

}  // namespace crkhacc::tree
