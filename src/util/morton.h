// 3-D Morton (Z-order) codes.
//
// Used by the LBVH construction in tree/arborx: particles are sorted by
// the Morton code of their quantized position, giving a spatially coherent
// ordering that the linear BVH builder splits on highest differing bit.
#pragma once

#include <cstdint>

namespace crkhacc {

/// Interleave the low 21 bits of x,y,z into a 63-bit Morton code.
std::uint64_t morton3d(std::uint32_t x, std::uint32_t y, std::uint32_t z);

/// Inverse of morton3d: extract the three 21-bit coordinates.
void morton3d_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                     std::uint32_t& z);

/// Quantize a position in [0, box) to a 21-bit grid coordinate.
std::uint32_t quantize21(double value, double box);

}  // namespace crkhacc
