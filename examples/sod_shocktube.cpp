// Sod shock tube: CRKSPH validation against the exact Riemann solution.
//
// A classic hydro-solver acceptance test (the CRKSPH paper's first
// benchmark). Equal-mass particles sample a gamma = 5/3 Sod setup —
// left state (rho, P) = (1, 1), right state (0.125, 0.1) — in a periodic
// anisotropic tube (16 x 2 x 2). The tube evolves with the same
// SphSolver + warp-split kernel stack the cosmology code uses (gravity
// off, a = 1), and the density / velocity / pressure profiles are
// compared against the exact Riemann solution at the final time.
//
// Registered in ctest as the `sod_shocktube` physics-acceptance test:
// the binned L1 errors against the exact solution are gated (exit 1 on
// violation), so hydro regressions that shift the wave fan fail CI, not
// just the eyeball. Gates carry ~2x headroom over the measured errors
// at this resolution (rho 0.022, v 0.065, P 0.037).
//
//   ./examples/sod_shocktube
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "comm/decomposition.h"
#include "core/particles.h"
#include "cosmology/units.h"
#include "gpu/device.h"
#include "sph/eos.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"

using namespace crkhacc;

namespace {

constexpr double kGamma = units::kGamma;

struct RiemannSolution {
  double rho, velocity, pressure;
};

/// Exact Riemann solution of the Sod problem sampled at xi = x/t
/// (Toro's pressure-function iteration, u_l = u_r = 0).
RiemannSolution sample_riemann(double rho_l, double p_l, double rho_r,
                               double p_r, double xi) {
  const double c_l = std::sqrt(kGamma * p_l / rho_l);
  const double c_r = std::sqrt(kGamma * p_r / rho_r);
  const double g1 = (kGamma - 1.0) / (2.0 * kGamma);
  const double g2 = (kGamma + 1.0) / (2.0 * kGamma);

  auto f_state = [&](double p, double rho_k, double p_k, double c_k) {
    if (p > p_k) {  // shock branch
      const double a_k = 2.0 / ((kGamma + 1.0) * rho_k);
      const double b_k = (kGamma - 1.0) / (kGamma + 1.0) * p_k;
      return (p - p_k) * std::sqrt(a_k / (p + b_k));
    }
    return 2.0 * c_k / (kGamma - 1.0) * (std::pow(p / p_k, g1) - 1.0);
  };
  auto total = [&](double p) {
    return f_state(p, rho_l, p_l, c_l) + f_state(p, rho_r, p_r, c_r);
  };
  double lo = 1e-8, hi = 10.0 * std::max(p_l, p_r);
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (total(mid) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double p_star = 0.5 * (lo + hi);
  const double u_star = 0.5 * (f_state(p_star, rho_r, p_r, c_r) -
                               f_state(p_star, rho_l, p_l, c_l));

  if (xi <= u_star) {
    if (p_star > p_l) {  // left shock (not the Sod case)
      const double s = -c_l * std::sqrt(g2 * p_star / p_l + g1);
      if (xi <= s) return {rho_l, 0.0, p_l};
      const double r = (kGamma - 1.0) / (kGamma + 1.0);
      return {rho_l * (p_star / p_l + r) / (r * p_star / p_l + 1.0), u_star,
              p_star};
    }
    const double c_star = c_l * std::pow(p_star / p_l, g1);
    if (xi <= -c_l) return {rho_l, 0.0, p_l};
    if (xi >= u_star - c_star) {
      return {rho_l * std::pow(p_star / p_l, 1.0 / kGamma), u_star, p_star};
    }
    const double u = 2.0 / (kGamma + 1.0) * (c_l + xi);
    const double c = c_l - 0.5 * (kGamma - 1.0) * u;
    return {rho_l * std::pow(c / c_l, 2.0 / (kGamma - 1.0)), u,
            p_l * std::pow(c / c_l, 2.0 * kGamma / (kGamma - 1.0))};
  }
  if (p_star > p_r) {  // right shock (the Sod case)
    const double s = c_r * std::sqrt(g2 * p_star / p_r + g1);
    if (xi >= s) return {rho_r, 0.0, p_r};
    const double r = (kGamma - 1.0) / (kGamma + 1.0);
    return {rho_r * (p_star / p_r + r) / (r * p_star / p_r + 1.0), u_star,
            p_star};
  }
  const double c_star = c_r * std::pow(p_star / p_r, g1);
  if (xi >= c_r) return {rho_r, 0.0, p_r};
  if (xi <= u_star + c_star) {
    return {rho_r * std::pow(p_star / p_r, 1.0 / kGamma), u_star, p_star};
  }
  const double u = 2.0 / (kGamma + 1.0) * (-c_r + xi);
  const double c = c_r + 0.5 * (kGamma - 1.0) * u;
  return {rho_r * std::pow(c / c_r, 2.0 / (kGamma - 1.0)), u,
          p_r * std::pow(c / c_r, 2.0 * kGamma / (kGamma - 1.0))};
}

constexpr double kLx = 16.0, kLyz = 2.0;

/// Rebuild the ghost layer for the anisotropic periodic tube: replicate
/// owned particles within `pad` of any face, with image offsets.
void rebuild_ghosts(Particles& p, double pad) {
  std::vector<bool> keep(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) keep[i] = p.is_owned(i);
  p.compact(keep);
  const std::size_t owned = p.size();
  const double extent[3] = {kLx, kLyz, kLyz};
  for (std::size_t i = 0; i < owned; ++i) {
    const float pos[3] = {p.x[i], p.y[i], p.z[i]};
    for (int ox = -1; ox <= 1; ++ox) {
      for (int oy = -1; oy <= 1; ++oy) {
        for (int oz = -1; oz <= 1; ++oz) {
          if (ox == 0 && oy == 0 && oz == 0) continue;
          const int off[3] = {ox, oy, oz};
          bool in_shell = true;
          float image[3];
          for (int d = 0; d < 3; ++d) {
            image[d] = pos[d] + static_cast<float>(off[d] * extent[d]);
            if (image[d] < -pad || image[d] > extent[d] + pad) {
              in_shell = false;
              break;
            }
          }
          if (!in_shell) continue;
          auto record = p.record(i);
          record.x = image[0];
          record.y = image[1];
          record.z = image[2];
          record.ghost = 1;
          p.append_record(record);
        }
      }
    }
  }
}

}  // namespace

int main() {
  const double rho_l = 1.0, p_l = 1.0;
  const double rho_r = 0.125, p_r = 0.1;
  const double interface_x = 8.0;
  const double dx_l = 0.25;             // left lattice spacing
  const double dx_r = 2.0 * dx_l;       // equal mass: (rho_l/rho_r)^(1/3) = 2

  Particles particles;
  std::uint64_t id = 0;
  const float mass = static_cast<float>(rho_l * dx_l * dx_l * dx_l);
  auto add_lattice = [&](double x0, double x1, double spacing, double rho,
                         double pressure_value) {
    const int n_yz = static_cast<int>(kLyz / spacing);
    for (double x = x0 + 0.5 * spacing; x < x1; x += spacing) {
      for (int iy = 0; iy < n_yz; ++iy) {
        for (int iz = 0; iz < n_yz; ++iz) {
          const auto i = particles.push_back(
              id++, Species::kGas, static_cast<float>(x),
              static_cast<float>((iy + 0.5) * spacing),
              static_cast<float>((iz + 0.5) * spacing), 0, 0, 0, mass);
          particles.u[i] = static_cast<float>(pressure_value /
                                              ((kGamma - 1.0) * rho));
          particles.hsml[i] = static_cast<float>(1.3 * spacing);
        }
      }
    }
  };
  add_lattice(0.0, interface_x, dx_l, rho_l, p_l);
  add_lattice(interface_x, kLx, dx_r, rho_r, p_r);
  std::printf("Sod shock tube: %zu equal-mass particles, gamma = 5/3\n",
              particles.size());

  sph::SphConfig sph_config;
  sph_config.eta = 1.3f;
  sph_config.h_max = 1.0f;
  sph::SphSolver solver(sph_config);
  gpu::FlopRegistry flops;

  const double pad = 1.0;
  comm::Box3 domain;
  domain.lo = {-pad, -pad, -pad};
  domain.hi = {kLx + pad, kLyz + pad, kLyz + pad};

  const double t_end = 2.0;
  double t = 0.0;
  int steps = 0;
  while (t < t_end - 1e-9) {
    rebuild_ghosts(particles, pad);
    tree::ChainingMesh mesh(domain, {1.0, 48});
    std::vector<std::uint32_t> gas(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      gas[i] = static_cast<std::uint32_t>(i);
    }
    mesh.build(particles, gas);
    std::fill(particles.ax.begin(), particles.ax.end(), 0.0f);
    std::fill(particles.ay.begin(), particles.ay.end(), 0.0f);
    std::fill(particles.az.begin(), particles.az.end(), 0.0f);
    std::fill(particles.du.begin(), particles.du.end(), 0.0f);
    solver.compute_forces(particles, mesh, 1.0, nullptr, flops);
    solver.update_smoothing_lengths(particles, nullptr);
    const double dt = std::min(
        solver.min_timestep(particles, nullptr, 1.0, 0.05), t_end - t);
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (!particles.is_owned(i)) continue;
      particles.vx[i] += particles.ax[i] * static_cast<float>(dt);
      particles.vy[i] += particles.ay[i] * static_cast<float>(dt);
      particles.vz[i] += particles.az[i] * static_cast<float>(dt);
      particles.u[i] = std::max(
          0.0f, particles.u[i] + particles.du[i] * static_cast<float>(dt));
      auto wrap = [](float v, double extent) {
        if (v < 0.0f) v += static_cast<float>(extent);
        if (v >= extent) v -= static_cast<float>(extent);
        return v;
      };
      particles.x[i] = wrap(particles.x[i] + particles.vx[i] * static_cast<float>(dt), kLx);
      particles.y[i] = wrap(particles.y[i] + particles.vy[i] * static_cast<float>(dt), kLyz);
      particles.z[i] = wrap(particles.z[i] + particles.vz[i] * static_cast<float>(dt), kLyz);
    }
    t += dt;
    ++steps;
  }
  std::printf("evolved to t = %.2f in %d steps (%.1f GFLOP in kernels)\n\n", t,
              steps, flops.total_flops() / 1e9);

  // Profile comparison around the central interface.
  const int bins = 32;
  const double x_lo = 4.5, x_hi = 12.5;
  std::vector<double> rho_sum(bins, 0.0), v_sum(bins, 0.0), p_sum(bins, 0.0);
  std::vector<int> counts(bins, 0);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!particles.is_owned(i)) continue;
    const double x = particles.x[i];
    if (x < x_lo || x >= x_hi) continue;
    const int b = static_cast<int>((x - x_lo) / (x_hi - x_lo) * bins);
    rho_sum[b] += particles.rho[i];
    v_sum[b] += particles.vx[i];
    p_sum[b] += sph::pressure(particles.rho[i], particles.u[i]);
    ++counts[b];
  }
  std::printf("%-8s %-9s %-9s  %-9s %-9s  %-9s %-9s\n", "x", "rho", "exact",
              "v", "exact", "P", "exact");
  double l1_rho = 0.0, l1_v = 0.0, l1_p = 0.0;
  int used = 0;
  for (int b = 0; b < bins; ++b) {
    if (!counts[b]) continue;
    const double x = x_lo + (b + 0.5) * (x_hi - x_lo) / bins;
    const auto exact =
        sample_riemann(rho_l, p_l, rho_r, p_r, (x - interface_x) / t_end);
    const double rho = rho_sum[b] / counts[b];
    const double v = v_sum[b] / counts[b];
    const double pressure = p_sum[b] / counts[b];
    std::printf("%-8.2f %-9.4f %-9.4f  %-9.4f %-9.4f  %-9.4f %-9.4f\n", x,
                rho, exact.rho, v, exact.velocity, pressure, exact.pressure);
    l1_rho += std::abs(rho - exact.rho);
    l1_v += std::abs(v - exact.velocity);
    l1_p += std::abs(pressure - exact.pressure);
    ++used;
  }
  l1_rho /= std::max(1, used);
  l1_v /= std::max(1, used);
  l1_p /= std::max(1, used);
  std::printf("\nmean |rho - rho_exact| across the wave fan: %.4f\n", l1_rho);
  std::printf("mean |v   - v_exact|   across the wave fan: %.4f\n", l1_v);
  std::printf("mean |P   - P_exact|   across the wave fan: %.4f\n", l1_p);

  // Physics-acceptance gates (~2x headroom over measured values at this
  // resolution). A passing run must also have actually resolved the wave
  // fan: enough populated bins and a shock that left the interface.
  struct Gate {
    const char* what;
    double value;
    double limit;
  } gates[] = {
      {"L1(rho)", l1_rho, 0.05},
      {"L1(v)", l1_v, 0.13},
      {"L1(P)", l1_p, 0.07},
  };
  bool pass = used >= bins / 2;
  if (!pass) {
    std::printf("FAIL: only %d of %d profile bins populated\n", used, bins);
  }
  for (const auto& gate : gates) {
    const bool ok = std::isfinite(gate.value) && gate.value < gate.limit;
    std::printf("%s %-8s %.4f (limit %.4f)\n", ok ? "PASS:" : "FAIL:",
                gate.what, gate.value, gate.limit);
    pass = pass && ok;
  }
  return pass ? 0 : 1;
}
