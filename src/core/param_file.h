// Parameter-file configuration (production-code style).
//
// Flagship runs are driven by parameter files, not recompiles. This is a
// minimal "key = value" reader (# comments, blank lines, whitespace
// tolerant) with typed accessors and a mapper onto SimConfig covering the
// knobs a campaign would tune. Unknown keys are reported so typos fail
// loudly instead of silently running the wrong universe.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"

namespace crkhacc::core {

struct ServiceConfig;

class ParamFile {
 public:
  /// Parse "key = value" text; returns nullopt on malformed lines
  /// (reported via log).
  static std::optional<ParamFile> parse(const std::string& text);

  /// Read and parse a file; nullopt if unreadable or malformed.
  static std::optional<ParamFile> load(const std::string& path);

  bool has(const std::string& key) const;
  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<long> get_int(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;  ///< true/false/1/0/yes/no

  /// All keys present in the file.
  std::vector<std::string> keys() const;

  /// Apply recognized keys onto `config`; returns the list of keys that
  /// were not recognized OR whose values were rejected (empty = clean).
  /// Rejected values (e.g. warp_size < 2, an unknown launch_schedule)
  /// leave the config's previous value in place and log an error.
  /// Keys with the `service_` prefix belong to ScenarioService (see the
  /// ServiceConfig overload) and are skipped silently, so one param file
  /// can drive both the farm and the simulations it runs.
  std::vector<std::string> apply(SimConfig& config) const;

  /// Apply the `service_*` keys onto a farm config: service_threads,
  /// service_slice_steps, service_policy (round_robin | deficit),
  /// service_checkpoint_window, service_workdir. Non-service keys are
  /// skipped silently (they are the SimConfig overload's business);
  /// returns the service_* keys that were unrecognized or rejected.
  std::vector<std::string> apply(ServiceConfig& config) const;

  /// Distinct unknown keys the warn-once path has reported so far in this
  /// process, across every ParamFile instance. The warning itself fires
  /// exactly once per key per process no matter how many ranks call
  /// apply() concurrently; tests assert on this counter.
  static std::size_t unknown_keys_warned();

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace crkhacc::core
