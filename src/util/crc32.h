// CRC32 (IEEE 802.3 polynomial) for I/O block integrity.
//
// The paper's GenericIO-style outputs carry per-block checksums so that
// corrupted checkpoints are detected at restart rather than silently
// propagating. This is the same guarantee our two-tier I/O stack provides.
#pragma once

#include <cstddef>
#include <cstdint>

namespace crkhacc {

/// Incremental CRC32; pass the previous value to chain blocks.
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace crkhacc
