// Tests for the I/O stack: snapshot format, throttled storage tiers,
// the multi-tier writer, checkpoint discovery/restart, fault injection.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <memory>
#include <thread>

#include "core/particles.h"
#include "io/checkpoint.h"
#include "io/generic_io.h"
#include "io/multi_tier.h"
#include "io/storage.h"
#include "util/rng.h"
#include "util/timer.h"

namespace crkhacc::io {
namespace {

namespace fs = std::filesystem;

Particles sample_particles(std::size_t n, std::uint64_t seed,
                           std::size_t num_ghosts = 0) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = p.push_back(
        i, i % 2 ? Species::kGas : Species::kDarkMatter,
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(1.0 + rng.next_double()));
    p.u[idx] = static_cast<float>(rng.next_double() * 100.0);
    p.rho[idx] = static_cast<float>(rng.next_double());
    p.hsml[idx] = 0.5f;
    p.metal[idx] = 0.01f;
    p.bin[idx] = static_cast<std::uint8_t>(i % 5);
    if (i < num_ghosts) p.ghost[idx] = 1;
  }
  return p;
}

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_io_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

// --- snapshot format ----------------------------------------------------------

TEST(GenericIo, EncodeDecodeRoundTripsAllFields) {
  const auto p = sample_particles(50, 1, /*num_ghosts=*/5);
  SnapshotMeta meta;
  meta.step = 12;
  meta.scale_factor = 0.42;
  meta.rank = 3;
  meta.num_ranks = 8;
  const auto bytes = encode_snapshot(meta, p, /*include_ghosts=*/true);

  SnapshotMeta decoded_meta;
  Particles decoded;
  ASSERT_TRUE(decode_snapshot(bytes, decoded_meta, decoded));
  EXPECT_EQ(decoded_meta.step, 12u);
  EXPECT_DOUBLE_EQ(decoded_meta.scale_factor, 0.42);
  EXPECT_EQ(decoded_meta.rank, 3);
  EXPECT_EQ(decoded_meta.particle_count, 50u);
  ASSERT_EQ(decoded.size(), p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_EQ(decoded.id[i], p.id[i]);
    EXPECT_EQ(decoded.x[i], p.x[i]);
    EXPECT_EQ(decoded.vx[i], p.vx[i]);
    EXPECT_EQ(decoded.mass[i], p.mass[i]);
    EXPECT_EQ(decoded.u[i], p.u[i]);
    EXPECT_EQ(decoded.rho[i], p.rho[i]);
    EXPECT_EQ(decoded.hsml[i], p.hsml[i]);
    EXPECT_EQ(decoded.metal[i], p.metal[i]);
    EXPECT_EQ(decoded.species[i], p.species[i]);
    EXPECT_EQ(decoded.bin[i], p.bin[i]);
    EXPECT_EQ(decoded.ghost[i], p.ghost[i]);
  }
}

TEST(GenericIo, GhostsSkippedWhenRequested) {
  const auto p = sample_particles(50, 2, /*num_ghosts=*/10);
  SnapshotMeta meta;
  const auto bytes = encode_snapshot(meta, p, /*include_ghosts=*/false);
  SnapshotMeta decoded_meta;
  Particles decoded;
  ASSERT_TRUE(decode_snapshot(bytes, decoded_meta, decoded));
  EXPECT_EQ(decoded.size(), 40u);
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    EXPECT_EQ(decoded.ghost[i], 0);
  }
}

TEST(GenericIo, DetectsCorruption) {
  const auto p = sample_particles(20, 3);
  SnapshotMeta meta;
  auto bytes = encode_snapshot(meta, p, true);
  // Payload bit flip.
  auto corrupted = bytes;
  corrupted[bytes.size() - 10] ^= 0x40;
  SnapshotMeta m;
  Particles out;
  EXPECT_FALSE(decode_snapshot(corrupted, m, out));
  // Header bit flip.
  corrupted = bytes;
  corrupted[9] ^= 0x01;
  EXPECT_FALSE(decode_snapshot(corrupted, m, out));
  // Truncation.
  corrupted = bytes;
  corrupted.resize(bytes.size() - 1);
  EXPECT_FALSE(decode_snapshot(corrupted, m, out));
  // Garbage.
  EXPECT_FALSE(decode_snapshot({1, 2, 3}, m, out));
  // Pristine bytes still decode.
  EXPECT_TRUE(decode_snapshot(bytes, m, out));
}

TEST(GenericIo, FileRoundTrip) {
  TempDir dir;
  const auto p = sample_particles(30, 4);
  SnapshotMeta meta;
  meta.step = 9;
  const auto path = (dir.path() / "snap.gio").string();
  ASSERT_TRUE(write_snapshot_file(path, meta, p, true));
  SnapshotMeta m;
  Particles out;
  ASSERT_TRUE(read_snapshot_file(path, m, out));
  EXPECT_EQ(m.step, 9u);
  EXPECT_EQ(out.size(), 30u);
  EXPECT_FALSE(read_snapshot_file((dir.path() / "missing.gio").string(), m, out));
}

// --- throttled store -------------------------------------------------------------

TEST(ThrottledStore, WriteReadRemoveList) {
  TempDir dir;
  StoreConfig config;
  config.root = dir.str();
  ThrottledStore store(config);
  const std::vector<std::uint8_t> data{1, 2, 3, 4, 5};
  store.write("sub/file.bin", data);
  EXPECT_TRUE(store.exists("sub/file.bin"));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(store.read("sub/file.bin", out));
  EXPECT_EQ(out, data);
  EXPECT_EQ(store.bytes_written(), 5u);
  EXPECT_EQ(store.list("sub").size(), 1u);
  store.remove("sub/file.bin");
  EXPECT_FALSE(store.exists("sub/file.bin"));
  EXPECT_FALSE(store.read("sub/file.bin", out));
}

TEST(ThrottledStore, EnforcesBandwidth) {
  TempDir dir;
  StoreConfig config;
  config.root = dir.str();
  config.bandwidth_bytes_per_s = 1e6;  // 1 MB/s
  ThrottledStore store(config);
  const std::vector<std::uint8_t> data(100000, 7);  // 100 KB -> 0.1 s
  const double elapsed = store.write("f.bin", data);
  EXPECT_GE(elapsed, 0.09);
  EXPECT_LT(elapsed, 0.5);
}

TEST(ThrottledStore, SharedChannelSerializesWriters) {
  TempDir dir;
  StoreConfig config;
  config.root = dir.str();
  config.bandwidth_bytes_per_s = 2e6;
  config.shared_channel = true;
  ThrottledStore store(config);
  const std::vector<std::uint8_t> data(100000, 1);  // 0.05 s each
  Stopwatch watch;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, &data, t] {
      store.write("w" + std::to_string(t) + ".bin", data);
    });
  }
  for (auto& w : writers) w.join();
  // Four writers on a shared 0.05 s channel: >= ~0.2 s total.
  EXPECT_GE(watch.seconds(), 0.18);
}

TEST(ThrottledStore, PrivateChannelDoesNotSerialize) {
  TempDir dir;
  StoreConfig config;
  config.root = dir.str();
  config.bandwidth_bytes_per_s = 2e6;
  config.shared_channel = false;
  ThrottledStore store(config);
  const std::vector<std::uint8_t> data(100000, 1);
  Stopwatch watch;
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&store, &data, t] {
      store.write("w" + std::to_string(t) + ".bin", data);
    });
  }
  for (auto& w : writers) w.join();
  EXPECT_LT(watch.seconds(), 0.15);
}

TEST(ThrottledStore, IngestMovesFileBetweenTiers) {
  TempDir dir;
  StoreConfig fast_config{dir.str() + "/nvme", 0.0, 0.0, false};
  StoreConfig slow_config{dir.str() + "/pfs", 0.0, 0.0, true};
  ThrottledStore nvme(fast_config), pfs(slow_config);
  nvme.write("ckpt/a.bin", {9, 9, 9});
  pfs.ingest(nvme, "ckpt/a.bin");
  EXPECT_FALSE(nvme.exists("ckpt/a.bin"));
  EXPECT_TRUE(pfs.exists("ckpt/a.bin"));
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(pfs.read("ckpt/a.bin", out));
  EXPECT_EQ(out.size(), 3u);
}

// --- multi-tier writer ---------------------------------------------------------

struct Tiers {
  TempDir dir;
  ThrottledStore nvme;
  ThrottledStore pfs;

  explicit Tiers(double nvme_bw = 0.0, double pfs_bw = 0.0)
      : nvme(StoreConfig{dir.str() + "/nvme", nvme_bw, 0.0, false}),
        pfs(StoreConfig{dir.str() + "/pfs", pfs_bw, 0.0, true}) {}
};

TEST(MultiTierWriter, CheckpointReachesPfsWithMarker) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{0, 2});
  const auto p = sample_particles(40, 5);
  SnapshotMeta meta;
  meta.step = 1;
  meta.scale_factor = 0.1;
  writer.write_checkpoint(meta, p);
  writer.drain();
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(1, 0)));
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::marker_path(1, 0)));
  EXPECT_FALSE(tiers.nvme.exists(MultiTierWriter::checkpoint_path(1, 0)));
  const auto records = writer.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].bled);
  EXPECT_GT(records[0].bytes, 0u);
}

TEST(MultiTierWriter, WindowPruningRemovesOldCheckpoints) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{0, 2});
  const auto p = sample_particles(10, 6);
  for (std::uint64_t step = 0; step < 6; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  // Window of 2: steps 4, 5 survive; old steps are pruned.
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(5, 0)));
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(4, 0)));
  EXPECT_FALSE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(1, 0)));
  EXPECT_FALSE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(0, 0)));
}

TEST(MultiTierWriter, LocalWriteBlocksLessThanDirect) {
  // NVMe fast, PFS slow: the multi-tier path must block the caller far
  // less than the direct path for the same payload.
  Tiers tiers(/*nvme_bw=*/50e6, /*pfs_bw=*/5e6);
  const auto p = sample_particles(2000, 7);  // ~130 KB

  MultiTierWriter multi(tiers.nvme, tiers.pfs, MultiTierConfig{0, 4});
  SnapshotMeta meta;
  meta.step = 1;
  const double multi_blocked = multi.write_checkpoint(meta, p);
  multi.drain();

  MultiTierWriter direct(tiers.nvme, tiers.pfs, MultiTierConfig{0, 4});
  meta.step = 2;
  const double direct_blocked = direct.write_checkpoint_direct(meta, p);

  EXPECT_LT(multi_blocked * 3.0, direct_blocked);
}

TEST(MultiTierWriter, AccountsBytes) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{0, 8});
  const auto p = sample_particles(25, 8);
  for (std::uint64_t step = 0; step < 3; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  const auto expected = encode_snapshot(SnapshotMeta{}, p, true).size() * 3;
  EXPECT_EQ(writer.bytes_written(), expected);
}

// --- checkpoint discovery / restart -----------------------------------------------

TEST(Checkpoint, FindsNewestCompleteAcrossRanks) {
  Tiers tiers;
  const auto p = sample_particles(15, 9);
  const int num_ranks = 3;
  std::vector<std::unique_ptr<MultiTierWriter>> writers;
  for (int r = 0; r < num_ranks; ++r) {
    writers.push_back(std::make_unique<MultiTierWriter>(
        tiers.nvme, tiers.pfs, MultiTierConfig{r, 8}));
  }
  for (std::uint64_t step = 1; step <= 3; ++step) {
    for (int r = 0; r < num_ranks; ++r) {
      SnapshotMeta meta;
      meta.step = step;
      meta.rank = r;
      meta.num_ranks = num_ranks;  // the real writer stamps this
      writers[static_cast<std::size_t>(r)]->write_checkpoint(meta, p);
    }
  }
  for (auto& w : writers) w->drain();
  EXPECT_EQ(checkpoint_writer_count(tiers.pfs, 3), num_ranks);
  auto latest = latest_complete_checkpoint(tiers.pfs, num_ranks);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 3u);

  // Break step 3 for rank 1: discovery falls back to step 2.
  tiers.pfs.remove(MultiTierWriter::marker_path(3, 1));
  latest = latest_complete_checkpoint(tiers.pfs, num_ranks);
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(*latest, 2u);
}

TEST(Checkpoint, ToleratesDirectoryWrittenByDifferentRankCount) {
  // A step committed by 3 ranks read by a 2-rank (post-shrink) or 4-rank
  // (grown) run: the directory's own account of itself says ranks 0..2
  // constitute a complete commit, so discovery must return the step (and
  // warn) instead of silently reporting nothing.
  Tiers tiers;
  const auto p = sample_particles(12, 21);
  for (int r = 0; r < 3; ++r) {
    MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{r, 8});
    SnapshotMeta meta;
    meta.step = 5;
    meta.rank = r;
    meta.num_ranks = 3;
    writer.write_checkpoint(meta, p);
    writer.drain();
  }
  for (const int readers : {2, 4}) {
    const auto latest = latest_complete_checkpoint(tiers.pfs, readers);
    ASSERT_TRUE(latest.has_value()) << "readers=" << readers;
    EXPECT_EQ(*latest, 5u) << "readers=" << readers;
  }
}

TEST(Checkpoint, PartiallyCommittedStepNeverQualifies) {
  // Ranks 0 and 1 bled their files but rank 2 died first: every present
  // file records 3 writers, so the step was never collectively committed
  // — no reader rank count may select it, including the 2-rank reader
  // the surviving pair becomes after the shrink.
  Tiers tiers;
  const auto p = sample_particles(12, 22);
  for (int r = 0; r < 2; ++r) {
    MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{r, 8});
    SnapshotMeta meta;
    meta.step = 6;
    meta.rank = r;
    meta.num_ranks = 3;
    writer.write_checkpoint(meta, p);
    writer.drain();
  }
  EXPECT_EQ(checkpoint_writer_count(tiers.pfs, 6), 3);
  for (const int readers : {2, 3}) {
    EXPECT_FALSE(latest_complete_checkpoint(tiers.pfs, readers).has_value())
        << "readers=" << readers;
  }
}

TEST(Checkpoint, EmptyStoreHasNoCheckpoint) {
  Tiers tiers;
  EXPECT_FALSE(latest_complete_checkpoint(tiers.pfs, 2).has_value());
}

TEST(Checkpoint, RestoreRoundTrip) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, MultiTierConfig{0, 8});
  const auto p = sample_particles(60, 10, /*num_ghosts=*/12);
  SnapshotMeta meta;
  meta.step = 7;
  meta.scale_factor = 0.33;
  writer.write_checkpoint(meta, p);
  writer.drain();

  Particles restored;
  SnapshotMeta restored_meta;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 7, 0, restored_meta, restored));
  EXPECT_DOUBLE_EQ(restored_meta.scale_factor, 0.33);
  ASSERT_EQ(restored.size(), p.size());
  std::size_t ghosts = 0;
  for (std::size_t i = 0; i < restored.size(); ++i) {
    EXPECT_EQ(restored.x[i], p.x[i]);
    if (restored.ghost[i]) ++ghosts;
  }
  EXPECT_EQ(ghosts, 12u);
  EXPECT_FALSE(restore_checkpoint(tiers.pfs, 99, 0, restored_meta, restored));
}

// --- fault injection -----------------------------------------------------------

TEST(FaultInjector, DeterministicSchedule) {
  const FaultInjector a(10.0, 42), b(10.0, 42);
  for (std::uint64_t trial = 0; trial < 100; ++trial) {
    EXPECT_EQ(a.should_fail(trial, 1.0), b.should_fail(trial, 1.0));
  }
}

TEST(FaultInjector, RateMatchesMtti) {
  const FaultInjector injector(10.0, 7);
  int failures = 0;
  const int trials = 10000;
  for (std::uint64_t t = 0; t < trials; ++t) {
    if (injector.should_fail(t, 1.0)) ++failures;
  }
  // dt/mtti = 0.1 hazard per trial.
  EXPECT_NEAR(failures, 1000, 120);
}

TEST(FaultInjector, DisabledWhenMttiNonPositive) {
  const FaultInjector injector(0.0, 7);
  for (std::uint64_t t = 0; t < 100; ++t) {
    EXPECT_FALSE(injector.should_fail(t, 1.0));
  }
}

}  // namespace
}  // namespace crkhacc::io
