file(REMOVE_RECURSE
  "CMakeFiles/sod_shocktube.dir/sod_shocktube.cpp.o"
  "CMakeFiles/sod_shocktube.dir/sod_shocktube.cpp.o.d"
  "sod_shocktube"
  "sod_shocktube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sod_shocktube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
