# Empty compiler generated dependencies file for test_cosmology.
# This may be replaced when dependencies are built.
