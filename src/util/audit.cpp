#include "util/audit.h"

#include <cmath>

namespace crkhacc::util {

std::size_t find_nonfinite(std::span<const float> values) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) return i;
  }
  return kAuditNone;
}

std::size_t find_outside(std::span<const float> values, float lo, float hi) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Negated so NaN (which fails every comparison) lands in "outside".
    if (!(values[i] >= lo && values[i] <= hi)) return i;
  }
  return kAuditNone;
}

double relative_drift(double before, double after, double floor) {
  const double scale = std::fmax(std::fabs(before), floor);
  return std::fabs(after - before) / scale;
}

}  // namespace crkhacc::util
