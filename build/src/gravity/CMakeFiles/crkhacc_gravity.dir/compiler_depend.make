# Empty compiler generated dependencies file for crkhacc_gravity.
# This may be replaced when dependencies are built.
