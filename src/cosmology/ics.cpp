#include "cosmology/ics.h"

#include <array>
#include <cmath>
#include <numbers>

#include "cosmology/units.h"
#include "fft/distributed_fft.h"
#include "util/assertions.h"
#include "util/rng.h"

namespace crkhacc::cosmo {
namespace {

using fft::Complex;

constexpr double kPi = std::numbers::pi;

/// Gaussian pair from a counter-based stream (Box-Muller on counters
/// 2c, 2c+1) — identical no matter which rank evaluates it.
std::array<double, 2> gaussian_pair(const CounterRng& rng, std::uint64_t c) {
  double u1 = rng.uniform(2 * c);
  const double u2 = rng.uniform(2 * c + 1);
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return {r * std::cos(2.0 * kPi * u2), r * std::sin(2.0 * kPi * u2)};
}

}  // namespace

Particles generate_zeldovich(comm::Communicator& comm, const Background& bg,
                             const PowerSpectrum& power, const IcConfig& config) {
  const std::size_t n = config.np;
  CHECK(n >= 2);
  const double box = config.box;
  const double a_init = Background::a_of_z(config.z_init);
  const double growth = bg.growth(a_init);
  // Zel'dovich: x = q + D psi0, v_pec = a H(a) f D psi0.
  const double vel_factor =
      a_init * bg.hubble(a_init) * bg.growth_rate(a_init);

  fft::DistributedFFT dfft(comm, n);
  const std::size_t kx0 = dfft.local_kx_start();
  const std::size_t nx_local = dfft.local_kx_count();
  const double volume = box * box * box;
  const double n3 = static_cast<double>(n) * static_cast<double>(n) *
                    static_cast<double>(n);
  const CounterRng rng(config.seed, /*stream=*/0);

  // delta_k on the local x-slab, already scaled by the growth factor so
  // the inverse transforms below give displacements directly.
  std::vector<Complex> delta(nx_local * n * n, Complex(0.0, 0.0));
  for (std::size_t xl = 0; xl < nx_local; ++xl) {
    const std::size_t i = kx0 + xl;
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < n; ++k) {
        if (i == 0 && j == 0 && k == 0) continue;  // mean mode
        // Mirror index of the Hermitian partner.
        const std::size_t mi = (n - i) % n;
        const std::size_t mj = (n - j) % n;
        const std::size_t mk = (n - k) % n;
        const std::uint64_t my_counter = (i * n + j) * n + k;
        const std::uint64_t mirror_counter = (mi * n + mj) * n + mk;
        const bool self_conjugate = my_counter == mirror_counter;
        const bool canonical = my_counter <= mirror_counter;
        const std::uint64_t counter = canonical ? my_counter : mirror_counter;

        const double kx = 2.0 * kPi / box * static_cast<double>(fft::freq_of(i, n));
        const double ky = 2.0 * kPi / box * static_cast<double>(fft::freq_of(j, n));
        const double kz = 2.0 * kPi / box * static_cast<double>(fft::freq_of(k, n));
        const double kmag = std::sqrt(kx * kx + ky * ky + kz * kz);
        const double amplitude =
            growth * std::sqrt(power(kmag) / volume) * n3;

        const auto g = gaussian_pair(rng, counter);
        Complex mode;
        if (self_conjugate) {
          mode = Complex(amplitude * g[0], 0.0);
        } else {
          const Complex zeta(g[0] / std::numbers::sqrt2, g[1] / std::numbers::sqrt2);
          mode = amplitude * (canonical ? zeta : std::conj(zeta));
        }
        delta[(xl * n + j) * n + k] = mode;
      }
    }
  }

  // Displacement fields psi_d = IFFT[ i k_d / k^2 * delta_k ].
  const std::size_t z0 = dfft.local_z_start();
  const std::size_t nz_local = dfft.local_z_count();
  std::array<std::vector<double>, 3> disp;
  for (int d = 0; d < 3; ++d) {
    auto& kdata = dfft.k_data();
    for (std::size_t xl = 0; xl < nx_local; ++xl) {
      const std::size_t i = kx0 + xl;
      for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t k = 0; k < n; ++k) {
          const long fi = fft::freq_of(i, n);
          const long fj = fft::freq_of(j, n);
          const long fk = fft::freq_of(k, n);
          const double kx = 2.0 * kPi / box * static_cast<double>(fi);
          const double ky = 2.0 * kPi / box * static_cast<double>(fj);
          const double kz = 2.0 * kPi / box * static_cast<double>(fk);
          const double k2 = kx * kx + ky * ky + kz * kz;
          const double kd = (d == 0) ? kx : (d == 1) ? ky : kz;
          const long fd = (d == 0) ? fi : (d == 1) ? fj : fk;
          Complex value(0.0, 0.0);
          // Nyquist planes have no well-defined derivative sign; zero them.
          const bool nyquist = (n % 2 == 0) && (fd == -static_cast<long>(n / 2));
          if (k2 > 0.0 && !nyquist) {
            value = Complex(0.0, kd / k2) * delta[(xl * n + j) * n + k];
          }
          kdata[(xl * n + j) * n + k] = value;
        }
      }
    }
    dfft.backward();
    auto& field = disp[static_cast<std::size_t>(d)];
    field.resize(nz_local * n * n);
    const auto& real = dfft.real_data();
    for (std::size_t s = 0; s < field.size(); ++s) field[s] = real[s].real();
  }

  // Emit particles on the perturbed lattice for this rank's z-slab.
  const double cell = box / static_cast<double>(n);
  const double mean_density = bg.mean_matter_density();
  const double site_mass = mean_density * volume / n3;
  const double f_baryon = bg.params().omega_b / bg.params().omega_m;
  const double mass_dm = config.with_baryons ? site_mass * (1.0 - f_baryon)
                                             : site_mass;
  const double mass_gas = site_mass * f_baryon;
  const double u_init =
      units::internal_energy(config.t_init_K, units::kMuNeutral);

  auto wrap = [box](double v) {
    double t = std::fmod(v, box);
    if (t < 0.0) t += box;
    if (t >= box) t = 0.0;
    // Guard against the float cast rounding up to exactly box.
    float f = static_cast<float>(t);
    if (f >= static_cast<float>(box)) f = 0.0f;
    return f;
  };

  Particles particles;
  const std::size_t sites = nz_local * n * n;
  particles.reserve(config.with_baryons ? 2 * sites : sites);
  for (std::size_t zl = 0; zl < nz_local; ++zl) {
    const std::size_t iz = z0 + zl;
    for (std::size_t iy = 0; iy < n; ++iy) {
      for (std::size_t ix = 0; ix < n; ++ix) {
        const std::size_t s = (zl * n + iy) * n + ix;
        const std::uint64_t site_id = (iz * n + iy) * n + ix;
        const double qx = (static_cast<double>(ix) + 0.5) * cell;
        const double qy = (static_cast<double>(iy) + 0.5) * cell;
        const double qz = (static_cast<double>(iz) + 0.5) * cell;
        const double dx = disp[0][s];
        const double dy = disp[1][s];
        const double dz = disp[2][s];
        const float vx = static_cast<float>(vel_factor * dx);
        const float vy = static_cast<float>(vel_factor * dy);
        const float vz = static_cast<float>(vel_factor * dz);

        particles.push_back(site_id, Species::kDarkMatter,
                            static_cast<float>(wrap(qx + dx)),
                            static_cast<float>(wrap(qy + dy)),
                            static_cast<float>(wrap(qz + dz)), vx, vy, vz,
                            static_cast<float>(mass_dm));
        if (config.with_baryons) {
          // Stagger gas by half a cell; same large-scale displacement.
          const std::size_t gi = particles.push_back(
              site_id + static_cast<std::uint64_t>(n3), Species::kGas,
              static_cast<float>(wrap(qx + 0.5 * cell + dx)),
              static_cast<float>(wrap(qy + 0.5 * cell + dy)),
              static_cast<float>(wrap(qz + 0.5 * cell + dz)), vx, vy, vz,
              static_cast<float>(mass_gas));
          particles.u[gi] = static_cast<float>(u_init);
          particles.hsml[gi] = static_cast<float>(2.0 * cell);
        }
      }
    }
  }
  return particles;
}

double zeldovich_rms_displacement(const Background& bg,
                                  const PowerSpectrum& power,
                                  const IcConfig& config) {
  // sigma_psi^2 = D^2 / (2 pi^2) * int dk P(k), cut at the box scale and
  // the particle Nyquist scale like the discrete field.
  const double growth = bg.growth(Background::a_of_z(config.z_init));
  const double k_lo = 2.0 * kPi / config.box;
  const double k_hi = kPi * static_cast<double>(config.np) / config.box;
  const int steps = 512;
  const double dlnk = std::log(k_hi / k_lo) / steps;
  double integral = 0.0;
  for (int i = 0; i <= steps; ++i) {
    const double k = k_lo * std::exp(i * dlnk);
    const double val = power(k) * k;  // dk = k dlnk
    integral += (i == 0 || i == steps) ? 0.5 * val : val;
  }
  integral *= dlnk;
  return growth * std::sqrt(integral / (2.0 * kPi * kPi));
}

}  // namespace crkhacc::cosmo
