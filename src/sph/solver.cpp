#include "sph/solver.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <type_traits>

#include "sph/eos.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crkhacc::sph {

double SphSolver::interaction_radius(const Particles& particles,
                                     const tree::ChainingMesh& gas_mesh) {
  float max_h = 0.0f;
  for (std::uint32_t i : gas_mesh.permutation()) {
    max_h = std::max(max_h, particles.hsml[i]);
  }
  return CubicSpline::kSupport * max_h;
}

void SphSolver::compute_forces(
    Particles& particles, const tree::ChainingMesh& gas_mesh, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs_in,
    util::ThreadPool* pool) {
  if (config_.kernel == KernelShape::kWendlandC4) {
    compute_forces_impl<WendlandC4>(particles, gas_mesh, a, active, flops,
                                    pairs_in, pool);
  } else {
    compute_forces_impl<CubicSpline>(particles, gas_mesh, a, active, flops,
                                     pairs_in, pool);
  }
}

namespace {

/// Run body(s) over slots [0, count) of the mesh permutation: on the pool
/// when available, serially otherwise. The permutation maps slots to
/// unique particle indices, so per-slot writes are disjoint and the
/// result is independent of the thread count.
template <typename Body>
void for_each_slot(std::size_t count, util::ThreadPool* pool, Body&& body) {
  if (pool && pool->num_threads() > 1) {
    pool->parallel_for(0, count, 1024,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t s = lo; s < hi; ++s) body(s);
                       });
  } else {
    for (std::size_t s = 0; s < count; ++s) body(s);
  }
}

}  // namespace

template <typename Shape>
void SphSolver::compute_forces_impl(
    Particles& particles, const tree::ChainingMesh& gas_mesh, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs_in,
    util::ThreadPool* pool) {
  const std::size_t n = particles.size();
  scratch_.resize(n);
  last_stats_.clear();
  if (gas_mesh.num_particles() == 0) return;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> own_pairs;
  if (!pairs_in) {
    own_pairs =
        gas_mesh.interaction_pairs(interaction_radius(particles, gas_mesh));
    pairs_in = &own_pairs;
  }
  const auto& pairs = *pairs_in;

  // One launch plan serves all pairwise passes of this evaluation
  // (density, CRK moments, momentum/energy): it depends only on the mesh
  // and the pair list, both fixed here.
  std::optional<gpu::LaunchPlan> plan;
  {
    HACC_TRACE_SPAN("launch_plan");
    plan.emplace(gas_mesh, pairs);
  }

  // Single launch helper so the per-pass blocks cannot drift: every pass
  // records its stats and FlopRegistry entry the same way, under a span
  // named after the kernel (the per-pass cost budget of the CRK-HACC
  // hydro paper).
  const auto run_pass = [&](auto& kernel) {
    using Kernel = std::decay_t<decltype(kernel)>;
    HACC_TRACE_SPAN(Kernel::kName);
    const auto stats =
        gpu::launch_pair_kernel(kernel, gas_mesh, *plan, config_.launch, pool);
    last_stats_[Kernel::kName] = stats;
    flops.add(Kernel::kName, stats.flops, stats.seconds);
  };

  const auto& perm = gas_mesh.permutation();

  // Pass 1: density + neighbor counts. Stores are accumulating, so zero
  // the active targets first, then add the self-contribution once.
  {
    for_each_slot(perm.size(), pool, [&](std::size_t s) {
      const std::uint32_t i = perm[s];
      if (active && !active[i]) return;
      particles.rho[i] = 0.0f;
    });
    DensityKernelT<Shape> kernel(particles, scratch_, active);
    run_pass(kernel);
    for_each_slot(perm.size(), pool, [&](std::size_t s) {
      const std::uint32_t i = perm[s];
      if (active && !active[i]) return;
      particles.rho[i] +=
          particles.mass[i] * Shape::w(0.0f, particles.hsml[i]);
    });
  }

  // EOS and volumes for every gas particle (ghosts and inactive included:
  // they serve as neighbors below).
  {
    HACC_TRACE_SPAN("sph_eos");
    Stopwatch watch;
    for_each_slot(perm.size(), pool, [&](std::size_t s) {
      const std::uint32_t i = perm[s];
      const float rho = std::max(particles.rho[i], 1e-20f);
      scratch_.volume[i] = particles.mass[i] / rho;
      scratch_.press[i] = pressure(rho, particles.u[i]);
      scratch_.cs[i] = sound_speed(particles.u[i]);
    });
    // ~10 flops per particle (division, products, sqrt).
    flops.add("sph_eos", 10.0 * static_cast<double>(perm.size()),
              watch.seconds());
  }

  // Pass 2: CRK moments + per-particle coefficient solve. Moments were
  // zeroed by scratch resize; the self term only touches m0.
  if (config_.use_crk) {
    CrkMomentKernelT<Shape> kernel(particles, scratch_, active);
    run_pass(kernel);

    HACC_TRACE_SPAN("crk_coeff_solve");
    Stopwatch watch;
    for_each_slot(perm.size(), pool, [&](std::size_t s) {
      const std::uint32_t i = perm[s];
      if (active && !active[i]) return;
      scratch_.moments[i].m0 +=
          scratch_.volume[i] * Shape::w(0.0f, particles.hsml[i]);
    });
    for_each_slot(perm.size(), pool, [&](std::size_t s) {
      const std::uint32_t i = perm[s];
      const auto coeff = solve_crk(scratch_.moments[i]);
      scratch_.crk_a[i] = coeff.a;
      scratch_.crk_b[i] = coeff.b;
    });
    flops.add("crk_coeff_solve",
              kSolveFlops * static_cast<double>(perm.size()), watch.seconds());
  }

  // Pass 3: corrected momentum + energy (accumulates into ax/ay/az/du).
  {
    MomentumEnergyKernelT<Shape> kernel(particles, scratch_, active,
                                        config_.viscosity,
                                        static_cast<float>(1.0 / a));
    run_pass(kernel);
  }
}

void SphSolver::update_smoothing_lengths(Particles& particles,
                                         const std::uint8_t* active) const {
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!particles.is_gas(i)) continue;
    if (active && !active[i]) continue;
    const float rho = std::max(particles.rho[i], 1e-20f);
    const float target =
        config_.eta * std::cbrt(particles.mass[i] / rho);
    if (!std::isfinite(target)) {
      // A NaN mass or density (corrupted state) would otherwise poison
      // hsml and from there every neighbor search. Keep the old h and
      // let the SDC auditor read the census.
      ++nonfinite_targets_;
      continue;
    }
    const float lo = particles.hsml[i] / config_.h_change_limit;
    const float hi = particles.hsml[i] * config_.h_change_limit;
    particles.hsml[i] = std::min(std::clamp(target, lo, hi), config_.h_max);
  }
}

double SphSolver::min_timestep(const Particles& particles,
                               const std::uint8_t* active, double a,
                               double fallback) const {
  double dt = fallback;
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (!particles.is_gas(i)) continue;
    if (active && !active[i]) continue;
    const float vsig = std::max(scratch_.vsig[i], scratch_.cs[i]);
    if (vsig <= 0.0f) continue;
    dt = std::min(dt, static_cast<double>(config_.cfl) * a *
                          particles.hsml[i] / vsig);
  }
  return dt;
}

}  // namespace crkhacc::sph
