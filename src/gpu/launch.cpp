#include "gpu/launch.h"

#include "tree/chaining_mesh.h"
#include "util/assertions.h"

namespace crkhacc::gpu {

LaunchPlan::LaunchPlan(const tree::ChainingMesh& cm,
                       std::span<const Pair> pairs)
    : pairs_(pairs.begin(), pairs.end()) {
  const std::size_t nleaves = cm.num_leaves();

  // Pass 1: entries per leaf. A self pair is one both-sides entry on its
  // owner; a cross pair is one entry on each owner.
  std::vector<std::uint32_t> count(nleaves, 0);
  for (const auto& [la, lb] : pairs_) {
    CHECK_MSG(la <= lb && lb < nleaves,
              "interaction pair is not (i <= j) within the mesh");
    ++count[la];
    if (lb != la) ++count[lb];
  }

  // CSR offsets over ALL leaves (zero-count leaves collapse to empty
  // ranges and are dropped from owners_ below).
  std::vector<std::uint32_t> offset(nleaves + 1, 0);
  for (std::size_t l = 0; l < nleaves; ++l) {
    offset[l + 1] = offset[l] + count[l];
  }
  entries_.resize(offset[nleaves]);

  // Pass 2: scatter in pair order. Cursors advance monotonically, so each
  // owner's entries end up ordered by the pair index they came from —
  // the invariant the bitwise-determinism argument rests on.
  std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
  for (const auto& [la, lb] : pairs_) {
    if (la == lb) {
      entries_[cursor[la]++] = Entry{lb, Side::kBoth};
    } else {
      entries_[cursor[la]++] = Entry{lb, Side::kISide};
      entries_[cursor[lb]++] = Entry{la, Side::kJSide};
    }
  }

  owners_.reserve(nleaves);
  entry_begin_.reserve(nleaves + 1);
  for (std::size_t l = 0; l < nleaves; ++l) {
    if (count[l] == 0) continue;
    owners_.push_back(static_cast<std::uint32_t>(l));
    entry_begin_.push_back(offset[l]);
  }
  entry_begin_.push_back(offset[nleaves]);
}

LaunchPlan LaunchPlan::from_owner_tasks(std::vector<std::uint32_t> owners,
                                        std::vector<std::uint32_t> entry_begin,
                                        std::vector<Entry> entries) {
  CHECK_MSG(entry_begin.size() == owners.size() + 1,
            "owner-task CSR offsets must have owners + 1 entries");
  CHECK_MSG(entry_begin.empty() || entry_begin.back() == entries.size(),
            "owner-task CSR offsets must cover the entry array");
  LaunchPlan plan;
  plan.owners_ = std::move(owners);
  plan.entry_begin_ = std::move(entry_begin);
  plan.entries_ = std::move(entries);
  return plan;
}

}  // namespace crkhacc::gpu
