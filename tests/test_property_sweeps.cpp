// Cross-cutting property sweeps: the pairwise-solver invariants must hold
// for EVERY combination of tree granularity, warp width, and launch mode —
// these parameters tile the execution differently but must never change
// the physics.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/warp.h"
#include "gravity/short_range.h"
#include "sph/solver.h"
#include "support/clustered_ic.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

Particles random_gas(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = p.push_back(
        i, Species::kGas, static_cast<float>(rng.next_double() * box),
        static_cast<float>(rng.next_double() * box),
        static_cast<float>(rng.next_double() * box),
        static_cast<float>(20.0 * rng.next_gaussian()),
        static_cast<float>(20.0 * rng.next_gaussian()),
        static_cast<float>(20.0 * rng.next_gaussian()),
        static_cast<float>(0.5 + rng.next_double()));
    p.hsml[idx] = 0.8f;
    p.u[idx] = static_cast<float>(50.0 + 100.0 * rng.next_double());
  }
  return p;
}

// (leaf_size, warp_size, mode)
using SolverParams = std::tuple<std::uint32_t, std::uint32_t, gpu::LaunchMode>;

class SolverTilingTest : public ::testing::TestWithParam<SolverParams> {};

TEST_P(SolverTilingTest, GravityInvariantUnderExecutionTiling) {
  const auto [leaf_size, warp_size, mode] = GetParam();
  const double box = 6.0;
  auto p = random_gas(300, box, 31);

  // Reference: finest-grained naive execution.
  Particles reference = p;
  {
    tree::ChainingMesh mesh(cube(box), {2.0, 16});
    mesh.build(reference);
    gravity::GravityConfig config;
    config.launch.mode = gpu::LaunchMode::kNaive;
    gpu::FlopRegistry flops;
    gravity::compute_short_range(reference, mesh, nullptr, config, 1.0,
                                 nullptr, flops);
  }

  tree::ChainingMesh mesh(cube(box), {2.0, leaf_size});
  mesh.build(p);
  gravity::GravityConfig config;
  config.launch.warp_size = warp_size;
  config.launch.mode = mode;
  gpu::FlopRegistry flops;
  gravity::compute_short_range(p, mesh, nullptr, config, 1.0, nullptr, flops);

  for (std::size_t i = 0; i < p.size(); ++i) {
    const double scale = std::abs(reference.ax[i]) + 1e-2;
    ASSERT_NEAR(p.ax[i], reference.ax[i], 2e-3 * scale) << "particle " << i;
    ASSERT_NEAR(p.ay[i], reference.ay[i],
                2e-3 * (std::abs(reference.ay[i]) + 1e-2));
  }
}

TEST_P(SolverTilingTest, SphConservationInvariantUnderExecutionTiling) {
  const auto [leaf_size, warp_size, mode] = GetParam();
  const double box = 6.0;
  auto p = random_gas(300, box, 32);

  tree::ChainingMesh mesh(cube(box), {3.0, leaf_size});
  std::vector<std::uint32_t> gas(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    gas[i] = static_cast<std::uint32_t>(i);
  }
  mesh.build(p, gas);

  sph::SphConfig config;
  config.launch.warp_size = warp_size;
  config.launch.mode = mode;
  sph::SphSolver solver(config);
  gpu::FlopRegistry flops;
  solver.compute_forces(p, mesh, 1.0, nullptr, flops);

  // Momentum and energy-exchange conservation must hold for every tiling.
  double fx = 0.0, fy = 0.0, fz = 0.0, scale = 0.0;
  double dke = 0.0, dth = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double m = p.mass[i];
    fx += m * p.ax[i];
    fy += m * p.ay[i];
    fz += m * p.az[i];
    scale += std::abs(m * p.ax[i]);
    dke += m * (p.vx[i] * p.ax[i] + p.vy[i] * p.ay[i] + p.vz[i] * p.az[i]);
    dth += m * p.du[i];
  }
  EXPECT_LT(std::abs(fx), 2e-3 * std::max(scale, 1e-9));
  EXPECT_LT(std::abs(fy), 2e-3 * std::max(scale, 1e-9));
  EXPECT_LT(std::abs(fz), 2e-3 * std::max(scale, 1e-9));
  EXPECT_NEAR(dth, -dke, 2e-3 * (std::abs(dke) + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, SolverTilingTest,
    ::testing::Combine(::testing::Values(8u, 32u, 96u),
                       ::testing::Values(16u, 32u, 64u),
                       ::testing::Values(gpu::LaunchMode::kNaive,
                                         gpu::LaunchMode::kWarpSplit)),
    [](const ::testing::TestParamInfo<SolverParams>& info) {
      // NOTE: no structured bindings here — commas inside the binding
      // list would split the INSTANTIATE macro's arguments.
      return "leaf" + std::to_string(std::get<0>(info.param)) + "_warp" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == gpu::LaunchMode::kNaive
                  ? "_naive"
                  : "_warpsplit");
    });

// --- threaded sweep ----------------------------------------------------------
//
// The threading invariant must hold for every (problem size, thread
// count) combination: the pool only re-schedules fixed chunks, so the
// full short-range evaluation is bitwise identical to serial execution.

// (particle_count, threads, seed)
using ThreadedParams = std::tuple<std::size_t, unsigned, std::uint64_t>;

class ThreadedSweepTest : public ::testing::TestWithParam<ThreadedParams> {};

TEST_P(ThreadedSweepTest, ShortRangePipelineBitwiseEqualToSerial) {
  const auto [n, threads, seed] = GetParam();
  const double box = 6.0;
  const auto base = random_gas(n, box, seed);

  tree::ChainingMesh serial_mesh(cube(box), {2.0, 24});
  serial_mesh.build(base);

  util::ThreadPool pool(threads);
  tree::ChainingMesh threaded_mesh(cube(box), {2.0, 24});
  threaded_mesh.build(base, &pool);
  ASSERT_EQ(threaded_mesh.permutation(), serial_mesh.permutation());

  auto evaluate = [&](const tree::ChainingMesh& mesh, util::ThreadPool* p_pool,
                      gpu::LaunchSchedule schedule) {
    Particles p = base;
    gpu::FlopRegistry flops;
    gravity::GravityConfig gravity_config;
    gravity_config.launch.schedule = schedule;
    gravity::compute_short_range(p, mesh, nullptr, gravity_config, 1.0,
                                 nullptr, flops, nullptr, p_pool);
    sph::SphConfig sph_config;
    sph_config.launch.schedule = schedule;
    sph::SphSolver solver(sph_config);
    solver.compute_forces(p, mesh, 1.0, nullptr, flops, nullptr, p_pool);
    return p;
  };
  const Particles serial =
      evaluate(serial_mesh, nullptr, gpu::LaunchSchedule::kLeafOwner);
  // Both pool schedules must reproduce the serial pipeline bitwise.
  for (const auto schedule : {gpu::LaunchSchedule::kLeafOwner,
                              gpu::LaunchSchedule::kDeferredStore}) {
    const Particles threaded = evaluate(threaded_mesh, &pool, schedule);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(threaded.ax[i], serial.ax[i]) << "particle " << i;
      ASSERT_EQ(threaded.ay[i], serial.ay[i]) << "particle " << i;
      ASSERT_EQ(threaded.az[i], serial.az[i]) << "particle " << i;
      ASSERT_EQ(threaded.rho[i], serial.rho[i]) << "particle " << i;
      ASSERT_EQ(threaded.du[i], serial.du[i]) << "particle " << i;
    }
  }
}

TEST_P(ThreadedSweepTest, ClusteredIcPipelineBitwiseEqualToSerial) {
  // Same invariant on the load-balancer's worst case: two Plummer
  // spheres pile most pair work into a few bins, producing leaf sizes
  // and tile shapes a uniform cloud never exercises.
  const auto [n, threads, seed] = GetParam();
  const double box = 12.0;
  testsupport::ClusteredIcConfig ic;
  ic.box = box;
  ic.count = n;
  ic.scale = 1.0;
  ic.seed = seed;
  ic.center_a = {3.0, 3.0, 6.0};
  ic.center_b = {9.0, 9.0, 6.0};
  ic.species = Species::kGas;
  const Particles base = testsupport::clustered_two_sphere_ic(ic);

  tree::ChainingMesh serial_mesh(cube(box), {2.0, 24});
  serial_mesh.build(base);
  util::ThreadPool pool(threads);
  tree::ChainingMesh threaded_mesh(cube(box), {2.0, 24});
  threaded_mesh.build(base, &pool);
  ASSERT_EQ(threaded_mesh.permutation(), serial_mesh.permutation());

  auto evaluate = [&](const tree::ChainingMesh& mesh,
                      util::ThreadPool* p_pool) {
    Particles p = base;
    gpu::FlopRegistry flops;
    gravity::GravityConfig gravity_config;
    gravity::compute_short_range(p, mesh, nullptr, gravity_config, 1.0,
                                 nullptr, flops, nullptr, p_pool);
    return p;
  };
  const Particles serial = evaluate(serial_mesh, nullptr);
  const Particles threaded = evaluate(threaded_mesh, &pool);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(threaded.ax[i], serial.ax[i]) << "particle " << i;
    ASSERT_EQ(threaded.ay[i], serial.ay[i]) << "particle " << i;
    ASSERT_EQ(threaded.az[i], serial.az[i]) << "particle " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Threading, ThreadedSweepTest,
    ::testing::Combine(::testing::Values(std::size_t{37}, std::size_t{200},
                                         std::size_t{611}),
                       ::testing::Values(2u, 4u, 8u),
                       ::testing::Values(std::uint64_t{101},
                                         std::uint64_t{202})),
    [](const ::testing::TestParamInfo<ThreadedParams>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_t" +
             std::to_string(std::get<1>(info.param)) + "_seed" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace crkhacc
