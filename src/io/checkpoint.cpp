#include "io/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <filesystem>

#include "io/multi_tier.h"

namespace crkhacc::io {
namespace fs = std::filesystem;

std::optional<std::uint64_t> latest_complete_checkpoint(ThrottledStore& pfs,
                                                        int num_ranks) {
  // Enumerate ckpt/stepNNNNNN directories.
  std::vector<std::uint64_t> steps;
  const auto ckpt_dir = fs::path(pfs.full_path("ckpt"));
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(ckpt_dir, ec)) {
    if (!entry.is_directory()) continue;
    const auto name = entry.path().filename().string();
    if (name.rfind("step", 0) != 0) continue;
    std::uint64_t step = 0;
    const char* begin = name.c_str() + 4;
    const char* end = name.c_str() + name.size();
    if (std::from_chars(begin, end, step).ec == std::errc{}) {
      steps.push_back(step);
    }
  }
  std::sort(steps.rbegin(), steps.rend());

  for (std::uint64_t step : steps) {
    bool complete = true;
    for (int r = 0; r < num_ranks && complete; ++r) {
      complete = pfs.exists(MultiTierWriter::checkpoint_path(step, r)) &&
                 pfs.exists(MultiTierWriter::marker_path(step, r));
    }
    if (complete) return step;
  }
  return std::nullopt;
}

bool restore_checkpoint(ThrottledStore& pfs, std::uint64_t step, int rank,
                        SnapshotMeta& meta, Particles& out) {
  std::vector<std::uint8_t> bytes;
  if (!pfs.read(MultiTierWriter::checkpoint_path(step, rank), bytes)) {
    return false;
  }
  return decode_snapshot(bytes, meta, out);
}

}  // namespace crkhacc::io
