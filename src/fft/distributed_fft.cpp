#include "fft/distributed_fft.h"

#include "util/assertions.h"
#include "util/trace.h"

namespace crkhacc::fft {

DistributedFFT::DistributedFFT(comm::Communicator& comm, std::size_t n)
    : comm_(comm),
      n_(n),
      z_part_(n, comm.size()),
      x_part_(n, comm.size()),
      real_(local_z_count() * n * n, Complex(0.0, 0.0)),
      k_(local_kx_count() * n * n, Complex(0.0, 0.0)) {
  CHECK(n >= 1);
}

void DistributedFFT::forward() {
  HACC_TRACE_SPAN("fft_forward");
  const std::size_t nz_local = local_z_count();
  // 2-D (x, y) FFT on every local z-plane.
  for (std::size_t zl = 0; zl < nz_local; ++zl) {
    Complex* plane = &real_[zl * n_ * n_];
    for (std::size_t y = 0; y < n_; ++y) {
      transform_line(plane + y * n_, n_, 1, false);
    }
    for (std::size_t x = 0; x < n_; ++x) {
      transform_line(plane + x, n_, n_, false);
    }
  }
  transpose_z_to_x();
  // 1-D z FFTs (contiguous in the k layout).
  const std::size_t nx_local = local_kx_count();
  for (std::size_t xl = 0; xl < nx_local; ++xl) {
    for (std::size_t y = 0; y < n_; ++y) {
      transform_line(&k_[(xl * n_ + y) * n_], n_, 1, false);
    }
  }
}

void DistributedFFT::backward() {
  HACC_TRACE_SPAN("fft_backward");
  const std::size_t nx_local = local_kx_count();
  for (std::size_t xl = 0; xl < nx_local; ++xl) {
    for (std::size_t y = 0; y < n_; ++y) {
      transform_line(&k_[(xl * n_ + y) * n_], n_, 1, true);
    }
  }
  transpose_x_to_z();
  const std::size_t nz_local = local_z_count();
  for (std::size_t zl = 0; zl < nz_local; ++zl) {
    Complex* plane = &real_[zl * n_ * n_];
    for (std::size_t y = 0; y < n_; ++y) {
      transform_line(plane + y * n_, n_, 1, true);
    }
    for (std::size_t x = 0; x < n_; ++x) {
      transform_line(plane + x, n_, n_, true);
    }
  }
}

void DistributedFFT::transpose_z_to_x() {
  const int p = comm_.size();
  const std::size_t nz_local = local_z_count();
  // Pack: message to rank d contains, ordered (x_local_d, y, z_local_src),
  // the x-range owned by d for every local plane.
  std::vector<std::vector<Complex>> sends(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const std::size_t x0 = x_part_.start(d);
    const std::size_t nxd = x_part_.count(d);
    auto& buf = sends[static_cast<std::size_t>(d)];
    buf.resize(nxd * n_ * nz_local);
    std::size_t w = 0;
    for (std::size_t xi = 0; xi < nxd; ++xi) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t zl = 0; zl < nz_local; ++zl) {
          buf[w++] = real_[(zl * n_ + y) * n_ + (x0 + xi)];
        }
      }
    }
  }
  auto recvs = comm_.alltoallv(sends);
  // Unpack into (x_local, y, z) with z fastest.
  const std::size_t nx_local = local_kx_count();
  k_.assign(nx_local * n_ * n_, Complex(0.0, 0.0));
  for (int s = 0; s < p; ++s) {
    const std::size_t z0 = z_part_.start(s);
    const std::size_t nzs = z_part_.count(s);
    const auto& buf = recvs[static_cast<std::size_t>(s)];
    CHECK(buf.size() == nx_local * n_ * nzs);
    std::size_t r = 0;
    for (std::size_t xl = 0; xl < nx_local; ++xl) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t zi = 0; zi < nzs; ++zi) {
          k_[(xl * n_ + y) * n_ + (z0 + zi)] = buf[r++];
        }
      }
    }
  }
}

void DistributedFFT::transpose_x_to_z() {
  const int p = comm_.size();
  const std::size_t nx_local = local_kx_count();
  // Pack: message to rank d contains, ordered (x_local_src, y, z_local_d),
  // the z-range owned by d for every local x line.
  std::vector<std::vector<Complex>> sends(static_cast<std::size_t>(p));
  for (int d = 0; d < p; ++d) {
    const std::size_t z0 = z_part_.start(d);
    const std::size_t nzd = z_part_.count(d);
    auto& buf = sends[static_cast<std::size_t>(d)];
    buf.resize(nx_local * n_ * nzd);
    std::size_t w = 0;
    for (std::size_t xl = 0; xl < nx_local; ++xl) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t zi = 0; zi < nzd; ++zi) {
          buf[w++] = k_[(xl * n_ + y) * n_ + (z0 + zi)];
        }
      }
    }
  }
  auto recvs = comm_.alltoallv(sends);
  const std::size_t nz_local = local_z_count();
  real_.assign(nz_local * n_ * n_, Complex(0.0, 0.0));
  for (int s = 0; s < p; ++s) {
    const std::size_t x0 = x_part_.start(s);
    const std::size_t nxs = x_part_.count(s);
    const auto& buf = recvs[static_cast<std::size_t>(s)];
    CHECK(buf.size() == nxs * n_ * nz_local);
    std::size_t r = 0;
    for (std::size_t xi = 0; xi < nxs; ++xi) {
      for (std::size_t y = 0; y < n_; ++y) {
        for (std::size_t zl = 0; zl < nz_local; ++zl) {
          real_[(zl * n_ + y) * n_ + (x0 + xi)] = buf[r++];
        }
      }
    }
  }
}

}  // namespace crkhacc::fft
