// Structure-of-arrays particle storage.
//
// One container holds every species (dark matter, gas, stars, black holes)
// exactly as CRK-HACC keeps all tracers in unified per-rank arrays that
// are pushed to the device each PM step. SoA layout keeps the short-range
// kernels' memory accesses coalesced-equivalent (unit stride per field).
//
// Positions are comoving (Mpc/h), velocities peculiar (km/s), masses in
// 1e10 Msun/h, internal energy in (km/s)^2. FP32 state matches the paper's
// mixed-precision split: the short-range solver runs single precision.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assertions.h"

namespace crkhacc {

enum class Species : std::uint8_t {
  kDarkMatter = 0,
  kGas = 1,
  kStar = 2,
  kBlackHole = 3,
};

struct Particles {
  std::vector<std::uint64_t> id;
  std::vector<float> x, y, z;     ///< comoving position
  std::vector<float> vx, vy, vz;  ///< peculiar velocity
  std::vector<float> mass;
  std::vector<std::uint8_t> species;

  // Hydro / subgrid state (meaningful for kGas; zero elsewhere).
  std::vector<float> u;      ///< specific internal energy
  std::vector<float> rho;    ///< SPH mass density (comoving)
  std::vector<float> hsml;   ///< smoothing length
  std::vector<float> metal;  ///< metal mass fraction

  // Per-step work arrays.
  std::vector<float> ax, ay, az;  ///< acceleration accumulator
  std::vector<float> du;          ///< du/dt accumulator
  std::vector<std::uint8_t> bin;  ///< hierarchical timestep bin
  std::vector<std::uint8_t> ghost;  ///< 1 if overloaded replica, 0 if owned

  std::size_t size() const { return x.size(); }
  bool empty() const { return x.empty(); }

  void clear() { resize(0); }

  void resize(std::size_t n) {
    id.resize(n);
    x.resize(n); y.resize(n); z.resize(n);
    vx.resize(n); vy.resize(n); vz.resize(n);
    mass.resize(n);
    species.resize(n);
    u.resize(n); rho.resize(n); hsml.resize(n); metal.resize(n);
    ax.resize(n); ay.resize(n); az.resize(n); du.resize(n);
    bin.resize(n); ghost.resize(n);
  }

  void reserve(std::size_t n) {
    id.reserve(n);
    x.reserve(n); y.reserve(n); z.reserve(n);
    vx.reserve(n); vy.reserve(n); vz.reserve(n);
    mass.reserve(n);
    species.reserve(n);
    u.reserve(n); rho.reserve(n); hsml.reserve(n); metal.reserve(n);
    ax.reserve(n); ay.reserve(n); az.reserve(n); du.reserve(n);
    bin.reserve(n); ghost.reserve(n);
  }

  /// Append a bare tracer; hydro/work fields are zero-initialized.
  std::size_t push_back(std::uint64_t pid, Species sp, float px, float py,
                        float pz, float pvx, float pvy, float pvz, float m) {
    const std::size_t i = size();
    id.push_back(pid);
    x.push_back(px); y.push_back(py); z.push_back(pz);
    vx.push_back(pvx); vy.push_back(pvy); vz.push_back(pvz);
    mass.push_back(m);
    species.push_back(static_cast<std::uint8_t>(sp));
    u.push_back(0.0f); rho.push_back(0.0f); hsml.push_back(0.0f);
    metal.push_back(0.0f);
    ax.push_back(0.0f); ay.push_back(0.0f); az.push_back(0.0f);
    du.push_back(0.0f);
    bin.push_back(0); ghost.push_back(0);
    return i;
  }

  /// Copy particle `src_index` of `src` onto the end of this container.
  void append_from(const Particles& src, std::size_t src_index) {
    const std::size_t j = src_index;
    HACC_ASSERT(j < src.size());
    id.push_back(src.id[j]);
    x.push_back(src.x[j]); y.push_back(src.y[j]); z.push_back(src.z[j]);
    vx.push_back(src.vx[j]); vy.push_back(src.vy[j]); vz.push_back(src.vz[j]);
    mass.push_back(src.mass[j]);
    species.push_back(src.species[j]);
    u.push_back(src.u[j]); rho.push_back(src.rho[j]);
    hsml.push_back(src.hsml[j]); metal.push_back(src.metal[j]);
    ax.push_back(src.ax[j]); ay.push_back(src.ay[j]); az.push_back(src.az[j]);
    du.push_back(src.du[j]);
    bin.push_back(src.bin[j]); ghost.push_back(src.ghost[j]);
  }

  /// Overwrite particle i with particle j (used by compaction/removal).
  void copy_within(std::size_t dst, std::size_t src) {
    id[dst] = id[src];
    x[dst] = x[src]; y[dst] = y[src]; z[dst] = z[src];
    vx[dst] = vx[src]; vy[dst] = vy[src]; vz[dst] = vz[src];
    mass[dst] = mass[src];
    species[dst] = species[src];
    u[dst] = u[src]; rho[dst] = rho[src];
    hsml[dst] = hsml[src]; metal[dst] = metal[src];
    ax[dst] = ax[src]; ay[dst] = ay[src]; az[dst] = az[src];
    du[dst] = du[src];
    bin[dst] = bin[src]; ghost[dst] = ghost[src];
  }

  /// Remove all particles whose keep[i] is false, preserving order of kept
  /// particles. keep.size() must equal size().
  void compact(const std::vector<bool>& keep) {
    HACC_ASSERT(keep.size() == size());
    std::size_t w = 0;
    for (std::size_t r = 0; r < size(); ++r) {
      if (!keep[r]) continue;
      if (w != r) copy_within(w, r);
      ++w;
    }
    resize(w);
  }

  bool is_gas(std::size_t i) const {
    return species[i] == static_cast<std::uint8_t>(Species::kGas);
  }
  bool is_owned(std::size_t i) const { return ghost[i] == 0; }

  /// Fixed-size record used for wire transfer and checkpointing. Carries
  /// the ghost flag so checkpoints can include the overloaded regions
  /// (as the paper's checkpoints do) and restore them faithfully.
  struct Record {
    std::uint64_t id;
    float x, y, z, vx, vy, vz, mass;
    float u, rho, hsml, metal;
    std::uint8_t species;
    std::uint8_t bin;
    std::uint8_t ghost;
  };

  Record record(std::size_t i) const {
    return Record{id[i], x[i], y[i], z[i], vx[i], vy[i], vz[i], mass[i],
                  u[i], rho[i], hsml[i], metal[i], species[i], bin[i],
                  ghost[i]};
  }

  std::size_t append_record(const Record& r) {
    const std::size_t i =
        push_back(r.id, static_cast<Species>(r.species), r.x, r.y, r.z, r.vx,
                  r.vy, r.vz, r.mass);
    u[i] = r.u; rho[i] = r.rho; hsml[i] = r.hsml; metal[i] = r.metal;
    bin[i] = r.bin;
    ghost[i] = r.ghost;
    return i;
  }
};

}  // namespace crkhacc
