// Minimal leveled logger.
//
// Rank-aware: once a simulation attaches a rank id, messages are prefixed
// with it so interleaved multi-rank traces stay readable. Not intended to
// be hot-path; force-inlined level check keeps disabled levels cheap.
#pragma once

#include <cstdarg>
#include <string>

namespace crkhacc::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are dropped.
void set_level(Level level);
Level level();

/// Optional rank prefix for multi-rank traces (-1 disables the prefix).
void set_rank(int rank);

void write(Level level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

#define HACC_LOG_DEBUG(...) ::crkhacc::log::write(::crkhacc::log::Level::kDebug, __VA_ARGS__)
#define HACC_LOG_INFO(...) ::crkhacc::log::write(::crkhacc::log::Level::kInfo, __VA_ARGS__)
#define HACC_LOG_WARN(...) ::crkhacc::log::write(::crkhacc::log::Level::kWarn, __VA_ARGS__)
#define HACC_LOG_ERROR(...) ::crkhacc::log::write(::crkhacc::log::Level::kError, __VA_ARGS__)

}  // namespace crkhacc::log
