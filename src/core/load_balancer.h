// Rank-level dynamic load balancing by owner-leaf work-packet migration.
//
// Clustered matter makes short-range pair work wildly non-uniform across
// ranks while the PM mesh stays uniform (GRACOS and the parallel TreePM
// literature balance the same way: migrate short-range WORK, not domain
// geometry). Once per PM step — between the chaining-mesh build and the
// sub-cycled pair kernels — every rank cost-models its short-range work
// from the CM bin-occupancy census (pair count ∝ Σ n_i·n_j over
// neighbor bins), optionally blended with the previous step's measured
// short-range phase seconds, and the ranks collectively agree on
// (donor → helper) migrations to underloaded neighbor ranks
// (comm::CartDecomposition::neighbors_of). For each substep of that
// step the donor ships the owner-leaf tasks of its most expensive CM
// bins as a comm::WorkPacket, executes the rest locally, and copies the
// helper's returned accelerations back.
//
// The bitwise-determinism contract holds through migration:
//  * particles stay home — only leaf ghost data and accumulations travel;
//  * each particle is still written by exactly one owner task, executed
//    either locally or remotely from identical inputs (positions and
//    masses in leaf-perm order, zeroed accumulators, the same global
//    kernel constants) through the identical tile walk;
//  * the donor replaces its zeroed accumulators with the returned
//    values under the same activity mask the local store would have
//    applied.
// So a balanced run is bit_cast-identical to the unbalanced one at any
// thread count and launch schedule (tests/test_load_balance.cpp).
//
// The policy is hysteresis-gated and off by default (lb_threshold <= 0):
// untouched configs execute zero additional collectives or sends.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "comm/decomposition.h"
#include "comm/work_packets.h"
#include "comm/world.h"
#include "core/config.h"
#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/launch.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "tree/chaining_mesh.h"
#include "util/thread_pool.h"

namespace crkhacc::core {

// --- cost model (pure, unit-tested against brute force) -----------------

/// Census cost of every CM bin: with n_b particles in bin b,
/// cost_b = n_b (n_b - 1) + n_b · Σ_{b' ∈ 26-neighborhood} n_{b'} —
/// the ordered pair-interaction count bin b's owner leaves evaluate if
/// every neighbor-bin pair is within the cutoff. Integer-valued, so
/// sums are exact in double and identical on every rank.
std::vector<double> lb_bin_costs(const tree::ChainingMesh& mesh);

/// Σ of lb_bin_costs — the rank's census cost.
double lb_census_cost(const tree::ChainingMesh& mesh);

/// Blend measured per-rank short-range seconds into the census: both
/// signals normalized to mean 1 and averaged, rescaled to census units.
/// Falls back to the pure census when any rank lacks a measurement
/// (first step, tracing off) so decisions stay deterministic then.
std::vector<double> lb_blend_costs(const std::vector<double>& census,
                                   const std::vector<double>& measured);

// --- assignment policy (pure) -------------------------------------------

/// One agreed migration: `donor` ships ~`delta` cost to `helper`.
struct LbMigration {
  int donor = -1;
  int helper = -1;
  double delta = 0.0;
};

struct LbPlan {
  double imbalance_before = 1.0;  ///< max/mean of the input costs
  double imbalance_after = 1.0;   ///< predicted max/mean after the shifts
  std::vector<LbMigration> migrations;
};

/// Pair overloaded ranks with underloaded neighbors: donors in
/// descending cost order (ties to the lower rank) each claim their
/// cheapest not-yet-claimed underloaded neighbor (ties to the lower
/// rank); donor and helper sets stay disjoint, which is what makes the
/// per-substep request/reply protocol deadlock-free. The shifted amount
/// is min(donor excess, helper headroom, max_fraction · donor cost).
/// Pure function of its arguments — every rank computes the identical
/// plan from the allgathered costs.
LbPlan lb_assign(const std::vector<double>& costs,
                 const comm::CartDecomposition& decomp,
                 const LbConfig& config);

/// Hysteresis gate: engage when `ratio` exceeds threshold; once
/// engaged, stay engaged until ratio falls below the re-arm level
/// 1 + hysteresis · (threshold - 1). threshold <= 0 is always off.
bool lb_gate(double ratio, bool engaged, const LbConfig& config);

/// Donor-local bin choice: greedily take the most expensive bins
/// (ties to the lower bin index) while shipped + cost_b / 2 <= delta,
/// so the shipped cost lands within [delta/2, 2·delta) of the target
/// whenever any single bin fits. Returns per-bin flags.
std::vector<std::uint8_t> lb_pick_bins(const std::vector<double>& bin_costs,
                                       double delta);

// --- per-step decision and execution ------------------------------------

/// What this rank does for the current PM step. Identical collective
/// inputs produce identical decisions on every rank (and on SDC
/// rollback replays).
struct LbDecision {
  bool decided = false;  ///< the collective decision ran this step
  double imbalance_before = 1.0;
  double imbalance_after = 1.0;

  int helper = -1;  ///< >= 0: this rank is a donor shipping to `helper`
  std::vector<std::uint8_t> bin_migrated;  ///< donor only: per CM bin

  std::vector<int> donors;  ///< ranks this rank serves, ascending
  std::vector<std::uint64_t> donor_substeps;  ///< their substep counts

  bool is_donor() const { return helper >= 0; }
  bool is_helper() const { return !donors.empty(); }
};

class LoadBalancer {
 public:
  using Pair = std::pair<std::uint32_t, std::uint32_t>;

  LoadBalancer(comm::Communicator& comm, const comm::CartDecomposition& decomp,
               const LbConfig& config)
      : comm_(comm), decomp_(decomp), config_(config) {}

  /// Whether the balancer participates at all. Constant per run, so the
  /// decision collective either runs on every rank every step or never.
  bool enabled() const { return config_.threshold > 0.0 && comm_.size() > 1; }

  /// Collective (one allgather). Call on every rank, between bin
  /// assignment and the substep loop. `nfine` is this rank's substep
  /// count for the step; `measured_seconds` the previous step's
  /// short-range phase seconds (0 when unavailable).
  LbDecision decide(const tree::ChainingMesh& mesh, std::uint64_t nfine,
                    double measured_seconds);

  /// Donor-side gravity for one substep: ship the migrated owner tasks
  /// of the (mesh, pairs) plan to the helper, execute the rest locally
  /// (same kernel construction as gravity::compute_short_range), then
  /// block for the reply and copy the returned accelerations onto the
  /// active migrated-leaf particles. Returns the local launch stats.
  gpu::LaunchStats donor_substep(Particles& particles,
                                 const tree::ChainingMesh& mesh,
                                 const std::vector<Pair>& pairs,
                                 const mesh::ForceSplit* split,
                                 const gravity::GravityConfig& gconfig,
                                 double a_mid, const std::uint8_t* active,
                                 gpu::FlopRegistry& flops,
                                 util::ThreadPool* pool, const LbDecision& d,
                                 std::uint64_t substep);

  /// Helper-side service for one donor substep index: for every donor
  /// still sub-cycling at `substep`, receive its packet, execute it,
  /// and reply. Called after the helper's own gravity launch each of
  /// its own substeps (donors and helpers are disjoint, so the blocking
  /// recv cannot deadlock).
  void serve(const LbDecision& d, std::uint64_t substep,
             const mesh::ForceSplit* split,
             const gravity::GravityConfig& gconfig, gpu::FlopRegistry& flops,
             util::ThreadPool* pool);

  /// Helper-side drain after its own substep loop: serve the remaining
  /// substeps of donors that sub-cycle deeper than this rank.
  void drain(const LbDecision& d, std::uint64_t from_substep,
             const mesh::ForceSplit* split,
             const gravity::GravityConfig& gconfig, gpu::FlopRegistry& flops,
             util::ThreadPool* pool);

  // Cumulative counters for metrics export.
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t migration_steps() const { return migration_steps_; }
  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t packets_served() const { return packets_served_; }

 private:
  comm::Communicator& comm_;
  const comm::CartDecomposition& decomp_;
  LbConfig config_;

  bool engaged_ = false;  ///< hysteresis state, identical on all ranks

  std::uint64_t decisions_ = 0;
  std::uint64_t migration_steps_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_served_ = 0;
};

/// Packet extraction (exposed for the round-trip unit tests): the
/// migrated tasks are those with skip_task[t] set; shipped leaves are
/// the migrated owners plus every partner their entries read, in
/// ascending global-leaf order.
comm::WorkPacket extract_work_packet(const Particles& particles,
                                     const tree::ChainingMesh& mesh,
                                     const gpu::LaunchPlan& plan,
                                     const std::vector<std::uint8_t>& skip_task,
                                     double a_mid, std::uint32_t substep,
                                     std::uint32_t donor_rank);

/// Reply application (exposed for the unit tests): assign the returned
/// accelerations to the donor's migrated-leaf particles under the
/// activity mask — the bitwise-equal replacement for the skipped local
/// stores.
void apply_work_reply(Particles& particles, const tree::ChainingMesh& mesh,
                      const gpu::LaunchPlan& plan,
                      const std::vector<std::uint8_t>& skip_task,
                      const comm::WorkReply& reply,
                      const std::uint8_t* active);

}  // namespace crkhacc::core
