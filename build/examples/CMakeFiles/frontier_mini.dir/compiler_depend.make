# Empty compiler generated dependencies file for frontier_mini.
# This may be replaced when dependencies are built.
