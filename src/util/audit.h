// Scan primitives for the SDC audit pass.
//
// Free functions over raw float spans so the auditor (core/sdc.h) and
// tests can scan any SoA field without knowing about Particles. All
// scans are branch-light single passes; the auditor runs them over
// every guarded field each PM step, so they sit on the guardrail hot
// path (see bench/sdc_overhead).
#pragma once

#include <cstddef>
#include <span>

namespace crkhacc::util {

/// Sentinel index meaning "no offending element found".
inline constexpr std::size_t kAuditNone = static_cast<std::size_t>(-1);

/// Index of the first NaN/Inf element, or kAuditNone if all finite.
std::size_t find_nonfinite(std::span<const float> values);

/// Index of the first element outside [lo, hi]. Non-finite values count
/// as outside (the comparison is written so NaN fails it).
std::size_t find_outside(std::span<const float> values, float lo, float hi);

/// |after - before| / max(|before|, floor) — drift of a conserved sum
/// relative to its pre-step value, with a floor so near-zero references
/// (e.g. net momentum of a symmetric IC) don't divide to infinity.
double relative_drift(double before, double after, double floor);

}  // namespace crkhacc::util
