#include "comm/world.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace crkhacc::comm {
namespace {

// Internal tags (negative so they never collide with user tags, which are
// required to be non-negative). Collectives are built on point-to-point;
// correctness of back-to-back collectives follows from per-(source, tag)
// FIFO message ordering.
constexpr int kTagAllgather = -1;
constexpr int kTagBcast = -2;
constexpr int kTagAlltoall = -3;

}  // namespace

// --------------------------------------------------------------------------
// World

World::World(int num_ranks, const WatchdogConfig& watchdog)
    : num_ranks_(num_ranks), watchdog_config_(watchdog) {
  CHECK(num_ranks >= 1);
  mailboxes_.reserve(static_cast<std::size_t>(num_ranks));
  for (int i = 0; i < num_ranks; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
  fail_at_op_.assign(static_cast<std::size_t>(num_ranks), -1);
  rank_states_.resize(static_cast<std::size_t>(num_ranks));
}

World::~World() = default;

void World::schedule_rank_failure(int rank, std::uint64_t op) {
  CHECK(rank >= 0 && rank < num_ranks_);
  fail_at_op_[static_cast<std::size_t>(rank)] = static_cast<std::int64_t>(op);
}

void World::clear_failure_schedule() {
  std::fill(fail_at_op_.begin(), fail_at_op_.end(), -1);
}

void World::run(const std::function<void(Communicator&)>& rank_main) {
  if (dirty_) {
    // A previous run lost ranks or deadlocked: drop undelivered messages
    // and half-formed barrier arrivals instead of poisoning this run.
    for (auto& box : mailboxes_) {
      std::lock_guard<std::mutex> lock(box->mutex);
      box->messages.clear();
    }
    {
      std::lock_guard<std::mutex> lock(barrier_mutex_);
      barrier_arrived_ = 0;
    }
    dirty_ = false;
  } else {
    // Any leftover state from a previous (buggy) run would corrupt this
    // one.
    for (auto& box : mailboxes_) {
      CHECK(box->messages.empty());
    }
  }
  failures_.clear();
  loss_latency_s_ = 0.0;
  deadlock_flag_.store(false);
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    deadlock_diagnosis_.clear();
    std::fill(rank_states_.begin(), rank_states_.end(), RankState{});
  }
  progress_.store(0);
  unfinished_.store(num_ranks_);

  std::thread watchdog;
  if (watchdog_config_.enabled) {
    watchdog = std::thread([this] { watchdog_loop(); });
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(num_ranks_));
  for (int r = 0; r < num_ranks_; ++r) {
    threads.emplace_back([this, r, &rank_main] {
      Communicator comm(*this, r);
      try {
        rank_main(comm);
        set_phase(r, Phase::kFinished);
      } catch (const RankFailure& failure) {
        {
          std::lock_guard<std::mutex> lock(state_mutex_);
          if (failures_.empty()) {
            first_failure_tp_ = std::chrono::steady_clock::now();
          }
          failures_.push_back(FailureRecord{failure.rank(), failure.op()});
        }
        set_phase(r, Phase::kFailed);
      } catch (const DeadlockError&) {
        set_phase(r, Phase::kFailed);
      }
      unfinished_.fetch_sub(1);
      watchdog_cv_.notify_all();
    });
  }
  for (auto& t : threads) t.join();
  watchdog_cv_.notify_all();
  if (watchdog.joinable()) watchdog.join();

  if (!failures_.empty() || deadlock_flag_.load()) dirty_ = true;
  if (!failures_.empty()) {
    loss_latency_s_ = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - first_failure_tp_)
                          .count();
  }
  if (deadlock_flag_.load()) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    // A wedge explained by recorded deaths is a rank loss, not a true
    // deadlock: survivors were blocked on a dead peer. Raise the
    // shrinkable subclass so a campaign layer can relaunch on N - lost.
    if (!failures_.empty()) {
      throw RankLossError(deadlock_diagnosis_, failures_);
    }
    throw DeadlockError(deadlock_diagnosis_);
  }
}

void World::set_phase(int rank, Phase phase, int source, int tag,
                      std::uint64_t barrier_gen) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto& state = rank_states_[static_cast<std::size_t>(rank)];
    state.phase = phase;
    state.source = source;
    state.tag = tag;
    state.barrier_gen = barrier_gen;
  }
  progress_.fetch_add(1, std::memory_order_relaxed);
}

void World::watchdog_loop() {
  std::uint64_t last_progress = progress_.load();
  bool armed = false;
  while (unfinished_.load() > 0 && !deadlock_flag_.load()) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mutex_);
      watchdog_cv_.wait_for(
          lock,
          std::chrono::duration<double>(watchdog_config_.poll_interval_s),
          [this] { return unfinished_.load() == 0; });
    }
    if (unfinished_.load() == 0) return;
    const std::string diagnosis = watchdog_probe(last_progress, armed);
    if (!diagnosis.empty()) {
      declare_deadlock(diagnosis);
      return;
    }
  }
}

std::string World::watchdog_probe(std::uint64_t& last_progress, bool& armed) {
  // A deadlock is proven, not guessed: every live rank is blocked, no
  // blocked recv has a deliverable message, and nothing moved between
  // two consecutive polls. All three can only hold simultaneously for a
  // genuinely wedged machine, because only ranks deliver messages.
  const std::uint64_t progress_now = progress_.load();
  if (progress_now != last_progress) {
    last_progress = progress_now;
    armed = false;
    return {};
  }

  std::vector<RankState> snapshot;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    snapshot = rank_states_;
  }
  bool any_blocked = false;
  for (const auto& state : snapshot) {
    if (state.phase == Phase::kRunning) {
      armed = false;
      return {};
    }
    if (state.phase == Phase::kBlockedRecv ||
        state.phase == Phase::kBlockedBarrier) {
      any_blocked = true;
    }
  }
  if (!any_blocked) return {};

  for (std::size_t r = 0; r < snapshot.size(); ++r) {
    if (snapshot[r].phase != Phase::kBlockedRecv) continue;
    Mailbox& box = *mailboxes_[r];
    std::lock_guard<std::mutex> lock(box.mutex);
    for (const auto& m : box.messages) {
      if (m.source == snapshot[r].source && m.tag == snapshot[r].tag) {
        // Deliverable message: the rank just hasn't woken yet.
        armed = false;
        return {};
      }
    }
  }
  if (progress_.load() != last_progress) return {};
  if (!armed) {
    armed = true;  // require a second identical sample before firing
    return {};
  }
  return dump_rank_states();
}

std::string World::dump_rank_states() {
  std::vector<RankState> snapshot;
  std::vector<FailureRecord> lost;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    snapshot = rank_states_;
    lost = failures_;
  }
  // Lead with the root cause. A wedge with recorded deaths is not a
  // deadlock among live ranks — the survivors are waiting on a peer that
  // no longer exists, and the headline should say so instead of burying
  // the dead rank in the per-rank dump.
  std::string out;
  if (lost.empty()) {
    out = "communication deadlock: no live rank can make progress\n";
  } else {
    out = "rank loss: ";
    for (std::size_t i = 0; i < lost.size(); ++i) {
      if (i > 0) out += ", ";
      out += "rank " + std::to_string(lost[i].rank) + " died at comm op " +
             std::to_string(lost[i].op);
    }
    out += "; survivors are blocked on the lost rank";
    out += lost.size() > 1 ? "s\n" : "\n";
  }
  std::vector<std::int64_t> death_op(snapshot.size(), -1);
  for (const auto& f : lost) {
    if (f.rank >= 0 && f.rank < static_cast<int>(snapshot.size())) {
      death_op[static_cast<std::size_t>(f.rank)] =
          static_cast<std::int64_t>(f.op);
    }
  }
  for (std::size_t r = 0; r < snapshot.size(); ++r) {
    const auto& state = snapshot[r];
    out += "  rank " + std::to_string(r) + ": ";
    switch (state.phase) {
      case Phase::kRunning:
        out += "running";
        break;
      case Phase::kBlockedRecv:
        out += "blocked in recv(source=" + std::to_string(state.source) +
               ", tag=" + std::to_string(state.tag) + ")";
        if (state.source >= 0 &&
            state.source < static_cast<int>(death_op.size()) &&
            death_op[static_cast<std::size_t>(state.source)] >= 0) {
          out += " — awaited source is dead";
        }
        break;
      case Phase::kBlockedBarrier:
        out += "blocked in barrier(generation=" +
               std::to_string(state.barrier_gen) + ")";
        break;
      case Phase::kFinished:
        out += "finished";
        break;
      case Phase::kFailed:
        out += "failed (rank lost";
        if (death_op[r] >= 0) {
          out += " at comm op " + std::to_string(death_op[r]);
        }
        out += ")";
        break;
    }
    out += "\n";
  }
  return out;
}

void World::declare_deadlock(const std::string& diagnosis) {
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    deadlock_diagnosis_ = diagnosis;
  }
  deadlock_flag_.store(true);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    barrier_cv_.notify_all();
  }
}

void World::throw_deadlock() {
  std::lock_guard<std::mutex> lock(state_mutex_);
  throw DeadlockError(deadlock_diagnosis_);
}

void World::deliver(int dest, Message message) {
  CHECK(dest >= 0 && dest < num_ranks_);
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.messages.push_back(std::move(message));
  }
  progress_.fetch_add(1, std::memory_order_relaxed);
  box.cv.notify_all();
}

std::vector<std::uint8_t> World::wait_for(int self, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  set_phase(self, Phase::kBlockedRecv, source, tag);
  while (true) {
    if (deadlock_flag_.load()) throw_deadlock();
    auto it = std::find_if(box.messages.begin(), box.messages.end(),
                           [&](const Message& m) {
                             return m.source == source && m.tag == tag;
                           });
    if (it != box.messages.end()) {
      auto payload = std::move(it->payload);
      box.messages.erase(it);
      set_phase(self, Phase::kRunning);
      return payload;
    }
    box.cv.wait(lock);
  }
}

void World::barrier_wait(int self) {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  const std::uint64_t generation = barrier_generation_;
  if (++barrier_arrived_ == num_ranks_) {
    barrier_arrived_ = 0;
    ++barrier_generation_;
    progress_.fetch_add(1, std::memory_order_relaxed);
    barrier_cv_.notify_all();
    return;
  }
  set_phase(self, Phase::kBlockedBarrier, -1, 0, generation);
  while (barrier_generation_ == generation) {
    if (deadlock_flag_.load()) throw_deadlock();
    barrier_cv_.wait(lock);
  }
  set_phase(self, Phase::kRunning);
}

// --------------------------------------------------------------------------
// Communicator

int Communicator::size() const { return world_.num_ranks_; }

void Communicator::tick() {
  const std::int64_t fail_at = world_.fail_at_op_[static_cast<std::size_t>(rank_)];
  const std::uint64_t op = op_count_++;
  if (fail_at >= 0 && static_cast<std::int64_t>(op) == fail_at) {
    throw RankFailure(rank_, op);
  }
}

void Communicator::send_bytes(int dest, int tag, const void* data,
                              std::size_t size) {
  CHECK(tag >= 0);
  tick();
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  bytes_sent_ += size;
  world_.deliver(dest, World::Message{rank_, tag,
                                      std::vector<std::uint8_t>(bytes, bytes + size)});
}

std::vector<std::uint8_t> Communicator::recv_bytes(int source, int tag) {
  CHECK(tag >= 0);
  tick();
  return world_.wait_for(rank_, source, tag);
}

void Communicator::barrier() {
  tick();
  world_.barrier_wait(rank_);
}

std::vector<std::vector<std::uint8_t>> Communicator::allgather_bytes(
    const std::vector<std::uint8_t>& mine) {
  tick();
  const int n = size();
  for (int d = 0; d < n; ++d) {
    bytes_sent_ += mine.size();
    world_.deliver(d, World::Message{rank_, kTagAllgather, mine});
  }
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[static_cast<std::size_t>(s)] = world_.wait_for(rank_, s, kTagAllgather);
  }
  return out;
}

void Communicator::allreduce(std::span<double> values, ReduceOp op) {
  std::vector<std::uint8_t> mine(values.size_bytes());
  std::memcpy(mine.data(), values.data(), mine.size());
  auto all = allgather_bytes(mine);
  for (std::size_t s = 0; s < all.size(); ++s) {
    if (static_cast<int>(s) == rank_) continue;
    CHECK(all[s].size() == values.size_bytes());
    const auto* other = reinterpret_cast<const double*>(all[s].data());
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: values[i] += other[i]; break;
        case ReduceOp::kMin: values[i] = std::min(values[i], other[i]); break;
        case ReduceOp::kMax: values[i] = std::max(values[i], other[i]); break;
      }
    }
  }
}

void Communicator::allreduce(std::span<std::int64_t> values, ReduceOp op) {
  std::vector<std::uint8_t> mine(values.size_bytes());
  std::memcpy(mine.data(), values.data(), mine.size());
  auto all = allgather_bytes(mine);
  for (std::size_t s = 0; s < all.size(); ++s) {
    if (static_cast<int>(s) == rank_) continue;
    CHECK(all[s].size() == values.size_bytes());
    const auto* other = reinterpret_cast<const std::int64_t*>(all[s].data());
    for (std::size_t i = 0; i < values.size(); ++i) {
      switch (op) {
        case ReduceOp::kSum: values[i] += other[i]; break;
        case ReduceOp::kMin: values[i] = std::min(values[i], other[i]); break;
        case ReduceOp::kMax: values[i] = std::max(values[i], other[i]); break;
      }
    }
  }
}

double Communicator::allreduce_scalar(double value, ReduceOp op) {
  allreduce(std::span<double>(&value, 1), op);
  return value;
}

std::int64_t Communicator::allreduce_scalar(std::int64_t value, ReduceOp op) {
  allreduce(std::span<std::int64_t>(&value, 1), op);
  return value;
}

void Communicator::bcast_bytes(std::vector<std::uint8_t>& bytes, int root) {
  tick();
  if (rank_ == root) {
    for (int d = 0; d < size(); ++d) {
      if (d == root) continue;
      bytes_sent_ += bytes.size();
      world_.deliver(d, World::Message{rank_, kTagBcast, bytes});
    }
  } else {
    bytes = world_.wait_for(rank_, root, kTagBcast);
  }
}

std::vector<std::vector<std::uint8_t>> Communicator::alltoallv_bytes(
    const std::vector<std::vector<std::uint8_t>>& sends) {
  tick();
  const int n = size();
  CHECK(static_cast<int>(sends.size()) == n);
  for (int d = 0; d < n; ++d) {
    bytes_sent_ += sends[static_cast<std::size_t>(d)].size();
    world_.deliver(d, World::Message{rank_, kTagAlltoall,
                                     sends[static_cast<std::size_t>(d)]});
  }
  std::vector<std::vector<std::uint8_t>> out(static_cast<std::size_t>(n));
  for (int s = 0; s < n; ++s) {
    out[static_cast<std::size_t>(s)] = world_.wait_for(rank_, s, kTagAlltoall);
  }
  return out;
}

}  // namespace crkhacc::comm
