// Tests for the device model and the warp-split launch drivers.
//
// The central properties: the naive and warp-split drivers produce the
// same physics for any kernel written against the concept, the warp-split
// driver performs measurably fewer global loads and partial evaluations —
// the exact claim of the paper's Algorithm 1 — and every parallel
// schedule (leaf-owner, deferred-store) is bitwise identical to the
// serial launch for any thread count and any leaf/warp geometry.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>
#include <vector>

#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/launch.h"
#include "gpu/warp.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crkhacc::gpu {
namespace {

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box), 0, 0, 0,
                static_cast<float>(0.5 + rng.next_double()));
  }
  return p;
}

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

/// Test kernel with a separable structure: phi_i = sum_j m_i * m_j / (1 + r^2).
/// partial() computes the per-particle mass term once (f_i = g_i = m).
class SeparableKernel {
 public:
  static constexpr const char* kName = "test_separable";
  static constexpr double kFlopsPerInteraction = 10.0;
  static constexpr double kFlopsPerPartial = 2.0;

  struct State {
    float x, y, z, m;
  };
  struct Partial {
    float fm;  ///< 2 * m (any nontrivial separable term)
  };
  struct Accum {
    double phi = 0.0;
  };

  explicit SeparableKernel(const Particles& particles, std::vector<double>& out)
      : p_(particles), out_(out) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.mass[i]};
  }
  Partial partial(const State& s) const { return Partial{2.0f * s.m}; }
  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    acc.phi += 0.25 * static_cast<double>(self_p.fm) *
               static_cast<double>(other_p.fm) / (1.0 + r2);
  }
  void store(std::uint32_t i, const Accum& acc) { out_[i] += acc.phi; }

 private:
  const Particles& p_;
  std::vector<double>& out_;
};

/// Brute-force reference for the separable kernel over all pairs within
/// the chaining mesh's neighbor reach (here: all pairs, small box).
std::vector<double> reference_phi(const Particles& p) {
  std::vector<double> phi(p.size(), 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i == j) continue;
      const double dx = static_cast<double>(p.x[i]) - p.x[j];
      const double dy = static_cast<double>(p.y[i]) - p.y[j];
      const double dz = static_cast<double>(p.z[i]) - p.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      phi[i] += static_cast<double>(p.mass[i]) * p.mass[j] / (1.0 + r2);
    }
  }
  return phi;
}

using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// Launch the separable kernel and return the accumulated phi array.
std::vector<double> run_phi(const Particles& p, const tree::ChainingMesh& mesh,
                            const PairList& pairs, const LaunchConfig& config,
                            util::ThreadPool* pool = nullptr,
                            LaunchStats* stats_out = nullptr) {
  std::vector<double> phi(p.size(), 0.0);
  SeparableKernel kernel(p, phi);
  const auto stats = launch_pair_kernel(kernel, mesh, pairs, config, pool);
  if (stats_out) *stats_out = stats;
  return phi;
}

/// The edge-geometry contract: naive ≡ warp-split (to rounding) and, for
/// each mode, serial ≡ 8-thread leaf-owner ≡ 8-thread deferred-store,
/// bitwise.
void expect_all_drivers_agree(const Particles& p,
                              const tree::ChainingMesh& mesh,
                              const PairList& pairs,
                              std::uint32_t warp_size) {
  util::ThreadPool pool(8);
  std::vector<std::vector<double>> by_mode;
  for (const LaunchMode mode : {LaunchMode::kNaive, LaunchMode::kWarpSplit}) {
    LaunchConfig config{.warp_size = warp_size, .mode = mode};
    const auto serial = run_phi(p, mesh, pairs, config);
    config.schedule = LaunchSchedule::kLeafOwner;
    EXPECT_EQ(run_phi(p, mesh, pairs, config, &pool), serial)
        << "leaf-owner @8 threads diverged from serial, warp " << warp_size;
    config.schedule = LaunchSchedule::kDeferredStore;
    EXPECT_EQ(run_phi(p, mesh, pairs, config, &pool), serial)
        << "deferred-store @8 threads diverged from serial, warp "
        << warp_size;
    by_mode.push_back(serial);
  }
  ASSERT_EQ(by_mode.size(), 2u);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(by_mode[1][i], by_mode[0][i],
                1e-9 + 1e-5 * std::abs(by_mode[0][i]))
        << "naive vs warp-split at particle " << i;
  }
}

class WarpDriverTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WarpDriverTest, WarpSplitMatchesNaiveAndReference) {
  const std::uint32_t warp_size = GetParam();
  // Single CM bin -> all leaf pairs interact: full N^2 comparison.
  const auto p = random_particles(150, 1.0, 42);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);

  LaunchStats naive_stats, split_stats;
  const auto naive_phi =
      run_phi(p, mesh, pairs,
              LaunchConfig{.warp_size = warp_size, .mode = LaunchMode::kNaive},
              nullptr, &naive_stats);
  const auto split_phi = run_phi(
      p, mesh, pairs,
      LaunchConfig{.warp_size = warp_size, .mode = LaunchMode::kWarpSplit},
      nullptr, &split_stats);

  const auto expected = reference_phi(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(naive_phi[i], expected[i], 1e-5 * std::abs(expected[i]));
    EXPECT_NEAR(split_phi[i], expected[i], 1e-5 * std::abs(expected[i]));
  }
  // Identical pair coverage.
  EXPECT_EQ(naive_stats.interactions, split_stats.interactions);
  EXPECT_EQ(naive_stats.interactions, 150u * 149u);
}

TEST_P(WarpDriverTest, WarpSplitReducesMemoryTraffic) {
  const std::uint32_t warp_size = GetParam();
  const auto p = random_particles(400, 1.0, 7);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 32});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);

  LaunchStats naive, split;
  run_phi(p, mesh, pairs,
          LaunchConfig{.warp_size = warp_size, .mode = LaunchMode::kNaive},
          nullptr, &naive);
  run_phi(p, mesh, pairs,
          LaunchConfig{.warp_size = warp_size, .mode = LaunchMode::kWarpSplit},
          nullptr, &split);
  // The whole point of Algorithm 1: far fewer loads and partials (the
  // reduction factor approaches the half-warp width W for full tiles).
  EXPECT_LT(split.global_loads * 2, naive.global_loads);
  EXPECT_LT(split.partial_evals * 2, naive.partial_evals);
  EXPECT_LT(split.register_bytes_per_thread, naive.register_bytes_per_thread);
  // FLOP accounting reflects the shared partials.
  EXPECT_LT(split.flops, naive.flops);
}

TEST_P(WarpDriverTest, ParallelSchedulesBitwiseIdenticalToSerial) {
  const std::uint32_t warp_size = GetParam();
  const auto p = random_particles(300, 1.0, 99);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 24});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  expect_all_drivers_agree(p, mesh, pairs, warp_size);
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, WarpDriverTest,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(WarpDriver, RaggedLeavesHandled) {
  // 13 particles in a tiny leaf-size mesh: chunks are ragged everywhere.
  const auto p = random_particles(13, 1.0, 3);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 4});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  const auto naive_phi = run_phi(
      p, mesh, pairs, LaunchConfig{.mode = LaunchMode::kNaive});
  const auto split_phi = run_phi(
      p, mesh, pairs, LaunchConfig{.mode = LaunchMode::kWarpSplit});
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(split_phi[i], naive_phi[i],
                1e-9 + 1e-5 * std::abs(naive_phi[i]));
  }
}

TEST(WarpDriver, SinglePairNoSelfInteraction) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 0.1f, 0.1f, 0.1f, 0, 0, 0, 2.0f);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 8});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  LaunchStats stats;
  const auto phi = run_phi(p, mesh, pairs, LaunchConfig{}, nullptr, &stats);
  EXPECT_EQ(stats.interactions, 0u);
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
}

// --- scheduler edge geometries ----------------------------------------------

TEST(SchedulerGeometry, LeavesSmallerThanHalfWarp) {
  // leaf_size 4 with a 64-lane warp: every tile is ragged (n < W = 32).
  const auto p = random_particles(120, 1.0, 11);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 4});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  expect_all_drivers_agree(p, mesh, pairs, 64);
}

TEST(SchedulerGeometry, WarpSizeNotPowerOfTwo) {
  const auto p = random_particles(160, 1.0, 13);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  for (const std::uint32_t warp_size : {3u, 6u, 10u, 24u}) {
    expect_all_drivers_agree(p, mesh, pairs, warp_size);
  }
}

TEST(SchedulerGeometry, EmptyPairList) {
  const auto p = random_particles(32, 1.0, 17);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const PairList no_pairs;
  util::ThreadPool pool(8);
  for (const auto schedule :
       {LaunchSchedule::kLeafOwner, LaunchSchedule::kDeferredStore}) {
    LaunchStats stats;
    const auto phi = run_phi(p, mesh, no_pairs,
                             LaunchConfig{.schedule = schedule}, &pool, &stats);
    EXPECT_EQ(stats.interactions, 0u);
    EXPECT_EQ(stats.stores, 0u);
    for (const double v : phi) EXPECT_DOUBLE_EQ(v, 0.0);
  }
}

TEST(SchedulerGeometry, SingleLeafSelfInteraction) {
  // leaf_size >= n keeps all particles in one leaf: the plan degenerates
  // to a single owner with one both-sides entry (no parallelism to find,
  // but the result must still be exact).
  const auto p = random_particles(90, 1.0, 19);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 128});
  mesh.build(p);
  ASSERT_EQ(mesh.num_leaves(), 1u);
  const auto pairs = mesh.interaction_pairs(10.0);
  ASSERT_EQ(pairs.size(), 1u);
  expect_all_drivers_agree(p, mesh, pairs, 64);

  const LaunchPlan plan(mesh, pairs);
  EXPECT_EQ(plan.num_owners(), 1u);
  ASSERT_EQ(plan.entries(0).size(), 1u);
  EXPECT_EQ(plan.entries(0)[0].side, LaunchPlan::Side::kBoth);
}

// --- launch plan -------------------------------------------------------------

TEST(LaunchPlan, OwnerEntriesOrderedByPairIndex) {
  const auto p = random_particles(200, 1.0, 23);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  ASSERT_GT(pairs.size(), 4u);
  const LaunchPlan plan(mesh, pairs);

  // Every pair contributes one entry per owner leaf.
  std::size_t cross = 0;
  for (const auto& [la, lb] : pairs) cross += (la != lb) ? 1 : 0;
  EXPECT_EQ(plan.num_entries(), pairs.size() + cross);
  ASSERT_EQ(plan.pairs().size(), pairs.size());

  // Reconstruct the expected per-owner entry sequences by walking the
  // pair list in order — the plan must match exactly.
  std::vector<std::vector<LaunchPlan::Entry>> expected(mesh.num_leaves());
  for (const auto& [la, lb] : pairs) {
    if (la == lb) {
      expected[la].push_back({lb, LaunchPlan::Side::kBoth});
    } else {
      expected[la].push_back({lb, LaunchPlan::Side::kISide});
      expected[lb].push_back({la, LaunchPlan::Side::kJSide});
    }
  }
  std::uint32_t prev_owner = 0;
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    const std::uint32_t owner = plan.owner(t);
    if (t > 0) {
      EXPECT_GT(owner, prev_owner) << "owners not ascending";
    }
    prev_owner = owner;
    const auto entries = plan.entries(t);
    ASSERT_EQ(entries.size(), expected[owner].size()) << "owner " << owner;
    for (std::size_t e = 0; e < entries.size(); ++e) {
      EXPECT_EQ(entries[e].partner, expected[owner][e].partner);
      EXPECT_EQ(entries[e].side, expected[owner][e].side);
    }
    expected[owner].clear();
  }
  for (const auto& rest : expected) {
    EXPECT_TRUE(rest.empty()) << "leaf with work missing from the plan";
  }
}

TEST(LaunchPlan, CachedPlanMatchesOnDemandLaunch) {
  const auto p = random_particles(180, 1.0, 29);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  const LaunchPlan plan(mesh, pairs);
  util::ThreadPool pool(4);
  const LaunchConfig config;

  std::vector<double> phi_plan(p.size(), 0.0), phi_pairs(p.size(), 0.0);
  SeparableKernel k1(p, phi_plan), k2(p, phi_pairs);
  launch_pair_kernel(k1, mesh, plan, config, &pool);
  launch_pair_kernel(k2, mesh, pairs, config, &pool);
  EXPECT_EQ(phi_plan, phi_pairs);
}

// --- launch config validation ------------------------------------------------

TEST(LaunchConfigValidation, RejectsDegenerateWarpSize) {
  LaunchConfig config;
  EXPECT_EQ(config.invalid_reason(), nullptr);
  config.warp_size = 2;
  EXPECT_EQ(config.invalid_reason(), nullptr);
  config.warp_size = 1;
  EXPECT_NE(config.invalid_reason(), nullptr);
  config.warp_size = 0;
  EXPECT_NE(config.invalid_reason(), nullptr);
}

TEST(LaunchConfigDeathTest, LaunchAbortsOnInvalidConfig) {
  const auto p = random_particles(16, 1.0, 31);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 8});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  std::vector<double> phi(p.size(), 0.0);
  SeparableKernel kernel(p, phi);
  EXPECT_DEATH(
      launch_pair_kernel(kernel, mesh, pairs, LaunchConfig{.warp_size = 1}),
      "warp_size");
}

// --- launch stats ------------------------------------------------------------

TEST(LaunchStatsTest, MergePolicies) {
  LaunchStats a;
  a.interactions = 10;
  a.global_loads = 20;
  a.partial_evals = 30;
  a.stores = 40;
  a.flops = 100.0;
  a.seconds = 1.0;
  a.register_bytes_per_thread = 64;
  a.store_buffer_bytes = 1000;
  LaunchStats b;
  b.interactions = 1;
  b.global_loads = 2;
  b.partial_evals = 3;
  b.stores = 4;
  b.flops = 50.0;
  b.seconds = 2.0;
  b.register_bytes_per_thread = 128;
  b.store_buffer_bytes = 500;

  // kAccumulate == operator+=: back-to-back launches sum everything.
  LaunchStats acc = a;
  acc.merge(b, MergeTiming::kAccumulate);
  LaunchStats plus = a;
  plus += b;
  EXPECT_EQ(acc.interactions, plus.interactions);
  EXPECT_DOUBLE_EQ(acc.seconds, 3.0);
  EXPECT_DOUBLE_EQ(acc.flops, 150.0);
  EXPECT_EQ(acc.register_bytes_per_thread, 128u);  // max, not sum
  EXPECT_EQ(acc.store_buffer_bytes, 1000u);        // max, not sum

  // kExclusive: worker stats folded into one launch keep the launch's
  // own wall clock and flop total.
  LaunchStats excl = a;
  excl.merge(b, MergeTiming::kExclusive);
  EXPECT_EQ(excl.interactions, 11u);
  EXPECT_EQ(excl.stores, 44u);
  EXPECT_DOUBLE_EQ(excl.seconds, 1.0);
  EXPECT_DOUBLE_EQ(excl.flops, 100.0);
  EXPECT_EQ(excl.register_bytes_per_thread, 128u);
}

TEST(LaunchStatsTest, StoreBufferBytesOnlyOnDeferredSchedule) {
  const auto p = random_particles(300, 1.0, 37);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  util::ThreadPool pool(8);

  LaunchStats serial, owner, deferred;
  run_phi(p, mesh, pairs, LaunchConfig{}, nullptr, &serial);
  run_phi(p, mesh, pairs, LaunchConfig{.schedule = LaunchSchedule::kLeafOwner},
          &pool, &owner);
  run_phi(p, mesh, pairs,
          LaunchConfig{.schedule = LaunchSchedule::kDeferredStore}, &pool,
          &deferred);
  // In-place accumulation buffers nothing; the replay schedule holds one
  // captured Accum per store.
  EXPECT_EQ(serial.store_buffer_bytes, 0u);
  EXPECT_EQ(owner.store_buffer_bytes, 0u);
  EXPECT_GT(deferred.store_buffer_bytes,
            deferred.stores *
                sizeof(std::pair<std::uint32_t, SeparableKernel::Accum>) / 2);
  // All three cover the same physics.
  EXPECT_EQ(owner.interactions, serial.interactions);
  EXPECT_EQ(deferred.interactions, serial.interactions);
  EXPECT_EQ(owner.stores, serial.stores);
}

// --- deprecated positional shim ---------------------------------------------

// The deprecated positional launch_pair_kernel overload is gone: every
// caller goes through LaunchConfig. This pins that a plan-based launch
// matches the on-demand pair launch, the path the shim used to forward to.
TEST(LaunchShim, PlanLaunchMatchesPairLaunch) {
  const auto p = random_particles(64, 1.0, 41);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);

  const auto expected =
      run_phi(p, mesh, pairs, LaunchConfig{.warp_size = 32});
  std::vector<double> phi(p.size(), 0.0);
  SeparableKernel kernel(p, phi);
  const LaunchPlan plan(mesh, pairs);
  launch_pair_kernel(kernel, mesh, plan, LaunchConfig{.warp_size = 32});
  EXPECT_EQ(phi, expected);
}

// --- device model ------------------------------------------------------------

TEST(DeviceModel, TableOneSpecs) {
  const auto& devices = known_devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_NEAR(devices[0].peak_fp32_tflops, 23.9, 1e-9);  // MI250X GCD
  EXPECT_EQ(devices[0].warp_size, 64);
  EXPECT_NEAR(devices[1].peak_fp32_tflops, 22.5, 1e-9);  // PVC tile
  EXPECT_NEAR(devices[2].peak_fp32_tflops, 66.9, 1e-9);  // H100
  EXPECT_EQ(devices[2].warp_size, 32);
}

TEST(DeviceModel, HostPeakPositiveAndCached) {
  const double peak1 = host_peak_gflops();
  EXPECT_GT(peak1, 0.1);
  EXPECT_DOUBLE_EQ(host_peak_gflops(), peak1);
}

TEST(FlopRegistry, AccumulatesAndTracksPeak) {
  FlopRegistry registry;
  registry.add("slow", 1e6, 1.0);    // 1e-3 GFLOP/s
  registry.add("fast", 4e9, 1.0);    // 4 GFLOP/s
  registry.add("fast", 4e9, 1.0);
  EXPECT_DOUBLE_EQ(registry.total_flops(), 1e6 + 8e9);
  EXPECT_DOUBLE_EQ(registry.flops_of("fast"), 8e9);
  EXPECT_EQ(registry.peak_kernel(), "fast");
  EXPECT_NEAR(registry.peak_gflops(), 4.0, 1e-9);
  EXPECT_NEAR(registry.sustained_gflops(), (1e6 + 8e9) / 3.0 / 1e9, 1e-9);
}

TEST(FlopRegistry, MergeCombines) {
  FlopRegistry a, b;
  a.add("k", 100.0, 1.0);
  b.add("k", 200.0, 2.0);
  b.add("other", 50.0, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.flops_of("k"), 300.0);
  EXPECT_DOUBLE_EQ(a.flops_of("other"), 50.0);
}

TEST(FlopRegistry, SortedByFlops) {
  FlopRegistry registry;
  registry.add("minor", 1.0, 1.0);
  registry.add("major", 100.0, 1.0);
  const auto sorted = registry.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(std::get<0>(sorted[0]), "major");
}

}  // namespace
}  // namespace crkhacc::gpu
