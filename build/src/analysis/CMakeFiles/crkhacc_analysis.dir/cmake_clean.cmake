file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_analysis.dir/dbscan.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/dbscan.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/fof.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/fof.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/galaxies.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/galaxies.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/halos.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/halos.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/power_spectrum.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/power_spectrum.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/slices.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/slices.cpp.o.d"
  "CMakeFiles/crkhacc_analysis.dir/so_masses.cpp.o"
  "CMakeFiles/crkhacc_analysis.dir/so_masses.cpp.o.d"
  "libcrkhacc_analysis.a"
  "libcrkhacc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
