#include "io/column_file.h"

#include <algorithm>
#include <cstring>
#include <mutex>
#include <set>

#include "util/assertions.h"
#include "util/crc32.h"
#include "util/log.h"

namespace crkhacc::io {
namespace {

constexpr std::uint32_t kMagic = 0x32434b43;        // "CKC2"
constexpr std::uint32_t kLegacyMagic = 0x47494f31;  // "GIO1" (format v1)
constexpr std::size_t kNameBytes = 16;

// Fixed 72-byte file header; header_crc covers everything after itself.
struct WireHeader {
  std::uint32_t magic;
  std::uint32_t header_crc;
  std::uint32_t format_version;
  std::uint32_t kind;
  std::uint64_t step;
  double scale_factor;
  std::int32_t rank;
  std::int32_t num_ranks;
  std::uint64_t particle_count;
  std::uint64_t base_step;
  std::uint32_t chain_index;
  std::uint32_t chunk_bytes;
  std::uint32_t num_columns;
  std::uint32_t dir_bytes;  ///< directory size, excluding its trailing CRC
};
static_assert(sizeof(WireHeader) == 72);

std::uint32_t header_fields_crc(const WireHeader& h) {
  const auto* base = reinterpret_cast<const unsigned char*>(&h);
  const std::size_t offset = offsetof(WireHeader, format_version);
  return crc32(base + offset, sizeof(WireHeader) - offset);
}

/// Log a message at most once per key per process (format-mismatch and
/// unknown-column diagnostics would otherwise repeat per rank per step).
void log_once(log::Level level, const std::string& key,
              const std::string& msg) {
  static std::mutex mutex;
  static std::set<std::string> seen;
  std::lock_guard<std::mutex> lock(mutex);
  if (seen.insert(key).second) log::write(level, "%s", msg.c_str());
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
bool read_pod(const std::vector<std::uint8_t>& bytes, std::size_t& cursor,
              std::size_t end, T& value) {
  if (cursor + sizeof(T) > end) return false;
  std::memcpy(&value, bytes.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return true;
}

std::uint32_t num_chunks_for(std::uint64_t col_bytes,
                             std::uint32_t chunk_bytes) {
  return static_cast<std::uint32_t>((col_bytes + chunk_bytes - 1) /
                                    chunk_bytes);
}

std::uint32_t chunk_length(std::uint64_t col_bytes, std::uint32_t chunk_bytes,
                           std::uint32_t k) {
  const std::uint64_t begin = std::uint64_t{k} * chunk_bytes;
  return static_cast<std::uint32_t>(
      std::min<std::uint64_t>(chunk_bytes, col_bytes - begin));
}

}  // namespace

std::vector<ColumnView> particle_columns(const Particles& p) {
  const std::uint64_t n = p.size();
  auto u64 = [n](const char* name, const std::vector<std::uint64_t>& v) {
    return ColumnView{name, ColumnType::kU64, 8, v.data(), n};
  };
  auto f32 = [n](const char* name, const std::vector<float>& v) {
    return ColumnView{name, ColumnType::kF32, 4, v.data(), n};
  };
  auto u8 = [n](const char* name, const std::vector<std::uint8_t>& v) {
    return ColumnView{name, ColumnType::kU8, 1, v.data(), n};
  };
  return {u64("id", p.id),
          f32("x", p.x), f32("y", p.y), f32("z", p.z),
          f32("vx", p.vx), f32("vy", p.vy), f32("vz", p.vz),
          f32("mass", p.mass),
          f32("u", p.u), f32("rho", p.rho), f32("hsml", p.hsml),
          f32("metal", p.metal),
          u8("species", p.species), u8("bin", p.bin), u8("ghost", p.ghost)};
}

std::vector<MutableColumnView> particle_columns(Particles& p) {
  const auto views = particle_columns(static_cast<const Particles&>(p));
  std::vector<MutableColumnView> out;
  out.reserve(views.size());
  for (const ColumnView& v : views) {
    out.push_back(MutableColumnView{v.name, v.type, v.elem_size,
                                    const_cast<void*>(v.data), v.elem_count});
  }
  return out;
}

std::vector<std::uint8_t> encode_checkpoint(const CkptFileMeta& meta,
                                            std::span<const ColumnView> columns,
                                            const ChunkMask* mask) {
  CHECK(meta.chunk_bytes > 0);
  CHECK(mask == nullptr || mask->size() == columns.size());
  for (const ColumnView& col : columns) {
    CHECK(col.elem_count == meta.snapshot.particle_count);
    CHECK(col.name.size() < kNameBytes);
  }

  std::vector<std::uint8_t> dir;
  std::vector<std::uint8_t> payload;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const ColumnView& col = columns[c];
    const std::uint64_t col_bytes = col.bytes();
    const std::uint32_t nchunks = num_chunks_for(col_bytes, meta.chunk_bytes);
    CHECK(mask == nullptr || (*mask)[c].size() == nchunks);

    std::vector<std::uint32_t> present;
    for (std::uint32_t k = 0; k < nchunks; ++k) {
      if (mask == nullptr || (*mask)[c][k]) present.push_back(k);
    }

    char name[kNameBytes] = {};
    std::memcpy(name, col.name.data(), col.name.size());
    dir.insert(dir.end(), name, name + kNameBytes);
    append_pod(dir, static_cast<std::uint32_t>(col.type));
    append_pod(dir, col.elem_size);
    append_pod(dir, col.elem_count);
    append_pod(dir, nchunks);
    append_pod(dir, static_cast<std::uint32_t>(present.size()));

    const auto* data = static_cast<const std::uint8_t*>(col.data);
    for (const std::uint32_t k : present) {
      const std::uint32_t length = chunk_length(col_bytes, meta.chunk_bytes, k);
      const std::uint8_t* chunk = data + std::uint64_t{k} * meta.chunk_bytes;
      append_pod(dir, k);
      append_pod(dir, length);
      append_pod(dir, crc32(chunk, length));
      payload.insert(payload.end(), chunk, chunk + length);
    }
  }

  WireHeader header{};
  header.magic = kMagic;
  header.format_version = kCkptFormatVersion;
  header.kind = static_cast<std::uint32_t>(meta.kind);
  header.step = meta.snapshot.step;
  header.scale_factor = meta.snapshot.scale_factor;
  header.rank = meta.snapshot.rank;
  header.num_ranks = meta.snapshot.num_ranks;
  header.particle_count = meta.snapshot.particle_count;
  header.base_step = meta.base_step;
  header.chain_index = meta.chain_index;
  header.chunk_bytes = meta.chunk_bytes;
  header.num_columns = static_cast<std::uint32_t>(columns.size());
  header.dir_bytes = static_cast<std::uint32_t>(dir.size());
  header.header_crc = header_fields_crc(header);

  std::vector<std::uint8_t> bytes;
  bytes.reserve(sizeof(WireHeader) + dir.size() + 4 + payload.size());
  append_pod(bytes, header);
  bytes.insert(bytes.end(), dir.begin(), dir.end());
  append_pod(bytes, crc32(dir.data(), dir.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  return bytes;
}

ParseStatus parse_checkpoint(const std::vector<std::uint8_t>& bytes,
                             ParsedCheckpoint& out) {
  out = ParsedCheckpoint{};
  if (bytes.size() < sizeof(std::uint32_t)) return ParseStatus::kNotCkpt;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), sizeof(magic));
  if (magic == kLegacyMagic) {
    log_once(log::Level::kError, "ckpt-legacy-v1",
             "checkpoint is legacy format v1 (GIO1); this build reads only "
             "format v2 (CKC2) — re-checkpoint from a current run");
    return ParseStatus::kLegacy;
  }
  if (magic != kMagic) return ParseStatus::kNotCkpt;
  if (bytes.size() < sizeof(WireHeader)) return ParseStatus::kCorruptHeader;

  WireHeader header;
  std::memcpy(&header, bytes.data(), sizeof(WireHeader));
  if (header.header_crc != header_fields_crc(header)) {
    return ParseStatus::kCorruptHeader;
  }
  if (header.format_version != kCkptFormatVersion) {
    log_once(log::Level::kError,
             "ckpt-version-" + std::to_string(header.format_version),
             "checkpoint format v" + std::to_string(header.format_version) +
                 " is newer than this reader (v" +
                 std::to_string(kCkptFormatVersion) + "); refusing to parse");
    return ParseStatus::kBadVersion;
  }
  if (header.chunk_bytes == 0) return ParseStatus::kCorruptHeader;

  const std::size_t dir_begin = sizeof(WireHeader);
  const std::size_t dir_end = dir_begin + header.dir_bytes;
  if (dir_end + sizeof(std::uint32_t) > bytes.size()) {
    return ParseStatus::kCorruptHeader;
  }
  std::uint32_t dir_crc = 0;
  std::memcpy(&dir_crc, bytes.data() + dir_end, sizeof(dir_crc));
  if (crc32(bytes.data() + dir_begin, header.dir_bytes) != dir_crc) {
    return ParseStatus::kCorruptHeader;
  }

  out.meta.snapshot.step = header.step;
  out.meta.snapshot.scale_factor = header.scale_factor;
  out.meta.snapshot.rank = header.rank;
  out.meta.snapshot.num_ranks = header.num_ranks;
  out.meta.snapshot.particle_count = header.particle_count;
  out.meta.snapshot.format_version = header.format_version;
  out.meta.kind = static_cast<CkptKind>(header.kind);
  out.meta.base_step = header.base_step;
  out.meta.chain_index = header.chain_index;
  out.meta.chunk_bytes = header.chunk_bytes;

  // Walk the (CRC-verified) directory, then locate each carried chunk's
  // payload by accumulating lengths in directory order.
  std::size_t cursor = dir_begin;
  std::uint64_t payload_offset = dir_end + sizeof(std::uint32_t);
  out.columns.resize(header.num_columns);
  for (std::uint32_t c = 0; c < header.num_columns; ++c) {
    ParsedColumn& col = out.columns[c];
    if (cursor + kNameBytes > dir_end) return ParseStatus::kCorruptHeader;
    const char* name = reinterpret_cast<const char*>(bytes.data() + cursor);
    col.name.assign(name, strnlen(name, kNameBytes));
    cursor += kNameBytes;
    std::uint32_t type = 0, present = 0;
    if (!read_pod(bytes, cursor, dir_end, type) ||
        !read_pod(bytes, cursor, dir_end, col.elem_size) ||
        !read_pod(bytes, cursor, dir_end, col.elem_count) ||
        !read_pod(bytes, cursor, dir_end, col.num_chunks) ||
        !read_pod(bytes, cursor, dir_end, present)) {
      return ParseStatus::kCorruptHeader;
    }
    col.type = static_cast<ColumnType>(type);
    const std::uint64_t col_bytes = col.elem_count * col.elem_size;
    if (col.num_chunks != num_chunks_for(col_bytes, header.chunk_bytes) ||
        present > col.num_chunks) {
      return ParseStatus::kCorruptHeader;
    }
    col.chunks.resize(present);
    for (std::uint32_t i = 0; i < present; ++i) {
      ParsedChunk& chunk = col.chunks[i];
      if (!read_pod(bytes, cursor, dir_end, chunk.index) ||
          !read_pod(bytes, cursor, dir_end, chunk.length) ||
          !read_pod(bytes, cursor, dir_end, chunk.crc)) {
        return ParseStatus::kCorruptHeader;
      }
      if (chunk.index >= col.num_chunks ||
          chunk.length !=
              chunk_length(col_bytes, header.chunk_bytes, chunk.index)) {
        return ParseStatus::kCorruptHeader;
      }
      chunk.offset = payload_offset;
      payload_offset += chunk.length;
      // A chunk whose payload runs past the end of the file (torn write)
      // or whose bytes fail the CRC (bit flip) is damage localized to
      // this chunk — the rest of the file stays usable.
      chunk.valid =
          chunk.offset + chunk.length <= bytes.size() &&
          crc32(bytes.data() + chunk.offset, chunk.length) == chunk.crc;
      ++out.chunks_checked;
      if (!chunk.valid) ++out.chunks_damaged;
    }
  }
  if (cursor != dir_end) return ParseStatus::kCorruptHeader;
  return ParseStatus::kOk;
}

bool apply_chunks(const ParsedCheckpoint& file,
                  const std::vector<std::uint8_t>& bytes,
                  std::span<const MutableColumnView> dest) {
  for (const ParsedColumn& col : file.columns) {
    const MutableColumnView* target = nullptr;
    for (const MutableColumnView& d : dest) {
      if (d.name == col.name) {
        target = &d;
        break;
      }
    }
    if (target == nullptr) {
      log_once(log::Level::kWarn, "ckpt-unknown-column-" + col.name,
               ("checkpoint column '" + col.name +
                "' is unknown to this reader; skipping it")
                   .c_str());
      continue;
    }
    if (static_cast<ColumnType>(col.type) != target->type ||
        col.elem_size != target->elem_size ||
        col.elem_count != target->elem_count) {
      HACC_LOG_ERROR(
          "checkpoint column '%s' mismatches destination "
          "(type %u/%u elem_size %u/%u count %llu/%llu)",
          col.name.c_str(), static_cast<unsigned>(col.type),
          static_cast<unsigned>(target->type), col.elem_size,
          target->elem_size,
          static_cast<unsigned long long>(col.elem_count),
          static_cast<unsigned long long>(target->elem_count));
      return false;
    }
    auto* data = static_cast<std::uint8_t*>(target->data);
    for (const ParsedChunk& chunk : col.chunks) {
      if (!chunk.valid) return false;
      std::memcpy(data + std::uint64_t{chunk.index} * file.meta.chunk_bytes,
                  bytes.data() + chunk.offset, chunk.length);
    }
  }
  return true;
}

bool is_complete(const ParsedCheckpoint& file) {
  for (const ParsedColumn& col : file.columns) {
    if (col.chunks.size() != col.num_chunks) return false;
    std::vector<std::uint8_t> covered(col.num_chunks, 0);
    for (const ParsedChunk& chunk : col.chunks) {
      if (!chunk.valid || chunk.index >= col.num_chunks) return false;
      covered[chunk.index] = 1;
    }
    if (std::find(covered.begin(), covered.end(), 0) != covered.end()) {
      return false;
    }
  }
  return true;
}

CkptDiffPlanner::CkptDiffPlanner(const CkptConfig& config)
    : config_(config),
      tracker_(config.chunk_bytes, /*align_regions=*/true) {}

std::uint64_t CkptDiffPlanner::total_chunks(
    std::span<const ColumnView> columns) const {
  std::uint64_t total = 0;
  for (const ColumnView& col : columns) {
    total += num_chunks_for(
        col.bytes(), static_cast<std::uint32_t>(config_.chunk_bytes));
  }
  return total;
}

CkptDiffPlanner::Plan CkptDiffPlanner::finish_full(
    std::uint64_t step, std::span<const ColumnView> columns) {
  chain_root_ = step;
  chain_index_ = 0;
  prev_step_ = step;
  Plan plan;
  plan.kind = CkptKind::kFull;
  plan.base_step = step;
  plan.chain_index = 0;
  plan.chunks_total = total_chunks(columns);
  plan.chunks_written = plan.chunks_total;
  plan.chain_root = step;
  return plan;
}

CkptDiffPlanner::Plan CkptDiffPlanner::plan(
    std::uint64_t step, std::span<const ColumnView> columns) {
  std::vector<util::PagedSnapshot::Region> regions;
  regions.reserve(columns.size());
  for (const ColumnView& col : columns) {
    regions.push_back({col.data, static_cast<std::size_t>(col.bytes())});
  }
  tracker_.capture(regions);

  if (!config_.diff) return finish_full(step, columns);
  if (chain_index_ >= static_cast<std::uint32_t>(
                          std::max(0, config_.diff_max_chain))) {
    return finish_full(step, columns);
  }
  const auto changed = tracker_.changed_pages();
  if (!changed.has_value()) {
    // First capture, or the column layout changed (particle count moved):
    // there is no page correspondence to diff against.
    return finish_full(step, columns);
  }

  Plan plan;
  plan.mask.resize(columns.size());
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const std::size_t first = tracker_.region_first_page(c);
    const std::size_t count = tracker_.region_num_pages(c);
    plan.mask[c].assign(count, 0);
    for (std::size_t k = 0; k < count; ++k) {
      plan.mask[c][k] = (*changed)[first + k];
      if (plan.mask[c][k]) ++plan.chunks_written;
    }
    plan.chunks_total += count;
  }
  if (plan.chunks_written == plan.chunks_total) {
    // Everything moved — a diff would be a full file with extra chain
    // risk. Write a real full and reset the chain instead.
    return finish_full(step, columns);
  }
  plan.kind = CkptKind::kDiff;
  plan.base_step = prev_step_;
  plan.chain_index = ++chain_index_;
  plan.chain_root = chain_root_;
  prev_step_ = step;
  return plan;
}

CkptDiffPlanner::Plan CkptDiffPlanner::plan_full(
    std::uint64_t step, std::span<const ColumnView> columns) {
  std::vector<util::PagedSnapshot::Region> regions;
  regions.reserve(columns.size());
  for (const ColumnView& col : columns) {
    regions.push_back({col.data, static_cast<std::size_t>(col.bytes())});
  }
  tracker_.capture(regions);
  return finish_full(step, columns);
}

}  // namespace crkhacc::io
