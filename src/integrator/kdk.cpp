#include "integrator/kdk.h"

#include <cmath>

#include "cosmology/units.h"

namespace crkhacc::integrator {

void Kdk::kick(Particles& particles, double a0, double a1,
               const std::uint8_t* active, bool with_drag) const {
  const double dt = dt_of(a0, a1);
  const float drag = with_drag ? static_cast<float>(a0 / a1) : 1.0f;
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (active && !active[i]) continue;
    particles.vx[i] = particles.vx[i] * drag +
                      particles.ax[i] * static_cast<float>(dt);
    particles.vy[i] = particles.vy[i] * drag +
                      particles.ay[i] * static_cast<float>(dt);
    particles.vz[i] = particles.vz[i] * drag +
                      particles.az[i] * static_cast<float>(dt);
  }
}

void Kdk::drift(Particles& particles, double a0, double a1, double box,
                const std::uint8_t* active) const {
  const double dt = dt_of(a0, a1);
  const double a_mid = 0.5 * (a0 + a1);
  const float move = static_cast<float>(dt / a_mid);
  // u ~ a^{-3(gamma-1)}: exact homogeneous-expansion cooling.
  const float expand = static_cast<float>(
      std::pow(a0 / a1, 3.0 * (units::kGamma - 1.0)));
  const float fbox = static_cast<float>(box);
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (active && !active[i]) continue;
    float x = particles.x[i] + particles.vx[i] * move;
    float y = particles.y[i] + particles.vy[i] * move;
    float z = particles.z[i] + particles.vz[i] * move;
    // Periodic wrap for owned particles (drifts are < box per step).
    // Ghost replicas live at unwrapped image coordinates and must stay
    // there so the chaining mesh keeps them adjacent to the domain edge.
    if (particles.is_owned(i)) {
      if (x < 0.f) x += fbox; else if (x >= fbox) x -= fbox;
      if (y < 0.f) y += fbox; else if (y >= fbox) y -= fbox;
      if (z < 0.f) z += fbox; else if (z >= fbox) z -= fbox;
    }
    particles.x[i] = x;
    particles.y[i] = y;
    particles.z[i] = z;
    if (particles.is_gas(i)) {
      particles.u[i] *= expand;
    }
  }
}

void Kdk::energy_kick(Particles& particles, double a0, double a1,
                      const std::uint8_t* active) const {
  const double dt = dt_of(a0, a1);
  const std::size_t n = particles.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (active && !active[i]) continue;
    if (!particles.is_gas(i)) continue;
    float u = particles.u[i] + particles.du[i] * static_cast<float>(dt);
    if (u < 0.0f) u = 0.0f;  // shock-crossing guard; floor restored by UV
    particles.u[i] = u;
  }
}

}  // namespace crkhacc::integrator
