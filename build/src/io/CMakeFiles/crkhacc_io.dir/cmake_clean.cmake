file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_io.dir/checkpoint.cpp.o"
  "CMakeFiles/crkhacc_io.dir/checkpoint.cpp.o.d"
  "CMakeFiles/crkhacc_io.dir/generic_io.cpp.o"
  "CMakeFiles/crkhacc_io.dir/generic_io.cpp.o.d"
  "CMakeFiles/crkhacc_io.dir/multi_tier.cpp.o"
  "CMakeFiles/crkhacc_io.dir/multi_tier.cpp.o.d"
  "CMakeFiles/crkhacc_io.dir/storage.cpp.o"
  "CMakeFiles/crkhacc_io.dir/storage.cpp.o.d"
  "libcrkhacc_io.a"
  "libcrkhacc_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
