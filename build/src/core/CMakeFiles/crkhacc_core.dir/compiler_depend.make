# Empty compiler generated dependencies file for crkhacc_core.
# This may be replaced when dependencies are built.
