// Offline checkpoint audit / repair tool.
//
// Walks a checkpoint tree (the PFS directory a campaign wrote into),
// verifies every self-describing column file chunk-by-chunk, and prints
// a damage report that pinpoints the exact step / rank / column / chunk
// of every corruption — no simulator, no run configuration needed: the
// files describe themselves.
//
//   ./examples/ckpt_audit <pfs_root> [--ranks=N] [--step=S]
//                         [--repair-from=DIR]... [--quiet]
//
// <pfs_root> is the storage root that contains ckpt/step*/rank*.gio.
// --ranks=N audits ranks 0..N-1 (default: infer the rank set from the
// directory listing). --step=S restricts the audit to one step.
// Each --repair-from=DIR names a redundant tier (e.g. a node-local NVMe
// staging directory) to patch damaged chunks from; repairs are only
// persisted after the healed file re-parses clean and matches its
// completion marker bitwise.
//
// Exit status: 0 when the tree is clean (or fully repaired), 1 when
// damage remains, 2 on usage errors.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "io/ckpt_audit.h"
#include "io/storage.h"

using namespace crkhacc;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <pfs_root> [--ranks=N] [--step=S] "
               "[--repair-from=DIR]... [--quiet]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  io::CkptAuditOptions options;
  bool quiet = false;
  std::string root;
  std::vector<std::string> repair_dirs;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ranks=", 8) == 0) {
      options.num_ranks = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--step=", 7) == 0) {
      options.only_step = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strncmp(argv[i], "--repair-from=", 14) == 0) {
      repair_dirs.emplace_back(argv[i] + 14);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (root.empty()) {
      root = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (root.empty()) return usage(argv[0]);
  if (!std::filesystem::is_directory(root)) {
    std::fprintf(stderr, "ckpt_audit: %s is not a directory\n", root.c_str());
    return 2;
  }
  options.repair = !repair_dirs.empty();

  // Unthrottled stores: the audit reads/writes at native speed; the
  // bandwidth/latency models only matter to the live campaign.
  io::ThrottledStore pfs(io::StoreConfig{root, 0.0, 0.0, /*shared=*/false});
  std::vector<std::unique_ptr<io::ThrottledStore>> sources;
  std::vector<io::ThrottledStore*> source_ptrs;
  for (const std::string& dir : repair_dirs) {
    if (!std::filesystem::is_directory(dir)) {
      std::fprintf(stderr, "ckpt_audit: repair source %s is not a directory\n",
                   dir.c_str());
      return 2;
    }
    sources.push_back(std::make_unique<io::ThrottledStore>(
        io::StoreConfig{dir, 0.0, 0.0, /*shared=*/false}));
    source_ptrs.push_back(sources.back().get());
  }

  const io::CkptAuditReport report =
      io::audit_checkpoints(pfs, options, source_ptrs);
  if (!quiet) std::fputs(report.summary().c_str(), stdout);
  return report.clean() ? 0 : 1;
}
