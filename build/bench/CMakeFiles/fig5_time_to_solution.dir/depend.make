# Empty dependencies file for fig5_time_to_solution.
# This may be replaced when dependencies are built.
