// Zel'dovich initial-conditions generator.
//
// Generates a Gaussian random density field with the linear power spectrum
// on the distributed FFT mesh, converts it to Zel'dovich displacements and
// velocities, and emits dark matter + gas particle pairs on a perturbed
// lattice. All random draws are counter-based and keyed on the *global*
// mode index, so the realization is identical for any rank count — the
// same property HACC's IC generator needs so that scaling studies run the
// same universe.
#pragma once

#include <cstdint>

#include "comm/world.h"
#include "core/particles.h"
#include "cosmology/background.h"
#include "cosmology/power.h"

namespace crkhacc::cosmo {

struct IcConfig {
  std::size_t np = 32;        ///< lattice points per dimension
  double box = 64.0;          ///< box side [Mpc/h]
  double z_init = 50.0;       ///< starting redshift
  std::uint64_t seed = 42;    ///< realization seed
  bool with_baryons = true;   ///< emit dm+gas pairs (else dm only)
  double t_init_K = 200.0;    ///< initial gas temperature [K]
};

/// Generate the particles whose lattice sites live in this rank's FFT
/// z-slab. Union over ranks is the full 2*np^3 (or np^3) particle set.
/// Gas particles are staggered by half a lattice cell.
Particles generate_zeldovich(comm::Communicator& comm, const Background& bg,
                             const PowerSpectrum& power, const IcConfig& config);

/// RMS displacement (code units) of the Zel'dovich field at z_init —
/// diagnostics and step-size heuristics.
double zeldovich_rms_displacement(const Background& bg,
                                  const PowerSpectrum& power,
                                  const IcConfig& config);

}  // namespace crkhacc::cosmo
