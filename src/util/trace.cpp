#include "util/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string_view>

namespace crkhacc::util {

namespace {

std::atomic<std::uint64_t> g_next_recorder_id{1};

thread_local TraceRecorder* tls_current = nullptr;
// One-entry cache mapping this thread to its ring in tls_cache_owner;
// invalidated when the thread emits into a different recorder.
thread_local std::uint64_t tls_cache_owner = 0;
thread_local TraceRecorder::ThreadLog* tls_cache_log = nullptr;

/// Escape a span name for JSON. Names are static literals under our
/// control, so this is belt-and-braces, not a full escaper.
void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

}  // namespace

/// Single-producer ring: the owning thread pushes, flush() consumes.
/// head/tail are free-running counters; release on head publish pairs
/// with acquire on the consumer side (and vice versa for tail) so the
/// slot contents are visible without locks.
struct TraceRecorder::ThreadLog {
  struct Raw {
    const char* name;
    double start;
    double dur;
    std::uint64_t open_seq;
    std::uint32_t depth;
  };

  explicit ThreadLog(std::size_t capacity)
      : ring(capacity == 0 ? 1 : capacity) {}

  std::vector<Raw> ring;
  std::atomic<std::uint64_t> head{0};     ///< Next slot to write.
  std::atomic<std::uint64_t> tail{0};     ///< Next slot to consume.
  std::atomic<std::uint64_t> dropped{0};  ///< Overflow-dropped events.

  std::thread::id owner;
  std::uint32_t tid = 0;

  // Owner-thread span state; never touched by the consumer.
  std::uint32_t open_depth = 0;
  std::uint64_t next_open_seq = 0;

  void push(const Raw& ev) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= ring.size()) {
      dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    ring[h % ring.size()] = ev;
    head.store(h + 1, std::memory_order_release);
  }
};

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(std::move(config)),
      id_(g_next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() {
  if (tls_cache_owner == id_) {
    tls_cache_owner = 0;
    tls_cache_log = nullptr;
  }
  if (tls_current == this) tls_current = nullptr;
}

TraceRecorder* TraceRecorder::current() { return tls_current; }

TraceRecorder::Context::Context(TraceRecorder* rec) : prev_(tls_current) {
  tls_current = rec;
}

TraceRecorder::Context::~Context() { tls_current = prev_; }

TraceRecorder::ThreadLog* TraceRecorder::local_log() {
  if (tls_cache_owner == id_) return tls_cache_log;
  const std::thread::id self = std::this_thread::get_id();
  std::lock_guard<std::mutex> lock(register_mutex_);
  for (auto& log : logs_) {
    if (log->owner == self) {
      tls_cache_owner = id_;
      tls_cache_log = log.get();
      return log.get();
    }
  }
  auto log = std::make_unique<ThreadLog>(config_.buffer_events);
  log->owner = self;
  log->tid = static_cast<std::uint32_t>(logs_.size());
  ThreadLog* raw = log.get();
  logs_.push_back(std::move(log));
  tls_cache_owner = id_;
  tls_cache_log = raw;
  return raw;
}

TraceRecorder::Span::Span(TraceRecorder* rec, const char* name) {
  if (rec == nullptr || !rec->config_.enabled) return;
  rec_ = rec;
  log_ = rec->local_log();
  name_ = name;
  t0_ = rec->epoch_.seconds();
  depth_ = log_->open_depth++;
  open_seq_ = log_->next_open_seq++;
}

TraceRecorder::Span::Span(Span&& other) noexcept
    : rec_(other.rec_),
      log_(other.log_),
      name_(other.name_),
      t0_(other.t0_),
      open_seq_(other.open_seq_),
      depth_(other.depth_) {
  other.rec_ = nullptr;
  other.log_ = nullptr;
}

TraceRecorder::Span& TraceRecorder::Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    close();
    rec_ = other.rec_;
    log_ = other.log_;
    name_ = other.name_;
    t0_ = other.t0_;
    open_seq_ = other.open_seq_;
    depth_ = other.depth_;
    other.rec_ = nullptr;
    other.log_ = nullptr;
  }
  return *this;
}

void TraceRecorder::Span::close() {
  if (log_ == nullptr) return;
  const double dur = rec_->epoch_.seconds() - t0_;
  --log_->open_depth;
  log_->push({name_, t0_, dur, open_seq_, depth_});
  log_ = nullptr;
  rec_ = nullptr;
}

void TraceRecorder::flush(std::uint64_t step) {
  const std::size_t begin = committed_.size();
  std::lock_guard<std::mutex> lock(register_mutex_);
  for (auto& log : logs_) {
    const std::uint64_t head = log->head.load(std::memory_order_acquire);
    std::uint64_t tail = log->tail.load(std::memory_order_relaxed);
    for (; tail != head; ++tail) {
      const ThreadLog::Raw& raw = log->ring[tail % log->ring.size()];
      committed_.push_back({raw.name, step, raw.open_seq, raw.start, raw.dur,
                            log->tid, raw.depth});
    }
    log->tail.store(tail, std::memory_order_release);
  }
  // Ring order is push (= close) order; sort each thread's batch by
  // open order so nesting reconstruction is a simple stack walk.
  std::sort(committed_.begin() + static_cast<std::ptrdiff_t>(begin),
            committed_.end(), [](const TraceEvent& a, const TraceEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.open_seq < b.open_seq;
            });
  step_ranges_.emplace_back(step, std::make_pair(begin, committed_.size()));
}

std::uint64_t TraceRecorder::events_dropped() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  std::uint64_t total = 0;
  for (const auto& log : logs_)
    total += log->dropped.load(std::memory_order_relaxed);
  return total;
}

std::size_t TraceRecorder::threads_seen() const {
  std::lock_guard<std::mutex> lock(register_mutex_);
  return logs_.size();
}

double TraceRecorder::total_seconds(const char* name) const {
  double total = 0.0;
  for (const TraceEvent& ev : committed_) {
    if (std::string_view(ev.name) == name) total += ev.dur;
  }
  return total;
}

double TraceRecorder::step_seconds(std::uint64_t step,
                                   const char* name) const {
  double total = 0.0;
  for (const auto& [s, range] : step_ranges_) {
    if (s != step) continue;
    for (std::size_t i = range.first; i < range.second; ++i) {
      if (std::string_view(committed_[i].name) == name)
        total += committed_[i].dur;
    }
  }
  return total;
}

std::vector<PhaseSummary> TraceRecorder::summary() const {
  std::map<std::string, PhaseSummary> by_name;
  for (const TraceEvent& ev : committed_) {
    PhaseSummary& s = by_name[ev.name];
    if (s.count == 0) s.name = ev.name;
    ++s.count;
    s.total_seconds += ev.dur;
    s.max_seconds = std::max(s.max_seconds, ev.dur);
  }
  std::vector<PhaseSummary> out;
  out.reserve(by_name.size());
  for (auto& [name, s] : by_name) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(),
            [](const PhaseSummary& a, const PhaseSummary& b) {
              if (a.total_seconds != b.total_seconds)
                return a.total_seconds > b.total_seconds;
              return a.name < b.name;
            });
  return out;
}

std::string TraceRecorder::summary_table() const {
  const auto rows = summary();
  double grand = 0.0;
  for (const PhaseSummary& r : rows) grand += r.total_seconds;
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-24s %8s %12s %10s %10s %6s\n", "phase",
                "count", "total(s)", "mean(ms)", "max(ms)", "%");
  out << line;
  for (const PhaseSummary& r : rows) {
    std::snprintf(line, sizeof(line),
                  "%-24s %8llu %12.4f %10.3f %10.3f %6.1f\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.count), r.total_seconds,
                  1e3 * r.total_seconds / static_cast<double>(r.count),
                  1e3 * r.max_seconds,
                  grand > 0.0 ? 100.0 * r.total_seconds / grand : 0.0);
    out << line;
  }
  return out.str();
}

std::string TraceRecorder::chrome_events_fragment() const {
  std::string out;
  out.reserve(committed_.size() * 128);
  bool first = true;
  char buf[192];
  for (const TraceEvent& ev : committed_) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, ev.name);
    std::snprintf(
        buf, sizeof(buf),
        "\",\"ph\":\"X\",\"pid\":%d,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
        "\"args\":{\"step\":%llu,\"depth\":%u,\"seq\":%llu}}",
        rank_, ev.tid, 1e6 * ev.start, 1e6 * ev.dur,
        static_cast<unsigned long long>(ev.step), ev.depth,
        static_cast<unsigned long long>(ev.open_seq));
    out += buf;
  }
  return out;
}

std::string TraceRecorder::chrome_json_document(
    const std::vector<std::string>& fragments) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const std::string& frag : fragments) {
    if (frag.empty()) continue;
    if (!first) out += ",\n";
    first = false;
    out += frag;
  }
  out += "\n]}\n";
  return out;
}

bool TraceRecorder::export_chrome_json(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << chrome_json_document({chrome_events_fragment()});
  return static_cast<bool>(out);
}

}  // namespace crkhacc::util
