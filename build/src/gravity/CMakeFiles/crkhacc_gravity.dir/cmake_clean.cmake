file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_gravity.dir/short_range.cpp.o"
  "CMakeFiles/crkhacc_gravity.dir/short_range.cpp.o.d"
  "libcrkhacc_gravity.a"
  "libcrkhacc_gravity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_gravity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
