#include "io/checkpoint.h"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cstring>
#include <filesystem>

#include "io/column_file.h"
#include "io/multi_tier.h"
#include "util/crc32.h"
#include "util/log.h"

namespace crkhacc::io {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMarkerMagic = 0x434b4f4bu;  // "CKOK"
constexpr std::size_t kMarkerSize = 4 + 8 + 4 + 4;

/// Hard cap on chain-walk length: chains are bounded by diff_max_chain
/// at write time, so anything deeper is a corrupted or crafted linkage.
constexpr int kMaxChainWalk = 4096;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

std::vector<std::uint8_t> encode_marker(const CheckpointMarker& marker) {
  std::vector<std::uint8_t> out;
  out.reserve(kMarkerSize);
  append_pod(out, kMarkerMagic);
  append_pod(out, marker.payload_bytes);
  append_pod(out, marker.payload_crc);
  append_pod(out, crc32(out.data(), out.size()));
  return out;
}

bool decode_marker(const std::vector<std::uint8_t>& bytes,
                   CheckpointMarker& out) {
  if (bytes.size() != kMarkerSize) return false;
  if (read_pod<std::uint32_t>(bytes.data()) != kMarkerMagic) return false;
  const std::uint32_t stored = read_pod<std::uint32_t>(bytes.data() + 16);
  if (crc32(bytes.data(), 16) != stored) return false;
  out.payload_bytes = read_pod<std::uint64_t>(bytes.data() + 4);
  out.payload_crc = read_pod<std::uint32_t>(bytes.data() + 12);
  return true;
}

std::vector<std::uint64_t> checkpoint_steps(ThrottledStore& pfs) {
  std::vector<std::uint64_t> steps;
  const auto ckpt_dir = fs::path(pfs.full_path("ckpt"));
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(ckpt_dir, ec)) {
    if (!entry.is_directory()) continue;
    const auto name = entry.path().filename().string();
    if (name.rfind("step", 0) != 0) continue;
    std::uint64_t step = 0;
    const char* begin = name.c_str() + 4;
    const char* end = name.c_str() + name.size();
    if (std::from_chars(begin, end, step).ec == std::errc{}) {
      steps.push_back(step);
    }
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

namespace {

/// Read one rank file and check it end to end against its marker.
bool read_verified(ThrottledStore& pfs, std::uint64_t step, int rank,
                   std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> marker_bytes;
  if (!pfs.read(MultiTierWriter::marker_path(step, rank), marker_bytes)) {
    return false;
  }
  CheckpointMarker marker;
  if (!decode_marker(marker_bytes, marker)) return false;
  if (!pfs.read(MultiTierWriter::checkpoint_path(step, rank), payload)) {
    return false;
  }
  return payload.size() == marker.payload_bytes &&
         crc32(payload.data(), payload.size()) == marker.payload_crc;
}

/// Walk the chain tip -> root, collecting each file's verified bytes and
/// parse. On success files[0] is the tip at `step` and files.back() is
/// the anchoring full.
struct ChainFile {
  std::vector<std::uint8_t> bytes;
  ParsedCheckpoint parsed;
};

bool collect_chain(ThrottledStore& pfs, std::uint64_t step, int rank,
                   std::vector<ChainFile>& files) {
  files.clear();
  std::uint64_t cur = step;
  for (int depth = 0; depth < kMaxChainWalk; ++depth) {
    ChainFile file;
    if (!read_verified(pfs, cur, rank, file.bytes)) return false;
    if (parse_checkpoint(file.bytes, file.parsed) != ParseStatus::kOk) {
      return false;
    }
    const CkptFileMeta& meta = file.parsed.meta;
    if (!files.empty()) {
      const CkptFileMeta& tip = files.front().parsed.meta;
      // A chain must describe one consistent state layout end to end.
      if (meta.snapshot.particle_count != tip.snapshot.particle_count ||
          meta.chunk_bytes != tip.chunk_bytes) {
        return false;
      }
    }
    const bool is_full = meta.kind == CkptKind::kFull;
    files.push_back(std::move(file));
    if (is_full) return true;
    if (meta.base_step >= cur) return false;  // linkage must walk backward
    cur = meta.base_step;
  }
  return false;
}

}  // namespace

bool verify_checkpoint_rank(ThrottledStore& pfs, std::uint64_t step,
                            int rank) {
  std::vector<ChainFile> files;
  return collect_chain(pfs, step, rank, files) &&
         is_complete(files.back().parsed);
}

int checkpoint_writer_count(ThrottledStore& pfs, std::uint64_t step) {
  std::vector<ChainFile> files;
  if (!collect_chain(pfs, step, /*rank=*/0, files)) return 0;
  if (!is_complete(files.back().parsed)) return 0;
  const std::int32_t recorded = files.front().parsed.meta.snapshot.num_ranks;
  return recorded >= 1 ? recorded : 0;
}

std::optional<std::uint64_t> latest_complete_checkpoint(ThrottledStore& pfs,
                                                        int num_ranks) {
  static std::atomic<bool> warned_rank_mismatch{false};
  for (std::uint64_t step : checkpoint_steps(pfs)) {
    // Completeness is judged against the step's OWN writer count, never
    // the caller's: a step whose files record M writers was collectively
    // committed iff ranks 0..M-1 all verify. Probing the caller's rank
    // set instead would mis-select a partially-bled M-rank step for any
    // smaller reader (silently dropping the unbled domains) — exactly
    // the corruption a post-shrink restart must not suffer.
    const int recorded = checkpoint_writer_count(pfs, step);
    if (recorded <= 0) continue;
    bool complete = true;
    for (int r = 1; r < recorded && complete; ++r) {
      complete = verify_checkpoint_rank(pfs, step, r);
    }
    if (!complete) continue;
    if (recorded != num_ranks && !warned_rank_mismatch.exchange(true)) {
      HACC_LOG_WARN(
          "checkpoint step %llu was committed by ranks 0..%d, not the "
          "ranks 0..%d this run expects; restore will remap the %d rank "
          "file(s) onto %d rank(s)",
          static_cast<unsigned long long>(step), recorded - 1, num_ranks - 1,
          recorded, num_ranks);
    }
    return step;
  }
  return std::nullopt;
}

bool restore_checkpoint(ThrottledStore& pfs, std::uint64_t step, int rank,
                        SnapshotMeta& meta, Particles& out) {
  std::vector<ChainFile> files;
  if (!collect_chain(pfs, step, rank, files)) return false;
  if (!is_complete(files.back().parsed)) return false;

  // Replay: decode the anchoring full, then overlay each diff's carried
  // chunks oldest -> newest. files[] is tip-first, so walk it backward.
  Particles tmp;
  tmp.resize(files.back().parsed.meta.snapshot.particle_count);
  const auto dest = particle_columns(tmp);
  for (const MutableColumnView& d : dest) {
    bool found = false;
    for (const ParsedColumn& c : files.back().parsed.columns) {
      if (c.name == d.name) {
        found = true;
        break;
      }
    }
    if (!found) return false;  // the full lacks a column this reader needs
  }
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    if (!apply_chunks(it->parsed, it->bytes, dest)) return false;
  }

  meta = files.front().parsed.meta.snapshot;
  if (out.empty()) {
    out = std::move(tmp);
  } else {
    out.reserve(out.size() + tmp.size());
    for (std::size_t i = 0; i < tmp.size(); ++i) out.append_from(tmp, i);
  }
  return true;
}

}  // namespace crkhacc::io
