// Run configuration for the CRK-HACC-style simulation driver.
#pragma once

#include <cstdint>

#include "core/sdc.h"
#include "cosmology/background.h"
#include "gravity/short_range.h"
#include "integrator/timestep.h"
#include "io/column_file.h"
#include "sph/solver.h"
#include "subgrid/model.h"
#include "util/trace.h"

namespace crkhacc::core {

/// What a campaign does when a rank dies mid-run.
enum class RankLossPolicy {
  kFatal,   ///< propagate the RankLossError; the run is over (default)
  kShrink,  ///< relaunch on the survivors, adopting the dead rank's
            ///< domain from its checkpoint chain (ULFM shrink-and-continue)
};

/// Rank-level dynamic load balancing (core/load_balancer.h): per PM
/// step, owner-leaf work packets of overloaded ranks execute on
/// underloaded neighbor ranks. Off by default (threshold = 0): untouched
/// configs run zero extra collectives and stay bitwise unchanged.
struct LbConfig {
  /// Balance when the census imbalance ratio (max/mean short-range cost
  /// across ranks) exceeds this; <= 0 disables the balancer entirely.
  /// Meaningful values are > 1 (e.g. 1.25).
  double threshold = 0.0;
  /// Hysteresis: once engaged, keep balancing until the ratio falls
  /// below 1 + hysteresis * (threshold - 1), so a ratio hovering at the
  /// threshold does not flap the policy on and off.
  double hysteresis = 0.8;
  /// Cap on the fraction of a donor's census cost shipped per step.
  double max_fraction = 0.5;
  /// Blend the previous step's measured short-range phase seconds into
  /// the census cost. Only takes effect when tracing is enabled (the
  /// phase clock exists then); census-only decisions are deterministic.
  bool use_measured = true;
};

struct SimConfig {
  cosmo::Parameters cosmology;

  // Problem size.
  std::size_t np = 16;      ///< particle lattice per dimension, per species
  double box = 32.0;        ///< comoving box side [Mpc/h]
  double z_init = 50.0;
  double z_final = 0.0;
  int num_pm_steps = 16;    ///< global PM steps (uniform in a)

  // Long-range solver.
  std::size_t ng = 32;      ///< PM mesh per dimension
  double rs_cells = 1.5;    ///< force-split scale in PM cells
  double split_threshold = 1e-3;  ///< pair-force tail at the handover radius

  /// Plummer softening and accel-criterion length; < 0 selects the
  /// resolution-scaled default of 0.1 x mean interparticle spacing.
  double softening = -1.0;

  // Physics switches.
  bool hydro = true;         ///< evolve gas with CRKSPH (else gravity-only)
  bool subgrid_on = true;    ///< cooling / SF / feedback
  double t_init_K = 200.0;   ///< initial gas temperature

  // Adaptive stepping.
  bool flat_stepping = false;  ///< "low-z Flat": sync all to deepest bin
  integrator::TimeBinConfig bins;

  // Ablations.
  bool rebuild_tree_every_substep = false;  ///< vs refit-only (paper default)

  // Analysis cadence: run in situ analysis every k-th PM step (0 = only
  // when requested explicitly).
  int analysis_every = 0;

  /// Intra-node worker threads for the short-range pipeline (tree builds,
  /// pair kernels, PM deposit/interpolate). 0 selects hardware
  /// concurrency. Results are bitwise identical for every value.
  int threads = 1;

  std::uint64_t seed = 42;

  /// Step-phase tracing (spans, per-phase imbalance collectives, Chrome
  /// JSON export). Off by default: a disabled recorder adds no spans, no
  /// collectives, and no physics-visible state.
  util::TraceConfig trace;

  sph::SphConfig sph;
  gravity::GravityConfig gravity;
  subgrid::SubgridConfig subgrid;

  /// Rank-level dynamic load balancing (lb_* parameter-file keys).
  LbConfig lb;

  /// Silent-data-corruption guardrails: per-step snapshot + audit +
  /// rollback-replay (sdc_* parameter-file keys).
  SdcConfig sdc;

  /// Checkpoint format / differential-chain knobs (ckpt_* parameter-file
  /// keys); forwarded into MultiTierConfig by the drivers.
  io::CkptConfig ckpt;

  /// Campaign-level response to a lost rank (`rank_loss_policy` key);
  /// honored by core::Campaign, not by a bare World::run.
  RankLossPolicy rank_loss_policy = RankLossPolicy::kFatal;
};

}  // namespace crkhacc::core
