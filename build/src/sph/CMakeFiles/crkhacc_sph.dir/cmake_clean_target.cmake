file(REMOVE_RECURSE
  "libcrkhacc_sph.a"
)
