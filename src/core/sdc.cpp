#include "core/sdc.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <span>

#include "tree/chaining_mesh.h"
#include "util/assertions.h"
#include "util/audit.h"

namespace crkhacc::core {
namespace {

constexpr const char* kCheckNames[kSdcNumChecks] = {
    "nonfinite", "bounds", "conservation", "occupancy", "timestep",
    "snapshot",
};

}  // namespace

std::string sdc_check_names(std::uint32_t mask) {
  if (mask == 0) return "ok";
  std::string names;
  for (int b = 0; b < kSdcNumChecks; ++b) {
    if ((mask & (1u << b)) == 0) continue;
    if (!names.empty()) names += '|';
    names += kCheckNames[b];
  }
  return names;
}

std::uint32_t SdcAuditor::local_audit(const Particles& particles,
                                      const AuditContext& ctx) {
  last_failure_.clear();
  std::uint32_t mask = 0;

  struct FieldScan {
    const char* name;
    std::span<const float> values;
    double lo, hi;
  };
  // Ghost replicas live at unwrapped image coordinates, so the legal
  // position band extends `position_margin` beyond the box on each side.
  const double pm = ctx.position_margin;
  const FieldScan scans[] = {
      {"x", particles.x, -pm, ctx.box + pm},
      {"y", particles.y, -pm, ctx.box + pm},
      {"z", particles.z, -pm, ctx.box + pm},
      {"vx", particles.vx, -config_.max_velocity, config_.max_velocity},
      {"vy", particles.vy, -config_.max_velocity, config_.max_velocity},
      {"vz", particles.vz, -config_.max_velocity, config_.max_velocity},
      {"u", particles.u, -config_.max_internal_energy,
       config_.max_internal_energy},
      {"mass", particles.mass, 0.0, config_.max_particle_mass},
  };
  for (const FieldScan& f : scans) {
    // The scans locate the first offender; CHECK_FINITE / CHECK_BOUNDS
    // then format the exception (value + context) that becomes the
    // verdict bit and the log line — recoverable, so thrown, not fatal.
    const std::size_t nf = util::find_nonfinite(f.values);
    if (nf != util::kAuditNone) {
      try {
        char where[64];
        std::snprintf(where, sizeof(where), "field %s, particle %zu", f.name,
                      nf);
        CHECK_FINITE(f.values[nf], where);
      } catch (const InvariantError& error) {
        mask |= kSdcCheckNonFinite;
        note(error.what());
      }
    }
    const float lo = static_cast<float>(f.lo);
    const float hi = static_cast<float>(f.hi);
    const std::size_t out = util::find_outside(f.values, lo, hi);
    if (out != util::kAuditNone) {
      try {
        char where[64];
        std::snprintf(where, sizeof(where), "field %s, particle %zu", f.name,
                      out);
        CHECK_BOUNDS(f.values[out], lo, hi, where);
      } catch (const InvariantError& error) {
        mask |= kSdcCheckBounds;
        note(error.what());
      }
    }
  }

  if (ctx.solver_nonfinite > 0) {
    mask |= kSdcCheckNonFinite;
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "SPH rejected %llu non-finite smoothing targets",
                  static_cast<unsigned long long>(ctx.solver_nonfinite));
    note(buf);
  }

  if (ctx.timestep.nonfinite > 0 || ctx.timestep.nonpositive > 0) {
    mask |= kSdcCheckTimestep;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "timestep limits: %llu NaN, %llu non-positive",
                  static_cast<unsigned long long>(ctx.timestep.nonfinite),
                  static_cast<unsigned long long>(ctx.timestep.nonpositive));
    note(buf);
  }

  const tree::OccupancyStats occ = tree::bin_occupancy(
      ctx.domain, ctx.cm_bin_width, particles, ctx.domain_slack, ctx.box);
  const double occ_limit =
      config_.occupancy_factor * std::max(1.0, occ.mean_bin);
  if (occ.out_of_domain > 0 ||
      static_cast<double>(occ.max_bin) > occ_limit) {
    mask |= kSdcCheckOccupancy;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "occupancy: %llu escaped domain, fullest bin %llu vs mean "
                  "%.3g over %llu bins",
                  static_cast<unsigned long long>(occ.out_of_domain),
                  static_cast<unsigned long long>(occ.max_bin), occ.mean_bin,
                  static_cast<unsigned long long>(occ.bins));
    note(buf);
  }

  return mask;
}

std::uint32_t SdcAuditor::audit(comm::Communicator& comm,
                                const Particles& particles,
                                const AuditContext& ctx) {
  std::uint32_t mask = local_audit(particles, ctx);

  // Conservation gates compare against the capture-point reference.
  // measure_conservation is collective and its sums are global, so these
  // bits come out identical on every rank. Comparisons are negated so a
  // NaN sum (poisoned by corrupt state) fails the gate.
  const ConservationSnapshot after = measure_conservation(comm, particles);
  if (ctx.reference.count > 0) {
    char buf[224];
    const double mass_drift = util::relative_drift(
        ctx.reference.mass_total, after.mass_total, 1e-30);
    if (!(mass_drift <= config_.mass_drift_tol)) {
      mask |= kSdcCheckConservation;
      std::snprintf(buf, sizeof(buf),
                    "mass drift %.3g (tol %.3g): %.9g -> %.9g", mass_drift,
                    config_.mass_drift_tol, ctx.reference.mass_total,
                    after.mass_total);
      note(buf);
    }
    const double e0 =
        ctx.reference.kinetic_energy + ctx.reference.thermal_energy;
    const double e1 = after.kinetic_energy + after.thermal_energy;
    if (!(e1 <= config_.energy_growth_factor * std::max(e0, 1e-30))) {
      mask |= kSdcCheckConservation;
      std::snprintf(buf, sizeof(buf),
                    "energy grew %.9g -> %.9g (> %.3gx per-step gate)", e0,
                    e1, config_.energy_growth_factor);
      note(buf);
    }
    double dp2 = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double dd = after.momentum[d] - ctx.reference.momentum[d];
      dp2 += dd * dd;
    }
    const double momentum_drift =
        std::sqrt(dp2) / std::max(ctx.reference.abs_momentum, 1e-30);
    if (!(momentum_drift <= config_.momentum_drift_tol)) {
      mask |= kSdcCheckConservation;
      std::snprintf(buf, sizeof(buf),
                    "net momentum drifted %.3g of sum m|v| (tol %.3g)",
                    momentum_drift, config_.momentum_drift_tol);
      note(buf);
    }
  }

  // Per-bit max-reduce == collective OR: every rank leaves with the same
  // verdict mask, and that shared mask IS the commit/rollback decision.
  std::int64_t bits[kSdcNumChecks];
  for (int b = 0; b < kSdcNumChecks; ++b) bits[b] = (mask >> b) & 1;
  comm.allreduce(std::span<std::int64_t>(bits, kSdcNumChecks),
                 comm::ReduceOp::kMax);
  std::uint32_t verdict = 0;
  for (int b = 0; b < kSdcNumChecks; ++b) {
    if (bits[b] != 0) verdict |= 1u << b;
  }
  return verdict;
}

MemFaultInjector::~MemFaultInjector() {
  CHECK_MSG(armed_refs_.load(std::memory_order_acquire) == 0,
            "MemFaultInjector destroyed while still armed on a Simulation");
}

const char* MemFaultInjector::field_name(std::uint32_t field) {
  static constexpr const char* kNames[kFieldCount] = {
      "x", "y", "z", "vx", "vy", "vz", "u", "mass"};
  CHECK(field < kFieldCount);
  return kNames[field];
}

std::optional<MemFaultInjector::Flip> MemFaultInjector::draw(
    std::uint64_t opportunity) const {
  const std::uint64_t base = opportunity * 4;
  if (rng_.uniform(base) >= rate_) return std::nullopt;
  Flip flip;
  flip.field = static_cast<std::uint32_t>(rng_.u64(base + 1) % kFieldCount);
  flip.index = rng_.u64(base + 2);
  flip.bit = static_cast<std::uint32_t>(rng_.u64(base + 3) % 32);
  return flip;
}

std::string apply_flip(Particles& particles,
                       const MemFaultInjector::Flip& flip) {
  CHECK(!particles.empty());
  std::vector<float>* fields[MemFaultInjector::kFieldCount] = {
      &particles.x,  &particles.y,  &particles.z,  &particles.vx,
      &particles.vy, &particles.vz, &particles.u,  &particles.mass};
  CHECK(flip.field < MemFaultInjector::kFieldCount);
  std::vector<float>& field = *fields[flip.field];
  const std::size_t i = static_cast<std::size_t>(flip.index % field.size());
  const float before = field[i];
  std::uint32_t bits;
  std::memcpy(&bits, &field[i], sizeof(bits));
  bits ^= 1u << (flip.bit & 31u);
  std::memcpy(&field[i], &bits, sizeof(bits));
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s[%zu] bit %u: %.9g -> %.9g",
                MemFaultInjector::field_name(flip.field), i, flip.bit & 31u,
                static_cast<double>(before), static_cast<double>(field[i]));
  return buf;
}

std::vector<util::PagedSnapshot::Region> snapshot_regions(
    const Particles& particles) {
  auto region = [](const auto& v) {
    return util::PagedSnapshot::Region{v.data(), v.size() * sizeof(v[0])};
  };
  const Particles& p = particles;
  return {region(p.id),   region(p.x),    region(p.y),    region(p.z),
          region(p.vx),   region(p.vy),   region(p.vz),   region(p.mass),
          region(p.species), region(p.u), region(p.rho),  region(p.hsml),
          region(p.metal), region(p.ax),  region(p.ay),   region(p.az),
          region(p.du),   region(p.bin),  region(p.ghost)};
}

std::vector<util::PagedSnapshot::MutableRegion> snapshot_regions(
    Particles& particles) {
  auto region = [](auto& v) {
    return util::PagedSnapshot::MutableRegion{v.data(),
                                              v.size() * sizeof(v[0])};
  };
  Particles& p = particles;
  return {region(p.id),   region(p.x),    region(p.y),    region(p.z),
          region(p.vx),   region(p.vy),   region(p.vz),   region(p.mass),
          region(p.species), region(p.u), region(p.rho),  region(p.hsml),
          region(p.metal), region(p.ax),  region(p.ay),   region(p.az),
          region(p.du),   region(p.bin),  region(p.ghost)};
}

}  // namespace crkhacc::core
