// ScenarioService tests: the job queue drains, round-robin and
// deficit-weighted slice scheduling behave as documented, cancellation
// works before admission and mid-run, interleaved sliced execution is
// bitwise identical to standalone monolithic runs, per-job checkpoint
// tiers recover injected faults, service_* parameter parsing round-trips
// (and is skipped by the SimConfig overload), and the unknown-parameter
// warning fires exactly once per process even under concurrent apply.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "comm/world.h"
#include "core/param_file.h"
#include "core/service.h"
#include "core/simulation.h"
#include "io/checkpoint.h"

namespace crkhacc::core {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_service_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

/// FaultInjector that interrupts at exactly the scripted trials.
class ScriptedFault : public io::FaultInjector {
 public:
  explicit ScriptedFault(std::vector<std::uint64_t> fail_trials)
      : io::FaultInjector(0.0, 0), fail_trials_(std::move(fail_trials)) {}

  bool should_fail(std::uint64_t trial, double /*dt*/) const override {
    return std::find(fail_trials_.begin(), fail_trials_.end(), trial) !=
           fail_trials_.end();
  }

 private:
  std::vector<std::uint64_t> fail_trials_;
};

SimConfig tiny_config(int steps = 2) {
  SimConfig config;
  config.np = 6;
  config.box = 16.0;
  config.ng = 8;
  config.z_init = 20.0;
  config.z_final = 10.0;
  config.num_pm_steps = steps;
  config.hydro = true;
  config.subgrid_on = false;
  config.bins.max_depth = 1;
  config.seed = 5150;
  return config;
}

ScenarioJob job_named(const std::string& name, const SimConfig& config,
                      const std::string& params = {}) {
  ScenarioJob job;
  job.name = name;
  job.config = config;
  job.params = params;
  return job;
}

bool same_floats(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void expect_bitwise_equal(const Particles& a, const Particles& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.id, b.id);
  EXPECT_TRUE(same_floats(a.x, b.x));
  EXPECT_TRUE(same_floats(a.y, b.y));
  EXPECT_TRUE(same_floats(a.z, b.z));
  EXPECT_TRUE(same_floats(a.vx, b.vx));
  EXPECT_TRUE(same_floats(a.vy, b.vy));
  EXPECT_TRUE(same_floats(a.vz, b.vz));
  EXPECT_TRUE(same_floats(a.u, b.u));
  EXPECT_TRUE(same_floats(a.rho, b.rho));
}

// --- draining the queue ------------------------------------------------------

TEST(ScenarioService, DrainsAllJobsAndAggregates) {
  const int steps = 2;
  ScenarioService farm;
  for (int j = 0; j < 3; ++j) {
    const auto id = farm.submit(job_named("box" + std::to_string(j),
                                          tiny_config(steps),
                                          "seed = " + std::to_string(100 + j)));
    EXPECT_EQ(id, static_cast<std::uint64_t>(j + 1));  // ids start at 1
  }
  EXPECT_EQ(farm.pending(), 3u);

  const auto report = farm.drain();
  EXPECT_EQ(farm.pending(), 0u);
  ASSERT_EQ(report.jobs.size(), 3u);
  for (const auto& job : report.jobs) {
    EXPECT_EQ(job.outcome, JobOutcome::kCompleted) << job.name;
    EXPECT_EQ(job.run.steps_done, static_cast<std::uint64_t>(steps));
    EXPECT_TRUE(job.run.completed);
    EXPECT_GT(job.final_particles.size(), 0u);
    EXPECT_GT(job.final_scale_factor, 0.0);
    EXPECT_GT(job.completion_seconds, 0.0);
  }
  // Report is ordered by submission id and the aggregate folds all jobs.
  EXPECT_TRUE(std::is_sorted(
      report.jobs.begin(), report.jobs.end(),
      [](const JobResult& a, const JobResult& b) { return a.id < b.id; }));
  EXPECT_TRUE(report.aggregate.completed);
  EXPECT_EQ(report.aggregate.steps_done, static_cast<std::uint64_t>(3 * steps));
  EXPECT_GT(report.wall_seconds, 0.0);
}

TEST(ScenarioService, DrainOnEmptyQueueIsANoOp) {
  ScenarioService farm;
  const auto report = farm.drain();
  EXPECT_TRUE(report.jobs.empty());
  EXPECT_FALSE(report.aggregate.completed);  // nothing ran
  EXPECT_EQ(report.fairness_ratio(), 0.0);
}

// --- scheduling --------------------------------------------------------------

TEST(ScenarioService, RoundRobinInterleavesSlicesInSubmissionOrder) {
  const int jobs = 3, steps = 3;
  ServiceConfig config;
  config.slice_steps = 1;
  std::vector<std::uint64_t> order;
  config.on_slice = [&](const SliceEvent& event) {
    order.push_back(event.job);
  };
  ScenarioService farm(config);
  for (int j = 0; j < jobs; ++j) {
    farm.submit(job_named("box" + std::to_string(j), tiny_config(steps)));
  }
  const auto report = farm.drain();
  ASSERT_TRUE(report.aggregate.completed);

  // Equal-length jobs under round-robin: every round visits 1,2,3.
  const std::vector<std::uint64_t> expected = {1, 2, 3, 1, 2, 3, 1, 2, 3};
  EXPECT_EQ(order, expected);
}

TEST(ScenarioService, DeficitWeightedGivesPriorityMoreStepsPerRound) {
  const int steps = 4;
  ServiceConfig config;
  config.slice_steps = 1;
  config.policy = SchedulePolicy::kDeficitWeighted;
  ScenarioService farm(config);

  auto low = job_named("low", tiny_config(steps));
  low.priority = 1;
  auto high = job_named("high", tiny_config(steps));
  high.priority = 2;
  farm.submit(low);
  farm.submit(high);

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 2u);
  ASSERT_TRUE(report.aggregate.completed);
  // priority 2 runs 2 steps per slice: 4 steps in 2 slices, while the
  // priority-1 job needs a slice per step.
  EXPECT_EQ(report.jobs[0].slices, 4u);
  EXPECT_EQ(report.jobs[1].slices, 2u);
}

// --- cancellation ------------------------------------------------------------

TEST(ScenarioService, CancelsPendingJobBeforeItStarts) {
  ScenarioService farm;
  farm.submit(job_named("keep", tiny_config()));
  const auto doomed = farm.submit(job_named("doomed", tiny_config()));
  EXPECT_TRUE(farm.request_cancel(doomed));
  EXPECT_FALSE(farm.request_cancel(doomed + 100));  // unknown id

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.jobs[1].outcome, JobOutcome::kCancelled);
  EXPECT_EQ(report.jobs[1].run.steps_done, 0u);
  // A cancelled job fails the all-completed aggregate judgment.
  EXPECT_FALSE(report.aggregate.completed);
}

TEST(ScenarioService, CancelsRunningJobBetweenSlices) {
  const int steps = 4;
  ServiceConfig config;
  config.slice_steps = 1;
  ScenarioService* farm_ptr = nullptr;
  config.on_slice = [&](const SliceEvent& event) {
    // Cancel job 1 after its first slice; it must stop at the next
    // round boundary with partial progress.
    if (event.job == 1 && event.slice == 0) {
      EXPECT_TRUE(farm_ptr->request_cancel(event.job));
    }
  };
  ScenarioService farm(config);
  farm_ptr = &farm;
  farm.submit(job_named("victim", tiny_config(steps)));
  farm.submit(job_named("bystander", tiny_config(steps)));

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kCancelled);
  EXPECT_GT(report.jobs[0].run.steps_done, 0u);
  EXPECT_LT(report.jobs[0].run.steps_done, static_cast<std::uint64_t>(steps));
  EXPECT_EQ(report.jobs[1].outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.jobs[1].run.steps_done, static_cast<std::uint64_t>(steps));
}

// --- determinism -------------------------------------------------------------

TEST(ScenarioService, InterleavedSlicedJobsMatchStandaloneBitwise) {
  // The farm's safety property: two jobs interleaved slice by slice
  // through one shared context finish bitwise identical to their
  // standalone monolithic runs on private contexts.
  const int steps = 3;
  std::vector<Particles> reference;
  for (int j = 0; j < 2; ++j) {
    SimConfig config = tiny_config(steps);
    config.seed = 7000 + static_cast<std::uint64_t>(j);
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      SimContext ctx(1);
      Simulation sim(ctx, comm, config);
      sim.initialize();
      ASSERT_TRUE(sim.run().completed);
      reference.push_back(sim.particles());
    });
  }

  ServiceConfig config;
  config.slice_steps = 1;
  ScenarioService farm(config);
  for (int j = 0; j < 2; ++j) {
    farm.submit(job_named("box" + std::to_string(j), tiny_config(steps),
                          "seed = " + std::to_string(7000 + j)));
  }
  const auto report = farm.drain();
  ASSERT_TRUE(report.aggregate.completed);
  ASSERT_EQ(report.jobs.size(), reference.size());
  for (std::size_t j = 0; j < reference.size(); ++j) {
    expect_bitwise_equal(report.jobs[j].final_particles, reference[j]);
  }
}

TEST(ScenarioService, SweepJobsShareThePrimedRealization) {
  // A softening sweep keys every job to the same cached initial state:
  // one miss, jobs-1 hits.
  ScenarioService farm;
  for (int j = 0; j < 3; ++j) {
    farm.submit(job_named("soft" + std::to_string(j), tiny_config(),
                          "softening = 0.0" + std::to_string(5 + j)));
  }
  const auto report = farm.drain();
  ASSERT_TRUE(report.aggregate.completed);
  EXPECT_EQ(report.assets.initial_state_misses, 1u);
  EXPECT_EQ(report.assets.initial_state_hits, 2u);
}

// --- faults and checkpoints --------------------------------------------------

TEST(ScenarioService, FaultInjectionRequiresAWorkdir) {
  const ScriptedFault fault({0});
  ScenarioService farm;
  auto job = job_named("doomed", tiny_config());
  job.fault = &fault;
  farm.submit(job);

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kFailed);
  EXPECT_NE(report.jobs[0].error.find("workdir"), std::string::npos);
  EXPECT_FALSE(report.aggregate.completed);
}

TEST(ScenarioService, RecoversInjectedFaultFromPerJobCheckpoints) {
  // With a workdir the service wires a MultiTierWriter per job, so an
  // interrupted slice restores from the job's own checkpoint chain and
  // the job still completes every step.
  TempDir dir;
  const ScriptedFault fault({2});
  ServiceConfig config;
  config.workdir = dir.str();
  config.slice_steps = 1;
  ScenarioService farm(config);

  auto faulty = job_named("faulty", tiny_config(/*steps=*/3));
  faulty.fault = &fault;
  farm.submit(faulty);
  farm.submit(job_named("clean", tiny_config(/*steps=*/3)));

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.jobs[0].run.steps_done, 3u);
  EXPECT_GE(report.jobs[0].run.interruptions, 1u);
  EXPECT_GE(report.jobs[0].run.recovery_attempts, 1u);
  EXPECT_EQ(report.jobs[1].outcome, JobOutcome::kCompleted);
  EXPECT_EQ(report.jobs[1].run.interruptions, 0u);
  EXPECT_TRUE(report.aggregate.completed);
  // The aggregate folds the interruption accounting (RunResult::merge).
  EXPECT_GE(report.aggregate.interruptions, 1u);
  // Per-job checkpoint tiers landed under the workdir.
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / "job1" / "pfs"));
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / "job2" / "local"));
}

TEST(ScenarioService, RejectedOverlayFailsTheJobNotTheFarm) {
  ScenarioService farm;
  farm.submit(job_named("bad", tiny_config(), "ckpt_chunk_bytes = 12"));
  farm.submit(job_named("good", tiny_config()));

  const auto report = farm.drain();
  ASSERT_EQ(report.jobs.size(), 2u);
  EXPECT_EQ(report.jobs[0].outcome, JobOutcome::kFailed);
  EXPECT_FALSE(report.jobs[0].error.empty());
  EXPECT_EQ(report.jobs[1].outcome, JobOutcome::kCompleted);
}

// --- service_* parameters ----------------------------------------------------

TEST(ServiceParams, ApplyRoundTripsEveryServiceKey) {
  const auto params = ParamFile::parse(
      "service_threads = 0\n"
      "service_slice_steps = 3\n"
      "service_policy = deficit\n"
      "service_checkpoint_window = 4\n"
      "service_workdir = /tmp/farm\n"
      "np = 32\n");  // a SimConfig key: not the service overload's business
  ASSERT_TRUE(params.has_value());

  ServiceConfig config;
  const auto unknown = params->apply(config);
  EXPECT_TRUE(unknown.empty());
  EXPECT_EQ(config.threads, 0);
  EXPECT_EQ(config.slice_steps, 3);
  EXPECT_EQ(config.policy, SchedulePolicy::kDeficitWeighted);
  EXPECT_EQ(config.checkpoint_window, 4);
  EXPECT_EQ(config.workdir, "/tmp/farm");
}

TEST(ServiceParams, SimConfigApplySkipsServiceKeysSilently) {
  const auto params = ParamFile::parse(
      "service_slice_steps = 3\n"
      "np = 32\n");
  ASSERT_TRUE(params.has_value());
  SimConfig config;
  const auto unknown = params->apply(config);
  EXPECT_TRUE(unknown.empty());  // service_* is not "unknown", just not ours
  EXPECT_EQ(config.np, 32u);
}

TEST(ServiceParams, BadServiceValuesAreRejected) {
  const auto params = ParamFile::parse(
      "service_slice_steps = 0\n"
      "service_policy = fifo\n");
  ASSERT_TRUE(params.has_value());
  ServiceConfig config;
  const auto unknown = params->apply(config);
  EXPECT_EQ(unknown.size(), 2u);
  EXPECT_EQ(config.slice_steps, 1);  // defaults untouched
  EXPECT_EQ(config.policy, SchedulePolicy::kRoundRobin);
}

TEST(ServiceParams, UnknownKeyWarnsExactlyOncePerProcessUnderConcurrency) {
  // The warn-once registry is keyed per process: hammering the same
  // unknown key from many threads must add exactly one warned entry.
  const std::string text =
      "service_warnonce_probe_" + std::to_string(::getpid()) + " = 1\n";
  const auto params = ParamFile::parse(text);
  ASSERT_TRUE(params.has_value());

  const std::size_t before = ParamFile::unknown_keys_warned();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&params] {
      for (int i = 0; i < 50; ++i) {
        ServiceConfig config;
        (void)params->apply(config);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ParamFile::unknown_keys_warned(), before + 1);
}

}  // namespace
}  // namespace crkhacc::core
