// Tests for the in situ analysis toolbox: union-find, FOF, DBSCAN, halo
// catalogs, power spectra, slices.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <numbers>
#include <set>

#include "analysis/dbscan.h"
#include "analysis/fof.h"
#include "analysis/galaxies.h"
#include "analysis/halos.h"
#include "analysis/power_spectrum.h"
#include "analysis/slices.h"
#include "analysis/so_masses.h"
#include "analysis/union_find.h"
#include "comm/world.h"
#include "core/particles.h"
#include "util/rng.h"

namespace crkhacc::analysis {
namespace {

// --- union-find -----------------------------------------------------------

TEST(UnionFind, BasicConnectivity) {
  UnionFind dsu(6);
  EXPECT_FALSE(dsu.connected(0, 1));
  dsu.unite(0, 1);
  dsu.unite(2, 3);
  EXPECT_TRUE(dsu.connected(0, 1));
  EXPECT_FALSE(dsu.connected(1, 2));
  dsu.unite(1, 2);
  EXPECT_TRUE(dsu.connected(0, 3));
  EXPECT_EQ(dsu.component_size(0), 4u);
  EXPECT_EQ(dsu.component_size(4), 1u);
}

TEST(UnionFind, IdempotentUnions) {
  UnionFind dsu(4);
  dsu.unite(0, 1);
  dsu.unite(1, 0);
  dsu.unite(0, 1);
  EXPECT_EQ(dsu.component_size(0), 2u);
}

// --- FOF ---------------------------------------------------------------------

/// Two tight blobs plus isolated noise points.
struct TwoBlobs {
  std::vector<float> x, y, z;

  TwoBlobs(std::size_t per_blob, float spread, std::uint64_t seed) {
    SplitMix64 rng(seed);
    auto blob = [&](float cx, float cy, float cz) {
      for (std::size_t i = 0; i < per_blob; ++i) {
        x.push_back(cx + spread * static_cast<float>(rng.next_gaussian()));
        y.push_back(cy + spread * static_cast<float>(rng.next_gaussian()));
        z.push_back(cz + spread * static_cast<float>(rng.next_gaussian()));
      }
    };
    blob(2.0f, 2.0f, 2.0f);
    blob(8.0f, 8.0f, 8.0f);
    // Isolated outliers.
    x.push_back(5.0f); y.push_back(0.5f); z.push_back(9.5f);
    x.push_back(0.5f); y.push_back(9.5f); z.push_back(5.0f);
  }
};

TEST(Fof, FindsTwoDistinctGroups) {
  const TwoBlobs blobs(50, 0.15f, 1);
  const auto result = fof(blobs.x, blobs.y, blobs.z, 0.5f, 8);
  EXPECT_EQ(result.num_groups(), 2u);
  EXPECT_EQ(result.groups[0].size(), 50u);
  EXPECT_EQ(result.groups[1].size(), 50u);
  // Outliers ungrouped.
  EXPECT_EQ(result.group_of[100], FofResult::kUngrouped);
  EXPECT_EQ(result.group_of[101], FofResult::kUngrouped);
  // Members of the same blob share a group id.
  const auto g0 = result.group_of[0];
  for (std::size_t i = 1; i < 50; ++i) EXPECT_EQ(result.group_of[i], g0);
}

TEST(Fof, MinMembersFiltersSmallGroups) {
  const TwoBlobs blobs(5, 0.1f, 2);
  const auto big_only = fof(blobs.x, blobs.y, blobs.z, 0.5f, 10);
  EXPECT_EQ(big_only.num_groups(), 0u);
  const auto all = fof(blobs.x, blobs.y, blobs.z, 0.5f, 2);
  EXPECT_EQ(all.num_groups(), 2u);
}

TEST(Fof, MatchesBruteForceComponents) {
  // Random points; compare against naive union-find over all pairs.
  SplitMix64 rng(3);
  const std::size_t n = 200;
  std::vector<float> x(n), y(n), z(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.next_double() * 5.0);
    y[i] = static_cast<float>(rng.next_double() * 5.0);
    z[i] = static_cast<float>(rng.next_double() * 5.0);
  }
  const float ll = 0.4f;
  const auto result = fof(x, y, z, ll, 1);

  UnionFind reference(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const float dx = x[i] - x[j], dy = y[i] - y[j], dz = z[i] - z[j];
      if (dx * dx + dy * dy + dz * dz <= ll * ll) {
        reference.unite(static_cast<std::uint32_t>(i),
                        static_cast<std::uint32_t>(j));
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const bool same_fof = result.group_of[i] == result.group_of[j] &&
                            result.group_of[i] != FofResult::kUngrouped;
      const bool same_ref =
          reference.connected(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(j));
      // min_members=1 means every particle is grouped.
      EXPECT_EQ(same_fof, same_ref) << i << "," << j;
    }
  }
}

TEST(Fof, GroupsSortedBySizeDescending) {
  TwoBlobs blobs(30, 0.1f, 4);
  // Add a third, bigger blob.
  SplitMix64 rng(5);
  for (int i = 0; i < 80; ++i) {
    blobs.x.push_back(5.0f + 0.1f * static_cast<float>(rng.next_gaussian()));
    blobs.y.push_back(5.0f + 0.1f * static_cast<float>(rng.next_gaussian()));
    blobs.z.push_back(5.0f + 0.1f * static_cast<float>(rng.next_gaussian()));
  }
  const auto result = fof(blobs.x, blobs.y, blobs.z, 0.5f, 8);
  ASSERT_EQ(result.num_groups(), 3u);
  EXPECT_GE(result.groups[0].size(), result.groups[1].size());
  EXPECT_GE(result.groups[1].size(), result.groups[2].size());
  EXPECT_EQ(result.groups[0].size(), 80u);
}

TEST(Fof, LinkingLengthConvention) {
  EXPECT_NEAR(fof_linking_length(100.0, 1000000, 0.2), 0.2, 1e-12);
  EXPECT_NEAR(fof_linking_length(64.0, 32 * 32 * 32, 0.168), 0.336, 1e-9);
}

// --- DBSCAN ---------------------------------------------------------------------

TEST(Dbscan, SeparatesClustersAndNoise) {
  const TwoBlobs blobs(40, 0.1f, 6);
  const auto result = dbscan(blobs.x, blobs.y, blobs.z, 0.5f, 5);
  EXPECT_EQ(result.num_clusters, 2u);
  EXPECT_EQ(result.cluster_of[80], DbscanResult::kNoise);
  EXPECT_EQ(result.cluster_of[81], DbscanResult::kNoise);
  // Blob members share cluster ids.
  for (std::size_t i = 1; i < 40; ++i) {
    EXPECT_EQ(result.cluster_of[i], result.cluster_of[0]);
  }
  EXPECT_NE(result.cluster_of[0], result.cluster_of[45]);
}

TEST(Dbscan, CorePointsHaveDenseNeighborhoods) {
  const TwoBlobs blobs(40, 0.1f, 7);
  const auto result = dbscan(blobs.x, blobs.y, blobs.z, 0.5f, 5);
  // Isolated points are never cores; blob interiors are.
  EXPECT_FALSE(result.is_core[80]);
  std::size_t cores = 0;
  for (std::size_t i = 0; i < 40; ++i) cores += result.is_core[i];
  EXPECT_GT(cores, 30u);
}

TEST(Dbscan, MinPtsControlsStrictness) {
  const TwoBlobs blobs(10, 0.3f, 8);
  const auto strict = dbscan(blobs.x, blobs.y, blobs.z, 0.2f, 50);
  EXPECT_EQ(strict.num_clusters, 0u);
  for (auto c : strict.cluster_of) EXPECT_EQ(c, DbscanResult::kNoise);
}

TEST(Dbscan, EmptyInput) {
  std::vector<float> none;
  const auto result = dbscan(none, none, none, 1.0f, 3);
  EXPECT_EQ(result.num_clusters, 0u);
}

// --- halo catalog ------------------------------------------------------------------

TEST(HaloCatalog, ReducesGroupProperties) {
  Particles p;
  // A 4-particle "halo": 3 dm + 1 gas.
  p.push_back(10, Species::kDarkMatter, 1.0f, 1.0f, 1.0f, 10, 0, 0, 2.0f);
  p.push_back(11, Species::kDarkMatter, 1.2f, 1.0f, 1.0f, 20, 0, 0, 2.0f);
  p.push_back(12, Species::kDarkMatter, 1.0f, 1.2f, 1.0f, 30, 0, 0, 2.0f);
  p.push_back(13, Species::kGas, 1.0f, 1.0f, 1.2f, 40, 0, 0, 1.0f);
  FofResult groups;
  groups.group_of = {0, 0, 0, 0};
  groups.groups = {{0, 1, 2, 3}};
  const auto catalog = halo_catalog(p, groups, nullptr);
  ASSERT_EQ(catalog.size(), 1u);
  const auto& halo = catalog[0];
  EXPECT_EQ(halo.tag, 10u);
  EXPECT_EQ(halo.count, 4u);
  EXPECT_DOUBLE_EQ(halo.mass, 7.0);
  EXPECT_DOUBLE_EQ(halo.gas_mass, 1.0);
  EXPECT_DOUBLE_EQ(halo.star_mass, 0.0);
  // Mass-weighted center.
  EXPECT_NEAR(halo.center[0], (2 * 1.0 + 2 * 1.2 + 2 * 1.0 + 1.0) / 7.0, 1e-5);
  EXPECT_NEAR(halo.velocity[0], (2 * 10 + 2 * 20 + 2 * 30 + 40) / 7.0, 1e-4);
  EXPECT_GT(halo.radius, 0.0);
}

TEST(HaloCatalog, OwnedBoxDeduplicates) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 1.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 9.0f, 9.0f, 9.0f, 0, 0, 0, 1.0f);
  FofResult groups;
  groups.group_of = {0, 1};
  groups.groups = {{0}, {1}};
  comm::Box3 owned;
  owned.lo = {0, 0, 0};
  owned.hi = {5, 5, 5};
  const auto catalog = halo_catalog(p, groups, &owned);
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_EQ(catalog[0].tag, 0u);
}

TEST(HaloCatalog, SortedByMassDescending) {
  Particles p;
  for (int i = 0; i < 3; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                static_cast<float>(i), 0, 0, 0, 0, 0,
                static_cast<float>(1 + i));
  }
  FofResult groups;
  groups.group_of = {0, 1, 2};
  groups.groups = {{0}, {1}, {2}};
  const auto catalog = halo_catalog(p, groups, nullptr);
  ASSERT_EQ(catalog.size(), 3u);
  EXPECT_GE(catalog[0].mass, catalog[1].mass);
  EXPECT_GE(catalog[1].mass, catalog[2].mass);
}

TEST(MassFunction, BinsLogarithmically) {
  std::vector<Halo> halos(3);
  halos[0].mass = 10.0;
  halos[1].mass = 100.0;
  halos[2].mass = 105.0;
  const auto counts = mass_function(halos, 1.0, 1000.0, 3);
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);   // 10 in [10, 100)
  EXPECT_EQ(counts[2], 2u);   // 100, 105 in [100, 1000)
}

// --- spherical overdensity masses ------------------------------------------------

TEST(SoMasses, RecoversUniformSphereMass) {
  // A dense uniform ball in a sparse background: M_Delta should capture
  // the ball out to where its enclosed density dilutes to the threshold.
  SplitMix64 rng(21);
  Particles p;
  std::uint64_t id = 0;
  const double ball_radius = 1.0;
  const int ball_particles = 4000;
  for (int i = 0; i < ball_particles; ++i) {
    // Uniform in the sphere via rejection.
    double x, y, z;
    do {
      x = 2.0 * rng.next_double() - 1.0;
      y = 2.0 * rng.next_double() - 1.0;
      z = 2.0 * rng.next_double() - 1.0;
    } while (x * x + y * y + z * z > 1.0);
    p.push_back(id++, Species::kDarkMatter,
                static_cast<float>(5.0 + ball_radius * x),
                static_cast<float>(5.0 + ball_radius * y),
                static_cast<float>(5.0 + ball_radius * z), 0, 0, 0, 1.0f);
  }
  // Ball density = 4000 / (4/3 pi) ~ 955. Threshold 200 * rho_ref with
  // rho_ref = 1: crossing lies just outside the ball edge.
  std::vector<Halo> seeds(1);
  seeds[0].tag = 7;
  seeds[0].center = {5.0, 5.0, 5.0};
  SoConfig config;
  config.delta = 200.0;
  config.reference_density = 1.0;
  config.r_max = 3.0;
  const auto catalog = so_masses(p, seeds, config);
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_TRUE(catalog[0].converged);
  EXPECT_EQ(catalog[0].tag, 7u);
  // All ball mass enclosed. The profile is only sampled at particle
  // radii, and the outermost particle (r ~ R_ball) still sits above the
  // 200x threshold (ball density ~955), so R_Delta lands on the edge.
  EXPECT_NEAR(catalog[0].m_delta, ball_particles, 1.0);
  EXPECT_NEAR(catalog[0].r_delta, 1.0, 0.05);
  // Enclosed density at R_Delta really is above the threshold.
  const double volume =
      4.0 / 3.0 * std::numbers::pi * std::pow(catalog[0].r_delta, 3.0);
  EXPECT_GE(catalog[0].m_delta / volume, 200.0);
}

TEST(SoMasses, UnconvergedForDiffuseSeed) {
  SplitMix64 rng(22);
  Particles p;
  for (int i = 0; i < 200; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                static_cast<float>(10.0 * rng.next_double()),
                static_cast<float>(10.0 * rng.next_double()),
                static_cast<float>(10.0 * rng.next_double()), 0, 0, 0, 1.0f);
  }
  std::vector<Halo> seeds(1);
  seeds[0].center = {5.0, 5.0, 5.0};
  SoConfig config;
  config.delta = 200.0;
  config.reference_density = 0.2;  // mean density: 200x never reached
  config.r_max = 2.0;
  const auto catalog = so_masses(p, seeds, config);
  ASSERT_EQ(catalog.size(), 1u);
  EXPECT_FALSE(catalog[0].converged);
}

// --- galaxies --------------------------------------------------------------------

TEST(Galaxies, FindsStarClumpsIgnoringOtherSpecies) {
  SplitMix64 rng(23);
  Particles p;
  std::uint64_t id = 0;
  // Two star clumps.
  auto clump = [&](double cx, int count, float mass) {
    for (int i = 0; i < count; ++i) {
      const auto idx = p.push_back(
          id++, Species::kStar,
          static_cast<float>(cx + 0.05 * rng.next_gaussian()),
          static_cast<float>(5.0 + 0.05 * rng.next_gaussian()),
          static_cast<float>(5.0 + 0.05 * rng.next_gaussian()), 100.0f, 0, 0,
          mass);
      (void)idx;
    }
  };
  clump(2.0, 30, 1.0f);
  clump(8.0, 10, 2.0f);
  // Dense dark matter nearby must not register as a galaxy.
  for (int i = 0; i < 50; ++i) {
    p.push_back(id++, Species::kDarkMatter,
                static_cast<float>(5.0 + 0.05 * rng.next_gaussian()), 5.0f,
                5.0f, 0, 0, 0, 1.0f);
  }
  GalaxyFinderConfig config;
  config.linking_length = 0.3f;
  config.min_stars = 4;
  const auto galaxies = find_galaxies(p, config);
  ASSERT_EQ(galaxies.size(), 2u);
  // Brightest first: clump 2 has mass 20, clump 1 mass 30.
  EXPECT_EQ(galaxies[0].star_count, 30u);
  EXPECT_NEAR(galaxies[0].stellar_mass, 30.0, 1e-6);
  EXPECT_NEAR(galaxies[0].center[0], 2.0, 0.1);
  EXPECT_NEAR(galaxies[0].velocity[0], 100.0, 1e-3);
  EXPECT_EQ(galaxies[1].star_count, 10u);
  EXPECT_NEAR(galaxies[1].stellar_mass, 20.0, 1e-6);
}

TEST(Galaxies, EmptyWithoutStars) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 1, 1, 1, 0, 0, 0, 1.0f);
  EXPECT_TRUE(find_galaxies(p, GalaxyFinderConfig{}).empty());
}

TEST(Galaxies, GhostStarsExcluded) {
  SplitMix64 rng(24);
  Particles p;
  for (int i = 0; i < 10; ++i) {
    const auto idx = p.push_back(
        static_cast<std::uint64_t>(i), Species::kStar,
        static_cast<float>(3.0 + 0.02 * rng.next_gaussian()), 3.0f, 3.0f, 0,
        0, 0, 1.0f);
    p.ghost[idx] = 1;  // all replicas: owner rank counts them, not us
  }
  EXPECT_TRUE(find_galaxies(p, GalaxyFinderConfig{}).empty());
}

// --- power spectrum --------------------------------------------------------------

TEST(PowerSpectrum, PlaneWavePeaksAtItsMode) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const double box = 32.0;
    const comm::CartDecomposition decomp(comm.size(), box);
    mesh::PMSolver pm(comm, decomp, mesh::PMConfig{32, box, 1.5});
    // Particles number-modulated along x with mode m=4.
    const int mode = 4;
    Particles p;
    SplitMix64 rng(11);
    for (int i = 0; i < 60000; ++i) {
      // Rejection-sample density 1 + 0.8 cos(2 pi m x / L).
      double x;
      while (true) {
        x = rng.next_double() * box;
        const double density =
            1.0 + 0.8 * std::cos(2.0 * std::numbers::pi * mode * x / box);
        if (rng.next_double() * 1.8 < density) break;
      }
      const std::array<double, 3> pos{x, rng.next_double() * box,
                                      rng.next_double() * box};
      if (decomp.owner_of(pos) != comm.rank()) continue;
      p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                  static_cast<float>(pos[0]), static_cast<float>(pos[1]),
                  static_cast<float>(pos[2]), 0, 0, 0, 1.0f);
    }
    const auto result = measure_power(comm, pm, p, true);
    // The shell containing k = 2 pi m / L must dominate.
    const double k_target = 2.0 * std::numbers::pi * mode / box;
    std::size_t peak = 0;
    for (std::size_t s = 1; s < result.power.size(); ++s) {
      if (result.power[s] > result.power[peak]) peak = s;
    }
    EXPECT_NEAR(result.k[peak], k_target, 0.15 * k_target);
  });
}

TEST(PowerSpectrum, ShotNoiseSubtractionZeroesRandomField) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const double box = 16.0;
    const comm::CartDecomposition decomp(1, box);
    mesh::PMSolver pm(comm, decomp, mesh::PMConfig{16, box, 1.5});
    SplitMix64 rng(13);
    Particles p;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                  static_cast<float>(rng.next_double() * box),
                  static_cast<float>(rng.next_double() * box),
                  static_cast<float>(rng.next_double() * box), 0, 0, 0, 1.0f);
    }
    const auto with = measure_power(comm, pm, p, true);
    const auto without = measure_power(comm, pm, p, false);
    const double shot = box * box * box / n;
    // Raw power of a Poisson field ~ shot noise; subtracted ~ 0.
    double raw_mean = 0.0, sub_mean = 0.0;
    for (std::size_t s = 0; s < with.power.size(); ++s) {
      raw_mean += without.power[s];
      sub_mean += with.power[s];
    }
    raw_mean /= static_cast<double>(without.power.size());
    sub_mean /= static_cast<double>(with.power.size());
    EXPECT_NEAR(raw_mean, shot, 0.35 * shot);
    EXPECT_LT(sub_mean, 0.35 * shot);
  });
}

// --- slices ------------------------------------------------------------------------

TEST(Slices, UniformFieldHasUnitClumping) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const double box = 16.0;
    const comm::CartDecomposition decomp(comm.size(), box);
    Particles p;
    // Dense uniform lattice in the slab.
    for (int ix = 0; ix < 32; ++ix) {
      for (int iy = 0; iy < 32; ++iy) {
        const std::array<double, 3> pos{(ix + 0.5) * 0.5, (iy + 0.5) * 0.5, 1.0};
        if (decomp.owner_of(pos) != comm.rank()) continue;
        const auto idx = p.push_back(
            static_cast<std::uint64_t>(ix * 32 + iy), Species::kGas,
            static_cast<float>(pos[0]), static_cast<float>(pos[1]),
            static_cast<float>(pos[2]), 0, 0, 0, 1.0f);
        p.u[idx] = 100.0f;
      }
    }
    SliceConfig config;
    config.z_lo = 0.0;
    config.z_hi = 2.0;
    config.resolution = 16;
    config.box = box;
    const auto slice = density_temperature_slice(comm, p, config);
    EXPECT_NEAR(slice.clumping, 1.0, 1e-6);
    EXPECT_NEAR(slice.density_variance, 0.0, 1e-6);
    EXPECT_GT(slice.t_median_K, 0.0);
  });
}

TEST(Slices, ClusteredFieldHasHighClumping) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    Particles p;
    // Everything in one corner cell.
    for (int i = 0; i < 100; ++i) {
      p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter, 0.1f,
                  0.1f, 0.5f, 0, 0, 0, 1.0f);
    }
    SliceConfig config;
    config.z_lo = 0.0;
    config.z_hi = 1.0;
    config.resolution = 8;
    config.box = 16.0;
    const auto slice = density_temperature_slice(comm, p, config);
    EXPECT_NEAR(slice.clumping, 64.0, 1e-6);  // all mass in 1 of 64 cells
  });
}

TEST(Slices, AsciiRenderProducesGrid) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    Particles p;
    for (int i = 0; i < 50; ++i) {
      p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                  static_cast<float>(0.2 * i), 5.0f, 0.5f, 0, 0, 0, 1.0f);
    }
    SliceConfig config;
    config.z_hi = 1.0;
    config.resolution = 16;
    config.box = 16.0;
    const auto slice = density_temperature_slice(comm, p, config);
    const auto text = render_density_ascii(slice, 16);
    EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 16);
  });
}

}  // namespace
}  // namespace crkhacc::analysis
