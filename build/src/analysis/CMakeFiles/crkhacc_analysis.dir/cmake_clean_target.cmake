file(REMOVE_RECURSE
  "libcrkhacc_analysis.a"
)
