// DBSCAN density-based clustering (Ester et al. 1996).
//
// Part of the in situ analysis toolbox alongside FOF (Section IV-B3).
// Core points have at least `min_pts` neighbors (self included) within
// eps; clusters are connected components of core points, with border
// points attached to a neighboring core's cluster; everything else is
// noise. Neighborhoods come from the ArborX-analog BVH.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crkhacc::analysis {

struct DbscanResult {
  static constexpr std::int32_t kNoise = -1;
  /// Cluster id per point (kNoise for noise points).
  std::vector<std::int32_t> cluster_of;
  std::vector<std::uint8_t> is_core;
  std::size_t num_clusters = 0;
};

DbscanResult dbscan(std::span<const float> x, std::span<const float> y,
                    std::span<const float> z, float eps, std::size_t min_pts);

}  // namespace crkhacc::analysis
