// Assertion macros for invariant checking.
//
// CHECK(cond) is always on (release included): invariants that guard
// memory safety or data integrity. HACC_ASSERT(cond) compiles out in
// NDEBUG builds: hot-path sanity checks.
//
// CHECK_FINITE / CHECK_BOUNDS are the recoverable family: they throw
// InvariantError (with the offending value and a caller-supplied
// context string in the message) instead of aborting. Data-dependent
// invariants — a corrupted particle field, a drifted conserved sum —
// are survivable via rollback-replay (core/sdc.h), so the audit pass
// uses these and catches the exception; aborting is reserved for
// program bugs.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace crkhacc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

/// A recoverable data invariant violation (see CHECK_FINITE / CHECK_BOUNDS).
class InvariantError : public std::runtime_error {
 public:
  explicit InvariantError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_not_finite(const char* expr, double value,
                                          const char* context,
                                          const char* file, int line) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "CHECK_FINITE failed: %s = %.9g (%s) at %s:%d", expr, value,
                context, file, line);
  throw InvariantError(buf);
}

[[noreturn]] inline void throw_out_of_bounds(const char* expr, double value,
                                             double lo, double hi,
                                             const char* context,
                                             const char* file, int line) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "CHECK_BOUNDS failed: %s = %.9g outside [%.9g, %.9g] (%s) "
                "at %s:%d",
                expr, value, lo, hi, context, file, line);
  throw InvariantError(buf);
}

}  // namespace detail
}  // namespace crkhacc

#define CHECK(cond)                                        \
  do {                                                     \
    if (!(cond)) ::crkhacc::check_failed(#cond, __FILE__, __LINE__); \
  } while (0)

#define CHECK_MSG(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   msg, __FILE__, __LINE__);                             \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

// Throws ::crkhacc::InvariantError if `value` is NaN or infinite.
// `context` names what was being checked (field, particle index, ...).
#define CHECK_FINITE(value, context)                                        \
  do {                                                                      \
    const double check_finite_v_ = static_cast<double>(value);              \
    if (!std::isfinite(check_finite_v_)) {                                  \
      ::crkhacc::detail::throw_not_finite(#value, check_finite_v_,          \
                                          (context), __FILE__, __LINE__);   \
    }                                                                       \
  } while (0)

// Throws ::crkhacc::InvariantError unless lo <= value <= hi. NaN fails
// the comparison and therefore throws too.
#define CHECK_BOUNDS(value, lo, hi, context)                                  \
  do {                                                                        \
    const double check_bounds_v_ = static_cast<double>(value);                \
    const double check_bounds_lo_ = static_cast<double>(lo);                  \
    const double check_bounds_hi_ = static_cast<double>(hi);                  \
    if (!(check_bounds_v_ >= check_bounds_lo_ &&                              \
          check_bounds_v_ <= check_bounds_hi_)) {                             \
      ::crkhacc::detail::throw_out_of_bounds(                                 \
          #value, check_bounds_v_, check_bounds_lo_, check_bounds_hi_,        \
          (context), __FILE__, __LINE__);                                     \
    }                                                                         \
  } while (0)

#ifdef NDEBUG
#define HACC_ASSERT(cond) ((void)0)
#else
#define HACC_ASSERT(cond) CHECK(cond)
#endif
