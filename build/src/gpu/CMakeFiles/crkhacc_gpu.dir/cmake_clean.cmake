file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_gpu.dir/device.cpp.o"
  "CMakeFiles/crkhacc_gpu.dir/device.cpp.o.d"
  "libcrkhacc_gpu.a"
  "libcrkhacc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
