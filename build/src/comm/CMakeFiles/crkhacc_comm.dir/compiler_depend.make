# Empty compiler generated dependencies file for crkhacc_comm.
# This may be replaced when dependencies are built.
