#include "tree/chaining_mesh.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assertions.h"
#include "util/trace.h"

namespace crkhacc::tree {

ChainingMesh::ChainingMesh(const comm::Box3& domain,
                           const ChainingMeshConfig& config)
    : domain_(domain), config_(config) {
  CHECK(config.bin_width > 0.0);
  CHECK(config.leaf_size >= 4);
  for (int d = 0; d < 3; ++d) {
    const double extent = domain.hi[d] - domain.lo[d];
    CHECK(extent > 0.0);
    dims_[d] = std::max(1, static_cast<int>(extent / config.bin_width));
    width_[d] = extent / dims_[d];
  }
}

std::size_t ChainingMesh::bin_of_position(float x, float y, float z) const {
  const double p[3] = {static_cast<double>(x), static_cast<double>(y),
                       static_cast<double>(z)};
  int c[3];
  for (int d = 0; d < 3; ++d) {
    // Particles may drift slightly outside the overloaded box between the
    // build and refresh; clamp them into the edge bins. The clamp happens
    // in floating point BEFORE the int cast: a NaN or wildly out-of-range
    // coordinate (e.g. a flipped exponent bit the SDC audit hasn't caught
    // yet) must land in a valid edge bin, not invoke float->int UB.
    double cell = (p[d] - domain_.lo[d]) / width_[d];
    if (!(cell > 0.0)) cell = 0.0;  // negatives and NaN both land here
    const double top = static_cast<double>(dims_[d] - 1);
    if (cell > top) cell = top;
    c[d] = static_cast<int>(cell);
  }
  return (static_cast<std::size_t>(c[2]) * dims_[1] + c[1]) * dims_[0] + c[0];
}

void ChainingMesh::build(const Particles& particles, util::ThreadPool* pool) {
  std::vector<std::uint32_t> all(particles.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    all[i] = static_cast<std::uint32_t>(i);
  }
  build(particles, all, pool);
}

void ChainingMesh::build(const Particles& particles,
                         std::span<const std::uint32_t> subset,
                         util::ThreadPool* pool) {
  HACC_TRACE_SPAN("cm_build");
  const std::size_t n = subset.size();
  const std::size_t nbins = static_cast<std::size_t>(dims_[0]) * dims_[1] * dims_[2];

  // Counting sort of the subset into bins. Bin indices are pure per-slot
  // functions of position, so the fill parallelizes over disjoint slots;
  // the count/scatter passes stay serial to preserve stable bin order.
  std::vector<std::uint32_t> bin_count(nbins, 0);
  std::vector<std::uint32_t> bin_index(n);
  auto index_range = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t s = lo; s < hi; ++s) {
      const std::uint32_t i = subset[s];
      bin_index[s] = static_cast<std::uint32_t>(
          bin_of_position(particles.x[i], particles.y[i], particles.z[i]));
    }
  };
  if (pool && pool->num_threads() > 1) {
    pool->parallel_for(0, n, 2048,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         index_range(lo, hi);
                       });
  } else {
    index_range(0, n);
  }
  for (std::size_t s = 0; s < n; ++s) ++bin_count[bin_index[s]];
  std::vector<std::uint32_t> bin_begin(nbins + 1, 0);
  for (std::size_t b = 0; b < nbins; ++b) {
    bin_begin[b + 1] = bin_begin[b] + bin_count[b];
  }
  perm_.assign(n, 0);
  {
    std::vector<std::uint32_t> cursor(bin_begin.begin(), bin_begin.end() - 1);
    for (std::size_t s = 0; s < n; ++s) {
      perm_[cursor[bin_index[s]]++] = subset[s];
    }
  }

  // Per-bin k-d subdivision into coarse leaves. Bins own disjoint perm_
  // ranges, so subdivisions run concurrently into per-bin leaf lists and
  // are stitched in bin order — identical output for any thread count.
  std::vector<std::vector<Leaf>> bin_leaves(nbins);
  auto split_bins = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t b = lo; b < hi; ++b) {
      if (bin_count[b] > 0) {
        split_leaf(particles, bin_begin[b], bin_begin[b + 1], bin_leaves[b]);
      }
    }
  };
  if (pool && pool->num_threads() > 1) {
    pool->parallel_for(0, nbins, 1,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         split_bins(lo, hi);
                       });
  } else {
    split_bins(0, nbins);
  }

  leaves_.clear();
  leaf_bin_.clear();
  bin_leaf_begin_.assign(nbins + 1, 0);
  for (std::size_t b = 0; b < nbins; ++b) {
    bin_leaf_begin_[b] = static_cast<std::uint32_t>(leaves_.size());
    leaves_.insert(leaves_.end(), bin_leaves[b].begin(), bin_leaves[b].end());
    for (std::size_t l = 0; l < bin_leaves[b].size(); ++l) {
      leaf_bin_.push_back(static_cast<std::uint32_t>(b));
    }
  }
  bin_leaf_begin_[nbins] = static_cast<std::uint32_t>(leaves_.size());
  refit_bounds(particles, pool);
}

void ChainingMesh::split_leaf(const Particles& particles, std::uint32_t begin,
                              std::uint32_t end, std::vector<Leaf>& out) {
  if (end - begin <= config_.leaf_size) {
    out.push_back(Leaf{begin, end, {}, {}});
    return;
  }
  // Widest axis of the range's AABB.
  float lo[3], hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = std::numeric_limits<float>::max();
    hi[d] = std::numeric_limits<float>::lowest();
  }
  for (std::uint32_t s = begin; s < end; ++s) {
    const std::uint32_t i = perm_[s];
    const float p[3] = {particles.x[i], particles.y[i], particles.z[i]};
    for (int d = 0; d < 3; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  int axis = 0;
  for (int d = 1; d < 3; ++d) {
    if (hi[d] - lo[d] > hi[axis] - lo[axis]) axis = d;
  }
  const float* coord = (axis == 0)   ? particles.x.data()
                       : (axis == 1) ? particles.y.data()
                                     : particles.z.data();
  const std::uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(perm_.begin() + begin, perm_.begin() + mid,
                   perm_.begin() + end,
                   [coord](std::uint32_t a, std::uint32_t b) {
                     return coord[a] < coord[b];
                   });
  split_leaf(particles, begin, mid, out);
  split_leaf(particles, mid, end, out);
}

void ChainingMesh::fit_leaf(const Particles& particles, Leaf& leaf) const {
  for (int d = 0; d < 3; ++d) {
    leaf.lo[d] = std::numeric_limits<float>::max();
    leaf.hi[d] = std::numeric_limits<float>::lowest();
  }
  for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
    const std::uint32_t i = perm_[s];
    const float p[3] = {particles.x[i], particles.y[i], particles.z[i]};
    for (int d = 0; d < 3; ++d) {
      leaf.lo[d] = std::min(leaf.lo[d], p[d]);
      leaf.hi[d] = std::max(leaf.hi[d], p[d]);
    }
  }
}

void ChainingMesh::refit_bounds(const Particles& particles,
                                util::ThreadPool* pool) {
  HACC_TRACE_SPAN("cm_refit");
  if (pool && pool->num_threads() > 1) {
    pool->parallel_for(0, leaves_.size(), 16,
                       [&](std::size_t lo, std::size_t hi, std::size_t) {
                         for (std::size_t l = lo; l < hi; ++l) {
                           fit_leaf(particles, leaves_[l]);
                         }
                       });
  } else {
    for (auto& leaf : leaves_) fit_leaf(particles, leaf);
  }
}

double ChainingMesh::aabb_distance_sq(const Leaf& a, const Leaf& b) {
  double d2 = 0.0;
  for (int d = 0; d < 3; ++d) {
    const double gap = std::max(
        {0.0, static_cast<double>(a.lo[d]) - b.hi[d],
         static_cast<double>(b.lo[d]) - a.hi[d]});
    d2 += gap * gap;
  }
  return d2;
}

std::vector<std::uint32_t> ChainingMesh::neighbor_leaves(std::size_t l,
                                                         double radius) const {
  const Leaf& me = leaves_[l];
  const std::uint32_t bin = leaf_bin_[l];
  const int bx = static_cast<int>(bin % static_cast<std::uint32_t>(dims_[0]));
  const int by = static_cast<int>((bin / dims_[0]) % static_cast<std::uint32_t>(dims_[1]));
  const int bz = static_cast<int>(bin / (static_cast<std::uint32_t>(dims_[0]) * dims_[1]));
  const double r2 = radius * radius;
  std::vector<std::uint32_t> out;
  for (int dz = -1; dz <= 1; ++dz) {
    const int cz = bz + dz;
    if (cz < 0 || cz >= dims_[2]) continue;
    for (int dy = -1; dy <= 1; ++dy) {
      const int cy = by + dy;
      if (cy < 0 || cy >= dims_[1]) continue;
      for (int dx = -1; dx <= 1; ++dx) {
        const int cx = bx + dx;
        if (cx < 0 || cx >= dims_[0]) continue;
        const std::size_t nb =
            (static_cast<std::size_t>(cz) * dims_[1] + cy) * dims_[0] + cx;
        for (std::uint32_t m = bin_leaf_begin_[nb]; m < bin_leaf_begin_[nb + 1];
             ++m) {
          if (aabb_distance_sq(me, leaves_[m]) <= r2) out.push_back(m);
        }
      }
    }
  }
  return out;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
ChainingMesh::interaction_pairs(double radius) const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (std::size_t l = 0; l < leaves_.size(); ++l) {
    for (std::uint32_t m : neighbor_leaves(l, radius)) {
      if (m >= l) pairs.emplace_back(static_cast<std::uint32_t>(l), m);
    }
  }
  return pairs;
}

std::uint64_t ChainingMesh::bin_particle_count(std::size_t b) const {
  std::uint64_t count = 0;
  for (std::uint32_t l = bin_leaf_begin_[b]; l < bin_leaf_begin_[b + 1]; ++l) {
    count += leaves_[l].size();
  }
  return count;
}

ChainingMesh ChainingMesh::adopt(std::span<const std::uint32_t> leaf_begin) {
  CHECK(!leaf_begin.empty());
  comm::Box3 unit;
  unit.lo = {0.0, 0.0, 0.0};
  unit.hi = {1.0, 1.0, 1.0};
  ChainingMesh mesh(unit, ChainingMeshConfig{});
  const std::size_t num_leaves = leaf_begin.size() - 1;
  const std::uint32_t num_particles = leaf_begin[num_leaves];
  mesh.perm_.resize(num_particles);
  for (std::uint32_t s = 0; s < num_particles; ++s) mesh.perm_[s] = s;
  mesh.leaves_.resize(num_leaves);
  for (std::size_t l = 0; l < num_leaves; ++l) {
    CHECK(leaf_begin[l] <= leaf_begin[l + 1]);
    mesh.leaves_[l].begin = leaf_begin[l];
    mesh.leaves_[l].end = leaf_begin[l + 1];
  }
  mesh.bin_leaf_begin_ = {0, static_cast<std::uint32_t>(num_leaves)};
  mesh.leaf_bin_.assign(num_leaves, 0);
  return mesh;
}

OccupancyStats bin_occupancy(const comm::Box3& domain, double bin_width,
                             const Particles& particles, double slack,
                             double period) {
  CHECK(bin_width > 0.0);
  CHECK(slack >= 0.0);
  int dims[3];
  double width[3];
  for (int d = 0; d < 3; ++d) {
    const double extent = domain.hi[d] - domain.lo[d];
    CHECK(extent > 0.0);
    dims[d] = std::max(1, static_cast<int>(extent / bin_width));
    width[d] = extent / dims[d];
  }
  OccupancyStats stats;
  stats.bins = static_cast<std::uint64_t>(dims[0]) * dims[1] * dims[2];
  std::vector<std::uint64_t> count(stats.bins, 0);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!particles.is_owned(i)) continue;
    const double raw[3] = {static_cast<double>(particles.x[i]),
                           static_cast<double>(particles.y[i]),
                           static_cast<double>(particles.z[i])};
    int c[3];
    bool inside = true;
    for (int d = 0; d < 3; ++d) {
      // Negated comparisons so NaN coordinates count as escaped. A
      // particle that drifted across the periodic box edge since the
      // last exchange wraps to the far side of the global box — still
      // legitimately owned here — so each ±period image is tried before
      // declaring escape.
      const double lo = domain.lo[d] - slack;
      const double hi = domain.hi[d] + slack;
      double v = raw[d];
      if (!(v >= lo && v <= hi) && period > 0.0) {
        if (raw[d] + period >= lo && raw[d] + period <= hi) {
          v = raw[d] + period;
        } else if (raw[d] - period >= lo && raw[d] - period <= hi) {
          v = raw[d] - period;
        }
      }
      if (!(v >= lo && v <= hi)) {
        inside = false;
        break;
      }
      double cell = (v - domain.lo[d]) / width[d];
      if (!(cell > 0.0)) cell = 0.0;
      const double top = static_cast<double>(dims[d] - 1);
      if (cell > top) cell = top;
      c[d] = static_cast<int>(cell);
    }
    if (!inside) {
      ++stats.out_of_domain;
      continue;
    }
    const std::size_t bin =
        (static_cast<std::size_t>(c[2]) * dims[1] + c[1]) * dims[0] + c[0];
    ++count[bin];
    ++stats.counted;
  }
  for (const std::uint64_t n : count) {
    stats.max_bin = std::max(stats.max_bin, n);
  }
  stats.mean_bin =
      static_cast<double>(stats.counted) / static_cast<double>(stats.bins);
  return stats;
}

}  // namespace crkhacc::tree
