file(REMOVE_RECURSE
  "libcrkhacc_io.a"
)
