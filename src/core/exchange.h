// Particle migration and overload (ghost) exchange.
//
// Once per PM step, each rank: (1) drops its stale ghost replicas,
// (2) migrates owned particles that drifted into other subdomains, and
// (3) re-overloads — sends copies of its boundary particles to every rank
// whose overloaded box contains them, including periodic images (and its
// own periodic images when a rank wraps onto itself at small rank
// counts). Ghost copies carry unwrapped image coordinates so the
// receiving rank's chaining mesh sees a spatially contiguous cloud.
//
// After the exchange, all short-range work inside the PM step is
// communication-free — the core architectural property of CRK-HACC.
#pragma once

#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/particles.h"

namespace crkhacc::core {

struct ExchangeStats {
  std::int64_t migrated = 0;   ///< owned particles that changed rank
  std::int64_t ghosts = 0;     ///< overload replicas received
  std::int64_t owned = 0;      ///< owned count after exchange
};

/// Full exchange: drop ghosts, migrate owners, rebuild the overload
/// layer of width `overload`.
ExchangeStats exchange_and_overload(comm::Communicator& comm,
                                    const comm::CartDecomposition& decomp,
                                    Particles& particles, double overload);

}  // namespace crkhacc::core
