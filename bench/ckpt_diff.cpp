// Differential-checkpoint gate: steady-state byte reduction + bitwise
// chain restore.
//
// The paper's checkpoint cadence is dominated by steps where most
// particle state barely moves between writes (quiescent regions of a
// slowly-evolving volume). The chunked column format (io/column_file.h)
// exploits that: a differential write carries only the chunks whose page
// CRC moved since the previous checkpoint. This bench drives the
// MultiTierWriter over a quiescent workload — a contiguous ~1/128 slice
// of the particles drifts each step, the rest holds still — and gates:
//
//   1. reduction — steady-state diff bytes at least 5x smaller than the
//      full checkpoint that anchors the chain;
//   2. correctness — restoring the chain tip replays full -> diff -> ...
//      bitwise identical to the live particle state (every column);
//   3. bookkeeping — every write after the first is a diff, and skipped
//      chunks dominate written ones.
//
// --quick shrinks the problem and runs as the ckpt_diff_smoke ctest
// target, so a planner or chain regression fails the build.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/particles.h"
#include "io/checkpoint.h"
#include "io/column_file.h"
#include "io/multi_tier.h"
#include "io/storage.h"
#include "util/rng.h"

using namespace crkhacc;

namespace {

namespace fs = std::filesystem;

Particles quiescent_particles(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = p.push_back(
        i, i % 2 ? Species::kGas : Species::kDarkMatter,
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(1.0 + rng.next_double()));
    p.u[idx] = static_cast<float>(rng.next_double() * 100.0);
    p.rho[idx] = static_cast<float>(rng.next_double());
    p.hsml[idx] = 0.5f;
  }
  return p;
}

/// One "step" of the quiescent workload: a contiguous 1/128 slice
/// drifts, everything else is untouched.
void drift_slice(Particles& p, std::uint64_t step) {
  const std::size_t slice = std::max<std::size_t>(1, p.size() / 128);
  const std::size_t start = (static_cast<std::size_t>(step) * slice) % p.size();
  for (std::size_t i = start; i < std::min(start + slice, p.size()); ++i) {
    p.x[i] += 0.01f;
    p.y[i] += 0.01f;
    p.z[i] += 0.01f;
  }
}

bool same_state(const Particles& a, const Particles& b) {
  return a.size() == b.size() && a.id == b.id && a.x == b.x && a.y == b.y &&
         a.z == b.z && a.vx == b.vx && a.vy == b.vy && a.vz == b.vz &&
         a.mass == b.mass && a.u == b.u && a.rho == b.rho &&
         a.hsml == b.hsml && a.metal == b.metal && a.species == b.species &&
         a.bin == b.bin && a.ghost == b.ghost;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t n = quick ? 40000 : 100000;
  const std::uint64_t steps = quick ? 6 : 16;

  const auto root = fs::temp_directory_path() / "crkhacc_ckpt_diff_bench";
  fs::remove_all(root);
  io::ThrottledStore nvme(
      io::StoreConfig{(root / "nvme").string(), 0.0, 0.0, false});
  io::ThrottledStore pfs(
      io::StoreConfig{(root / "pfs").string(), 0.0, 0.0, true});
  io::MultiTierConfig config;
  config.rank = 0;
  config.checkpoint_window = 4;
  config.ckpt.diff = true;
  config.ckpt.diff_max_chain = static_cast<int>(steps);  // one chain end to end
  io::MultiTierWriter writer(nvme, pfs, config);

  auto p = quiescent_particles(n, 42);
  for (std::uint64_t step = 1; step <= steps; ++step) {
    if (step > 1) drift_slice(p, step);
    io::SnapshotMeta meta;
    meta.step = step;
    meta.scale_factor = 0.1 + 0.01 * static_cast<double>(step);
    writer.write_checkpoint(meta, p);
  }
  writer.drain();

  const auto records = writer.records();
  const auto stats = writer.stats();
  std::uint64_t full_bytes = 0, diff_bytes = 0, diffs = 0;
  std::printf("ckpt_diff: %zu particles, %llu steps, 1/128 drifting slice\n\n",
              n, static_cast<unsigned long long>(steps));
  std::printf("  %-6s %-6s %12s %10s %10s\n", "step", "kind", "bytes",
              "written", "skipped");
  for (const auto& record : records) {
    std::printf("  %-6llu %-6s %12llu %10llu %10llu\n",
                static_cast<unsigned long long>(record.step),
                record.diff ? "diff" : "full",
                static_cast<unsigned long long>(record.bytes),
                static_cast<unsigned long long>(record.chunks_written),
                static_cast<unsigned long long>(record.chunks_total -
                                                record.chunks_written));
    if (record.diff) {
      diff_bytes += record.bytes;
      ++diffs;
    } else {
      full_bytes += record.bytes;
    }
  }

  bool ok = true;
  if (stats.full_checkpoints != 1 || diffs != steps - 1) {
    std::printf("\nFAIL: expected 1 full + %llu diffs, wrote %llu full + "
                "%llu diffs\n",
                static_cast<unsigned long long>(steps - 1),
                static_cast<unsigned long long>(stats.full_checkpoints),
                static_cast<unsigned long long>(diffs));
    ok = false;
  }
  const double avg_diff =
      diffs > 0 ? static_cast<double>(diff_bytes) / static_cast<double>(diffs)
                : 0.0;
  const double reduction =
      avg_diff > 0.0 ? static_cast<double>(full_bytes) / avg_diff : 0.0;
  std::printf("\nsteady-state byte reduction: full %llu B vs avg diff %.0f B "
              "-> %.1fx (gate: >= 5x)\n",
              static_cast<unsigned long long>(full_bytes), avg_diff,
              reduction);
  if (reduction < 5.0) {
    std::printf("FAIL: reduction below the 5x gate\n");
    ok = false;
  }

  io::SnapshotMeta restored_meta;
  Particles restored;
  if (!io::restore_checkpoint(pfs, steps, 0, restored_meta, restored) ||
      !same_state(restored, p)) {
    std::printf("FAIL: chain restore is not bitwise identical to the live "
                "state\n");
    ok = false;
  } else {
    std::printf("chain restore (length %llu): bitwise identical to live "
                "state\n",
                static_cast<unsigned long long>(stats.longest_chain));
  }
  if (stats.chunks_skipped <= stats.chunks_written) {
    std::printf("FAIL: skipped chunks (%llu) do not dominate written ones "
                "(%llu) on a quiescent workload\n",
                static_cast<unsigned long long>(stats.chunks_skipped),
                static_cast<unsigned long long>(stats.chunks_written));
    ok = false;
  }

  fs::remove_all(root);
  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURE");
  return ok ? 0 : 1;
}
