// Shared helpers for the paper-reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/simulation.h"

namespace crkhacc::bench {

/// Standard miniature problem scaled per rank: `np_per_rank^3` particle
/// pairs per rank, particle-to-mesh ratio 1:2 like production HACC runs.
inline core::SimConfig scaled_config(int ranks, std::size_t np_per_rank,
                                     bool hydro) {
  core::SimConfig config;
  // Keep per-rank particle load fixed: total np^3 = ranks * np_per_rank^3.
  std::size_t np = np_per_rank;
  while (np * np * np < static_cast<std::size_t>(ranks) * np_per_rank *
                            np_per_rank * np_per_rank) {
    ++np;
  }
  config.np = np;
  config.box = 2.0 * static_cast<double>(np);  // fixed mass resolution
  config.ng = 2 * np;
  config.rs_cells = 1.0;
  config.z_init = 30.0;
  config.z_final = 10.0;  // high-z regime, like the paper's scaling runs
  config.num_pm_steps = 2;
  config.bins.max_depth = 4;
  config.hydro = hydro;
  config.subgrid_on = hydro;
  config.seed = 20250705;
  return config;
}

inline void print_rule(char c = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(c);
  std::putchar('\n');
}

inline void print_header(const std::string& title) {
  print_rule('=');
  std::printf("%s\n", title.c_str());
  print_rule('=');
}

}  // namespace crkhacc::bench
