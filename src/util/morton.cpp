#include "util/morton.h"

#include <algorithm>
#include <cmath>

namespace crkhacc {
namespace {

/// Spread the low 21 bits of v so that there are two zero bits between
/// each original bit (standard magic-number bit dilation).
std::uint64_t spread_bits(std::uint64_t v) {
  v &= 0x1fffffULL;
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

std::uint32_t compact_bits(std::uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v ^ (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v ^ (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v ^ (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v ^ (v >> 16)) & 0x1f00000000ffffULL;
  v = (v ^ (v >> 32)) & 0x1fffffULL;
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::uint64_t morton3d(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
  return spread_bits(x) | (spread_bits(y) << 1) | (spread_bits(z) << 2);
}

void morton3d_decode(std::uint64_t code, std::uint32_t& x, std::uint32_t& y,
                     std::uint32_t& z) {
  x = compact_bits(code);
  y = compact_bits(code >> 1);
  z = compact_bits(code >> 2);
}

std::uint32_t quantize21(double value, double box) {
  constexpr std::uint32_t kMax = (1u << 21) - 1;
  if (box <= 0.0) return 0;
  double t = value / box;
  t -= std::floor(t);  // periodic wrap into [0,1)
  const auto q = static_cast<std::int64_t>(t * static_cast<double>(1u << 21));
  return static_cast<std::uint32_t>(std::clamp<std::int64_t>(q, 0, kMax));
}

}  // namespace crkhacc
