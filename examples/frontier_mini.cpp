// Frontier-E in miniature: the full end-to-end campaign.
//
// Runs the complete pipeline the paper describes on a simulated machine:
// several ranks, multi-tiered checkpointing to throttled NVMe/PFS storage
// models, injected machine interruptions with automatic restart from the
// newest complete checkpoint, adaptive sub-cycling, and in situ analysis
// every few PM steps. The final report mirrors the paper's headline
// accounting: timer taxonomy, data written, effective I/O bandwidth, and
// interruption count.
//
//   ./examples/frontier_mini [--threads=N] [--sdc=on|off]
//                            [--launch-schedule=leaf_owner|deferred_store|simd]
//                            [--sdc-flip-rate=R] [--sdc-flip-seed=S]
//                            [--ckpt-diff] [--ckpt-audit-on-restore]
//                            [--rank-loss-policy=fatal|shrink]
//                            [--kill-rank=R@OP]
//                            [--trace=FILE] [--metrics]
//                            [num_ranks] [workdir] [storage_fault_seed]
//
// --threads=N runs each rank's short-range pipeline on an N-thread
// work-stealing pool (0 = hardware concurrency). The answer is bitwise
// identical for every N; the report adds the pool's scheduler accounting.
//
// --launch-schedule selects how pair-kernel launches compose with the
// pool: leaf_owner (default) accumulates in place per owner leaf;
// deferred_store is the buffered-replay alternative; simd keeps the
// owner-leaf decomposition but runs vectorized tile engines (rejected
// when the build has no SIMD backend). All three are bitwise identical
// to serial — the knob exists for A/B drills.
//
// With a storage_fault_seed, the PFS additionally injects silent
// corruption (torn writes, bit flips) and transient I/O errors; the
// campaign must still complete with every checkpoint provably intact
// (write-verify + CRC completion markers + retries).
//
// --trace=FILE enables step-phase tracing on every rank and writes a
// merged Chrome/Perfetto trace_event JSON (open in chrome://tracing or
// ui.perfetto.dev; pid = rank, tid = pool thread). The report gains a
// per-phase summary table and cross-rank imbalance (max/mean) stats.
//
// --metrics prints the unified MetricsRegistry — timers, kernel FLOPs,
// trace phase totals, and scheduler counters — reduced across all ranks.
//
// --ckpt-diff switches the checkpoint writer to differential mode: each
// write carries only the column chunks whose page CRC moved since the
// previous checkpoint, chained full -> diff -> ... with a bounded length.
// Restores replay the chain and are bitwise identical to full writes.
//
// --ckpt-audit-on-restore runs the offline-audit machinery (ckpt_audit)
// over this rank's checkpoints before every restore, repairing damaged
// chunks from the node-local redundant copy (implies keeping local
// copies after the bleed). Audit runs and repairs land in the report.
//
// --rank-loss-policy=shrink keeps the campaign alive when a rank dies:
// the watchdog converts the survivors' wedge into a collective
// RankLossError, the campaign relaunches on N-1 ranks, and the adopting
// ranks replay the dead rank's checkpoint chain from the PFS (round-robin
// remap) before re-entering the normal exchange path. The default, fatal,
// ends the run. --kill-rank=R@OP is the drill switch: rank R throws
// RankFailure at its OP-th comm operation.
//
// --sdc=on (the default) arms the in-memory guardrails: a paged CRC
// snapshot of particle state at each PM-step boundary plus a post-step
// invariant audit, with rollback-replay on a failed audit. With
// --sdc-flip-rate=R > 0, a seeded injector additionally flips bits in
// live particle arrays between kernels (a memory/logic-fault drill);
// detections, rollbacks, replays, and escalations land in the report.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/campaign.h"
#include "core/simulation.h"
#include "gpu/device.h"
#include "gpu/launch.h"

using namespace crkhacc;

int main(int argc, char** argv) {
  int threads = 1;
  gpu::LaunchSchedule schedule = gpu::LaunchSchedule::kLeafOwner;
  bool sdc_on = true;
  double sdc_flip_rate = 0.0;
  std::uint64_t sdc_flip_seed = 13;
  std::string trace_file;
  bool show_metrics = false;
  bool ckpt_diff = false;
  bool ckpt_audit_on_restore = false;
  core::RankLossPolicy rank_loss_policy = core::RankLossPolicy::kFatal;
  int kill_rank = -1;
  std::uint64_t kill_op = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
    } else if (std::strncmp(argv[i], "--launch-schedule=", 18) == 0) {
      const char* value = argv[i] + 18;
      if (std::strcmp(value, "deferred_store") == 0) {
        schedule = gpu::LaunchSchedule::kDeferredStore;
      } else if (std::strcmp(value, "simd") == 0) {
        if (!gpu::simd_support().available) {
          std::fprintf(stderr,
                       "--launch-schedule=simd: this build has no SIMD "
                       "backend (configure with CRKHACC_ENABLE_SIMD=ON)\n");
          return 2;
        }
        schedule = gpu::LaunchSchedule::kSimd;
      } else if (std::strcmp(value, "leaf_owner") != 0) {
        std::fprintf(stderr,
                     "unknown --launch-schedule '%s' (leaf_owner | "
                     "deferred_store | simd)\n",
                     value);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--sdc=", 6) == 0) {
      sdc_on = std::strcmp(argv[i] + 6, "off") != 0;
    } else if (std::strncmp(argv[i], "--sdc-flip-rate=", 16) == 0) {
      sdc_flip_rate = std::atof(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--sdc-flip-seed=", 16) == 0) {
      sdc_flip_seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 16));
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_file = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--ckpt-diff") == 0) {
      ckpt_diff = true;
    } else if (std::strcmp(argv[i], "--ckpt-audit-on-restore") == 0) {
      ckpt_audit_on_restore = true;
    } else if (std::strncmp(argv[i], "--rank-loss-policy=", 19) == 0) {
      const char* value = argv[i] + 19;
      if (std::strcmp(value, "shrink") == 0) {
        rank_loss_policy = core::RankLossPolicy::kShrink;
      } else if (std::strcmp(value, "fatal") != 0) {
        std::fprintf(stderr,
                     "unknown --rank-loss-policy '%s' (fatal | shrink)\n",
                     value);
        return 2;
      }
    } else if (std::strncmp(argv[i], "--kill-rank=", 12) == 0) {
      unsigned long long op = 0;
      if (std::sscanf(argv[i] + 12, "%d@%llu", &kill_rank, &op) != 2 ||
          kill_rank < 0) {
        std::fprintf(stderr, "--kill-rank wants R@OP, e.g. --kill-rank=1@400\n");
        return 2;
      }
      kill_op = op;
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      show_metrics = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const int ranks = positional.size() > 0 ? std::atoi(positional[0]) : 4;
  const std::string workdir =
      positional.size() > 1
          ? positional[1]
          : (std::filesystem::temp_directory_path() / "frontier_mini")
                .string();
  std::filesystem::remove_all(workdir);

  core::SimConfig config;
  config.np = 10;
  config.box = 20.0;
  config.ng = 20;
  config.rs_cells = 1.0;
  config.z_init = 30.0;
  config.z_final = 1.5;
  config.num_pm_steps = 8;
  config.bins.max_depth = 4;
  config.hydro = true;
  config.subgrid_on = true;
  config.analysis_every = 4;
  config.seed = 7;
  // Thresholds rescaled for the coarse demo mass resolution (low-res
  // cosmological runs do the same): SF and BH seeding fire in the
  // densest halo cores this box can form.
  config.subgrid.star_formation.n_h_threshold = 1e-5;
  config.subgrid.star_formation.min_overdensity = 3.0;
  config.subgrid.star_formation.t_max_K = 1e7;
  config.subgrid.star_formation.efficiency = 0.5;
  config.subgrid.agn.seed_n_h = 5e-5;
  config.subgrid.agn.seed_exclusion = 2.0;
  config.threads = threads;
  config.sph.launch.schedule = schedule;
  config.gravity.launch.schedule = schedule;
  config.sdc.enabled = sdc_on;
  config.trace.enabled = !trace_file.empty();
  config.trace.file = trace_file;
  config.ckpt.diff = ckpt_diff;
  config.ckpt.audit_on_restore = ckpt_audit_on_restore;
  // The audit needs a redundant copy to repair from: keep the node-local
  // file after the bleed instead of deleting it.
  config.ckpt.redundant_local = ckpt_audit_on_restore;
  config.rank_loss_policy = rank_loss_policy;

  const char* schedule_name =
      schedule == gpu::LaunchSchedule::kLeafOwner        ? "leaf_owner"
      : schedule == gpu::LaunchSchedule::kDeferredStore  ? "deferred_store"
                                                         : "simd";
  std::printf("frontier-mini: %d ranks, %zu^3 particle pairs, %d PM steps, "
              "%d pool threads/rank, %s launch schedule%s%s%s\n",
              ranks, config.np, config.num_pm_steps, config.threads,
              schedule_name,
              schedule == gpu::LaunchSchedule::kSimd ? " (" : "",
              schedule == gpu::LaunchSchedule::kSimd ? gpu::simd_support().isa
                                                     : "",
              schedule == gpu::LaunchSchedule::kSimd ? ")" : "");
  std::printf("workdir: %s\n", workdir.c_str());
  std::printf("checkpoints: %s format v2%s\n",
              ckpt_diff ? "differential (chained)" : "full",
              ckpt_audit_on_restore ? ", audit+repair on restore" : "");
  std::printf("sdc guardrails: %s%s\n", sdc_on ? "on" : "off",
              !sdc_on && sdc_flip_rate > 0.0
                  ? " (flip injector ignored: guardrails off)"
                  : "");
  std::printf("rank loss policy: %s%s\n\n",
              rank_loss_policy == core::RankLossPolicy::kShrink ? "shrink"
                                                                : "fatal",
              kill_rank >= 0 ? " (kill drill armed)" : "");
  if (kill_rank >= 0) {
    std::printf("kill drill: rank %d dies at comm op %llu\n\n", kill_rank,
                static_cast<unsigned long long>(kill_op));
  }
  if (sdc_on && sdc_flip_rate > 0.0) {
    std::printf("memory fault injection armed: flip rate %.3f per drill "
                "point, seed %llu\n\n",
                sdc_flip_rate,
                static_cast<unsigned long long>(sdc_flip_seed));
  }

  // Storage models: per-node NVMe (private, fast) + shared PFS (slow).
  io::ThrottledStore pfs(
      io::StoreConfig{workdir + "/pfs", 40e6, 0.002, /*shared=*/true});
  if (positional.size() > 2) {
    io::FaultPolicy storage_faults;
    storage_faults.seed =
        static_cast<std::uint64_t>(std::atoll(positional[2]));
    storage_faults.torn_write = 0.05;
    storage_faults.bit_flip = 0.05;
    storage_faults.transient_eio = 0.10;
    pfs.set_fault_policy(storage_faults);
    std::printf("PFS fault injection armed (seed %s): 5%% torn writes, "
                "5%% bit flips, 10%% transient EIO\n\n",
                positional[2]);
  }
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        workdir + "/nvme" + std::to_string(r), 400e6, 0.0, /*shared=*/false}));
  }

  // The campaign owns the machine: it relaunches a shrunken World after
  // a rank loss (policy permitting), handing each surviving rank its
  // node-local tier under the new dense numbering.
  std::vector<io::ThrottledStore*> locals;
  locals.reserve(nvmes.size());
  for (const auto& nvme : nvmes) locals.push_back(nvme.get());
  core::Campaign campaign(config.rank_loss_policy, locals);
  if (kill_rank >= 0) campaign.schedule_rank_failure(kill_rank, kill_op);
  const auto rank_program = [&](comm::Communicator& comm,
                                const core::CampaignEpoch& epoch) {
    io::MultiTierConfig writer_config;
    writer_config.rank = comm.rank();
    writer_config.checkpoint_window = 3;
    writer_config.ckpt = config.ckpt;
    io::MultiTierWriter writer(*epoch.local, pfs, writer_config);
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    core::RunResult pre;  // adoption/audit counters from a shrink resume
    if (epoch.resume) {
      sim.recover(pfs, pre, &writer);
    } else {
      sim.initialize();
    }

    // Per-rank seeded injector: deterministic for a given (seed, rank),
    // so a flaky report reproduces exactly.
    std::unique_ptr<core::MemFaultInjector> mem_faults;
    if (sdc_on && sdc_flip_rate > 0.0) {
      mem_faults = std::make_unique<core::MemFaultInjector>(
          sdc_flip_rate,
          sdc_flip_seed ^ (static_cast<std::uint64_t>(comm.rank()) << 32));
      sim.set_memory_fault_injector(mem_faults.get());
    }

    // MTTI ~ a third of the campaign: expect a few interruptions
    // (the paper cites MTTIs of hours against ~20-minute steps).
    const double campaign_time =
        sim.background().time_of(sim.a_at_step(
            static_cast<std::uint64_t>(config.num_pm_steps))) -
        sim.background().time_of(sim.a_at_step(0));
    const io::FaultInjector fault(campaign_time / 3.0, /*seed=*/2);
    auto result = sim.run(&writer, &pfs, &fault);
    // mem_faults is declared after sim and destructs first; disarm now
    // (Simulation CHECK-aborts if an armed injector dies before it).
    sim.set_memory_fault_injector(nullptr);
    result.merge(pre);
    epoch.stamp(result);
    writer.drain();
    comm.barrier();

    // Aggregate accounting on rank 0.
    const double local_blocked = [&] {
      double sum = 0.0;
      for (const auto& record : writer.records()) sum += record.local_seconds;
      return sum;
    }();
    const auto bytes = static_cast<std::int64_t>(writer.bytes_written());
    const auto total_bytes =
        comm.allreduce_scalar(bytes, comm::ReduceOp::kSum);
    const double max_blocked =
        comm.allreduce_scalar(local_blocked, comm::ReduceOp::kMax);
    const auto io_stats = writer.stats();
    const auto sum_u64 = [&](std::uint64_t value) {
      return comm.allreduce_scalar(static_cast<std::int64_t>(value),
                                   comm::ReduceOp::kSum);
    };
    const auto total_fulls = sum_u64(io_stats.full_checkpoints);
    const auto total_diffs = sum_u64(io_stats.diff_checkpoints);
    const auto total_chunks_written = sum_u64(io_stats.chunks_written);
    const auto total_chunks_skipped = sum_u64(io_stats.chunks_skipped);
    const auto longest_chain = comm.allreduce_scalar(
        static_cast<std::int64_t>(io_stats.longest_chain),
        comm::ReduceOp::kMax);

    if (comm.rank() == 0) {
      std::printf("campaign complete: %llu steps, %llu machine interruptions "
                  "survived\n",
                  static_cast<unsigned long long>(result.steps_done),
                  static_cast<unsigned long long>(result.interruptions));
      std::printf("launch: %s schedule, simd backend %s\n",
                  result.launch_schedule.c_str(), result.simd_isa.c_str());
      std::printf("recovery: %llu checkpoint restores attempted, %llu "
                  "fallbacks to older steps, %llu restarts from ICs\n",
                  static_cast<unsigned long long>(result.recovery_attempts),
                  static_cast<unsigned long long>(result.checkpoint_fallbacks),
                  static_cast<unsigned long long>(result.restarts_from_ics));
      if (result.rank_losses > 0) {
        std::printf("rank loss: %llu rank(s) lost, %llu shrink "
                    "recoveries, %llu checkpoint files adopted; finished on "
                    "%s\n",
                    static_cast<unsigned long long>(result.rank_losses),
                    static_cast<unsigned long long>(result.shrink_recoveries),
                    static_cast<unsigned long long>(result.adopted_rank_files),
                    sim.decomposition().describe().c_str());
      }
      std::printf("io hardening: %llu local retries, %llu PFS retries, %llu "
                  "verify failures caught, %llu bleed failures%s\n",
                  static_cast<unsigned long long>(result.io.local_retries),
                  static_cast<unsigned long long>(result.io.pfs_retries),
                  static_cast<unsigned long long>(result.io.verify_failures),
                  static_cast<unsigned long long>(result.io.bleed_failures),
                  result.io.degraded_to_direct ? " (degraded to direct PFS)"
                                               : "");
      std::printf("checkpoint format: %lld full + %lld diff writes, %lld "
                  "chunks written, %lld skipped, longest chain %lld\n",
                  static_cast<long long>(total_fulls),
                  static_cast<long long>(total_diffs),
                  static_cast<long long>(total_chunks_written),
                  static_cast<long long>(total_chunks_skipped),
                  static_cast<long long>(longest_chain));
      if (ckpt_audit_on_restore) {
        std::printf("restore audits: %llu run(s), %llu damaged chunk(s) "
                    "found, %llu repaired\n",
                    static_cast<unsigned long long>(result.ckpt_audit_runs),
                    static_cast<unsigned long long>(
                        result.ckpt_audit_damaged_chunks),
                    static_cast<unsigned long long>(
                        result.ckpt_audit_repaired_chunks));
      }
      std::printf("\n");
      if (config.sdc.enabled) {
        std::printf("sdc guardrails: %llu audits, %llu detections, %llu "
                    "rollbacks, %llu replays, %llu escalations, %llu bit "
                    "flips injected\n",
                    static_cast<unsigned long long>(result.sdc_audits),
                    static_cast<unsigned long long>(result.sdc_detections),
                    static_cast<unsigned long long>(result.sdc_rollbacks),
                    static_cast<unsigned long long>(result.sdc_replays),
                    static_cast<unsigned long long>(result.sdc_escalations),
                    static_cast<unsigned long long>(result.sdc_injected_flips));
        double snapshot_s = 0.0;
        double audit_s = 0.0;
        std::size_t snapshot_bytes = 0;
        for (const auto& report : result.reports) {
          snapshot_s += report.sdc.snapshot_seconds;
          audit_s += report.sdc.audit_seconds;
          snapshot_bytes = std::max(snapshot_bytes,
                                    report.sdc.snapshot_bytes);
        }
        std::printf("sdc cost: snapshot %.3f s + audit %.3f s over the "
                    "campaign, %.2f MB resident snapshot\n",
                    snapshot_s, audit_s,
                    static_cast<double>(snapshot_bytes) / 1e6);
      } else {
        std::printf("sdc guardrails: off\n");
      }
      std::printf("checkpoint data written: %.1f MB total, sim blocked "
                  "%.3f s (max rank)\n",
                  static_cast<double>(total_bytes) / 1e6, max_blocked);
      if (max_blocked > 0.0) {
        std::printf("effective checkpoint bandwidth: %.1f MB/s vs PFS "
                    "channel %.1f MB/s\n\n",
                    static_cast<double>(total_bytes) / 1e6 / max_blocked,
                    40.0);
      }
      for (const auto& analysis : result.analyses) {
        std::printf("analysis @ z=%.2f: %lld halos, %lld stars, %lld BHs, "
                    "largest halo %.2e x 1e10 Msun/h\n",
                    1.0 / analysis.a - 1.0,
                    static_cast<long long>(analysis.halo_count),
                    static_cast<long long>(analysis.star_count),
                    static_cast<long long>(analysis.bh_count),
                    analysis.largest_halo_mass);
      }
      std::printf("\nfinal density slice:\n%s\n",
                  result.analyses.empty()
                      ? "(none)"
                      : analysis::render_density_ascii(
                            result.analyses.back().slice, 48)
                            .c_str());
      std::printf("timer taxonomy (rank 0), paper Fig. 5 style:\n");
      const auto& timers = sim.timers();
      for (const char* name :
           {timers::kShortRange, timers::kAnalysis, timers::kIO,
            timers::kLongRange, timers::kTreeBuild, timers::kMisc}) {
        std::printf("  %-12s %8.3f s  (%5.1f%%)\n", name, timers.total(name),
                    100.0 * timers.fraction(name));
      }
      const auto& flops = sim.flops();
      std::printf("\nkernel FLOPs: %.2f GFLOP total, sustained %.2f GFLOP/s, "
                  "peak kernel '%s' at %.2f GFLOP/s\n",
                  flops.total_flops() / 1e9, flops.sustained_gflops(),
                  flops.peak_kernel().c_str(), flops.peak_gflops());
      const auto& pool = result.threading;
      if (pool.parallel_regions > 0) {
        double busy = 0.0;
        for (double b : pool.busy_seconds) busy += b;
        std::printf("thread pool (rank 0): %u threads, %llu regions, %llu "
                    "chunks, %llu steals, busy %.3f s, critical path %.3f s\n",
                    pool.threads,
                    static_cast<unsigned long long>(pool.parallel_regions),
                    static_cast<unsigned long long>(pool.chunks_executed),
                    static_cast<unsigned long long>(pool.steals), busy,
                    pool.critical_path_seconds());
      } else {
        std::printf("thread pool: serial path (threads=%d)\n", config.threads);
      }
    }

    // Observability: merged Chrome trace + per-phase imbalance + metrics.
    // All ranks participate in the gathers; rank 0 prints and writes.
    if (config.trace.enabled) {
      const std::string fragment = sim.trace().chrome_events_fragment();
      std::vector<std::uint8_t> mine(fragment.begin(), fragment.end());
      const auto gathered = comm.allgather_bytes(mine);
      if (comm.rank() == 0) {
        std::vector<std::string> fragments;
        for (const auto& bytes : gathered) {
          fragments.emplace_back(bytes.begin(), bytes.end());
        }
        std::FILE* out = std::fopen(trace_file.c_str(), "wb");
        if (out != nullptr) {
          const std::string doc =
              util::TraceRecorder::chrome_json_document(fragments);
          std::fwrite(doc.data(), 1, doc.size(), out);
          std::fclose(out);
          std::printf("\ntrace: %llu local events (%llu dropped) -> %s\n",
                      static_cast<unsigned long long>(result.trace_events),
                      static_cast<unsigned long long>(result.trace_dropped),
                      trace_file.c_str());
        } else {
          std::fprintf(stderr, "trace: cannot write %s\n", trace_file.c_str());
        }
        std::printf("\nper-phase summary (rank 0):\n%s",
                    sim.trace().summary_table().c_str());
        if (!result.phase_stats.empty()) {
          std::printf("\ncross-rank phase imbalance (campaign totals):\n");
          std::printf("  %-16s %10s %10s %8s\n", "phase", "mean(s)", "max(s)",
                      "max/mean");
          for (const auto& phase : result.phase_stats) {
            std::printf("  %-16s %10.4f %10.4f %8.2f\n", phase.name.c_str(),
                        phase.mean_seconds, phase.max_seconds,
                        phase.imbalance());
          }
        }
      }
    }
    if (show_metrics) {
      const auto reduced = sim.collect_metrics().reduce(comm);
      if (comm.rank() == 0) {
        std::printf("\nmetrics (reduced over %d ranks):\n%s", comm.size(),
                    reduced.table().c_str());
      }
    }
  };
  try {
    campaign.run(rank_program);
  } catch (const comm::RankLossError& loss) {
    // Under rank_loss_policy = fatal (or when a shrink would leave no
    // rank alive) the loss ends the campaign; fail cleanly with the
    // watchdog's diagnosis instead of std::terminate.
    std::fprintf(stderr, "campaign aborted by rank loss:\n%s\n", loss.what());
    std::filesystem::remove_all(workdir);
    return 1;
  }
  std::filesystem::remove_all(workdir);
  return 0;
}
