// Checkpoint discovery, restart, and fault injection.
//
// Restart policy mirrors the paper's fault-tolerance loop: every PM step
// writes a full checkpoint; after an interruption, the run resumes from
// the newest step for which EVERY rank's file reached the PFS intact
// (completion markers + CRC validation). Partial checkpoints — a fault
// mid-bleed — are skipped automatically.
//
// FaultInjector models the machine's mean time to interrupt: a
// deterministic counter-based draw per step, so tests can replay the
// exact same failure schedule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/particles.h"
#include "io/generic_io.h"
#include "io/storage.h"
#include "util/rng.h"

namespace crkhacc::io {

/// Newest step for which all `num_ranks` checkpoint files exist on the
/// PFS with completion markers. nullopt if none.
std::optional<std::uint64_t> latest_complete_checkpoint(ThrottledStore& pfs,
                                                        int num_ranks);

/// Load rank `rank`'s particles from checkpoint `step` on the PFS.
/// Returns false on any integrity failure.
bool restore_checkpoint(ThrottledStore& pfs, std::uint64_t step, int rank,
                        SnapshotMeta& meta, Particles& out);

/// Deterministic interruption schedule: kills happen when the per-step
/// hazard draw falls below dt/mtti.
class FaultInjector {
 public:
  /// mtti in the same time unit as the dt passed to should_fail.
  FaultInjector(double mtti, std::uint64_t seed)
      : mtti_(mtti), rng_(seed, /*stream=*/0xFA17) {}

  /// True if the machine is interrupted during this execution attempt
  /// (`trial` must increase monotonically across retries of the same
  /// step, or a deterministic failure would recur forever).
  bool should_fail(std::uint64_t trial, double dt) const {
    if (mtti_ <= 0.0) return false;
    return rng_.uniform(trial) < dt / mtti_;
  }

 private:
  double mtti_;
  CounterRng rng_;
};

}  // namespace crkhacc::io
