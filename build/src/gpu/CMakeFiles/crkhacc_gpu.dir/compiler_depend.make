# Empty compiler generated dependencies file for crkhacc_gpu.
# This may be replaced when dependencies are built.
