// Golden-trace regression tests for the step-phase tracing subsystem:
// span recording/nesting, per-thread ring-buffer overflow semantics,
// Chrome trace_event JSON schema validation, and — the load-bearing
// guarantee — span counts and nesting identical for threads=1 vs
// threads=8 and across LaunchSchedule modes. The instrumented pipeline
// emits structural spans on the rank thread only, so the trace signature
// is a function of the step structure, never of the scheduler.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "comm/world.h"
#include "core/simulation.h"
#include "gpu/launch.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace crkhacc::util {
namespace {

// --- recorder unit tests -----------------------------------------------------

TraceConfig enabled_config(std::size_t buffer_events = 1 << 12) {
  TraceConfig config;
  config.enabled = true;
  config.buffer_events = buffer_events;
  return config;
}

TEST(TraceRecorder, DisabledRecorderRecordsNothing) {
  TraceRecorder rec;  // default config: disabled
  TraceRecorder::Context ctx(&rec);
  {
    HACC_TRACE_SPAN("phase");
    HACC_TRACE_SPAN("inner");
  }
  rec.flush(0);
  EXPECT_EQ(rec.events_recorded(), 0u);
  EXPECT_EQ(rec.events_dropped(), 0u);
  EXPECT_EQ(rec.threads_seen(), 0u);
}

TEST(TraceRecorder, NoContextMeansNoOp) {
  // No recorder installed on this thread: the macro must be inert.
  EXPECT_EQ(TraceRecorder::current(), nullptr);
  HACC_TRACE_SPAN("orphan");
}

TEST(TraceRecorder, RecordsNestedSpansWithDepthAndOrder) {
  TraceRecorder rec(enabled_config());
  TraceRecorder::Context ctx(&rec);
  {
    HACC_TRACE_SPAN("step");
    {
      HACC_TRACE_SPAN("long_range");
      { HACC_TRACE_SPAN("fft"); }
    }
    { HACC_TRACE_SPAN("short_range"); }
  }
  rec.flush(7);
  const auto& events = rec.events();
  ASSERT_EQ(events.size(), 4u);
  // flush() orders by open_seq: step, long_range, fft, short_range.
  EXPECT_STREQ(events[0].name, "step");
  EXPECT_EQ(events[0].depth, 0u);
  EXPECT_STREQ(events[1].name, "long_range");
  EXPECT_EQ(events[1].depth, 1u);
  EXPECT_STREQ(events[2].name, "fft");
  EXPECT_EQ(events[2].depth, 2u);
  EXPECT_STREQ(events[3].name, "short_range");
  EXPECT_EQ(events[3].depth, 1u);
  for (const auto& ev : events) {
    EXPECT_EQ(ev.step, 7u);
    EXPECT_EQ(ev.tid, 0u);
    EXPECT_GE(ev.dur, 0.0);
  }
  // Parent spans cover their children.
  EXPECT_LE(events[0].start, events[1].start);
  EXPECT_GE(events[0].start + events[0].dur,
            events[1].start + events[1].dur);
}

TEST(TraceRecorder, StepSecondsAttributesToFlushedStep) {
  TraceRecorder rec(enabled_config());
  TraceRecorder::Context ctx(&rec);
  { HACC_TRACE_SPAN("a"); }
  rec.flush(0);
  { HACC_TRACE_SPAN("a"); }
  { HACC_TRACE_SPAN("a"); }
  rec.flush(1);
  EXPECT_GT(rec.step_seconds(0, "a"), 0.0);
  EXPECT_GT(rec.step_seconds(1, "a"), 0.0);
  EXPECT_EQ(rec.step_seconds(2, "a"), 0.0);
  const auto summary = rec.summary();
  ASSERT_EQ(summary.size(), 1u);
  EXPECT_EQ(summary[0].count, 3u);
  EXPECT_NEAR(summary[0].total_seconds, rec.total_seconds("a"), 1e-12);
}

TEST(TraceRecorder, OpenSpanLandsInNextFlush) {
  TraceRecorder rec(enabled_config());
  TraceRecorder::Context ctx(&rec);
  {
    HACC_TRACE_SPAN("outer");
    { HACC_TRACE_SPAN("inner"); }
    rec.flush(0);  // "outer" still open: only "inner" commits
    EXPECT_EQ(rec.events_recorded(), 1u);
    EXPECT_STREQ(rec.events()[0].name, "inner");
  }
  rec.flush(1);
  ASSERT_EQ(rec.events_recorded(), 2u);
  EXPECT_STREQ(rec.events()[1].name, "outer");
  EXPECT_EQ(rec.events()[1].step, 1u);
}

// --- ring overflow -----------------------------------------------------------

TEST(TraceRecorder, OverflowDropsNewestAndCounts) {
  TraceRecorder rec(enabled_config(/*buffer_events=*/8));
  TraceRecorder::Context ctx(&rec);
  for (int i = 0; i < 100; ++i) {
    HACC_TRACE_SPAN("tick");
  }
  EXPECT_EQ(rec.events_dropped(), 92u);
  rec.flush(0);
  // Drop-newest: the first 8 events survive, uncorrupted.
  ASSERT_EQ(rec.events_recorded(), 8u);
  for (const auto& ev : rec.events()) {
    EXPECT_STREQ(ev.name, "tick");
    EXPECT_EQ(ev.depth, 0u);
    EXPECT_GE(ev.dur, 0.0);
  }
  // Sequence numbers are the first eight opens in order.
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rec.events()[i].open_seq, i);
  }
  // The ring recovers after a flush frees space.
  { HACC_TRACE_SPAN("after"); }
  rec.flush(1);
  EXPECT_EQ(rec.events_recorded(), 9u);
  EXPECT_STREQ(rec.events().back().name, "after");
}

TEST(TraceRecorder, ThreadedOverflowNeverCorrupts) {
  // Hammer tiny per-thread rings from pool workers; accounting must
  // balance exactly and committed events must be intact.
  TraceRecorder rec(enabled_config(/*buffer_events=*/16));
  util::ThreadPool pool(4);
  constexpr std::size_t kChunks = 256;
  pool.parallel_for(0, kChunks, 1,
                    [&](std::size_t lo, std::size_t hi, std::size_t) {
                      for (std::size_t i = lo; i < hi; ++i) {
                        auto span = rec.span("chunk");
                      }
                    });
  rec.flush(0);
  EXPECT_EQ(rec.events_recorded() + rec.events_dropped(), kChunks);
  EXPECT_GT(rec.events_dropped(), 0u);  // 16-slot rings must overflow
  for (const auto& ev : rec.events()) {
    EXPECT_STREQ(ev.name, "chunk");
    EXPECT_LT(ev.tid, rec.threads_seen());
  }
}

TEST(TraceRecorder, WorkerSpanCountIndependentOfThreadCount) {
  // ThreadPool chunk decomposition is fixed by (n, grain), so per-chunk
  // spans are deterministic in count for any thread count.
  std::vector<std::uint64_t> counts;
  for (unsigned threads : {1u, 2u, 8u}) {
    TraceRecorder rec(enabled_config());
    util::ThreadPool pool(threads);
    pool.parallel_for(0, 1000, 64,
                      [&](std::size_t, std::size_t, std::size_t) {
                        auto span = rec.span("chunk");
                      });
    rec.flush(0);
    EXPECT_EQ(rec.events_dropped(), 0u);
    counts.push_back(rec.events_recorded());
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[0], counts[2]);
}

// --- Chrome JSON schema ------------------------------------------------------

/// Minimal recursive-descent JSON parser: enough to validate that the
/// export is well-formed JSON and walk its structure (no external deps).
class JsonLite {
 public:
  struct Value {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
    double number = 0.0;
    bool boolean = false;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;
  };

  static bool parse(const std::string& text, Value& out) {
    JsonLite p(text);
    if (!p.value(out)) return false;
    p.skip_ws();
    return p.pos_ == text.size();
  }

 private:
  explicit JsonLite(const std::string& text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool literal(const char* s, std::size_t len) {
    if (text_.compare(pos_, len, s) != 0) return false;
    pos_ += len;
    return true;
  }
  bool value(Value& out) {
    skip_ws();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = Value::kString;
      return string(out.str);
    }
    if (c == 't') {
      out.kind = Value::kBool;
      out.boolean = true;
      return literal("true", 4);
    }
    if (c == 'f') {
      out.kind = Value::kBool;
      return literal("false", 5);
    }
    if (c == 'n') return literal("null", 4);
    return number(out);
  }
  bool number(Value& out) {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out.kind = Value::kNumber;
    out.number = std::stod(text_.substr(start, pos_ - start));
    return true;
  }
  bool string(std::string& out) {
    if (text_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      out.push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool array(Value& out) {
    out.kind = Value::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }
  bool object(Value& out) {
    out.kind = Value::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || !string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Value element;
      if (!value(element)) return false;
      out.object.emplace(std::move(key), std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(TraceExport, ChromeJsonMatchesSchema) {
  TraceRecorder rec(enabled_config());
  rec.set_rank(3);
  TraceRecorder::Context ctx(&rec);
  {
    HACC_TRACE_SPAN("step");
    { HACC_TRACE_SPAN("long_range"); }
  }
  rec.flush(5);

  const std::string doc =
      TraceRecorder::chrome_json_document({rec.chrome_events_fragment()});
  JsonLite::Value root;
  ASSERT_TRUE(JsonLite::parse(doc, root)) << doc;
  ASSERT_EQ(root.kind, JsonLite::Value::kObject);
  ASSERT_TRUE(root.object.count("traceEvents"));
  ASSERT_TRUE(root.object.count("displayTimeUnit"));
  const auto& events = root.object["traceEvents"];
  ASSERT_EQ(events.kind, JsonLite::Value::kArray);
  ASSERT_EQ(events.array.size(), 2u);
  for (const auto& ev : events.array) {
    ASSERT_EQ(ev.kind, JsonLite::Value::kObject);
    // Required trace_event keys for a complete ("X") event.
    for (const char* key : {"name", "ph", "pid", "tid", "ts", "dur", "args"}) {
      EXPECT_TRUE(ev.object.count(key)) << "missing key " << key;
    }
    EXPECT_EQ(ev.object.at("ph").str, "X");
    EXPECT_EQ(ev.object.at("pid").number, 3.0);
    EXPECT_GE(ev.object.at("dur").number, 0.0);
    const auto& args = ev.object.at("args");
    ASSERT_EQ(args.kind, JsonLite::Value::kObject);
    for (const char* key : {"step", "depth", "seq"}) {
      EXPECT_TRUE(args.object.count(key)) << "missing args key " << key;
    }
    EXPECT_EQ(args.object.at("step").number, 5.0);
  }
  // Empty recorder still produces a valid document.
  TraceRecorder empty(enabled_config());
  JsonLite::Value empty_root;
  ASSERT_TRUE(JsonLite::parse(
      TraceRecorder::chrome_json_document({empty.chrome_events_fragment()}),
      empty_root));
  EXPECT_EQ(empty_root.object["traceEvents"].array.size(), 0u);
}

TEST(TraceExport, EscapesHostileNames) {
  TraceRecorder rec(enabled_config());
  TraceRecorder::Context ctx(&rec);
  { auto span = rec.span("quote\"back\\slash"); }
  rec.flush(0);
  JsonLite::Value root;
  ASSERT_TRUE(JsonLite::parse(
      TraceRecorder::chrome_json_document({rec.chrome_events_fragment()}),
      root));
  EXPECT_EQ(root.object["traceEvents"].array[0].object.at("name").str,
            "quote\"back\\slash");
}

}  // namespace
}  // namespace crkhacc::util

// --- golden traces from the instrumented pipeline ---------------------------

namespace crkhacc::core {
namespace {

SimConfig trace_config() {
  SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 12.0;
  config.num_pm_steps = 2;
  config.hydro = true;
  config.subgrid_on = true;
  // Shallow bins keep the suite fast; substep structure is still
  // exercised (2^depth substeps with per-substep spans).
  config.bins.max_depth = 2;
  config.seed = 99;
  config.trace.enabled = true;
  return config;
}

/// The golden signature: the ordered (name, depth, step) sequence of
/// rank-thread spans. Timing-free, so it must be bit-identical across
/// thread counts and launch schedules.
using Signature = std::vector<std::tuple<std::string, std::uint32_t,
                                         std::uint64_t>>;

Signature run_and_sign(const SimConfig& config) {
  Signature signature;
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    for (int s = 0; s < config.num_pm_steps; ++s) {
      const auto report = sim.step();
      EXPECT_FALSE(report.phases.empty());
    }
    EXPECT_EQ(sim.trace().events_dropped(), 0u);
    for (const auto& ev : sim.trace().events()) {
      EXPECT_EQ(ev.tid, 0u);  // product spans are rank-thread only
      signature.emplace_back(ev.name, ev.depth, ev.step);
    }
  });
  return signature;
}

TEST(GoldenTrace, SpanCountsAndNestingIdenticalAcrossThreadCounts) {
  auto config = trace_config();
  config.threads = 1;
  const auto serial = run_and_sign(config);
  ASSERT_FALSE(serial.empty());
  config.threads = 8;
  const auto threaded = run_and_sign(config);
  EXPECT_EQ(serial, threaded);
}

TEST(GoldenTrace, SpanCountsAndNestingIdenticalAcrossSchedules) {
  auto config = trace_config();
  config.threads = 4;
  config.sph.launch.schedule = gpu::LaunchSchedule::kLeafOwner;
  config.gravity.launch.schedule = gpu::LaunchSchedule::kLeafOwner;
  const auto owner = run_and_sign(config);
  config.sph.launch.schedule = gpu::LaunchSchedule::kDeferredStore;
  config.gravity.launch.schedule = gpu::LaunchSchedule::kDeferredStore;
  const auto deferred = run_and_sign(config);
  EXPECT_EQ(owner, deferred);
}

TEST(GoldenTrace, StructuralSpansMatchStepReport) {
  auto config = trace_config();
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto report = sim.step();
    const auto& trace = sim.trace();
    // One "step" span, one of each once-per-step phase, and exactly
    // 2^depth "substep" spans.
    std::map<std::string, std::uint64_t> counts;
    for (const auto& ev : trace.events()) ++counts[ev.name];
    EXPECT_EQ(counts["step"], 1u);
    EXPECT_EQ(counts["exchange"], 1u);
    EXPECT_EQ(counts["long_range"], 1u);
    EXPECT_EQ(counts["bin_assign"], 1u);
    EXPECT_EQ(counts["substep"], report.substeps);
    EXPECT_EQ(counts["short_range"], report.substeps);
    EXPECT_EQ(counts["fft_forward"], 1u);
    EXPECT_EQ(counts["fft_backward"], 3u);
    EXPECT_EQ(counts["pm_gradient"], 3u);
    // Imbalance stats cover the canonical phases that ran.
    bool saw_short_range = false;
    for (const auto& phase : report.phases) {
      EXPECT_GT(phase.max_seconds, 0.0);
      EXPECT_GE(phase.imbalance(), 1.0 - 1e-9);
      if (phase.name == "short_range") saw_short_range = true;
    }
    EXPECT_TRUE(saw_short_range);
  });
}

TEST(GoldenTrace, TracingOffLeavesPhysicsAndReportsUnchanged) {
  // Same run with tracing on and off: physics must be bitwise identical
  // and the traced-off report must carry no phase stats.
  auto config = trace_config();
  std::vector<float> traced_x, plain_x;
  std::uint64_t traced_events = 0;
  for (bool enabled : {true, false}) {
    config.trace.enabled = enabled;
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      SimContext ctx(config.threads);
      Simulation sim(ctx, comm, config);
      sim.initialize();
      for (int s = 0; s < config.num_pm_steps; ++s) {
        const auto report = sim.step();
        EXPECT_EQ(report.phases.empty(), !enabled);
      }
      if (enabled) {
        traced_x = sim.particles().x;
        traced_events = sim.trace().events_recorded();
      } else {
        plain_x = sim.particles().x;
        EXPECT_EQ(sim.trace().events_recorded(), 0u);
      }
    });
  }
  EXPECT_GT(traced_events, 0u);
  EXPECT_EQ(traced_x, plain_x);
}

}  // namespace
}  // namespace crkhacc::core
