// Differential correctness harness for the kSimd launch schedule.
//
// The contract under test (gpu/simd.h, gpu/warp_simd.h): with the default
// SimdMath::kExact policy, kSimd launches are BITWISE identical to the
// serial scalar driver — for every kernel with a SIMD form, every
// power-of-two warp size, every thread count, and every leaf geometry
// (ragged chunks, single leaves, empty pair lists). The explicitly-gated
// SimdMath::kFused mode trades that identity for real FMA and must stay
// within a per-field ULP bound, reported here as a histogram.
//
// The harness layers:
//   1. lane-primitive goldens (rotate/reduce/select/min/max/neg, signed
//      zeros included) pinning gpu/simd.h on both backends;
//   2. an order-SENSITIVE kernel (non-commutative accumulator) driven
//      through the real launch drivers, so any deviation in rotation
//      order, diagonal skip, or kI/kJ one-sided walks changes bits;
//   3. the four production kernels (density, CRK moments, momentum-
//      energy, short-range gravity with and without a ForceSplit) run
//      through serial / leaf-owner / deferred-store / kSimd and compared
//      byte-for-byte, with LaunchStats parity;
//   4. the ULP gate for kFused;
//   5. config validation and param-file parsing for the simd knobs.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "core/param_file.h"
#include "core/particles.h"
#include "core/simulation.h"
#include "gpu/device.h"
#include "gpu/launch.h"
#include "gpu/simd.h"
#include "gpu/warp.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "sph/pair_kernels.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace crkhacc::gpu {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

std::uint32_t bits_of(float x) { return std::bit_cast<std::uint32_t>(x); }

/// ULP distance via the ordered-integer mapping (sign-magnitude floats
/// folded onto a monotone number line). Bitwise-equal floats are 0; +0
/// and -0 are 1 apart (a real difference under the bitwise contract).
std::uint64_t ulp_diff(float a, float b) {
  if (bits_of(a) == bits_of(b)) return 0;
  if (std::isnan(a) || std::isnan(b)) return ~0ull;
  const auto ordered = [](float x) -> std::int64_t {
    const auto u = static_cast<std::int64_t>(bits_of(x));
    return (u & 0x80000000ll) ? (0x80000000ll - u) : u;
  };
  const std::int64_t d = ordered(a) - ordered(b);
  return static_cast<std::uint64_t>(d < 0 ? -d : d);
}

void expect_bitwise_eq(const std::vector<float>& a, const std::vector<float>& b,
                       const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (bits_of(a[i]) != bits_of(b[i])) {
      ADD_FAILURE() << label << " diverges at index " << i << ": "
                    << a[i] << " (0x" << std::hex << bits_of(a[i]) << ") vs "
                    << b[i] << " (0x" << bits_of(b[i]) << std::dec << "), "
                    << ulp_diff(a[i], b[i]) << " ulp";
      return;  // one detailed failure per field is enough
    }
  }
}

void expect_counter_parity(const LaunchStats& a, const LaunchStats& b,
                           const char* label) {
  EXPECT_EQ(a.interactions, b.interactions) << label;
  EXPECT_EQ(a.global_loads, b.global_loads) << label;
  EXPECT_EQ(a.partial_evals, b.partial_evals) << label;
  EXPECT_EQ(a.stores, b.stores) << label;
  EXPECT_DOUBLE_EQ(a.flops, b.flops) << label;
}

// --- 1. lane-primitive goldens ----------------------------------------------

TEST(SimdPrimitives, IotaBroadcastExtract) {
  namespace v = simd;
  const v::vfloat i = v::iota();
  for (std::uint32_t l = 0; l < v::kWidth; ++l) {
    EXPECT_EQ(v::extract(i, l), static_cast<float>(l));
  }
  const v::vfloat c = v::broadcast(3.25f);
  for (std::uint32_t l = 0; l < v::kWidth; ++l) {
    EXPECT_EQ(v::extract(c, l), 3.25f);
  }
}

TEST(SimdPrimitives, RotateGolden) {
  namespace v = simd;
  alignas(32) float in[v::kWidth];
  for (std::uint32_t l = 0; l < v::kWidth; ++l) {
    in[l] = 10.0f + static_cast<float>(l);
  }
  const v::vfloat a = v::load_aligned(in);
  for (std::uint32_t n = 0; n <= v::kWidth; ++n) {
    const v::vfloat r = v::rotate(a, n);
    for (std::uint32_t l = 0; l < v::kWidth; ++l) {
      EXPECT_EQ(v::extract(r, l), in[(l + n) % v::kWidth])
          << "rotate by " << n << " lane " << l;
    }
  }
}

TEST(SimdPrimitives, ReduceAddIsStrictlySequential) {
  namespace v = simd;
  // Values chosen so every reassociation changes the result: the golden
  // is the literal l0 + l1 + ... + l7 left fold.
  alignas(32) float in[v::kWidth] = {1e8f,  1.0f,  -1e8f, 3.0f,
                                     0.25f, 1e-3f, 7.0f,  -2.5f};
  float expected = in[0];
  for (std::uint32_t l = 1; l < v::kWidth; ++l) expected += in[l];
  EXPECT_EQ(bits_of(v::reduce_add(v::load_aligned(in))), bits_of(expected));
}

TEST(SimdPrimitives, NegFlipsSignBitOnly) {
  namespace v = simd;
  alignas(32) float in[v::kWidth] = {0.0f, -0.0f, 1.5f, -2.25f,
                                     1e-38f, -1e38f, 42.0f, -0.5f};
  const v::vfloat n = v::neg(v::load_aligned(in));
  for (std::uint32_t l = 0; l < v::kWidth; ++l) {
    EXPECT_EQ(bits_of(v::extract(n, l)), bits_of(in[l]) ^ 0x80000000u)
        << "lane " << l;
  }
  // In particular neg(+0) == -0 and neg(-0) == +0, which 0 - x gets wrong.
  EXPECT_EQ(bits_of(v::extract(n, 0)), bits_of(-0.0f));
  EXPECT_EQ(bits_of(v::extract(n, 1)), bits_of(0.0f));
}

TEST(SimdPrimitives, MinMaxFollowStdSemantics) {
  namespace v = simd;
  // std::min(a, b) = (b < a) ? b : a and std::max(a, b) = (a < b) ? b : a.
  // The signed-zero and NaN rows are exactly where minps/maxps differ.
  const float cases[][2] = {{0.0f, -0.0f}, {-0.0f, 0.0f}, {1.0f, 2.0f},
                            {2.0f, 1.0f},  {-3.0f, -3.0f},
                            {std::numeric_limits<float>::quiet_NaN(), 1.0f},
                            {1.0f, std::numeric_limits<float>::quiet_NaN()}};
  for (const auto& c : cases) {
    const v::vfloat a = v::broadcast(c[0]);
    const v::vfloat b = v::broadcast(c[1]);
    EXPECT_EQ(bits_of(v::extract(v::min_std(a, b), 0)),
              bits_of(std::min(c[0], c[1])))
        << "min(" << c[0] << ", " << c[1] << ")";
    EXPECT_EQ(bits_of(v::extract(v::max_std(a, b), 0)),
              bits_of(std::max(c[0], c[1])))
        << "max(" << c[0] << ", " << c[1] << ")";
  }
}

TEST(SimdPrimitives, SelectBlendsBitsUnderMask) {
  namespace v = simd;
  // A masked-off lane must KEEP the accumulator bits — blending -0.0f
  // over +0.0f and vice versa, never adding zero.
  alignas(32) float acc[v::kWidth] = {-0.0f, 0.0f, 1.0f, -1.0f,
                                      5.0f,  -5.0f, 0.5f, -0.5f};
  const v::vfloat a = v::load_aligned(acc);
  const v::vmask none = v::cmp_lt(v::broadcast(1.0f), v::vzero());
  const v::vmask all = v::cmp_lt(v::vzero(), v::broadcast(1.0f));
  const v::vfloat kept = v::select(none, v::broadcast(99.0f), a);
  const v::vfloat taken = v::select(all, v::broadcast(99.0f), a);
  for (std::uint32_t l = 0; l < v::kWidth; ++l) {
    EXPECT_EQ(bits_of(v::extract(kept, l)), bits_of(acc[l])) << "lane " << l;
    EXPECT_EQ(v::extract(taken, l), 99.0f) << "lane " << l;
  }
}

TEST(SimdPrimitives, MaskBitsAndPopcount) {
  namespace v = simd;
  const v::vmask m =
      v::cmp_lt(v::iota(), v::broadcast(3.0f));  // lanes 0, 1, 2 live
  EXPECT_EQ(v::mask_bits(m), 0b111u);
  EXPECT_EQ(v::popcount(m), 3u);
  // Stored mask round trip (the LaneArray liveness representation).
  simd::LaneArray stored;
  stored[0] = v::mask_on();
  stored[2] = v::mask_on();
  EXPECT_EQ(v::mask_bits(v::loadu_mask(stored.data())), 0b101u);
}

TEST(SimdPrimitives, MathPoliciesMatchScalarContracts) {
  namespace v = simd;
  const float a = 1.0000001f, b = 3.3333333f, c = -3.3333336f;
  // ExactMath: mul then add, two roundings — the scalar expression.
  EXPECT_EQ(bits_of(v::extract(
                v::ExactMath::madd(v::broadcast(a), v::broadcast(b),
                                   v::broadcast(c)),
                0)),
            bits_of(a * b + c));
  // FusedMath: single rounding — std::fma.
  EXPECT_EQ(bits_of(v::extract(
                v::FusedMath::madd(v::broadcast(a), v::broadcast(b),
                                   v::broadcast(c)),
                0)),
            bits_of(std::fma(a, b, c)));
  EXPECT_STREQ(v::ExactMath::kName, "exact");
  EXPECT_STREQ(v::FusedMath::kName, "fused");
}

// --- 2. order-sensitive rotation kernel -------------------------------------

/// Kernel whose accumulator is deliberately NON-commutative:
/// acc = acc * k + tag_j, so the accumulated value encodes the exact
/// partner ORDER (and the store folds non-commutatively too, pinning the
/// per-particle store sequence). Any deviation in rotation order,
/// diagonal skip, or one-sided walk order changes the bits.
class RotationOrderKernel {
 public:
  static constexpr const char* kName = "test_rotation_order";
  static constexpr double kFlopsPerInteraction = 2.0;
  static constexpr double kFlopsPerPartial = 1.0;
  static constexpr float kFold = 1.0009765625f;  // 1 + 2^-10, exact

  struct State {
    float tag = 0.0f;
  };
  struct Partial {
    float tag = 0.0f;
  };
  struct Accum {
    float s = 0.0f;
  };

  RotationOrderKernel(const std::vector<float>& tags, std::vector<float>& out)
      : tags_(tags), out_(out) {}

  State load(std::uint32_t i) const { return State{tags_[i]}; }
  Partial partial(const State& s) const { return Partial{s.tag}; }
  void interact(const State&, const Partial&, const State&,
                const Partial& other_p, Accum& acc) const {
    acc.s = acc.s * kFold + other_p.tag;
  }
  void store(std::uint32_t i, const Accum& acc) {
    out_[i] = out_[i] * kFold + acc.s;
  }

  struct SimdLanes {
    simd::LaneArray tag;
    void set(std::uint32_t k, const State& s, const Partial&) {
      tag[k] = s.tag;
    }
  };
  struct SimdAccum {
    simd::vfloat s = simd::vzero();
    Accum lane(std::uint32_t l) const { return Accum{simd::extract(s, l)}; }
  };

  template <typename Math>
  void interact_simd(const SimdLanes&, std::uint32_t,
                     const SimdLanes& other, std::uint32_t ob,
                     simd::vmask live, SimdAccum& acc) const {
    namespace v = simd;
    const v::vfloat otag = v::loadu(other.tag.data() + ob);
    acc.s = v::select(live, Math::madd(acc.s, v::broadcast(kFold), otag),
                      acc.s);
  }

 private:
  const std::vector<float>& tags_;
  std::vector<float>& out_;
};

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box), 0, 0, 0,
                static_cast<float>(0.5 + rng.next_double()));
  }
  return p;
}

using PairList = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

std::vector<float> run_rotation_order(const Particles& p,
                                      const tree::ChainingMesh& mesh,
                                      const PairList& pairs,
                                      const LaunchConfig& config,
                                      util::ThreadPool* pool = nullptr,
                                      LaunchStats* stats_out = nullptr) {
  std::vector<float> tags(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    tags[i] = 1.0f + 0.001f * static_cast<float>(i);
  }
  std::vector<float> out(p.size(), 1.0f);
  RotationOrderKernel kernel(tags, out);
  const auto stats = launch_pair_kernel(kernel, mesh, pairs, config, pool);
  if (stats_out) *stats_out = stats;
  return out;
}

class RotationOrderTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RotationOrderTest, SimdPreservesScalarOperandOrder) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  const std::uint32_t warp_size = GetParam();
  util::ThreadPool pool(8);
  // Several geometries: ragged tiny leaves, chunk-sized leaves, and a
  // single leaf holding everything.
  for (const std::uint32_t leaf_size : {4u, 8u, 9u, 128u}) {
    const auto p = random_particles(97, 1.0, 1000 + leaf_size);
    tree::ChainingMesh mesh(cube(1.0), {2.0, leaf_size});
    mesh.build(p);
    const auto pairs = mesh.interaction_pairs(10.0);

    LaunchStats scalar_stats, simd_stats;
    const auto scalar = run_rotation_order(
        p, mesh, pairs, LaunchConfig{.warp_size = warp_size}, nullptr,
        &scalar_stats);
    const auto simd_serial = run_rotation_order(
        p, mesh, pairs,
        LaunchConfig{.warp_size = warp_size,
                     .schedule = LaunchSchedule::kSimd},
        nullptr, &simd_stats);
    const auto simd_pool = run_rotation_order(
        p, mesh, pairs,
        LaunchConfig{.warp_size = warp_size,
                     .schedule = LaunchSchedule::kSimd},
        &pool);
    expect_bitwise_eq(scalar, simd_serial, "simd serial vs scalar serial");
    expect_bitwise_eq(scalar, simd_pool, "simd @8 threads vs scalar serial");
    expect_counter_parity(scalar_stats, simd_stats,
                          "simd serial stats vs scalar");
  }
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, RotationOrderTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u));

// --- 3. production-kernel differential harness -------------------------------

/// Gas fixture with every scratch field the SPH kernels read populated
/// deterministically (no physics pipeline needed for a differential
/// test — only identical inputs across schedules).
struct GasFixture {
  Particles p;
  sph::SphScratch scratch;
  tree::ChainingMesh mesh;
  PairList pairs;

  GasFixture(std::size_t n_per_dim, double box, std::uint32_t leaf_size,
             std::uint64_t seed)
      : mesh(cube(box), {2.0, leaf_size}) {
    SplitMix64 rng(seed);
    const double cell = box / static_cast<double>(n_per_dim);
    std::uint64_t id = 0;
    for (std::size_t iz = 0; iz < n_per_dim; ++iz) {
      for (std::size_t iy = 0; iy < n_per_dim; ++iy) {
        for (std::size_t ix = 0; ix < n_per_dim; ++ix) {
          const auto jig = [&] {
            return 0.45 * cell * (rng.next_double() - 0.5);
          };
          const auto vel = [&] {
            return static_cast<float>(2.0 * (rng.next_double() - 0.5));
          };
          const std::size_t i = p.push_back(
              id++, Species::kGas,
              static_cast<float>((ix + 0.5) * cell + jig()),
              static_cast<float>((iy + 0.5) * cell + jig()),
              static_cast<float>((iz + 0.5) * cell + jig()), vel(), vel(),
              vel(), 1.0f);
          p.hsml[i] = static_cast<float>(1.4 * cell);
          p.u[i] = 100.0f;
        }
      }
    }
    scratch.resize(p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float rho = static_cast<float>(0.7 + 0.6 * rng.next_double());
      p.rho[i] = rho;
      scratch.volume[i] = p.mass[i] / rho;
      scratch.press[i] = (2.0f / 3.0f) * rho * p.u[i];
      scratch.cs[i] = std::sqrt(10.0f / 9.0f * p.u[i]);
      scratch.crk_a[i] = static_cast<float>(0.9 + 0.2 * rng.next_double());
      for (int d = 0; d < 3; ++d) {
        scratch.crk_b[i][d] =
            static_cast<float>(0.1 * (rng.next_double() - 0.5));
      }
    }
    mesh.build(p);
    pairs = mesh.interaction_pairs(10.0);
  }
};

/// One snapshot of a kernel's accumulated output fields, flattened into
/// named float vectors for byte comparison and ULP accounting.
using FieldSnapshot = std::vector<std::pair<std::string, std::vector<float>>>;

FieldSnapshot run_density(GasFixture& f, const LaunchConfig& config,
                          util::ThreadPool* pool, LaunchStats* stats_out) {
  const std::vector<float> rho_in = f.p.rho;  // restored below
  std::fill(f.p.rho.begin(), f.p.rho.end(), 0.0f);
  std::fill(f.scratch.nnbr.begin(), f.scratch.nnbr.end(), 0.0f);
  sph::DensityKernel kernel(f.p, f.scratch, nullptr);
  const auto stats = launch_pair_kernel(kernel, f.mesh, f.pairs, config, pool);
  if (stats_out) *stats_out = stats;
  FieldSnapshot snap{{"rho", f.p.rho}, {"nnbr", f.scratch.nnbr}};
  f.p.rho = rho_in;
  return snap;
}

FieldSnapshot run_moments(GasFixture& f, const LaunchConfig& config,
                          util::ThreadPool* pool, LaunchStats* stats_out) {
  std::fill(f.scratch.moments.begin(), f.scratch.moments.end(),
            sph::CrkMoments{});
  sph::CrkMomentKernel kernel(f.p, f.scratch, nullptr);
  const auto stats = launch_pair_kernel(kernel, f.mesh, f.pairs, config, pool);
  if (stats_out) *stats_out = stats;
  std::vector<float> m0, m1, m2;
  for (const auto& m : f.scratch.moments) {
    m0.push_back(m.m0);
    for (int d = 0; d < 3; ++d) m1.push_back(m.m1[d]);
    for (int d = 0; d < 6; ++d) m2.push_back(m.m2[d]);
  }
  return {{"m0", std::move(m0)}, {"m1", std::move(m1)}, {"m2", std::move(m2)}};
}

FieldSnapshot run_momentum(GasFixture& f, const LaunchConfig& config,
                           util::ThreadPool* pool, LaunchStats* stats_out) {
  std::fill(f.p.ax.begin(), f.p.ax.end(), 0.0f);
  std::fill(f.p.ay.begin(), f.p.ay.end(), 0.0f);
  std::fill(f.p.az.begin(), f.p.az.end(), 0.0f);
  std::fill(f.p.du.begin(), f.p.du.end(), 0.0f);
  std::fill(f.scratch.vsig.begin(), f.scratch.vsig.end(), 0.0f);
  sph::MomentumEnergyKernel kernel(f.p, f.scratch, nullptr,
                                   sph::ViscosityParams{});
  const auto stats = launch_pair_kernel(kernel, f.mesh, f.pairs, config, pool);
  if (stats_out) *stats_out = stats;
  return {{"ax", f.p.ax},
          {"ay", f.p.ay},
          {"az", f.p.az},
          {"du", f.p.du},
          {"vsig", f.scratch.vsig}};
}

FieldSnapshot run_gravity(Particles& p, const tree::ChainingMesh& mesh,
                          const PairList& pairs,
                          const mesh::ForceSplit* split,
                          const LaunchConfig& config, util::ThreadPool* pool,
                          LaunchStats* stats_out) {
  std::fill(p.ax.begin(), p.ax.end(), 0.0f);
  std::fill(p.ay.begin(), p.ay.end(), 0.0f);
  std::fill(p.az.begin(), p.az.end(), 0.0f);
  gravity::ShortRangeKernel kernel(p, nullptr, split, 1.0f, 0.05f, 1.9f);
  const auto stats = launch_pair_kernel(kernel, mesh, pairs, config, pool);
  if (stats_out) *stats_out = stats;
  return {{"ax", p.ax}, {"ay", p.ay}, {"az", p.az}};
}

void expect_snapshot_bitwise_eq(const FieldSnapshot& a, const FieldSnapshot& b,
                                const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].first, b[k].first) << label;
    expect_bitwise_eq(a[k].second, b[k].second,
                      (label + " field " + a[k].first).c_str());
  }
}

/// The full differential sweep for one runner: serial scalar baseline vs
/// kSimd serial, kSimd @8 threads, leaf-owner @8, deferred-store @8 —
/// all bitwise — plus counter parity for the kSimd serial run.
template <typename Runner>
void differential_sweep(Runner&& run, std::uint32_t warp_size,
                        const std::string& label) {
  util::ThreadPool pool(8);
  LaunchStats scalar_stats, simd_stats;
  const auto scalar =
      run(LaunchConfig{.warp_size = warp_size}, nullptr, &scalar_stats);
  const auto simd_serial = run(
      LaunchConfig{.warp_size = warp_size, .schedule = LaunchSchedule::kSimd},
      nullptr, &simd_stats);
  const auto simd_pool = run(
      LaunchConfig{.warp_size = warp_size, .schedule = LaunchSchedule::kSimd},
      &pool, nullptr);
  const auto owner_pool =
      run(LaunchConfig{.warp_size = warp_size,
                       .schedule = LaunchSchedule::kLeafOwner},
          &pool, nullptr);
  const auto deferred_pool =
      run(LaunchConfig{.warp_size = warp_size,
                       .schedule = LaunchSchedule::kDeferredStore},
          &pool, nullptr);
  expect_snapshot_bitwise_eq(scalar, simd_serial, label + " simd serial");
  expect_snapshot_bitwise_eq(scalar, simd_pool, label + " simd @8");
  expect_snapshot_bitwise_eq(scalar, owner_pool, label + " leaf-owner @8");
  expect_snapshot_bitwise_eq(scalar, deferred_pool,
                             label + " deferred-store @8");
  expect_counter_parity(scalar_stats, simd_stats, (label + " stats").c_str());
}

class SimdDifferentialTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(SimdDifferentialTest, DensityBitwiseAcrossSchedules) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  const std::uint32_t warp = GetParam();
  GasFixture f(6, 6.0, 16, 51);
  differential_sweep(
      [&](const LaunchConfig& c, util::ThreadPool* pool, LaunchStats* s) {
        return run_density(f, c, pool, s);
      },
      warp, "density w" + std::to_string(warp));
}

TEST_P(SimdDifferentialTest, CrkMomentsBitwiseAcrossSchedules) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  const std::uint32_t warp = GetParam();
  GasFixture f(6, 6.0, 16, 52);
  differential_sweep(
      [&](const LaunchConfig& c, util::ThreadPool* pool, LaunchStats* s) {
        return run_moments(f, c, pool, s);
      },
      warp, "moments w" + std::to_string(warp));
}

TEST_P(SimdDifferentialTest, MomentumEnergyBitwiseAcrossSchedules) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  const std::uint32_t warp = GetParam();
  GasFixture f(6, 6.0, 16, 53);
  differential_sweep(
      [&](const LaunchConfig& c, util::ThreadPool* pool, LaunchStats* s) {
        return run_momentum(f, c, pool, s);
      },
      warp, "momentum w" + std::to_string(warp));
}

TEST_P(SimdDifferentialTest, GravityBitwiseAcrossSchedules) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  const std::uint32_t warp = GetParam();
  auto p = random_particles(250, 6.0, 54);
  tree::ChainingMesh mesh(cube(6.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  // Newtonian (fully vectorized) and split (per-lane scalar erfc factor).
  const mesh::ForceSplit split(0.5);
  for (const mesh::ForceSplit* s : {static_cast<const mesh::ForceSplit*>(
                                        nullptr),
                                    &split}) {
    differential_sweep(
        [&](const LaunchConfig& c, util::ThreadPool* pool, LaunchStats* st) {
          return run_gravity(p, mesh, pairs, s, c, pool, st);
        },
        GetParam(),
        std::string("gravity ") + (s ? "split" : "newtonian") + " w" +
            std::to_string(warp));
  }
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, SimdDifferentialTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 64u));

TEST(SimdDifferential, WendlandDensityBitwise) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  GasFixture f(5, 5.0, 16, 55);
  util::ThreadPool pool(8);
  const auto run = [&](const LaunchConfig& c, util::ThreadPool* p) {
    const std::vector<float> rho_in = f.p.rho;
    std::fill(f.p.rho.begin(), f.p.rho.end(), 0.0f);
    std::fill(f.scratch.nnbr.begin(), f.scratch.nnbr.end(), 0.0f);
    sph::DensityKernelT<sph::WendlandC4> kernel(f.p, f.scratch, nullptr);
    launch_pair_kernel(kernel, f.mesh, f.pairs, c, p);
    FieldSnapshot snap{{"rho", f.p.rho}, {"nnbr", f.scratch.nnbr}};
    f.p.rho = rho_in;
    return snap;
  };
  const auto scalar = run(LaunchConfig{.warp_size = 16}, nullptr);
  const auto simd_serial = run(
      LaunchConfig{.warp_size = 16, .schedule = LaunchSchedule::kSimd},
      nullptr);
  const auto simd_pool = run(
      LaunchConfig{.warp_size = 16, .schedule = LaunchSchedule::kSimd}, &pool);
  expect_snapshot_bitwise_eq(scalar, simd_serial, "wendland simd serial");
  expect_snapshot_bitwise_eq(scalar, simd_pool, "wendland simd @8");
}

TEST(SimdDifferential, EdgeGeometries) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  util::ThreadPool pool(8);
  // (particle count, leaf_size): fewer particles than a vector, leaf
  // sizes of w / w + 1 against warp 16 (w = 8 = simd::kWidth), the
  // minimum leaf capacity, and a single leaf holding everything.
  const std::pair<std::size_t, std::uint32_t> cases[] = {
      {3, 16}, {13, 4}, {40, 8}, {40, 9}, {90, 128}};
  for (const auto& [n, leaf_size] : cases) {
    auto p = random_particles(n, 1.0, 60 + leaf_size);
    tree::ChainingMesh mesh(cube(1.0), {2.0, leaf_size});
    mesh.build(p);
    const auto pairs = mesh.interaction_pairs(10.0);
    const auto label = "gravity n" + std::to_string(n) + " leaf" +
                       std::to_string(leaf_size);
    differential_sweep(
        [&](const LaunchConfig& c, util::ThreadPool* pl, LaunchStats* st) {
          return run_gravity(p, mesh, pairs, nullptr, c, pl, st);
        },
        16, label);
  }
}

TEST(SimdDifferential, EmptyPairList) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  auto p = random_particles(32, 1.0, 70);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const PairList no_pairs;
  util::ThreadPool pool(8);
  LaunchStats stats;
  const auto snap = run_gravity(
      p, mesh, no_pairs, nullptr,
      LaunchConfig{.schedule = LaunchSchedule::kSimd}, &pool, &stats);
  EXPECT_EQ(stats.interactions, 0u);
  EXPECT_EQ(stats.stores, 0u);
  for (const auto& [name, field] : snap) {
    for (const float v : field) EXPECT_EQ(bits_of(v), 0u) << name;
  }
}

TEST(SimdDifferential, RegisterBytesReflectLaneBuffers) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  GasFixture f(4, 4.0, 16, 71);
  LaunchStats scalar_stats, simd_stats;
  run_density(f, LaunchConfig{}, nullptr, &scalar_stats);
  run_density(f, LaunchConfig{.schedule = LaunchSchedule::kSimd}, nullptr,
              &simd_stats);
  EXPECT_EQ(simd_stats.register_bytes_per_thread,
            2 * sizeof(sph::DensityKernel::SimdLanes) +
                sizeof(sph::DensityKernel::SimdAccum));
  EXPECT_EQ(scalar_stats.register_bytes_per_thread,
            sizeof(sph::DensityKernel::State) +
                sizeof(sph::DensityKernel::Partial) +
                sizeof(sph::DensityKernel::Accum));
}

// --- 4. the ULP gate for SimdMath::kFused ------------------------------------

/// Max acceptable error of any accumulated field between the kFused
/// vector kernels and the scalar baseline, measured in ulps OF THE
/// FIELD'S ACCUMULATION SCALE (its max magnitude). Pointwise ULP
/// distance is the wrong gate for cancellation-dominated sums —
/// accelerations and the antisymmetric CRK moments accumulate positive
/// and negative contributions that nearly cancel, so a near-zero result
/// can sit thousands of (denormal-tiny) ulps from the baseline while the
/// absolute error stays far below one ulp of any contribution. FMA is
/// single-rounded, so per-interaction drift is < 1 scale-ulp; measured
/// maxima on these fixtures are <= 3, and the gate leaves headroom for
/// seed and fixture drift without ever admitting a real divergence.
constexpr double kFusedScaleUlpGate = 16.0;

void expect_ulp_bounded(const FieldSnapshot& scalar, const FieldSnapshot& fused,
                        const std::string& label) {
  ASSERT_EQ(scalar.size(), fused.size());
  for (std::size_t k = 0; k < scalar.size(); ++k) {
    const auto& a = scalar[k].second;
    const auto& b = fused[k].second;
    ASSERT_EQ(a.size(), b.size());
    float scale = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_FALSE(std::isnan(a[i]) || std::isnan(b[i]))
          << label << " field " << scalar[k].first << " index " << i;
      scale = std::max({scale, std::fabs(a[i]), std::fabs(b[i])});
    }
    const float scale_ulp =
        scale > 0.0f
            ? std::nextafterf(scale, std::numeric_limits<float>::infinity()) -
                  scale
            : 1.0f;
    // Pointwise ULP histogram (reported, not gated):
    // buckets 0, 1, 2, <=4, <=8, <=16, <=32, <=64, >64.
    std::uint64_t hist[9] = {};
    std::uint64_t max_ulp = 0;
    double max_scale_ulp = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      const std::uint64_t d = ulp_diff(a[i], b[i]);
      max_ulp = std::max(max_ulp, d);
      max_scale_ulp = std::max(
          max_scale_ulp, std::fabs(static_cast<double>(a[i]) - b[i]) /
                             static_cast<double>(scale_ulp));
      int bucket = 0;
      if (d <= 2) {
        bucket = static_cast<int>(d);
      } else {
        bucket = 3;
        for (std::uint64_t edge = 4; bucket < 8 && d > edge; edge *= 2) {
          ++bucket;
        }
      }
      ++hist[bucket];
    }
    std::printf(
        "[ulp] %-18s %-5s scale-ulp %7.2f pointwise max %6llu | 0:%llu "
        "1:%llu 2:%llu <=4:%llu <=8:%llu <=16:%llu <=32:%llu <=64:%llu "
        ">64:%llu\n",
        label.c_str(), scalar[k].first.c_str(), max_scale_ulp,
        static_cast<unsigned long long>(max_ulp),
        static_cast<unsigned long long>(hist[0]),
        static_cast<unsigned long long>(hist[1]),
        static_cast<unsigned long long>(hist[2]),
        static_cast<unsigned long long>(hist[3]),
        static_cast<unsigned long long>(hist[4]),
        static_cast<unsigned long long>(hist[5]),
        static_cast<unsigned long long>(hist[6]),
        static_cast<unsigned long long>(hist[7]),
        static_cast<unsigned long long>(hist[8]));
    EXPECT_LE(max_scale_ulp, kFusedScaleUlpGate)
        << label << " field " << scalar[k].first;
  }
}

TEST(SimdFusedMath, UlpBoundedAgainstScalar) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  GasFixture f(6, 6.0, 16, 80);
  const LaunchConfig scalar_cfg{.warp_size = 16};
  const LaunchConfig fused_cfg{.warp_size = 16,
                               .schedule = LaunchSchedule::kSimd,
                               .simd_math = SimdMath::kFused};
  expect_ulp_bounded(run_density(f, scalar_cfg, nullptr, nullptr),
                     run_density(f, fused_cfg, nullptr, nullptr), "density");
  expect_ulp_bounded(run_moments(f, scalar_cfg, nullptr, nullptr),
                     run_moments(f, fused_cfg, nullptr, nullptr), "moments");
  expect_ulp_bounded(run_momentum(f, scalar_cfg, nullptr, nullptr),
                     run_momentum(f, fused_cfg, nullptr, nullptr), "momentum");

  auto gp = random_particles(250, 6.0, 81);
  tree::ChainingMesh gmesh(cube(6.0), {2.0, 16});
  gmesh.build(gp);
  const auto gpairs = gmesh.interaction_pairs(10.0);
  expect_ulp_bounded(
      run_gravity(gp, gmesh, gpairs, nullptr, scalar_cfg, nullptr, nullptr),
      run_gravity(gp, gmesh, gpairs, nullptr, fused_cfg, nullptr, nullptr),
      "gravity");
}

TEST(SimdFusedMath, FusedStaysDeterministicAcrossThreads) {
  if (!simd::kAvailable) GTEST_SKIP() << "SIMD disabled in this build";
  // kFused gives up scalar parity, NOT determinism: serial and 8-thread
  // fused launches must still agree bitwise.
  GasFixture f(6, 6.0, 16, 82);
  util::ThreadPool pool(8);
  const LaunchConfig fused_cfg{.warp_size = 16,
                               .schedule = LaunchSchedule::kSimd,
                               .simd_math = SimdMath::kFused};
  const auto serial = run_momentum(f, fused_cfg, nullptr, nullptr);
  const auto pooled = run_momentum(f, fused_cfg, &pool, nullptr);
  expect_snapshot_bitwise_eq(serial, pooled, "fused serial vs @8");
}

// --- 5. config validation, device surface, param parsing ---------------------

TEST(SimdConfigValidation, RejectsUnsupportedCombinations) {
  LaunchConfig config{.schedule = LaunchSchedule::kSimd};
  if (!simd::kAvailable) {
    ASSERT_NE(config.invalid_reason(), nullptr);
    EXPECT_NE(std::string(config.invalid_reason()).find("SIMD"),
              std::string::npos);
    return;
  }
  EXPECT_EQ(config.invalid_reason(), nullptr);
  config.mode = LaunchMode::kNaive;
  EXPECT_NE(config.invalid_reason(), nullptr);
  config.mode = LaunchMode::kWarpSplit;
  for (const std::uint32_t bad : {3u, 6u, 10u, 24u}) {
    config.warp_size = bad;
    EXPECT_NE(config.invalid_reason(), nullptr) << "warp_size " << bad;
  }
  for (const std::uint32_t good : {2u, 4u, 8u, 16u, 32u, 64u}) {
    config.warp_size = good;
    EXPECT_EQ(config.invalid_reason(), nullptr) << "warp_size " << good;
  }
  // The other schedules still accept non-power-of-two warps.
  config = LaunchConfig{.warp_size = 6};
  EXPECT_EQ(config.invalid_reason(), nullptr);
}

TEST(SimdSupportSurface, ReportsCompiledBackend) {
  const SimdSupport& support = simd_support();
  EXPECT_EQ(support.available, simd::kAvailable);
  EXPECT_STREQ(support.isa, simd::kIsaName);
  if (support.available) {
    EXPECT_EQ(support.width, static_cast<int>(simd::kWidth));
    EXPECT_TRUE(std::string(support.isa) == "avx2" ||
                std::string(support.isa) == "scalar");
  } else {
    EXPECT_EQ(support.width, 0);
    EXPECT_STREQ(support.isa, "none");
  }
}

TEST(SimdParamFile, LaunchScheduleSimdKey) {
  const auto params = core::ParamFile::parse("launch_schedule = simd\n");
  ASSERT_TRUE(params.has_value());
  core::SimConfig config;
  const auto flagged = params->apply(config);
  if (simd::kAvailable) {
    EXPECT_TRUE(flagged.empty());
    EXPECT_EQ(config.sph.launch.schedule, LaunchSchedule::kSimd);
    EXPECT_EQ(config.gravity.launch.schedule, LaunchSchedule::kSimd);
  } else {
    // Warn-once + keep-previous: the run proceeds on the old schedule.
    ASSERT_EQ(flagged.size(), 1u);
    EXPECT_EQ(config.sph.launch.schedule, LaunchSchedule::kLeafOwner);
  }
}

TEST(SimdParamFile, SimdMathKey) {
  core::SimConfig config;
  const auto fused = core::ParamFile::parse("simd_math = fused\n");
  ASSERT_TRUE(fused.has_value());
  EXPECT_TRUE(fused->apply(config).empty());
  EXPECT_EQ(config.sph.launch.simd_math, SimdMath::kFused);
  EXPECT_EQ(config.gravity.launch.simd_math, SimdMath::kFused);

  const auto exact = core::ParamFile::parse("simd_math = exact\n");
  ASSERT_TRUE(exact.has_value());
  EXPECT_TRUE(exact->apply(config).empty());
  EXPECT_EQ(config.sph.launch.simd_math, SimdMath::kExact);

  // Rejected values keep the previous policy and flag the key.
  config.sph.launch.simd_math = SimdMath::kFused;
  const auto bogus = core::ParamFile::parse("simd_math = sloppy\n");
  ASSERT_TRUE(bogus.has_value());
  EXPECT_EQ(bogus->apply(config).size(), 1u);
  EXPECT_EQ(config.sph.launch.simd_math, SimdMath::kFused);
}

}  // namespace
}  // namespace crkhacc::gpu
