// Paged, CRC32-verified, double-buffered in-memory snapshots.
//
// The SDC guardrail layer (core/sdc.h) snapshots rank-local particle
// state at every PM-step boundary so a failed post-step audit can roll
// the step back and replay it. This is the storage primitive: a set of
// byte regions copied into one contiguous buffer, checksummed per page
// (CRC32, util/crc32) so corruption of the *snapshot itself* — the same
// silent bit flips the snapshot exists to defend against — is detected
// before a restore can spread it back into live state.
//
// Captures are double-buffered: a new capture fills the inactive buffer
// and only then becomes the active one, so the previous snapshot stays
// intact until its replacement is complete. Buffers are reused across
// captures (no steady-state allocation once sizes stabilize).
//
// The differential-checkpoint layer (io/column_file.h) reuses the same
// page-CRC machinery in `align_regions` mode: every region starts on a
// page boundary (zero padding in between), so each page belongs to
// exactly one region and the page index doubles as a column chunk
// index. changed_pages() then diffs the active capture's page CRCs
// against the previous capture's, which is exactly the "which chunks
// moved since the last checkpoint" signal a differential write needs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace crkhacc::util {

class PagedSnapshot {
 public:
  /// A source byte region to capture (one SoA field, typically).
  struct Region {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };
  /// A destination byte region for restore; sizes must match the capture.
  struct MutableRegion {
    void* data = nullptr;
    std::size_t bytes = 0;
  };

  static constexpr std::size_t kDefaultPageBytes = 64 * 1024;

  /// `align_regions` starts every region on a page boundary (the gap is
  /// zero-filled), so a page never straddles two regions and the page
  /// index maps 1:1 onto a per-region chunk index. The default packed
  /// layout is unchanged for existing users (SDC guardrails).
  explicit PagedSnapshot(std::size_t page_bytes = kDefaultPageBytes,
                         bool align_regions = false);

  /// Copy `regions` into the inactive buffer, stamp per-page CRCs, and
  /// make it the active capture. The previously active capture remains
  /// valid until this returns.
  void capture(std::span<const Region> regions);

  /// True once capture() has completed at least once.
  bool valid() const { return active_ >= 0; }

  /// Recompute every page CRC of the active capture and compare against
  /// the values stamped at capture time. False = the snapshot buffer
  /// itself was corrupted.
  bool verify() const;

  /// Verify, then copy the active capture back out into `regions`.
  /// Region count and sizes must match the capture exactly (CHECK —
  /// a mismatch is a caller bug, not data corruption). Returns false
  /// without writing anything if verification fails.
  bool restore(std::span<const MutableRegion> regions) const;

  std::size_t page_bytes() const { return page_bytes_; }
  /// Payload bytes / page count / region count of the active capture.
  std::size_t bytes() const;
  std::size_t pages() const;
  std::size_t num_regions() const;
  std::size_t region_bytes(std::size_t r) const;

  /// Per-page CRC32s of the active capture.
  std::span<const std::uint32_t> page_crcs() const;

  /// First page index / page count of region `r` in the active capture.
  /// Requires `align_regions` mode (CHECK), where the mapping is exact.
  std::size_t region_first_page(std::size_t r) const;
  std::size_t region_num_pages(std::size_t r) const;

  /// One flag per page of the active capture: true = this page's CRC
  /// differs from the previous capture's. nullopt when there is no
  /// comparable previous capture (fewer than two captures, or the
  /// region layout changed between them) — callers must treat that as
  /// "everything changed".
  std::optional<std::vector<std::uint8_t>> changed_pages() const;

  /// Test hook: direct mutable access to the active capture's payload,
  /// for injecting snapshot-buffer corruption in tests.
  std::uint8_t* mutable_payload_for_test();

 private:
  struct Buffer {
    std::vector<std::uint8_t> data;
    std::vector<std::uint32_t> page_crc;
    std::vector<std::size_t> region_bytes;
    std::vector<std::size_t> region_offset;  ///< byte offset of each region
  };

  bool verify_buffer(const Buffer& buffer) const;

  std::size_t page_bytes_;
  bool align_regions_;
  Buffer buffers_[2];
  int active_ = -1;    ///< index of the valid capture; -1 = none yet
  int captures_ = 0;   ///< total completed captures (saturates at 2)
};

}  // namespace crkhacc::util
