// Linear matter power spectrum (Eisenstein & Hu 1998 transfer function).
//
// Used to generate Gaussian initial conditions with the correct large-scale
// statistics. The "no-wiggle" EH98 fit captures the CDM + baryon shape with
// the sound-horizon suppression; sigma8 sets the normalization.
#pragma once

#include "cosmology/background.h"

namespace crkhacc::cosmo {

class PowerSpectrum {
 public:
  /// Builds the transfer-function fit and normalizes to params.sigma8.
  explicit PowerSpectrum(const Parameters& params);

  /// EH98 no-wiggle transfer function T(k), k in h/Mpc.
  double transfer(double k) const;

  /// Linear matter power P(k) at z=0 in (Mpc/h)^3, k in h/Mpc.
  double operator()(double k) const;

  /// Dimensionless power Delta^2(k) = k^3 P(k) / (2 pi^2).
  double delta2(double k) const;

  /// RMS linear fluctuation in top-hat spheres of radius r [Mpc/h].
  double sigma(double r) const;

  double normalization() const { return norm_; }

 private:
  double sigma_unnormalized(double r) const;

  Parameters params_;
  // EH98 fit internals.
  double sound_horizon_;   ///< s [Mpc]
  double alpha_gamma_;
  double theta27_sq_;      ///< (T_cmb / 2.7)^2
  double norm_ = 1.0;
};

}  // namespace crkhacc::cosmo
