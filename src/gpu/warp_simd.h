// Vectorized warp-split tile drivers — the kSimd launch schedule engine.
//
// The scalar warp tile (gpu/warp.h) pairs i-lane l with j-lane
// m = (l + t) mod W at rotation step t; each accumulator therefore sees
// its partners in a fixed, serial order. This engine evaluates
// simd::kWidth of those lanes per instruction while preserving exactly
// that per-accumulator order, which is what makes kSimd bitwise identical
// to the serial scalar driver (with SimdMath::kExact):
//
//  * Lane buffers are padded SoA arrays with modulo replication: slot k
//    holds lane (k mod w), so slots [base + t, base + t + kWidth) are the
//    rotated partners of self lanes [base, base + kWidth) — the GPU
//    "shuffle" becomes one contiguous unaligned vector load. (Proof:
//    slot (base + t) mod w + k holds lane ((base + t) mod w + k) mod w =
//    (base + k + t) mod w, the rotation partner of self lane base + k;
//    the index stays below w + kWidth <= kLaneSlots.)
//
//  * Ragged chunks and the self-interaction diagonal become lane masks:
//    a masked lane BLENDS its accumulator (keeps the old value) rather
//    than adding zero, so signed zeros and accumulation history match the
//    scalar skip exactly. The diagonal (l == m) occurs only at t = 0, so
//    same-chunk tiles simply start the rotation at t = 1.
//
//  * The one-sided tile walks of the leaf-owner schedule (TileSide::kI
//    forward wrap, TileSide::kJ backward wrap — see warp_tile's header
//    comment) ARE the rotation order, so the same rows routine serves
//    kBoth / kI / kJ with a direction flag; per-accumulator operand
//    sequences are unchanged from the scalar specializations.
//
// Kernels opt in by defining SimdLanes / SimdAccum / interact_simd (see
// the SimdPairKernel concept); kernels without a SIMD form run the scalar
// tiles under kSimd unchanged — still bitwise, just not vectorized.
#pragma once

#include <algorithm>
#include <bit>
#include <concepts>
#include <cstdint>

#include "gpu/launch.h"
#include "gpu/simd.h"
#include "tree/chaining_mesh.h"

namespace crkhacc::gpu::detail {

/// Which accumulator half of a tile is live. kBoth is the symmetric
/// evaluation of the serial driver; kI / kJ are the one-sided halves the
/// leaf-owner schedule splits a cross pair into. (Defined here, below
/// warp.h's includes, so both the scalar and SIMD drivers share it.)
enum class TileSide : std::uint8_t { kBoth, kI, kJ };

/// A pair kernel that ships a vector form: SoA lane storage, a vector
/// accumulator extractable per lane, and a masked vector interact. The
/// interact_simd member itself is templated on the SimdMath policy, so
/// the concept checks the types and the scalar surface it must mesh with.
template <typename Kernel>
concept SimdPairKernel = requires(const Kernel k, typename Kernel::SimdLanes& lanes,
                                  const typename Kernel::SimdAccum acc) {
  lanes.set(0u, typename Kernel::State{}, typename Kernel::Partial{});
  { acc.lane(0u) } -> std::same_as<typename Kernel::Accum>;
};

/// Padded SoA lane buffer of one half-warp chunk: the kernel's lane
/// fields plus the driver-owned liveness mask (slot k is live when
/// (k mod w) < n, stored as all-ones float bits for direct mask loads).
/// Replica slots (k >= w) and dead slots hold value-initialized State/
/// Partial, so vector arithmetic on them is ordinary IEEE math on zeros
/// (possibly producing inf/NaN) that the mask blends away — never
/// uninitialized reads.
template <typename Kernel>
struct SimdLaneBuffer {
  typename Kernel::SimdLanes lanes;
  simd::LaneArray live;
  const std::uint32_t* idx = nullptr;
  std::uint32_t n = 0;

  void fill(const Kernel& kernel, const std::uint32_t* indices,
            std::uint32_t count, std::uint32_t w, LaunchStats& stats) {
    idx = indices;
    n = count;
    const float on = simd::mask_on();
    // Slot k holds lane (k mod w); each lane is loaded ONCE and copied
    // into its replica slots (k >= w), so the replica padding costs
    // register traffic, not repeated gathers.
    for (std::uint32_t u = 0; u < w; ++u) {
      if (u < count) {
        const auto s = kernel.load(indices[u]);
        const auto p = kernel.partial(s);
        lanes.set(u, s, p);
        live[u] = on;
        for (std::uint32_t k = u + w; k < w + simd::kWidth; k += w) {
          lanes.set(k, s, p);
          live[k] = on;
        }
      } else {
        lanes.set(u, typename Kernel::State{}, typename Kernel::Partial{});
        live[u] = 0.0f;
        for (std::uint32_t k = u + w; k < w + simd::kWidth; k += w) {
          lanes.set(k, typename Kernel::State{}, typename Kernel::Partial{});
          live[k] = 0.0f;
        }
      }
    }
    // Accounting parity with the scalar LaneFile: one global load and one
    // partial evaluation per live lane (replica slots are register
    // traffic, not loads), so kSimd stats match the scalar schedules.
    stats.global_loads += count;
    stats.partial_evals += count;
  }
};

/// Accumulate every rotation step onto `self`'s lanes, kWidth lanes per
/// instruction, and store once per lane — one side of a warp tile.
/// forward = partner (l + t) mod w per step t (the i-side / kI order);
/// backward = partner (l - t) mod w (the j-side / kJ order). Starting at
/// t = 1 skips the same-chunk diagonal (l == m happens only at t = 0).
template <typename Math, typename Kernel>
void simd_accum_rows(Kernel& kernel, const SimdLaneBuffer<Kernel>& self,
                     const SimdLaneBuffer<Kernel>& other, std::uint32_t w,
                     bool backward, bool skip_diagonal, LaunchStats& stats) {
  for (std::uint32_t lb = 0; lb < self.n; lb += simd::kWidth) {
    typename Kernel::SimdAccum acc{};
    const simd::vmask self_live =
        simd::cmp_lt(simd::iota() + simd::broadcast(static_cast<float>(lb)),
                     simd::broadcast(static_cast<float>(self.n)));
    for (std::uint32_t t = skip_diagonal ? 1u : 0u; t < w; ++t) {
      const std::uint32_t ob = backward ? (lb + w - t) % w : (lb + t) % w;
      const simd::vmask live =
          self_live & simd::loadu_mask(other.live.data() + ob);
      kernel.template interact_simd<Math>(self.lanes, lb, other.lanes, ob,
                                          live, acc);
      stats.interactions += simd::popcount(live);
    }
    const std::uint32_t hi = std::min(lb + simd::kWidth, self.n);
    for (std::uint32_t l = lb; l < hi; ++l) {
      kernel.store(self.idx[l], acc.lane(l - lb));
    }
    stats.stores += hi - lb;
  }
}

/// One vector warp tile: the i-side rows always run (forward rotation);
/// the j-side rows run backward unless the tile is a chunk against
/// itself, mirroring warp_tile<kBoth>'s do_j / diagonal handling.
template <typename Math, typename Kernel>
void simd_warp_tile_both(Kernel& kernel, const SimdLaneBuffer<Kernel>& bi,
                         const SimdLaneBuffer<Kernel>& bj, std::uint32_t w,
                         bool same_chunk, LaunchStats& stats) {
  simd_accum_rows<Math>(kernel, bi, bj, w, /*backward=*/false,
                        /*skip_diagonal=*/same_chunk, stats);
  if (!same_chunk) {
    simd_accum_rows<Math>(kernel, bj, bi, w, /*backward=*/true,
                          /*skip_diagonal=*/false, stats);
  }
}

/// Both-sides vector evaluation of pair (leaf_a, leaf_b) — the kSimd
/// serial driver, chunk-loop structure identical to warp_split_pair.
template <typename Math, typename Kernel>
void simd_warp_split_pair(Kernel& kernel, const tree::ChainingMesh& cm,
                          std::uint32_t leaf_a, std::uint32_t leaf_b,
                          std::uint32_t warp_size, LaunchStats& stats) {
  const tree::Leaf& a = cm.leaf(leaf_a);
  const tree::Leaf& b = cm.leaf(leaf_b);
  const std::uint32_t* perm = cm.permutation().data();
  const std::uint32_t w = std::min(warp_size / 2, kMaxHalfWarp);
  const bool same_leaf = leaf_a == leaf_b;

  SimdLaneBuffer<Kernel> bi, bj;
  for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
    bi.fill(kernel, perm + ci, std::min(w, a.end - ci), w, stats);
    const std::uint32_t cj_begin = same_leaf ? ci : b.begin;
    for (std::uint32_t cj = cj_begin; cj < b.end; cj += w) {
      bj.fill(kernel, perm + cj, std::min(w, b.end - cj), w, stats);
      simd_warp_tile_both<Math>(kernel, bi, bj, w, same_leaf && ci == cj,
                                stats);
    }
  }
}

/// One-sided vector evaluation of cross pair (leaf_a, leaf_b): only the
/// `side` accumulators run. Chunk-loop structure (owner outermost, lane
/// buffer hoisted) identical to warp_split_pair_sided.
template <typename Math, typename Kernel>
void simd_warp_split_pair_sided(Kernel& kernel, const tree::ChainingMesh& cm,
                                std::uint32_t leaf_a, std::uint32_t leaf_b,
                                std::uint32_t warp_size, TileSide side,
                                LaunchStats& stats) {
  const tree::Leaf& a = cm.leaf(leaf_a);
  const tree::Leaf& b = cm.leaf(leaf_b);
  const std::uint32_t* perm = cm.permutation().data();
  const std::uint32_t w = std::min(warp_size / 2, kMaxHalfWarp);

  SimdLaneBuffer<Kernel> bi, bj;
  if (side == TileSide::kI) {
    for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
      bi.fill(kernel, perm + ci, std::min(w, a.end - ci), w, stats);
      for (std::uint32_t cj = b.begin; cj < b.end; cj += w) {
        bj.fill(kernel, perm + cj, std::min(w, b.end - cj), w, stats);
        simd_accum_rows<Math>(kernel, bi, bj, w, /*backward=*/false,
                              /*skip_diagonal=*/false, stats);
      }
    }
  } else {
    for (std::uint32_t cj = b.begin; cj < b.end; cj += w) {
      bj.fill(kernel, perm + cj, std::min(w, b.end - cj), w, stats);
      for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
        bi.fill(kernel, perm + ci, std::min(w, a.end - ci), w, stats);
        simd_accum_rows<Math>(kernel, bj, bi, w, /*backward=*/true,
                              /*skip_diagonal=*/false, stats);
      }
    }
  }
}

/// SimdMath policy dispatch for a both-sides pair.
template <typename Kernel>
void simd_pair(Kernel& kernel, const tree::ChainingMesh& cm,
               std::uint32_t leaf_a, std::uint32_t leaf_b,
               const LaunchConfig& config, LaunchStats& stats) {
  if (config.simd_math == SimdMath::kFused) {
    simd_warp_split_pair<simd::FusedMath>(kernel, cm, leaf_a, leaf_b,
                                          config.warp_size, stats);
  } else {
    simd_warp_split_pair<simd::ExactMath>(kernel, cm, leaf_a, leaf_b,
                                          config.warp_size, stats);
  }
}

/// SimdMath policy dispatch for a one-sided cross pair.
template <typename Kernel>
void simd_pair_sided(Kernel& kernel, const tree::ChainingMesh& cm,
                     std::uint32_t leaf_a, std::uint32_t leaf_b,
                     const LaunchConfig& config, TileSide side,
                     LaunchStats& stats) {
  if (config.simd_math == SimdMath::kFused) {
    simd_warp_split_pair_sided<simd::FusedMath>(kernel, cm, leaf_a, leaf_b,
                                                config.warp_size, side, stats);
  } else {
    simd_warp_split_pair_sided<simd::ExactMath>(kernel, cm, leaf_a, leaf_b,
                                                config.warp_size, side, stats);
  }
}

}  // namespace crkhacc::gpu::detail
