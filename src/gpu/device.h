// Device model: vendor specs, FLOP accounting, host peak calibration.
//
// The paper measures FP32 operations with vendor profilers (rocprof, ncu,
// GTPin) and reports device utilization = measured / theoretical peak
// (Table I, Fig. 6). Our substitute: kernels carry analytic FLOP counts
// (FMA = 2 ops, transcendental = 1, matching Section V-B), the launch
// drivers accumulate them into a FlopRegistry, and utilization is the
// achieved FLOP rate against a calibrated peak for this host — by default
// the measured FMA peak of one core, playing the role of the GPU's
// theoretical peak.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace crkhacc::gpu {

/// Table I of the paper plus the lane width each vendor's "warp" has.
struct DeviceSpec {
  std::string name;
  double peak_fp32_tflops;
  int warp_size;
};

/// The three devices of Table I (MI250X per GCD, PVC per tile, H100).
const std::vector<DeviceSpec>& known_devices();

/// What the kSimd launch schedule compiled down to on this host: the
/// instruction set chosen at configure time (gpu/simd.h) and its lane
/// width. `available` is false when the build disabled SIMD
/// (CRKHACC_ENABLE_SIMD=OFF) or the configure probe found no usable ISA.
struct SimdSupport {
  bool available;
  const char* isa;  ///< "avx2", "scalar", or "none"
  int width;        ///< vector lanes per op (8 for AVX2)
};

/// The host's compiled-in SIMD backend (static; never changes at run
/// time).
const SimdSupport& simd_support();

/// Measured FMA throughput of this host in GFLOP/s (cached after the
/// first call). Plays the role of the hardware peak in utilization
/// figures.
double host_peak_gflops();

/// Accumulates analytic FLOP counts per kernel name.
///
/// Like TimerRegistry, add() is unsynchronized: launches record their
/// totals on the calling thread after the parallel region completes, so
/// worker threads never mutate a registry.
class FlopRegistry {
 public:
  void add(const std::string& kernel, double flops, double seconds);

  double total_flops() const;
  double total_seconds() const;
  double flops_of(const std::string& kernel) const;

  /// Sustained rate over everything recorded [GFLOP/s].
  double sustained_gflops() const;

  /// Highest per-kernel rate recorded in a single launch [GFLOP/s] — the
  /// "peak" measurement of Section V-B (profiling the hottest kernel).
  double peak_gflops() const { return peak_gflops_; }
  const std::string& peak_kernel() const { return peak_kernel_; }

  /// (kernel, flops, seconds) sorted by descending flops.
  std::vector<std::tuple<std::string, double, double>> sorted() const;

  void merge(const FlopRegistry& other);
  void clear();

 private:
  struct Entry {
    double flops = 0.0;
    double seconds = 0.0;
  };
  std::map<std::string, Entry> entries_;
  double peak_gflops_ = 0.0;
  std::string peak_kernel_;
};

}  // namespace crkhacc::gpu
