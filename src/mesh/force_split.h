// Separation of scales: long-range / short-range gravity split.
//
// The heart of the HACC design. The Poisson solve is spectrally filtered
// so the mesh handles only smooth, large-scale forces, and the residual
// short-range force — exactly the Newtonian force minus what the filtered
// mesh provides — is evaluated in direct particle pair sums that stay
// node-local. We use the Gaussian (Ewald/PME-style) split:
//
//   long-range filter  S(k)   = exp(-k^2 rs^2)
//   short-range factor f_s(r) = erfc(r / 2rs) + (r / rs sqrt(pi)) e^{-r^2/4rs^2}
//
// so that  f_long(r) + f_s(r) = 1  exactly, with f_s(r) -> 1 as r -> 0 and
// decaying like a Gaussian beyond a few rs. The paper's spectrally
// filtered PM uses a higher-order (sinc-compensated Gaussian) filter; the
// Gaussian variant preserves the identical architecture — low-noise
// handover on a compact scale — with a closed-form real-space complement.
#pragma once

namespace crkhacc::mesh {

class ForceSplit {
 public:
  /// rs: split scale in comoving length units. The handover is compact:
  /// cutoff() returns the radius beyond which f_short < `threshold`
  /// (the residual pair-force error delegated entirely to the mesh).
  explicit ForceSplit(double rs, double threshold = 1e-4);

  double rs() const { return rs_; }
  double threshold() const { return threshold_; }

  /// k-space filter applied to the mesh potential.
  double long_range_filter(double k) const;

  /// Dimensionless short-range force factor f_s(r): multiplies the
  /// Newtonian pair force G m M / r^2.
  double short_range_factor(double r) const;

  /// Radius where the short-range factor drops below the threshold.
  double cutoff() const { return cutoff_; }

 private:
  double rs_;
  double threshold_;
  double cutoff_;
};

}  // namespace crkhacc::mesh
