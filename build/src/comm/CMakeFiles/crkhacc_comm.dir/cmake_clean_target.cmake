file(REMOVE_RECURSE
  "libcrkhacc_comm.a"
)
