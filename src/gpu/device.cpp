#include "gpu/device.h"

#include <algorithm>
#include <chrono>

#include "gpu/simd.h"

namespace crkhacc::gpu {

const SimdSupport& simd_support() {
  static const SimdSupport support{simd::kAvailable, simd::kIsaName,
                                   simd::kAvailable ? simd::kWidth : 0};
  return support;
}

const std::vector<DeviceSpec>& known_devices() {
  static const std::vector<DeviceSpec> devices = {
      {"AMD MI250X (per GCD)", 23.9, 64},
      {"Intel Max 1550 (per tile)", 22.5, 32},
      {"NVIDIA H100 SXM5", 66.9, 32},
  };
  return devices;
}

double host_peak_gflops() {
  static const double cached = [] {
    // 64 independent FMA chains: enough ILP for the compiler to engage
    // SIMD units and both FMA ports, so the figure approximates the
    // core's true FP32 throughput peak (the role Table I's numbers play
    // for the GPUs). The volatile sink keeps the loop alive.
    constexpr int kChains = 64;
    float acc[kChains];
    for (int c = 0; c < kChains; ++c) {
      acc[c] = 1.0f + 0.01f * static_cast<float>(c);
    }
    const float m = 1.000001f;
    const float b = 1e-7f;
    const std::int64_t iters = 4'000'000;
    const auto start = std::chrono::steady_clock::now();
    for (std::int64_t i = 0; i < iters; ++i) {
      for (int c = 0; c < kChains; ++c) acc[c] = acc[c] * m + b;
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    float total = 0.f;
    for (int c = 0; c < kChains; ++c) total += acc[c];
    volatile float sink = total;
    (void)sink;
    // kChains FMAs = 2 * kChains flops per iteration.
    return static_cast<double>(iters) * 2.0 * kChains / seconds / 1e9;
  }();
  return cached;
}

void FlopRegistry::add(const std::string& kernel, double flops, double seconds) {
  auto& entry = entries_[kernel];
  entry.flops += flops;
  entry.seconds += seconds;
  if (seconds > 0.0) {
    const double rate = flops / seconds / 1e9;
    if (rate > peak_gflops_) {
      peak_gflops_ = rate;
      peak_kernel_ = kernel;
    }
  }
}

double FlopRegistry::total_flops() const {
  double sum = 0.0;
  for (const auto& [name, entry] : entries_) sum += entry.flops;
  return sum;
}

double FlopRegistry::total_seconds() const {
  double sum = 0.0;
  for (const auto& [name, entry] : entries_) sum += entry.seconds;
  return sum;
}

double FlopRegistry::flops_of(const std::string& kernel) const {
  auto it = entries_.find(kernel);
  return it == entries_.end() ? 0.0 : it->second.flops;
}

double FlopRegistry::sustained_gflops() const {
  const double seconds = total_seconds();
  return seconds > 0.0 ? total_flops() / seconds / 1e9 : 0.0;
}

std::vector<std::tuple<std::string, double, double>> FlopRegistry::sorted() const {
  std::vector<std::tuple<std::string, double, double>> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    out.emplace_back(name, entry.flops, entry.seconds);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return std::get<1>(a) > std::get<1>(b);
  });
  return out;
}

void FlopRegistry::merge(const FlopRegistry& other) {
  for (const auto& [name, entry] : other.entries_) {
    auto& mine = entries_[name];
    mine.flops += entry.flops;
    mine.seconds += entry.seconds;
  }
  if (other.peak_gflops_ > peak_gflops_) {
    peak_gflops_ = other.peak_gflops_;
    peak_kernel_ = other.peak_kernel_;
  }
}

void FlopRegistry::clear() {
  entries_.clear();
  peak_gflops_ = 0.0;
  peak_kernel_.clear();
}

}  // namespace crkhacc::gpu
