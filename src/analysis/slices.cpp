#include "analysis/slices.h"

#include <algorithm>
#include <cmath>

#include "util/assertions.h"

namespace crkhacc::analysis {

SliceResult density_temperature_slice(comm::Communicator& comm,
                                      const Particles& particles,
                                      const SliceConfig& config) {
  const std::size_t res = config.resolution;
  CHECK(res >= 2);
  SliceResult slice;
  slice.resolution = res;
  slice.density.assign(res * res, 0.0);
  std::vector<double> t_mass(res * res, 0.0);  // sum m*T (gas)
  std::vector<double> gas_mass(res * res, 0.0);

  const double cell = config.box / static_cast<double>(res);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!particles.is_owned(i)) continue;
    const double z = particles.z[i];
    if (z < config.z_lo || z >= config.z_hi) continue;
    const auto cx = std::min(res - 1, static_cast<std::size_t>(particles.x[i] / cell));
    const auto cy = std::min(res - 1, static_cast<std::size_t>(particles.y[i] / cell));
    const std::size_t c = cy * res + cx;
    const double m = particles.mass[i];
    slice.density[c] += m;
    if (particles.is_gas(i)) {
      const double t_K =
          units::temperature_K(particles.u[i], units::kMuIonized);
      t_mass[c] += m * t_K;
      gas_mass[c] += m;
    }
  }

  comm.allreduce(std::span<double>(slice.density), comm::ReduceOp::kSum);
  comm.allreduce(std::span<double>(t_mass), comm::ReduceOp::kSum);
  comm.allreduce(std::span<double>(gas_mass), comm::ReduceOp::kSum);

  slice.temperature.assign(res * res, 0.0);
  std::vector<double> temps;
  for (std::size_t c = 0; c < res * res; ++c) {
    if (gas_mass[c] > 0.0) {
      slice.temperature[c] = t_mass[c] / gas_mass[c];
      temps.push_back(slice.temperature[c]);
    }
  }

  double sum = 0.0, sum_sq = 0.0;
  for (double d : slice.density) {
    sum += d;
    sum_sq += d * d;
  }
  const double n_cells = static_cast<double>(res * res);
  slice.mean_density = sum / n_cells;
  if (slice.mean_density > 0.0) {
    slice.clumping = (sum_sq / n_cells) / (slice.mean_density * slice.mean_density);
    slice.density_variance = slice.clumping - 1.0;
  }
  if (!temps.empty()) {
    std::sort(temps.begin(), temps.end());
    slice.t_median_K = temps[temps.size() / 2];
    slice.t_max_K = temps.back();
  }
  return slice;
}

std::string render_density_ascii(const SliceResult& slice,
                                 std::size_t max_width) {
  static const char kShades[] = " .:-=+*#%@";
  const std::size_t res = slice.resolution;
  if (res == 0 || slice.mean_density <= 0.0) return "";
  const std::size_t stride = std::max<std::size_t>(1, res / max_width);
  std::string out;
  for (std::size_t y = 0; y < res; y += stride) {
    for (std::size_t x = 0; x < res; x += stride) {
      // Block-average to the display resolution.
      double total = 0.0;
      std::size_t count = 0;
      for (std::size_t yy = y; yy < std::min(res, y + stride); ++yy) {
        for (std::size_t xx = x; xx < std::min(res, x + stride); ++xx) {
          total += slice.density[yy * res + xx];
          ++count;
        }
      }
      const double overdensity = total / (static_cast<double>(count) * slice.mean_density);
      // log scale from 0.1x to 100x mean.
      const double t =
          std::clamp((std::log10(std::max(overdensity, 1e-3)) + 1.0) / 3.0, 0.0, 1.0);
      out += kShades[static_cast<std::size_t>(t * 9.0)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace crkhacc::analysis
