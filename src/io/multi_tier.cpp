#include "io/multi_tier.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "io/checkpoint.h"
#include "util/assertions.h"
#include "util/crc32.h"
#include "util/log.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crkhacc::io {

std::string MultiTierWriter::checkpoint_path(std::uint64_t step, int rank) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "ckpt/step%06llu/rank%05d.gio",
                static_cast<unsigned long long>(step), rank);
  return buf;
}

std::string MultiTierWriter::marker_path(std::uint64_t step, int rank) {
  return checkpoint_path(step, rank) + ".ok";
}

MultiTierWriter::MultiTierWriter(ThrottledStore& local, ThrottledStore& pfs,
                                 const MultiTierConfig& config)
    : local_(local), pfs_(pfs), config_(config), planner_(config.ckpt) {
  CHECK(config.max_write_attempts >= 1);
  worker_ = std::thread([this] { worker_loop(); });
}

MultiTierWriter::~MultiTierWriter() { shutdown(); }

void MultiTierWriter::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

bool MultiTierWriter::write_verified(ThrottledStore& store,
                                     const std::string& rel_path,
                                     const std::vector<std::uint8_t>& data,
                                     std::uint32_t crc,
                                     std::uint64_t& retry_counter) {
  double backoff = config_.backoff_base_s;
  for (int attempt = 0; attempt < config_.max_write_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      backoff = std::min(2.0 * backoff, config_.backoff_max_s);
      std::lock_guard<std::mutex> lock(mutex_);
      ++retry_counter;
    }
    const auto outcome = store.try_write(rel_path, data);
    if (outcome.status == IoStatus::kNoSpace) {
      // Sticky tier failure: retrying against a full/dead device is
      // pointless; the caller decides how to degrade.
      return false;
    }
    if (outcome.status != IoStatus::kOk) continue;
    // Read-back verify: torn writes and bit flips report success but
    // leave wrong bytes; only the CRC proves the checkpoint landed.
    std::vector<std::uint8_t> echo;
    if (store.read(rel_path, echo) && echo.size() == data.size() &&
        crc32(echo.data(), echo.size()) == crc) {
      return true;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.verify_failures;
  }
  return false;
}

bool MultiTierWriter::publish_to_pfs(std::uint64_t step,
                                     const std::vector<std::uint8_t>& bytes) {
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  if (!write_verified(pfs_, checkpoint_path(step, config_.rank), bytes, crc,
                      stats_.pfs_retries)) {
    return false;
  }
  CheckpointMarker marker;
  marker.payload_bytes = bytes.size();
  marker.payload_crc = crc;
  const auto marker_bytes = encode_marker(marker);
  return write_verified(pfs_, marker_path(step, config_.rank), marker_bytes,
                        crc32(marker_bytes.data(), marker_bytes.size()),
                        stats_.pfs_retries);
}

std::vector<std::uint8_t> MultiTierWriter::encode_planned(
    const SnapshotMeta& meta, const Particles& particles, bool force_full,
    IoRecord& record) {
  // Checkpoints carry the overloaded (ghost) regions, so the columns
  // serialize straight out of the live container — no filtering copy.
  const auto columns = particle_columns(particles);
  CkptFileMeta file_meta;
  file_meta.snapshot = meta;
  file_meta.snapshot.particle_count = particles.size();
  file_meta.snapshot.format_version = kCkptFormatVersion;
  file_meta.chunk_bytes = static_cast<std::uint32_t>(config_.ckpt.chunk_bytes);

  const CkptDiffPlanner::Plan plan =
      force_full ? planner_.plan_full(meta.step, columns)
                 : planner_.plan(meta.step, columns);
  file_meta.kind = plan.kind;
  file_meta.base_step = plan.base_step;
  file_meta.chain_index = plan.chain_index;

  record.step = meta.step;
  record.diff = plan.kind == CkptKind::kDiff;
  record.chunks_written = plan.chunks_written;
  record.chunks_total = plan.chunks_total;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (record.diff) {
      ++stats_.diff_checkpoints;
    } else {
      ++stats_.full_checkpoints;
    }
    stats_.chunks_written += plan.chunks_written;
    stats_.chunks_skipped += plan.chunks_total - plan.chunks_written;
    stats_.longest_chain =
        std::max<std::uint64_t>(stats_.longest_chain, plan.chain_index);
  }
  {
    std::lock_guard<std::mutex> lock(prune_mutex_);
    chain_roots_[meta.step] = plan.chain_root;
  }
  auto bytes = encode_checkpoint(
      file_meta, columns, plan.mask.empty() ? nullptr : &plan.mask);
  record.bytes = bytes.size();
  return bytes;
}

double MultiTierWriter::write_checkpoint(const SnapshotMeta& meta,
                                         const Particles& particles) {
  // Rank-thread span only; the background bleeder thread has no trace
  // context and must stay unattributed.
  HACC_TRACE_SPAN("io_write");
  IoRecord record;
  const auto bytes =
      encode_planned(meta, particles, /*force_full=*/false, record);
  const std::uint32_t crc = crc32(bytes.data(), bytes.size());
  Stopwatch watch;

  bool direct = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    direct = degraded_;
  }
  if (!direct) {
    if (!write_verified(local_, checkpoint_path(meta.step, config_.rank),
                        bytes, crc, stats_.local_retries)) {
      // Node-local tier is gone (ENOSPC / persistent corruption): bleed
      // everything that can still bleed and fall back to verified direct
      // PFS writes from here on.
      HACC_LOG_WARN("rank %d: node-local tier failed at step %llu; "
                    "degrading to direct PFS checkpoints",
                    config_.rank,
                    static_cast<unsigned long long>(meta.step));
      std::lock_guard<std::mutex> lock(mutex_);
      degraded_ = true;
      stats_.degraded_to_direct = true;
      direct = true;
    }
  }

  if (direct) {
    const bool published = publish_to_pfs(meta.step, bytes);
    const double blocked = watch.seconds();
    prune(meta.step);
    std::lock_guard<std::mutex> lock(mutex_);
    if (!published) ++stats_.bleed_failures;
    record.local_seconds = blocked;
    record.pfs_seconds = blocked;
    record.bled = published;
    records_.push_back(record);
    return blocked;
  }

  const double blocked = watch.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    record.local_seconds = blocked;
    records_.push_back(record);
    queue_.push_back(meta.step);
  }
  cv_.notify_one();
  return blocked;
}

double MultiTierWriter::write_checkpoint_direct(const SnapshotMeta& meta,
                                                const Particles& particles) {
  // The direct baseline always writes fulls: it models the
  // no-node-local-tier configuration, where a chain would put every
  // restart at the mercy of the slow shared channel.
  IoRecord record;
  const auto bytes =
      encode_planned(meta, particles, /*force_full=*/true, record);
  Stopwatch watch;
  const bool published = publish_to_pfs(meta.step, bytes);
  const double blocked = watch.seconds();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!published) ++stats_.bleed_failures;
    record.local_seconds = blocked;
    record.pfs_seconds = blocked;
    record.bled = published;
    records_.push_back(record);
  }
  return blocked;
}

void MultiTierWriter::worker_loop() {
  while (true) {
    std::uint64_t step;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;  // shutdown abandons still-queued bleeds
      step = queue_.front();
      queue_.pop_front();
      ++in_flight_;
    }

    // Asynchronous bleed: re-read the local copy (the only trusted
    // source), publish it to the PFS with write-verify + retries, and
    // only then stamp the completion marker and drop the local file.
    Stopwatch watch;
    const auto rel = checkpoint_path(step, config_.rank);
    std::vector<std::uint8_t> bytes;
    bool published = false;
    if (local_.read(rel, bytes)) {
      published = publish_to_pfs(step, bytes);
    }
    if (published && !config_.ckpt.redundant_local) {
      // redundant_local retains the node-local copy after the bleed (the
      // prune window still bounds it) so ckpt_audit has an independent,
      // verified source to repair damaged PFS chunks from.
      local_.remove(rel);
    }
    const double seconds = watch.seconds();

    prune(step);

    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!published) ++stats_.bleed_failures;
      for (auto& record : records_) {
        if (record.step == step && !record.bled) {
          record.pfs_seconds = seconds;
          record.bled = published;
          break;
        }
      }
      --in_flight_;
    }
    cv_.notify_all();
  }
}

void MultiTierWriter::prune(std::uint64_t newest_step) {
  // Time-window retention: drop anything older than the last
  // checkpoint_window steps that have fully reached the PFS. The floor
  // tracks the lowest step not yet pruned, so no step leaks however many
  // steps elapse between bleeds.
  if (newest_step < static_cast<std::uint64_t>(config_.checkpoint_window)) {
    return;
  }
  const std::uint64_t cutoff =
      newest_step - static_cast<std::uint64_t>(config_.checkpoint_window);
  std::lock_guard<std::mutex> lock(prune_mutex_);
  // Chain-aware retention: a differential checkpoint inside the window
  // replays through every ancestor down to its anchoring full, so the
  // delete floor must not pass the oldest chain root any retained step
  // still depends on. (Chains are contiguous step runs, so keeping
  // [root, cutoff) keeps every intermediate diff too.)
  std::uint64_t keep_floor = cutoff;
  for (const auto& [step, root] : chain_roots_) {
    if (step >= cutoff) keep_floor = std::min(keep_floor, root);
  }
  for (std::uint64_t step = prune_floor_; step < keep_floor; ++step) {
    const auto rel = checkpoint_path(step, config_.rank);
    local_.remove(rel);
    pfs_.remove(marker_path(step, config_.rank));
    pfs_.remove(rel);
    chain_roots_.erase(step);
  }
  prune_floor_ = std::max(prune_floor_, keep_floor);
}

void MultiTierWriter::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] {
    return stopping_ || (queue_.empty() && in_flight_ == 0);
  });
}

std::vector<IoRecord> MultiTierWriter::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

IoStats MultiTierWriter::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::uint64_t MultiTierWriter::bytes_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& record : records_) total += record.bytes;
  return total;
}

}  // namespace crkhacc::io
