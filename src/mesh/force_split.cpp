#include "mesh/force_split.h"

#include <cmath>
#include <numbers>

#include "util/assertions.h"

namespace crkhacc::mesh {

ForceSplit::ForceSplit(double rs, double threshold)
    : rs_(rs), threshold_(threshold) {
  CHECK(rs > 0.0);
  CHECK(threshold > 0.0 && threshold < 1.0);
  // Solve f_s(r) = threshold by bisection; f_s decreases monotonically.
  double lo = 0.0, hi = 16.0 * rs;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (short_range_factor(mid) > threshold) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  cutoff_ = hi;
}

double ForceSplit::long_range_filter(double k) const {
  const double krs = k * rs_;
  return std::exp(-krs * krs);
}

double ForceSplit::short_range_factor(double r) const {
  if (r <= 0.0) return 1.0;
  const double x = r / (2.0 * rs_);
  return std::erfc(x) +
         (r / (rs_ * std::sqrt(std::numbers::pi))) * std::exp(-x * x);
}

}  // namespace crkhacc::mesh
