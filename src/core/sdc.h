// Silent-data-corruption (SDC) guardrails.
//
// At trillion-particle scale, uncorrected memory errors are frequent
// enough that a flipped bit in a live particle array is a when, not an
// if — and PR 1's checkpoint integrity only protects data at rest: a
// corrupted array propagates for a whole checkpoint interval before
// anything notices. This layer turns CRK-HACC's conservative
// formulation into an in-flight detector: particle state obeys
// machine-checkable invariants (finite, bounded fields; conserved
// mass/momentum/energy; sane chaining-mesh occupancy; positive finite
// timestep limits), so the driver can audit every PM step and — thanks
// to the bitwise-deterministic step (PR 2) — roll back to an in-memory
// snapshot (util/snapshot.h) and replay, escalating to checkpoint
// restore only when the replay budget runs out.
//
// Pieces:
//   * SdcConfig          — knobs (sdc_* keys in the parameter file)
//   * SdcAuditor         — local invariant scans + collective verdict
//   * MemFaultInjector   — seeded deterministic bit-flip drill source,
//                          the in-memory sibling of io::FaultPolicy
//   * snapshot_regions() — Particles <-> PagedSnapshot region lists
//
// The driver side (capture / audit / rollback / replay / escalate)
// lives in core/simulation.cpp.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/diagnostics.h"
#include "core/particles.h"
#include "integrator/timestep.h"
#include "util/rng.h"
#include "util/snapshot.h"

namespace crkhacc::core {

/// Guardrail knobs. Detection tolerances default generous: a false
/// positive is worse than a missed marginal drift, because a
/// deterministic replay reproduces a legitimate state bit-for-bit and
/// would fail the same audit forever (escalating every step).
struct SdcConfig {
  bool enabled = false;
  std::size_t page_bytes = util::PagedSnapshot::kDefaultPageBytes;
  /// Replays of one step before escalating to checkpoint restore.
  int max_replays = 2;
  /// Relative total-mass drift allowed across one PM step.
  double mass_drift_tol = 1e-6;
  /// Kinetic+thermal energy may grow at most this factor per step
  /// (gravitational collapse grows KE legitimately; a factor catches
  /// only the e+30-style explosions a flipped exponent bit produces).
  double energy_growth_factor = 100.0;
  /// |delta net momentum| per step, relative to sum m|v|.
  double momentum_drift_tol = 0.5;
  /// Per-component velocity bound, km/s (well above any physical flow).
  double max_velocity = 3.0e5;
  /// |u| bound, (km/s)^2.
  double max_internal_energy = 1.0e12;
  /// Per-particle mass bound, 1e10 Msun/h.
  double max_particle_mass = 1.0e12;
  /// Occupancy alarm: fullest chaining-mesh bin vs. the mean.
  double occupancy_factor = 1024.0;
};

// Bits of the audit verdict mask; 0 == all checks passed == commit.
inline constexpr std::uint32_t kSdcCheckNonFinite = 1u << 0;
inline constexpr std::uint32_t kSdcCheckBounds = 1u << 1;
inline constexpr std::uint32_t kSdcCheckConservation = 1u << 2;
inline constexpr std::uint32_t kSdcCheckOccupancy = 1u << 3;
inline constexpr std::uint32_t kSdcCheckTimestep = 1u << 4;
inline constexpr std::uint32_t kSdcCheckSnapshot = 1u << 5;
inline constexpr int kSdcNumChecks = 6;

/// "nonfinite|bounds" style rendering of a verdict mask ("ok" for 0).
std::string sdc_check_names(std::uint32_t mask);

/// Per-step guardrail accounting (aggregated into RunResult).
struct SdcStepStats {
  std::uint64_t audits = 0;          ///< audit passes run (>=1 if enabled)
  std::uint64_t detections = 0;      ///< audits that failed
  std::uint64_t rollbacks = 0;       ///< snapshot restores performed
  std::uint64_t replays = 0;         ///< step re-executions after rollback
  std::uint64_t injected_flips = 0;  ///< drill bit flips applied
  bool escalated = false;            ///< replay budget exhausted
  std::uint32_t failed_checks = 0;   ///< OR of failing verdict masks
  double snapshot_seconds = 0.0;
  double audit_seconds = 0.0;
  std::size_t snapshot_bytes = 0;
  std::size_t snapshot_pages = 0;
};

/// Everything the auditor needs besides the particles themselves.
struct AuditContext {
  double box = 0.0;              ///< simulation box side
  double position_margin = 0.0;  ///< ghost images live at +- this
  comm::Box3 domain;             ///< rank's owned box (occupancy census)
  double domain_slack = 0.0;     ///< intra-step drift allowance
  double cm_bin_width = 0.0;
  /// Pre-step conserved sums (collective, from the capture point).
  ConservationSnapshot reference;
  /// Census of the step's bin-assignment pass.
  integrator::TimestepAnomalyStats timestep;
  /// Non-finite smoothing-length targets the SPH solver rejected
  /// during this step attempt.
  std::uint64_t solver_nonfinite = 0;
};

/// Runs the detection lattice. local_audit is pure rank-local; audit
/// adds the collective conservation gates and the verdict allreduce
/// (all ranks must call it together and get the same mask back).
class SdcAuditor {
 public:
  explicit SdcAuditor(const SdcConfig& config) : config_(config) {}

  std::uint32_t local_audit(const Particles& particles,
                            const AuditContext& ctx);
  std::uint32_t audit(comm::Communicator& comm, const Particles& particles,
                      const AuditContext& ctx);

  /// Human-readable description of the first failure of the last audit
  /// on this rank (empty if it passed locally).
  const std::string& last_failure() const { return last_failure_; }

 private:
  void note(const std::string& what) {
    if (last_failure_.empty()) last_failure_ = what;
  }

  SdcConfig config_;
  std::string last_failure_;
};

/// Seeded deterministic source of in-memory bit flips — the live-array
/// sibling of io::FaultPolicy's storage faults. Each injection point in
/// the step consumes one monotonically increasing opportunity number;
/// the draw is a pure function of (seed, opportunity), so a schedule
/// replays identically, and because opportunities are never rewound a
/// one-shot flip does not recur when the step replays after rollback.
class MemFaultInjector {
 public:
  struct Flip {
    std::uint32_t field = 0;  ///< index into the guarded-field list
    std::uint64_t index = 0;  ///< particle slot (mod count at apply time)
    std::uint32_t bit = 0;    ///< 0..31 within the float
  };

  /// Guarded float fields, in order: x y z vx vy vz u mass.
  static constexpr std::uint32_t kFieldCount = 8;
  static const char* field_name(std::uint32_t field);

  /// `rate` = expected flips per opportunity (probability per draw).
  MemFaultInjector(double rate, std::uint64_t seed)
      : rate_(rate), rng_(seed, /*stream=*/0x5DC) {}

  /// Aborts (CHECK) if any Simulation still has this injector armed —
  /// destroying a live drill source would leave a dangling pointer on
  /// the simulation's hot path. Disarm first
  /// (set_memory_fault_injector(nullptr)) or destroy the simulation.
  virtual ~MemFaultInjector();

  /// Deterministic: the same opportunity always returns the same draw.
  virtual std::optional<Flip> draw(std::uint64_t opportunity) const;

  /// Simulations currently holding this injector armed (each
  /// set_memory_fault_injector(this) adds one; disarming or destroying
  /// the simulation removes it). Exposed for tests.
  int armed_refs() const {
    return armed_refs_.load(std::memory_order_acquire);
  }

  /// Arm/disarm bookkeeping, called by Simulation only.
  void retain_armed() const {
    armed_refs_.fetch_add(1, std::memory_order_acq_rel);
  }
  void release_armed() const {
    armed_refs_.fetch_sub(1, std::memory_order_acq_rel);
  }

 private:
  double rate_;
  CounterRng rng_;
  mutable std::atomic<int> armed_refs_{0};
};

/// XOR one bit of one guarded field in place; returns a description
/// ("x[17] bit 30: 1.25 -> 2.7e+38") for the drill log.
std::string apply_flip(Particles& particles,
                       const MemFaultInjector::Flip& flip);

/// Region lists covering every Particles field, in a fixed order shared
/// by the const (capture) and mutable (restore) variants.
std::vector<util::PagedSnapshot::Region> snapshot_regions(
    const Particles& particles);
std::vector<util::PagedSnapshot::MutableRegion> snapshot_regions(
    Particles& particles);

}  // namespace crkhacc::core
