// Galaxy identification from the stellar component.
//
// The paper's in situ clustering "facilitates detection of all galaxies
// that have formed": star particles cluster into galaxies via the same
// density-based machinery (DBSCAN over the ArborX-analog BVH) used for
// halos. A galaxy record carries stellar mass, center, and velocity —
// the inputs to the mock-survey measurements.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "core/particles.h"

namespace crkhacc::analysis {

struct Galaxy {
  std::size_t star_count = 0;
  double stellar_mass = 0.0;
  std::array<double, 3> center{};    ///< stellar center of mass
  std::array<double, 3> velocity{};  ///< mass-weighted mean velocity
};

struct GalaxyFinderConfig {
  float linking_length = 0.1f;  ///< DBSCAN eps over star particles
  std::size_t min_stars = 4;    ///< DBSCAN minPts / minimum galaxy size
};

/// Find galaxies among the owned star particles (brightest first).
std::vector<Galaxy> find_galaxies(const Particles& particles,
                                  const GalaxyFinderConfig& config);

}  // namespace crkhacc::analysis
