// Hierarchical (binned) adaptive timestepping.
//
// Following the FAST-style asynchronous split integrator the paper cites
// (Saitoh & Makino 2010): within one global PM interval, particles are
// grouped into power-of-two timestep bins — bin b sub-cycles at
// dt_pm / 2^b. Deep bins exist only where local conditions (CFL, strong
// accelerations, star-forming gas) demand them, so quiet regions are not
// dragged to the finest cadence. The activity schedule is the standard
// block scheme: at fine substep s (of 2^depth), bin b is active iff
// s is a multiple of 2^(depth - b).
#pragma once

#include <cstdint>
#include <vector>

#include "core/particles.h"

namespace crkhacc::integrator {

struct TimeBinConfig {
  int max_depth = 8;          ///< deepest allowed bin (dt_pm / 2^depth)
  double accel_eta = 0.25;    ///< acceleration criterion prefactor
  double softening = 0.05;    ///< length scale for the accel criterion
};

/// Bin index for a particle whose local limit is dt_particle, under a PM
/// interval dt_pm: smallest b with dt_pm / 2^b <= dt_particle.
std::uint8_t bin_for(double dt_particle, double dt_pm, int max_depth);

/// Acceleration timestep criterion: dt = eta * sqrt(soft * a / |acc|),
/// (proper softening / peculiar-velocity change rate).
double accel_timestep(const TimeBinConfig& config, double a, double ax,
                      double ay, double az);

/// Timestep-anomaly census from one assign_bins pass. A NaN or
/// non-positive limit is the timestep-side signature of corrupted
/// particle state (a CFL or acceleration criterion computed from a
/// flipped bit); `clamped` counts particles demanding a bin deeper than
/// max_depth — a legitimate occurrence in dense regions, reported for
/// monitoring but not a corruption verdict on its own. The SDC auditor
/// (core/sdc.h) gates on `nonfinite` and `nonpositive`.
struct TimestepAnomalyStats {
  std::uint64_t nonfinite = 0;    ///< NaN limits (inf is legal: bin 0)
  std::uint64_t nonpositive = 0;  ///< limits <= 0
  std::uint64_t clamped = 0;      ///< wanted deeper than max_depth
  double min_limit = 0.0;         ///< smallest finite positive limit seen
};

/// Assign particles.bin from per-particle limits and return the depth
/// (deepest occupied bin). `dt_limit` holds each particle's local
/// timestep bound in cosmic-time units (entries may be +inf). If
/// `anomalies` is non-null it is overwritten with this pass's census.
int assign_bins(Particles& particles, const std::vector<double>& dt_limit,
                double dt_pm, const TimeBinConfig& config,
                TimestepAnomalyStats* anomalies = nullptr);

/// True if bin b is active at fine substep s of 2^depth.
inline bool bin_active(std::uint8_t b, std::uint64_t s, int depth) {
  const std::uint64_t period = 1ull << (depth - b);
  return s % period == 0;
}

/// Activity mask for all particles at fine substep s.
void activity_mask(const Particles& particles, std::uint64_t s, int depth,
                   std::vector<std::uint8_t>& mask);

/// Total number of (particle, substep) updates the schedule performs —
/// the adaptive-integration workload measure used by the utilization
/// benchmarks. A "Flat" run forces every particle to the deepest bin.
std::uint64_t schedule_work(const Particles& particles, int depth);

}  // namespace crkhacc::integrator
