#include "core/service.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <utility>

#include "comm/world.h"
#include "core/param_file.h"
#include "util/log.h"

namespace crkhacc::core {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

/// Live state of an admitted job. Storage tiers and the writer exist only
/// when the service has a workdir; the Simulation borrows the service's
/// SimContext, which is what makes admission cheap for cache-hitting jobs.
struct ScenarioService::Admitted {
  std::uint64_t id = 0;
  int priority = 1;
  const io::FaultInjector* fault = nullptr;
  std::unique_ptr<io::ThrottledStore> local;
  std::unique_ptr<io::ThrottledStore> pfs;
  std::unique_ptr<io::MultiTierWriter> writer;
  std::unique_ptr<Simulation> sim;
  JobResult result;
};

ScenarioService::ScenarioService(ServiceConfig config)
    : config_(std::move(config)), ctx_(config_.threads) {
  if (config_.slice_steps < 1) config_.slice_steps = 1;
  if (config_.checkpoint_window < 1) config_.checkpoint_window = 1;
}

std::uint64_t ScenarioService::submit(ScenarioJob job) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_id_++;
  if (job.name.empty()) job.name = "job" + std::to_string(id);
  if (job.priority < 1) job.priority = 1;
  queue_.push_back(std::move(job));
  queue_ids_.push_back(id);
  live_.insert(id);
  return id;
}

bool ScenarioService::request_cancel(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (live_.count(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

std::size_t ScenarioService::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return live_.size();
}

ServiceReport ScenarioService::drain() {
  ServiceReport report;
  const Clock::time_point t0 = Clock::now();

  // All jobs run on one in-process rank: scenarios are node-scale here,
  // and one rank thread is what lets N simulations share one pool at
  // full width instead of splitting it N ways.
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    std::vector<std::unique_ptr<Admitted>> active;

    auto finalize = [&](Admitted& a, JobOutcome outcome) {
      a.result.outcome = outcome;
      a.result.completion_seconds = seconds_since(t0);
      if (a.sim != nullptr) {
        a.sim->finalize_run(a.result.run, a.writer.get());
        a.result.final_particles = a.sim->particles();
        a.result.final_scale_factor = a.sim->scale_factor();
      }
      if (a.writer != nullptr) a.writer->drain();
      report.aggregate.merge(a.result.run);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        live_.erase(a.result.id);
        cancelled_.erase(a.result.id);
      }
      report.jobs.push_back(std::move(a.result));
    };

    // Admit everything currently queued (jobs submitted mid-drain are
    // picked up at the next round boundary). Admission order == submit
    // order, which is also the round-robin slice order.
    auto admit_pending = [&]() {
      std::vector<ScenarioJob> jobs;
      std::vector<std::uint64_t> ids;
      std::set<std::uint64_t> cancelled_now;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        jobs.swap(queue_);
        ids.swap(queue_ids_);
        cancelled_now = cancelled_;
      }
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        auto a = std::make_unique<Admitted>();
        a->id = ids[i];
        a->priority = jobs[i].priority;
        a->fault = jobs[i].fault;
        a->result.id = ids[i];
        a->result.name = jobs[i].name;

        if (cancelled_now.count(a->id) != 0) {
          finalize(*a, JobOutcome::kCancelled);
          continue;
        }

        // Per-job params overlay. A bad overlay fails the job, not the
        // farm: sweeps are generated programmatically and one typo must
        // not take down the other N-1 scenarios.
        SimConfig config = jobs[i].config;
        if (!jobs[i].params.empty()) {
          const auto params = ParamFile::parse(jobs[i].params);
          if (!params) {
            a->result.error = "params overlay failed to parse";
            finalize(*a, JobOutcome::kFailed);
            continue;
          }
          const auto bad = params->apply(config);
          if (!bad.empty()) {
            a->result.error = "params overlay rejected key '" + bad.front() +
                              "'" +
                              (bad.size() > 1
                                   ? " (+" + std::to_string(bad.size() - 1) +
                                         " more)"
                                   : "");
            finalize(*a, JobOutcome::kFailed);
            continue;
          }
        }
        // The farm's pool is the context's; a per-job thread count would
        // silently be ignored, so normalize it for honest reporting.
        config.threads =
            static_cast<int>(ctx_.thread_pool().num_threads());

        if (a->fault != nullptr && config_.workdir.empty()) {
          a->result.error =
              "fault injection requires a service workdir (no checkpoint "
              "tiers to recover from)";
          finalize(*a, JobOutcome::kFailed);
          continue;
        }

        if (!config_.workdir.empty()) {
          namespace fs = std::filesystem;
          const fs::path root =
              fs::path(config_.workdir) / ("job" + std::to_string(a->id));
          fs::create_directories(root / "local");
          fs::create_directories(root / "pfs");
          a->local = std::make_unique<io::ThrottledStore>(
              io::StoreConfig{(root / "local").string(), 0.0, 0.0, false});
          a->pfs = std::make_unique<io::ThrottledStore>(
              io::StoreConfig{(root / "pfs").string(), 0.0, 0.0, true});
          io::MultiTierConfig mt;
          mt.rank = comm.rank();
          mt.checkpoint_window = config_.checkpoint_window;
          mt.ckpt = config.ckpt;
          a->writer = std::make_unique<io::MultiTierWriter>(*a->local,
                                                            *a->pfs, mt);
        }

        a->sim = std::make_unique<Simulation>(ctx_, comm, config);
        a->sim->initialize();
        active.push_back(std::move(a));
      }
    };

    for (;;) {
      admit_pending();
      if (active.empty()) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty()) break;
        continue;
      }

      // One scheduling round: every active job gets its slice. Erasure
      // happens after the sweep so the round order is stable.
      for (auto& a : active) {
        bool cancel_now = false;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          cancel_now = cancelled_.count(a->id) != 0;
        }
        if (cancel_now) {
          finalize(*a, JobOutcome::kCancelled);
          a.reset();
          continue;
        }

        const std::uint64_t steps =
            static_cast<std::uint64_t>(config_.slice_steps) *
            (config_.policy == SchedulePolicy::kDeficitWeighted
                 ? static_cast<std::uint64_t>(a->priority)
                 : 1u);
        const bool done = a->sim->run_slice(steps, a->result.run,
                                            a->writer.get(), a->pfs.get(),
                                            a->fault);
        const std::uint64_t slice = a->result.slices++;
        if (config_.on_slice) {
          SliceEvent event;
          event.job = a->id;
          event.name = a->result.name;
          event.step = a->sim->current_step();
          event.slice = slice;
          event.finished = done;
          config_.on_slice(event);
        }
        if (done) {
          finalize(*a, JobOutcome::kCompleted);
          a.reset();
        }
      }
      active.erase(std::remove(active.begin(), active.end(), nullptr),
                   active.end());
    }
  });

  report.wall_seconds = seconds_since(t0);
  report.assets = ctx_.asset_stats();
  bool all_completed = !report.jobs.empty();
  for (const auto& j : report.jobs) {
    all_completed = all_completed && j.outcome == JobOutcome::kCompleted;
  }
  report.aggregate.completed = all_completed;
  // Reports come out in completion order; submission order is the
  // stable contract (sweeps index into it).
  std::sort(report.jobs.begin(), report.jobs.end(),
            [](const JobResult& x, const JobResult& y) { return x.id < y.id; });
  return report;
}

}  // namespace crkhacc::core
