file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_cosmology.dir/background.cpp.o"
  "CMakeFiles/crkhacc_cosmology.dir/background.cpp.o.d"
  "CMakeFiles/crkhacc_cosmology.dir/ics.cpp.o"
  "CMakeFiles/crkhacc_cosmology.dir/ics.cpp.o.d"
  "CMakeFiles/crkhacc_cosmology.dir/power.cpp.o"
  "CMakeFiles/crkhacc_cosmology.dir/power.cpp.o.d"
  "libcrkhacc_cosmology.a"
  "libcrkhacc_cosmology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_cosmology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
