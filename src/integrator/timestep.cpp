#include "integrator/timestep.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/assertions.h"

namespace crkhacc::integrator {

std::uint8_t bin_for(double dt_particle, double dt_pm, int max_depth) {
  if (!(dt_particle > 0.0)) return static_cast<std::uint8_t>(max_depth);
  int b = 0;
  double dt = dt_pm;
  while (dt > dt_particle && b < max_depth) {
    dt *= 0.5;
    ++b;
  }
  return static_cast<std::uint8_t>(b);
}

double accel_timestep(const TimeBinConfig& config, double a, double ax,
                      double ay, double az) {
  const double acc = std::sqrt(ax * ax + ay * ay + az * az);
  if (acc <= 0.0) return std::numeric_limits<double>::infinity();
  return config.accel_eta * std::sqrt(config.softening * a / acc);
}

int assign_bins(Particles& particles, const std::vector<double>& dt_limit,
                double dt_pm, const TimeBinConfig& config,
                TimestepAnomalyStats* anomalies) {
  CHECK(dt_limit.size() == particles.size());
  TimestepAnomalyStats stats;
  stats.min_limit = std::numeric_limits<double>::infinity();
  const double dt_floor = std::ldexp(dt_pm, -config.max_depth);
  int depth = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    const double dt = dt_limit[i];
    if (std::isnan(dt)) {
      ++stats.nonfinite;
    } else if (!(dt > 0.0)) {
      ++stats.nonpositive;
    } else {
      if (dt < stats.min_limit) stats.min_limit = dt;
      if (dt < dt_floor) ++stats.clamped;
    }
    const std::uint8_t b = bin_for(dt, dt_pm, config.max_depth);
    particles.bin[i] = b;
    depth = std::max(depth, static_cast<int>(b));
  }
  if (anomalies != nullptr) *anomalies = stats;
  return depth;
}

void activity_mask(const Particles& particles, std::uint64_t s, int depth,
                   std::vector<std::uint8_t>& mask) {
  mask.assign(particles.size(), 0);
  for (std::size_t i = 0; i < particles.size(); ++i) {
    mask[i] = bin_active(particles.bin[i], s, depth) ? 1 : 0;
  }
}

std::uint64_t schedule_work(const Particles& particles, int depth) {
  std::uint64_t work = 0;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    work += 1ull << particles.bin[i];
  }
  (void)depth;
  return work;
}

}  // namespace crkhacc::integrator
