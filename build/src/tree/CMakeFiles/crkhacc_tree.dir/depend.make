# Empty dependencies file for crkhacc_tree.
# This may be replaced when dependencies are built.
