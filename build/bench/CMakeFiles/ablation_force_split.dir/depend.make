# Empty dependencies file for ablation_force_split.
# This may be replaced when dependencies are built.
