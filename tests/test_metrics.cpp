// MetricsRegistry unit + determinism tests: counter/gauge semantics,
// merge order-independence, ingest adapters for the existing
// instruments, the collective rank reduce, and the threaded
// per-worker-registry fold pattern.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "comm/world.h"
#include "core/metrics.h"
#include "gpu/device.h"
#include "util/histogram.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "util/trace.h"

namespace crkhacc::core {
namespace {

TEST(MetricsRegistry, CounterAccumulates) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_EQ(reg.value("missing"), 0.0);
  reg.add("events", 3.0);
  reg.add("events", 2.0);
  const MetricValue* m = reg.find("events");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kCounter);
  EXPECT_EQ(m->total, 5.0);
  EXPECT_EQ(m->samples, 2u);
  EXPECT_EQ(reg.value("events"), 5.0);
}

TEST(MetricsRegistry, GaugeTracksMinMaxMean) {
  MetricsRegistry reg;
  reg.observe("util", 0.5);
  reg.observe("util", 0.9);
  reg.observe("util", 0.1);
  const MetricValue* m = reg.find("util");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->kind, MetricKind::kGauge);
  EXPECT_EQ(m->min, 0.1);
  EXPECT_EQ(m->max, 0.9);
  EXPECT_EQ(m->samples, 3u);
  EXPECT_NEAR(m->mean(), 0.5, 1e-15);
}

TEST(MetricsRegistry, SortedIsNameOrdered) {
  MetricsRegistry reg;
  reg.add("zeta", 1.0);
  reg.add("alpha", 1.0);
  reg.observe("mid", 2.0);
  const auto rows = reg.sorted();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].first, "alpha");
  EXPECT_EQ(rows[1].first, "mid");
  EXPECT_EQ(rows[2].first, "zeta");
  EXPECT_TRUE(std::is_sorted(
      rows.begin(), rows.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

/// Build K registries with overlapping and disjoint names, then fold
/// them in every order permutation — the result must be identical.
TEST(MetricsRegistry, MergeIsOrderIndependent) {
  std::vector<MetricsRegistry> parts(4);
  for (int i = 0; i < 4; ++i) {
    parts[i].add("shared_counter", 1.0 + i);
    parts[i].observe("shared_gauge", 0.25 * (i + 1));
    parts[i].add("only_" + std::to_string(i), 7.0);
  }

  std::vector<int> order = {0, 1, 2, 3};
  std::vector<std::pair<std::string, MetricValue>> reference;
  do {
    MetricsRegistry folded;
    for (int i : order) folded.merge(parts[i]);
    const auto rows = folded.sorted();
    if (reference.empty()) {
      reference = rows;
      // Sanity-check the reference itself.
      EXPECT_EQ(folded.value("shared_counter"), 1.0 + 2.0 + 3.0 + 4.0);
      const MetricValue* g = folded.find("shared_gauge");
      ASSERT_NE(g, nullptr);
      EXPECT_EQ(g->min, 0.25);
      EXPECT_EQ(g->max, 1.0);
      EXPECT_EQ(g->samples, 4u);
      continue;
    }
    ASSERT_EQ(rows.size(), reference.size());
    for (std::size_t k = 0; k < rows.size(); ++k) {
      EXPECT_EQ(rows[k].first, reference[k].first);
      EXPECT_EQ(rows[k].second.kind, reference[k].second.kind);
      // Bitwise equality: the folds must not reassociate sums.
      EXPECT_EQ(rows[k].second.total, reference[k].second.total);
      EXPECT_EQ(rows[k].second.min, reference[k].second.min);
      EXPECT_EQ(rows[k].second.max, reference[k].second.max);
      EXPECT_EQ(rows[k].second.samples, reference[k].second.samples);
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(MetricsRegistry, IngestTimersAndFlops) {
  TimerRegistry timers;
  timers.add("short_range", 2.0);
  timers.add("long_range", 1.0);
  gpu::FlopRegistry flops;
  flops.add("sph_density", 1e9, 0.5);

  MetricsRegistry reg;
  reg.ingest_timers(timers);
  reg.ingest_flops(flops);
  EXPECT_EQ(reg.value("time/short_range"), 2.0);
  EXPECT_EQ(reg.value("time/long_range"), 1.0);
  EXPECT_EQ(reg.value("flops/sph_density"), 1e9);
  EXPECT_EQ(reg.value("flops/sph_density_seconds"), 0.5);
}

TEST(MetricsRegistry, IngestHistogramAndTrace) {
  Histogram hist(0.0, 1.0, 10);
  hist.add(0.2);
  hist.add(0.8);

  util::TraceConfig tc;
  tc.enabled = true;
  util::TraceRecorder trace(tc);
  {
    util::TraceRecorder::Context ctx(&trace);
    HACC_TRACE_SPAN("phase_a");
    { HACC_TRACE_SPAN("phase_a"); }
  }
  trace.flush(0);

  MetricsRegistry reg;
  reg.ingest_histogram("imbalance", hist);
  reg.ingest_trace(trace);
  const MetricValue* h = reg.find("imbalance");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->kind, MetricKind::kGauge);
  EXPECT_EQ(h->samples, 2u);
  EXPECT_EQ(h->min, 0.2);
  EXPECT_EQ(h->max, 0.8);
  EXPECT_EQ(reg.value("trace/phase_a_spans"), 2.0);
  EXPECT_GT(reg.value("trace/phase_a_seconds"), 0.0);
  EXPECT_EQ(reg.value("trace/events"), 2.0);
  EXPECT_EQ(reg.value("trace/dropped"), 0.0);
}

TEST(MetricsRegistry, TableListsEveryMetric) {
  MetricsRegistry reg;
  reg.add("alpha", 1.0);
  reg.observe("beta", 2.0);
  const std::string table = reg.table();
  EXPECT_NE(table.find("alpha"), std::string::npos);
  EXPECT_NE(table.find("beta"), std::string::npos);
}

/// Threaded pattern from the header: one registry per worker, folded on
/// the calling thread in fixed (worker) order. Result must be identical
/// for every thread count.
TEST(MetricsRegistry, PerWorkerFoldIsThreadCountInvariant) {
  auto run = [](unsigned threads) {
    util::ThreadPool pool(threads);
    const unsigned lanes = pool.num_threads();
    std::vector<MetricsRegistry> per_worker(256);
    // One registry per chunk (not per worker) keeps writes disjoint no
    // matter which worker claims the chunk.
    pool.parallel_for(0, 256, 1,
                      [&](std::size_t lo, std::size_t, std::size_t chunk) {
                        per_worker[chunk].add("work", static_cast<double>(lo));
                        per_worker[chunk].observe(
                            "lane_load", static_cast<double>(lo % 7));
                      });
    (void)lanes;
    MetricsRegistry folded;
    for (const auto& part : per_worker) folded.merge(part);
    return folded.sorted();
  };
  const auto serial = run(1);
  const auto threaded = run(8);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].first, threaded[i].first);
    EXPECT_EQ(serial[i].second.total, threaded[i].second.total);
    EXPECT_EQ(serial[i].second.min, threaded[i].second.min);
    EXPECT_EQ(serial[i].second.max, threaded[i].second.max);
    EXPECT_EQ(serial[i].second.samples, threaded[i].second.samples);
  }
}

// --- collective reduce -------------------------------------------------------

TEST(MetricsReduce, UnionAcrossRanksWithIdenticalResult) {
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    MetricsRegistry local;
    local.add("steps", 1.0);
    local.add("rank_bytes", 100.0 * (comm.rank() + 1));
    local.observe("utilization", 0.5 + 0.1 * comm.rank());
    // Rank-specific name: reduce must produce the union on every rank.
    local.add("only_rank_" + std::to_string(comm.rank()), 1.0);

    const MetricsRegistry reduced = local.reduce(comm);
    // Counters sum across ranks.
    EXPECT_EQ(reduced.value("steps"), 4.0);
    EXPECT_EQ(reduced.value("rank_bytes"), 100.0 * (1 + 2 + 3 + 4));
    // Gauges combine min/max/sum/samples.
    const MetricValue* g = reduced.find("utilization");
    ASSERT_NE(g, nullptr);
    EXPECT_NEAR(g->min, 0.5, 1e-15);
    EXPECT_NEAR(g->max, 0.8, 1e-15);
    EXPECT_EQ(g->samples, 4u);
    EXPECT_NEAR(g->mean(), 0.65, 1e-15);
    // Union: every rank's private key appears, with that rank's value.
    for (int r = 0; r < comm.size(); ++r) {
      EXPECT_EQ(reduced.value("only_rank_" + std::to_string(r)), 1.0);
    }
    // Every rank must hold the identical registry: compare a canonical
    // serialization via bcast from rank 0.
    const std::string mine = reduced.table();
    std::vector<std::uint8_t> root(mine.begin(), mine.end());
    comm.bcast_bytes(root, 0);
    EXPECT_EQ(mine, std::string(root.begin(), root.end()));
  });
}

TEST(MetricsReduce, EmptyAndSingleRank) {
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    MetricsRegistry local;
    EXPECT_TRUE(local.reduce(comm).empty());
    local.add("x", 2.5);
    local.observe("y", -1.0);
    const MetricsRegistry reduced = local.reduce(comm);
    EXPECT_EQ(reduced.value("x"), 2.5);
    const MetricValue* y = reduced.find("y");
    ASSERT_NE(y, nullptr);
    EXPECT_EQ(y->min, -1.0);
    EXPECT_EQ(y->max, -1.0);
    EXPECT_EQ(y->samples, 1u);
  });
}

}  // namespace
}  // namespace crkhacc::core
