#include "core/metrics.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

#include "comm/world.h"
#include "util/assertions.h"

namespace crkhacc::core {

void MetricsRegistry::add(const std::string& name, double delta) {
  MetricValue& m = metrics_[name];
  m.kind = MetricKind::kCounter;
  m.total += delta;
  ++m.samples;
}

void MetricsRegistry::observe(const std::string& name, double value) {
  auto [it, inserted] = metrics_.try_emplace(name);
  MetricValue& m = it->second;
  m.kind = MetricKind::kGauge;
  if (inserted || m.samples == 0) {
    m.min = value;
    m.max = value;
  } else {
    m.min = std::min(m.min, value);
    m.max = std::max(m.max, value);
  }
  m.total += value;
  ++m.samples;
}

const MetricValue* MetricsRegistry::find(const std::string& name) const {
  auto it = metrics_.find(name);
  return it == metrics_.end() ? nullptr : &it->second;
}

double MetricsRegistry::value(const std::string& name) const {
  const MetricValue* m = find(name);
  return m == nullptr ? 0.0 : m->total;
}

std::vector<std::pair<std::string, MetricValue>> MetricsRegistry::sorted()
    const {
  return {metrics_.begin(), metrics_.end()};
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, theirs] : other.metrics_) {
    auto [it, inserted] = metrics_.try_emplace(name, theirs);
    if (inserted) continue;
    MetricValue& mine = it->second;
    CHECK(mine.kind == theirs.kind);
    if (mine.kind == MetricKind::kGauge) {
      if (theirs.samples > 0) {
        if (mine.samples == 0) {
          mine.min = theirs.min;
          mine.max = theirs.max;
        } else {
          mine.min = std::min(mine.min, theirs.min);
          mine.max = std::max(mine.max, theirs.max);
        }
      }
    }
    mine.total += theirs.total;
    mine.samples += theirs.samples;
  }
}

void MetricsRegistry::ingest_timers(const TimerRegistry& timers,
                                    const std::string& prefix) {
  for (const auto& [name, seconds] : timers.sorted())
    add(prefix + name, seconds);
}

void MetricsRegistry::ingest_flops(const gpu::FlopRegistry& flops,
                                   const std::string& prefix) {
  for (const auto& [kernel, f, seconds] : flops.sorted()) {
    add(prefix + kernel, f);
    add(prefix + kernel + "_seconds", seconds);
  }
}

void MetricsRegistry::ingest_histogram(const std::string& name,
                                       const Histogram& hist) {
  if (hist.count() == 0) return;
  MetricValue& m = metrics_[name];
  const MetricValue fold{MetricKind::kGauge,
                         hist.mean() * static_cast<double>(hist.count()),
                         hist.min(), hist.max(), hist.count()};
  if (m.samples == 0) {
    m = fold;
  } else {
    CHECK(m.kind == MetricKind::kGauge);
    m.min = std::min(m.min, fold.min);
    m.max = std::max(m.max, fold.max);
    m.total += fold.total;
    m.samples += fold.samples;
  }
}

void MetricsRegistry::ingest_trace(const util::TraceRecorder& trace,
                                   const std::string& prefix) {
  for (const util::PhaseSummary& s : trace.summary()) {
    add(prefix + s.name + "_seconds", s.total_seconds);
    add(prefix + s.name + "_spans", static_cast<double>(s.count));
  }
  add(prefix + "events", static_cast<double>(trace.events_recorded()));
  add(prefix + "dropped", static_cast<double>(trace.events_dropped()));
}

MetricsRegistry MetricsRegistry::reduce(comm::Communicator& comm) const {
  // Union of metric names across ranks, in name order on every rank.
  std::string names_blob;
  for (const auto& [name, m] : metrics_) {
    names_blob += name;
    names_blob.push_back(m.kind == MetricKind::kCounter ? '\x01' : '\x02');
    names_blob.push_back('\n');
  }
  std::vector<std::uint8_t> mine(names_blob.begin(), names_blob.end());
  const auto gathered = comm.allgather_bytes(mine);

  std::map<std::string, MetricKind> names;
  for (const auto& blob : gathered) {
    std::size_t start = 0;
    for (std::size_t i = 0; i < blob.size(); ++i) {
      if (blob[i] != '\n') continue;
      // Entry is "<name><kind-byte>"; the kind byte precedes '\n'.
      CHECK(i > start);
      const std::string name(blob.begin() + static_cast<std::ptrdiff_t>(start),
                             blob.begin() + static_cast<std::ptrdiff_t>(i) - 1);
      const MetricKind kind =
          blob[i - 1] == '\x01' ? MetricKind::kCounter : MetricKind::kGauge;
      auto [it, inserted] = names.try_emplace(name, kind);
      CHECK(it->second == kind);  // kinds must agree across ranks
      start = i + 1;
    }
  }

  // Element-wise reductions over the ordered union. Absent metrics
  // contribute identity values (0 for sums, +/-inf stand-ins handled by
  // a presence-weighted min/max trick: absent ranks send the union-wide
  // neutral by using their own min=+max_double etc.).
  const std::size_t n = names.size();
  std::vector<double> sums(2 * n, 0.0);  // [total..., samples...]
  std::vector<double> mins(n, std::numeric_limits<double>::max());
  std::vector<double> maxs(n, std::numeric_limits<double>::lowest());
  std::size_t i = 0;
  for (const auto& [name, kind] : names) {
    if (const MetricValue* m = find(name); m != nullptr) {
      sums[i] = m->total;
      sums[n + i] = static_cast<double>(m->samples);
      if (kind == MetricKind::kGauge && m->samples > 0) {
        mins[i] = m->min;
        maxs[i] = m->max;
      }
    }
    ++i;
  }
  comm.allreduce(std::span<double>(sums), comm::ReduceOp::kSum);
  comm.allreduce(std::span<double>(mins), comm::ReduceOp::kMin);
  comm.allreduce(std::span<double>(maxs), comm::ReduceOp::kMax);

  MetricsRegistry out;
  i = 0;
  for (const auto& [name, kind] : names) {
    MetricValue m;
    m.kind = kind;
    m.total = sums[i];
    m.samples = static_cast<std::uint64_t>(sums[n + i] + 0.5);
    if (kind == MetricKind::kGauge && m.samples > 0) {
      m.min = mins[i];
      m.max = maxs[i];
    }
    out.metrics_.emplace(name, m);
    ++i;
  }
  return out;
}

std::string MetricsRegistry::table() const {
  std::ostringstream out;
  char line[192];
  std::snprintf(line, sizeof(line), "%-40s %8s %16s %12s %12s %12s\n",
                "metric", "kind", "total", "mean", "min", "max");
  out << line;
  for (const auto& [name, m] : metrics_) {
    if (m.kind == MetricKind::kCounter) {
      std::snprintf(line, sizeof(line), "%-40s %8s %16.6g\n", name.c_str(),
                    "counter", m.total);
    } else {
      std::snprintf(line, sizeof(line),
                    "%-40s %8s %16.6g %12.6g %12.6g %12.6g\n", name.c_str(),
                    "gauge", m.total, m.mean(), m.min, m.max);
    }
    out << line;
  }
  return out.str();
}

}  // namespace crkhacc::core
