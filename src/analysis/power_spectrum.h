// In situ matter power spectrum measurement.
//
// Bins |delta_k|^2 from the distributed PM mesh into spherical k shells:
// P(k) = <|delta_k|^2> V / N^6 (our unnormalized-forward convention),
// optionally shot-noise subtracted. Rank-local shell sums are allreduced,
// so every rank returns the identical full spectrum — one of the
// "clustering probes" the simulation computes on the fly.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/world.h"
#include "core/particles.h"
#include "mesh/pm_solver.h"

namespace crkhacc::analysis {

struct PowerSpectrumResult {
  std::vector<double> k;        ///< shell-averaged wavenumber [h/Mpc]
  std::vector<double> power;    ///< P(k) [(Mpc/h)^3]
  std::vector<std::uint64_t> modes;  ///< modes per shell
};

/// Measure P(k) of the particle distribution with the given PM solver's
/// mesh. `subtract_shot_noise` removes V/N_particles.
PowerSpectrumResult measure_power(comm::Communicator& comm, mesh::PMSolver& pm,
                                  const Particles& particles,
                                  bool subtract_shot_noise);

}  // namespace crkhacc::analysis
