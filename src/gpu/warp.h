// Leaf-pair kernel launch drivers: naive and warp-split.
//
// The short-range solver's compute is leaf-to-leaf interaction kernels
// (Section IV-B2): all particles i of one leaf interact with all particles
// j of a neighboring leaf. Two execution strategies are implemented over
// the identical kernel definition, so their physics results agree bitwise
// up to floating-point accumulation order:
//
//  * kNaive — one logical thread per i-particle walks all j: it re-loads
//    j state from global memory and re-computes BOTH separable partials
//    for every pair. This is the register-heavy baseline the paper's
//    warp-splitting replaces.
//
//  * kWarpSplit — Algorithm 1 of the paper, executed literally on CPU
//    lanes: a warp of `warp_size` lanes is split in half; the low half
//    loads up to W = warp_size/2 particles of leaf i, the high half of
//    leaf j, each lane computes its separable partial ONCE, and W rotation
//    steps pair every lane with every partner, exchanging partials by
//    lane-indexed reads (the shuffle). Accumulation is lane-local with one
//    store per particle at the end (the per-leaf atomic).
//
// LaunchStats counts global loads, partial evaluations, interactions and
// stores, so the memory-traffic/register reduction of warp splitting is a
// measured output (bench/ablation_warp_split) rather than a claim.
//
// Kernel concept (see sph/ and gravity/ for real instances):
//
//   struct Kernel {
//     struct State   {...};              // registers loaded per particle
//     struct Partial {...};              // separable terms, shuffled
//     struct Accum   {...};              // lane-local accumulator
//     static constexpr const char* kName;
//     static constexpr double kFlopsPerInteraction;  // per ordered pair
//     static constexpr double kFlopsPerPartial;
//     State load(std::uint32_t particle) const;
//     Partial partial(const State&) const;
//     void interact(const State& self, const Partial& self_p,
//                   const State& other, const Partial& other_p,
//                   Accum& acc) const;   // accumulate contribution of
//                                        // `other` onto `self`
//     void store(std::uint32_t particle, const Accum&);  // += semantics
//   };
//
// Deterministic parallel launch: launch_pair_kernel optionally takes a
// util::ThreadPool. The pair list is split into fixed chunks (independent
// of the thread count); worker threads evaluate chunks concurrently with
// stores CAPTURED into per-chunk buffers, and the calling thread replays
// every captured store in chunk order afterwards. Because the replay
// order equals the serial store order, a parallel launch is bitwise
// identical to the serial one for any thread count. This relies on a
// contract every kernel here satisfies: load() must not read any field
// that store() writes within the same launch (the pass structure already
// guarantees it — positions/masses in, accelerations/densities out).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "tree/chaining_mesh.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace crkhacc::gpu {

enum class LaunchMode { kNaive, kWarpSplit };

/// Largest supported half-warp (AMD's 64-lane warp split in two).
inline constexpr std::uint32_t kMaxHalfWarp = 32;

struct LaunchStats {
  std::uint64_t interactions = 0;   ///< ordered pair evaluations
  std::uint64_t global_loads = 0;   ///< State loads from particle arrays
  std::uint64_t partial_evals = 0;  ///< separable-term computations
  std::uint64_t stores = 0;         ///< accumulator write-backs
  double flops = 0.0;
  double seconds = 0.0;
  std::size_t register_bytes_per_thread = 0;

  LaunchStats& operator+=(const LaunchStats& o) {
    interactions += o.interactions;
    global_loads += o.global_loads;
    partial_evals += o.partial_evals;
    stores += o.stores;
    flops += o.flops;
    seconds += o.seconds;
    register_bytes_per_thread =
        std::max(register_bytes_per_thread, o.register_bytes_per_thread);
    return *this;
  }
};

namespace detail {

/// Naive side pass: accumulate contributions of leaf B onto every
/// particle of leaf A, reloading and recomputing per pair.
template <typename Kernel>
void naive_side(Kernel& kernel, const tree::ChainingMesh& cm,
                const tree::Leaf& a, const tree::Leaf& b, bool same_leaf,
                LaunchStats& stats) {
  const std::uint32_t* perm = cm.permutation().data();
  for (std::uint32_t s = a.begin; s < a.end; ++s) {
    const std::uint32_t i = perm[s];
    const auto si = kernel.load(i);
    ++stats.global_loads;
    typename Kernel::Accum acc{};
    for (std::uint32_t t = b.begin; t < b.end; ++t) {
      if (same_leaf && t == s) continue;
      const std::uint32_t j = perm[t];
      const auto sj = kernel.load(j);
      ++stats.global_loads;
      // Redundant recomputation of both partials — the cost warp
      // splitting removes.
      const auto pi = kernel.partial(si);
      const auto pj = kernel.partial(sj);
      stats.partial_evals += 2;
      kernel.interact(si, pi, sj, pj, acc);
      ++stats.interactions;
    }
    kernel.store(i, acc);
    ++stats.stores;
  }
}

/// One warp-split tile: chunks I (from leaf L) and J (from leaf M), each
/// at most W lanes. If `same_chunk`, only the self-from-partner direction
/// accumulates (every ordered pair appears exactly once across the
/// rotation); otherwise both halves accumulate simultaneously.
template <typename Kernel>
void warp_tile(Kernel& kernel, const std::uint32_t* idx_i, std::uint32_t ni,
               const std::uint32_t* idx_j, std::uint32_t nj, std::uint32_t w,
               bool same_chunk, LaunchStats& stats) {
  using State = typename Kernel::State;
  using Partial = typename Kernel::Partial;
  using Accum = typename Kernel::Accum;

  // Lane-register files: fixed-size stacks, one slot per lane.
  std::array<State, kMaxHalfWarp> si, sj;
  std::array<Partial, kMaxHalfWarp> pi, pj;
  for (std::uint32_t l = 0; l < ni; ++l) {
    si[l] = kernel.load(idx_i[l]);
    pi[l] = kernel.partial(si[l]);
  }
  for (std::uint32_t m = 0; m < nj; ++m) {
    sj[m] = kernel.load(idx_j[m]);
    pj[m] = kernel.partial(sj[m]);
  }
  stats.global_loads += ni + nj;
  stats.partial_evals += ni + nj;

  std::array<Accum, kMaxHalfWarp> acc_i{};
  std::array<Accum, kMaxHalfWarp> acc_j{};
  // Rotation: at step t, i-lane l is partnered with j-lane (l + t) mod W.
  for (std::uint32_t t = 0; t < w; ++t) {
    for (std::uint32_t l = 0; l < w; ++l) {
      const std::uint32_t m = (l + t) % w;
      if (l >= ni || m >= nj) continue;  // idle lanes on ragged chunks
      if (same_chunk && l == m) continue;  // self-interaction diagonal
      // The "shuffle": the partner's state/partial is read by lane index.
      kernel.interact(si[l], pi[l], sj[m], pj[m], acc_i[l]);
      ++stats.interactions;
      if (!same_chunk) {
        kernel.interact(sj[m], pj[m], si[l], pi[l], acc_j[m]);
        ++stats.interactions;
      }
    }
  }
  for (std::uint32_t l = 0; l < ni; ++l) kernel.store(idx_i[l], acc_i[l]);
  stats.stores += ni;
  if (!same_chunk) {
    for (std::uint32_t m = 0; m < nj; ++m) kernel.store(idx_j[m], acc_j[m]);
    stats.stores += nj;
  }
}

template <typename Kernel>
void warp_split_pair(Kernel& kernel, const tree::ChainingMesh& cm,
                     std::uint32_t leaf_a, std::uint32_t leaf_b,
                     std::uint32_t warp_size, LaunchStats& stats) {
  const tree::Leaf& a = cm.leaf(leaf_a);
  const tree::Leaf& b = cm.leaf(leaf_b);
  const std::uint32_t* perm = cm.permutation().data();
  const std::uint32_t w = std::min(warp_size / 2, kMaxHalfWarp);
  const bool same_leaf = leaf_a == leaf_b;

  for (std::uint32_t ci = a.begin; ci < a.end; ci += w) {
    const std::uint32_t ni = std::min(w, a.end - ci);
    const std::uint32_t cj_begin = same_leaf ? ci : b.begin;
    for (std::uint32_t cj = cj_begin; cj < b.end; cj += w) {
      const std::uint32_t nj = std::min(w, b.end - cj);
      warp_tile(kernel, perm + ci, ni, perm + cj, nj, w,
                same_leaf && ci == cj, stats);
    }
  }
}

/// Evaluate a contiguous sub-range [first, last) of the pair list.
template <typename Kernel>
void run_pair_range(
    Kernel& kernel, const tree::ChainingMesh& cm,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    std::size_t first, std::size_t last, std::uint32_t warp_size,
    LaunchMode mode, LaunchStats& stats) {
  if (mode == LaunchMode::kNaive) {
    for (std::size_t q = first; q < last; ++q) {
      const auto [la, lb] = pairs[q];
      const bool same = la == lb;
      naive_side(kernel, cm, cm.leaf(la), cm.leaf(lb), same, stats);
      if (!same) {
        naive_side(kernel, cm, cm.leaf(lb), cm.leaf(la), false, stats);
      }
    }
  } else {
    for (std::size_t q = first; q < last; ++q) {
      const auto [la, lb] = pairs[q];
      warp_split_pair(kernel, cm, la, lb, warp_size, stats);
    }
  }
}

/// Forwards load/partial/interact to the wrapped kernel (shared read-only
/// across workers) and captures store() calls into a chunk-private buffer
/// for ordered replay on the calling thread.
template <typename Kernel>
class DeferredStoreKernel {
 public:
  using State = typename Kernel::State;
  using Partial = typename Kernel::Partial;
  using Accum = typename Kernel::Accum;
  static constexpr const char* kName = Kernel::kName;
  static constexpr double kFlopsPerInteraction = Kernel::kFlopsPerInteraction;
  static constexpr double kFlopsPerPartial = Kernel::kFlopsPerPartial;

  DeferredStoreKernel(const Kernel& kernel,
                      std::vector<std::pair<std::uint32_t, Accum>>& stores)
      : kernel_(kernel), stores_(stores) {}

  State load(std::uint32_t i) const { return kernel_.load(i); }
  Partial partial(const State& s) const { return kernel_.partial(s); }
  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    kernel_.interact(self, self_p, other, other_p, acc);
  }
  void store(std::uint32_t i, const Accum& acc) {
    stores_.emplace_back(i, acc);
  }

 private:
  const Kernel& kernel_;
  std::vector<std::pair<std::uint32_t, Accum>>& stores_;
};

/// Pairs per parallel chunk. Fixed (never derived from the thread count)
/// so the chunk decomposition — and therefore the store-replay order —
/// is identical for every pool size.
inline constexpr std::size_t kPairsPerChunk = 8;

}  // namespace detail

/// Execute `kernel` over the given leaf pairs. Pairs must satisfy
/// first <= second (as produced by ChainingMesh::interaction_pairs);
/// both orientations are accumulated. With a pool of more than one
/// thread, chunks of the pair list are evaluated concurrently with
/// deferred stores replayed in chunk order — bitwise identical to the
/// serial launch (see the header comment for the kernel contract).
template <typename Kernel>
LaunchStats launch_pair_kernel(
    Kernel& kernel, const tree::ChainingMesh& cm,
    std::span<const std::pair<std::uint32_t, std::uint32_t>> pairs,
    std::uint32_t warp_size, LaunchMode mode,
    util::ThreadPool* pool = nullptr) {
  LaunchStats stats;
  Stopwatch watch;
  if (mode == LaunchMode::kNaive) {
    stats.register_bytes_per_thread =
        2 * sizeof(typename Kernel::State) +
        2 * sizeof(typename Kernel::Partial) + sizeof(typename Kernel::Accum);
  } else {
    stats.register_bytes_per_thread = sizeof(typename Kernel::State) +
                                      sizeof(typename Kernel::Partial) +
                                      sizeof(typename Kernel::Accum);
  }
  if (!pool || pool->num_threads() <= 1) {
    detail::run_pair_range(kernel, cm, pairs, 0, pairs.size(), warp_size, mode,
                           stats);
  } else {
    using Accum = typename Kernel::Accum;
    struct ChunkResult {
      LaunchStats stats;
      std::vector<std::pair<std::uint32_t, Accum>> stores;
    };
    const std::size_t nchunks =
        (pairs.size() + detail::kPairsPerChunk - 1) / detail::kPairsPerChunk;
    std::vector<ChunkResult> chunks(nchunks);
    pool->parallel_for(
        0, pairs.size(), detail::kPairsPerChunk,
        [&](std::size_t lo, std::size_t hi, std::size_t c) {
          detail::DeferredStoreKernel<Kernel> deferred(kernel,
                                                       chunks[c].stores);
          detail::run_pair_range(deferred, cm, pairs, lo, hi, warp_size, mode,
                                 chunks[c].stats);
        });
    // Ordered replay: chunk order x in-chunk order == serial pair order.
    for (auto& chunk : chunks) {
      for (const auto& [i, acc] : chunk.stores) kernel.store(i, acc);
      stats.interactions += chunk.stats.interactions;
      stats.global_loads += chunk.stats.global_loads;
      stats.partial_evals += chunk.stats.partial_evals;
      stats.stores += chunk.stats.stores;
    }
  }
  stats.seconds = watch.seconds();
  stats.flops = static_cast<double>(stats.interactions) *
                    Kernel::kFlopsPerInteraction +
                static_cast<double>(stats.partial_evals) *
                    Kernel::kFlopsPerPartial;
  return stats;
}

}  // namespace crkhacc::gpu
