// Tests for the force split and the short-range gravity kernel.
#include <gtest/gtest.h>

#include <cmath>

#include "core/particles.h"
#include "cosmology/units.h"
#include "gpu/device.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc::gravity {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

// --- force split -------------------------------------------------------------

TEST(ForceSplit, FullNewtonianAtZeroSeparation) {
  const mesh::ForceSplit split(1.0);
  EXPECT_NEAR(split.short_range_factor(0.0), 1.0, 1e-12);
  EXPECT_NEAR(split.short_range_factor(1e-8), 1.0, 1e-6);
}

TEST(ForceSplit, MonotonicallyDecreasing) {
  const mesh::ForceSplit split(0.7);
  double prev = 1.1;
  for (double r = 0.01; r < 8.0; r += 0.05) {
    const double f = split.short_range_factor(r);
    EXPECT_LE(f, prev);
    prev = f;
  }
}

TEST(ForceSplit, CutoffBelowThreshold) {
  for (double rs : {0.3, 1.0, 2.5}) {
    for (double threshold : {1e-3, 1e-4, 1e-5}) {
      const mesh::ForceSplit split(rs, threshold);
      EXPECT_LE(split.short_range_factor(split.cutoff()), 1.1 * threshold);
      EXPECT_GE(split.short_range_factor(0.99 * split.cutoff()),
                0.9 * threshold);
      EXPECT_LT(split.cutoff(), 16.0 * rs);
    }
  }
}

TEST(ForceSplit, FilterComplementarity) {
  // The k-space filter at k=0 is 1 (all large scales to the mesh) and
  // vanishes at high k (all small scales to the pair force).
  const mesh::ForceSplit split(1.5);
  EXPECT_DOUBLE_EQ(split.long_range_filter(0.0), 1.0);
  EXPECT_LT(split.long_range_filter(5.0), 1e-20);
}

// --- short-range kernel ----------------------------------------------------------

TEST(ShortRange, TwoBodyNewtonianForce) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 1.0f, 1.0f, 1.0f, 0, 0, 0, 3.0f);
  p.push_back(1, Species::kDarkMatter, 3.0f, 1.0f, 1.0f, 0, 0, 0, 5.0f);
  tree::ChainingMesh mesh(cube(4.0), {4.0, 8});
  mesh.build(p);
  GravityConfig config;
  config.softening = 0.0f;
  gpu::FlopRegistry flops;
  compute_short_range(p, mesh, /*split=*/nullptr, config, 1.0, nullptr, flops);
  // a_0 = G m_1 / r^2 toward particle 1 (+x), r = 2.
  const double expected = units::kGravity * 5.0 / 4.0;
  EXPECT_NEAR(p.ax[0], expected, 1e-3 * expected);
  EXPECT_NEAR(p.ax[1], -units::kGravity * 3.0 / 4.0,
              1e-3 * units::kGravity * 3.0 / 4.0);
  EXPECT_NEAR(p.ay[0], 0.0, 1e-6);
}

TEST(ShortRange, MatchesDirectSumReference) {
  SplitMix64 rng(12);
  Particles p;
  for (int i = 0; i < 120; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                static_cast<float>(rng.next_double() * 4.0),
                static_cast<float>(rng.next_double() * 4.0),
                static_cast<float>(rng.next_double() * 4.0), 0, 0, 0,
                static_cast<float>(0.5 + rng.next_double()));
  }
  Particles reference = p;
  GravityConfig config;
  config.softening = 0.1f;
  tree::ChainingMesh mesh(cube(4.0), {4.0, 16});
  mesh.build(p);
  gpu::FlopRegistry flops;
  compute_short_range(p, mesh, nullptr, config, 1.0, nullptr, flops);
  direct_sum_reference(reference, nullptr, config.softening, units::kGravity);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const double scale = std::abs(reference.ax[i]) + 1.0;
    EXPECT_NEAR(p.ax[i], reference.ax[i], 2e-3 * scale);
    EXPECT_NEAR(p.ay[i], reference.ay[i], 2e-3 * scale);
    EXPECT_NEAR(p.az[i], reference.az[i], 2e-3 * scale);
  }
}

TEST(ShortRange, ConservesMomentum) {
  SplitMix64 rng(13);
  Particles p;
  for (int i = 0; i < 200; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                static_cast<float>(rng.next_double() * 3.0),
                static_cast<float>(rng.next_double() * 3.0),
                static_cast<float>(rng.next_double() * 3.0), 0, 0, 0,
                static_cast<float>(0.5 + rng.next_double()));
  }
  tree::ChainingMesh mesh(cube(3.0), {1.0, 16});
  mesh.build(p);
  const mesh::ForceSplit split(0.3);
  GravityConfig config;
  gpu::FlopRegistry flops;
  compute_short_range(p, mesh, &split, config, 1.0, nullptr, flops);
  double fx = 0.0, fy = 0.0, fz = 0.0, scale = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    fx += static_cast<double>(p.mass[i]) * p.ax[i];
    fy += static_cast<double>(p.mass[i]) * p.ay[i];
    fz += static_cast<double>(p.mass[i]) * p.az[i];
    scale += std::abs(static_cast<double>(p.mass[i]) * p.ax[i]);
  }
  EXPECT_LT(std::abs(fx), 1e-3 * scale);
  EXPECT_LT(std::abs(fy), 1e-3 * scale);
  EXPECT_LT(std::abs(fz), 1e-3 * scale);
}

TEST(ShortRange, SplitSuppressesLongRangePairs) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 0.5f, 0.5f, 0.5f, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 7.5f, 0.5f, 0.5f, 0, 0, 0, 1.0f);
  const mesh::ForceSplit split(0.5);  // cutoff ~ 3-4
  tree::ChainingMesh mesh(cube(8.0), {4.0, 8});
  mesh.build(p);
  GravityConfig config;
  gpu::FlopRegistry flops;
  compute_short_range(p, mesh, &split, config, 1.0, nullptr, flops);
  EXPECT_NEAR(p.ax[0], 0.0, 1e-7);  // beyond the cutoff: mesh's job
}

TEST(ShortRange, CosmologicalScalingOneOverASquared) {
  auto make = [] {
    Particles p;
    p.push_back(0, Species::kDarkMatter, 1.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f);
    p.push_back(1, Species::kDarkMatter, 2.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f);
    return p;
  };
  tree::ChainingMesh mesh(cube(4.0), {4.0, 8});
  GravityConfig config;
  config.softening = 0.0f;
  gpu::FlopRegistry flops;

  auto p1 = make();
  mesh.build(p1);
  compute_short_range(p1, mesh, nullptr, config, 1.0, nullptr, flops);
  auto p2 = make();
  mesh.build(p2);
  compute_short_range(p2, mesh, nullptr, config, 0.5, nullptr, flops);
  EXPECT_NEAR(p2.ax[0], 4.0 * p1.ax[0], 1e-3 * std::abs(4.0 * p1.ax[0]));
}

TEST(ShortRange, ActiveMaskSkipsStores) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 1.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 2.0f, 1.0f, 1.0f, 0, 0, 0, 1.0f);
  tree::ChainingMesh mesh(cube(4.0), {4.0, 8});
  mesh.build(p);
  std::vector<std::uint8_t> active{1, 0};
  GravityConfig config;
  gpu::FlopRegistry flops;
  compute_short_range(p, mesh, nullptr, config, 1.0, active.data(), flops);
  EXPECT_NE(p.ax[0], 0.0f);
  EXPECT_EQ(p.ax[1], 0.0f);
}

TEST(ShortRange, NaiveAndWarpSplitAgree) {
  SplitMix64 rng(14);
  Particles p;
  for (int i = 0; i < 100; ++i) {
    p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                static_cast<float>(rng.next_double() * 2.0),
                static_cast<float>(rng.next_double() * 2.0),
                static_cast<float>(rng.next_double() * 2.0), 0, 0, 0, 1.0f);
  }
  tree::ChainingMesh mesh(cube(2.0), {1.0, 16});
  mesh.build(p);
  const mesh::ForceSplit split(0.2);
  gpu::FlopRegistry flops;

  Particles naive = p;
  GravityConfig config;
  config.launch.mode = gpu::LaunchMode::kNaive;
  compute_short_range(naive, mesh, &split, config, 1.0, nullptr, flops);

  Particles warp = p;
  config.launch.mode = gpu::LaunchMode::kWarpSplit;
  compute_short_range(warp, mesh, &split, config, 1.0, nullptr, flops);

  for (std::size_t i = 0; i < p.size(); ++i) {
    const double scale = std::abs(naive.ax[i]) + 1e-3;
    EXPECT_NEAR(warp.ax[i], naive.ax[i], 1e-3 * scale);
  }
}

}  // namespace
}  // namespace crkhacc::gravity
