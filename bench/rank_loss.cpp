// Shrink-and-continue gate: rank-loss recovery wall time + bitwise
// re-entry.
//
// The paper's fault-tolerance argument is that losing a node costs
// little more than a planned restart: the watchdog converts the wedge
// into a collective verdict, the campaign relaunches the survivors, and
// the adopting ranks replay the dead rank's checkpoint chain from the
// PFS. This bench measures that claim end to end on a 3 -> 2 rank
// shrink and gates:
//
//   1. overhead — the full recovery (watchdog detection + survivor
//      unwinding + shrunken relaunch running to completion) costs less
//      than 1.10x a fault-free 2-rank restart doing the same replay
//      from the same checkpoint step;
//   2. correctness — the shrunken run's final particle state is bitwise
//      identical to that fault-free restart (memcmp per column);
//   3. bookkeeping — exactly one rank file is adopted and the campaign
//      reports one loss and one shrink recovery.
//
// --quick shrinks the problem and runs as the rank_loss_smoke ctest
// target, so a detection or adoption regression fails the build.
#include <cstdio>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "comm/world.h"
#include "core/campaign.h"
#include "core/simulation.h"
#include "io/checkpoint.h"
#include "io/multi_tier.h"
#include "io/storage.h"

using namespace crkhacc;

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

core::SimConfig bench_config(bool quick) {
  core::SimConfig config;
  config.np = quick ? 8 : 16;
  config.box = 24.0;
  config.ng = quick ? 16 : 32;
  config.z_init = 20.0;
  config.z_final = 5.0;
  // Enough steps after the two committed ones that the replayed tail
  // dominates detection latency — the overhead gate measures recovery
  // against a restart doing the same replay.
  config.num_pm_steps = quick ? 5 : 8;
  config.hydro = false;
  config.subgrid_on = false;
  config.bins.max_depth = 4;
  config.seed = 99;
  config.rank_loss_policy = core::RankLossPolicy::kShrink;
  return config;
}

struct RankRecord {
  std::uint64_t resume_step = 0;
  Particles final_particles;
  core::RunResult result;
  bool finished = false;
};

/// One rank/one epoch: initialize (or recover on resume), commit two
/// steps collectively, then run to completion. Identical comm schedule
/// across the probe, shrink, and reference phases, so the probed op
/// budget transfers.
void epoch_program(comm::Communicator& comm, const core::CampaignEpoch& epoch,
                   io::ThrottledStore& pfs, const core::SimConfig& config,
                   std::vector<std::uint64_t>* op_base,
                   std::vector<std::uint64_t>* op_end,
                   std::vector<RankRecord>* records) {
  const auto me = static_cast<std::size_t>(comm.rank());
  io::MultiTierWriter writer(*epoch.local, pfs,
                             io::MultiTierConfig{comm.rank(), 16});
  core::SimContext ctx(config.threads);
  core::Simulation sim(ctx, comm, config);
  core::RunResult pre;
  if (epoch.resume) {
    sim.recover(pfs, pre, &writer);
  } else {
    sim.initialize();
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();
    comm.barrier();
  }
  if (op_base != nullptr) (*op_base)[me] = comm.op_count();
  if (epoch.resume && records != nullptr) {
    (*records)[me].resume_step = sim.current_step();
  }

  auto result = sim.run(&writer, &pfs, nullptr);
  writer.drain();
  comm.barrier();
  if (op_end != nullptr) (*op_end)[me] = comm.op_count();
  if (records != nullptr) {
    result.merge(pre);
    epoch.stamp(result);
    auto& record = (*records)[me];
    record.final_particles = sim.particles();
    record.result = result;
    record.finished = true;
  }
}

template <typename T>
bool same_bits(const std::vector<T>& a, const std::vector<T>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(T)) == 0);
}

bool bitwise_equal(const Particles& a, const Particles& b) {
  return same_bits(a.id, b.id) && same_bits(a.x, b.x) && same_bits(a.y, b.y) &&
         same_bits(a.z, b.z) && same_bits(a.vx, b.vx) &&
         same_bits(a.vy, b.vy) && same_bits(a.vz, b.vz) &&
         same_bits(a.mass, b.mass) && same_bits(a.u, b.u) &&
         same_bits(a.rho, b.rho) && same_bits(a.hsml, b.hsml) &&
         same_bits(a.metal, b.metal) && same_bits(a.species, b.species) &&
         same_bits(a.ghost, b.ghost);
}

struct Stores {
  io::ThrottledStore pfs;
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  std::vector<io::ThrottledStore*> locals;

  Stores(const fs::path& root, int ranks)
      : pfs(io::StoreConfig{(root / "pfs").string(), 0.0, 0.0, true}) {
    for (int r = 0; r < ranks; ++r) {
      nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
          (root / ("nvme" + std::to_string(r))).string(), 0.0, 0.0, false}));
      locals.push_back(nvmes.back().get());
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const int ranks = 3;
  const core::SimConfig config = bench_config(quick);
  const comm::WatchdogConfig fast_watchdog{true, 0.005};

  const auto root = fs::temp_directory_path() / "crkhacc_rank_loss_bench";
  fs::remove_all(root);
  fs::create_directories(root);

  std::printf("rank_loss: np=%d ng=%d steps=%d, %d ranks -> %d survivors\n\n",
              static_cast<int>(config.np), static_cast<int>(config.ng),
              config.num_pm_steps, ranks, ranks - 1);

  // --- probe: fault-free op budget per rank ------------------------------
  std::vector<std::uint64_t> op_base(ranks, 0), op_end(ranks, 0);
  {
    Stores stores(root / "probe", ranks);
    comm::World world(ranks);
    world.run([&](comm::Communicator& comm) {
      core::CampaignEpoch epoch;
      epoch.local = stores.locals[static_cast<std::size_t>(comm.rank())];
      epoch_program(comm, epoch, stores.pfs, config, &op_base, &op_end,
                    nullptr);
    });
  }
  const std::uint64_t kill_op = (op_base[1] + op_end[1]) / 2;
  std::printf("probe: rank 1 comm ops %llu..%llu, kill scheduled at op %llu\n",
              static_cast<unsigned long long>(op_base[1]),
              static_cast<unsigned long long>(op_end[1]),
              static_cast<unsigned long long>(kill_op));

  // --- shrink: kill rank 1 mid-run, survive on 2 ranks -------------------
  Stores shrink_stores(root / "shrink", ranks);
  std::vector<RankRecord> shrunk(ranks);
  core::Campaign campaign(core::RankLossPolicy::kShrink, shrink_stores.locals,
                          fast_watchdog);
  campaign.schedule_rank_failure(1, kill_op);
  campaign.run([&](comm::Communicator& comm, const core::CampaignEpoch& epoch) {
    epoch_program(comm, epoch, shrink_stores.pfs, config, nullptr, nullptr,
                  &shrunk);
  });
  const double recovery_s = campaign.last_recovery_seconds();
  const std::uint64_t resume_step = shrunk[0].resume_step;
  std::printf("shrink: recovered from step %llu, recovery %0.3f s "
              "(detection + shrunken relaunch to completion)\n",
              static_cast<unsigned long long>(resume_step), recovery_s);

  bool ok = true;
  if (campaign.rank_losses() != 1 || campaign.shrink_recoveries() != 1 ||
      !shrunk[0].finished || !shrunk[1].finished ||
      shrunk[0].result.adopted_rank_files != 1) {
    std::printf("FAIL: expected 1 loss / 1 shrink recovery / 1 adopted rank "
                "file, got %llu / %llu / %llu\n",
                static_cast<unsigned long long>(campaign.rank_losses()),
                static_cast<unsigned long long>(campaign.shrink_recoveries()),
                static_cast<unsigned long long>(
                    shrunk[0].result.adopted_rank_files));
    ok = false;
  }

  // --- reference: fault-free 2-rank restart from the same step -----------
  const auto step_dir =
      fs::path(io::MultiTierWriter::checkpoint_path(resume_step, 0))
          .parent_path()
          .string();
  Stores ref_stores(root / "reference", ranks - 1);
  fs::create_directories(
      fs::path(ref_stores.pfs.full_path(step_dir)).parent_path());
  fs::copy(shrink_stores.pfs.full_path(step_dir),
           ref_stores.pfs.full_path(step_dir), fs::copy_options::recursive);

  std::vector<RankRecord> reference(ranks - 1);
  core::Campaign ref_campaign(core::RankLossPolicy::kShrink, ref_stores.locals,
                              fast_watchdog);
  ref_campaign.set_resume(true);
  const auto restart_begin = Clock::now();
  ref_campaign.run(
      [&](comm::Communicator& comm, const core::CampaignEpoch& epoch) {
        epoch_program(comm, epoch, ref_stores.pfs, config, nullptr, nullptr,
                      &reference);
      });
  const double restart_s =
      std::chrono::duration<double>(Clock::now() - restart_begin).count();
  std::printf("reference: fault-free 2-rank restart from step %llu took "
              "%0.3f s\n\n",
              static_cast<unsigned long long>(reference[0].resume_step),
              restart_s);

  if (reference[0].resume_step != resume_step) {
    std::printf("FAIL: reference restarted from step %llu, not %llu\n",
                static_cast<unsigned long long>(reference[0].resume_step),
                static_cast<unsigned long long>(resume_step));
    ok = false;
  }
  for (int r = 0; r < ranks - 1; ++r) {
    const auto idx = static_cast<std::size_t>(r);
    if (!bitwise_equal(shrunk[idx].final_particles,
                       reference[idx].final_particles)) {
      std::printf("FAIL: rank %d final state differs from the fault-free "
                  "restart\n", r);
      ok = false;
    }
  }
  if (ok) {
    std::printf("re-entry: final state bitwise identical to the fault-free "
                "restart on both survivors\n");
  }

  const double overhead = restart_s > 0.0 ? recovery_s / restart_s : 0.0;
  std::printf("recovery overhead: %0.3f s vs %0.3f s restart -> %0.2fx "
              "(gate: < 1.10x)\n", recovery_s, restart_s, overhead);
  if (overhead >= 1.10) {
    std::printf("FAIL: recovery overhead above the 1.10x gate\n");
    ok = false;
  }

  fs::remove_all(root);
  std::printf("\n%s\n", ok ? "ALL GATES PASS" : "GATE FAILURE");
  return ok ? 0 : 1;
}
