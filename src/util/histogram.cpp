#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assertions.h"

namespace crkhacc {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  CHECK(bins > 0);
  CHECK(hi > lo);
}

void Histogram::add(double sample) {
  const double t = (sample - lo_) / (hi_ - lo_);
  auto bin = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  bin = std::clamp<std::ptrdiff_t>(bin, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  ++count_;
  sum_ += sample;
  sum_sq_ += sample * sample;
}

void Histogram::add_all(const std::vector<double>& samples) {
  for (double s : samples) add(s);
}

void Histogram::merge(const Histogram& other) {
  CHECK(other.counts_.size() == counts_.size());
  CHECK(other.lo_ == lo_ && other.hi_ == hi_);
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double Histogram::mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

double Histogram::stddev() const {
  if (count_ < 2) return 0.0;
  const double n = static_cast<double>(count_);
  const double var = std::max(0.0, sum_sq_ / n - (sum_ / n) * (sum_ / n));
  return std::sqrt(var);
}

double Histogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double frac =
          counts_[i] ? (target - cumulative) / static_cast<double>(counts_[i]) : 0.0;
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cumulative = next;
  }
  return hi_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

std::string Histogram::ascii(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof(line), "[%8.3f,%8.3f) ", bin_lo(i), bin_hi(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof(line), "  %zu\n", counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace crkhacc
