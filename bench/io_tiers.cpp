// Section VI-B / IV-B4: multi-tier I/O vs direct-to-PFS writes.
//
// The paper's claim: synchronized node-local NVMe writes + asynchronous
// bleed achieve an effective sustained bandwidth (5.45 TB/s) ABOVE the
// PFS's own peak (4.6 TB/s), because the simulation only ever blocks on
// the fast tier while the slow tier drains in the background. We
// reproduce the experiment on the throttled storage models: N writers
// checkpoint repeatedly through (a) the multi-tier path and (b) direct
// synchronous PFS writes, and compare simulation-blocking time and
// effective bandwidth.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/particles.h"
#include "io/multi_tier.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace crkhacc;

namespace {

Particles payload_particles(std::size_t count, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < count; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * 10.0),
                static_cast<float>(rng.next_double() * 10.0),
                static_cast<float>(rng.next_double() * 10.0), 0, 0, 0, 1.0f);
  }
  return p;
}

struct IoOutcome {
  double blocked_seconds = 0.0;  ///< max over ranks, sum over steps
  double wall_seconds = 0.0;     ///< includes final drain
  std::uint64_t bytes = 0;
};

IoOutcome run_campaign(int ranks, int steps, std::size_t particles_per_rank,
                       bool multi_tier, const std::string& workdir) {
  std::filesystem::remove_all(workdir);
  // NVMe: private 150 MB/s per node. PFS: shared 25 MB/s + 2 ms latency.
  io::ThrottledStore pfs(
      io::StoreConfig{workdir + "/pfs", 25e6, 0.002, /*shared=*/true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        workdir + "/nvme" + std::to_string(r), 150e6, 0.0, false}));
  }
  IoOutcome outcome;
  std::mutex mutex;
  Stopwatch wall;
  comm::World world(ranks);
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 3});
    const auto particles =
        payload_particles(particles_per_rank,
                          static_cast<std::uint64_t>(comm.rank()) + 1);
    double blocked = 0.0;
    for (int s = 0; s < steps; ++s) {
      io::SnapshotMeta meta;
      meta.step = static_cast<std::uint64_t>(s);
      meta.rank = comm.rank();
      meta.num_ranks = comm.size();
      blocked += multi_tier ? writer.write_checkpoint(meta, particles)
                            : writer.write_checkpoint_direct(meta, particles);
      // "Simulation work" between checkpoints overlaps the async bleed.
      Stopwatch compute;
      volatile double sink = 0.0;
      while (compute.seconds() < 0.05) sink += 1.0;
      (void)sink;
    }
    writer.drain();
    const double max_blocked =
        comm.allreduce_scalar(blocked, comm::ReduceOp::kMax);
    const auto bytes = static_cast<std::int64_t>(writer.bytes_written());
    const auto total_bytes = comm.allreduce_scalar(bytes, comm::ReduceOp::kSum);
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mutex);
      outcome.blocked_seconds = max_blocked;
      outcome.bytes = static_cast<std::uint64_t>(total_bytes);
    }
  });
  outcome.wall_seconds = wall.seconds();
  std::filesystem::remove_all(workdir);
  return outcome;
}

}  // namespace

int main() {
  bench::print_header("I/O tiers — multi-tier vs direct-to-PFS checkpoints");
  const std::string workdir =
      (std::filesystem::temp_directory_path() / "crkhacc_io_tiers").string();
  const int ranks = 4;
  const int steps = 6;

  std::printf("machine model: %d nodes x 150 MB/s NVMe (private), shared PFS "
              "25 MB/s + 2 ms latency\n\n",
              ranks);
  std::printf("%-12s %-14s %-16s %-18s %-16s\n", "payload", "strategy",
              "blocked [s]", "eff. BW [MB/s]", "wall [s]");
  bench::print_rule();

  for (std::size_t count : {10000u, 40000u, 120000u}) {
    const auto multi =
        run_campaign(ranks, steps, count, /*multi_tier=*/true, workdir);
    const auto direct =
        run_campaign(ranks, steps, count, /*multi_tier=*/false, workdir);
    const double payload_mb =
        static_cast<double>(multi.bytes) / 1e6;
    std::printf("%-12.1f %-14s %-16.3f %-18.1f %-16.2f\n", payload_mb,
                "multi-tier", multi.blocked_seconds,
                payload_mb / std::max(1e-9, multi.blocked_seconds),
                multi.wall_seconds);
    std::printf("%-12.1f %-14s %-16.3f %-18.1f %-16.2f\n", payload_mb,
                "direct-PFS", direct.blocked_seconds,
                payload_mb / std::max(1e-9, direct.blocked_seconds),
                direct.wall_seconds);
    std::printf("%-12s speedup (blocking): %.1fx; effective BW exceeds the "
                "25 MB/s PFS channel: %s\n\n", "",
                direct.blocked_seconds / std::max(1e-9, multi.blocked_seconds),
                payload_mb / std::max(1e-9, multi.blocked_seconds) > 25.0
                    ? "yes"
                    : "no");
  }
  std::printf("paper: 150-180 TB checkpoints in tens of seconds on NVMe; "
              "effective 5.45 TB/s vs Orion's 4.6 TB/s peak -> the\n"
              "multi-tier effective bandwidth exceeds what direct PFS writes "
              "could ever deliver.\n");
  return 0;
}
