// Tests for the serial FFT core and the distributed (SWFFT-analog) FFT.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "comm/world.h"
#include "fft/distributed_fft.h"
#include "fft/fft.h"
#include "util/rng.h"

namespace crkhacc::fft {
namespace {

constexpr double kPi = std::numbers::pi;

std::vector<Complex> random_signal(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<Complex> signal(n);
  for (auto& v : signal) {
    v = Complex(rng.next_double() - 0.5, rng.next_double() - 0.5);
  }
  return signal;
}

/// Direct O(n^2) DFT reference.
std::vector<Complex> dft_reference(const std::vector<Complex>& in, bool inverse) {
  const std::size_t n = in.size();
  std::vector<Complex> out(n, Complex(0, 0));
  const double sign = inverse ? 1.0 : -1.0;
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = sign * 2.0 * kPi * static_cast<double>(k * j) /
                           static_cast<double>(n);
      out[k] += in[j] * Complex(std::cos(angle), std::sin(angle));
    }
    if (inverse) out[k] /= static_cast<double>(n);
  }
  return out;
}

TEST(FftHelpers, Pow2Predicates) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(63), 64u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(FftHelpers, FrequencyConvention) {
  EXPECT_EQ(freq_of(0, 8), 0);
  EXPECT_EQ(freq_of(3, 8), 3);
  EXPECT_EQ(freq_of(4, 8), 4);   // Nyquist stays positive
  EXPECT_EQ(freq_of(5, 8), -3);
  EXPECT_EQ(freq_of(7, 8), -1);
}

class Fft1dTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Fft1dTest, MatchesDirectDft) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 17);
  const auto expected = dft_reference(signal, false);
  transform(signal, false);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(signal[k].real(), expected[k].real(), 1e-9 * n);
    EXPECT_NEAR(signal[k].imag(), expected[k].imag(), 1e-9 * n);
  }
}

TEST_P(Fft1dTest, InverseRecoversInput) {
  const std::size_t n = GetParam();
  const auto original = random_signal(n, 23);
  auto signal = original;
  transform(signal, false);
  transform(signal, true);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(signal[i].real(), original[i].real(), 1e-10 * n);
    EXPECT_NEAR(signal[i].imag(), original[i].imag(), 1e-10 * n);
  }
}

TEST_P(Fft1dTest, ParsevalHolds) {
  const std::size_t n = GetParam();
  auto signal = random_signal(n, 31);
  double time_energy = 0.0;
  for (const auto& v : signal) time_energy += std::norm(v);
  transform(signal, false);
  double freq_energy = 0.0;
  for (const auto& v : signal) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy, 1e-8 * n);
}

// Power-of-two sizes take the radix-2 path; others exercise Bluestein.
INSTANTIATE_TEST_SUITE_P(Sizes, Fft1dTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 3, 5, 6, 7, 12,
                                           15, 100, 63));

TEST(Fft1d, DeltaFunctionGivesFlatSpectrum) {
  std::vector<Complex> signal(16, Complex(0, 0));
  signal[0] = Complex(1, 0);
  transform(signal, false);
  for (const auto& v : signal) {
    EXPECT_NEAR(v.real(), 1.0, 1e-12);
    EXPECT_NEAR(v.imag(), 0.0, 1e-12);
  }
}

TEST(Fft1d, SingleModeLandsInRightBin) {
  const std::size_t n = 32;
  std::vector<Complex> signal(n);
  const std::size_t mode = 5;
  for (std::size_t j = 0; j < n; ++j) {
    const double angle = 2.0 * kPi * static_cast<double>(mode * j) / n;
    signal[j] = Complex(std::cos(angle), std::sin(angle));
  }
  transform(signal, false);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = (k == mode) ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(signal[k].real(), expected, 1e-9);
    EXPECT_NEAR(signal[k].imag(), 0.0, 1e-9);
  }
}

TEST(Fft3d, RoundTrip) {
  const std::size_t nx = 8, ny = 4, nz = 6;
  auto original = random_signal(nx * ny * nz, 41);
  auto data = original;
  transform_3d(data, nx, ny, nz, false);
  transform_3d(data, nx, ny, nz, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-9);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-9);
  }
}

// --- distributed ------------------------------------------------------------

class DistributedFftTest : public ::testing::TestWithParam<int> {};

TEST_P(DistributedFftTest, MatchesSerial3dTransform) {
  const int p = GetParam();
  const std::size_t n = 8;
  // Serial reference on the full cube.
  auto reference = random_signal(n * n * n, 53);
  auto expected = reference;
  transform_3d(expected, n, n, n, false);

  comm::World world(p);
  world.run([&](comm::Communicator& comm) {
    DistributedFFT dfft(comm, n);
    // Fill the local z-slab from the global reference array.
    const std::size_t z0 = dfft.local_z_start();
    for (std::size_t zl = 0; zl < dfft.local_z_count(); ++zl) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          dfft.real_data()[dfft.real_index(zl, y, x)] =
              reference[((z0 + zl) * n + y) * n + x];
        }
      }
    }
    dfft.forward();
    // Compare the local k-slab against the serial transform.
    const std::size_t kx0 = dfft.local_kx_start();
    for (std::size_t xl = 0; xl < dfft.local_kx_count(); ++xl) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t z = 0; z < n; ++z) {
          const auto& got = dfft.k_data()[dfft.k_index(xl, y, z)];
          const auto& want = expected[(z * n + y) * n + (kx0 + xl)];
          ASSERT_NEAR(got.real(), want.real(), 1e-9);
          ASSERT_NEAR(got.imag(), want.imag(), 1e-9);
        }
      }
    }
  });
}

TEST_P(DistributedFftTest, RoundTripAcrossRanks) {
  const int p = GetParam();
  const std::size_t n = 12;  // non-power-of-two exercises Bluestein
  comm::World world(p);
  world.run([&](comm::Communicator& comm) {
    DistributedFFT dfft(comm, n);
    SplitMix64 rng(1000 + static_cast<std::uint64_t>(comm.rank()));
    std::vector<Complex> original(dfft.real_data().size());
    for (auto& v : original) {
      v = Complex(rng.next_double(), rng.next_double());
    }
    dfft.real_data() = original;
    dfft.forward();
    dfft.backward();
    for (std::size_t i = 0; i < original.size(); ++i) {
      ASSERT_NEAR(dfft.real_data()[i].real(), original[i].real(), 1e-9);
      ASSERT_NEAR(dfft.real_data()[i].imag(), original[i].imag(), 1e-9);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DistributedFftTest,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(SlabPartition, CoversAllIndicesExactlyOnce) {
  const SlabPartition part(100, 7);
  std::size_t total = 0;
  for (int r = 0; r < 7; ++r) total += part.count(r);
  EXPECT_EQ(total, 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    const int owner = part.owner(i);
    EXPECT_GE(i, part.start(owner));
    EXPECT_LT(i, part.start(owner) + part.count(owner));
  }
}

TEST(SlabPartition, MoreRanksThanItems) {
  const SlabPartition part(3, 8);
  std::size_t total = 0;
  for (int r = 0; r < 8; ++r) total += part.count(r);
  EXPECT_EQ(total, 3u);
}

}  // namespace
}  // namespace crkhacc::fft
