// Subgrid astrophysics: star formation, supernova feedback with chemical
// enrichment, black-hole seeding and AGN thermal feedback.
//
// These are the source terms that force the adaptive sub-cycling in
// CRK-HACC: they act in dense regions on timescales far below the global
// PM step and inject large amounts of energy. The implementations follow
// the standard forms used by cosmological codes:
//
//  * Star formation — gas above a proper hydrogen-density threshold and
//    below a temperature ceiling converts stochastically on the local
//    dynamical time (Schmidt law with efficiency eps_sf). Conversion
//    flips the particle's species to kStar, conserving mass and count.
//  * SN feedback — each formed star returns e_sn erg per formed solar
//    mass as thermal energy and a metal yield, shared kernel-weighted
//    over gas within the injection radius.
//  * AGN — gas denser than a (much higher) seed threshold with no black
//    hole nearby becomes a BH seed; BHs accrete Bondi-like (capped at
//    Eddington-like fraction of their mass per dynamical time) and return
//    eps_f * eps_r * mdot c^2 as thermal energy to neighboring gas.
//
// All stochastic draws are counter-based on (particle id, step), so any
// rank evaluating the same particle in the same step — including ghost
// replicas — makes the identical decision. That property is what keeps
// the overloaded decomposition consistent without communication.
#pragma once

#include <cstdint>
#include <memory>
#include <span>

#include "core/particles.h"
#include "cosmology/background.h"
#include "subgrid/cooling.h"
#include "tree/chaining_mesh.h"

namespace crkhacc::subgrid {

struct StarFormationParams {
  double n_h_threshold = 0.13;   ///< proper hydrogen density [1/cm^3]
  double t_max_K = 1.0e5;        ///< no SF in hotter gas
  double efficiency = 0.05;      ///< eps_sf per dynamical time
  /// Comoving overdensity gate rho / rho_mean_gas (the standard second
  /// criterion: the early universe is denser than today's galaxies, so a
  /// physical threshold alone would convert the whole high-z box).
  double min_overdensity = 57.7;
  bool enabled = true;
};

struct SupernovaParams {
  double e_sn_per_msun = 1.0e49;  ///< erg per Msun of stars formed
  double metal_yield = 0.02;      ///< metal mass fraction returned
  bool enabled = true;
};

struct AgnParams {
  double seed_n_h = 10.0;         ///< seeding density threshold [1/cm^3]
  double seed_exclusion = 0.5;    ///< no second BH within this radius (code)
  double accretion_alpha = 0.1;   ///< Bondi normalization
  double max_fraction = 0.1;      ///< mdot cap: fraction of M_bh / t_dyn
  double eps_f_eps_r = 0.005;     ///< coupled feedback efficiency
  bool enabled = true;
};

struct SubgridConfig {
  CoolingConfig cooling;
  StarFormationParams star_formation;
  SupernovaParams supernova;
  AgnParams agn;
  double injection_radius = 0.25;  ///< feedback smoothing radius (code)
  std::uint64_t seed = 1234;       ///< stochastic stream seed
  /// Mean comoving gas density (code units) for the overdensity gates;
  /// 0 disables them (set by the simulation driver from the cosmology).
  double mean_gas_density = 0.0;
};

struct SubgridStats {
  std::int64_t stars_formed = 0;
  std::int64_t bh_seeded = 0;
  std::int64_t sn_events = 0;
  std::int64_t agn_events = 0;
  double energy_injected = 0.0;  ///< code units (mass * (km/s)^2)
  double mass_in_stars = 0.0;
  double metals_produced = 0.0;

  SubgridStats& operator+=(const SubgridStats& o) {
    stars_formed += o.stars_formed;
    bh_seeded += o.bh_seeded;
    sn_events += o.sn_events;
    agn_events += o.agn_events;
    energy_injected += o.energy_injected;
    mass_in_stars += o.mass_in_stars;
    metals_produced += o.metals_produced;
    return *this;
  }
};

class SubgridModel {
 public:
  /// Builds a private cooling table from config.cooling.
  explicit SubgridModel(const SubgridConfig& config);

  /// Borrows a pre-built (immutable) cooling table — the shared-context
  /// path, where core::SimContext keys tables on their config so N
  /// scenarios with identical cooling physics build the table once.
  /// `cooling` must be non-null and match config.cooling.
  SubgridModel(const SubgridConfig& config,
               std::shared_ptr<const CoolingTable> cooling);

  const SubgridConfig& config() const { return config_; }
  const CoolingTable& cooling() const { return *cooling_; }

  /// Apply one operator-split subgrid step at scale factor a. `dt` gives
  /// each particle's elapsed interval (code time) — under hierarchical
  /// stepping, a particle active at this substep advances by its own bin
  /// length. Only active particles change state; ghost replicas make
  /// identical stochastic choices because draws are keyed on particle id.
  /// `gas_mesh` serves the feedback neighbor queries. `step` indexes the
  /// stochastic stream (global substep counter).
  SubgridStats apply(Particles& particles, const tree::ChainingMesh& gas_mesh,
                     const cosmo::Background& bg, double a,
                     std::span<const double> dt,
                     const std::uint8_t* active, std::uint64_t step);

  /// Shortest source timescale for active gas (used by the timestep
  /// controller): min(dynamical time) over star-forming candidates.
  double min_source_timescale(const Particles& particles,
                              const cosmo::Background& bg, double a,
                              const std::uint8_t* active) const;

 private:
  /// Proper hydrogen number density [1/cm^3] of particle i.
  double n_h_of(const Particles& particles, std::size_t i, double a) const;
  /// Local dynamical time [code units] at proper density rho (code).
  double dynamical_time(double rho_proper) const;

  void inject_thermal(Particles& particles, const tree::ChainingMesh& gas_mesh,
                      float x, float y, float z, double energy, double metals,
                      SubgridStats& stats);

  SubgridConfig config_;
  std::shared_ptr<const CoolingTable> cooling_;
};

}  // namespace crkhacc::subgrid
