#include "core/param_file.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "core/service.h"
#include "gpu/device.h"
#include "util/log.h"

namespace crkhacc::core {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool has_service_prefix(const std::string& key) {
  return key.rfind("service_", 0) == 0;
}

// Process-wide warn-once state for unknown keys: apply() runs on every
// rank (and, under ScenarioService, for every job overlay), so a typo'd
// knob is reported exactly once per process, not once per caller. File
// scope (not function-local) so unknown_keys_warned() can read it.
std::mutex g_warned_mutex;
std::set<std::string>& warned_keys() {
  static std::set<std::string> keys;
  return keys;
}

/// Warn (once per process) and record `key` as unknown.
void warn_unknown_key(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_warned_mutex);
  if (warned_keys().insert(key).second) {
    HACC_LOG_WARN("param file: unknown key '%s' ignored (defaults used)",
                  key.c_str());
  }
}

}  // namespace

std::optional<ParamFile> ParamFile::parse(const std::string& text) {
  ParamFile file;
  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  while (std::getline(stream, line)) {
    ++line_number;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto eq = trimmed.find('=');
    if (eq == std::string::npos) {
      HACC_LOG_ERROR("param file: line %d has no '=': %s", line_number,
                     trimmed.c_str());
      return std::nullopt;
    }
    const auto key = trim(trimmed.substr(0, eq));
    const auto value = trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      HACC_LOG_ERROR("param file: empty key on line %d", line_number);
      return std::nullopt;
    }
    file.values_[key] = value;
  }
  return file;
}

std::optional<ParamFile> ParamFile::load(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) return std::nullopt;
  std::stringstream buffer;
  buffer << stream.rdbuf();
  return parse(buffer.str());
}

bool ParamFile::has(const std::string& key) const {
  return values_.count(key) > 0;
}

std::optional<std::string> ParamFile::get_string(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> ParamFile::get_double(const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(*raw, &consumed);
    if (consumed != raw->size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<long> ParamFile::get_int(const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const long value = std::stol(*raw, &consumed);
    if (consumed != raw->size()) return std::nullopt;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<bool> ParamFile::get_bool(const std::string& key) const {
  const auto raw = get_string(key);
  if (!raw) return std::nullopt;
  const auto v = lower(*raw);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return std::nullopt;
}

std::vector<std::string> ParamFile::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

std::vector<std::string> ParamFile::apply(SimConfig& config) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (has_service_prefix(key)) continue;  // ServiceConfig overload's business
    bool ok = true;
    // Recognized key whose value was rejected (specific error already
    // logged) — reported to the caller without the unknown-key warning.
    bool rejected = false;
    if (key == "np") {
      if (auto v = get_int(key)) config.np = static_cast<std::size_t>(*v);
    } else if (key == "box") {
      if (auto v = get_double(key)) config.box = *v;
    } else if (key == "ng") {
      if (auto v = get_int(key)) config.ng = static_cast<std::size_t>(*v);
    } else if (key == "z_init") {
      if (auto v = get_double(key)) config.z_init = *v;
    } else if (key == "z_final") {
      if (auto v = get_double(key)) config.z_final = *v;
    } else if (key == "num_pm_steps") {
      if (auto v = get_int(key)) config.num_pm_steps = static_cast<int>(*v);
    } else if (key == "rs_cells") {
      if (auto v = get_double(key)) config.rs_cells = *v;
    } else if (key == "split_threshold") {
      if (auto v = get_double(key)) config.split_threshold = *v;
    } else if (key == "hydro") {
      if (auto v = get_bool(key)) config.hydro = *v;
    } else if (key == "subgrid") {
      if (auto v = get_bool(key)) config.subgrid_on = *v;
    } else if (key == "flat_stepping") {
      if (auto v = get_bool(key)) config.flat_stepping = *v;
    } else if (key == "max_depth") {
      if (auto v = get_int(key)) config.bins.max_depth = static_cast<int>(*v);
    } else if (key == "analysis_every") {
      if (auto v = get_int(key)) config.analysis_every = static_cast<int>(*v);
    } else if (key == "seed") {
      if (auto v = get_int(key)) config.seed = static_cast<std::uint64_t>(*v);
    } else if (key == "softening") {
      if (auto v = get_double(key)) config.softening = *v;
    } else if (key == "omega_m") {
      if (auto v = get_double(key)) config.cosmology.omega_m = *v;
    } else if (key == "omega_b") {
      if (auto v = get_double(key)) config.cosmology.omega_b = *v;
    } else if (key == "omega_l") {
      if (auto v = get_double(key)) config.cosmology.omega_l = *v;
    } else if (key == "hubble") {
      if (auto v = get_double(key)) config.cosmology.h = *v;
    } else if (key == "sigma8") {
      if (auto v = get_double(key)) config.cosmology.sigma8 = *v;
    } else if (key == "n_s") {
      if (auto v = get_double(key)) config.cosmology.n_s = *v;
    } else if (key == "sph_eta") {
      if (auto v = get_double(key)) config.sph.eta = static_cast<float>(*v);
    } else if (key == "sph_cfl") {
      if (auto v = get_double(key)) config.sph.cfl = static_cast<float>(*v);
    } else if (key == "sph_kernel") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "wendland" || v == "wendland_c4") {
        config.sph.kernel = sph::KernelShape::kWendlandC4;
      } else if (v == "cubic" || v == "cubic_spline") {
        config.sph.kernel = sph::KernelShape::kCubicSpline;
      } else {
        ok = false;
      }
    } else if (key == "warp_size") {
      const auto v = get_int(key);
      if (v && *v >= 2) {
        config.sph.launch.warp_size = static_cast<std::uint32_t>(*v);
        config.gravity.launch.warp_size = static_cast<std::uint32_t>(*v);
      } else {
        // A half-warp of warp_size / 2 == 0 lanes would hang the
        // warp-split tile loop; refuse it here rather than at launch.
        HACC_LOG_ERROR(
            "param file: warp_size = '%s' rejected: warp_size must be an "
            "integer >= 2 (the warp-split half-warp is warp_size / 2)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "launch_mode") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "warp_split" || v == "warpsplit") {
        config.sph.launch.mode = gpu::LaunchMode::kWarpSplit;
        config.gravity.launch.mode = gpu::LaunchMode::kWarpSplit;
      } else if (v == "naive") {
        config.sph.launch.mode = gpu::LaunchMode::kNaive;
        config.gravity.launch.mode = gpu::LaunchMode::kNaive;
      } else {
        HACC_LOG_ERROR(
            "param file: launch_mode = '%s' rejected: expected "
            "'warp_split' or 'naive'",
            v.c_str());
        rejected = true;
      }
    } else if (key == "launch_schedule") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "leaf_owner" || v == "owner") {
        config.sph.launch.schedule = gpu::LaunchSchedule::kLeafOwner;
        config.gravity.launch.schedule = gpu::LaunchSchedule::kLeafOwner;
      } else if (v == "deferred_store" || v == "replay") {
        config.sph.launch.schedule = gpu::LaunchSchedule::kDeferredStore;
        config.gravity.launch.schedule = gpu::LaunchSchedule::kDeferredStore;
      } else if (v == "simd") {
        if (gpu::simd_support().available) {
          config.sph.launch.schedule = gpu::LaunchSchedule::kSimd;
          config.gravity.launch.schedule = gpu::LaunchSchedule::kSimd;
        } else {
          // Keep whatever schedule the config already had: a run on a
          // SIMD-less build should proceed, just not with kSimd.
          HACC_LOG_ERROR(
              "param file: launch_schedule = 'simd' rejected: this build "
              "has no SIMD backend (configure with CRKHACC_ENABLE_SIMD=ON "
              "on a supported host); keeping '%s'",
              config.sph.launch.schedule == gpu::LaunchSchedule::kDeferredStore
                  ? "deferred_store"
                  : "leaf_owner");
          rejected = true;
        }
      } else {
        HACC_LOG_ERROR(
            "param file: launch_schedule = '%s' rejected: expected "
            "'leaf_owner', 'deferred_store' or 'simd'",
            v.c_str());
        rejected = true;
      }
    } else if (key == "simd_math") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "exact" || v == "bitwise") {
        config.sph.launch.simd_math = gpu::SimdMath::kExact;
        config.gravity.launch.simd_math = gpu::SimdMath::kExact;
      } else if (v == "fused" || v == "fma") {
        config.sph.launch.simd_math = gpu::SimdMath::kFused;
        config.gravity.launch.simd_math = gpu::SimdMath::kFused;
      } else {
        HACC_LOG_ERROR(
            "param file: simd_math = '%s' rejected: expected 'exact' "
            "(bitwise scalar parity) or 'fused' (FMA, ULP-bounded)",
            v.c_str());
        rejected = true;
      }
    } else if (key == "rank_loss_policy") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "fatal") {
        config.rank_loss_policy = RankLossPolicy::kFatal;
      } else if (v == "shrink") {
        config.rank_loss_policy = RankLossPolicy::kShrink;
      } else {
        HACC_LOG_ERROR(
            "param file: rank_loss_policy = '%s' rejected: expected "
            "'fatal' (rank loss ends the campaign) or 'shrink' "
            "(relaunch on the survivors)",
            v.c_str());
        rejected = true;
      }
    } else if (key == "threads") {
      if (auto v = get_int(key)) config.threads = static_cast<int>(*v);
    } else if (key == "trace") {
      if (auto v = get_bool(key)) config.trace.enabled = *v;
    } else if (key == "trace_file") {
      if (auto v = get_string(key)) config.trace.file = *v;
    } else if (key == "trace_buffer_events") {
      const auto v = get_int(key);
      if (v && *v >= 1) {
        config.trace.buffer_events = static_cast<std::size_t>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: trace_buffer_events = '%s' rejected: must be an "
            "integer >= 1 (per-thread ring capacity in events)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "sdc") {
      if (auto v = get_bool(key)) config.sdc.enabled = *v;
    } else if (key == "sdc_page_bytes") {
      if (auto v = get_int(key)) {
        config.sdc.page_bytes = static_cast<std::size_t>(*v);
      }
    } else if (key == "sdc_max_replays") {
      if (auto v = get_int(key)) config.sdc.max_replays = static_cast<int>(*v);
    } else if (key == "sdc_mass_drift_tol") {
      if (auto v = get_double(key)) config.sdc.mass_drift_tol = *v;
    } else if (key == "sdc_energy_growth") {
      if (auto v = get_double(key)) config.sdc.energy_growth_factor = *v;
    } else if (key == "sdc_momentum_drift_tol") {
      if (auto v = get_double(key)) config.sdc.momentum_drift_tol = *v;
    } else if (key == "sdc_max_velocity") {
      if (auto v = get_double(key)) config.sdc.max_velocity = *v;
    } else if (key == "sdc_max_u") {
      if (auto v = get_double(key)) config.sdc.max_internal_energy = *v;
    } else if (key == "sdc_occupancy_factor") {
      if (auto v = get_double(key)) config.sdc.occupancy_factor = *v;
    } else if (key == "ckpt_format") {
      const auto v = get_int(key);
      if (v && *v == static_cast<long long>(io::kCkptFormatVersion)) {
        config.ckpt.format_version = static_cast<int>(*v);
      } else {
        // Only the current format can be *written*; accepting another
        // number would silently produce files no reader exists for.
        HACC_LOG_ERROR(
            "param file: ckpt_format = '%s' rejected: this build writes "
            "only format %u (chunked column checkpoints)",
            get_string(key).value_or("").c_str(),
            static_cast<unsigned>(io::kCkptFormatVersion));
        rejected = true;
      }
    } else if (key == "ckpt_diff") {
      if (auto v = get_bool(key)) config.ckpt.diff = *v;
    } else if (key == "ckpt_diff_max_chain") {
      const auto v = get_int(key);
      if (v && *v >= 0) {
        config.ckpt.diff_max_chain = static_cast<int>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: ckpt_diff_max_chain = '%s' rejected: must be an "
            "integer >= 0 (diffs allowed between forced fulls)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "ckpt_chunk_bytes") {
      const auto v = get_int(key);
      if (v && *v >= 1024) {
        config.ckpt.chunk_bytes = static_cast<std::size_t>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: ckpt_chunk_bytes = '%s' rejected: must be an "
            "integer >= 1024 (column chunk size in bytes)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "ckpt_redundant_local") {
      if (auto v = get_bool(key)) config.ckpt.redundant_local = *v;
    } else if (key == "ckpt_audit_on_restore") {
      if (auto v = get_bool(key)) config.ckpt.audit_on_restore = *v;
    } else if (key == "lb_threshold") {
      const auto v = get_double(key);
      if (v && (*v <= 0.0 || *v > 1.0)) {
        config.lb.threshold = *v;
      } else {
        HACC_LOG_ERROR(
            "param file: lb_threshold = '%s' rejected: must be <= 0 "
            "(balancer off) or > 1 (max/mean imbalance ratio that engages "
            "balancing)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "lb_hysteresis") {
      const auto v = get_double(key);
      if (v && *v >= 0.0 && *v <= 1.0) {
        config.lb.hysteresis = *v;
      } else {
        HACC_LOG_ERROR(
            "param file: lb_hysteresis = '%s' rejected: must be in [0, 1] "
            "(fraction of the threshold excess at which balancing re-arms)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "lb_max_fraction") {
      const auto v = get_double(key);
      if (v && *v > 0.0 && *v <= 1.0) {
        config.lb.max_fraction = *v;
      } else {
        HACC_LOG_ERROR(
            "param file: lb_max_fraction = '%s' rejected: must be in (0, 1] "
            "(cap on the donor cost fraction shipped per step)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "lb_use_measured") {
      if (auto v = get_bool(key)) config.lb.use_measured = *v;
    } else {
      ok = false;
    }
    if (!ok) {
      // A typo'd knob silently running with its default is exactly the
      // failure mode the sdc_* gates exist to avoid — say so, loudly,
      // but only once per key per process (apply() runs on every rank).
      warn_unknown_key(key);
      unknown.push_back(key);
    } else if (rejected) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

std::vector<std::string> ParamFile::apply(ServiceConfig& config) const {
  std::vector<std::string> unknown;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!has_service_prefix(key)) continue;  // SimConfig overload's business
    bool ok = true;
    bool rejected = false;
    if (key == "service_threads") {
      const auto v = get_int(key);
      if (v && *v >= 0) {
        config.threads = static_cast<int>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: service_threads = '%s' rejected: must be an "
            "integer >= 0 (0 = hardware concurrency)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "service_slice_steps") {
      const auto v = get_int(key);
      if (v && *v >= 1) {
        config.slice_steps = static_cast<int>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: service_slice_steps = '%s' rejected: must be an "
            "integer >= 1 (PM steps per scheduling slice)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "service_policy") {
      const auto v = lower(get_string(key).value_or(""));
      if (v == "round_robin" || v == "roundrobin" || v == "rr") {
        config.policy = SchedulePolicy::kRoundRobin;
      } else if (v == "deficit" || v == "deficit_weighted" || v == "dwrr") {
        config.policy = SchedulePolicy::kDeficitWeighted;
      } else {
        HACC_LOG_ERROR(
            "param file: service_policy = '%s' rejected: expected "
            "'round_robin' (equal slices) or 'deficit' (priority-weighted "
            "slices)",
            v.c_str());
        rejected = true;
      }
    } else if (key == "service_checkpoint_window") {
      const auto v = get_int(key);
      if (v && *v >= 1) {
        config.checkpoint_window = static_cast<int>(*v);
      } else {
        HACC_LOG_ERROR(
            "param file: service_checkpoint_window = '%s' rejected: must "
            "be an integer >= 1 (checkpoints kept per job)",
            get_string(key).value_or("").c_str());
        rejected = true;
      }
    } else if (key == "service_workdir") {
      if (auto v = get_string(key)) config.workdir = *v;
    } else {
      ok = false;
    }
    if (!ok) {
      warn_unknown_key(key);
      unknown.push_back(key);
    } else if (rejected) {
      unknown.push_back(key);
    }
  }
  return unknown;
}

std::size_t ParamFile::unknown_keys_warned() {
  std::lock_guard<std::mutex> lock(g_warned_mutex);
  return warned_keys().size();
}

}  // namespace crkhacc::core
