#include "io/generic_io.h"

#include <cstring>
#include <fstream>

#include "util/crc32.h"

namespace crkhacc::io {
namespace {

constexpr std::uint32_t kMagic = 0x47494f31;  // "GIO1"

struct WireHeader {
  std::uint32_t magic;
  std::uint32_t header_crc;   ///< CRC of the fields below
  std::uint64_t step;
  double scale_factor;
  std::int32_t rank;
  std::int32_t num_ranks;
  std::uint64_t particle_count;
  std::uint64_t payload_bytes;
  std::uint32_t payload_crc;
  std::uint32_t pad = 0;
};
static_assert(sizeof(WireHeader) == 56);

std::uint32_t header_fields_crc(const WireHeader& h) {
  // CRC over everything after header_crc.
  const auto* base = reinterpret_cast<const unsigned char*>(&h);
  const std::size_t offset = offsetof(WireHeader, step);
  return crc32(base + offset, sizeof(WireHeader) - offset);
}

}  // namespace

std::vector<std::uint8_t> encode_snapshot(const SnapshotMeta& meta,
                                          const Particles& particles,
                                          bool include_ghosts) {
  std::vector<Particles::Record> records;
  records.reserve(particles.size());
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!include_ghosts && !particles.is_owned(i)) continue;
    records.push_back(particles.record(i));
  }

  WireHeader header{};
  header.magic = kMagic;
  header.step = meta.step;
  header.scale_factor = meta.scale_factor;
  header.rank = meta.rank;
  header.num_ranks = meta.num_ranks;
  header.particle_count = records.size();
  header.payload_bytes = records.size() * sizeof(Particles::Record);
  header.payload_crc = crc32(records.data(), header.payload_bytes);
  header.header_crc = header_fields_crc(header);

  std::vector<std::uint8_t> bytes(sizeof(WireHeader) + header.payload_bytes);
  std::memcpy(bytes.data(), &header, sizeof(WireHeader));
  std::memcpy(bytes.data() + sizeof(WireHeader), records.data(),
              header.payload_bytes);
  return bytes;
}

bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                     SnapshotMeta& meta, Particles& out) {
  if (bytes.size() < sizeof(WireHeader)) return false;
  WireHeader header;
  std::memcpy(&header, bytes.data(), sizeof(WireHeader));
  if (header.magic != kMagic) return false;
  if (header.header_crc != header_fields_crc(header)) return false;
  if (bytes.size() != sizeof(WireHeader) + header.payload_bytes) return false;
  if (header.payload_bytes != header.particle_count * sizeof(Particles::Record)) {
    return false;
  }
  if (crc32(bytes.data() + sizeof(WireHeader), header.payload_bytes) !=
      header.payload_crc) {
    return false;
  }
  meta.step = header.step;
  meta.scale_factor = header.scale_factor;
  meta.rank = header.rank;
  meta.num_ranks = header.num_ranks;
  meta.particle_count = header.particle_count;

  out.reserve(out.size() + header.particle_count);
  const auto* records = reinterpret_cast<const Particles::Record*>(
      bytes.data() + sizeof(WireHeader));
  for (std::uint64_t r = 0; r < header.particle_count; ++r) {
    out.append_record(records[r]);
  }
  return true;
}

bool write_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                         const Particles& particles, bool include_ghosts) {
  const auto bytes = encode_snapshot(meta, particles, include_ghosts);
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(file);
}

bool read_snapshot_file(const std::string& path, SnapshotMeta& meta,
                        Particles& out) {
  std::ifstream file(path, std::ios::binary | std::ios::ate);
  if (!file) return false;
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  std::vector<std::uint8_t> bytes(size);
  file.read(reinterpret_cast<char*>(bytes.data()),
            static_cast<std::streamsize>(size));
  if (!file) return false;
  return decode_snapshot(bytes, meta, out);
}

}  // namespace crkhacc::io
