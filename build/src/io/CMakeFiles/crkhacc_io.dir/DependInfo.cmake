
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/checkpoint.cpp" "src/io/CMakeFiles/crkhacc_io.dir/checkpoint.cpp.o" "gcc" "src/io/CMakeFiles/crkhacc_io.dir/checkpoint.cpp.o.d"
  "/root/repo/src/io/generic_io.cpp" "src/io/CMakeFiles/crkhacc_io.dir/generic_io.cpp.o" "gcc" "src/io/CMakeFiles/crkhacc_io.dir/generic_io.cpp.o.d"
  "/root/repo/src/io/multi_tier.cpp" "src/io/CMakeFiles/crkhacc_io.dir/multi_tier.cpp.o" "gcc" "src/io/CMakeFiles/crkhacc_io.dir/multi_tier.cpp.o.d"
  "/root/repo/src/io/storage.cpp" "src/io/CMakeFiles/crkhacc_io.dir/storage.cpp.o" "gcc" "src/io/CMakeFiles/crkhacc_io.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crkhacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
