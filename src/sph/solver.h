// CRKSPH hydrodynamics solver.
//
// Orchestrates the per-substep pass sequence over the gas-only chaining
// mesh: density -> (EOS, volumes) -> CRK moments -> coefficient solve ->
// corrected momentum/energy. Accelerations and du/dt are *accumulated*
// into the particle work arrays, so gravity can be summed first.
//
// Also provides the baseline: running with `use_crk = false` skips the
// moment/coefficient machinery and evaluates plain (uncorrected) SPH —
// the comparison CRKSPH improves on.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/warp.h"
#include "sph/pair_kernels.h"
#include "tree/chaining_mesh.h"
#include "util/thread_pool.h"

namespace crkhacc::sph {

/// Smoothing-kernel choice. CRKSPH runs Wendland C4 at high neighbor
/// counts (the paper's ~270-neighbor configuration) to avoid the pairing
/// instability; the cubic B-spline is the light default.
enum class KernelShape { kCubicSpline, kWendlandC4 };

struct SphConfig {
  KernelShape kernel = KernelShape::kCubicSpline;
  float eta = 1.6f;   ///< smoothing scale: h = eta (m/rho)^(1/3)
  float cfl = 0.25f;  ///< Courant factor
  float h_change_limit = 1.25f;  ///< max h growth/shrink factor per step
  float h_max = 1e30f;  ///< absolute cap (half the CM bin support limit)
  ViscosityParams viscosity;
  /// Pair-kernel launch policy (warp size, mode, pool schedule). The
  /// 64-lane default matches AMD-style warps.
  gpu::LaunchConfig launch;
  bool use_crk = true;  ///< false = plain-SPH baseline (A=1, B=0)
};

class SphSolver {
 public:
  explicit SphSolver(const SphConfig& config) : config_(config) {}

  const SphConfig& config() const { return config_; }
  SphConfig& mutable_config() { return config_; }

  /// One full hydro force evaluation.
  ///
  /// `gas_mesh` must be built over gas-particle indices only. `active`
  /// (nullable) marks particles whose state is updated; inactive
  /// particles contribute as neighbors but keep their state. `a` is the
  /// scale factor (1 for non-cosmological tests). Launch statistics are
  /// recorded per kernel into `flops`. If `pairs` is non-null it is used
  /// as the (active-filtered) leaf pair list; otherwise one is built at
  /// interaction_radius(). With a pool, the pairwise sweeps and
  /// per-particle EOS / coefficient loops run on the worker threads
  /// (bitwise identical to the serial path for any thread count).
  void compute_forces(Particles& particles, const tree::ChainingMesh& gas_mesh,
                      double a, const std::uint8_t* active,
                      gpu::FlopRegistry& flops,
                      const std::vector<std::pair<std::uint32_t,
                                                  std::uint32_t>>* pairs =
                          nullptr,
                      util::ThreadPool* pool = nullptr);

  /// Widest kernel support among the mesh's gas: 2 * max h.
  static double interaction_radius(const Particles& particles,
                                   const tree::ChainingMesh& gas_mesh);

  /// Update smoothing lengths of active gas particles from current
  /// densities (rate-limited). Call once per substep after forces.
  void update_smoothing_lengths(Particles& particles,
                                const std::uint8_t* active) const;

  /// Smallest CFL timestep over active gas particles, in cosmic time
  /// units: dt = cfl * a * h / vsig. Returns `fallback` with no gas.
  double min_timestep(const Particles& particles, const std::uint8_t* active,
                      double a, double fallback) const;

  const SphScratch& scratch() const { return scratch_; }

  /// Stats of the last compute_forces call, keyed by kernel name.
  const std::map<std::string, gpu::LaunchStats>& last_stats() const {
    return last_stats_;
  }

  /// Running count of smoothing-length targets rejected for being
  /// non-finite — a corrupted-mass/density signature surfaced to the
  /// SDC auditor (core/sdc.h). Never resets; the auditor diffs it.
  std::uint64_t nonfinite_smoothing_targets() const {
    return nonfinite_targets_;
  }

 private:
  template <typename Shape>
  void compute_forces_impl(
      Particles& particles, const tree::ChainingMesh& gas_mesh, double a,
      const std::uint8_t* active, gpu::FlopRegistry& flops,
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs_in,
      util::ThreadPool* pool);

  SphConfig config_;
  SphScratch scratch_;
  std::map<std::string, gpu::LaunchStats> last_stats_;
  // mutable: update_smoothing_lengths is const (it mutates only the
  // particle set passed in); the census is observability, not state.
  mutable std::uint64_t nonfinite_targets_ = 0;
};

}  // namespace crkhacc::sph
