// Density and temperature slices (Fig. 3 diagnostics).
//
// Deposits owned particles inside a thin z-slab onto a 2-D (x, y) grid:
// total matter surface density and mass-weighted gas temperature. Grids
// are allreduced so every rank holds the full slice. Summary statistics
// (density variance, clumping factor, temperature percentiles) quantify
// the homogeneous-early / clustered-late contrast the paper's Fig. 3
// shows visually; an ASCII renderer gives a human-checkable picture.
#pragma once

#include <string>
#include <vector>

#include "comm/world.h"
#include "core/particles.h"
#include "cosmology/units.h"

namespace crkhacc::analysis {

struct SliceConfig {
  double z_lo = 0.0;          ///< slab bounds (code length)
  double z_hi = 1.0;
  std::size_t resolution = 64;  ///< 2-D cells per dimension
  double box = 64.0;
};

struct SliceResult {
  std::size_t resolution = 0;
  std::vector<double> density;      ///< mass per cell, all species
  std::vector<double> temperature;  ///< mass-weighted gas T [K] per cell
  double mean_density = 0.0;
  double clumping = 1.0;            ///< <rho^2> / <rho>^2
  double density_variance = 0.0;    ///< variance of overdensity delta
  double t_median_K = 0.0;
  double t_max_K = 0.0;
};

SliceResult density_temperature_slice(comm::Communicator& comm,
                                      const Particles& particles,
                                      const SliceConfig& config);

/// Coarse ASCII rendering of log overdensity (for run logs/examples).
std::string render_density_ascii(const SliceResult& slice,
                                 std::size_t max_width = 64);

}  // namespace crkhacc::analysis
