file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_sph.dir/crk.cpp.o"
  "CMakeFiles/crkhacc_sph.dir/crk.cpp.o.d"
  "CMakeFiles/crkhacc_sph.dir/solver.cpp.o"
  "CMakeFiles/crkhacc_sph.dir/solver.cpp.o.d"
  "libcrkhacc_sph.a"
  "libcrkhacc_sph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_sph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
