// Halo catalogs and summary statistics from FOF groups.
//
// The in situ pipeline reduces each FOF group to a compact halo record
// (mass, center of mass, bulk velocity, extent, per-species masses) so
// that full particle snapshots never need to be stored — the core idea of
// the paper's in situ strategy. Catalog reduction is rank-local; halos
// whose center falls outside the rank's owned box are dropped (their
// owning rank keeps the authoritative copy), de-duplicating overloaded
// boundary halos.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/fof.h"
#include "comm/decomposition.h"
#include "core/particles.h"

namespace crkhacc::analysis {

struct Halo {
  std::uint64_t tag = 0;  ///< smallest member particle id (stable label)
  std::size_t count = 0;
  double mass = 0.0;
  double gas_mass = 0.0;
  double star_mass = 0.0;
  std::array<double, 3> center{0.0, 0.0, 0.0};    ///< center of mass
  std::array<double, 3> velocity{0.0, 0.0, 0.0};  ///< mass-weighted mean
  double radius = 0.0;  ///< max member distance from center
};

/// Reduce FOF groups to halo records. If `owned_box` is non-null, halos
/// centered outside it are dropped (cross-rank de-duplication). Centers
/// handle no periodic wrap: positions are assumed local-domain coherent
/// (true for rank-local overloaded sets).
std::vector<Halo> halo_catalog(const Particles& particles,
                               const FofResult& groups,
                               const comm::Box3* owned_box);

/// dn/dlog10(M) style counts: histogram of halo masses in log-spaced
/// bins over [m_lo, m_hi); returns counts per bin.
std::vector<std::size_t> mass_function(const std::vector<Halo>& halos,
                                       double m_lo, double m_hi,
                                       std::size_t bins);

}  // namespace crkhacc::analysis
