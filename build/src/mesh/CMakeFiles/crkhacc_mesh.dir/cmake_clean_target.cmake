file(REMOVE_RECURSE
  "libcrkhacc_mesh.a"
)
