#include "fft/fft.h"

#include <cmath>
#include <numbers>

#include "util/assertions.h"

namespace crkhacc::fft {
namespace {

constexpr double kPi = std::numbers::pi;

/// Iterative radix-2 Cooley-Tukey, bit-reversal permutation first.
void fft_pow2(Complex* a, std::size_t n, bool inverse) {
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * kPi / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Complex u = a[i + k];
        const Complex v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein chirp-z transform for arbitrary n, via a power-of-two
/// cyclic convolution of length m >= 2n-1.
void fft_bluestein(Complex* data, std::size_t n, bool inverse) {
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp: w[k] = exp(sign * i * pi * k^2 / n). Computed with k^2 mod 2n
  // to keep the trig argument small for large k.
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle = sign * kPi * static_cast<double>(k2) / static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  const std::size_t m = next_pow2(2 * n - 1);
  std::vector<Complex> a(m, Complex(0.0, 0.0));
  std::vector<Complex> b(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = data[k] * chirp[k];
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  fft_pow2(a.data(), m, false);
  fft_pow2(b.data(), m, false);
  for (std::size_t k = 0; k < m; ++k) a[k] *= b[k];
  fft_pow2(a.data(), m, true);
  const double inv_m = 1.0 / static_cast<double>(m);
  for (std::size_t k = 0; k < n; ++k) {
    data[k] = a[k] * inv_m * chirp[k];
  }
}

void transform_contiguous(Complex* data, std::size_t n, bool inverse) {
  if (n <= 1) return;
  if (is_pow2(n)) {
    fft_pow2(data, n, inverse);
  } else {
    fft_bluestein(data, n, inverse);
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t k = 0; k < n; ++k) data[k] *= inv_n;
  }
}

}  // namespace

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void transform(std::vector<Complex>& data, bool inverse) {
  transform_contiguous(data.data(), data.size(), inverse);
}

void transform_line(Complex* base, std::size_t n, std::size_t stride, bool inverse) {
  if (stride == 1) {
    transform_contiguous(base, n, inverse);
    return;
  }
  // Gather / transform / scatter. The distributed FFT always arranges
  // contiguous lines, so this path only serves local 3-D convenience
  // transforms where the copy cost is acceptable.
  std::vector<Complex> line(n);
  for (std::size_t i = 0; i < n; ++i) line[i] = base[i * stride];
  transform_contiguous(line.data(), n, inverse);
  for (std::size_t i = 0; i < n; ++i) base[i * stride] = line[i];
}

void transform_3d(std::vector<Complex>& data, std::size_t nx, std::size_t ny,
                  std::size_t nz, bool inverse) {
  CHECK(data.size() == nx * ny * nz);
  // x lines (contiguous).
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t y = 0; y < ny; ++y) {
      transform_line(&data[(z * ny + y) * nx], nx, 1, inverse);
    }
  }
  // y lines (stride nx).
  for (std::size_t z = 0; z < nz; ++z) {
    for (std::size_t x = 0; x < nx; ++x) {
      transform_line(&data[z * ny * nx + x], ny, nx, inverse);
    }
  }
  // z lines (stride nx*ny).
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      transform_line(&data[y * nx + x], nz, nx * ny, inverse);
    }
  }
}

}  // namespace crkhacc::fft
