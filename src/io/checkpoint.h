// Checkpoint discovery, restart, and fault injection.
//
// Restart policy mirrors the paper's fault-tolerance loop: every PM step
// writes a full checkpoint; after an interruption, the run resumes from
// the newest step for which EVERY rank's file reached the PFS intact.
// "Intact" is verified end to end: the `.ok` completion marker carries the
// payload size and CRC32 stamped at write time, and both discovery
// (latest_complete_checkpoint) and restore (restore_checkpoint) recompute
// the CRC over the bytes actually on the PFS. Partial checkpoints — a
// fault mid-bleed — and silently corrupted ones (torn writes, bit flips
// at rest) are skipped automatically.
//
// FaultInjector models the machine's mean time to interrupt: a
// deterministic counter-based draw per step, so tests can replay the
// exact same failure schedule. It is virtual so tests can script exact
// interruption points.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/particles.h"
#include "io/generic_io.h"
#include "io/storage.h"
#include "util/rng.h"

namespace crkhacc::io {

/// Contents of a checkpoint completion marker (`.ok` file): the integrity
/// contract between the writer that bled the file and any later restart.
struct CheckpointMarker {
  std::uint64_t payload_bytes = 0;  ///< size of the checkpoint file
  std::uint32_t payload_crc = 0;    ///< CRC32 of the checkpoint file
};

/// Marker wire format: magic + payload size + payload CRC, closed by a
/// CRC over the marker itself (a torn marker write must not validate).
std::vector<std::uint8_t> encode_marker(const CheckpointMarker& marker);
bool decode_marker(const std::vector<std::uint8_t>& bytes,
                   CheckpointMarker& out);

/// Steps with a checkpoint directory on the PFS, newest first. Existence
/// only — no integrity validation (recovery probes candidates in order).
std::vector<std::uint64_t> checkpoint_steps(ThrottledStore& pfs);

/// Full integrity check of one rank's file at `step`: marker present and
/// well-formed, payload present, size and CRC32 match the marker, and the
/// file parses as format v2. A differential checkpoint additionally
/// requires every ancestor in its chain (diff -> ... -> full) to pass the
/// same check — a diff whose base was pruned or damaged is not restorable
/// and must not be selected by latest_complete_checkpoint.
bool verify_checkpoint_rank(ThrottledStore& pfs, std::uint64_t step, int rank);

/// Writer-rank count a checkpoint step records about itself: the
/// `num_ranks` stamped into rank 0's verified file meta. 0 when rank 0's
/// file is absent or fails verification — a step with no restorable
/// rank-0 file was never collectively committed. This is what makes a
/// step directory self-describing: a later run with a different rank
/// count (e.g. after a shrink) can still tell which files constitute a
/// complete commit.
int checkpoint_writer_count(ThrottledStore& pfs, std::uint64_t step);

/// Newest collectively-committed step on the PFS: the newest step whose
/// files 0..M-1 all pass verify_checkpoint_rank, where M is the writer
/// count the step records about itself (checkpoint_writer_count). nullopt
/// if none.
///
/// `num_ranks` is the rank set the caller expects; a directory written by
/// a *different* rank count M (e.g. before a shrink) is tolerated rather
/// than silently skipped — the step is returned with a one-shot warning
/// naming the expected vs found rank set, and the caller adopts the
/// extra (or missing) domains by round-robin remap on restore. A step
/// only partially bled before a rank died (files recording M writers but
/// fewer verifiable) never qualifies under any reader rank count.
std::optional<std::uint64_t> latest_complete_checkpoint(ThrottledStore& pfs,
                                                        int num_ranks);

/// Load rank `rank`'s particles from checkpoint `step` on the PFS after
/// validating the marker CRC against the stored bytes. A differential
/// checkpoint is restored by replaying its chain: the anchoring full is
/// decoded first, then each diff's carried chunks are overlaid oldest to
/// newest — bitwise identical to restoring a full written at `step`.
/// Returns false on any integrity failure anywhere in the chain.
bool restore_checkpoint(ThrottledStore& pfs, std::uint64_t step, int rank,
                        SnapshotMeta& meta, Particles& out);

/// Deterministic interruption schedule: kills happen when the per-step
/// hazard draw falls below dt/mtti.
class FaultInjector {
 public:
  /// mtti in the same time unit as the dt passed to should_fail.
  FaultInjector(double mtti, std::uint64_t seed)
      : mtti_(mtti), rng_(seed, /*stream=*/0xFA17) {}
  virtual ~FaultInjector() = default;

  /// True if the machine is interrupted during this execution attempt
  /// (`trial` must increase monotonically across retries of the same
  /// step, or a deterministic failure would recur forever).
  virtual bool should_fail(std::uint64_t trial, double dt) const {
    if (mtti_ <= 0.0) return false;
    return rng_.uniform(trial) < dt / mtti_;
  }

 private:
  double mtti_;
  CounterRng rng_;
};

}  // namespace crkhacc::io
