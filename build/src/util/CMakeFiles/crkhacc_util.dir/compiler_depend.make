# Empty compiler generated dependencies file for crkhacc_util.
# This may be replaced when dependencies are built.
