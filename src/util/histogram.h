// Fixed-bin histogram with summary statistics.
//
// Used to report per-rank device-utilization distributions (Fig. 6) and
// workload-imbalance spreads without shipping raw samples around.
//
// add() mutates unsynchronized state and must not be called concurrently.
// Threaded producers should fill one Histogram per worker and fold them
// with merge() in a fixed order (thread-local pattern, like TimerRegistry).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace crkhacc {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); out-of-range samples clamp to end bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double sample);
  void add_all(const std::vector<double>& samples);

  /// Fold another histogram with identical binning into this one
  /// (bin-wise count sums + exact moment/extrema updates). Combining
  /// per-worker histograms in a fixed order gives results independent of
  /// how samples were distributed across workers.
  void merge(const Histogram& other);

  std::size_t count() const { return count_; }
  double mean() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Percentile via linear interpolation over bin edges (q in [0,1]).
  double percentile(double q) const;

  std::size_t bin_count(std::size_t i) const { return counts_[i]; }
  std::size_t num_bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// Horizontal ASCII rendering, one row per bin: "[lo,hi) ####  n".
  std::string ascii(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace crkhacc
