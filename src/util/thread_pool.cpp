#include "util/thread_pool.h"

#include <algorithm>
#include <ctime>

#include "util/timer.h"

namespace crkhacc::util {

namespace {

/// CPU time consumed by the calling thread. Busy accounting uses this
/// instead of wall clock so that per-worker busy / critical-path numbers
/// stay meaningful on oversubscribed hosts (threads time-slicing one core
/// would otherwise all appear busy for the full region).
double thread_cpu_seconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
  timespec ts;
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
    return static_cast<double>(ts.tv_sec) + 1e-9 * ts.tv_nsec;
  }
#endif
  return 0.0;
}

}  // namespace

thread_local bool ThreadPool::in_worker_ = false;

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_ = threads;
  stats_.threads = threads_;
  stats_.busy_seconds.assign(threads_, 0.0);
  region_busy_.assign(threads_, 0.0);
  ranges_.reserve(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    ranges_.push_back(std::make_unique<WorkRange>());
  }
  for (unsigned t = 1; t < threads_; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(gate_mutex_);
    shutdown_ = true;
  }
  gate_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::reset_stats() {
  stats_ = ThreadPoolStats{};
  stats_.threads = threads_;
  stats_.busy_seconds.assign(threads_, 0.0);
}

void ThreadPool::worker_loop(unsigned id) {
  in_worker_ = true;
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(gate_mutex_);
      gate_cv_.wait(lock,
                    [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
    }
    claim_and_run(id);
    {
      std::lock_guard<std::mutex> lock(gate_mutex_);
      --workers_active_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::claim_and_run(unsigned id) {
  double executing = 0.0;
  WorkRange& own = *ranges_[id];
  for (;;) {
    std::size_t chunk = 0;
    bool have = false;
    {
      std::lock_guard<std::mutex> lock(own.m);
      if (own.next < own.end) {
        chunk = own.next++;
        have = true;
      }
    }
    if (!have) {
      // Steal half of a victim's remaining range from the back, so the
      // victim keeps walking forward undisturbed. The stolen sub-range is
      // detached under the victim's lock alone and installed into our own
      // range afterwards (never two range locks at once — no ordering
      // cycles between concurrent thieves).
      for (unsigned probe = 1; probe < threads_ && !have; ++probe) {
        WorkRange& victim = *ranges_[(id + probe) % threads_];
        std::size_t lo = 0, take = 0;
        {
          std::lock_guard<std::mutex> steal_lock(victim.m);
          const std::size_t remaining =
              victim.end > victim.next ? victim.end - victim.next : 0;
          if (remaining == 0) continue;
          take = (remaining + 1) / 2;
          lo = victim.end - take;
          victim.end = lo;
        }
        {
          std::lock_guard<std::mutex> own_lock(own.m);
          own.next = lo + 1;
          own.end = lo + take;
        }
        chunk = lo;
        have = true;
        region_steals_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (!have) break;  // every range drained
    if (!cancelled_.load(std::memory_order_relaxed)) {
      const double cpu_start = thread_cpu_seconds();
      try {
        (*body_)(chunk, id);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        cancelled_.store(true, std::memory_order_relaxed);
      }
      executing += thread_cpu_seconds() - cpu_start;
    }
  }
  region_busy_[id] += executing;
}

void ThreadPool::run_region(
    std::size_t nchunks,
    const std::function<void(std::size_t, unsigned)>& body) {
  if (nchunks == 0) return;

  // Inline execution: single-threaded pools and nested calls from inside
  // a worker run the identical chunk decomposition serially. Results are
  // bitwise identical by construction; only the scheduling differs.
  if (threads_ == 1 || in_worker_) {
    Stopwatch watch;
    const double cpu_start = thread_cpu_seconds();
    for (std::size_t c = 0; c < nchunks; ++c) body(c, 0);
    if (!in_worker_) {
      ++stats_.parallel_regions;
      stats_.chunks_executed += nchunks;
      stats_.wall_seconds += watch.seconds();
      stats_.busy_seconds[0] += thread_cpu_seconds() - cpu_start;
    }
    return;
  }

  Stopwatch watch;
  body_ = &body;
  cancelled_.store(false, std::memory_order_relaxed);
  first_error_ = nullptr;
  region_steals_.store(0, std::memory_order_relaxed);
  std::fill(region_busy_.begin(), region_busy_.end(), 0.0);

  // Static initial partition of chunk indices into contiguous per-worker
  // ranges (stealing rebalances at runtime).
  const std::size_t per =
      (nchunks + threads_ - 1) / static_cast<std::size_t>(threads_);
  for (unsigned t = 0; t < threads_; ++t) {
    WorkRange& r = *ranges_[t];
    std::lock_guard<std::mutex> lock(r.m);
    r.next = std::min(static_cast<std::size_t>(t) * per, nchunks);
    r.end = std::min(r.next + per, nchunks);
  }

  {
    std::lock_guard<std::mutex> lock(gate_mutex_);
    ++epoch_;
    workers_active_ = threads_ - 1;
  }
  gate_cv_.notify_all();

  // The calling thread participates as worker 0.
  const bool was_in_worker = in_worker_;
  in_worker_ = true;
  claim_and_run(0);
  in_worker_ = was_in_worker;

  {
    std::unique_lock<std::mutex> lock(gate_mutex_);
    done_cv_.wait(lock, [&] { return workers_active_ == 0; });
  }
  body_ = nullptr;

  ++stats_.parallel_regions;
  stats_.chunks_executed += nchunks;
  stats_.steals += region_steals_.load(std::memory_order_relaxed);
  stats_.wall_seconds += watch.seconds();
  for (unsigned t = 0; t < threads_; ++t) {
    stats_.busy_seconds[t] += region_busy_[t];
  }

  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    std::rethrow_exception(err);
  }
}

}  // namespace crkhacc::util
