file(REMOVE_RECURSE
  "libcrkhacc_fft.a"
)
