// Ablation (Section IV-B1): growable leaf bounding boxes vs rebuilding
// the tree every sub-cycle.
//
// CRK-HACC builds the chaining mesh and k-d leaves ONCE per PM step and
// only re-fits leaf AABBs as particles drift, trading extra neighbor
// overlap for the elimination of per-substep repartitioning. This bench
// runs the identical campaign both ways and reports the tree-build time,
// the force-kernel time (which grows slightly with the overlap), and the
// total — the paper's design wins when refit + overlap < rebuild.
#include <cstdio>
#include <mutex>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"

using namespace crkhacc;

namespace {

struct Outcome {
  double tree_seconds = 0.0;
  double force_seconds = 0.0;
  double total_seconds = 0.0;
  std::uint64_t interactions = 0;
};

Outcome run_mode(bool rebuild_every_substep) {
  auto config = bench::scaled_config(1, 12, /*hydro=*/true);
  config.z_final = 3.0;  // let clustering develop so leaves actually drift
  config.num_pm_steps = 4;
  config.rebuild_tree_every_substep = rebuild_every_substep;
  Outcome outcome;
  std::mutex mutex;
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.run();
    std::lock_guard<std::mutex> lock(mutex);
    outcome.tree_seconds = sim.timers().total(timers::kTreeBuild);
    outcome.force_seconds = sim.timers().total(timers::kShortRange);
    outcome.total_seconds = sim.timers().grand_total();
  });
  return outcome;
}

}  // namespace

int main() {
  bench::print_header(
      "Ablation — grow-leaf-AABBs (paper design) vs rebuild-per-substep");

  const auto grow = run_mode(false);
  const auto rebuild = run_mode(true);

  std::printf("%-26s %-14s %-14s %-14s\n", "strategy", "tree [s]",
              "short-range [s]", "total [s]");
  bench::print_rule();
  std::printf("%-26s %-14.3f %-14.3f %-14.3f\n", "refit bounds (paper)",
              grow.tree_seconds, grow.force_seconds, grow.total_seconds);
  std::printf("%-26s %-14.3f %-14.3f %-14.3f\n", "rebuild every substep",
              rebuild.tree_seconds, rebuild.force_seconds,
              rebuild.total_seconds);
  bench::print_rule();
  std::printf("\ntree-time ratio (rebuild / refit): %.2fx\n",
              rebuild.tree_seconds / std::max(1e-9, grow.tree_seconds));
  std::printf("force-time overhead of grown leaves: %+.1f%%\n",
              100.0 * (grow.force_seconds - rebuild.force_seconds) /
                  std::max(1e-9, rebuild.force_seconds));
  std::printf("end-to-end: %s by %.1f%%\n",
              grow.total_seconds <= rebuild.total_seconds
                  ? "refit wins (matches the paper's design choice)"
                  : "rebuild wins at this scale",
              100.0 * std::abs(rebuild.total_seconds - grow.total_seconds) /
                  std::max(grow.total_seconds, rebuild.total_seconds));
  std::printf("\npaper: tree construction once per PM step keeps the "
              "combined tree+spectral cost at ~3%% of runtime; refits and\n"
              "interaction-list updates are far cheaper than the force "
              "kernels they feed.\n");
  return 0;
}
