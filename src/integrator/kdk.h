// Kick-drift-kick symplectic operators in comoving coordinates.
//
// State: x comoving [Mpc/h], v peculiar [km/s], u specific internal
// energy [(km/s)^2]. Equations of motion:
//
//   dx/dt = v / a
//   dv/dt = -H(a) v + g          (g = comoving-force / a^2 etc., supplied
//                                 by the solvers in the accel arrays)
//   du/dt = -3 (gamma-1) H u + (pair work)   [expansion term analytic]
//
// The Hubble drag is integrated exactly (v ~ 1/a between kicks); the
// adiabatic expansion term likewise (u ~ a^{-3(gamma-1)}), so the
// homogeneous universe stays exactly adiabatic regardless of step size.
#pragma once

#include <cstdint>

#include "core/particles.h"
#include "cosmology/background.h"

namespace crkhacc::integrator {

class Kdk {
 public:
  explicit Kdk(const cosmo::Background& bg) : bg_(bg) {}

  /// Cosmic time interval between scale factors.
  double dt_of(double a0, double a1) const {
    return bg_.time_of(a1) - bg_.time_of(a0);
  }

  /// Velocity update over [a0, a1]: acceleration kick using the
  /// particle's (ax, ay, az), with the exact Hubble drag folded in when
  /// `with_drag` (the drag must be applied exactly once per interval —
  /// the PM-level kick carries it; sub-cycle kicks run drag-free).
  void kick(Particles& particles, double a0, double a1,
            const std::uint8_t* active, bool with_drag = true) const;

  /// Position update over [a0, a1] (midpoint 1/a), periodic wrap into
  /// [0, box), plus the analytic adiabatic expansion of u for gas.
  void drift(Particles& particles, double a0, double a1, double box,
             const std::uint8_t* active) const;

  /// Apply du/dt (the particles' du array) over the same kick interval.
  void energy_kick(Particles& particles, double a0, double a1,
                   const std::uint8_t* active) const;

 private:
  const cosmo::Background& bg_;
};

}  // namespace crkhacc::integrator
