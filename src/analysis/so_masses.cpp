#include "analysis/so_masses.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "tree/lbvh.h"
#include "util/assertions.h"

namespace crkhacc::analysis {

std::vector<SoHalo> so_masses(const Particles& particles,
                              const std::vector<Halo>& seeds,
                              const SoConfig& config) {
  CHECK(config.delta > 0.0);
  CHECK(config.reference_density > 0.0);
  CHECK(config.r_max > 0.0);

  std::vector<SoHalo> catalog;
  if (particles.empty() || seeds.empty()) return catalog;
  const tree::Bvh bvh(particles.x, particles.y, particles.z);

  catalog.reserve(seeds.size());
  for (const auto& seed : seeds) {
    SoHalo halo;
    halo.tag = seed.tag;
    halo.center = seed.center;

    // Gather (r^2, mass) inside r_max, then walk the cumulative profile
    // outward until the enclosed density crosses Delta * rho_ref.
    std::vector<std::pair<float, float>> members;  // (dist^2, mass)
    bvh.radius_query(static_cast<float>(seed.center[0]),
                     static_cast<float>(seed.center[1]),
                     static_cast<float>(seed.center[2]),
                     static_cast<float>(config.r_max),
                     [&](std::uint32_t j) {
                       const float dx = particles.x[j] -
                                        static_cast<float>(seed.center[0]);
                       const float dy = particles.y[j] -
                                        static_cast<float>(seed.center[1]);
                       const float dz = particles.z[j] -
                                        static_cast<float>(seed.center[2]);
                       members.emplace_back(dx * dx + dy * dy + dz * dz,
                                            particles.mass[j]);
                     });
    if (members.size() < config.min_particles) {
      catalog.push_back(halo);
      continue;
    }
    std::sort(members.begin(), members.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });

    const double threshold = config.delta * config.reference_density;
    double enclosed = 0.0;
    std::size_t count = 0;
    // Scan outward; remember the outermost radius still above threshold.
    for (const auto& [r2, mass] : members) {
      enclosed += mass;
      ++count;
      const double r = std::sqrt(static_cast<double>(r2));
      if (r <= 0.0 || count < config.min_particles) continue;
      const double volume = 4.0 / 3.0 * std::numbers::pi * r * r * r;
      if (enclosed / volume >= threshold) {
        halo.m_delta = enclosed;
        halo.r_delta = r;
        halo.count = count;
        halo.converged = true;
      }
    }
    catalog.push_back(halo);
  }
  return catalog;
}

}  // namespace crkhacc::analysis
