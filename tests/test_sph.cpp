// Tests for the CRKSPH hydrodynamics stack: kernels, CRK corrections,
// and the solver's conservation properties.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <numbers>

#include "comm/decomposition.h"
#include "core/particles.h"
#include "gpu/device.h"
#include "sph/crk.h"
#include "sph/eos.h"
#include "sph/kernel.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc::sph {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

// --- smoothing kernels --------------------------------------------------------

template <typename Kernel>
double kernel_volume_integral(float h) {
  // 4 pi int_0^{2h} W(r) r^2 dr by trapezoid.
  const int n = 4000;
  const double r_max = Kernel::kSupport * h;
  const double dr = r_max / n;
  double sum = 0.0;
  for (int i = 0; i <= n; ++i) {
    const double r = i * dr;
    const double w = Kernel::w(static_cast<float>(r), h);
    const double val = w * r * r;
    sum += (i == 0 || i == n) ? 0.5 * val : val;
  }
  return 4.0 * std::numbers::pi * sum * dr;
}

TEST(CubicSpline, NormalizedToUnity) {
  for (float h : {0.5f, 1.0f, 2.0f}) {
    EXPECT_NEAR(kernel_volume_integral<CubicSpline>(h), 1.0, 1e-3);
  }
}

TEST(WendlandC4, NormalizedToUnity) {
  for (float h : {0.5f, 1.0f, 2.0f}) {
    EXPECT_NEAR(kernel_volume_integral<WendlandC4>(h), 1.0, 1e-3);
  }
}

TEST(CubicSpline, CompactSupportAndPositivity) {
  EXPECT_GT(CubicSpline::w(0.0f, 1.0f), 0.0f);
  EXPECT_GT(CubicSpline::w(1.5f, 1.0f), 0.0f);
  EXPECT_EQ(CubicSpline::w(2.0f, 1.0f), 0.0f);
  EXPECT_EQ(CubicSpline::w(5.0f, 1.0f), 0.0f);
}

TEST(CubicSpline, GradientMatchesFiniteDifference) {
  const float h = 1.3f;
  for (float r : {0.2f, 0.7f, 1.1f, 1.8f}) {
    const float eps = 1e-3f;
    const float fd = (CubicSpline::w(r + eps, h) - CubicSpline::w(r - eps, h)) /
                     (2.0f * eps);
    EXPECT_NEAR(CubicSpline::dw_dr(r, h), fd, 2e-3 * std::abs(fd) + 1e-5);
  }
}

TEST(WendlandC4, GradientMatchesFiniteDifference) {
  const float h = 0.9f;
  for (float r : {0.1f, 0.5f, 1.0f, 1.6f}) {
    const float eps = 1e-3f;
    const float fd = (WendlandC4::w(r + eps, h) - WendlandC4::w(r - eps, h)) /
                     (2.0f * eps);
    EXPECT_NEAR(WendlandC4::dw_dr(r, h), fd, 2e-3 * std::abs(fd) + 1e-5);
  }
}

TEST(CubicSpline, GradientNonPositive) {
  for (float r = 0.05f; r < 2.0f; r += 0.05f) {
    EXPECT_LE(CubicSpline::dw_dr(r, 1.0f), 0.0f);
  }
}

// --- EOS --------------------------------------------------------------------

TEST(Eos, IdealGasRelations) {
  const float rho = 2.0f, u = 100.0f;
  EXPECT_NEAR(pressure(rho, u), (5.0 / 3.0 - 1.0) * rho * u, 1e-4);
  const float cs = sound_speed(u);
  EXPECT_NEAR(cs * cs, (5.0 / 3.0) * (5.0 / 3.0 - 1.0) * u, 1e-3);
  EXPECT_EQ(sound_speed(0.0f), 0.0f);
}

// --- CRK corrections ------------------------------------------------------------

/// Build a uniform glass-like lattice of gas particles.
Particles gas_lattice(std::size_t n_per_dim, double box, float jitter,
                      std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  const double cell = box / static_cast<double>(n_per_dim);
  const float mass = 1.0f;
  std::uint64_t id = 0;
  for (std::size_t iz = 0; iz < n_per_dim; ++iz) {
    for (std::size_t iy = 0; iy < n_per_dim; ++iy) {
      for (std::size_t ix = 0; ix < n_per_dim; ++ix) {
        const float x = static_cast<float>(
            (ix + 0.5) * cell + jitter * cell * (rng.next_double() - 0.5));
        const float y = static_cast<float>(
            (iy + 0.5) * cell + jitter * cell * (rng.next_double() - 0.5));
        const float z = static_cast<float>(
            (iz + 0.5) * cell + jitter * cell * (rng.next_double() - 0.5));
        const std::size_t i =
            p.push_back(id++, Species::kGas, x, y, z, 0, 0, 0, mass);
        p.hsml[i] = static_cast<float>(1.4 * cell);
        p.u[i] = 100.0f;
      }
    }
  }
  return p;
}

TEST(CrkSolve, DegenerateMomentsFallBack) {
  CrkMoments m;  // all zero
  const auto c = solve_crk(m);
  EXPECT_FLOAT_EQ(c.a, 1.0f);
  EXPECT_FLOAT_EQ(c.b[0], 0.0f);

  m.m0 = 2.0f;  // singular m2 but positive m0
  const auto c2 = solve_crk(m);
  EXPECT_FLOAT_EQ(c2.a, 0.5f);
}

TEST(CrkSolve, IsotropicNeighborhoodGivesSmallB) {
  // Symmetric m1 ~ 0 neighborhood: B ~ 0, A ~ 1/m0.
  CrkMoments m;
  m.m0 = 1.2f;
  m.m2 = {0.3f, 0.3f, 0.3f, 0.0f, 0.0f, 0.0f};
  const auto c = solve_crk(m);
  EXPECT_NEAR(c.a, 1.0f / 1.2f, 1e-5);
  EXPECT_NEAR(c.b[0], 0.0f, 1e-6);
}

TEST(CrkSolve, ReproducesConstantAndLinearFieldsOnJitteredLattice) {
  // The defining CRKSPH property: with A, B from the moments, the
  // corrected interpolant sums to 1 and reproduces linear fields even on
  // a disordered particle arrangement (interior particles).
  const std::size_t n = 8;
  const double box = 8.0;
  auto p = gas_lattice(n, box, 0.4f, 17);
  const float h = p.hsml[0];

  // Volumes: uniform lattice -> V = cell^3 (mass/mean density).
  const float volume = static_cast<float>(std::pow(box / n, 3.0));

  // Pick an interior particle and accumulate its moments directly.
  std::size_t center = 0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (std::abs(p.x[i] - 4.0f) < 0.5f && std::abs(p.y[i] - 4.0f) < 0.5f &&
        std::abs(p.z[i] - 4.0f) < 0.5f) {
      center = i;
      break;
    }
  }
  CrkMoments moments;
  for (std::size_t j = 0; j < p.size(); ++j) {
    const float dx = p.x[j] - p.x[center];
    const float dy = p.y[j] - p.y[center];
    const float dz = p.z[j] - p.z[center];
    const float r = std::sqrt(dx * dx + dy * dy + dz * dz);
    const float vw = volume * CubicSpline::w(r, h);
    if (vw == 0.0f) continue;
    moments.m0 += vw;
    moments.m1[0] += vw * dx;
    moments.m1[1] += vw * dy;
    moments.m1[2] += vw * dz;
    moments.m2[0] += vw * dx * dx;
    moments.m2[1] += vw * dy * dy;
    moments.m2[2] += vw * dz * dz;
    moments.m2[3] += vw * dx * dy;
    moments.m2[4] += vw * dx * dz;
    moments.m2[5] += vw * dy * dz;
  }
  const auto coeff = solve_crk(moments);

  // Interpolate f(x) = 3 + 2x - y at the center particle.
  auto field = [](float x, float y, float) { return 3.0f + 2.0f * x - y; };
  double corrected_sum = 0.0, uncorrected_sum = 0.0;
  double interpolated = 0.0;
  for (std::size_t j = 0; j < p.size(); ++j) {
    const std::array<float, 3> d{p.x[center] - p.x[j], p.y[center] - p.y[j],
                                 p.z[center] - p.z[j]};
    const float r = std::sqrt(d[0] * d[0] + d[1] * d[1] + d[2] * d[2]);
    const float w = CubicSpline::w(r, h);
    if (w == 0.0f) continue;
    const float wr = corrected_w(coeff, w, d);
    corrected_sum += volume * wr;
    uncorrected_sum += volume * w;
    interpolated += volume * wr * field(p.x[j], p.y[j], p.z[j]);
  }
  // Partition of unity: corrected is exact, uncorrected is not.
  EXPECT_NEAR(corrected_sum, 1.0, 1e-4);
  EXPECT_GT(std::abs(uncorrected_sum - 1.0), 1e-3);
  // Linear reproduction.
  const double expected = field(p.x[center], p.y[center], p.z[center]);
  EXPECT_NEAR(interpolated, expected, 5e-3 * std::abs(expected));
}

// --- solver-level conservation ----------------------------------------------------

struct SolverSetup {
  Particles particles;
  tree::ChainingMesh mesh;
  SphSolver solver;
  gpu::FlopRegistry flops;

  explicit SolverSetup(Particles p, const SphConfig& config, double box)
      : particles(std::move(p)), mesh(cube(box), {box / 2.0, 32}),
        solver(config) {
    std::vector<std::uint32_t> gas;
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (particles.is_gas(i)) gas.push_back(static_cast<std::uint32_t>(i));
    }
    mesh.build(particles, gas);
  }

  void evaluate(double a = 1.0, util::ThreadPool* pool = nullptr) {
    std::fill(particles.ax.begin(), particles.ax.end(), 0.0f);
    std::fill(particles.ay.begin(), particles.ay.end(), 0.0f);
    std::fill(particles.az.begin(), particles.az.end(), 0.0f);
    std::fill(particles.du.begin(), particles.du.end(), 0.0f);
    solver.compute_forces(particles, mesh, a, nullptr, flops, nullptr, pool);
  }
};

TEST(SphSolver, DensityOnUniformLatticeMatchesMean) {
  const std::size_t n = 8;
  const double box = 8.0;
  SolverSetup setup(gas_lattice(n, box, 0.0f, 1), SphConfig{}, box);
  setup.evaluate();
  const double mean_density = static_cast<double>(n * n * n) / (box * box * box);
  // Interior particles (away from the non-periodic domain edge).
  int checked = 0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    const bool interior = setup.particles.x[i] > 2.5f && setup.particles.x[i] < 5.5f &&
                          setup.particles.y[i] > 2.5f && setup.particles.y[i] < 5.5f &&
                          setup.particles.z[i] > 2.5f && setup.particles.z[i] < 5.5f;
    if (!interior) continue;
    ++checked;
    EXPECT_NEAR(setup.particles.rho[i], mean_density, 0.05 * mean_density);
  }
  EXPECT_GT(checked, 0);
}

TEST(SphSolver, UniformPressureGivesNearZeroForces) {
  const std::size_t n = 8;
  const double box = 8.0;
  SolverSetup setup(gas_lattice(n, box, 0.0f, 2), SphConfig{}, box);
  setup.evaluate();
  // Interior accelerations should be tiny compared to the natural scale
  // c_s^2 / cell.
  const double scale = (5.0 / 3.0) * (2.0 / 3.0) * 100.0 / 1.0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    const bool interior = setup.particles.x[i] > 2.5f && setup.particles.x[i] < 5.5f &&
                          setup.particles.y[i] > 2.5f && setup.particles.y[i] < 5.5f &&
                          setup.particles.z[i] > 2.5f && setup.particles.z[i] < 5.5f;
    if (!interior) continue;
    EXPECT_LT(std::abs(setup.particles.ax[i]), 0.05 * scale);
  }
}

TEST(SphSolver, ConservesMomentumAndEnergyInBlastConfiguration) {
  // Central hot region: strong pressure gradients, viscosity active.
  const std::size_t n = 10;
  const double box = 10.0;
  auto p = gas_lattice(n, box, 0.2f, 3);
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float dx = p.x[i] - 5.0f, dy = p.y[i] - 5.0f, dz = p.z[i] - 5.0f;
    if (dx * dx + dy * dy + dz * dz < 2.25f) p.u[i] = 5000.0f;
    // Random velocities so viscosity terms are exercised.
    p.vx[i] = static_cast<float>(10.0 * std::sin(0.7 * i));
    p.vy[i] = static_cast<float>(10.0 * std::cos(1.3 * i));
  }
  SolverSetup setup(std::move(p), SphConfig{}, box);
  setup.evaluate();

  double fx = 0.0, fy = 0.0, fz = 0.0;         // total force
  double dke = 0.0, dth = 0.0;                 // energy rates
  const auto& q = setup.particles;
  for (std::size_t i = 0; i < q.size(); ++i) {
    fx += static_cast<double>(q.mass[i]) * q.ax[i];
    fy += static_cast<double>(q.mass[i]) * q.ay[i];
    fz += static_cast<double>(q.mass[i]) * q.az[i];
    dke += static_cast<double>(q.mass[i]) *
           (q.vx[i] * q.ax[i] + q.vy[i] * q.ay[i] + q.vz[i] * q.az[i]);
    dth += static_cast<double>(q.mass[i]) * q.du[i];
  }
  // Pairwise antisymmetry: total momentum change vanishes.
  double force_scale = 0.0;
  for (std::size_t i = 0; i < q.size(); ++i) {
    force_scale += std::abs(static_cast<double>(q.mass[i]) * q.ax[i]);
  }
  EXPECT_LT(std::abs(fx), 1e-3 * force_scale);
  EXPECT_LT(std::abs(fy), 1e-3 * force_scale);
  EXPECT_LT(std::abs(fz), 1e-3 * force_scale);
  // Work-sharing: thermal rate balances kinetic rate.
  EXPECT_NEAR(dth, -dke, 1e-3 * std::abs(dke));
}

TEST(SphSolver, ThreadedMultiStepConservationMatchesSerial) {
  // Conservation regression for the threaded sweeps: integrate the blast
  // configuration for several explicit steps with 1 and 4 worker threads.
  // Drift must stay within the serial tolerances — and because the
  // threaded path is bitwise deterministic, the two trajectories must in
  // fact agree exactly.
  auto integrate = [](unsigned threads) {
    const std::size_t n = 8;
    const double box = 8.0;
    auto p = gas_lattice(n, box, 0.2f, 3);
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float dx = p.x[i] - 4.0f, dy = p.y[i] - 4.0f, dz = p.z[i] - 4.0f;
      if (dx * dx + dy * dy + dz * dz < 2.25f) p.u[i] = 5000.0f;
    }
    SolverSetup setup(std::move(p), SphConfig{}, box);
    util::ThreadPool pool(threads);
    const float dt = 5e-5f;
    for (int s = 0; s < 5; ++s) {
      setup.evaluate(1.0, &pool);
      auto& q = setup.particles;
      for (std::size_t i = 0; i < q.size(); ++i) {
        q.vx[i] += dt * q.ax[i];
        q.vy[i] += dt * q.ay[i];
        q.vz[i] += dt * q.az[i];
        q.u[i] = std::max(q.u[i] + dt * q.du[i], 0.0f);
        q.x[i] += dt * q.vx[i];
        q.y[i] += dt * q.vy[i];
        q.z[i] += dt * q.vz[i];
      }
      setup.mesh.refit_bounds(setup.particles, &pool);
    }
    return setup.particles;
  };

  auto totals = [](const Particles& q) {
    double mass = 0.0, px = 0.0, py = 0.0, pz = 0.0, e = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      const double m = q.mass[i];
      mass += m;
      px += m * q.vx[i];
      py += m * q.vy[i];
      pz += m * q.vz[i];
      e += m * (q.u[i] + 0.5 * (q.vx[i] * q.vx[i] + q.vy[i] * q.vy[i] +
                                q.vz[i] * q.vz[i]));
    }
    return std::array<double, 5>{mass, px, py, pz, e};
  };

  const auto serial = integrate(1);
  const auto threaded = integrate(4);
  const auto ts = totals(serial);
  const auto tt = totals(threaded);

  const double n_total = static_cast<double>(serial.size());
  const double e0 = n_total * 5000.0;  // initial-energy scale
  for (int c = 0; c < 5; ++c) {
    EXPECT_EQ(tt[c], ts[c]) << "component " << c;
  }
  EXPECT_NEAR(tt[0], n_total, 1e-9);             // mass exactly conserved
  EXPECT_LT(std::abs(tt[1]), 1e-3 * e0);         // momentum drift
  EXPECT_LT(std::abs(tt[2]), 1e-3 * e0);
  EXPECT_LT(std::abs(tt[3]), 1e-3 * e0);
  // Every particle's state is bitwise identical between thread counts.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(threaded.x[i], serial.x[i]);
    ASSERT_EQ(threaded.vx[i], serial.vx[i]);
    ASSERT_EQ(threaded.u[i], serial.u[i]);
  }
}

TEST(SphSolver, ViscosityHeatsApproachingGas) {
  // Two streams colliding head-on: du/dt must be positive (shock heating).
  Particles p;
  const double box = 10.0;
  for (int i = 0; i < 64; ++i) {
    const float x = 3.5f + 0.1f * (i % 8);
    const float y = 3.0f + 0.5f * ((i / 8) % 8);
    const std::size_t idx = p.push_back(
        static_cast<std::uint64_t>(i), Species::kGas, x + (i >= 32 ? 1.5f : 0.0f),
        y, 5.0f, (i >= 32 ? -200.0f : 200.0f), 0, 0, 1.0f);
    p.hsml[idx] = 1.0f;
    p.u[idx] = 10.0f;
  }
  SolverSetup setup(std::move(p), SphConfig{}, box);
  setup.evaluate();
  double total_du = 0.0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    total_du += setup.particles.du[i];
  }
  EXPECT_GT(total_du, 0.0);
}

TEST(SphSolver, SmoothingLengthsConvergeToEta) {
  const std::size_t n = 8;
  const double box = 8.0;
  SphConfig config;
  config.h_change_limit = 100.0f;  // let h jump straight to target
  SolverSetup setup(gas_lattice(n, box, 0.0f, 4), config, box);
  setup.evaluate();
  setup.solver.update_smoothing_lengths(setup.particles, nullptr);
  const double cell = box / n;
  // Deep-interior particles: a full kernel support away from the
  // (non-periodic) domain edge, so the density has no edge deficit.
  int checked = 0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    const bool interior =
        setup.particles.x[i] > 3.2f && setup.particles.x[i] < 4.8f &&
        setup.particles.y[i] > 3.2f && setup.particles.y[i] < 4.8f &&
        setup.particles.z[i] > 3.2f && setup.particles.z[i] < 4.8f;
    if (!interior) continue;
    ++checked;
    EXPECT_NEAR(setup.particles.hsml[i], config.eta * cell, 0.15 * cell);
  }
  EXPECT_GT(checked, 0);
}

TEST(SphSolver, CflTimestepScalesWithSoundSpeed) {
  const std::size_t n = 6;
  const double box = 6.0;
  SolverSetup cold(gas_lattice(n, box, 0.0f, 5), SphConfig{}, box);
  cold.evaluate();
  const double dt_cold =
      cold.solver.min_timestep(cold.particles, nullptr, 1.0, 1e30);

  auto hot_particles = gas_lattice(n, box, 0.0f, 5);
  for (std::size_t i = 0; i < hot_particles.size(); ++i) {
    hot_particles.u[i] = 40000.0f;  // 20x sound speed
  }
  SolverSetup hot(std::move(hot_particles), SphConfig{}, box);
  hot.evaluate();
  const double dt_hot = hot.solver.min_timestep(hot.particles, nullptr, 1.0, 1e30);
  EXPECT_LT(dt_hot, dt_cold);
  EXPECT_NEAR(dt_cold / dt_hot, 20.0, 3.0);
}

TEST(SphSolver, InactiveParticlesKeepState) {
  const std::size_t n = 6;
  const double box = 6.0;
  auto p = gas_lattice(n, box, 0.1f, 6);
  std::vector<std::uint8_t> active(p.size(), 0);
  for (std::size_t i = 0; i < p.size(); i += 2) active[i] = 1;
  const auto rho_before = p.rho;
  SolverSetup setup(std::move(p), SphConfig{}, box);
  std::fill(setup.particles.ax.begin(), setup.particles.ax.end(), 0.0f);
  std::fill(setup.particles.du.begin(), setup.particles.du.end(), 0.0f);
  setup.solver.compute_forces(setup.particles, setup.mesh, 1.0, active.data(),
                              setup.flops);
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    if (!active[i]) {
      EXPECT_EQ(setup.particles.rho[i], rho_before[i]);  // untouched
      EXPECT_EQ(setup.particles.ax[i], 0.0f);
    } else {
      EXPECT_GT(setup.particles.rho[i], 0.0f);
    }
  }
}

TEST(SphSolver, PlainSphBaselineRuns) {
  SphConfig config;
  config.use_crk = false;
  const double box = 6.0;
  SolverSetup setup(gas_lattice(6, box, 0.2f, 7), config, box);
  setup.evaluate();
  // Baseline still produces densities and finite forces.
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    EXPECT_GT(setup.particles.rho[i], 0.0f);
    EXPECT_TRUE(std::isfinite(setup.particles.ax[i]));
  }
  // And the CRK coefficients stay at their defaults.
  EXPECT_FLOAT_EQ(setup.solver.scratch().crk_a[0], 1.0f);
}

TEST(SphSolver, WendlandKernelGivesConsistentDensityAndConservation) {
  const std::size_t n = 8;
  const double box = 8.0;
  SphConfig config;
  config.kernel = KernelShape::kWendlandC4;
  SolverSetup setup(gas_lattice(n, box, 0.2f, 9), config, box);
  setup.evaluate();
  // Interior densities still recover the lattice mean.
  const double mean_density = static_cast<double>(n * n * n) / (box * box * box);
  int checked = 0;
  for (std::size_t i = 0; i < setup.particles.size(); ++i) {
    const bool interior = setup.particles.x[i] > 3.2f && setup.particles.x[i] < 4.8f &&
                          setup.particles.y[i] > 3.2f && setup.particles.y[i] < 4.8f &&
                          setup.particles.z[i] > 3.2f && setup.particles.z[i] < 4.8f;
    if (!interior) continue;
    ++checked;
    EXPECT_NEAR(setup.particles.rho[i], mean_density, 0.1 * mean_density);
  }
  EXPECT_GT(checked, 0);
  // Momentum conservation is kernel-shape independent.
  double fx = 0.0, scale = 0.0;
  const auto& q = setup.particles;
  for (std::size_t i = 0; i < q.size(); ++i) {
    fx += static_cast<double>(q.mass[i]) * q.ax[i];
    scale += std::abs(static_cast<double>(q.mass[i]) * q.ax[i]);
  }
  EXPECT_LT(std::abs(fx), 1e-3 * std::max(scale, 1e-12));
}

TEST(SphSolver, KernelShapesAgreeOnSmoothFields) {
  // Both kernels are consistent density estimators: on the same jittered
  // lattice their interior densities agree to a few percent.
  const std::size_t n = 8;
  const double box = 8.0;
  SphConfig cubic;
  SolverSetup a(gas_lattice(n, box, 0.15f, 10), cubic, box);
  a.evaluate();
  SphConfig wendland;
  wendland.kernel = KernelShape::kWendlandC4;
  SolverSetup b(gas_lattice(n, box, 0.15f, 10), wendland, box);
  b.evaluate();
  for (std::size_t i = 0; i < a.particles.size(); ++i) {
    const bool interior = a.particles.x[i] > 3.2f && a.particles.x[i] < 4.8f &&
                          a.particles.y[i] > 3.2f && a.particles.y[i] < 4.8f &&
                          a.particles.z[i] > 3.2f && a.particles.z[i] < 4.8f;
    if (!interior) continue;
    EXPECT_NEAR(b.particles.rho[i], a.particles.rho[i],
                0.08 * a.particles.rho[i]);
  }
}

TEST(SphSolver, RecordsKernelFlops) {
  const double box = 6.0;
  SolverSetup setup(gas_lattice(6, box, 0.0f, 8), SphConfig{}, box);
  setup.evaluate();
  EXPECT_GT(setup.flops.flops_of(DensityKernel::kName), 0.0);
  EXPECT_GT(setup.flops.flops_of(CrkMomentKernel::kName), 0.0);
  EXPECT_GT(setup.flops.flops_of(MomentumEnergyKernel::kName), 0.0);
  EXPECT_GT(setup.flops.flops_of("crk_coeff_solve"), 0.0);
}

}  // namespace
}  // namespace crkhacc::sph
