// Bandwidth-modeled storage tiers.
//
// Substitutes for the hardware the paper's multi-tier I/O exploits:
//
//   * node-local NVMe — private per node, ~GB/s, negligible latency;
//   * Lustre PFS ("Orion") — shared by every rank, high latency, and a
//     single aggregate bandwidth that all concurrent writers divide.
//
// ThrottledStore enforces the model by real wall-clock pacing: a write of
// B bytes occupies the store's channel for latency + B/bandwidth seconds.
// Shared channels serialize concurrent reservations (the PFS contention
// the paper avoids during latency-sensitive phases); per-rank channels do
// not. Because pacing is real time, the multi-tier advantage shows up as
// genuinely measured bandwidth in the benches, not as a formula.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace crkhacc::io {

struct StoreConfig {
  std::string root;                  ///< directory backing this tier
  double bandwidth_bytes_per_s = 0;  ///< 0 = unthrottled
  double latency_s = 0.0;            ///< per-operation setup cost
  bool shared_channel = true;        ///< all writers share the bandwidth
};

class ThrottledStore {
 public:
  explicit ThrottledStore(const StoreConfig& config);

  const StoreConfig& config() const { return config_; }

  /// Write data to root/rel_path (parent dirs created); returns elapsed
  /// wall-clock seconds including modeled channel time. Thread-safe.
  double write(const std::string& rel_path,
               const std::vector<std::uint8_t>& data);

  /// Read an entire file; empty optional-style: returns false if absent
  /// or unreadable. Reads are paced at the same bandwidth.
  bool read(const std::string& rel_path, std::vector<std::uint8_t>& out);

  /// Move a fully-written file from another store into this one (the
  /// low-level "OS move" of the async bleed). Paced by this store's
  /// channel as a write of the file's size.
  double ingest(ThrottledStore& from, const std::string& rel_path);

  bool exists(const std::string& rel_path) const;
  void remove(const std::string& rel_path);
  std::vector<std::string> list(const std::string& rel_dir = "") const;

  std::uint64_t bytes_written() const { return bytes_written_; }

  std::string full_path(const std::string& rel_path) const;

 private:
  /// Reserve the channel for `bytes`. `already_spent` seconds of real
  /// filesystem work are credited against the modeled service time, so
  /// the model sets the tier's *total* speed rather than stacking on top
  /// of the host disk. Returns seconds of modeled service.
  double occupy_channel(std::uint64_t bytes, double already_spent = 0.0);

  StoreConfig config_;
  std::mutex channel_mutex_;
  double channel_available_at_ = 0.0;  ///< monotonic seconds
  std::uint64_t bytes_written_ = 0;
  std::mutex stats_mutex_;
};

}  // namespace crkhacc::io
