file(REMOVE_RECURSE
  "CMakeFiles/ablation_force_split.dir/ablation_force_split.cpp.o"
  "CMakeFiles/ablation_force_split.dir/ablation_force_split.cpp.o.d"
  "ablation_force_split"
  "ablation_force_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_force_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
