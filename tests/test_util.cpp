// Unit tests for the util substrate: timers, RNG, CRC, Morton codes,
// histograms.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/crc32.h"
#include "util/histogram.h"
#include "util/morton.h"
#include "util/rng.h"
#include "util/timer.h"

namespace crkhacc {
namespace {

// --- timers ---------------------------------------------------------------

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(watch.seconds(), 0.015);
  watch.reset();
  EXPECT_LT(watch.seconds(), 0.015);
}

TEST(TimerRegistry, AccumulatesNamedTimers) {
  TimerRegistry registry;
  registry.add("a", 1.0);
  registry.add("a", 2.0);
  registry.add("b", 3.0);
  EXPECT_DOUBLE_EQ(registry.total("a"), 3.0);
  EXPECT_DOUBLE_EQ(registry.total("b"), 3.0);
  EXPECT_DOUBLE_EQ(registry.total("missing"), 0.0);
  EXPECT_DOUBLE_EQ(registry.grand_total(), 6.0);
  EXPECT_DOUBLE_EQ(registry.fraction("a"), 0.5);
}

TEST(TimerRegistry, SortedReturnsDescending) {
  TimerRegistry registry;
  registry.add("small", 1.0);
  registry.add("large", 10.0);
  const auto sorted = registry.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, "large");
}

TEST(TimerRegistry, MergeSumsPerName) {
  TimerRegistry a, b;
  a.add("x", 1.0);
  b.add("x", 2.0);
  b.add("y", 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total("x"), 3.0);
  EXPECT_DOUBLE_EQ(a.total("y"), 5.0);
}

TEST(ScopedTimer, RecordsOnDestruction) {
  TimerRegistry registry;
  {
    ScopedTimer timer(registry, "scope");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(registry.total("scope"), 0.005);
}

// --- rng --------------------------------------------------------------------

TEST(SplitMix64, DeterministicForSeed) {
  SplitMix64 a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  SplitMix64 a2(7);
  EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(SplitMix64, UniformInUnitInterval) {
  SplitMix64 rng(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(SplitMix64, GaussianMoments) {
  SplitMix64 rng(99);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(SplitMix64, BoundedHasNoObviousBias) {
  SplitMix64 rng(5);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) {
    const auto v = rng.next_bounded(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_NEAR(c, n / 7, n / 7 / 5);
}

TEST(CounterRng, OrderIndependent) {
  CounterRng rng(42, 3);
  const double a = rng.uniform(100);
  const double b = rng.uniform(5);
  EXPECT_EQ(a, rng.uniform(100));  // re-query identical
  EXPECT_EQ(b, rng.uniform(5));
  EXPECT_NE(a, b);
}

TEST(CounterRng, StreamsDiffer) {
  CounterRng s0(42, 0), s1(42, 1);
  EXPECT_NE(s0.u64(7), s1.u64(7));
}

TEST(CounterRng, UniformMean) {
  CounterRng rng(77, 0);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(i);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// --- crc32 -------------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // CRC32 of "123456789" is the canonical check value 0xCBF43926.
  const char* data = "123456789";
  EXPECT_EQ(crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32(nullptr, 0), 0u); }

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<unsigned char> data(256);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<unsigned char>(i);
  const auto original = crc32(data.data(), data.size());
  data[100] ^= 0x01;
  EXPECT_NE(crc32(data.data(), data.size()), original);
}

// --- morton -------------------------------------------------------------------

TEST(Morton, RoundTripsRandomCoordinates) {
  SplitMix64 rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto x = static_cast<std::uint32_t>(rng.next_bounded(1u << 21));
    const auto y = static_cast<std::uint32_t>(rng.next_bounded(1u << 21));
    const auto z = static_cast<std::uint32_t>(rng.next_bounded(1u << 21));
    std::uint32_t rx, ry, rz;
    morton3d_decode(morton3d(x, y, z), rx, ry, rz);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
    ASSERT_EQ(rz, z);
  }
}

TEST(Morton, PreservesLocalityOrdering) {
  // A point and its +1 neighbor differ by less than points far apart.
  const auto near_a = morton3d(100, 100, 100);
  const auto near_b = morton3d(101, 100, 100);
  const auto far_c = morton3d(100000, 100000, 100000);
  EXPECT_LT(near_b - near_a, far_c - near_a);
}

TEST(Morton, Quantize21WrapsPeriodically) {
  EXPECT_EQ(quantize21(0.0, 1.0), 0u);
  EXPECT_EQ(quantize21(1.0, 1.0), 0u);   // periodic wrap
  EXPECT_EQ(quantize21(-0.25, 1.0), quantize21(0.75, 1.0));
  EXPECT_EQ(quantize21(0.5, 1.0), (1u << 20));
}

// --- histogram -------------------------------------------------------------------

TEST(Histogram, CountsAndMoments) {
  Histogram hist(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) hist.add(i + 0.5);
  EXPECT_EQ(hist.count(), 10u);
  EXPECT_DOUBLE_EQ(hist.mean(), 5.0);
  for (std::size_t b = 0; b < 10; ++b) EXPECT_EQ(hist.bin_count(b), 1u);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram hist(0.0, 1.0, 4);
  hist.add(-5.0);
  hist.add(5.0);
  EXPECT_EQ(hist.bin_count(0), 1u);
  EXPECT_EQ(hist.bin_count(3), 1u);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 5.0);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) hist.add(i + 0.5);
  EXPECT_NEAR(hist.percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(hist.percentile(0.9), 90.0, 1.5);
}

TEST(Histogram, AsciiRenderHasOneRowPerBin) {
  Histogram hist(0.0, 1.0, 5);
  hist.add(0.1);
  const auto text = hist.ascii();
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 5);
}

}  // namespace
}  // namespace crkhacc
