// Fault-domain tests: injectable storage faults (torn writes, bit flips,
// transient EIO, sticky ENOSPC), write-verify + retry in the multi-tier
// writer, end-to-end checkpoint integrity (CRC markers), recovery
// fallback to older checkpoints in the simulation driver, and the
// drain/shutdown race.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "comm/world.h"
#include "core/simulation.h"
#include "io/checkpoint.h"
#include "io/generic_io.h"
#include "io/multi_tier.h"
#include "io/storage.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace crkhacc::io {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_fault_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Particles sample_particles(std::size_t n, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, i % 2 ? Species::kGas : Species::kDarkMatter,
                static_cast<float>(rng.next_double() * 10.0),
                static_cast<float>(rng.next_double() * 10.0),
                static_cast<float>(rng.next_double() * 10.0),
                static_cast<float>(rng.next_gaussian()),
                static_cast<float>(rng.next_gaussian()),
                static_cast<float>(rng.next_gaussian()),
                static_cast<float>(1.0 + rng.next_double()));
  }
  return p;
}

struct Tiers {
  TempDir dir;
  ThrottledStore nvme;
  ThrottledStore pfs;

  Tiers()
      : nvme(StoreConfig{dir.str() + "/nvme", 0.0, 0.0, false}),
        pfs(StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true}) {}
};

MultiTierConfig fast_retry_config(int rank = 0, int window = 8) {
  MultiTierConfig config;
  config.rank = rank;
  config.checkpoint_window = window;
  config.max_write_attempts = 4;
  config.backoff_base_s = 1e-4;
  config.backoff_max_s = 1e-3;
  return config;
}

// --- storage fault policy ---------------------------------------------------

TEST(StorageFaults, ScheduleIsDeterministic) {
  // Two stores with the same seed inject the identical fault sequence.
  TempDir dir_a, dir_b;
  ThrottledStore a(StoreConfig{dir_a.str(), 0.0, 0.0, false});
  ThrottledStore b(StoreConfig{dir_b.str(), 0.0, 0.0, false});
  FaultPolicy policy;
  policy.seed = 77;
  policy.transient_eio = 0.3;
  a.set_fault_policy(policy);
  b.set_fault_policy(policy);
  const std::vector<std::uint8_t> data(64, 42);
  int eio_count = 0;
  for (int op = 0; op < 50; ++op) {
    const auto oa = a.try_write("f" + std::to_string(op), data);
    const auto ob = b.try_write("f" + std::to_string(op), data);
    EXPECT_EQ(static_cast<int>(oa.status), static_cast<int>(ob.status));
    if (oa.status == IoStatus::kTransientError) ++eio_count;
  }
  EXPECT_GT(eio_count, 5);
  EXPECT_LT(eio_count, 30);
  EXPECT_EQ(a.fault_stats().eio_errors, static_cast<std::uint64_t>(eio_count));
}

TEST(StorageFaults, TornWriteIsSilentButDetectable) {
  TempDir dir;
  ThrottledStore store(StoreConfig{dir.str(), 0.0, 0.0, false});
  FaultPolicy policy;
  policy.seed = 3;
  policy.torn_write = 1.0;  // every write torn
  store.set_fault_policy(policy);
  const std::vector<std::uint8_t> data(1000, 0xAB);
  const auto outcome = store.try_write("torn.bin", data);
  // Silent: the write claims success...
  EXPECT_EQ(static_cast<int>(outcome.status), static_cast<int>(IoStatus::kOk));
  EXPECT_EQ(store.fault_stats().torn_writes, 1u);
  // ...but read-back shows a prefix, caught by size/CRC comparison.
  std::vector<std::uint8_t> echo;
  ASSERT_TRUE(store.read("torn.bin", echo));
  EXPECT_LT(echo.size(), data.size());
}

TEST(StorageFaults, BitFlipIsSilentButDetectable) {
  TempDir dir;
  ThrottledStore store(StoreConfig{dir.str(), 0.0, 0.0, false});
  FaultPolicy policy;
  policy.seed = 4;
  policy.bit_flip = 1.0;
  store.set_fault_policy(policy);
  const std::vector<std::uint8_t> data(1000, 0xAB);
  ASSERT_EQ(static_cast<int>(store.try_write("flip.bin", data).status),
            static_cast<int>(IoStatus::kOk));
  std::vector<std::uint8_t> echo;
  ASSERT_TRUE(store.read("flip.bin", echo));
  ASSERT_EQ(echo.size(), data.size());
  EXPECT_NE(crc32(echo.data(), echo.size()), crc32(data.data(), data.size()));
  // Exactly one bit differs.
  int flipped_bits = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    flipped_bits += __builtin_popcount(data[i] ^ echo[i]);
  }
  EXPECT_EQ(flipped_bits, 1);
}

TEST(StorageFaults, EnospcIsSticky) {
  TempDir dir;
  ThrottledStore store(StoreConfig{dir.str(), 0.0, 0.0, false});
  FaultPolicy policy;
  policy.seed = 5;
  policy.enospc = 1.0;
  store.set_fault_policy(policy);
  const std::vector<std::uint8_t> data(10, 1);
  EXPECT_EQ(static_cast<int>(store.try_write("a", data).status),
            static_cast<int>(IoStatus::kNoSpace));
  EXPECT_TRUE(store.tier_failed());
  // Even with the hazard removed, the tier stays failed until reset.
  store.set_fault_policy(FaultPolicy{});
  EXPECT_EQ(static_cast<int>(store.try_write("b", data).status),
            static_cast<int>(IoStatus::kNoSpace));
  store.reset_tier();
  EXPECT_EQ(static_cast<int>(store.try_write("c", data).status),
            static_cast<int>(IoStatus::kOk));
}

TEST(StorageFaults, DisabledPolicyNeverFails) {
  TempDir dir;
  ThrottledStore store(StoreConfig{dir.str(), 0.0, 0.0, false});
  const std::vector<std::uint8_t> data(100, 9);
  for (int op = 0; op < 20; ++op) {
    EXPECT_EQ(static_cast<int>(store.try_write("f", data).status),
              static_cast<int>(IoStatus::kOk));
  }
  const auto stats = store.fault_stats();
  EXPECT_EQ(stats.torn_writes + stats.bit_flips + stats.eio_errors +
                stats.enospc_errors,
            0u);
}

// --- checkpoint markers -----------------------------------------------------

TEST(CheckpointMarkerCodec, RoundTripAndRejectsCorruption) {
  CheckpointMarker marker;
  marker.payload_bytes = 123456;
  marker.payload_crc = 0xDEADBEEF;
  const auto bytes = encode_marker(marker);
  CheckpointMarker decoded;
  ASSERT_TRUE(decode_marker(bytes, decoded));
  EXPECT_EQ(decoded.payload_bytes, 123456u);
  EXPECT_EQ(decoded.payload_crc, 0xDEADBEEFu);

  auto corrupt = bytes;
  corrupt[6] ^= 0x10;
  EXPECT_FALSE(decode_marker(corrupt, decoded));
  corrupt = bytes;
  corrupt.pop_back();  // torn marker
  EXPECT_FALSE(decode_marker(corrupt, decoded));
  EXPECT_FALSE(decode_marker({1}, decoded));  // legacy marker format
}

TEST(CheckpointIntegrity, MarkerCarriesPayloadCrc) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, fast_retry_config());
  const auto p = sample_particles(40, 11);
  SnapshotMeta meta;
  meta.step = 3;
  writer.write_checkpoint(meta, p);
  writer.drain();

  std::vector<std::uint8_t> marker_bytes;
  ASSERT_TRUE(tiers.pfs.read(MultiTierWriter::marker_path(3, 0), marker_bytes));
  CheckpointMarker marker;
  ASSERT_TRUE(decode_marker(marker_bytes, marker));
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(
      tiers.pfs.read(MultiTierWriter::checkpoint_path(3, 0), payload));
  EXPECT_EQ(marker.payload_bytes, payload.size());
  EXPECT_EQ(marker.payload_crc, crc32(payload.data(), payload.size()));
  EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, 3, 0));
}

TEST(CheckpointIntegrity, DiscoverySkipsBitFlippedCheckpoint) {
  // A checkpoint corrupted at rest (after the marker was stamped) must
  // not be reported as complete.
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, fast_retry_config());
  const auto p = sample_particles(40, 12);
  for (std::uint64_t step = 1; step <= 2; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  ASSERT_EQ(latest_complete_checkpoint(tiers.pfs, 1).value_or(0), 2u);

  // Flip one bit of the newest payload in place on the "PFS".
  const auto path = tiers.pfs.full_path(MultiTierWriter::checkpoint_path(2, 0));
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(static_cast<bool>(file));
    file.seekg(100);
    char byte;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    file.seekp(100);
    file.write(&byte, 1);
  }
  EXPECT_FALSE(verify_checkpoint_rank(tiers.pfs, 2, 0));
  EXPECT_EQ(latest_complete_checkpoint(tiers.pfs, 1).value_or(0), 1u);

  // restore_checkpoint refuses the corrupt step and accepts the older.
  SnapshotMeta meta;
  Particles out;
  EXPECT_FALSE(restore_checkpoint(tiers.pfs, 2, 0, meta, out));
  EXPECT_TRUE(restore_checkpoint(tiers.pfs, 1, 0, meta, out));
}

// --- multi-tier writer under faults ----------------------------------------

TEST(MultiTierFaults, RetriesThroughTransientPfsErrors) {
  Tiers tiers;
  FaultPolicy policy;
  policy.seed = 21;
  policy.transient_eio = 0.5;
  tiers.pfs.set_fault_policy(policy);
  auto config = fast_retry_config();
  config.max_write_attempts = 10;  // 0.5^10 residual exhaustion risk
  MultiTierWriter writer(tiers.nvme, tiers.pfs, config);
  const auto p = sample_particles(60, 13);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  // Despite a 50% per-op error rate, every checkpoint lands intact.
  for (std::uint64_t step = 1; step <= 6; ++step) {
    EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, step, 0)) << step;
  }
  const auto stats = writer.stats();
  EXPECT_GT(stats.pfs_retries, 0u);
  EXPECT_EQ(stats.bleed_failures, 0u);
}

TEST(MultiTierFaults, VerifyCatchesTornAndFlippedBleeds) {
  Tiers tiers;
  FaultPolicy policy;
  policy.seed = 22;
  policy.torn_write = 0.25;
  policy.bit_flip = 0.25;
  tiers.pfs.set_fault_policy(policy);
  MultiTierWriter writer(tiers.nvme, tiers.pfs, fast_retry_config());
  const auto p = sample_particles(60, 14);
  for (std::uint64_t step = 1; step <= 8; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  // Half the ops corrupt silently: write-verify must have caught some...
  EXPECT_GT(writer.stats().verify_failures, 0u);
  // ...and the completion invariant holds exactly: a checkpoint reported
  // bled passes end-to-end validation; one that exhausted its retries
  // never does (no corrupt checkpoint can masquerade as complete).
  std::uint64_t bled_count = 0;
  for (const auto& record : writer.records()) {
    EXPECT_EQ(verify_checkpoint_rank(tiers.pfs, record.step, 0), record.bled)
        << record.step;
    if (record.bled) ++bled_count;
  }
  EXPECT_GT(bled_count, 0u);
}

TEST(MultiTierFaults, RetryExhaustionLeavesCheckpointIncomplete) {
  Tiers tiers;
  FaultPolicy policy;
  policy.seed = 23;
  policy.transient_eio = 1.0;  // PFS never accepts a write
  tiers.pfs.set_fault_policy(policy);
  MultiTierWriter writer(tiers.nvme, tiers.pfs, fast_retry_config());
  const auto p = sample_particles(30, 15);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();

  const auto stats = writer.stats();
  EXPECT_EQ(stats.bleed_failures, 1u);
  // max_write_attempts - 1 retries before giving up.
  EXPECT_EQ(stats.pfs_retries, 3u);
  // No marker: the checkpoint must not be discoverable...
  EXPECT_FALSE(latest_complete_checkpoint(tiers.pfs, 1).has_value());
  // ...and the local copy is retained as the only good replica.
  EXPECT_TRUE(tiers.nvme.exists(MultiTierWriter::checkpoint_path(1, 0)));
}

TEST(MultiTierFaults, DegradesToDirectPfsWhenLocalTierDies) {
  Tiers tiers;
  FaultPolicy policy;
  policy.seed = 24;
  policy.enospc = 1.0;  // node-local NVMe fails on first touch
  tiers.nvme.set_fault_policy(policy);
  MultiTierWriter writer(tiers.nvme, tiers.pfs, fast_retry_config());
  const auto p = sample_particles(30, 16);
  for (std::uint64_t step = 1; step <= 3; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  // All checkpoints still reach the PFS intact, via the direct path.
  for (std::uint64_t step = 1; step <= 3; ++step) {
    EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, step, 0)) << step;
  }
  const auto stats = writer.stats();
  EXPECT_TRUE(stats.degraded_to_direct);
  EXPECT_EQ(stats.bleed_failures, 0u);
  const auto records = writer.records();
  ASSERT_EQ(records.size(), 3u);
  for (const auto& record : records) EXPECT_TRUE(record.bled);
}

// --- prune window -----------------------------------------------------------

TEST(MultiTierPrune, NoLeakWhenManyStepsElapseBetweenBleeds) {
  // Regression: the old fixed cutoff-8 scan window leaked checkpoints
  // when step numbers jumped by more than 8 between bleeds.
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         fast_retry_config(0, /*window=*/2));
  const auto p = sample_particles(10, 17);
  for (std::uint64_t step : {1ull, 2ull, 3ull, 30ull, 31ull}) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  // Window of 2 behind newest=31: steps 1, 2, 3 (a >8-step-old batch)
  // must all be gone.
  for (std::uint64_t step : {1ull, 2ull, 3ull}) {
    EXPECT_FALSE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(step, 0)))
        << step;
    EXPECT_FALSE(tiers.pfs.exists(MultiTierWriter::marker_path(step, 0)))
        << step;
  }
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(30, 0)));
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(31, 0)));
}

// --- drain / shutdown race --------------------------------------------------

TEST(MultiTierShutdown, ShutdownReleasesBlockedDrain) {
  // A drain racing writer teardown must not wait forever: shutdown()
  // wakes it even though queued bleeds were abandoned.
  TempDir dir;
  ThrottledStore nvme(StoreConfig{dir.str() + "/nvme", 0.0, 0.0, false});
  // Slow PFS so queued bleeds cannot finish quickly.
  ThrottledStore pfs(StoreConfig{dir.str() + "/pfs", 50e3, 0.0, true});
  MultiTierWriter writer(nvme, pfs, fast_retry_config());
  const auto p = sample_particles(2000, 18);  // ~130 KB -> seconds per bleed
  for (std::uint64_t step = 1; step <= 4; ++step) {
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  std::thread drainer([&] { writer.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  writer.shutdown();  // must release the drainer promptly
  drainer.join();
  SUCCEED();
}

TEST(MultiTierShutdown, ShutdownIsIdempotentAndSafeBeforeDestruction) {
  Tiers tiers;
  auto writer = std::make_unique<MultiTierWriter>(tiers.nvme, tiers.pfs,
                                                  fast_retry_config());
  const auto p = sample_particles(10, 19);
  SnapshotMeta meta;
  meta.step = 1;
  writer->write_checkpoint(meta, p);
  writer->drain();
  writer->shutdown();
  writer->shutdown();  // idempotent
  writer.reset();      // destructor after explicit shutdown
  EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(1, 0)));
}

}  // namespace
}  // namespace crkhacc::io

// --- end-to-end recovery through the simulation driver ----------------------

namespace crkhacc::core {
namespace {

namespace fs = std::filesystem;

SimConfig tiny_config() {
  SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 5.0;
  config.num_pm_steps = 3;
  config.hydro = false;
  config.subgrid_on = false;
  config.bins.max_depth = 4;
  config.seed = 99;
  return config;
}

class TempDir {
 public:
  TempDir() {
    // PID-qualified for the same reason as the storage-layer TempDir.
    path_ = fs::temp_directory_path() /
            ("crkhacc_fault_sim_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

/// FaultInjector that interrupts at exactly the scripted trials.
class ScriptedFault : public io::FaultInjector {
 public:
  explicit ScriptedFault(std::vector<std::uint64_t> fail_trials)
      : io::FaultInjector(0.0, 0), fail_trials_(std::move(fail_trials)) {}

  bool should_fail(std::uint64_t trial, double /*dt*/) const override {
    return std::find(fail_trials_.begin(), fail_trials_.end(), trial) !=
           fail_trials_.end();
  }

 private:
  std::vector<std::uint64_t> fail_trials_;
};

TEST(SimulationRecovery, CorruptNewestCheckpointFallsBackBitExact) {
  // The acceptance scenario: the newest checkpoint is silently corrupted
  // (bit flip at rest, caught by CRC), a machine interrupt strikes, and
  // the run must recover from the next-older step and still finish with
  // final state identical to a fault-free run.
  const int num_ranks = 2;
  TempDir dir;
  comm::World world(num_ranks);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < num_ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }

  // Reference: the same campaign, no faults.
  std::vector<Particles> reference(num_ranks);
  world.run([&](comm::Communicator& comm) {
    const auto sim_config = tiny_config();
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
  });

  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 8});
    const auto sim_config = tiny_config();
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    // Steps 1 and 2 complete and checkpoint; then corrupt the newest
    // checkpoint of every rank; then an interrupt strikes at trial 2.
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();
    comm.barrier();
    if (comm.rank() == 0) {
      for (int r = 0; r < num_ranks; ++r) {
        const auto path =
            pfs.full_path(io::MultiTierWriter::checkpoint_path(2, r));
        std::fstream file(path,
                          std::ios::binary | std::ios::in | std::ios::out);
        ASSERT_TRUE(static_cast<bool>(file));
        file.seekg(64);
        char byte;
        file.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x08);
        file.seekp(64);
        file.write(&byte, 1);
      }
    }
    comm.barrier();

    const ScriptedFault fault({0});  // interrupt immediately on resuming
    auto result = sim.run(&writer, &pfs, &fault);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.interruptions, 1u);
    // Newest (step 2) failed CRC -> fell back to step 1.
    EXPECT_EQ(result.recovery_attempts, 2u);
    EXPECT_EQ(result.checkpoint_fallbacks, 1u);
    EXPECT_EQ(result.restarts_from_ics, 0u);
    // Replayed steps 1->3 after recovering from step 1.
    EXPECT_EQ(result.steps_done, 2u);

    // Final state is bit-identical to the fault-free campaign.
    const auto& expect = reference[static_cast<std::size_t>(comm.rank())];
    const auto& got = sim.particles();
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got.id[i], expect.id[i]);
      ASSERT_EQ(got.x[i], expect.x[i]);
      ASSERT_EQ(got.y[i], expect.y[i]);
      ASSERT_EQ(got.z[i], expect.z[i]);
      ASSERT_EQ(got.vx[i], expect.vx[i]);
      ASSERT_EQ(got.vy[i], expect.vy[i]);
      ASSERT_EQ(got.vz[i], expect.vz[i]);
    }
    writer.drain();
    comm.barrier();
  });
}

TEST(SimulationRecovery, AllCheckpointsCorruptRestartsFromIcs) {
  const int num_ranks = 2;
  TempDir dir;
  comm::World world(num_ranks);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  for (int r = 0; r < num_ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
  }
  world.run([&](comm::Communicator& comm) {
    io::MultiTierWriter writer(*nvmes[static_cast<std::size_t>(comm.rank())],
                               pfs, io::MultiTierConfig{comm.rank(), 8});
    const auto sim_config = tiny_config();
    SimContext ctx(sim_config.threads);
    Simulation sim(ctx, comm, sim_config);
    sim.initialize();
    sim.step(&writer);
    writer.drain();
    comm.barrier();
    // Remove rank 0's payload: step 1 is unusable for everyone.
    if (comm.rank() == 0) {
      pfs.remove(io::MultiTierWriter::checkpoint_path(1, 0));
    }
    comm.barrier();

    RunResult probe;
    sim.recover(pfs, probe);
    EXPECT_EQ(probe.recovery_attempts, 1u);
    EXPECT_EQ(probe.checkpoint_fallbacks, 1u);
    EXPECT_EQ(probe.restarts_from_ics, 1u);
    EXPECT_EQ(sim.current_step(), 0u);
    comm.barrier();
  });
}

}  // namespace
}  // namespace crkhacc::core
