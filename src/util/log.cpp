#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace crkhacc::log {
namespace {

std::atomic<Level> g_level{Level::kInfo};
std::atomic<int> g_rank{-1};
std::mutex g_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DBG";
    case Level::kInfo: return "INF";
    case Level::kWarn: return "WRN";
    case Level::kError: return "ERR";
    default: return "???";
  }
}

}  // namespace

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }
Level level() { return g_level.load(std::memory_order_relaxed); }
void set_rank(int rank) { g_rank.store(rank, std::memory_order_relaxed); }

void write(Level level, const char* fmt, ...) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load(std::memory_order_relaxed))) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  const int rank = g_rank.load(std::memory_order_relaxed);
  if (rank >= 0) {
    std::fprintf(stderr, "[%s r%d] ", level_tag(level), rank);
  } else {
    std::fprintf(stderr, "[%s] ", level_tag(level));
  }
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace crkhacc::log
