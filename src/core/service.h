// Scenario farm: N simulations through one shared context.
//
// A calibration campaign (emulator training, parameter sweeps, recovery
// drills) runs many small-to-medium scenarios, not one flagship box. Run
// them as separate processes and every one pays the same fixed costs:
// spin up a thread pool, rebuild the cooling tables, re-plan the FFTs,
// and — for sweeps that vary physics over a common realization — re-draw
// and re-prime the identical initial condition. ScenarioService amortizes
// all of that through one core::SimContext: jobs are queued, admitted
// onto one World, and stepped in interleaved slices through the shared
// pool, borrowing cached immutable assets instead of rebuilding them.
//
// Determinism contract: a job's result is BITWISE identical to running
// the same SimConfig standalone. This follows from two properties the
// rest of the repo already enforces:
//   * slice concatenation — Simulation::run_slice is a pure re-cut of
//     run()'s step loop, so any interleaving of N jobs' slices executes
//     each job's exact standalone step sequence;
//   * context sharing — SimContext assets are immutable after build and
//     keyed so that only bitwise-identical work unifies (see context.h).
// Scheduling therefore changes WHEN a job's steps run, never what they
// compute.
//
// Fairness: kRoundRobin gives every active job one slice per round, so
// equal jobs finish within ~one slice of each other. kDeficitWeighted
// multiplies a job's slice by its priority, letting urgent scenarios
// drain faster while the rest still make progress every round.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/context.h"
#include "core/simulation.h"
#include "io/checkpoint.h"
#include "io/multi_tier.h"
#include "io/storage.h"

namespace crkhacc::core {

/// How drain() shares slices among active jobs.
enum class SchedulePolicy {
  kRoundRobin,       ///< one slice per active job per round
  kDeficitWeighted,  ///< priority-weighted slices per round
};

/// One queued scenario. `params` is an optional "key = value" overlay
/// (ParamFile syntax) applied over `config` at admission — the sweep
/// idiom: one base config, per-job overlays. Overlay keys that fail to
/// parse fail the job (recorded in its JobResult, never thrown).
struct ScenarioJob {
  std::string name;        ///< label for reports; defaults to "job<id>"
  SimConfig config;        ///< base configuration
  std::string params;      ///< ParamFile overlay text ("" = none)
  int priority = 1;        ///< kDeficitWeighted slice weight (>= 1)
  /// Optional storage-fault drill for this job's checkpoint writes.
  /// Requires a service workdir (jobs with faults but no checkpoint
  /// tiers are failed at admission). Borrowed; must outlive drain().
  const io::FaultInjector* fault = nullptr;
};

/// Progress callback payload: fired after every slice of every job, on
/// the scheduler thread. Observers may call request_cancel() from here.
struct SliceEvent {
  std::uint64_t job = 0;      ///< job id (as returned by submit)
  std::string name;           ///< job name
  std::uint64_t step = 0;     ///< job's PM step after this slice
  std::uint64_t slice = 0;    ///< per-job slice ordinal (0-based)
  bool finished = false;      ///< this slice completed the job
};

struct ServiceConfig {
  int threads = 1;      ///< shared pool width (0 = hardware concurrency)
  int slice_steps = 1;  ///< PM steps per slice (scheduling granularity)
  SchedulePolicy policy = SchedulePolicy::kRoundRobin;
  /// Root for per-job checkpoint tiers (workdir/job<id>/{local,pfs}).
  /// Empty = no checkpointing: jobs run straight through in memory.
  std::string workdir;
  int checkpoint_window = 2;  ///< checkpoints kept per job
  /// Progress / control hook; see SliceEvent. May be empty.
  std::function<void(const SliceEvent&)> on_slice;
};

/// Terminal state of one job.
enum class JobOutcome {
  kCompleted,  ///< ran to z_final
  kCancelled,  ///< request_cancel() honoured before completion
  kFailed,     ///< bad overlay / invalid job spec (see `error`)
};

/// One job's result, final state included so callers can compare against
/// a standalone run bit for bit.
struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  JobOutcome outcome = JobOutcome::kFailed;
  std::string error;           ///< empty unless kFailed
  RunResult run;               ///< per-job physics/recovery/io accounting
  Particles final_particles;   ///< state at completion (or cancellation)
  double final_scale_factor = 0.0;
  std::uint64_t slices = 0;    ///< slices this job consumed
  /// Wall seconds from drain() start to this job's terminal slice —
  /// the fairness metric: round-robin keeps the spread of completion
  /// times tight across equal jobs.
  double completion_seconds = 0.0;
};

/// Everything one drain() produced.
struct ServiceReport {
  std::vector<JobResult> jobs;   ///< submission order
  /// Field-wise fold of every job's RunResult (RunResult::merge policy;
  /// `completed` is true iff every job completed).
  RunResult aggregate;
  double wall_seconds = 0.0;     ///< drain() wall time
  /// Shared-context cache accounting at the end of the drain. Cooling /
  /// initial-state counters are per-context; the FFT-plan counters are
  /// process-wide (see SimContext::asset_stats), so they accumulate
  /// across drains and across other simulations in the process.
  SimContext::AssetStats assets;

  /// max/mean completion time over completed jobs (1.0 = perfectly
  /// fair; 0 when fewer than one job completed). The farm bench gates
  /// on this staying near 1 under round-robin.
  double fairness_ratio() const {
    double sum = 0.0, longest = 0.0;
    std::size_t n = 0;
    for (const auto& j : jobs) {
      if (j.outcome != JobOutcome::kCompleted) continue;
      sum += j.completion_seconds;
      longest = std::max(longest, j.completion_seconds);
      ++n;
    }
    if (n == 0 || sum <= 0.0) return 0.0;
    return longest / (sum / static_cast<double>(n));
  }
};

class ScenarioService {
 public:
  explicit ScenarioService(ServiceConfig config = {});

  ScenarioService(const ScenarioService&) = delete;
  ScenarioService& operator=(const ScenarioService&) = delete;

  /// Queue a scenario; returns its job id (ids start at 1). Thread-safe;
  /// submitting during drain() admits the job in a later round.
  std::uint64_t submit(ScenarioJob job);

  /// Ask for `id` to stop: a pending job is dropped before admission, a
  /// running job is finalized as kCancelled after its current slice (its
  /// partial state is still returned). Returns false for unknown or
  /// already-terminal ids. Thread-safe; callable from on_slice.
  bool request_cancel(std::uint64_t id);

  /// Jobs submitted but not yet terminal.
  std::size_t pending() const;

  /// Run every queued job to a terminal state and return the report.
  /// Drives all jobs through one comm::World(1) rank thread, slicing
  /// per `policy`. Callable repeatedly: each drain covers the jobs
  /// queued since the last one.
  ServiceReport drain();

  /// The shared immutable-asset cache (for stats or pre-warming).
  SimContext& context() { return ctx_; }
  const ServiceConfig& config() const { return config_; }

 private:
  struct Admitted;  // live per-job state, defined in service.cpp

  ServiceConfig config_;
  SimContext ctx_;

  mutable std::mutex mutex_;
  std::vector<ScenarioJob> queue_;       // pending, submission order
  std::vector<std::uint64_t> queue_ids_; // parallel to queue_
  std::set<std::uint64_t> cancelled_;    // requested, not yet honoured
  std::set<std::uint64_t> live_;         // submitted, not yet terminal
  std::uint64_t next_id_ = 1;
};

}  // namespace crkhacc::core
