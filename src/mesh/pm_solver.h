// Distributed particle-mesh (PM) gravity solver.
//
// Long-range piece of the separation-of-scales architecture (Fig. 2, top
// left). Per PM step:
//
//   1. CIC-deposit owned particles onto the global density mesh. Cell
//      contributions are routed to the FFT z-slab owners with one
//      alltoallv (the block -> slab repartition SWFFT performs in HACC).
//   2. Forward distributed FFT of the overdensity.
//   3. Apply the filtered Green's function
//         phi_k = -4 pi G S(k) W_cic(k)^{-2} rho_k / k^2
//      (S from mesh/force_split.h; W_cic deconvolves the deposit window)
//      and the spectral gradient i k_d for each force component.
//   4. Three inverse FFTs give the comoving force mesh.
//   5. Every rank fetches the force planes overlapping its overloaded
//      block and CIC-interpolates accelerations for all local particles
//      (ghosts included, so overloaded replicas integrate identically).
//
// Forces returned are comoving: -grad phi with Del^2 phi = 4 pi G rho_com.
// The integrator applies the cosmological 1/a^2 factor.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "comm/decomposition.h"
#include "comm/world.h"
#include "core/particles.h"
#include "fft/distributed_fft.h"
#include "mesh/force_split.h"
#include "util/thread_pool.h"

namespace crkhacc::mesh {

struct PMConfig {
  std::size_t ng = 64;        ///< global mesh cells per dimension
  double box = 64.0;          ///< box side (code length)
  double rs_cells = 1.5;      ///< split scale rs in units of grid cells
  double split_threshold = 1e-3;  ///< pair-force tail where handover ends
};

class PMSolver {
 public:
  PMSolver(comm::Communicator& comm, const comm::CartDecomposition& decomp,
           const PMConfig& config);

  const ForceSplit& split() const { return split_; }
  const PMConfig& config() const { return config_; }

  /// Optional intra-node workers for the deposit and interpolation loops.
  /// Deposit batches are merged in fixed chunk order, so the density mesh
  /// and mean density are bitwise identical for every thread count
  /// (including no pool at all). The pool must outlive the solver's use.
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }

  /// Full long-range solve: overwrites (ax, ay, az) for every local
  /// particle with the filtered mesh acceleration (comoving, includes G).
  /// `overload` is the ghost-layer width of the caller's domain, used to
  /// size the fetched force planes.
  void apply(comm::Communicator& comm, Particles& particles, double overload);

  /// Deposit-only entry point: returns this rank's slab of the global
  /// density mesh (mass per cell volume). Used by tests and by power
  /// spectrum measurement.
  std::vector<double> deposit(comm::Communicator& comm,
                              const Particles& particles);

  /// Mean matter density implied by the most recent deposit.
  double mean_density() const { return mean_density_; }

  /// Deposit + forward FFT of the dimensionless overdensity delta; the
  /// local k-slab is returned with the CIC deposit window deconvolved.
  /// Feeds the in situ power-spectrum measurement.
  std::vector<fft::Complex> overdensity_spectrum(comm::Communicator& comm,
                                                 const Particles& particles);

  const fft::DistributedFFT& fft() const { return fft_; }

 private:
  /// phi_k multiplier: -4 pi G S(k) / (k^2 W^2), 0 at k=0.
  double greens(double kx, double ky, double kz) const;

  comm::Communicator& comm_;
  const comm::CartDecomposition& decomp_;
  PMConfig config_;
  ForceSplit split_;
  fft::DistributedFFT fft_;
  double mean_density_ = 0.0;
  util::ThreadPool* pool_ = nullptr;
};

/// CIC weights for one coordinate: returns base cell and fraction.
struct CicAxis {
  long cell;      ///< lower cell index (may need periodic wrap)
  double w_hi;    ///< weight of cell+1; weight of cell is 1-w_hi
};
CicAxis cic_axis(double position, double cell_size);

}  // namespace crkhacc::mesh
