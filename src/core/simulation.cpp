#include "core/simulation.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>

#include "analysis/fof.h"
#include "cosmology/ics.h"
#include "cosmology/units.h"
#include "gpu/device.h"
#include "gravity/short_range.h"
#include "integrator/timestep.h"
#include "io/ckpt_audit.h"
#include "sph/eos.h"
#include "util/assertions.h"
#include "util/log.h"

namespace crkhacc::core {
namespace {

/// Canonical per-step phases rolled into PhaseStat imbalance metrics.
/// Every rank reduces over this exact list (collective), so it must be
/// rank-independent; a rank that skipped a phase contributes zero.
constexpr const char* kStepPhases[] = {
    "exchange",     "tree_build", "tree_refit",   "long_range",
    "bin_assign",   "load_balance", "short_range", "subgrid",
    "sdc_snapshot", "sdc_audit",  "checkpoint_io", "analysis",
};

mesh::PMConfig pm_config_of(const SimConfig& config) {
  return mesh::PMConfig{config.ng, config.box, config.rs_cells,
                        config.split_threshold};
}

/// Fill in resolution-derived defaults before any member is constructed
/// from the config (members copy their sub-configs at init time).
SimConfig resolve_config(SimConfig config) {
  const cosmo::Background bg(config.cosmology);
  // Subgrid overdensity gates need the mean comoving gas density.
  config.subgrid.mean_gas_density = bg.mean_matter_density() *
                                    config.cosmology.omega_b /
                                    config.cosmology.omega_m;
  // Resolution-scaled softening (force and accel-criterion length).
  const double spacing = config.box / static_cast<double>(config.np);
  const double softening =
      config.softening < 0.0 ? 0.1 * spacing : config.softening;
  config.softening = softening;
  config.gravity.softening = static_cast<float>(softening);
  config.bins.softening = softening;
  return config;
}

}  // namespace

Simulation::Simulation(SimContext& ctx, comm::Communicator& comm,
                       const SimConfig& config)
    : Simulation(nullptr, &ctx, comm, config) {}

Simulation::Simulation(comm::Communicator& comm, const SimConfig& config)
    : Simulation(std::make_unique<SimContext>(config.threads), nullptr, comm,
                 config) {}

Simulation::Simulation(std::unique_ptr<SimContext> owned, SimContext* borrowed,
                       comm::Communicator& comm, const SimConfig& config)
    : comm_(comm),
      config_(resolve_config(config)),
      private_ctx_(std::move(owned)),
      ctx_(borrowed != nullptr ? *borrowed : *private_ctx_),
      pool_(ctx_.thread_pool()),
      pool_baseline_(pool_.stats()),
      decomp_(comm.size(), config.box),
      bg_(config_.cosmology),
      power_(config_.cosmology),
      pm_(comm, decomp_, pm_config_of(config_)),
      sph_(config_.sph),
      subgrid_(config_.subgrid, ctx_.cooling_table(config_.subgrid.cooling)),
      kdk_(bg_),
      lb_(comm, decomp_, config_.lb),
      auditor_(config_.sdc),
      snapshot_(config_.sdc.page_bytes),
      trace_(config_.trace) {
  trace_.set_rank(comm.rank());
  // Chaining-mesh bins must cover the short-range cutoff and the widest
  // SPH support; ghosts must cover one bin width so every owned
  // particle's neighborhood is complete.
  const double spacing = config_.box / static_cast<double>(config_.np);
  cm_bin_width_ =
      std::max(pm_.split().cutoff(),
               3.0 * static_cast<double>(config_.sph.eta) * spacing);
  overload_ = cm_bin_width_;
  // Cap smoothing lengths so kernel support never exceeds a CM bin.
  sph_.mutable_config().h_max =
      static_cast<float>(0.45 * cm_bin_width_ / sph::CubicSpline::kSupport *
                         2.0);
  pm_.set_thread_pool(&pool_);
  a_ = cosmo::Background::a_of_z(config_.z_init);
}

Simulation::~Simulation() {
  // Disarm the drill on teardown so the injector's armed-reference
  // count balances however the owner sequences destruction.
  if (sdc_fault_ != nullptr) sdc_fault_->release_armed();
}

void Simulation::set_memory_fault_injector(const MemFaultInjector* injector) {
  if (sdc_fault_ == injector) return;
  if (sdc_fault_ != nullptr) sdc_fault_->release_armed();
  if (injector != nullptr) injector->retain_armed();
  sdc_fault_ = injector;
}

double Simulation::a_at_step(std::uint64_t s) const {
  const double a_init = cosmo::Background::a_of_z(config_.z_init);
  const double a_final = cosmo::Background::a_of_z(config_.z_final);
  const double frac = static_cast<double>(s) /
                      static_cast<double>(config_.num_pm_steps);
  return a_init + (a_final - a_init) * frac;
}

std::vector<std::uint32_t> Simulation::gas_indices() const {
  std::vector<std::uint32_t> gas;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.is_gas(i)) gas.push_back(static_cast<std::uint32_t>(i));
  }
  return gas;
}

void Simulation::initialize() {
  // Shared-context fast path: a primed state cached under this config's
  // key is bitwise the state the code below would produce (the key
  // covers every input of this path; thread count is excluded by the
  // pool's determinism contract), so IC generation, the exchange, and
  // the priming force pass are all skipped. NOTE: the skip elides this
  // rank's IC/exchange collectives, so in multi-rank runs every rank
  // must hit or miss together — guaranteed when each rank's context saw
  // the same scenario sequence (the core/context.h sharing contract).
  const std::string key =
      SimContext::initial_state_key(config_, comm_.rank(), comm_.size());
  if (const auto cached = ctx_.find_initial_state(key)) {
    particles_ = cached->particles;
    a_ = cached->scale_factor;
    step_ = 0;
    return;
  }

  cosmo::IcConfig ic;
  ic.np = config_.np;
  ic.box = config_.box;
  ic.z_init = config_.z_init;
  ic.seed = config_.seed;
  ic.with_baryons = config_.hydro;
  ic.t_init_K = config_.t_init_K;
  particles_ = cosmo::generate_zeldovich(comm_, bg_, power_, ic);
  a_ = cosmo::Background::a_of_z(config_.z_init);
  step_ = 0;

  // Clamp initial smoothing lengths to the CM support limit.
  const float h_max = sph_.config().h_max;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (particles_.is_gas(i)) {
      particles_.hsml[i] = std::min(particles_.hsml[i], h_max);
    }
  }

  exchange_and_overload(comm_, decomp_, particles_, overload_);
  prime_solver_state();

  ctx_.store_initial_state(key, CachedInitialState{particles_, a_});
}

void Simulation::initialize_from(Particles&& particles, std::uint64_t step) {
  particles_ = std::move(particles);
  step_ = step;
  a_ = a_at_step(step);
}

void Simulation::prime_solver_state() {
  // One hydro evaluation to populate rho, h, cs — needed by the first
  // bin assignment and by the subgrid thresholds.
  if (!config_.hydro) return;
  const auto obox = decomp_.overloaded_box(comm_.rank(), overload_);
  tree::ChainingMesh gas_mesh(obox, {cm_bin_width_, 64});
  gas_mesh.build(particles_, gas_indices(), &pool_);
  std::fill(particles_.ax.begin(), particles_.ax.end(), 0.0f);
  std::fill(particles_.ay.begin(), particles_.ay.end(), 0.0f);
  std::fill(particles_.az.begin(), particles_.az.end(), 0.0f);
  std::fill(particles_.du.begin(), particles_.du.end(), 0.0f);
  sph_.compute_forces(particles_, gas_mesh, a_, nullptr, flops_, nullptr,
                      &pool_);
  sph_.update_smoothing_lengths(particles_, nullptr);
  std::fill(particles_.ax.begin(), particles_.ax.end(), 0.0f);
  std::fill(particles_.ay.begin(), particles_.ay.end(), 0.0f);
  std::fill(particles_.az.begin(), particles_.az.end(), 0.0f);
  std::fill(particles_.du.begin(), particles_.du.end(), 0.0f);
}

int Simulation::assign_timestep_bins(double dt_pm) {
  const std::size_t n = particles_.size();
  std::vector<double> limit(n, std::numeric_limits<double>::infinity());
  const double a3 = a_ * a_ * a_;
  for (std::size_t i = 0; i < n; ++i) {
    // Acceleration criterion (ax holds the peculiar long-range kick).
    limit[i] = integrator::accel_timestep(config_.bins, a_, particles_.ax[i],
                                          particles_.ay[i], particles_.az[i]);
    if (particles_.is_gas(i)) {
      const float cs = sph::sound_speed(particles_.u[i]);
      if (cs > 0.0f && particles_.hsml[i] > 0.0f) {
        limit[i] = std::min(
            limit[i], static_cast<double>(sph_.config().cfl) * a_ *
                          particles_.hsml[i] / cs);
      }
      if (config_.subgrid_on && particles_.rho[i] > 0.0f) {
        const double n_h = subgrid::n_hydrogen_cgs(
            particles_.rho[i] / a3, config_.subgrid.cooling.h,
            config_.subgrid.cooling.x_hydrogen);
        const bool overdense =
            particles_.rho[i] >
            config_.subgrid.star_formation.min_overdensity *
                config_.subgrid.mean_gas_density;
        if (overdense && n_h > config_.subgrid.star_formation.n_h_threshold) {
          const double t_dyn = std::sqrt(
              3.0 * std::numbers::pi /
              (32.0 * units::kGravity * particles_.rho[i] / a3));
          limit[i] = std::min(limit[i], 0.25 * t_dyn);
        }
      }
    }
  }
  int depth = integrator::assign_bins(particles_, limit, dt_pm, config_.bins,
                                      &last_anomalies_);
  if (config_.flat_stepping) {
    for (std::size_t i = 0; i < n; ++i) {
      particles_.bin[i] = static_cast<std::uint8_t>(depth);
    }
  }
  return depth;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
Simulation::filter_active_pairs(
    const tree::ChainingMesh& mesh,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& pairs,
    const std::vector<std::uint8_t>& active) const {
  std::vector<std::uint8_t> leaf_active(mesh.num_leaves(), 0);
  const auto& perm = mesh.permutation();
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    const auto& leaf = mesh.leaf(l);
    for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
      if (active[perm[s]]) {
        leaf_active[l] = 1;
        break;
      }
    }
  }
  std::vector<std::pair<std::uint32_t, std::uint32_t>> filtered;
  filtered.reserve(pairs.size());
  for (const auto& pair : pairs) {
    if (leaf_active[pair.first] || leaf_active[pair.second]) {
      filtered.push_back(pair);
    }
  }
  return filtered;
}

StepReport Simulation::step_body(SdcStepStats* stats) {
  // Baseline for this attempt's solver-side non-finite census: the
  // counter never resets, so the audit reads the per-attempt delta (a
  // clean replay must not inherit the corrupt attempt's count).
  sph_nonfinite_baseline_ = sph_.nonfinite_smoothing_targets();
  StepReport report;
  report.step = step_;
  const double a0 = a_at_step(step_);
  const double a1 = a_at_step(step_ + 1);
  report.a0 = a0;
  report.a1 = a1;
  Stopwatch step_watch;

  // --- 1. exchange + overload refresh -----------------------------------
  {
    ScopedTimer t(timers_, timers::kMisc);
    report.exchange =
        exchange_and_overload(comm_, decomp_, particles_, overload_);
  }

  // --- 2. chaining mesh + trees, built once per PM step ------------------
  const auto obox = decomp_.overloaded_box(comm_.rank(), overload_);
  tree::ChainingMesh mesh_all(obox, {cm_bin_width_, 64});
  tree::ChainingMesh mesh_gas(obox, {cm_bin_width_, 64});
  {
    ScopedTimer t(timers_, timers::kTreeBuild);
    HACC_TRACE_SPAN("tree_build");
    mesh_all.build(particles_, &pool_);
    if (config_.hydro) mesh_gas.build(particles_, gas_indices(), &pool_);
  }

  // --- 3. long-range spectral solve + PM-level kick ----------------------
  {
    ScopedTimer t(timers_, timers::kLongRange);
    HACC_TRACE_SPAN("long_range");
    pm_.apply(comm_, particles_, overload_);
    const double a_mid = 0.5 * (a0 + a1);
    const float to_peculiar = static_cast<float>(1.0 / (a_mid * a_mid));
    for (std::size_t i = 0; i < particles_.size(); ++i) {
      particles_.ax[i] *= to_peculiar;
      particles_.ay[i] *= to_peculiar;
      particles_.az[i] *= to_peculiar;
    }
    // Full-step long-range kick; carries the (once-per-interval) drag.
    kdk_.kick(particles_, a0, a1, nullptr, /*with_drag=*/true);
  }

  // SDC drill point: between the long-range and short-range kernels.
  sdc_inject(stats);

  // --- 4. timestep bin assignment ----------------------------------------
  const double dt_pm = kdk_.dt_of(a0, a1);
  int depth = 0;
  {
    HACC_TRACE_SPAN("bin_assign");
    depth = assign_timestep_bins(dt_pm);
  }
  report.depth = depth;

  // --- 5. sub-cycled short-range solve ------------------------------------
  const std::uint64_t nfine = 1ull << depth;
  report.substeps = nfine;

  // Dynamic load-balance decision: collective, census-driven, between
  // the mesh build and the pair kernels. Disabled (the default) runs
  // zero collectives here, keeping untouched configs bitwise unchanged
  // comm-op for comm-op.
  LbDecision lb;
  if (lb_.enabled()) {
    HACC_TRACE_SPAN("load_balance");
    // The previous step's measured short-range seconds exist only once
    // tracing has flushed a step; decisions stay census-only otherwise.
    const double measured =
        (config_.trace.enabled && step_ > 0)
            ? trace_.step_seconds(step_ - 1, "short_range")
            : 0.0;
    lb = lb_.decide(mesh_all, nfine, measured);
    report.lb_imbalance_before = lb.imbalance_before;
    report.lb_imbalance_after = lb.imbalance_after;
  }
  const double da_fine = (a1 - a0) / static_cast<double>(nfine);
  std::vector<std::uint8_t> active;
  std::vector<double> dt_particle(particles_.size(), 0.0);

  for (std::uint64_t s = 0; s < nfine; ++s) {
    HACC_TRACE_SPAN("substep");
    const double a_s = a0 + static_cast<double>(s) * da_fine;
    integrator::activity_mask(particles_, s, depth, active);

    {
      ScopedTimer t(timers_, timers::kTreeBuild);
      if (config_.rebuild_tree_every_substep) {
        HACC_TRACE_SPAN("tree_build");
        mesh_all.build(particles_, &pool_);
        if (config_.hydro) mesh_gas.build(particles_, gas_indices(), &pool_);
      } else {
        HACC_TRACE_SPAN("tree_refit");
        mesh_all.refit_bounds(particles_, &pool_);
        if (config_.hydro) mesh_gas.refit_bounds(particles_, &pool_);
      }
    }

    {
      ScopedTimer t(timers_, timers::kShortRange);
      HACC_TRACE_SPAN("short_range");
      // Zero force accumulators of active particles only; inactive keep
      // stale values that no kick reads.
      std::uint64_t n_active = 0;
      for (std::size_t i = 0; i < particles_.size(); ++i) {
        if (!active[i]) continue;
        ++n_active;
        particles_.ax[i] = 0.0f;
        particles_.ay[i] = 0.0f;
        particles_.az[i] = 0.0f;
        particles_.du[i] = 0.0f;
      }
      report.active_updates += n_active;

      // Interaction lists rebuilt from the refit AABBs, filtered to leaf
      // pairs touching an active leaf.
      const double a_sub_mid = a_s + 0.5 * da_fine;
      {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> active_pairs;
        {
          HACC_TRACE_SPAN("pairs_build");
          const auto pairs = mesh_all.interaction_pairs(pm_.split().cutoff());
          active_pairs = filter_active_pairs(mesh_all, pairs, active);
        }
        if (lb.is_donor()) {
          // Ship the migrated owner tasks, run the rest locally, copy
          // the helper's accumulations back — bitwise identical to the
          // unbalanced launch per particle (see core/load_balancer.h).
          lb_.donor_substep(particles_, mesh_all, active_pairs, &pm_.split(),
                            config_.gravity, a_sub_mid, active.data(), flops_,
                            &pool_, lb, s);
          ++report.lb_packets_migrated;
        } else {
          gravity::compute_short_range(particles_, mesh_all, &pm_.split(),
                                       config_.gravity, a_sub_mid,
                                       active.data(), flops_, &active_pairs,
                                       &pool_);
          // A helper serves its donors' packets for this substep index
          // right after its own launch (donor and helper sets are
          // disjoint, so the blocking protocol cannot cycle).
          if (lb.is_helper()) {
            lb_.serve(lb, s, &pm_.split(), config_.gravity, flops_, &pool_);
          }
        }
      }
      if (config_.hydro && mesh_gas.num_particles() > 0) {
        std::vector<std::pair<std::uint32_t, std::uint32_t>> active_pairs;
        {
          HACC_TRACE_SPAN("pairs_build");
          const auto pairs = mesh_gas.interaction_pairs(
              sph::SphSolver::interaction_radius(particles_, mesh_gas));
          active_pairs = filter_active_pairs(mesh_gas, pairs, active);
        }
        sph_.compute_forces(particles_, mesh_gas, a_sub_mid, active.data(),
                            flops_, &active_pairs, &pool_);
      }

      // Kick each active particle across its own bin interval (drag-free;
      // the PM kick already carried the drag for the whole step).
      util::TraceRecorder::Span kick_span(util::TraceRecorder::current(),
                                          "kick");
      for (int b = 0; b <= depth; ++b) {
        if (!integrator::bin_active(static_cast<std::uint8_t>(b), s, depth)) {
          continue;
        }
        const std::uint64_t span_fine = 1ull << (depth - b);
        const double a_bin_end =
            a0 + static_cast<double>(std::min(s + span_fine, nfine)) * da_fine;
        std::vector<std::uint8_t> bin_mask(particles_.size(), 0);
        bool any = false;
        for (std::size_t i = 0; i < particles_.size(); ++i) {
          if (active[i] && particles_.bin[i] == b) {
            bin_mask[i] = 1;
            any = true;
            dt_particle[i] = kdk_.dt_of(a_s, a_bin_end);
          }
        }
        if (!any) continue;
        kdk_.kick(particles_, a_s, a_bin_end, bin_mask.data(),
                  /*with_drag=*/false);
        kdk_.energy_kick(particles_, a_s, a_bin_end, bin_mask.data());
      }
      kick_span.close();

      // Subgrid sources for active gas (per-particle bin-length dt).
      // The stochastic stream is keyed on (PM step, fine substep) so a
      // run restored from a checkpoint replays identical draws.
      if (config_.hydro && config_.subgrid_on) {
        dt_particle.resize(particles_.size(), 0.0);
        const std::uint64_t stream = (step_ << 16) | s;
        report.subgrid += subgrid_.apply(particles_, mesh_gas, bg_, a_s,
                                         dt_particle, active.data(), stream);
        sph_.update_smoothing_lengths(particles_, active.data());
      }

      // All particles drift at the fine cadence.
      {
        HACC_TRACE_SPAN("drift");
        kdk_.drift(particles_, a_s, a_s + da_fine, config_.box, nullptr);
      }
    }
  }

  // Serve the remaining substeps of donors that sub-cycle deeper than
  // this rank (their requests are already queued; recv order is FIFO
  // per donor, so the drain picks up exactly where the loop stopped).
  if (lb.is_helper()) {
    ScopedTimer t(timers_, timers::kShortRange);
    HACC_TRACE_SPAN("short_range");
    lb_.drain(lb, nfine, &pm_.split(), config_.gravity, flops_, &pool_);
  }

  // SDC drill point: after the sub-cycle, right before the audit.
  sdc_inject(stats);

  a_ = a1;
  ++step_;

  // --- 6. in situ analysis ------------------------------------------------
  // (cadence handled by run(); step() leaves analysis to the caller)

  report.seconds = step_watch.seconds();
  return report;
}

void Simulation::write_step_checkpoint(io::MultiTierWriter* writer,
                                       StepReport& report) {
  // --- 7. multi-tier checkpoint -------------------------------------------
  // Runs after the SDC audit committed the step, so only audited state
  // is ever persisted (a corrupt array must not poison the at-rest tier
  // the escalation path will restore from).
  if (!writer) return;
  ScopedTimer t(timers_, timers::kIO);
  HACC_TRACE_SPAN("checkpoint_io");
  io::SnapshotMeta meta;
  meta.step = step_;
  meta.scale_factor = a_;
  meta.rank = comm_.rank();
  meta.num_ranks = comm_.size();
  report.io_blocked_seconds = writer->write_checkpoint(meta, particles_);
}

void Simulation::sdc_capture(SdcStepStats& stats) {
  HACC_TRACE_SPAN("sdc_snapshot");
  Stopwatch watch;
  const auto regions = snapshot_regions(std::as_const(particles_));
  snapshot_.capture(regions);
  snap_step_ = step_;
  snap_a_ = a_;
  snap_count_ = particles_.size();
  stats.snapshot_seconds += watch.seconds();
  stats.snapshot_bytes = snapshot_.bytes();
  stats.snapshot_pages = snapshot_.pages();
  // Pre-step conserved sums: the reference every audit of this step's
  // attempts gates against (collective).
  snap_reference_ = measure_conservation(comm_, particles_);
}

bool Simulation::sdc_rollback() {
  particles_.resize(snap_count_);
  auto regions = snapshot_regions(particles_);
  const bool restored = snapshot_.restore(regions);
  // The restore verdict is collective: if any rank's snapshot buffer
  // failed its CRC, every rank abandons the replay together.
  if (!comm_.all_agree(restored)) return false;
  step_ = snap_step_;
  a_ = snap_a_;
  return true;
}

void Simulation::sdc_inject(SdcStepStats* stats) {
  // The opportunity counter is monotonic — never rewound on replay, and
  // advanced even with no injector armed — so drill-point numbering is
  // a property of the step stream alone, and a one-shot scripted flip
  // cannot recur and poison its own replay.
  const std::uint64_t opportunity = sdc_opportunity_++;
  if (sdc_fault_ == nullptr || particles_.empty()) return;
  const auto flip = sdc_fault_->draw(opportunity);
  if (!flip) return;
  const std::string what = apply_flip(particles_, *flip);
  if (stats != nullptr) ++stats->injected_flips;
  HACC_LOG_WARN("rank %d: SDC drill flipped %s", comm_.rank(), what.c_str());
}

std::uint32_t Simulation::sdc_audit(SdcStepStats& stats) {
  HACC_TRACE_SPAN("sdc_audit");
  Stopwatch watch;
  ++stats.audits;
  AuditContext ctx;
  ctx.box = config_.box;
  // Ghost images live up to one overload width outside the box; double
  // it so legitimate intra-step drift never trips the bounds gate.
  ctx.position_margin = 2.0 * overload_;
  ctx.domain = decomp_.local_box(comm_.rank());
  ctx.domain_slack = overload_;
  ctx.cm_bin_width = cm_bin_width_;
  ctx.reference = snap_reference_;
  ctx.timestep = last_anomalies_;
  ctx.solver_nonfinite =
      sph_.nonfinite_smoothing_targets() - sph_nonfinite_baseline_;
  const std::uint32_t verdict = auditor_.audit(comm_, particles_, ctx);
  stats.failed_checks |= verdict;
  stats.audit_seconds += watch.seconds();
  if (verdict != 0) {
    HACC_LOG_WARN("rank %d: step %llu audit failed (%s): %s", comm_.rank(),
                  static_cast<unsigned long long>(snap_step_),
                  sdc_check_names(verdict).c_str(),
                  auditor_.last_failure().empty()
                      ? "flagged on another rank"
                      : auditor_.last_failure().c_str());
  }
  return verdict;
}

StepReport Simulation::step(io::MultiTierWriter* writer) {
  // Install this rank's recorder for the step; spans are no-ops when
  // tracing is disabled, and the flush + imbalance collectives below run
  // only when it is enabled (so comm-op counts match untraced runs).
  util::TraceRecorder::Context trace_ctx(&trace_);
  const std::uint64_t step_index = step_;
  StepReport report;
  {
    HACC_TRACE_SPAN("step");
    report = step_guarded(writer);
  }
  if (config_.trace.enabled) {
    trace_.flush(step_index);
    collect_phase_stats(report, step_index);
  }
  return report;
}

void Simulation::collect_phase_stats(StepReport& report,
                                     std::uint64_t step_index) {
  constexpr std::size_t n = std::size(kStepPhases);
  std::vector<double> sum(n), max(n);
  for (std::size_t i = 0; i < n; ++i) {
    sum[i] = max[i] = trace_.step_seconds(step_index, kStepPhases[i]);
  }
  comm_.allreduce(std::span<double>(sum), comm::ReduceOp::kSum);
  comm_.allreduce(std::span<double>(max), comm::ReduceOp::kMax);
  for (std::size_t i = 0; i < n; ++i) {
    if (max[i] <= 0.0) continue;  // phase never ran anywhere this step
    report.phases.push_back(
        {kStepPhases[i], sum[i] / static_cast<double>(comm_.size()), max[i]});
  }
}

StepReport Simulation::step_guarded(io::MultiTierWriter* writer) {
  if (!config_.sdc.enabled) {
    StepReport report = step_body(nullptr);
    write_step_checkpoint(writer, report);
    return report;
  }

  SdcStepStats stats;
  sdc_capture(stats);
  StepReport report;
  for (int attempt = 0;; ++attempt) {
    report = step_body(&stats);
    if (sdc_audit(stats) == 0) break;
    ++stats.detections;
    // The verdict mask and attempt count are identical on every rank,
    // so replay-vs-escalate is a collective decision by construction.
    if (attempt >= config_.sdc.max_replays) {
      stats.escalated = true;
      HACC_LOG_WARN("rank %d: step %llu replay budget (%d) exhausted",
                    comm_.rank(),
                    static_cast<unsigned long long>(snap_step_),
                    config_.sdc.max_replays);
      break;
    }
    if (!sdc_rollback()) {
      // The in-memory snapshot itself failed its CRC: nothing intact to
      // replay from — straight to checkpoint restore.
      stats.failed_checks |= kSdcCheckSnapshot;
      stats.escalated = true;
      break;
    }
    ++stats.rollbacks;
    ++stats.replays;
  }
  report.sdc = stats;
  // A step that never passed its audit is not checkpointed; run() falls
  // back to the newest committed checkpoint instead.
  if (!stats.escalated) write_step_checkpoint(writer, report);
  return report;
}

AnalysisResult Simulation::run_analysis() {
  AnalysisResult result;
  result.a = a_;
  ScopedTimer t(timers_, timers::kAnalysis);
  // Analysis spans commit at the next step's flush (or the end-of-run
  // flush), so their imbalance stats attribute to the following step.
  util::TraceRecorder::Context trace_ctx(&trace_);
  HACC_TRACE_SPAN("analysis");

  // FOF halo finding over the rank-local (overloaded) particle cloud.
  const std::size_t species_count = config_.hydro ? 2 : 1;
  const std::size_t n_global =
      config_.np * config_.np * config_.np * species_count;
  const double ll = analysis::fof_linking_length(config_.box, n_global, 0.2);
  const auto groups =
      analysis::fof(particles_.x, particles_.y, particles_.z,
                    static_cast<float>(ll), /*min_members=*/8);
  const auto owned_box = decomp_.local_box(comm_.rank());
  result.local_halos = analysis::halo_catalog(particles_, groups, &owned_box);

  // Survey-facing SO masses for the most massive local halos.
  {
    analysis::SoConfig so_config;
    so_config.reference_density = bg_.mean_matter_density();
    so_config.r_max = std::min(0.25 * config_.box, 2.0 * overload_);
    std::vector<analysis::Halo> seeds(
        result.local_halos.begin(),
        result.local_halos.begin() +
            std::min<std::size_t>(result.local_halos.size(), 16));
    result.so_halos = analysis::so_masses(particles_, seeds, so_config);
  }

  // Galaxies from the stellar component.
  {
    analysis::GalaxyFinderConfig galaxy_config;
    galaxy_config.linking_length = static_cast<float>(
        0.1 * config_.box / static_cast<double>(config_.np));
    result.galaxies = analysis::find_galaxies(particles_, galaxy_config);
    result.galaxy_count = comm_.allreduce_scalar(
        static_cast<std::int64_t>(result.galaxies.size()),
        comm::ReduceOp::kSum);
  }

  std::int64_t local_count = static_cast<std::int64_t>(result.local_halos.size());
  result.halo_count = comm_.allreduce_scalar(local_count, comm::ReduceOp::kSum);
  double local_max = result.local_halos.empty() ? 0.0
                                                : result.local_halos.front().mass;
  result.largest_halo_mass =
      comm_.allreduce_scalar(local_max, comm::ReduceOp::kMax);

  // Species census.
  std::int64_t stars = 0, bhs = 0;
  for (std::size_t i = 0; i < particles_.size(); ++i) {
    if (!particles_.is_owned(i)) continue;
    if (particles_.species[i] == static_cast<std::uint8_t>(Species::kStar)) {
      ++stars;
    } else if (particles_.species[i] ==
               static_cast<std::uint8_t>(Species::kBlackHole)) {
      ++bhs;
    }
  }
  result.star_count = comm_.allreduce_scalar(stars, comm::ReduceOp::kSum);
  result.bh_count = comm_.allreduce_scalar(bhs, comm::ReduceOp::kSum);

  // Volume-weighted gas clumping from SPH densities.
  {
    double weights[2] = {0.0, 0.0};  // {sum V, sum V rho = sum m}
    double sum_v_rho2 = 0.0;         // sum V rho^2 = sum m rho
    for (std::size_t i = 0; i < particles_.size(); ++i) {
      if (!particles_.is_owned(i) || !particles_.is_gas(i)) continue;
      if (particles_.rho[i] <= 0.0f) continue;
      const double volume = particles_.mass[i] / particles_.rho[i];
      weights[0] += volume;
      weights[1] += particles_.mass[i];
      sum_v_rho2 += static_cast<double>(particles_.mass[i]) * particles_.rho[i];
    }
    comm_.allreduce(std::span<double>(weights, 2), comm::ReduceOp::kSum);
    sum_v_rho2 = comm_.allreduce_scalar(sum_v_rho2, comm::ReduceOp::kSum);
    if (weights[0] > 0.0 && weights[1] > 0.0) {
      const double mean = weights[1] / weights[0];
      result.gas_clumping = (sum_v_rho2 / weights[0]) / (mean * mean);
    }
  }

  // Clustering probes.
  result.power = analysis::measure_power(comm_, pm_, particles_,
                                         /*subtract_shot_noise=*/true);
  analysis::SliceConfig slice_config;
  slice_config.z_lo = 0.0;
  slice_config.z_hi = config_.box / 8.0;
  slice_config.resolution = 64;
  slice_config.box = config_.box;
  result.slice =
      analysis::density_temperature_slice(comm_, particles_, slice_config);
  return result;
}

void Simulation::recover(io::ThrottledStore& pfs, RunResult& result,
                         io::MultiTierWriter* writer) {
  if (config_.ckpt.audit_on_restore) {
    // Pre-restore audit: each rank owns its rank-local files, so every
    // rank audits (and repairs) only those — collectively this covers
    // the whole tree without cross-rank file races. Repairs come from
    // the writer's node-local tier when redundant copies were kept.
    io::CkptAuditOptions opts;
    opts.only_rank = comm_.rank();
    // Stride by the *current* rank count: after a shrink this rank will
    // restore every writer rank r with r % size == rank, so it must audit
    // (and repair) that whole adoption set, not just its own number.
    opts.rank_stride = comm_.size();
    opts.repair = writer != nullptr;
    std::vector<io::ThrottledStore*> sources;
    if (writer != nullptr) sources.push_back(&writer->local_tier());
    const io::CkptAuditReport audit = io::audit_checkpoints(pfs, opts, sources);
    ++result.ckpt_audit_runs;
    result.ckpt_audit_damaged_chunks += static_cast<std::uint64_t>(
        comm_.allreduce_scalar(static_cast<std::int64_t>(audit.chunks_damaged),
                               comm::ReduceOp::kSum));
    result.ckpt_audit_repaired_chunks += static_cast<std::uint64_t>(
        comm_.allreduce_scalar(static_cast<std::int64_t>(audit.chunks_repaired),
                               comm::ReduceOp::kSum));
    if (audit.chunks_damaged > 0) {
      HACC_LOG_WARN(
          "rank %d: pre-restore audit found %llu damaged chunk(s), "
          "repaired %llu",
          comm_.rank(), static_cast<unsigned long long>(audit.chunks_damaged),
          static_cast<unsigned long long>(audit.chunks_repaired));
    }
  }

  // Candidate steps are enumerated once on rank 0 and broadcast, so every
  // rank probes the same sequence and the restore decision stays
  // collective even when ranks disagree about which files are intact.
  std::vector<std::uint64_t> candidates;
  if (comm_.rank() == 0) candidates = io::checkpoint_steps(pfs);
  comm_.bcast(candidates, 0);

  for (std::uint64_t step : candidates) {
    ++result.recovery_attempts;
    // Each step directory records its own writer count; rank 0 reads it
    // and broadcasts so every rank applies the same adoption map. When it
    // differs from the current rank count (the step predates a shrink),
    // old rank file f is restored by current rank f % size, ascending —
    // the lost domains ride along and the first exchange re-bins them.
    std::vector<std::int64_t> writer_count(1, 0);
    if (comm_.rank() == 0) {
      writer_count[0] = io::checkpoint_writer_count(pfs, step);
    }
    comm_.bcast(writer_count, 0);
    const int m = static_cast<int>(writer_count[0]);
    const int n = comm_.size();

    Particles restored;
    io::SnapshotMeta meta;
    bool ok = m >= 1;
    bool restored_any = false;
    std::int64_t adopted = 0;
    for (int f = comm_.rank(); ok && f < m; f += n) {
      ok = io::restore_checkpoint(pfs, step, f, meta, restored) &&
           meta.step == step && meta.rank == f &&
           meta.num_ranks == static_cast<std::int32_t>(m);
      if (ok) {
        restored_any = true;
        if (f != comm_.rank()) ++adopted;
      }
    }
    // A checkpoint is only usable if EVERY rank validated its files.
    if (comm_.all_agree(ok)) {
      result.adopted_rank_files += static_cast<std::uint64_t>(
          comm_.allreduce_scalar(adopted, comm::ReduceOp::kSum));
      particles_ = std::move(restored);
      step_ = step;
      // Ranks with no file (m < n after a grow) rebuild the step's scale
      // factor from the schedule — bitwise equal to the stored value,
      // since the writer stamped a_at_step(step) at the step boundary.
      a_ = restored_any ? meta.scale_factor : a_at_step(step);
      if (m != n && comm_.rank() == 0) {
        HACC_LOG_WARN(
            "recovering step %llu written by %d rank(s) onto %d rank(s): "
            "adopting by round-robin remap",
            static_cast<unsigned long long>(step), m, n);
      }
      if (step != candidates.front()) {
        HACC_LOG_WARN(
            "rank %d: newest checkpoint corrupt; recovered from step %llu",
            comm_.rank(), static_cast<unsigned long long>(step));
      }
      return;
    }
    ++result.checkpoint_fallbacks;
  }
  ++result.restarts_from_ics;
  initialize();
}

RunResult Simulation::run(io::MultiTierWriter* writer, io::ThrottledStore* pfs,
                          const io::FaultInjector* fault) {
  RunResult result;
  run_slice(std::numeric_limits<std::uint64_t>::max(), result, writer, pfs,
            fault);
  finalize_run(result, writer);
  return result;
}

namespace {

/// Fold `incoming` phase stats into `stats` in a single pass: one index
/// map lookup per phase instead of a linear name scan (the scan made
/// long campaigns fold in O(phases^2) per step).
void fold_phase_stats(std::vector<PhaseStat>& stats,
                      const std::vector<PhaseStat>& incoming) {
  std::unordered_map<std::string, std::size_t> index;
  index.reserve(stats.size() + incoming.size());
  for (std::size_t i = 0; i < stats.size(); ++i) {
    index.emplace(stats[i].name, i);
  }
  for (const PhaseStat& phase : incoming) {
    const auto [it, inserted] = index.emplace(phase.name, stats.size());
    if (inserted) {
      stats.push_back(phase);
    } else {
      stats[it->second].mean_seconds += phase.mean_seconds;
      stats[it->second].max_seconds += phase.max_seconds;
    }
  }
}

}  // namespace

bool Simulation::run_slice(std::uint64_t max_steps, RunResult& result,
                           io::MultiTierWriter* writer, io::ThrottledStore* pfs,
                           const io::FaultInjector* fault) {
  std::uint64_t done_this_slice = 0;
  while (step_ < static_cast<std::uint64_t>(config_.num_pm_steps) &&
         done_this_slice < max_steps) {
    ++done_this_slice;
    const double dt_pm =
        kdk_.dt_of(a_at_step(step_), a_at_step(step_ + 1));
    if (fault && fault->should_fail(fault_trial_++, dt_pm)) {
      ++result.interruptions;
      CHECK_MSG(writer && pfs, "fault injected without checkpointing");
      // "Machine interruption": all ranks fall back to the newest fully
      // bled checkpoint that still validates (or regenerate ICs if none
      // survived).
      writer->drain();
      comm_.barrier();
      recover(*pfs, result, writer);
      comm_.barrier();
      continue;
    }

    const auto report = step(writer);
    result.sdc_audits += report.sdc.audits;
    result.sdc_detections += report.sdc.detections;
    result.sdc_rollbacks += report.sdc.rollbacks;
    result.sdc_replays += report.sdc.replays;
    result.sdc_injected_flips += report.sdc.injected_flips;
    if (report.sdc.escalated) {
      // Replay budget exhausted (or the snapshot itself was corrupt):
      // treat it like a machine interruption and fall back to the
      // newest committed checkpoint.
      ++result.sdc_escalations;
      CHECK_MSG(writer && pfs, "SDC escalation without checkpointing");
      writer->drain();
      comm_.barrier();
      recover(*pfs, result, writer);
      comm_.barrier();
      continue;
    }
    result.reports.push_back(report);
    fold_phase_stats(result.phase_stats, report.phases);
    result.lb_packets_migrated += report.lb_packets_migrated;
    if (report.lb_imbalance_before > 0.0) {
      ++result.lb_steps;
      result.lb_imbalance_before += report.lb_imbalance_before;
      result.lb_imbalance_after += report.lb_imbalance_after;
    }
    ++result.steps_done;
    if (config_.analysis_every > 0 &&
        (step_ % static_cast<std::uint64_t>(config_.analysis_every) == 0 ||
         step_ == static_cast<std::uint64_t>(config_.num_pm_steps))) {
      result.analyses.push_back(run_analysis());
    }
  }
  return step_ >= static_cast<std::uint64_t>(config_.num_pm_steps);
}

void Simulation::finalize_run(RunResult& result, io::MultiTierWriter* writer) {
  result.completed = step_ >= static_cast<std::uint64_t>(config_.num_pm_steps);
  if (writer) result.io = writer->stats();
  result.threading = util::stats_since(pool_.stats(), pool_baseline_);
  switch (config_.sph.launch.schedule) {
    case gpu::LaunchSchedule::kLeafOwner:
      result.launch_schedule = "leaf_owner";
      break;
    case gpu::LaunchSchedule::kDeferredStore:
      result.launch_schedule = "deferred_store";
      break;
    case gpu::LaunchSchedule::kSimd:
      result.launch_schedule = "simd";
      break;
  }
  result.simd_isa = gpu::simd_support().isa;
  if (config_.trace.enabled) {
    // Commit trailing analysis spans, then surface the local counters.
    trace_.flush(step_);
    result.trace_events = trace_.events_recorded();
    result.trace_dropped = trace_.events_dropped();
  }
}

void RunResult::merge(const RunResult& other) {
  steps_done += other.steps_done;
  interruptions += other.interruptions;
  recovery_attempts += other.recovery_attempts;
  checkpoint_fallbacks += other.checkpoint_fallbacks;
  restarts_from_ics += other.restarts_from_ics;
  rank_losses += other.rank_losses;
  shrink_recoveries += other.shrink_recoveries;
  adopted_rank_files += other.adopted_rank_files;
  ckpt_audit_runs += other.ckpt_audit_runs;
  ckpt_audit_damaged_chunks += other.ckpt_audit_damaged_chunks;
  ckpt_audit_repaired_chunks += other.ckpt_audit_repaired_chunks;
  io.local_retries += other.io.local_retries;
  io.pfs_retries += other.io.pfs_retries;
  io.verify_failures += other.io.verify_failures;
  io.bleed_failures += other.io.bleed_failures;
  io.degraded_to_direct = io.degraded_to_direct || other.io.degraded_to_direct;
  io.full_checkpoints += other.io.full_checkpoints;
  io.diff_checkpoints += other.io.diff_checkpoints;
  io.chunks_written += other.io.chunks_written;
  io.chunks_skipped += other.io.chunks_skipped;
  io.longest_chain = std::max(io.longest_chain, other.io.longest_chain);
  sdc_audits += other.sdc_audits;
  sdc_detections += other.sdc_detections;
  sdc_rollbacks += other.sdc_rollbacks;
  sdc_replays += other.sdc_replays;
  sdc_escalations += other.sdc_escalations;
  sdc_injected_flips += other.sdc_injected_flips;
  lb_packets_migrated += other.lb_packets_migrated;
  lb_steps += other.lb_steps;
  lb_imbalance_before += other.lb_imbalance_before;
  lb_imbalance_after += other.lb_imbalance_after;
  reports.insert(reports.end(), other.reports.begin(), other.reports.end());
  analyses.insert(analyses.end(), other.analyses.begin(),
                  other.analyses.end());
  fold_phase_stats(phase_stats, other.phase_stats);
  trace_events += other.trace_events;
  trace_dropped += other.trace_dropped;
  threading.threads = std::max(threading.threads, other.threading.threads);
  threading.parallel_regions += other.threading.parallel_regions;
  threading.chunks_executed += other.threading.chunks_executed;
  threading.steals += other.threading.steals;
  threading.wall_seconds += other.threading.wall_seconds;
  if (threading.busy_seconds.size() < other.threading.busy_seconds.size()) {
    threading.busy_seconds.resize(other.threading.busy_seconds.size(), 0.0);
  }
  for (std::size_t i = 0; i < other.threading.busy_seconds.size(); ++i) {
    threading.busy_seconds[i] += other.threading.busy_seconds[i];
  }
  if (!other.launch_schedule.empty()) launch_schedule = other.launch_schedule;
  if (!other.simd_isa.empty()) simd_isa = other.simd_isa;
  // `completed` deliberately untouched — see the header's policy table.
}

MetricsRegistry Simulation::collect_metrics() const {
  MetricsRegistry m;
  m.ingest_timers(timers_);
  m.ingest_flops(flops_);
  if (config_.trace.enabled) m.ingest_trace(trace_);
  const util::ThreadPoolStats pool = pool_.stats();
  m.add("pool/parallel_regions", static_cast<double>(pool.parallel_regions));
  m.add("pool/chunks_executed", static_cast<double>(pool.chunks_executed));
  m.add("pool/steals", static_cast<double>(pool.steals));
  m.add("pool/wall_seconds", pool.wall_seconds);
  m.observe("pool/utilization", pool.utilization());
  m.observe("particles/local", static_cast<double>(particles_.size()));
  m.observe("flops/sustained_gflops", flops_.sustained_gflops());
  m.add("lb/decisions", static_cast<double>(lb_.decisions()));
  m.add("lb/migration_steps", static_cast<double>(lb_.migration_steps()));
  m.add("lb/packets_sent", static_cast<double>(lb_.packets_sent()));
  m.add("lb/packets_served", static_cast<double>(lb_.packets_served()));
  return m;
}

}  // namespace crkhacc::core
