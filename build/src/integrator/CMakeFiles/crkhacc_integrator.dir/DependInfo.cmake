
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/integrator/kdk.cpp" "src/integrator/CMakeFiles/crkhacc_integrator.dir/kdk.cpp.o" "gcc" "src/integrator/CMakeFiles/crkhacc_integrator.dir/kdk.cpp.o.d"
  "/root/repo/src/integrator/timestep.cpp" "src/integrator/CMakeFiles/crkhacc_integrator.dir/timestep.cpp.o" "gcc" "src/integrator/CMakeFiles/crkhacc_integrator.dir/timestep.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/crkhacc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/crkhacc_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/crkhacc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/crkhacc_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
