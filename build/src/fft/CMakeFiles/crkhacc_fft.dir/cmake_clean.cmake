file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_fft.dir/distributed_fft.cpp.o"
  "CMakeFiles/crkhacc_fft.dir/distributed_fft.cpp.o.d"
  "CMakeFiles/crkhacc_fft.dir/fft.cpp.o"
  "CMakeFiles/crkhacc_fft.dir/fft.cpp.o.d"
  "libcrkhacc_fft.a"
  "libcrkhacc_fft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_fft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
