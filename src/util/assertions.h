// Assertion macros for invariant checking.
//
// CHECK(cond) is always on (release included): invariants that guard
// memory safety or data integrity. HACC_ASSERT(cond) compiles out in
// NDEBUG builds: hot-path sanity checks.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace crkhacc {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace crkhacc

#define CHECK(cond)                                        \
  do {                                                     \
    if (!(cond)) ::crkhacc::check_failed(#cond, __FILE__, __LINE__); \
  } while (0)

#define CHECK_MSG(cond, msg)                                             \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "CHECK failed: %s (%s) at %s:%d\n", #cond,    \
                   msg, __FILE__, __LINE__);                             \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

#ifdef NDEBUG
#define HACC_ASSERT(cond) ((void)0)
#else
#define HACC_ASSERT(cond) CHECK(cond)
#endif
