#include "core/exchange.h"

#include <array>
#include <vector>

#include "util/assertions.h"
#include "util/trace.h"

namespace crkhacc::core {
namespace {

/// Intersection of two boxes (possibly empty).
comm::Box3 intersect(const comm::Box3& a, const comm::Box3& b) {
  comm::Box3 out;
  for (int d = 0; d < 3; ++d) {
    out.lo[d] = std::max(a.lo[d], b.lo[d]);
    out.hi[d] = std::min(a.hi[d], b.hi[d]);
  }
  return out;
}

bool is_empty(const comm::Box3& b) {
  for (int d = 0; d < 3; ++d) {
    if (b.hi[d] <= b.lo[d]) return true;
  }
  return false;
}

/// A precomputed ghost-send rule: owned particles inside `region` are
/// sent to `target` at position + offset.
struct GhostRegion {
  int target;
  comm::Box3 region;
  std::array<double, 3> offset;
};

std::vector<GhostRegion> build_ghost_regions(
    const comm::CartDecomposition& decomp, int rank, double overload) {
  const double box = decomp.box_size();
  const auto my_box = decomp.local_box(rank);

  std::vector<int> targets = decomp.neighbors_of(rank);
  targets.push_back(rank);  // periodic self-images at small rank counts

  std::vector<GhostRegion> regions;
  for (int target : targets) {
    const auto obox = decomp.overloaded_box(target, overload);
    for (int ox = -1; ox <= 1; ++ox) {
      for (int oy = -1; oy <= 1; ++oy) {
        for (int oz = -1; oz <= 1; ++oz) {
          if (target == rank && ox == 0 && oy == 0 && oz == 0) continue;
          const std::array<double, 3> offset{ox * box, oy * box, oz * box};
          // Image p + offset lands in obox  <=>  p in obox - offset.
          comm::Box3 shifted = obox;
          for (int d = 0; d < 3; ++d) {
            shifted.lo[d] -= offset[d];
            shifted.hi[d] -= offset[d];
          }
          const auto region = intersect(shifted, my_box);
          if (!is_empty(region)) {
            regions.push_back(GhostRegion{target, region, offset});
          }
        }
      }
    }
  }
  return regions;
}

}  // namespace

ExchangeStats exchange_and_overload(comm::Communicator& comm,
                                    const comm::CartDecomposition& decomp,
                                    Particles& particles, double overload) {
  HACC_TRACE_SPAN("exchange");
  ExchangeStats stats;
  const int rank = comm.rank();
  const int p = comm.size();
  // A decomposition built for a different machine size silently routes
  // particles to ranks that no longer exist (or never receives from ones
  // that do) — the classic stale-state footgun after a shrink relaunch.
  CHECK_MSG(decomp.num_ranks() == p,
            "exchange: decomposition rank count does not match the "
            "communicator — rebuild CartDecomposition after a resize");

  // 1. Drop stale ghosts.
  {
    std::vector<bool> keep(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      keep[i] = particles.is_owned(i);
    }
    particles.compact(keep);
  }

  // 2. Migrate owned particles to their new home ranks.
  {
    std::vector<std::vector<Particles::Record>> sends(static_cast<std::size_t>(p));
    std::vector<bool> keep(particles.size(), true);
    for (std::size_t i = 0; i < particles.size(); ++i) {
      const int owner = decomp.owner_of(
          {particles.x[i], particles.y[i], particles.z[i]});
      if (owner != rank) {
        sends[static_cast<std::size_t>(owner)].push_back(particles.record(i));
        keep[i] = false;
        ++stats.migrated;
      }
    }
    particles.compact(keep);
    auto recvs = comm.alltoallv(sends);
    for (const auto& batch : recvs) {
      for (const auto& record : batch) {
        particles.append_record(record);
      }
    }
  }
  stats.owned = static_cast<std::int64_t>(particles.size());

  // 3. Re-overload: replicate boundary particles (with image offsets)
  //    into every overlapping overloaded box.
  {
    const auto regions = build_ghost_regions(decomp, rank, overload);
    std::vector<std::vector<Particles::Record>> sends(static_cast<std::size_t>(p));
    for (std::size_t i = 0; i < particles.size(); ++i) {
      const std::array<double, 3> pos{particles.x[i], particles.y[i],
                                      particles.z[i]};
      for (const auto& rule : regions) {
        if (!rule.region.contains(pos)) continue;
        auto record = particles.record(i);
        record.x = static_cast<float>(pos[0] + rule.offset[0]);
        record.y = static_cast<float>(pos[1] + rule.offset[1]);
        record.z = static_cast<float>(pos[2] + rule.offset[2]);
        sends[static_cast<std::size_t>(rule.target)].push_back(record);
      }
    }
    auto recvs = comm.alltoallv(sends);
    for (const auto& batch : recvs) {
      for (const auto& record : batch) {
        const std::size_t idx = particles.append_record(record);
        particles.ghost[idx] = 1;
        ++stats.ghosts;
      }
    }
  }
  return stats;
}

}  // namespace crkhacc::core
