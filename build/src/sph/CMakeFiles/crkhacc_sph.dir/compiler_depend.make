# Empty compiler generated dependencies file for crkhacc_sph.
# This may be replaced when dependencies are built.
