#include "gravity/short_range.h"

#include <algorithm>
#include <optional>

#include "cosmology/units.h"
#include "util/trace.h"

namespace crkhacc::gravity {

gpu::LaunchStats compute_short_range(
    Particles& particles, const tree::ChainingMesh& mesh,
    const mesh::ForceSplit* split, const GravityConfig& config, double a,
    const std::uint8_t* active, gpu::FlopRegistry& flops,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>* pairs,
    util::ThreadPool* pool) {
  // Without a split the kernel is pure Newtonian and every neighbor-bin
  // leaf pair interacts (1e15 >> any box, still finite when squared).
  const double cutoff = split ? split->cutoff() : 1e15;
  const float scale = static_cast<float>(units::kGravity / (a * a));
  ShortRangeKernel kernel(particles, active, split, scale, config.softening,
                          static_cast<float>(cutoff));
  std::vector<std::pair<std::uint32_t, std::uint32_t>> own_pairs;
  if (!pairs) {
    own_pairs = mesh.interaction_pairs(cutoff);
    pairs = &own_pairs;
  }
  // Build the plan unconditionally (the serial path reads its pair list
  // too) so plan construction is one traced structural point per call,
  // independent of thread count and LaunchSchedule.
  std::optional<gpu::LaunchPlan> plan;
  {
    HACC_TRACE_SPAN("launch_plan");
    plan.emplace(mesh, *pairs);
  }
  gpu::LaunchStats stats;
  {
    HACC_TRACE_SPAN(ShortRangeKernel::kName);
    stats = gpu::launch_pair_kernel(kernel, mesh, *plan, config.launch, pool);
  }
  flops.add(ShortRangeKernel::kName, stats.flops, stats.seconds);
  return stats;
}

gpu::LaunchStats compute_short_range_owner_tasks(
    Particles& particles, const tree::ChainingMesh& mesh,
    const gpu::LaunchPlan& plan, const mesh::ForceSplit* split,
    const GravityConfig& config, double a, const std::uint8_t* active,
    gpu::FlopRegistry& flops, const std::uint8_t* skip_task,
    util::ThreadPool* pool) {
  const double cutoff = split ? split->cutoff() : 1e15;
  const float scale = static_cast<float>(units::kGravity / (a * a));
  ShortRangeKernel kernel(particles, active, split, scale, config.softening,
                          static_cast<float>(cutoff));
  gpu::LaunchStats stats;
  {
    HACC_TRACE_SPAN(ShortRangeKernel::kName);
    stats = gpu::launch_owner_tasks(kernel, mesh, plan, config.launch,
                                    skip_task, pool);
  }
  flops.add(ShortRangeKernel::kName, stats.flops, stats.seconds);
  return stats;
}

comm::WorkReply execute_work_packet(const comm::WorkPacket& packet,
                                    const mesh::ForceSplit* split,
                                    const GravityConfig& config,
                                    gpu::FlopRegistry& flops,
                                    util::ThreadPool* pool) {
  // Scratch state: the shipped particles in slot order, accelerations
  // zeroed (= the donor's per-substep zeroed accumulators).
  Particles scratch;
  scratch.resize(packet.num_particles());
  std::copy(packet.x.begin(), packet.x.end(), scratch.x.begin());
  std::copy(packet.y.begin(), packet.y.end(), scratch.y.begin());
  std::copy(packet.z.begin(), packet.z.end(), scratch.z.begin());
  std::copy(packet.mass.begin(), packet.mass.end(), scratch.mass.begin());

  const tree::ChainingMesh mesh = tree::ChainingMesh::adopt(packet.leaf_begin);

  std::vector<gpu::LaunchPlan::Entry> entries(packet.entry_partner.size());
  for (std::size_t e = 0; e < entries.size(); ++e) {
    entries[e].partner = packet.entry_partner[e];
    entries[e].side =
        static_cast<gpu::LaunchPlan::Side>(packet.entry_side[e]);
  }
  const gpu::LaunchPlan plan = gpu::LaunchPlan::from_owner_tasks(
      packet.task_owner, packet.task_entry_begin, std::move(entries));

  const double cutoff = split ? split->cutoff() : 1e15;
  const float scale =
      static_cast<float>(units::kGravity / (packet.a_mid * packet.a_mid));
  // Every slot is stored (active = nullptr): the donor applies its own
  // activity mask when it copies the reply back.
  ShortRangeKernel kernel(scratch, nullptr, split, scale, config.softening,
                          static_cast<float>(cutoff));
  gpu::LaunchStats stats;
  {
    HACC_TRACE_SPAN(ShortRangeKernel::kName);
    stats = gpu::launch_owner_tasks(kernel, mesh, plan, config.launch,
                                    nullptr, pool);
  }
  flops.add(ShortRangeKernel::kName, stats.flops, stats.seconds);

  comm::WorkReply reply;
  reply.substep = packet.substep;
  std::size_t slots = 0;
  for (const std::uint32_t l : packet.task_owner) {
    slots += packet.leaf_begin[l + 1] - packet.leaf_begin[l];
  }
  reply.ax.reserve(slots);
  reply.ay.reserve(slots);
  reply.az.reserve(slots);
  for (const std::uint32_t l : packet.task_owner) {
    for (std::uint32_t s = packet.leaf_begin[l]; s < packet.leaf_begin[l + 1];
         ++s) {
      reply.ax.push_back(scratch.ax[s]);
      reply.ay.push_back(scratch.ay[s]);
      reply.az.push_back(scratch.az[s]);
    }
  }
  return reply;
}

void direct_sum_reference(Particles& particles, const mesh::ForceSplit* split,
                          float softening, double accel_scale) {
  const std::size_t n = particles.size();
  const float soft2 = softening * softening;
  for (std::size_t i = 0; i < n; ++i) {
    double ax = 0.0, ay = 0.0, az = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double dx = static_cast<double>(particles.x[i]) - particles.x[j];
      const double dy = static_cast<double>(particles.y[i]) - particles.y[j];
      const double dz = static_cast<double>(particles.z[i]) - particles.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      if (r2 <= 0.0) continue;
      const double r = std::sqrt(r2);
      const double soft_r2 = r2 + soft2;
      const double inv_r3 = 1.0 / (soft_r2 * std::sqrt(soft_r2));
      const double fs = split ? split->short_range_factor(r) : 1.0;
      const double f = -particles.mass[j] * fs * inv_r3;
      ax += f * dx;
      ay += f * dy;
      az += f * dz;
    }
    particles.ax[i] += static_cast<float>(accel_scale * ax);
    particles.ay[i] += static_cast<float>(accel_scale * ay);
    particles.az[i] += static_cast<float>(accel_scale * az);
  }
}

}  // namespace crkhacc::gravity
