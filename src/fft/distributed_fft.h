// Distributed 3-D FFT (SWFFT analog).
//
// The paper's long-range solver performs distributed FFTs on a global
// 12,600^3 mesh (two trillion cells) via HACC's SWFFT, which repartitions
// between the 3-D block layout used by the particle solver and the
// slab/pencil layouts FFTs need. This class implements the same pattern
// in miniature over the in-process communicator:
//
//   real space:  z-slabs,  local array (z_local, y, x), x fastest
//   k space:     x-slabs,  local array (x_local, y, z), z fastest
//
// forward() = per-plane 2-D FFTs + global alltoallv transpose + 1-D z FFTs.
// All math is FP64, matching the paper's precision split (spectral solver
// in double, short-range solver in single).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "comm/world.h"
#include "fft/fft.h"

namespace crkhacc::fft {

/// Signed integer frequency of DFT bin i for length n: 0..n/2, then negative.
inline long freq_of(std::size_t i, std::size_t n) {
  return (i <= n / 2) ? static_cast<long>(i)
                      : static_cast<long>(i) - static_cast<long>(n);
}

/// 1-D slab partition of n items over p ranks (balanced, contiguous).
struct SlabPartition {
  SlabPartition(std::size_t n, int p) : n_(n), p_(p) {}
  std::size_t start(int rank) const {
    return n_ * static_cast<std::size_t>(rank) / static_cast<std::size_t>(p_);
  }
  std::size_t count(int rank) const { return start(rank + 1) - start(rank); }
  /// Rank owning global index i.
  int owner(std::size_t i) const {
    // Inverse of start(): search is fine at our rank counts.
    for (int r = 0; r < p_; ++r) {
      if (i >= start(r) && i < start(r + 1)) return r;
    }
    return p_ - 1;
  }

 private:
  std::size_t n_;
  int p_;
};

class DistributedFFT {
 public:
  /// Cubic n^3 grid distributed over all ranks of `comm`.
  DistributedFFT(comm::Communicator& comm, std::size_t n);

  std::size_t n() const { return n_; }

  // Real-space slab (z-slabs): index (z_local, y, x), x fastest.
  std::size_t local_z_start() const { return z_part_.start(comm_.rank()); }
  std::size_t local_z_count() const { return z_part_.count(comm_.rank()); }
  std::vector<Complex>& real_data() { return real_; }
  const std::vector<Complex>& real_data() const { return real_; }
  std::size_t real_index(std::size_t z_local, std::size_t y, std::size_t x) const {
    return (z_local * n_ + y) * n_ + x;
  }

  // k-space slab (x-slabs): index (x_local, y, z), z fastest.
  std::size_t local_kx_start() const { return x_part_.start(comm_.rank()); }
  std::size_t local_kx_count() const { return x_part_.count(comm_.rank()); }
  std::vector<Complex>& k_data() { return k_; }
  const std::vector<Complex>& k_data() const { return k_; }
  std::size_t k_index(std::size_t x_local, std::size_t y, std::size_t z) const {
    return (x_local * n_ + y) * n_ + z;
  }

  /// real_data -> k_data. Contents of real_data are consumed.
  void forward();

  /// k_data -> real_data (includes the 1/n^3 normalization). Contents of
  /// k_data are consumed.
  void backward();

  const SlabPartition& z_partition() const { return z_part_; }
  const SlabPartition& x_partition() const { return x_part_; }

 private:
  /// Repartition between z-slab (real layout) and x-slab (k layout).
  void transpose_z_to_x();
  void transpose_x_to_z();

  comm::Communicator& comm_;
  std::size_t n_;
  SlabPartition z_part_;
  SlabPartition x_part_;
  std::vector<Complex> real_;
  std::vector<Complex> k_;
};

}  // namespace crkhacc::fft
