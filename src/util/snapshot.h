// Paged, CRC32-verified, double-buffered in-memory snapshots.
//
// The SDC guardrail layer (core/sdc.h) snapshots rank-local particle
// state at every PM-step boundary so a failed post-step audit can roll
// the step back and replay it. This is the storage primitive: a set of
// byte regions copied into one contiguous buffer, checksummed per page
// (CRC32, util/crc32) so corruption of the *snapshot itself* — the same
// silent bit flips the snapshot exists to defend against — is detected
// before a restore can spread it back into live state.
//
// Captures are double-buffered: a new capture fills the inactive buffer
// and only then becomes the active one, so the previous snapshot stays
// intact until its replacement is complete. Buffers are reused across
// captures (no steady-state allocation once sizes stabilize).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace crkhacc::util {

class PagedSnapshot {
 public:
  /// A source byte region to capture (one SoA field, typically).
  struct Region {
    const void* data = nullptr;
    std::size_t bytes = 0;
  };
  /// A destination byte region for restore; sizes must match the capture.
  struct MutableRegion {
    void* data = nullptr;
    std::size_t bytes = 0;
  };

  static constexpr std::size_t kDefaultPageBytes = 64 * 1024;

  explicit PagedSnapshot(std::size_t page_bytes = kDefaultPageBytes);

  /// Copy `regions` into the inactive buffer, stamp per-page CRCs, and
  /// make it the active capture. The previously active capture remains
  /// valid until this returns.
  void capture(std::span<const Region> regions);

  /// True once capture() has completed at least once.
  bool valid() const { return active_ >= 0; }

  /// Recompute every page CRC of the active capture and compare against
  /// the values stamped at capture time. False = the snapshot buffer
  /// itself was corrupted.
  bool verify() const;

  /// Verify, then copy the active capture back out into `regions`.
  /// Region count and sizes must match the capture exactly (CHECK —
  /// a mismatch is a caller bug, not data corruption). Returns false
  /// without writing anything if verification fails.
  bool restore(std::span<const MutableRegion> regions) const;

  std::size_t page_bytes() const { return page_bytes_; }
  /// Payload bytes / page count / region count of the active capture.
  std::size_t bytes() const;
  std::size_t pages() const;
  std::size_t num_regions() const;
  std::size_t region_bytes(std::size_t r) const;

  /// Test hook: direct mutable access to the active capture's payload,
  /// for injecting snapshot-buffer corruption in tests.
  std::uint8_t* mutable_payload_for_test();

 private:
  struct Buffer {
    std::vector<std::uint8_t> data;
    std::vector<std::uint32_t> page_crc;
    std::vector<std::size_t> region_bytes;
  };

  bool verify_buffer(const Buffer& buffer) const;

  std::size_t page_bytes_;
  Buffer buffers_[2];
  int active_ = -1;  ///< index of the valid capture; -1 = none yet
};

}  // namespace crkhacc::util
