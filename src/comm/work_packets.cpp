#include "comm/work_packets.h"

#include <cstring>

#include "util/assertions.h"

namespace crkhacc::comm {
namespace {

// Flat little-endian-native layout: a fixed header of counts followed by
// the raw arrays. Packets never cross machines in the in-process world,
// so host byte order is the wire order.

template <typename T>
void append(std::vector<std::uint8_t>& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
void append_array(std::vector<std::uint8_t>& out, const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  append(out, static_cast<std::uint64_t>(v.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
  out.insert(out.end(), p, p + v.size() * sizeof(T));
}

template <typename T>
T read(const std::vector<std::uint8_t>& bytes, std::size_t& cursor) {
  static_assert(std::is_trivially_copyable_v<T>);
  CHECK_MSG(cursor + sizeof(T) <= bytes.size(), "work packet truncated");
  T value;
  std::memcpy(&value, bytes.data() + cursor, sizeof(T));
  cursor += sizeof(T);
  return value;
}

template <typename T>
std::vector<T> read_array(const std::vector<std::uint8_t>& bytes,
                          std::size_t& cursor) {
  const auto n = read<std::uint64_t>(bytes, cursor);
  CHECK_MSG(cursor + n * sizeof(T) <= bytes.size(),
            "work packet array truncated");
  std::vector<T> v(n);
  std::memcpy(v.data(), bytes.data() + cursor, n * sizeof(T));
  cursor += n * sizeof(T);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_work_packet(const WorkPacket& packet) {
  std::vector<std::uint8_t> out;
  append(out, packet.donor);
  append(out, packet.substep);
  append(out, packet.a_mid);
  append_array(out, packet.leaf_begin);
  append_array(out, packet.x);
  append_array(out, packet.y);
  append_array(out, packet.z);
  append_array(out, packet.mass);
  append_array(out, packet.task_owner);
  append_array(out, packet.task_entry_begin);
  append_array(out, packet.entry_partner);
  append_array(out, packet.entry_side);
  return out;
}

WorkPacket decode_work_packet(const std::vector<std::uint8_t>& bytes) {
  WorkPacket packet;
  std::size_t cursor = 0;
  packet.donor = read<std::uint32_t>(bytes, cursor);
  packet.substep = read<std::uint32_t>(bytes, cursor);
  packet.a_mid = read<double>(bytes, cursor);
  packet.leaf_begin = read_array<std::uint32_t>(bytes, cursor);
  packet.x = read_array<float>(bytes, cursor);
  packet.y = read_array<float>(bytes, cursor);
  packet.z = read_array<float>(bytes, cursor);
  packet.mass = read_array<float>(bytes, cursor);
  packet.task_owner = read_array<std::uint32_t>(bytes, cursor);
  packet.task_entry_begin = read_array<std::uint32_t>(bytes, cursor);
  packet.entry_partner = read_array<std::uint32_t>(bytes, cursor);
  packet.entry_side = read_array<WorkEntrySide>(bytes, cursor);
  CHECK_MSG(cursor == bytes.size(), "work packet has trailing bytes");
  CHECK_MSG(packet.x.size() == packet.y.size() &&
                packet.x.size() == packet.z.size() &&
                packet.x.size() == packet.mass.size(),
            "work packet particle arrays disagree");
  return packet;
}

std::vector<std::uint8_t> encode_work_reply(const WorkReply& reply) {
  std::vector<std::uint8_t> out;
  append(out, reply.substep);
  append_array(out, reply.ax);
  append_array(out, reply.ay);
  append_array(out, reply.az);
  return out;
}

WorkReply decode_work_reply(const std::vector<std::uint8_t>& bytes) {
  WorkReply reply;
  std::size_t cursor = 0;
  reply.substep = read<std::uint32_t>(bytes, cursor);
  reply.ax = read_array<float>(bytes, cursor);
  reply.ay = read_array<float>(bytes, cursor);
  reply.az = read_array<float>(bytes, cursor);
  CHECK_MSG(cursor == bytes.size(), "work reply has trailing bytes");
  CHECK_MSG(reply.ax.size() == reply.ay.size() &&
                reply.ax.size() == reply.az.size(),
            "work reply acceleration arrays disagree");
  return reply;
}

void send_work_packet(Communicator& comm, int helper,
                      const WorkPacket& packet) {
  const auto bytes = encode_work_packet(packet);
  comm.send_bytes(helper, kTagLbWork, bytes.data(), bytes.size());
}

WorkPacket recv_work_packet(Communicator& comm, int donor) {
  return decode_work_packet(comm.recv_bytes(donor, kTagLbWork));
}

void send_work_reply(Communicator& comm, int donor, const WorkReply& reply) {
  const auto bytes = encode_work_reply(reply);
  comm.send_bytes(donor, kTagLbReply, bytes.data(), bytes.size());
}

WorkReply recv_work_reply(Communicator& comm, int helper) {
  return decode_work_reply(comm.recv_bytes(helper, kTagLbReply));
}

}  // namespace crkhacc::comm
