# Empty compiler generated dependencies file for sod_shocktube.
# This may be replaced when dependencies are built.
