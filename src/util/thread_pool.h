// Deterministic node-level parallelism: a work-stealing thread pool.
//
// The paper's claim (Section IV) is that once the overloaded decomposition
// is in place, all short-range work — tree builds, leaf–leaf gravity and
// CRKSPH kernels, PM deposit/interpolate — is node-local and
// embarrassingly parallel. This pool supplies the intra-node workers that
// exploit that property WITHOUT giving up bit-reproducibility:
//
//  * Work is split into FIXED chunks whose decomposition depends only on
//    the problem size and grain, never on the thread count. Chunks are
//    claimed dynamically (contiguous per-worker ranges; idle workers steal
//    half a victim's remaining range from the back), so clustering-driven
//    imbalance is absorbed at runtime.
//  * Any result that is sensitive to floating-point evaluation order must
//    be produced per chunk and combined on the calling thread in chunk
//    order (parallel_for with per-chunk buffers, or reduce(), which
//    combines chunk results in a fixed binary tree). A run with N threads
//    is then bitwise identical to a run with 1 thread — the scheduler
//    only decides WHO computes a chunk, never WHAT is computed or in what
//    order results are merged.
//
// Nested parallel_for/reduce calls from inside a worker execute inline on
// that worker (same chunk decomposition, serial claim order), so helpers
// that accept a pool can be composed freely without deadlock. Exceptions
// thrown by chunk bodies cancel the remaining chunks and are rethrown on
// the calling thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace crkhacc::util {

/// Scheduler accounting, surfaced in RunResult / bench output.
struct ThreadPoolStats {
  unsigned threads = 1;
  std::uint64_t parallel_regions = 0;  ///< parallel_for / reduce calls
  std::uint64_t chunks_executed = 0;
  std::uint64_t steals = 0;            ///< half-range steals performed
  double wall_seconds = 0.0;           ///< summed region wall time
  std::vector<double> busy_seconds;    ///< per worker (0 = calling thread)

  /// Mean fraction of region wall time the workers spent executing chunks
  /// (1.0 = perfectly balanced, no idle lanes).
  double utilization() const {
    if (wall_seconds <= 0.0 || busy_seconds.empty()) return 0.0;
    double busy = 0.0;
    for (double s : busy_seconds) busy += s;
    return busy / (wall_seconds * static_cast<double>(busy_seconds.size()));
  }

  /// Longest per-worker busy time — the decomposition's critical path.
  double critical_path_seconds() const {
    double longest = 0.0;
    for (double s : busy_seconds) longest = std::max(longest, s);
    return longest;
  }
};

/// Accounting delta between two snapshots of the SAME pool (`base` taken
/// earlier than `now`). A pool shared across simulations accumulates
/// stats for its whole lifetime; each run reports stats() minus the
/// snapshot it took at construction, so per-run numbers stay comparable
/// to the private-pool era.
inline ThreadPoolStats stats_since(const ThreadPoolStats& now,
                                   const ThreadPoolStats& base) {
  ThreadPoolStats d;
  d.threads = now.threads;
  d.parallel_regions = now.parallel_regions - base.parallel_regions;
  d.chunks_executed = now.chunks_executed - base.chunks_executed;
  d.steals = now.steals - base.steals;
  d.wall_seconds = now.wall_seconds - base.wall_seconds;
  d.busy_seconds.resize(now.busy_seconds.size(), 0.0);
  for (std::size_t i = 0; i < now.busy_seconds.size(); ++i) {
    const double before =
        i < base.busy_seconds.size() ? base.busy_seconds[i] : 0.0;
    d.busy_seconds[i] = now.busy_seconds[i] - before;
  }
  return d;
}

class ThreadPool {
 public:
  /// `threads` = 0 selects std::thread::hardware_concurrency(). The pool
  /// spawns threads-1 workers; the calling thread always participates as
  /// worker 0, so threads = 1 runs everything inline with zero overhead.
  explicit ThreadPool(unsigned threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned num_threads() const { return threads_; }

  /// Execute fn(chunk_begin, chunk_end, chunk_index) over [begin, end)
  /// split into ceil((end-begin)/grain) chunks of at most `grain`
  /// elements. The chunk decomposition is a pure function of (begin, end,
  /// grain): chunk c covers [begin + c*grain, min(begin + (c+1)*grain,
  /// end)). Chunks run concurrently; bodies must only write
  /// chunk-disjoint state (or chunk-private buffers the caller merges in
  /// chunk order afterwards).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Fn&& fn) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const std::size_t nchunks = (n + grain - 1) / grain;
    run_region(nchunks, [&](std::size_t c, unsigned /*worker*/) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(lo + grain, end);
      fn(lo, hi, c);
    });
  }

  /// Deterministic reduction: map(chunk_begin, chunk_end) -> T per chunk,
  /// then combine(acc, chunk_result) over a FIXED binary tree of chunk
  /// indices (pairwise, bottom-up). The combine order depends only on the
  /// chunk count, never on the thread count or completion order, so
  /// floating-point reductions are bitwise reproducible.
  template <typename T, typename Map, typename Combine>
  T reduce(std::size_t begin, std::size_t end, std::size_t grain, T identity,
           Map&& map, Combine&& combine) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return identity;
    if (grain == 0) grain = 1;
    const std::size_t nchunks = (n + grain - 1) / grain;
    std::vector<T> partial(nchunks, identity);
    run_region(nchunks, [&](std::size_t c, unsigned /*worker*/) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(lo + grain, end);
      partial[c] = map(lo, hi);
    });
    // Fixed pairwise tree: level by level, combine partial[i] with
    // partial[i + stride]. Identical for every thread count.
    for (std::size_t stride = 1; stride < nchunks; stride *= 2) {
      for (std::size_t i = 0; i + stride < nchunks; i += 2 * stride) {
        partial[i] = combine(partial[i], partial[i + stride]);
      }
    }
    return partial[0];
  }

  const ThreadPoolStats& stats() const { return stats_; }
  void reset_stats();

 private:
  /// Per-worker contiguous range of unclaimed chunk indices. The owner
  /// pops from the front, thieves take half from the back; both under the
  /// range's lock (chunks are coarse, contention is negligible).
  struct WorkRange {
    std::mutex m;
    std::size_t next = 0;
    std::size_t end = 0;
  };

  void run_region(std::size_t nchunks,
                  const std::function<void(std::size_t, unsigned)>& body);
  void worker_loop(unsigned id);
  void claim_and_run(unsigned id);

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;
  std::vector<std::unique_ptr<WorkRange>> ranges_;

  // Region state (valid while a region is active).
  const std::function<void(std::size_t, unsigned)>* body_ = nullptr;
  std::atomic<bool> cancelled_{false};
  std::exception_ptr first_error_;
  std::mutex error_mutex_;
  std::vector<double> region_busy_;
  std::atomic<std::uint64_t> region_steals_{0};

  // Worker parking / region handoff.
  std::mutex gate_mutex_;
  std::condition_variable gate_cv_;
  std::condition_variable done_cv_;
  std::uint64_t epoch_ = 0;
  unsigned workers_active_ = 0;
  bool shutdown_ = false;

  ThreadPoolStats stats_;
  static thread_local bool in_worker_;
};

}  // namespace crkhacc::util
