// Figure 1: the simulation landscape.
//
// Reproduces the paper's comparison of large-volume simulations: box size
// vs resolution elements (dark matter-baryon particle pairs for hydro
// runs, single-species particles for gravity-only runs), the Frontier-E
// point breaking the trillion-element barrier, and the dotted
// equal-mass-resolution line M_res(Frontier-E) as a function of volume.
//
// Published points are taken from the paper's text and references; the
// bench recomputes the derived columns (resolution elements, particle
// mass) and renders the figure as a log-log ASCII scatter.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common.h"
#include "cosmology/background.h"
#include "cosmology/units.h"

using namespace crkhacc;

namespace {

struct SimEntry {
  const char* name;
  double box_gpc;      ///< comoving box side [Gpc/h or Gpc as published]
  double elements;     ///< resolution elements (pairs for hydro)
  bool hydro;
  bool gpu;
};

}  // namespace

int main() {
  bench::print_header(
      "Fig. 1 — Large-volume simulation landscape (resolution elements vs "
      "box size)");

  // Published landscape (paper Fig. 1 and Section III).
  const std::vector<SimEntry> sims = {
      // Gravity-only campaigns.
      {"Euclid Flagship (PKDGRAV3)", 3.78, 2.0e12, false, true},
      {"Last Journey (HACC)", 3.4, 1.24e12, false, false},
      {"Uchuu (GreeM)", 2.0, 2.1e12, false, false},
      {"Outer Rim (HACC)", 3.0, 1.07e12, false, false},
      // Hydrodynamic simulations (elements = dm+baryon pairs).
      {"FLAMINGO-10", 2.8, 1.26e11, true, false},
      {"MillenniumTNG", 0.74, 8.7e10, true, false},
      {"Magneticum Box0", 2.688, 2.2e10, true, false},
      // This paper.
      {"Frontier-E (CRK-HACC)", 4.7 / 0.6766 / 1000.0 * 1000.0, 2.0e12, true,
       true},
  };
  // Frontier-E: 4.7 Gpc box, 2 x 12,600^3 particles = 2e12 pairs.
  const double frontier_box_gpc = 4.7;
  const double frontier_elements = std::pow(12600.0, 3.0);

  std::printf("%-28s %-10s %-16s %-8s %-6s %-14s\n", "simulation", "box[Gpc]",
              "res. elements", "hydro", "GPU", "m_pair[Msun/h]");
  bench::print_rule();
  const cosmo::Parameters params;
  for (const auto& sim : sims) {
    const bool is_frontier = std::string(sim.name).find("Frontier") == 0;
    const double box = is_frontier ? frontier_box_gpc : sim.box_gpc;
    const double elements = is_frontier ? frontier_elements : sim.elements;
    // Pair mass = Omega_m rho_crit V / N_pairs (code units -> Msun/h).
    const double volume =
        std::pow(box * 1000.0, 3.0);  // (Mpc/h)^3, treating Gpc ~ Gpc/h
    const double mass_per_pair =
        params.omega_m * units::kRhoCrit0 * volume / elements * 1e10;
    std::printf("%-28s %-10.2f %-16.3e %-8s %-6s %-14.3e\n", sim.name, box,
                elements, sim.hydro ? "yes" : "no", sim.gpu ? "yes" : "no",
                mass_per_pair);
  }
  bench::print_rule();

  // Headline claims recomputed.
  const double largest_prev_hydro = 1.26e11;  // FLAMINGO-10
  std::printf("\nFrontier-E / largest previous hydro = %.1fx  (paper: \"more "
              "than 15-fold increase\")\n",
              frontier_elements / largest_prev_hydro);
  std::printf("total particles = 2 x 12,600^3 = %.2e  (paper: four "
              "trillion)\n",
              2.0 * frontier_elements);

  // Equal-mass-resolution line: N(V) to match Frontier-E's pair mass.
  const double frontier_volume = std::pow(frontier_box_gpc * 1000.0, 3.0);
  const double frontier_pair_mass =
      params.omega_m * units::kRhoCrit0 * frontier_volume / frontier_elements;
  std::printf("\nmass-resolution-matching line (dotted in Fig. 1):\n");
  for (double box_gpc : {0.5, 1.0, 2.0, 4.0, 4.7}) {
    const double volume = std::pow(box_gpc * 1000.0, 3.0);
    const double n_required =
        params.omega_m * units::kRhoCrit0 * volume / frontier_pair_mass;
    std::printf("  box %.1f Gpc -> %.2e elements\n", box_gpc, n_required);
  }

  // ASCII scatter: x = log box in [0.3, 6] Gpc, y = log elements [1e10, 4e12].
  std::printf("\nlog-log landscape (G = gravity-only, h = hydro, F = "
              "Frontier-E):\n");
  const int rows = 12, cols = 56;
  std::vector<std::string> canvas(rows, std::string(cols, ' '));
  auto plot = [&](double box, double elements, char mark) {
    const double fx =
        (std::log10(box) - std::log10(0.3)) / (std::log10(6.0) - std::log10(0.3));
    const double fy = (std::log10(elements) - 10.0) / (12.7 - 10.0);
    const int col = std::min(cols - 1, std::max(0, static_cast<int>(fx * cols)));
    const int row =
        std::min(rows - 1, std::max(0, rows - 1 - static_cast<int>(fy * rows)));
    canvas[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
  };
  for (const auto& sim : sims) {
    const bool is_frontier = std::string(sim.name).find("Frontier") == 0;
    plot(is_frontier ? frontier_box_gpc : sim.box_gpc,
         is_frontier ? frontier_elements : sim.elements,
         is_frontier ? 'F' : (sim.hydro ? 'h' : 'G'));
  }
  std::printf("  4e12 +%s+\n", std::string(cols, '-').c_str());
  for (const auto& line : canvas) {
    std::printf("       |%s|\n", line.c_str());
  }
  std::printf("  1e10 +%s+\n", std::string(cols, '-').c_str());
  std::printf("       0.3 Gpc %*s 6 Gpc\n", cols - 10, "");
  return 0;
}
