#include "core/campaign.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "comm/decomposition.h"
#include "util/log.h"

namespace crkhacc::core {

Campaign::Campaign(RankLossPolicy policy,
                   std::vector<io::ThrottledStore*> locals,
                   const comm::WatchdogConfig& watchdog)
    : policy_(policy), locals_(std::move(locals)), watchdog_(watchdog) {
  CHECK(!locals_.empty());
}

void Campaign::schedule_rank_failure(int rank, std::uint64_t op) {
  CHECK(rank >= 0 && rank < ranks());
  scheduled_failures_.emplace_back(rank, op);
}

void Campaign::run(const RankProgram& rank_program) {
  using Clock = std::chrono::steady_clock;
  CampaignEpoch epoch;
  epoch.resume = resume_first_epoch_;
  bool recovery_timing = false;
  Clock::time_point recovery_start{};
  double detection_s = 0.0;

  for (;;) {
    const int n = ranks();
    comm::World world(n, watchdog_);
    if (epoch.epoch == 0) {
      for (const auto& [rank, op] : scheduled_failures_) {
        world.schedule_rank_failure(rank, op);
      }
    }
    epoch.rank_losses = rank_losses_;
    epoch.shrink_recoveries = shrink_recoveries_;

    std::vector<comm::FailureRecord> lost;
    try {
      world.run([&](comm::Communicator& comm) {
        CampaignEpoch mine = epoch;
        mine.local = locals_[static_cast<std::size_t>(comm.rank())];
        rank_program(comm, mine);
      });
      // A death can go unobserved (no survivor ever blocked on the dead
      // rank); treat it as a loss all the same — the campaign must end
      // with every live rank having completed an epoch.
      lost = world.failures();
    } catch (const comm::RankLossError& loss) {
      if (policy_ != RankLossPolicy::kShrink) throw;
      lost = loss.lost();
    }

    if (lost.empty()) {
      if (recovery_timing) {
        recovery_seconds_ =
            detection_s +
            std::chrono::duration<double>(Clock::now() - recovery_start)
                .count();
      }
      return;
    }
    rank_losses_ += lost.size();
    if (policy_ != RankLossPolicy::kShrink ||
        static_cast<int>(lost.size()) >= n) {
      throw comm::RankLossError(
          "rank loss is unrecoverable: " +
              std::to_string(lost.size()) + " of " + std::to_string(n) +
              " rank(s) lost under policy " +
              (policy_ == RankLossPolicy::kShrink ? "shrink" : "fatal"),
          lost);
    }

    // Shrink: survivors renumber densely. Dead ranks' node-local stores
    // go with them — their redundant checkpoint copies die with the node,
    // which is why adoption replays the PFS chain instead.
    std::vector<int> dead;
    dead.reserve(lost.size());
    for (const auto& f : lost) dead.push_back(f.rank);
    std::sort(dead.rbegin(), dead.rend());
    dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
    for (const int r : dead) {
      locals_.erase(locals_.begin() + r);
    }
    ++shrink_recoveries_;
    recovery_timing = true;
    recovery_start = Clock::now();
    detection_s += world.last_loss_latency_seconds();

    const int survivors = ranks();
    const auto dims = comm::near_cubic_factorization(survivors);
    HACC_LOG_WARN(
        "shrink-and-continue: lost %d rank(s), relaunching epoch %llu on "
        "%d rank(s) (%dx%dx%d grid), resuming from the last "
        "collectively-committed checkpoint",
        static_cast<int>(dead.size()),
        static_cast<unsigned long long>(epoch.epoch + 1), survivors,
        dims[0], dims[1], dims[2]);
    ++epoch.epoch;
    epoch.resume = true;
  }
}

}  // namespace crkhacc::core
