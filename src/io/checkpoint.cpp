#include "io/checkpoint.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <filesystem>

#include "io/multi_tier.h"
#include "util/crc32.h"

namespace crkhacc::io {
namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kMarkerMagic = 0x434b4f4bu;  // "CKOK"
constexpr std::size_t kMarkerSize = 4 + 8 + 4 + 4;

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

}  // namespace

std::vector<std::uint8_t> encode_marker(const CheckpointMarker& marker) {
  std::vector<std::uint8_t> out;
  out.reserve(kMarkerSize);
  append_pod(out, kMarkerMagic);
  append_pod(out, marker.payload_bytes);
  append_pod(out, marker.payload_crc);
  append_pod(out, crc32(out.data(), out.size()));
  return out;
}

bool decode_marker(const std::vector<std::uint8_t>& bytes,
                   CheckpointMarker& out) {
  if (bytes.size() != kMarkerSize) return false;
  if (read_pod<std::uint32_t>(bytes.data()) != kMarkerMagic) return false;
  const std::uint32_t stored = read_pod<std::uint32_t>(bytes.data() + 16);
  if (crc32(bytes.data(), 16) != stored) return false;
  out.payload_bytes = read_pod<std::uint64_t>(bytes.data() + 4);
  out.payload_crc = read_pod<std::uint32_t>(bytes.data() + 12);
  return true;
}

std::vector<std::uint64_t> checkpoint_steps(ThrottledStore& pfs) {
  std::vector<std::uint64_t> steps;
  const auto ckpt_dir = fs::path(pfs.full_path("ckpt"));
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(ckpt_dir, ec)) {
    if (!entry.is_directory()) continue;
    const auto name = entry.path().filename().string();
    if (name.rfind("step", 0) != 0) continue;
    std::uint64_t step = 0;
    const char* begin = name.c_str() + 4;
    const char* end = name.c_str() + name.size();
    if (std::from_chars(begin, end, step).ec == std::errc{}) {
      steps.push_back(step);
    }
  }
  std::sort(steps.rbegin(), steps.rend());
  return steps;
}

bool verify_checkpoint_rank(ThrottledStore& pfs, std::uint64_t step,
                            int rank) {
  std::vector<std::uint8_t> marker_bytes;
  if (!pfs.read(MultiTierWriter::marker_path(step, rank), marker_bytes)) {
    return false;
  }
  CheckpointMarker marker;
  if (!decode_marker(marker_bytes, marker)) return false;
  std::vector<std::uint8_t> payload;
  if (!pfs.read(MultiTierWriter::checkpoint_path(step, rank), payload)) {
    return false;
  }
  return payload.size() == marker.payload_bytes &&
         crc32(payload.data(), payload.size()) == marker.payload_crc;
}

std::optional<std::uint64_t> latest_complete_checkpoint(ThrottledStore& pfs,
                                                        int num_ranks) {
  for (std::uint64_t step : checkpoint_steps(pfs)) {
    bool complete = true;
    for (int r = 0; r < num_ranks && complete; ++r) {
      complete = verify_checkpoint_rank(pfs, step, r);
    }
    if (complete) return step;
  }
  return std::nullopt;
}

bool restore_checkpoint(ThrottledStore& pfs, std::uint64_t step, int rank,
                        SnapshotMeta& meta, Particles& out) {
  std::vector<std::uint8_t> marker_bytes;
  if (!pfs.read(MultiTierWriter::marker_path(step, rank), marker_bytes)) {
    return false;
  }
  CheckpointMarker marker;
  if (!decode_marker(marker_bytes, marker)) return false;
  std::vector<std::uint8_t> bytes;
  if (!pfs.read(MultiTierWriter::checkpoint_path(step, rank), bytes)) {
    return false;
  }
  if (bytes.size() != marker.payload_bytes ||
      crc32(bytes.data(), bytes.size()) != marker.payload_crc) {
    return false;
  }
  return decode_snapshot(bytes, meta, out);
}

}  // namespace crkhacc::io
