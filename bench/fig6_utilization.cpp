// Figure 6: device utilization across vendors and across the machine.
//
// Left panel analog — "single node, three vendors": the solver runs with
// each vendor's warp width (AMD 64, Intel 32, Nvidia 32) on the identical
// workload; utilization = counted kernel FLOPs / elapsed / calibrated host
// peak. The paper's point is that utilization is consistent across
// vendors; here the warp width is the vendor-visible knob.
//
// Right panel analog — "full machine at high and low redshift": per-rank
// utilization distributions on an 8-rank run, early (homogeneous) vs late
// (clustered), plus the artificial "low-z Flat" configuration where all
// ranks are forced to the deepest synchronized timestep. The paper's
// conclusions to check: low-z utilization is no worse than high-z, the
// low-z distribution is broader, and Flat tightens it without changing
// the mean much (adaptive stepping costs nothing).
#include <cstdio>
#include <mutex>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"
#include "util/histogram.h"

using namespace crkhacc;

namespace {

/// Per-rank utilization samples for one configuration.
std::vector<double> run_distribution(int ranks, const core::SimConfig& config) {
  std::vector<double> utilization(static_cast<std::size_t>(ranks), 0.0);
  const double peak = gpu::host_peak_gflops();
  comm::World world(ranks);
  std::mutex mutex;
  world.run([&](comm::Communicator& comm) {
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.run();
    const double sustained = sim.flops().sustained_gflops();
    std::lock_guard<std::mutex> lock(mutex);
    utilization[static_cast<std::size_t>(comm.rank())] = sustained / peak;
  });
  return utilization;
}

void print_distribution(const char* label, const std::vector<double>& samples) {
  double lo = samples[0], hi = samples[0];
  for (double s : samples) {
    lo = std::min(lo, s);
    hi = std::max(hi, s);
  }
  const double pad = std::max(1e-4, 0.3 * (hi - lo));
  Histogram hist(lo - pad, hi + pad, 8);
  hist.add_all(samples);
  std::printf("\n%s: mean %.4f, spread (max-min) %.4f\n", label, hist.mean(),
              hist.max() - hist.min());
  std::printf("%s", hist.ascii(40).c_str());
}

}  // namespace

int main() {
  bench::print_header("Fig. 6 (left) — single-node utilization across vendors");
  const double peak = gpu::host_peak_gflops();
  std::printf("calibrated host peak: %.2f GFLOP/s\n\n", peak);
  std::printf("%-28s %-10s %-14s %-12s\n", "vendor device", "warp", "sustained",
              "utilization");
  bench::print_rule();
  for (const auto& device : gpu::known_devices()) {
    auto config = bench::scaled_config(1, 12, /*hydro=*/true);
    config.sph.launch.warp_size = static_cast<std::uint32_t>(device.warp_size);
    config.gravity.launch.warp_size =
        static_cast<std::uint32_t>(device.warp_size);
    double sustained = 0.0;
    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      core::SimContext ctx(config.threads);
      core::Simulation sim(ctx, comm, config);
      sim.initialize();
      sim.run();
      sustained = sim.flops().sustained_gflops();
    });
    std::printf("%-28s %-10d %-14.2f %-12.1f%%\n", device.name.c_str(),
                device.warp_size, sustained, 100.0 * sustained / peak);
  }
  std::printf("\npaper: sustained utilization consistent across Nvidia, AMD, "
              "Intel (26-34%% of peak FP32).\n");

  bench::print_header(
      "Fig. 6 (right) — per-rank utilization distribution, 8 ranks");
  const int ranks = 8;

  // High redshift: homogeneous workload.
  auto high_z = bench::scaled_config(ranks, 8, /*hydro=*/true);
  high_z.z_init = 30.0;
  high_z.z_final = 15.0;
  const auto high_samples = run_distribution(ranks, high_z);
  print_distribution("high-z", high_samples);

  // Low redshift: clustered workload (evolve further).
  auto low_z = bench::scaled_config(ranks, 8, /*hydro=*/true);
  low_z.z_init = 30.0;
  low_z.z_final = 1.0;
  low_z.num_pm_steps = 6;
  const auto low_samples = run_distribution(ranks, low_z);
  print_distribution("low-z (native adaptive)", low_samples);

  // Low-z Flat: all ranks synchronized to the deepest timestep.
  auto flat = low_z;
  flat.flat_stepping = true;
  const auto flat_samples = run_distribution(ranks, flat);
  print_distribution("low-z Flat (synchronized)", flat_samples);

  auto spread = [](const std::vector<double>& samples) {
    double lo = samples[0], hi = samples[0], sum = 0.0;
    for (double s : samples) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
      sum += s;
    }
    return std::make_pair(sum / static_cast<double>(samples.size()), hi - lo);
  };
  const auto [high_mean, high_spread] = spread(high_samples);
  const auto [low_mean, low_spread] = spread(low_samples);
  const auto [flat_mean, flat_spread] = spread(flat_samples);

  std::printf("\npaper claims, recomputed on the substitute machine:\n");
  std::printf("  low-z mean utilization >= high-z mean: %.3f vs %.3f (%s)\n",
              low_mean, high_mean, low_mean >= 0.9 * high_mean ? "ok" : "DIFFERS");
  std::printf("  adaptive stepping does not degrade low-z mean vs Flat: "
              "%.3f vs %.3f (%s)\n",
              low_mean, flat_mean,
              low_mean >= 0.8 * flat_mean ? "ok" : "DIFFERS");
  std::printf("  distribution width, Flat vs native: %.4f vs %.4f\n",
              flat_spread, low_spread);
  std::printf("  (the paper's Flat-narrowing is driven by rank-to-rank "
              "timestep-depth variance; on a single-core substitute all\n"
              "   ranks share the silicon, so both spreads sit at the "
              "measurement-noise floor — the meaningful check here is that\n"
              "   the means agree, i.e. adaptivity is free.)\n");
  return 0;
}
