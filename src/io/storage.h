// Bandwidth-modeled storage tiers.
//
// Substitutes for the hardware the paper's multi-tier I/O exploits:
//
//   * node-local NVMe — private per node, ~GB/s, negligible latency;
//   * Lustre PFS ("Orion") — shared by every rank, high latency, and a
//     single aggregate bandwidth that all concurrent writers divide.
//
// ThrottledStore enforces the model by real wall-clock pacing: a write of
// B bytes occupies the store's channel for latency + B/bandwidth seconds.
// Shared channels serialize concurrent reservations (the PFS contention
// the paper avoids during latency-sensitive phases); per-rank channels do
// not. Because pacing is real time, the multi-tier advantage shows up as
// genuinely measured bandwidth in the benches, not as a formula.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/rng.h"

namespace crkhacc::io {

struct StoreConfig {
  std::string root;                  ///< directory backing this tier
  double bandwidth_bytes_per_s = 0;  ///< 0 = unthrottled
  double latency_s = 0.0;            ///< per-operation setup cost
  bool shared_channel = true;        ///< all writers share the bandwidth
};

/// Injectable storage-fault model. Draws are counter-based (seeded, one
/// draw per write op) — the same determinism discipline as FaultInjector,
/// so a failing schedule replays bit-identically across reruns.
///
/// Torn writes and bit flips are *silent*: the write reports success but
/// the bytes on disk are wrong, which is what end-to-end CRC validation
/// exists to catch. EIO is transient (a later attempt redraws); ENOSPC is
/// sticky — the tier stays failed until reset_tier(), modeling a filled or
/// dead node-local device.
struct FaultPolicy {
  std::uint64_t seed = 0;
  double torn_write = 0.0;     ///< P(prefix-only write) per op
  double bit_flip = 0.0;       ///< P(one flipped bit) per op
  double transient_eio = 0.0;  ///< P(reported I/O error) per op
  double enospc = 0.0;         ///< P(tier fails permanently) per op

  bool any() const {
    return torn_write + bit_flip + transient_eio + enospc > 0.0;
  }
};

/// Outcome of a single write attempt.
enum class IoStatus {
  kOk = 0,
  kTransientError,  ///< EIO-style: retrying may succeed
  kNoSpace,         ///< ENOSPC-style: tier is failed until reset
};

struct WriteOutcome {
  IoStatus status = IoStatus::kOk;
  double seconds = 0.0;
};

/// Count of injected faults, for observability and tests. Silent faults
/// (torn/flip) are counted here but deliberately NOT reported through the
/// write API — detection is the integrity layer's job.
struct FaultStats {
  std::uint64_t torn_writes = 0;
  std::uint64_t bit_flips = 0;
  std::uint64_t eio_errors = 0;
  std::uint64_t enospc_errors = 0;
};

class ThrottledStore {
 public:
  explicit ThrottledStore(const StoreConfig& config);

  const StoreConfig& config() const { return config_; }

  /// Arm (or disarm, with a default-constructed policy) fault injection
  /// for subsequent writes. Not thread-safe against in-flight writes;
  /// call before handing the store to workers.
  void set_fault_policy(const FaultPolicy& policy);

  /// True once a sticky ENOSPC fault has tripped; every write fails with
  /// kNoSpace until reset_tier().
  bool tier_failed() const;
  void reset_tier();

  FaultStats fault_stats() const;

  /// Write data to root/rel_path (parent dirs created); returns elapsed
  /// wall-clock seconds including modeled channel time. Thread-safe.
  /// CHECK-fails on an injected error — callers that want to survive
  /// faults use try_write.
  double write(const std::string& rel_path,
               const std::vector<std::uint8_t>& data);

  /// Fault-aware write: reports injected EIO/ENOSPC instead of aborting.
  /// Silent corruption (torn write, bit flip) still returns kOk — only a
  /// read-back verify can catch it. Thread-safe.
  WriteOutcome try_write(const std::string& rel_path,
                         const std::vector<std::uint8_t>& data);

  /// Read an entire file; empty optional-style: returns false if absent
  /// or unreadable. Reads are paced at the same bandwidth.
  bool read(const std::string& rel_path, std::vector<std::uint8_t>& out);

  /// Move a fully-written file from another store into this one (the
  /// low-level "OS move" of the async bleed). Paced by this store's
  /// channel as a write of the file's size.
  double ingest(ThrottledStore& from, const std::string& rel_path);

  bool exists(const std::string& rel_path) const;
  void remove(const std::string& rel_path);
  std::vector<std::string> list(const std::string& rel_dir = "") const;

  std::uint64_t bytes_written() const { return bytes_written_; }

  std::string full_path(const std::string& rel_path) const;

 private:
  /// Reserve the channel for `bytes`. `already_spent` seconds of real
  /// filesystem work are credited against the modeled service time, so
  /// the model sets the tier's *total* speed rather than stacking on top
  /// of the host disk. Returns seconds of modeled service.
  double occupy_channel(std::uint64_t bytes, double already_spent = 0.0);

  /// What fault (if any) the policy injects for write op `op`.
  enum class Fault { kNone, kTorn, kBitFlip, kEio, kEnospc };
  Fault draw_fault(std::uint64_t op);

  StoreConfig config_;
  std::mutex channel_mutex_;
  double channel_available_at_ = 0.0;  ///< monotonic seconds
  std::uint64_t bytes_written_ = 0;
  std::mutex stats_mutex_;

  FaultPolicy fault_policy_;
  mutable std::mutex fault_mutex_;
  std::uint64_t write_ops_ = 0;  ///< fault-draw counter
  bool tier_failed_ = false;
  FaultStats fault_stats_;
};

}  // namespace crkhacc::io
