#include "cosmology/background.h"

#include <cmath>

#include "cosmology/units.h"
#include "util/assertions.h"

namespace crkhacc::cosmo {
namespace {

/// Simpson quadrature of f over [lo, hi] with n (even) intervals.
template <typename F>
double simpson(F&& f, double lo, double hi, int n) {
  if (n % 2) ++n;
  const double h = (hi - lo) / n;
  double sum = f(lo) + f(hi);
  for (int i = 1; i < n; ++i) {
    sum += f(lo + i * h) * ((i % 2) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

}  // namespace

double Background::E(double a) const {
  CHECK(a > 0.0);
  const double& p_w0 = params_.w0;
  const double de = params_.omega_l * std::pow(a, -3.0 * (1.0 + p_w0));
  return std::sqrt(params_.omega_m / (a * a * a) +
                   params_.omega_k() / (a * a) + de);
}

double Background::hubble(double a) const { return units::kH0 * E(a); }

double Background::omega_m_at(double a) const {
  const double e = E(a);
  return params_.omega_m / (a * a * a) / (e * e);
}

double Background::mean_matter_density() const {
  return params_.omega_m * units::kRhoCrit0;
}

double Background::time_of(double a) const {
  // t(a) = integral_0^a da' / (a' H(a')). The integrand ~ sqrt(a) near 0
  // in matter domination, so substitute a = x^2 for a smooth integrand.
  const double sqrt_a = std::sqrt(a);
  auto integrand = [&](double x) {
    const double ai = x * x;
    if (ai <= 0.0) return 0.0;
    return 2.0 * x / (ai * hubble(ai));
  };
  return simpson(integrand, 0.0, sqrt_a, 512);
}

double Background::growth_unnormalized(double a) const {
  // D(a) = 5/2 Om E(a) int_0^a da' / (a' E(a'))^3 (flat LCDM form),
  // with a = x^2 substitution for a smooth integrand near 0.
  auto integrand = [&](double x) {
    const double ai = x * x;
    if (ai <= 0.0) return 0.0;
    const double denom = ai * E(ai);
    return 2.0 * x / (denom * denom * denom);
  };
  const double integral = simpson(integrand, 0.0, std::sqrt(a), 512);
  return 2.5 * params_.omega_m * E(a) * integral;
}

double Background::growth(double a) const {
  return growth_unnormalized(a) / growth_unnormalized(1.0);
}

double Background::growth_rate(double a) const {
  const double eps = 1e-4 * a;
  const double d_hi = growth_unnormalized(a + eps);
  const double d_lo = growth_unnormalized(a - eps);
  const double d_mid = growth_unnormalized(a);
  return a * (d_hi - d_lo) / (2.0 * eps * d_mid);
}

}  // namespace crkhacc::cosmo
