#include "analysis/galaxies.h"

#include <algorithm>

#include "analysis/dbscan.h"

namespace crkhacc::analysis {

std::vector<Galaxy> find_galaxies(const Particles& particles,
                                  const GalaxyFinderConfig& config) {
  // Collect owned stars.
  std::vector<std::uint32_t> stars;
  for (std::size_t i = 0; i < particles.size(); ++i) {
    if (!particles.is_owned(i)) continue;
    if (particles.species[i] == static_cast<std::uint8_t>(Species::kStar)) {
      stars.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<Galaxy> galaxies;
  if (stars.size() < config.min_stars) return galaxies;

  std::vector<float> x(stars.size()), y(stars.size()), z(stars.size());
  for (std::size_t s = 0; s < stars.size(); ++s) {
    x[s] = particles.x[stars[s]];
    y[s] = particles.y[stars[s]];
    z[s] = particles.z[stars[s]];
  }
  const auto clusters =
      dbscan(x, y, z, config.linking_length, config.min_stars);

  galaxies.resize(clusters.num_clusters);
  for (std::size_t s = 0; s < stars.size(); ++s) {
    const auto c = clusters.cluster_of[s];
    if (c == DbscanResult::kNoise) continue;
    auto& galaxy = galaxies[static_cast<std::size_t>(c)];
    const std::uint32_t i = stars[s];
    const double m = particles.mass[i];
    ++galaxy.star_count;
    galaxy.stellar_mass += m;
    galaxy.center[0] += m * particles.x[i];
    galaxy.center[1] += m * particles.y[i];
    galaxy.center[2] += m * particles.z[i];
    galaxy.velocity[0] += m * particles.vx[i];
    galaxy.velocity[1] += m * particles.vy[i];
    galaxy.velocity[2] += m * particles.vz[i];
  }
  for (auto& galaxy : galaxies) {
    if (galaxy.stellar_mass <= 0.0) continue;
    for (int d = 0; d < 3; ++d) {
      galaxy.center[d] /= galaxy.stellar_mass;
      galaxy.velocity[d] /= galaxy.stellar_mass;
    }
  }
  std::sort(galaxies.begin(), galaxies.end(), [](const Galaxy& a, const Galaxy& b) {
    return a.stellar_mass > b.stellar_mass;
  });
  return galaxies;
}

}  // namespace crkhacc::analysis
