// Disjoint-set union with path halving and union by size.
//
// The backbone of the clustering analyses: FOF and DBSCAN both reduce to
// connected components over neighbor relations discovered by BVH queries.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

namespace crkhacc::analysis {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Union the sets of a and b; returns the new root.
  std::uint32_t unite(std::uint32_t a, std::uint32_t b) {
    std::uint32_t ra = find(a);
    std::uint32_t rb = find(b);
    if (ra == rb) return ra;
    if (size_[ra] < size_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    size_[ra] += size_[rb];
    return ra;
  }

  bool connected(std::uint32_t a, std::uint32_t b) {
    return find(a) == find(b);
  }

  std::uint32_t component_size(std::uint32_t x) { return size_[find(x)]; }

  std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
};

}  // namespace crkhacc::analysis
