// Shrink-and-continue acceptance: a rank killed mid-run under
// rank_loss_policy=shrink must leave the campaign bitwise identical to a
// fault-free run that started on the shrunken machine from the same
// checkpoint step.
//
// The test runs three phases per thread count:
//   probe   — a fault-free 3-rank campaign measuring each rank's comm op
//             budget, so the kill can be scheduled mid-run regardless of
//             how the comm pattern drifts as the code evolves;
//   shrink  — the same campaign with rank 1 killed halfway through its
//             op budget under RankLossPolicy::kShrink: the watchdog
//             converts the wedge into a RankLossError, core::Campaign
//             relaunches 2 survivors, and recover() adopts the dead
//             rank's checkpoint chain by round-robin remap;
//   reference — a fresh 2-rank machine restarted from a copy of the SAME
//             checkpoint step the shrink run recovered from.
// The shrink and reference runs share every restored byte and every
// subsequent collective, so their final particle state must match to the
// bit (asserted via std::bit_cast on each float column).
#include <gtest/gtest.h>
#include <unistd.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "comm/world.h"
#include "core/campaign.h"
#include "core/simulation.h"
#include "io/checkpoint.h"
#include "io/multi_tier.h"
#include "io/storage.h"

namespace crkhacc::core {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_rank_loss_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

SimConfig tiny_config(int threads) {
  SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 5.0;
  config.num_pm_steps = 3;
  config.hydro = false;
  config.subgrid_on = false;
  config.bins.max_depth = 4;
  config.seed = 99;
  config.threads = threads;
  config.rank_loss_policy = RankLossPolicy::kShrink;
  return config;
}

/// One rank/one epoch of the campaign every phase runs: initialize (or
/// recover, on a resumed epoch), guarantee two steps are collectively
/// committed on the PFS, then run to completion. `op_base`/`op_end`
/// bracket the sim.run comm ops when non-null (probe phase).
struct EpochRecord {
  std::uint64_t resume_step = 0;
  Particles final_particles;
  RunResult result;
  bool finished = false;
};

void run_epoch(comm::Communicator& comm, const CampaignEpoch& epoch,
               io::ThrottledStore& pfs, const SimConfig& config,
               std::vector<std::uint64_t>* op_base,
               std::vector<std::uint64_t>* op_end,
               std::vector<EpochRecord>* records) {
  const auto me = static_cast<std::size_t>(comm.rank());
  // Window large enough that no step is pruned while the campaign runs.
  io::MultiTierWriter writer(*epoch.local, pfs,
                             io::MultiTierConfig{comm.rank(), 8});
  SimContext ctx(config.threads);
  Simulation sim(ctx, comm, config);
  RunResult pre;
  if (epoch.resume) {
    sim.recover(pfs, pre, &writer);
  } else {
    sim.initialize();
    // Two steps drained and barriered: steps 1 and 2 are collectively
    // committed on the PFS before any scheduled kill can strike, so the
    // shrink always has a complete step to roll back to.
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();
    comm.barrier();
  }
  if (op_base != nullptr) (*op_base)[me] = comm.op_count();
  if (epoch.resume && records != nullptr) {
    (*records)[me].resume_step = sim.current_step();
  }

  auto result = sim.run(&writer, &pfs, nullptr);
  writer.drain();
  comm.barrier();
  if (op_end != nullptr) (*op_end)[me] = comm.op_count();
  if (records != nullptr) {
    result.merge(pre);
    epoch.stamp(result);
    auto& record = (*records)[me];
    record.final_particles = sim.particles();
    record.result = result;
    record.finished = true;
  }
}

void expect_bitwise_equal(const Particles& got, const Particles& expect) {
  ASSERT_EQ(got.size(), expect.size());
  const auto bits = [](float v) { return std::bit_cast<std::uint32_t>(v); };
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got.id[i], expect.id[i]) << "particle " << i;
    ASSERT_EQ(bits(got.x[i]), bits(expect.x[i])) << "x of " << got.id[i];
    ASSERT_EQ(bits(got.y[i]), bits(expect.y[i])) << "y of " << got.id[i];
    ASSERT_EQ(bits(got.z[i]), bits(expect.z[i])) << "z of " << got.id[i];
    ASSERT_EQ(bits(got.vx[i]), bits(expect.vx[i])) << "vx of " << got.id[i];
    ASSERT_EQ(bits(got.vy[i]), bits(expect.vy[i])) << "vy of " << got.id[i];
    ASSERT_EQ(bits(got.vz[i]), bits(expect.vz[i])) << "vz of " << got.id[i];
    ASSERT_EQ(bits(got.mass[i]), bits(expect.mass[i]));
    ASSERT_EQ(bits(got.u[i]), bits(expect.u[i]));
    ASSERT_EQ(bits(got.rho[i]), bits(expect.rho[i]));
    ASSERT_EQ(got.species[i], expect.species[i]);
    ASSERT_EQ(got.ghost[i], expect.ghost[i]);
  }
}

class ShrinkAndContinueTest : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkAndContinueTest, ShrunkenRunIsBitwiseIdenticalToCleanRestart) {
  const int threads = GetParam();
  const int ranks = 3;
  const SimConfig config = tiny_config(threads);
  const comm::WatchdogConfig fast_watchdog{true, 0.01};

  // --- probe: measure each rank's comm op budget, fault free ------------
  std::vector<std::uint64_t> op_base(ranks, 0), op_end(ranks, 0);
  {
    TempDir dir;
    io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
    std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
    for (int r = 0; r < ranks; ++r) {
      nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
          dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
    }
    comm::World world(ranks);
    world.run([&](comm::Communicator& comm) {
      CampaignEpoch epoch;
      epoch.local = nvmes[static_cast<std::size_t>(comm.rank())].get();
      run_epoch(comm, epoch, pfs, config, &op_base, &op_end, nullptr);
    });
  }
  // The kill lands in the middle of rank 1's sim.run comm traffic — after
  // steps 1 and 2 are committed, before the run finishes.
  ASSERT_GT(op_end[1], op_base[1] + 1);
  const std::uint64_t kill_op = (op_base[1] + op_end[1]) / 2;

  // --- shrink: kill rank 1 at that op under policy=shrink ---------------
  TempDir dir;
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  std::vector<io::ThrottledStore*> locals;
  for (int r = 0; r < ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
    locals.push_back(nvmes.back().get());
  }
  std::vector<EpochRecord> shrunk(ranks);
  Campaign campaign(RankLossPolicy::kShrink, locals, fast_watchdog);
  campaign.schedule_rank_failure(1, kill_op);
  campaign.run([&](comm::Communicator& comm, const CampaignEpoch& epoch) {
    run_epoch(comm, epoch, pfs, config, nullptr, nullptr, &shrunk);
  });

  ASSERT_EQ(campaign.ranks(), ranks - 1);
  EXPECT_EQ(campaign.rank_losses(), 1u);
  EXPECT_EQ(campaign.shrink_recoveries(), 1u);
  EXPECT_GT(campaign.last_recovery_seconds(), 0.0);

  ASSERT_TRUE(shrunk[0].finished);
  ASSERT_TRUE(shrunk[1].finished);
  EXPECT_FALSE(shrunk[2].finished);  // the old rank 2 renumbered to 1
  // Both survivors rolled back to the same collectively-committed step,
  // which the drain + barrier after step 2 guarantees exists.
  const std::uint64_t resume_step = shrunk[0].resume_step;
  ASSERT_GE(resume_step, 2u);
  ASSERT_EQ(shrunk[1].resume_step, resume_step);

  for (int r = 0; r < ranks - 1; ++r) {
    const RunResult& result = shrunk[static_cast<std::size_t>(r)].result;
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.rank_losses, 1u) << "rank " << r;
    EXPECT_EQ(result.shrink_recoveries, 1u) << "rank " << r;
    // Old rank file 2 was restored by new rank 0 (2 % 2); the count is
    // allreduce-summed so every rank reports the campaign-wide total.
    EXPECT_EQ(result.adopted_rank_files, 1u) << "rank " << r;
    EXPECT_GE(result.recovery_attempts, 1u) << "rank " << r;
    EXPECT_EQ(result.restarts_from_ics, 0u) << "rank " << r;
  }

  // --- reference: clean 2-rank restart from the same step ---------------
  // Copy only the recovered step's directory: the reference machine must
  // make the same rollback decision from the same bytes.
  io::ThrottledStore ref_pfs(
      io::StoreConfig{dir.str() + "/pfs_ref", 0.0, 0.0, true});
  {
    // Step directory of rank 0's file, e.g. "ckpt/step000002".
    const auto step_dir =
        fs::path(io::MultiTierWriter::checkpoint_path(resume_step, 0))
            .parent_path()
            .string();
    const auto src = fs::path(pfs.full_path(step_dir));
    const auto dst = fs::path(ref_pfs.full_path(step_dir));
    fs::create_directories(dst.parent_path());
    fs::copy(src, dst, fs::copy_options::recursive);
  }
  ASSERT_EQ(io::checkpoint_writer_count(ref_pfs, resume_step), ranks);

  std::vector<EpochRecord> reference(ranks - 1);
  std::vector<std::unique_ptr<io::ThrottledStore>> ref_nvmes;
  std::vector<io::ThrottledStore*> ref_locals;
  for (int r = 0; r < ranks - 1; ++r) {
    ref_nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme_ref" + std::to_string(r), 0.0, 0.0, false}));
    ref_locals.push_back(ref_nvmes.back().get());
  }
  Campaign ref_campaign(RankLossPolicy::kShrink, ref_locals, fast_watchdog);
  ref_campaign.set_resume(true);
  ref_campaign.run([&](comm::Communicator& comm, const CampaignEpoch& epoch) {
    run_epoch(comm, epoch, ref_pfs, config, nullptr, nullptr, &reference);
  });
  EXPECT_EQ(ref_campaign.rank_losses(), 0u);

  for (int r = 0; r < ranks - 1; ++r) {
    const auto& ref = reference[static_cast<std::size_t>(r)];
    ASSERT_TRUE(ref.finished);
    ASSERT_EQ(ref.resume_step, resume_step);
    EXPECT_TRUE(ref.result.completed);
    // The reference restore adopts the same third rank file.
    EXPECT_EQ(ref.result.adopted_rank_files, 1u);
    expect_bitwise_equal(shrunk[static_cast<std::size_t>(r)].final_particles,
                         ref.final_particles);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ShrinkAndContinueTest,
                         ::testing::Values(1, 8));

// Under the default fatal policy the same kill must abort the campaign
// with a diagnosis naming the dead rank, not shrink past it.
TEST(RankLossPolicyTest, FatalPolicyPropagatesRankLoss) {
  const int ranks = 3;
  TempDir dir;
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
  std::vector<io::ThrottledStore*> locals;
  for (int r = 0; r < ranks; ++r) {
    nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
        dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
    locals.push_back(nvmes.back().get());
  }
  SimConfig config = tiny_config(1);
  config.rank_loss_policy = RankLossPolicy::kFatal;
  Campaign campaign(RankLossPolicy::kFatal, locals,
                    comm::WatchdogConfig{true, 0.01});
  campaign.schedule_rank_failure(1, 0);
  try {
    campaign.run([&](comm::Communicator& comm, const CampaignEpoch& epoch) {
      run_epoch(comm, epoch, pfs, config, nullptr, nullptr, nullptr);
    });
    FAIL() << "expected RankLossError";
  } catch (const comm::RankLossError& loss) {
    ASSERT_EQ(loss.lost().size(), 1u);
    EXPECT_EQ(loss.lost()[0].rank, 1);
    EXPECT_NE(std::string(loss.what()).find("rank 1"), std::string::npos);
  }
}

}  // namespace
}  // namespace crkhacc::core
