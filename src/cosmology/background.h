// FLRW background cosmology.
//
// The simulation integrates in scale factor a (redshift z = 1/a - 1).
// Everything here is smooth-background bookkeeping: the Hubble rate,
// density parameters, cosmic time, and the linear growth factor used to
// normalize initial conditions and set the Zel'dovich velocities.
#pragma once

namespace crkhacc::cosmo {

/// Flat(ish) wCDM parameter set. Defaults match the Frontier-E-era
/// Planck-like LCDM used by CRK-HACC papers.
struct Parameters {
  double omega_m = 0.31;      ///< total matter (cdm + baryons) today
  double omega_b = 0.049;     ///< baryons today
  double omega_l = 0.69;      ///< dark energy today
  double h = 0.6766;          ///< H0 / (100 km/s/Mpc)
  double n_s = 0.9665;        ///< scalar spectral index
  double sigma8 = 0.8102;     ///< power normalization at z=0
  double w0 = -1.0;           ///< dark-energy equation of state
  double t_cmb = 2.7255;      ///< CMB temperature [K]

  double omega_c() const { return omega_m - omega_b; }
  double omega_k() const { return 1.0 - omega_m - omega_l; }
};

class Background {
 public:
  explicit Background(const Parameters& params) : params_(params) {}

  const Parameters& params() const { return params_; }

  /// Dimensionless Hubble rate E(a) = H(a)/H0.
  double E(double a) const;

  /// Hubble rate in code units (km/s per Mpc/h): H(a) = 100 E(a).
  double hubble(double a) const;

  /// Matter density parameter at scale factor a.
  double omega_m_at(double a) const;

  /// Comoving critical matter density today in code units.
  double mean_matter_density() const;

  /// Cosmic time since a=0 in code units (Mpc/h / km/s), by quadrature.
  double time_of(double a) const;

  /// Linear growth factor normalized to D(a=1) = 1 (LCDM integral form).
  double growth(double a) const;

  /// Logarithmic growth rate f = dlnD/dlna.
  double growth_rate(double a) const;

  static double a_of_z(double z) { return 1.0 / (1.0 + z); }
  static double z_of_a(double a) { return 1.0 / a - 1.0; }

 private:
  double growth_unnormalized(double a) const;
  Parameters params_;
};

}  // namespace crkhacc::cosmo
