// In-process message-passing substrate.
//
// CRK-HACC is an MPI code: one rank per GPU tile, 72,000 ranks on the full
// Frontier-E run. This module substitutes a faithful in-process model for
// MPI — N simulated ranks, each running the identical rank program on its
// own thread, communicating only through explicit messages and collectives
// with MPI semantics (matched tagged point-to-point, barrier, allreduce,
// bcast, alltoallv, allgather). Algorithms above this layer are written
// exactly as they would be against MPI, so rank-count scaling exercises the
// same decomposition, exchange, and reduction patterns as the real machine.
//
// Messages are deep-copied byte buffers: no shared mutable state leaks
// between ranks, preserving the distributed-memory discipline that makes
// the overload/ghost-zone design of the paper necessary in the first place.
//
// Fault domain: a deterministic rank-failure schedule can abort any rank
// mid-step (RankFailure unwinds that rank's program cleanly), and a hang
// watchdog converts the resulting — or any other — communication deadlock
// into a DeadlockError carrying every rank's blocked state (who it waits
// on, which tag, which barrier generation) instead of hanging forever.
// When the wedge is caused by recorded rank deaths, run() raises the
// RankLossError subclass instead — ULFM's "revoked communicator" moment —
// naming the dead ranks so a campaign layer can shrink and continue.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "util/assertions.h"

namespace crkhacc::comm {

/// Reduction operators for allreduce.
enum class ReduceOp { kSum, kMin, kMax };

class World;

/// Thrown inside a rank's program when its injected failure point is
/// reached; World::run catches it, records the loss, and lets the other
/// ranks keep running (they deadlock — caught by the watchdog — if they
/// depend on the dead rank).
class RankFailure : public std::runtime_error {
 public:
  RankFailure(int rank, std::uint64_t op)
      : std::runtime_error("rank " + std::to_string(rank) +
                           " failed at comm op " + std::to_string(op)),
        rank_(rank), op_(op) {}
  int rank() const { return rank_; }
  std::uint64_t op() const { return op_; }

 private:
  int rank_;
  std::uint64_t op_;
};

/// Thrown by World::run when the watchdog proves no rank can make
/// progress; what() carries the per-rank blocked-state dump.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& diagnosis)
      : std::runtime_error(diagnosis) {}
};

/// An injected failure observed during a run.
struct FailureRecord {
  int rank = 0;
  std::uint64_t op = 0;
};

/// Raised instead of a plain DeadlockError when the proven wedge is
/// explained by recorded rank deaths: the survivors are blocked on a lost
/// peer, not genuinely deadlocked. Subclasses DeadlockError so existing
/// fatal-path handlers keep working; a shrink-aware caller catches this
/// type specifically and relaunches on the survivors.
class RankLossError : public DeadlockError {
 public:
  RankLossError(const std::string& diagnosis,
                std::vector<FailureRecord> lost)
      : DeadlockError(diagnosis), lost_(std::move(lost)) {}
  const std::vector<FailureRecord>& lost() const { return lost_; }

 private:
  std::vector<FailureRecord> lost_;
};

/// Per-rank communication handle. Valid only inside World::run.
///
/// All operations are blocking with MPI semantics. Point-to-point matching
/// is by (source, tag) in FIFO order per pair.
class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const;

  // --- point-to-point ----------------------------------------------------
  void send_bytes(int dest, int tag, const void* data, std::size_t size);
  /// Blocks until a matching message arrives; returns its payload.
  std::vector<std::uint8_t> recv_bytes(int source, int tag);

  template <typename T>
  void send(int dest, int tag, std::span<const T> data) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, data.data(), data.size_bytes());
  }

  template <typename T>
  void send_value(int dest, int tag, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    send_bytes(dest, tag, &value, sizeof(T));
  }

  template <typename T>
  std::vector<T> recv(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(source, tag);
    CHECK(bytes.size() % sizeof(T) == 0);
    std::vector<T> out(bytes.size() / sizeof(T));
    std::memcpy(out.data(), bytes.data(), bytes.size());
    return out;
  }

  template <typename T>
  T recv_value(int source, int tag) {
    static_assert(std::is_trivially_copyable_v<T>);
    auto bytes = recv_bytes(source, tag);
    CHECK(bytes.size() == sizeof(T));
    T value;
    std::memcpy(&value, bytes.data(), sizeof(T));
    return value;
  }

  // --- collectives --------------------------------------------------------
  /// All ranks must call; returns when every rank has arrived.
  void barrier();

  /// Element-wise reduction of `values` across ranks; result on all ranks.
  void allreduce(std::span<double> values, ReduceOp op);
  void allreduce(std::span<std::int64_t> values, ReduceOp op);
  double allreduce_scalar(double value, ReduceOp op);
  std::int64_t allreduce_scalar(std::int64_t value, ReduceOp op);

  /// Collective logical-AND: true iff every rank passed true. Used for
  /// commit/rollback and recovery verdicts where all ranks must agree.
  bool all_agree(bool local_ok) {
    return allreduce_scalar(static_cast<std::int64_t>(local_ok ? 1 : 0),
                            ReduceOp::kMin) == 1;
  }

  /// Broadcast `bytes` from `root` to every rank (resized on receivers).
  void bcast_bytes(std::vector<std::uint8_t>& bytes, int root);

  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> bytes;
    if (rank_ == root) {
      bytes.resize(data.size() * sizeof(T));
      std::memcpy(bytes.data(), data.data(), bytes.size());
    }
    bcast_bytes(bytes, root);
    data.resize(bytes.size() / sizeof(T));
    std::memcpy(data.data(), bytes.data(), bytes.size());
  }

  /// Gather one T from each rank onto all ranks (allgather).
  template <typename T>
  std::vector<T> allgather_value(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::uint8_t> mine(sizeof(T));
    std::memcpy(mine.data(), &value, sizeof(T));
    auto gathered = allgather_bytes(mine);
    std::vector<T> out(gathered.size());
    for (std::size_t i = 0; i < gathered.size(); ++i) {
      CHECK(gathered[i].size() == sizeof(T));
      std::memcpy(&out[i], gathered[i].data(), sizeof(T));
    }
    return out;
  }

  /// Gather a variable-size byte buffer from each rank onto all ranks.
  std::vector<std::vector<std::uint8_t>> allgather_bytes(
      const std::vector<std::uint8_t>& mine);

  /// Personalized all-to-all: sends[d] goes to rank d; returns one buffer
  /// received from each rank (empty buffers allowed).
  std::vector<std::vector<std::uint8_t>> alltoallv_bytes(
      const std::vector<std::vector<std::uint8_t>>& sends);

  template <typename T>
  std::vector<std::vector<T>> alltoallv(
      const std::vector<std::vector<T>>& sends) {
    static_assert(std::is_trivially_copyable_v<T>);
    CHECK(static_cast<int>(sends.size()) == size());
    std::vector<std::vector<std::uint8_t>> raw(sends.size());
    for (std::size_t d = 0; d < sends.size(); ++d) {
      raw[d].resize(sends[d].size() * sizeof(T));
      // data() of an empty vector may be null; memcpy forbids null even
      // for zero sizes.
      if (!raw[d].empty()) {
        std::memcpy(raw[d].data(), sends[d].data(), raw[d].size());
      }
    }
    auto got = alltoallv_bytes(raw);
    std::vector<std::vector<T>> out(got.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
      CHECK(got[s].size() % sizeof(T) == 0);
      out[s].resize(got[s].size() / sizeof(T));
      if (!got[s].empty()) {
        std::memcpy(out[s].data(), got[s].data(), got[s].size());
      }
    }
    return out;
  }

  /// Total bytes this rank has sent point-to-point (diagnostics).
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Communication operations issued so far (the counter
  /// schedule_rank_failure indexes) — lets harnesses measure an op
  /// budget on a fault-free run and aim an injected failure inside it.
  std::uint64_t op_count() const { return op_count_; }

 private:
  friend class World;
  Communicator(World& world, int rank) : world_(world), rank_(rank) {}

  /// Advance the comm-op counter; throws RankFailure at the scheduled op.
  void tick();

  World& world_;
  int rank_;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t op_count_ = 0;
};

/// Watchdog tuning. The watchdog only fires on a *proven* deadlock (all
/// live ranks blocked, no deliverable message, no progress across two
/// consecutive polls), so it is safe to leave on by default.
struct WatchdogConfig {
  bool enabled = true;
  double poll_interval_s = 0.05;
};

/// A simulated machine: N ranks, each running `rank_main` on its own
/// thread. Construction is cheap; run() is synchronous and joins all
/// rank threads before returning.
class World {
 public:
  explicit World(int num_ranks, const WatchdogConfig& watchdog = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const { return num_ranks_; }

  /// Execute `rank_main(comm)` on every rank concurrently; returns after
  /// all ranks finish. May be called repeatedly on the same World.
  /// After joining every rank thread: throws RankLossError if the
  /// watchdog proved a wedge and ranks were lost (the survivors were
  /// blocked on a dead peer), DeadlockError if the machine wedged with no
  /// recorded deaths. A RankFailure that never wedges the survivors does
  /// not throw — inspect failures().
  void run(const std::function<void(Communicator&)>& rank_main);

  /// Deterministic rank-failure schedule: rank `rank` throws RankFailure
  /// when it issues its `op`-th communication operation (0-based count
  /// of sends/recvs/collectives). Persists across run() calls until
  /// clear_failure_schedule().
  void schedule_rank_failure(int rank, std::uint64_t op);
  void clear_failure_schedule();

  /// Injected failures observed during the most recent run().
  using FailureRecord = comm::FailureRecord;
  std::vector<FailureRecord> failures() const { return failures_; }

  /// Wall seconds from the first rank death of the most recent run()
  /// until run() returned control (watchdog detection + survivor
  /// unwinding + thread joins). 0 when no rank was lost. This is the
  /// detection half of a shrink recovery's wall-time bill.
  double last_loss_latency_seconds() const { return loss_latency_s_; }

 private:
  friend class Communicator;

  struct Message {
    int source;
    int tag;
    std::vector<std::uint8_t> payload;
  };

  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Message> messages;
  };

  /// What a rank is doing right now, as seen by the watchdog.
  enum class Phase : std::uint8_t {
    kRunning = 0,
    kBlockedRecv,
    kBlockedBarrier,
    kFinished,
    kFailed,
  };
  struct RankState {
    Phase phase = Phase::kRunning;
    int source = -1;          ///< recv: awaited source rank
    int tag = 0;              ///< recv: awaited tag
    std::uint64_t barrier_gen = 0;  ///< barrier: awaited generation
  };

  void deliver(int dest, Message message);
  std::vector<std::uint8_t> wait_for(int self, int source, int tag);

  // Central generation-counted barrier shared by all collectives.
  void barrier_wait(int self);

  void set_phase(int rank, Phase phase, int source = -1, int tag = 0,
                 std::uint64_t barrier_gen = 0);
  void watchdog_loop();
  /// One watchdog sample; returns a diagnosis string if this sample
  /// proves a deadlock, empty otherwise.
  std::string watchdog_probe(std::uint64_t& last_progress, bool& armed);
  std::string dump_rank_states();
  void declare_deadlock(const std::string& diagnosis);
  [[noreturn]] void throw_deadlock();

  int num_ranks_;
  WatchdogConfig watchdog_config_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_arrived_ = 0;
  std::uint64_t barrier_generation_ = 0;

  // --- fault domain -------------------------------------------------------
  std::vector<std::int64_t> fail_at_op_;  ///< per rank; -1 = never
  std::vector<FailureRecord> failures_;
  std::chrono::steady_clock::time_point first_failure_tp_{};
  double loss_latency_s_ = 0.0;
  mutable std::mutex state_mutex_;
  std::vector<RankState> rank_states_;
  std::atomic<std::uint64_t> progress_{0};  ///< bumped on any forward step
  std::atomic<int> unfinished_{0};          ///< live rank threads this run
  std::atomic<bool> deadlock_flag_{false};
  std::string deadlock_diagnosis_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool dirty_ = false;  ///< previous run left mailboxes/barrier corrupt
};

}  // namespace crkhacc::comm
