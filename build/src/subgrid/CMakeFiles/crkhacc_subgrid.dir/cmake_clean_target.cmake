file(REMOVE_RECURSE
  "libcrkhacc_subgrid.a"
)
