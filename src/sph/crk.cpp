#include "sph/crk.h"

#include <cmath>

namespace crkhacc::sph {

CrkCoefficients solve_crk(const CrkMoments& m) {
  CrkCoefficients out;
  const float fallback_a = (m.m0 > 1e-20f) ? 1.0f / m.m0 : 1.0f;

  // Symmetric 3x3 inverse of m2 via the adjugate.
  const float xx = m.m2[0], yy = m.m2[1], zz = m.m2[2];
  const float xy = m.m2[3], xz = m.m2[4], yz = m.m2[5];
  const float cof_xx = yy * zz - yz * yz;
  const float cof_xy = xz * yz - xy * zz;
  const float cof_xz = xy * yz - xz * yy;
  const float det = xx * cof_xx + xy * cof_xy + xz * cof_xz;

  // Scale-aware singularity guard: det ~ (h^2 m0 / 5)^3 for healthy
  // neighborhoods; anything tiny relative to trace^3 is degenerate.
  const float trace = xx + yy + zz;
  if (!(det > 1e-12f * trace * trace * trace) || trace <= 0.0f) {
    out.a = fallback_a;
    return out;
  }
  const float inv_det = 1.0f / det;
  const float inv_xx = cof_xx * inv_det;
  const float inv_xy = cof_xy * inv_det;
  const float inv_xz = cof_xz * inv_det;
  const float inv_yy = (xx * zz - xz * xz) * inv_det;
  const float inv_yz = (xy * xz - xx * yz) * inv_det;
  const float inv_zz = (xx * yy - xy * xy) * inv_det;

  // B = +m2^{-1} m1 for the d = x_i - x_j convention of corrected_w:
  // with W^R = A (1 - B.d_{ji}) W, the first-moment condition
  // sum_j V_j W^R (x_j - x_i) = 0 gives m1 = m2 B.
  const float bx = inv_xx * m.m1[0] + inv_xy * m.m1[1] + inv_xz * m.m1[2];
  const float by = inv_xy * m.m1[0] + inv_yy * m.m1[1] + inv_yz * m.m1[2];
  const float bz = inv_xz * m.m1[0] + inv_yz * m.m1[1] + inv_zz * m.m1[2];

  // A = 1 / (m0 - B . m1)   [equals m0 - m1^T m2^{-1} m1]
  const float denom = m.m0 - (bx * m.m1[0] + by * m.m1[1] + bz * m.m1[2]);
  if (!(denom > 1e-20f) || !std::isfinite(denom)) {
    out.a = fallback_a;
    return out;
  }
  out.a = 1.0f / denom;
  out.b = {bx, by, bz};
  return out;
}

}  // namespace crkhacc::sph
