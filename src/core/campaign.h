// Campaign-level shrink-and-continue runner.
//
// World::run can only report a rank loss by unwinding every rank program:
// the survivors wedge on the dead peer, the watchdog proves it, and the
// whole machine comes down as a collective RankLossError. Rebuilding a
// smaller machine is therefore a between-runs decision — no rank thread
// can do it from inside. Campaign owns that loop: it launches the rank
// program on a World and, when ranks are lost under
// RankLossPolicy::kShrink, drops the dead ranks' node-local stores,
// relaunches the survivors as a fresh World(n - lost), and asks the rank
// program to *resume* — Simulation::recover rolls back to the last
// collectively-committed checkpoint step and the adopting ranks replay
// the dead ranks' chains by round-robin remap (old rank file f -> new
// rank f % n), so the lost domains re-enter through the normal exchange
// path. Under kFatal (the default) a loss propagates unchanged.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "comm/world.h"
#include "core/config.h"
#include "core/simulation.h"
#include "io/storage.h"

namespace crkhacc::core {

/// One epoch's view of the campaign, handed to the rank program on every
/// (re)launch. `local` is this rank's node-local burst-buffer tier —
/// indexed by the *current* rank numbering, which changes across shrinks.
struct CampaignEpoch {
  std::uint64_t epoch = 0;  ///< 0 = initial launch; +1 per relaunch
  bool resume = false;      ///< recover from checkpoints instead of init
  io::ThrottledStore* local = nullptr;
  std::uint64_t rank_losses = 0;        ///< dead ranks observed so far
  std::uint64_t shrink_recoveries = 0;  ///< shrunken relaunches so far

  /// Fold the campaign-level loss counters into a rank's RunResult.
  /// (Counters a pre-run recover() accumulated fold in separately via
  /// RunResult::merge — see core/simulation.h for the per-field policy.)
  void stamp(RunResult& result) const {
    result.rank_losses = rank_losses;
    result.shrink_recoveries = shrink_recoveries;
  }
};

class Campaign {
 public:
  using RankProgram =
      std::function<void(comm::Communicator&, const CampaignEpoch&)>;

  /// One node-local store per initial rank; entries for dead ranks are
  /// dropped at each shrink so index == current rank throughout.
  Campaign(RankLossPolicy policy, std::vector<io::ThrottledStore*> locals,
           const comm::WatchdogConfig& watchdog = {});

  /// Deterministic failure injection, applied to the first epoch only —
  /// a relaunched machine starts with a clean schedule.
  void schedule_rank_failure(int rank, std::uint64_t op);

  /// Make even the first epoch resume from checkpoints (restart
  /// tooling / reference-run harnesses).
  void set_resume(bool resume) { resume_first_epoch_ = resume; }

  /// Run the campaign until an epoch completes on every surviving rank.
  /// Throws RankLossError when a rank is lost under kFatal via the
  /// watchdog, or when a shrink would leave no rank alive.
  void run(const RankProgram& rank_program);

  int ranks() const { return static_cast<int>(locals_.size()); }
  std::uint64_t rank_losses() const { return rank_losses_; }
  std::uint64_t shrink_recoveries() const { return shrink_recoveries_; }

  /// Wall seconds the most recent shrink recovery cost end to end: from
  /// the first rank death (watchdog detection + survivor unwinding)
  /// through the relaunched epoch running to completion. 0 when the
  /// campaign never lost a rank. This is the number the rank-loss bench
  /// holds against a fault-free restart.
  double last_recovery_seconds() const { return recovery_seconds_; }

 private:
  RankLossPolicy policy_;
  std::vector<io::ThrottledStore*> locals_;
  comm::WatchdogConfig watchdog_;
  std::vector<std::pair<int, std::uint64_t>> scheduled_failures_;
  bool resume_first_epoch_ = false;
  std::uint64_t rank_losses_ = 0;
  std::uint64_t shrink_recoveries_ = 0;
  double recovery_seconds_ = 0.0;
};

}  // namespace crkhacc::core
