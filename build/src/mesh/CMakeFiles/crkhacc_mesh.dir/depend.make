# Empty dependencies file for crkhacc_mesh.
# This may be replaced when dependencies are built.
