# Empty compiler generated dependencies file for ablation_tree_grow.
# This may be replaced when dependencies are built.
