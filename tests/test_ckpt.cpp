// Tests for the self-describing chunked column checkpoint format (CKC2),
// differential checkpoint planning and chains, chain-aware retention,
// and the offline audit/repair machinery.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <memory>
#include <vector>

#include "comm/world.h"
#include "core/simulation.h"
#include "io/checkpoint.h"
#include "io/ckpt_audit.h"
#include "io/column_file.h"
#include "io/generic_io.h"
#include "io/multi_tier.h"
#include "io/storage.h"
#include "util/crc32.h"
#include "util/rng.h"

namespace crkhacc::io {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    // PID-qualified: ctest -j runs each case in its own process, so a
    // per-process counter alone collides across concurrent cases.
    path_ = fs::temp_directory_path() /
            ("crkhacc_ckpt_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  static inline int counter_ = 0;
  fs::path path_;
};

Particles sample_particles(std::size_t n, std::uint64_t seed,
                           std::size_t num_ghosts = 0) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    const auto idx = p.push_back(
        i, i % 2 ? Species::kGas : Species::kDarkMatter,
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_double() * 10.0),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(rng.next_gaussian()),
        static_cast<float>(1.0 + rng.next_double()));
    p.u[idx] = static_cast<float>(rng.next_double() * 100.0);
    p.rho[idx] = static_cast<float>(rng.next_double());
    p.hsml[idx] = 0.5f;
    p.metal[idx] = 0.01f;
    p.bin[idx] = static_cast<std::uint8_t>(i % 5);
    if (i < num_ghosts) p.ghost[idx] = 1;
  }
  return p;
}

void expect_same_particles(const Particles& got, const Particles& expect) {
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_EQ(got.id, expect.id);
  EXPECT_EQ(got.x, expect.x);
  EXPECT_EQ(got.y, expect.y);
  EXPECT_EQ(got.z, expect.z);
  EXPECT_EQ(got.vx, expect.vx);
  EXPECT_EQ(got.vy, expect.vy);
  EXPECT_EQ(got.vz, expect.vz);
  EXPECT_EQ(got.mass, expect.mass);
  EXPECT_EQ(got.u, expect.u);
  EXPECT_EQ(got.rho, expect.rho);
  EXPECT_EQ(got.hsml, expect.hsml);
  EXPECT_EQ(got.metal, expect.metal);
  EXPECT_EQ(got.species, expect.species);
  EXPECT_EQ(got.bin, expect.bin);
  EXPECT_EQ(got.ghost, expect.ghost);
}

/// Force the read-only overload on a mutable Particles.
std::vector<ColumnView> const_cols(const Particles& p) {
  return particle_columns(p);
}

CkptFileMeta make_meta(const Particles& p, std::uint64_t step,
                       std::uint32_t chunk_bytes) {
  CkptFileMeta meta;
  meta.snapshot.step = step;
  meta.snapshot.scale_factor = 0.42;
  meta.snapshot.rank = 3;
  meta.snapshot.num_ranks = 8;
  meta.snapshot.particle_count = p.size();
  meta.base_step = step;
  meta.chunk_bytes = chunk_bytes;
  return meta;
}

/// Payload byte offset of chunk `index` of column `name`, from a
/// pristine parse (so corruption tests can hit an exact chunk).
std::uint64_t chunk_offset(const std::vector<std::uint8_t>& bytes,
                           const std::string& name, std::uint32_t index) {
  ParsedCheckpoint parsed;
  EXPECT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kOk);
  for (const ParsedColumn& col : parsed.columns) {
    if (col.name != name) continue;
    for (const ParsedChunk& chunk : col.chunks) {
      if (chunk.index == index) return chunk.offset;
    }
  }
  ADD_FAILURE() << "chunk " << name << "[" << index << "] not found";
  return 0;
}

// --- wire format -----------------------------------------------------------

TEST(CkptFormat, FullRoundTripCarriesMeta) {
  const auto p = sample_particles(100, 1, /*num_ghosts=*/7);
  const auto meta = make_meta(p, 12, 256);
  const auto cols = particle_columns(p);
  const auto bytes = encode_checkpoint(meta, cols);

  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.meta.snapshot.step, 12u);
  EXPECT_DOUBLE_EQ(parsed.meta.snapshot.scale_factor, 0.42);
  EXPECT_EQ(parsed.meta.snapshot.rank, 3);
  EXPECT_EQ(parsed.meta.snapshot.num_ranks, 8);
  EXPECT_EQ(parsed.meta.snapshot.particle_count, 100u);
  EXPECT_EQ(parsed.meta.snapshot.format_version, kCkptFormatVersion);
  EXPECT_EQ(parsed.meta.kind, CkptKind::kFull);
  EXPECT_EQ(parsed.meta.chain_index, 0u);
  EXPECT_EQ(parsed.meta.chunk_bytes, 256u);
  EXPECT_EQ(parsed.columns.size(), cols.size());
  EXPECT_TRUE(parsed.all_chunks_valid());
  EXPECT_TRUE(is_complete(parsed));

  Particles out;
  out.resize(100);
  const auto dest = particle_columns(out);
  ASSERT_TRUE(apply_chunks(parsed, bytes, dest));
  expect_same_particles(out, p);
}

TEST(CkptFormat, ChunkDamageIsLocalized) {
  const auto p = sample_particles(200, 2);
  const auto bytes = encode_checkpoint(make_meta(p, 1, 64),
                                       particle_columns(p));
  auto corrupted = bytes;
  corrupted[chunk_offset(bytes, "x", 2) + 5] ^= 0x10;

  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(corrupted, parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.chunks_damaged, 1u);
  EXPECT_FALSE(is_complete(parsed));
  for (const ParsedColumn& col : parsed.columns) {
    for (const ParsedChunk& chunk : col.chunks) {
      EXPECT_EQ(chunk.valid, !(col.name == "x" && chunk.index == 2))
          << col.name << "[" << chunk.index << "]";
    }
  }
}

TEST(CkptFormat, TruncationDamagesTailOnly) {
  const auto p = sample_particles(200, 3);
  const auto bytes = encode_checkpoint(make_meta(p, 1, 64),
                                       particle_columns(p));
  auto torn = bytes;
  torn.resize(bytes.size() - 100);

  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(torn, parsed), ParseStatus::kOk);
  EXPECT_GT(parsed.chunks_damaged, 0u);
  EXPECT_LT(parsed.chunks_damaged, parsed.chunks_checked);
  for (const ParsedColumn& col : parsed.columns) {
    for (const ParsedChunk& chunk : col.chunks) {
      // Exactly the chunks the truncation cut into are invalid.
      EXPECT_EQ(chunk.valid, chunk.offset + chunk.length <= torn.size())
          << col.name << "[" << chunk.index << "]";
    }
  }
}

TEST(CkptFormat, HeaderCorruptionAndGarbageRejected) {
  const auto p = sample_particles(50, 4);
  const auto bytes = encode_checkpoint(make_meta(p, 1, 256),
                                       particle_columns(p));
  ParsedCheckpoint parsed;

  auto corrupted = bytes;
  corrupted[9] ^= 0x01;  // inside the CRC-covered header fields
  EXPECT_EQ(parse_checkpoint(corrupted, parsed), ParseStatus::kCorruptHeader);

  corrupted = bytes;
  corrupted[5] ^= 0x01;  // the header CRC itself
  EXPECT_EQ(parse_checkpoint(corrupted, parsed), ParseStatus::kCorruptHeader);

  EXPECT_EQ(parse_checkpoint({1, 2, 3}, parsed), ParseStatus::kNotCkpt);
  EXPECT_EQ(parse_checkpoint({}, parsed), ParseStatus::kNotCkpt);
}

TEST(CkptFormat, LegacyGio1Rejected) {
  std::vector<std::uint8_t> legacy(64, 0);
  const std::uint32_t magic = 0x47494f31u;  // "GIO1" blobs from format v1
  std::memcpy(legacy.data(), &magic, sizeof(magic));
  ParsedCheckpoint parsed;
  EXPECT_EQ(parse_checkpoint(legacy, parsed), ParseStatus::kLegacy);
}

TEST(CkptFormat, FutureVersionRejected) {
  const auto p = sample_particles(50, 5);
  auto bytes = encode_checkpoint(make_meta(p, 1, 256), particle_columns(p));
  // Stamp format v3 and re-seal the header CRC (which covers bytes
  // [8, 72) — everything after the magic and the CRC field itself), so
  // the reader sees an *intact* file from a newer writer.
  const std::uint32_t version = kCkptFormatVersion + 1;
  std::memcpy(bytes.data() + 8, &version, sizeof(version));
  const std::uint32_t seal = crc32(bytes.data() + 8, 64);
  std::memcpy(bytes.data() + 4, &seal, sizeof(seal));
  ParsedCheckpoint parsed;
  EXPECT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kBadVersion);
}

TEST(CkptFormat, UnknownColumnSkippedOnApply) {
  const auto p = sample_particles(60, 6);
  auto cols = particle_columns(p);
  const std::vector<float> future(p.size(), 1.5f);
  cols.push_back(ColumnView{"entropy_fut", ColumnType::kF32, 4, future.data(),
                            p.size()});
  const auto bytes = encode_checkpoint(make_meta(p, 1, 256), cols);

  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.columns.size(), cols.size());

  // A reader that predates "entropy_fut" still restores everything else.
  Particles out;
  out.resize(p.size());
  ASSERT_TRUE(apply_chunks(parsed, bytes, particle_columns(out)));
  expect_same_particles(out, p);
}

TEST(CkptFormat, MismatchedDestinationFails) {
  const auto p = sample_particles(50, 7);
  const auto bytes = encode_checkpoint(make_meta(p, 1, 256),
                                       particle_columns(p));
  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kOk);
  Particles out;
  out.resize(40);  // wrong element count for a known column
  EXPECT_FALSE(apply_chunks(parsed, bytes, particle_columns(out)));
}

TEST(CkptFormat, DiffMaskCarriesOnlySelectedChunks) {
  auto p = sample_particles(200, 8);
  const auto old_x = p.x;
  // Mutate the elements covered by chunk 2 of "x" (64-byte chunks -> 16
  // floats per chunk), then encode a diff carrying exactly that chunk.
  for (std::size_t i = 32; i < 48; ++i) p.x[i] += 1.0f;

  auto meta = make_meta(p, 5, 64);
  meta.kind = CkptKind::kDiff;
  meta.base_step = 4;
  meta.chain_index = 1;
  const auto cols = const_cols(p);
  ChunkMask mask(cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto chunks = (cols[c].bytes() + 63) / 64;
    mask[c].assign(chunks, 0);
  }
  mask[1][2] = 1;  // column order: id, x, ...
  const auto bytes = encode_checkpoint(meta, cols, &mask);

  ParsedCheckpoint parsed;
  ASSERT_EQ(parse_checkpoint(bytes, parsed), ParseStatus::kOk);
  EXPECT_EQ(parsed.meta.kind, CkptKind::kDiff);
  EXPECT_EQ(parsed.meta.base_step, 4u);
  EXPECT_EQ(parsed.meta.chain_index, 1u);
  EXPECT_FALSE(is_complete(parsed));
  EXPECT_EQ(parsed.chunks_checked, 1u);
  ASSERT_EQ(parsed.columns[1].name, "x");
  ASSERT_EQ(parsed.columns[1].chunks.size(), 1u);
  EXPECT_EQ(parsed.columns[1].chunks[0].index, 2u);

  // Overlaying the diff onto the old state reproduces the new state.
  Particles out = p;
  out.x = old_x;
  ASSERT_TRUE(apply_chunks(parsed, bytes, particle_columns(out)));
  expect_same_particles(out, p);
}

// --- differential planner --------------------------------------------------

CkptConfig diff_config(std::size_t chunk_bytes = 256, int max_chain = 7) {
  CkptConfig config;
  config.diff = true;
  config.diff_max_chain = max_chain;
  config.chunk_bytes = chunk_bytes;
  return config;
}

TEST(CkptPlanner, FirstWriteFullThenQuiescentDiffsCarryNothing) {
  const auto p = sample_particles(500, 9);
  CkptDiffPlanner planner(diff_config());
  const auto cols = particle_columns(p);

  const auto first = planner.plan(1, cols);
  EXPECT_EQ(first.kind, CkptKind::kFull);
  EXPECT_EQ(first.chain_index, 0u);
  EXPECT_EQ(first.chain_root, 1u);
  EXPECT_EQ(first.chunks_written, first.chunks_total);
  EXPECT_GT(first.chunks_total, 0u);

  // Nothing moved: the diff carries zero chunks.
  const auto second = planner.plan(2, cols);
  EXPECT_EQ(second.kind, CkptKind::kDiff);
  EXPECT_EQ(second.base_step, 1u);
  EXPECT_EQ(second.chain_index, 1u);
  EXPECT_EQ(second.chain_root, 1u);
  EXPECT_EQ(second.chunks_written, 0u);
}

TEST(CkptPlanner, LocalizedMutationMarksOneChunk) {
  auto p = sample_particles(2000, 10);
  CkptDiffPlanner planner(diff_config(256));
  (void)planner.plan(1, const_cols(p));

  p.x[0] += 1.0f;  // one element -> one 256-byte chunk of one column
  const auto plan = planner.plan(2, const_cols(p));
  EXPECT_EQ(plan.kind, CkptKind::kDiff);
  EXPECT_EQ(plan.chunks_written, 1u);
  ASSERT_EQ(plan.mask.size(), const_cols(p).size());
  EXPECT_EQ(plan.mask[1][0], 1);  // x, chunk 0
  std::uint64_t set = 0;
  for (const auto& col : plan.mask) {
    for (const auto bit : col) set += bit;
  }
  EXPECT_EQ(set, 1u);
}

TEST(CkptPlanner, ChainBoundedByMaxChain) {
  auto p = sample_particles(300, 11);
  CkptDiffPlanner planner(diff_config(256, /*max_chain=*/2));
  std::vector<CkptKind> kinds;
  std::vector<std::uint64_t> roots;
  for (std::uint64_t step = 1; step <= 6; ++step) {
    p.x[step] += 0.5f;
    const auto plan = planner.plan(step, const_cols(p));
    kinds.push_back(plan.kind);
    roots.push_back(plan.chain_root);
  }
  const std::vector<CkptKind> expect{CkptKind::kFull, CkptKind::kDiff,
                                     CkptKind::kDiff, CkptKind::kFull,
                                     CkptKind::kDiff, CkptKind::kDiff};
  EXPECT_EQ(kinds, expect);
  EXPECT_EQ(roots, (std::vector<std::uint64_t>{1, 1, 1, 4, 4, 4}));
}

TEST(CkptPlanner, LayoutChangeForcesFull) {
  auto p = sample_particles(100, 12);
  CkptDiffPlanner planner(diff_config());
  (void)planner.plan(1, const_cols(p));
  p.push_back(1000, Species::kGas, 1, 2, 3, 0, 0, 0, 1);
  const auto plan = planner.plan(2, const_cols(p));
  EXPECT_EQ(plan.kind, CkptKind::kFull);
  EXPECT_EQ(plan.chain_root, 2u);
}

TEST(CkptPlanner, DiffDisabledAlwaysPlansFull) {
  const auto p = sample_particles(100, 13);
  CkptConfig config;  // diff off
  CkptDiffPlanner planner(config);
  for (std::uint64_t step = 1; step <= 3; ++step) {
    EXPECT_EQ(planner.plan(step, const_cols(p)).kind, CkptKind::kFull);
  }
}

TEST(CkptPlanner, ForcedFullResetsChain) {
  auto p = sample_particles(100, 14);
  CkptDiffPlanner planner(diff_config());
  (void)planner.plan(1, const_cols(p));
  p.x[0] += 1.0f;
  EXPECT_EQ(planner.plan(2, const_cols(p)).kind, CkptKind::kDiff);
  const auto forced = planner.plan_full(3, const_cols(p));
  EXPECT_EQ(forced.kind, CkptKind::kFull);
  EXPECT_EQ(forced.chain_index, 0u);
  p.x[1] += 1.0f;
  const auto next = planner.plan(4, const_cols(p));
  EXPECT_EQ(next.kind, CkptKind::kDiff);
  EXPECT_EQ(next.base_step, 3u);
  EXPECT_EQ(next.chain_root, 3u);
}

// --- multi-tier writer with differential chains ----------------------------

struct Tiers {
  TempDir dir;
  ThrottledStore nvme;
  ThrottledStore pfs;

  Tiers()
      : nvme(StoreConfig{dir.str() + "/nvme", 0.0, 0.0, false}),
        pfs(StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true}) {}
};

MultiTierConfig diff_writer_config(int window = 8, int max_chain = 7,
                                   bool redundant_local = false) {
  MultiTierConfig config;
  config.rank = 0;
  config.checkpoint_window = window;
  config.ckpt = diff_config(1024, max_chain);
  config.ckpt.redundant_local = redundant_local;
  return config;
}

void mutate_some(Particles& p, std::uint64_t salt) {
  for (std::size_t i = 0; i < 16 && i < p.size(); ++i) {
    p.x[i] += 0.25f * static_cast<float>(salt + 1);
    p.u[i] += 1.0f;
  }
}

TEST(MultiTierDiff, ChainRestoreBitwiseIdenticalToLiveState) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  auto p = sample_particles(600, 15, /*num_ghosts=*/20);
  for (std::uint64_t step = 1; step <= 3; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    meta.scale_factor = 0.1 * static_cast<double>(step);
    writer.write_checkpoint(meta, p);
  }
  writer.drain();

  const auto stats = writer.stats();
  EXPECT_EQ(stats.full_checkpoints, 1u);
  EXPECT_EQ(stats.diff_checkpoints, 2u);
  EXPECT_GT(stats.chunks_skipped, 0u);
  EXPECT_EQ(stats.longest_chain, 2u);

  EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, 3, 0));
  SnapshotMeta meta;
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 3, 0, meta, restored));
  EXPECT_EQ(meta.step, 3u);
  EXPECT_DOUBLE_EQ(meta.scale_factor, 0.3);
  expect_same_particles(restored, p);

  // Intermediate chain states restore too (diff of step 2 over the full).
  Particles mid;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 2, 0, meta, mid));
  EXPECT_EQ(meta.step, 2u);
}

TEST(MultiTierDiff, DiffWritesShrinkBytes) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  auto p = sample_particles(4000, 16);
  for (std::uint64_t step = 1; step <= 4; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  const auto records = writer.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_FALSE(records[0].diff);
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_TRUE(records[i].diff);
    EXPECT_LT(records[i].bytes * 4, records[0].bytes) << "step " << i + 1;
    EXPECT_LT(records[i].chunks_written, records[i].chunks_total);
  }
}

TEST(MultiTierDiff, PruneNeverDropsLiveChainAncestors) {
  // Retention window 2 with a 6-step chain rooted at step 1: window-only
  // pruning would delete the anchoring full (and middle diffs) that
  // steps 5 and 6 still replay through. Chain-aware pruning keeps them.
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(/*window=*/2, /*max_chain=*/10));
  auto p = sample_particles(600, 17);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  for (std::uint64_t step = 1; step <= 6; ++step) {
    EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(step, 0)))
        << "step " << step;
  }
  SnapshotMeta meta;
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 6, 0, meta, restored));
  expect_same_particles(restored, p);
}

TEST(MultiTierDiff, PruneDropsSupersededChains) {
  // max_chain 2 -> steps 1(F) 2(d) 3(d) 4(F) 5(d) 6(d). Window 2 retains
  // {5, 6}, whose chain roots at 4: steps 1-3 are dead and pruned, the
  // live root 4 survives even though it is outside the window.
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(/*window=*/2, /*max_chain=*/2));
  auto p = sample_particles(600, 18);
  for (std::uint64_t step = 1; step <= 6; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  for (std::uint64_t step = 1; step <= 3; ++step) {
    EXPECT_FALSE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(step, 0)))
        << "step " << step;
  }
  for (std::uint64_t step = 4; step <= 6; ++step) {
    EXPECT_TRUE(tiers.pfs.exists(MultiTierWriter::checkpoint_path(step, 0)))
        << "step " << step;
  }
  SnapshotMeta meta;
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 6, 0, meta, restored));
  expect_same_particles(restored, p);
}

TEST(MultiTierDiff, RedundantLocalKeptAfterBleed) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(8, 7, /*redundant_local=*/true));
  const auto p = sample_particles(300, 19);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();
  const auto rel = MultiTierWriter::checkpoint_path(1, 0);
  ASSERT_TRUE(tiers.pfs.exists(rel));
  ASSERT_TRUE(tiers.nvme.exists(rel));
  std::vector<std::uint8_t> local_bytes, pfs_bytes;
  ASSERT_TRUE(tiers.nvme.read(rel, local_bytes));
  ASSERT_TRUE(tiers.pfs.read(rel, pfs_bytes));
  EXPECT_EQ(local_bytes, pfs_bytes);
}

TEST(MultiTierDiff, VerifyWalksChainAndDiscoveryFallsBack) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  auto p = sample_particles(300, 20);
  for (std::uint64_t step = 1; step <= 3; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  ASSERT_EQ(latest_complete_checkpoint(tiers.pfs, 1), 3u);

  // Damage the middle diff: the tip's own file is pristine, but its
  // chain is not restorable, so neither step 2 nor 3 may be selected.
  tiers.pfs.remove(MultiTierWriter::checkpoint_path(2, 0));
  EXPECT_FALSE(verify_checkpoint_rank(tiers.pfs, 3, 0));
  EXPECT_FALSE(verify_checkpoint_rank(tiers.pfs, 2, 0));
  EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, 1, 0));
  ASSERT_EQ(latest_complete_checkpoint(tiers.pfs, 1), 1u);

  SnapshotMeta meta;
  Particles restored;
  EXPECT_FALSE(restore_checkpoint(tiers.pfs, 3, 0, meta, restored));
  EXPECT_TRUE(restore_checkpoint(tiers.pfs, 1, 0, meta, restored));
}

// --- offline audit / repair ------------------------------------------------

TEST(CkptAudit, CleanTreeIsClean) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  auto p = sample_particles(300, 21);
  for (std::uint64_t step = 1; step <= 2; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  const auto report = audit_checkpoints(tiers.pfs, CkptAuditOptions{});
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.files_ok, 2u);
  EXPECT_EQ(report.chains_checked, 1u);  // step 2 is a diff
  EXPECT_EQ(report.chains_broken, 0u);
  EXPECT_TRUE(report.clean());
  EXPECT_NE(report.summary().find("CLEAN"), std::string::npos);
}

TEST(CkptAudit, PinpointsEverySeededChunkCorruption) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  const auto p = sample_particles(2000, 22);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();

  const auto rel = MultiTierWriter::checkpoint_path(1, 0);
  std::vector<std::uint8_t> bytes;
  ASSERT_TRUE(tiers.pfs.read(rel, bytes));
  struct Hit {
    std::string column;
    std::uint32_t chunk;
  };
  const std::vector<Hit> hits{{"x", 0}, {"vy", 3}, {"bin", 0}};
  for (const Hit& hit : hits) {
    bytes[chunk_offset(bytes, hit.column, hit.chunk) + 1] ^= 0x40;
  }
  tiers.pfs.write(rel, bytes);

  const auto report = audit_checkpoints(tiers.pfs, CkptAuditOptions{});
  EXPECT_EQ(report.files_damaged, 1u);
  EXPECT_EQ(report.chunks_damaged, hits.size());
  EXPECT_FALSE(report.clean());
  ASSERT_EQ(report.damage.size(), hits.size());
  for (const Hit& hit : hits) {
    const bool found = std::any_of(
        report.damage.begin(), report.damage.end(), [&](const CkptDamage& d) {
          return d.step == 1 && d.rank == 0 && d.column == hit.column &&
                 d.chunk == hit.chunk && !d.repaired &&
                 d.reason == "chunk CRC mismatch";
        });
    EXPECT_TRUE(found) << hit.column << "[" << hit.chunk << "]";
  }
}

TEST(CkptAudit, RepairsChunksFromRedundantTier) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(8, 7, /*redundant_local=*/true));
  const auto p = sample_particles(2000, 23);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();

  const auto rel = MultiTierWriter::checkpoint_path(1, 0);
  std::vector<std::uint8_t> pristine;
  ASSERT_TRUE(tiers.pfs.read(rel, pristine));
  auto bytes = pristine;
  bytes[chunk_offset(pristine, "u", 1) + 2] ^= 0x08;  // CRC damage...
  bytes.resize(bytes.size() - 700);                   // ...plus a torn tail
  tiers.pfs.write(rel, bytes);

  CkptAuditOptions options;
  options.repair = true;
  const auto report =
      audit_checkpoints(tiers.pfs, options, {&tiers.nvme});
  EXPECT_GT(report.chunks_damaged, 1u);
  EXPECT_EQ(report.chunks_repaired, report.chunks_damaged);
  EXPECT_EQ(report.files_repaired, 1u);
  EXPECT_TRUE(report.clean());
  bool saw_torn = false, saw_crc = false;
  for (const CkptDamage& d : report.damage) {
    EXPECT_TRUE(d.repaired);
    saw_torn |= d.reason == "chunk truncated (torn write)";
    saw_crc |= d.reason == "chunk CRC mismatch";
  }
  EXPECT_TRUE(saw_torn);
  EXPECT_TRUE(saw_crc);

  // The healed file is bitwise the one the writer bled, and restores.
  std::vector<std::uint8_t> healed;
  ASSERT_TRUE(tiers.pfs.read(rel, healed));
  EXPECT_EQ(healed, pristine);
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 1, 0, meta, restored));
  expect_same_particles(restored, p);
}

TEST(CkptAudit, RestampsLostMarkerFromProvablyIntactPayload) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  const auto p = sample_particles(300, 24);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();
  tiers.pfs.remove(MultiTierWriter::marker_path(1, 0));
  EXPECT_FALSE(verify_checkpoint_rank(tiers.pfs, 1, 0));

  CkptAuditOptions options;
  options.repair = true;
  const auto report = audit_checkpoints(tiers.pfs, options);
  EXPECT_EQ(report.files_repaired, 1u);
  EXPECT_TRUE(report.clean());
  ASSERT_EQ(report.damage.size(), 1u);
  EXPECT_EQ(report.damage[0].column, "<marker>");
  EXPECT_TRUE(verify_checkpoint_rank(tiers.pfs, 1, 0));
}

TEST(CkptAudit, ReplacesMissingPayloadFromSource) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(8, 7, /*redundant_local=*/true));
  const auto p = sample_particles(300, 25);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();
  tiers.pfs.remove(MultiTierWriter::checkpoint_path(1, 0));

  CkptAuditOptions options;
  options.repair = true;
  const auto report = audit_checkpoints(tiers.pfs, options, {&tiers.nvme});
  EXPECT_EQ(report.files_damaged, 1u);
  EXPECT_EQ(report.files_repaired, 1u);
  EXPECT_TRUE(report.clean());
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 1, 0, meta, restored));
  expect_same_particles(restored, p);
}

TEST(CkptAudit, FlagsBrokenDiffChains) {
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs, diff_writer_config());
  auto p = sample_particles(300, 26);
  for (std::uint64_t step = 1; step <= 2; ++step) {
    if (step > 1) mutate_some(p, step);
    SnapshotMeta meta;
    meta.step = step;
    writer.write_checkpoint(meta, p);
  }
  writer.drain();
  tiers.pfs.remove(MultiTierWriter::checkpoint_path(1, 0));
  tiers.pfs.remove(MultiTierWriter::marker_path(1, 0));

  const auto report = audit_checkpoints(tiers.pfs, CkptAuditOptions{});
  EXPECT_EQ(report.chains_broken, 1u);
  EXPECT_FALSE(report.clean());
  const bool found = std::any_of(
      report.damage.begin(), report.damage.end(), [](const CkptDamage& d) {
        return d.step == 2 && d.column == "<chain>";
      });
  EXPECT_TRUE(found);
}

TEST(CkptAudit, SeededStorageFaultsRepairedFromLocalTier) {
  // PR-1 FaultPolicy faults, driven through a fault-armed handle onto
  // the same PFS root: a guaranteed silent torn write clobbers the
  // checkpoint at rest; the audit heals it from the redundant copy.
  Tiers tiers;
  MultiTierWriter writer(tiers.nvme, tiers.pfs,
                         diff_writer_config(8, 7, /*redundant_local=*/true));
  const auto p = sample_particles(2000, 27);
  SnapshotMeta meta;
  meta.step = 1;
  writer.write_checkpoint(meta, p);
  writer.drain();

  const auto rel = MultiTierWriter::checkpoint_path(1, 0);
  std::vector<std::uint8_t> pristine;
  ASSERT_TRUE(tiers.pfs.read(rel, pristine));
  ThrottledStore faulty(
      StoreConfig{tiers.dir.str() + "/pfs", 0.0, 0.0, false});
  FaultPolicy policy;
  policy.seed = 5;
  policy.torn_write = 1.0;
  faulty.set_fault_policy(policy);
  faulty.write(rel, pristine);  // reports success, lands a torn prefix
  std::vector<std::uint8_t> on_disk;
  ASSERT_TRUE(tiers.pfs.read(rel, on_disk));
  ASSERT_LT(on_disk.size(), pristine.size());

  CkptAuditOptions options;
  options.repair = true;
  const auto report = audit_checkpoints(tiers.pfs, options, {&tiers.nvme});
  EXPECT_TRUE(report.clean());
  EXPECT_GT(report.chunks_repaired + report.files_repaired, 0u);
  Particles restored;
  ASSERT_TRUE(restore_checkpoint(tiers.pfs, 1, 0, meta, restored));
  expect_same_particles(restored, p);
}

}  // namespace
}  // namespace crkhacc::io

// --- simulation-level integration ------------------------------------------

namespace crkhacc::core {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.np = 8;
  config.box = 24.0;
  config.ng = 16;
  config.z_init = 20.0;
  config.z_final = 5.0;
  config.num_pm_steps = 3;
  config.hydro = false;
  config.subgrid_on = false;
  config.bins.max_depth = 4;
  config.seed = 99;
  return config;
}

class ScriptedFault : public io::FaultInjector {
 public:
  explicit ScriptedFault(std::vector<std::uint64_t> fail_trials)
      : io::FaultInjector(0.0, 0), fail_trials_(std::move(fail_trials)) {}

  bool should_fail(std::uint64_t trial, double /*dt*/) const override {
    return std::find(fail_trials_.begin(), fail_trials_.end(), trial) !=
           fail_trials_.end();
  }

 private:
  std::vector<std::uint64_t> fail_trials_;
};

void expect_same_state(const Particles& got, const Particles& expect) {
  ASSERT_EQ(got.size(), expect.size());
  EXPECT_EQ(got.id, expect.id);
  EXPECT_EQ(got.x, expect.x);
  EXPECT_EQ(got.y, expect.y);
  EXPECT_EQ(got.z, expect.z);
  EXPECT_EQ(got.vx, expect.vx);
  EXPECT_EQ(got.vy, expect.vy);
  EXPECT_EQ(got.vz, expect.vz);
  EXPECT_EQ(got.u, expect.u);
  EXPECT_EQ(got.rho, expect.rho);
}

TEST(SimulationCkpt, DiffChainRecoveryBitwiseMatchesFaultFreeRun) {
  // A campaign checkpointing differentially, interrupted and recovered
  // from a diff-chain tip, must finish bitwise identical to a fault-free
  // run — at every thread count.
  const int num_ranks = 2;
  for (const int threads : {1, 8}) {
    io::TempDir dir;
    comm::World world(num_ranks);
    auto config = tiny_config();
    config.threads = threads;
    config.ckpt.diff = true;

    std::vector<Particles> reference(num_ranks);
    world.run([&](comm::Communicator& comm) {
      SimContext ctx(config.threads);
      Simulation sim(ctx, comm, config);
      sim.initialize();
      const auto result = sim.run();
      ASSERT_TRUE(result.completed);
      reference[static_cast<std::size_t>(comm.rank())] = sim.particles();
    });

    io::ThrottledStore pfs(
        io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
    std::vector<std::unique_ptr<io::ThrottledStore>> nvmes;
    for (int r = 0; r < num_ranks; ++r) {
      nvmes.push_back(std::make_unique<io::ThrottledStore>(io::StoreConfig{
          dir.str() + "/nvme" + std::to_string(r), 0.0, 0.0, false}));
    }
    world.run([&](comm::Communicator& comm) {
      io::MultiTierConfig writer_config;
      writer_config.rank = comm.rank();
      writer_config.checkpoint_window = 8;
      writer_config.ckpt = config.ckpt;
      io::MultiTierWriter writer(
          *nvmes[static_cast<std::size_t>(comm.rank())], pfs, writer_config);
      SimContext ctx(config.threads);
      Simulation sim(ctx, comm, config);
      sim.initialize();
      // Steps 1 (full) and 2 (diff) checkpoint, then an interrupt forces
      // recovery from the diff tip at step 2.
      sim.step(&writer);
      sim.step(&writer);
      writer.drain();
      comm.barrier();

      const auto stats = writer.stats();
      EXPECT_GE(stats.full_checkpoints, 1u);
      EXPECT_GE(stats.diff_checkpoints, 1u);

      const ScriptedFault fault({0});
      auto result = sim.run(&writer, &pfs, &fault);
      EXPECT_TRUE(result.completed);
      EXPECT_EQ(result.interruptions, 1u);
      EXPECT_EQ(result.checkpoint_fallbacks, 0u);
      EXPECT_EQ(result.restarts_from_ics, 0u);

      expect_same_state(sim.particles(),
                        reference[static_cast<std::size_t>(comm.rank())]);
      writer.drain();
      comm.barrier();
    });
  }
}

TEST(SimulationCkpt, AuditOnRestoreRepairsDamageAndKeepsNewestStep) {
  // A payload chunk of the newest checkpoint is flipped at rest. Without
  // the audit the restore would fall back one step; with
  // ckpt_audit_on_restore the damage is healed from the redundant local
  // copy first and the newest step restores intact.
  io::TempDir dir;
  comm::World world(1);
  io::ThrottledStore pfs(io::StoreConfig{dir.str() + "/pfs", 0.0, 0.0, true});
  io::ThrottledStore nvme(
      io::StoreConfig{dir.str() + "/nvme", 0.0, 0.0, false});
  world.run([&](comm::Communicator& comm) {
    auto config = tiny_config();
    config.ckpt.audit_on_restore = true;
    config.ckpt.redundant_local = true;
    io::MultiTierConfig writer_config;
    writer_config.rank = 0;
    writer_config.checkpoint_window = 8;
    writer_config.ckpt = config.ckpt;
    io::MultiTierWriter writer(nvme, pfs, writer_config);
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.step(&writer);
    sim.step(&writer);
    writer.drain();

    // Flip one byte inside a payload chunk of step 2's file.
    const auto rel = io::MultiTierWriter::checkpoint_path(2, 0);
    std::vector<std::uint8_t> bytes;
    ASSERT_TRUE(pfs.read(rel, bytes));
    io::ParsedCheckpoint parsed;
    ASSERT_EQ(io::parse_checkpoint(bytes, parsed), io::ParseStatus::kOk);
    ASSERT_FALSE(parsed.columns.empty());
    ASSERT_FALSE(parsed.columns[1].chunks.empty());
    bytes[parsed.columns[1].chunks[0].offset] ^= 0x04;
    pfs.write(rel, bytes);

    RunResult probe;
    sim.recover(pfs, probe, &writer);
    EXPECT_EQ(probe.ckpt_audit_runs, 1u);
    EXPECT_GE(probe.ckpt_audit_damaged_chunks, 1u);
    EXPECT_EQ(probe.ckpt_audit_repaired_chunks,
              probe.ckpt_audit_damaged_chunks);
    EXPECT_EQ(probe.recovery_attempts, 1u);
    EXPECT_EQ(probe.checkpoint_fallbacks, 0u);
    EXPECT_EQ(sim.current_step(), 2u);
  });
}

}  // namespace
}  // namespace crkhacc::core
