// Intra-node thread scaling of the short-range pipeline.
//
// The paper's node-level claim (Section IV): once the overloaded
// decomposition makes all short-range work node-local, it parallelizes
// across the device's compute lanes without changing the answer. This
// bench runs the identical one-rank hydro problem at 1..8 pool threads
// and reports, per thread count:
//
//   * wall time of the threaded phases (tree build + short-range),
//   * per-thread busy time from the pool's scheduler accounting, giving
//     the decomposition's critical path and the utilization/steal counts,
//   * a particle-state checksum proving bitwise identity across counts.
//
// Note on the substitute machine: like fig4_scaling, all workers share
// one physical core, so ideal scaling cannot appear in wall time. The
// figure of merit is the CRITICAL-PATH speedup: per-chunk busy time is
// measured with the thread CPU clock (so time-slice waits don't count),
// and the projected time on dedicated lanes is the serial remainder
// (serial wall minus the CPU work that moved into parallel regions)
// plus the longest worker lane. Emits a fig4-style JSON for plotting.
#include <cstdio>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"
#include "util/crc32.h"
#include "util/thread_pool.h"

using namespace crkhacc;

namespace {

struct ThreadPoint {
  unsigned threads;
  double wall_seconds = 0.0;      ///< tree build + short range wall time
  double total_seconds = 0.0;     ///< full run wall time
  double busy_total = 0.0;        ///< summed worker busy seconds
  double critical_path = 0.0;     ///< longest per-worker busy time
  double region_wall = 0.0;       ///< wall time inside parallel regions
  double utilization = 0.0;
  std::uint64_t steals = 0;
  std::uint64_t regions = 0;
  std::uint32_t checksum = 0;     ///< particle-state CRC (determinism)
};

ThreadPoint run_case(unsigned threads, const core::SimConfig& base) {
  ThreadPoint point;
  point.threads = threads;
  core::SimConfig config = base;
  config.threads = static_cast<int>(threads);
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    Stopwatch total;
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    for (int s = 0; s < config.num_pm_steps; ++s) sim.step();
    point.total_seconds = total.seconds();
    point.wall_seconds = sim.timers().total(timers::kShortRange) +
                         sim.timers().total(timers::kTreeBuild);
    const auto& stats = sim.thread_pool().stats();
    for (double b : stats.busy_seconds) point.busy_total += b;
    point.critical_path = stats.critical_path_seconds();
    point.region_wall = stats.wall_seconds;
    point.utilization = stats.utilization();
    point.steals = stats.steals;
    point.regions = stats.parallel_regions;

    const auto& p = sim.particles();
    std::uint32_t crc = 0;
    crc = crc32(p.x.data(), p.x.size() * sizeof(float), crc);
    crc = crc32(p.y.data(), p.y.size() * sizeof(float), crc);
    crc = crc32(p.z.data(), p.z.size() * sizeof(float), crc);
    crc = crc32(p.vx.data(), p.vx.size() * sizeof(float), crc);
    crc = crc32(p.u.data(), p.u.size() * sizeof(float), crc);
    point.checksum = crc;
  });
  return point;
}

}  // namespace

int main() {
  const std::vector<unsigned> thread_counts = {1, 2, 4, 8};
  auto config = bench::scaled_config(1, 10, /*hydro=*/true);

  bench::print_header(
      "Intra-node thread scaling — short-range pipeline (1 rank, hydro)");
  std::printf("%-8s %-11s %-11s %-11s %-12s %-8s %-10s %-10s\n", "threads",
              "solver[s]", "busy[s]", "critical[s]", "cp-speedup", "util",
              "steals", "checksum");
  bench::print_rule();

  std::vector<ThreadPoint> points;
  for (unsigned t : thread_counts) points.push_back(run_case(t, config));

  // Serial reference: with threads=1 every caller takes the inline path,
  // so the phase wall time IS the serial work.
  const double serial_work = points.front().wall_seconds;
  for (const auto& pt : points) {
    // Critical-path speedup: the serial remainder (serial wall minus the
    // CPU work the pool absorbed into parallel regions) plus the longest
    // worker lane, vs all-serial execution. The remainder comes from the
    // SERIAL run so single-core oversubscription overhead in the threaded
    // runs' wall time does not leak into the projection.
    const double remainder = serial_work - pt.busy_total;
    const double cp_time = pt.threads == 1
                               ? serial_work
                               : std::max(remainder, 0.0) + pt.critical_path;
    const double cp_speedup = cp_time > 0.0 ? serial_work / cp_time : 1.0;
    std::printf("%-8u %-11.2f %-11.2f %-11.2f %-12.2fx %-8.2f %-10llu "
                "%08x\n",
                pt.threads, pt.wall_seconds, pt.busy_total, pt.critical_path,
                cp_speedup, pt.utilization,
                static_cast<unsigned long long>(pt.steals), pt.checksum);
  }

  bool deterministic = true;
  for (const auto& pt : points) {
    deterministic = deterministic && pt.checksum == points.front().checksum;
  }
  std::printf("\nbitwise determinism across thread counts: %s\n",
              deterministic ? "PASS (all checksums equal)" : "FAIL");
  std::printf("(all workers share one physical core here, so wall time "
              "cannot drop; busy time is thread-CPU time, and cp-speedup\n"
              " is the wall-time speedup the same fixed-chunk decomposition "
              "yields on dedicated lanes: serial remainder + longest worker\n"
              " lane vs all-serial.)\n\n");

  // fig4-style JSON for plotting.
  std::printf("JSON: {\"bench\": \"thread_scaling\", \"points\": [");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& pt = points[i];
    const double remainder = serial_work - pt.busy_total;
    const double cp_time = pt.threads == 1
                               ? serial_work
                               : std::max(remainder, 0.0) + pt.critical_path;
    std::printf(
        "%s{\"threads\": %u, \"solver_seconds\": %.6f, "
        "\"busy_seconds\": %.6f, \"critical_path_seconds\": %.6f, "
        "\"cp_speedup\": %.4f, \"utilization\": %.4f, \"steals\": %llu, "
        "\"parallel_regions\": %llu, \"checksum\": \"%08x\"}",
        i ? ", " : "", pt.threads, pt.wall_seconds, pt.busy_total,
        pt.critical_path, cp_time > 0.0 ? serial_work / cp_time : 1.0,
        pt.utilization, static_cast<unsigned long long>(pt.steals),
        static_cast<unsigned long long>(pt.regions), pt.checksum);
  }
  std::printf("]}\n");
  return deterministic ? 0 : 1;
}
