#include "tree/lbvh.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/assertions.h"
#include "util/morton.h"

namespace crkhacc::tree {

Bvh::Bvh(std::span<const float> x, std::span<const float> y,
         std::span<const float> z, std::uint32_t leaf_size)
    : count_(x.size()), leaf_size_(std::max<std::uint32_t>(1, leaf_size)) {
  CHECK(y.size() == count_ && z.size() == count_);
  if (count_ == 0) return;

  // Bounding box of the point set for Morton quantization.
  float lo[3], hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = std::numeric_limits<float>::max();
    hi[d] = std::numeric_limits<float>::lowest();
  }
  for (std::size_t i = 0; i < count_; ++i) {
    lo[0] = std::min(lo[0], x[i]); hi[0] = std::max(hi[0], x[i]);
    lo[1] = std::min(lo[1], y[i]); hi[1] = std::max(hi[1], y[i]);
    lo[2] = std::min(lo[2], z[i]); hi[2] = std::max(hi[2], z[i]);
  }
  const double span[3] = {std::max(1e-30, static_cast<double>(hi[0]) - lo[0]),
                          std::max(1e-30, static_cast<double>(hi[1]) - lo[1]),
                          std::max(1e-30, static_cast<double>(hi[2]) - lo[2])};

  std::vector<std::uint64_t> codes(count_);
  std::vector<std::uint32_t> order(count_);
  std::iota(order.begin(), order.end(), 0u);
  for (std::size_t i = 0; i < count_; ++i) {
    const auto qx = quantize21((x[i] - lo[0]) / span[0], 1.0000001);
    const auto qy = quantize21((y[i] - lo[1]) / span[1], 1.0000001);
    const auto qz = quantize21((z[i] - lo[2]) / span[2], 1.0000001);
    codes[i] = morton3d(qx, qy, qz);
  }
  std::sort(order.begin(), order.end(), [&codes](std::uint32_t a, std::uint32_t b) {
    return codes[a] < codes[b];
  });

  px_.resize(count_); py_.resize(count_); pz_.resize(count_);
  index_.resize(count_);
  for (std::size_t s = 0; s < count_; ++s) {
    const std::uint32_t i = order[s];
    px_[s] = x[i]; py_[s] = y[i]; pz_[s] = z[i];
    index_[s] = i;
  }
  nodes_.reserve(2 * count_ / leaf_size_ + 2);
  nodes_.emplace_back();  // root placeholder at index 0
  const std::uint32_t root = build_range(0, static_cast<std::uint32_t>(count_));
  CHECK(root == 0);
}

std::uint32_t Bvh::build_range(std::uint32_t begin, std::uint32_t end) {
  const auto my_index = begin == 0 && end == count_
                            ? 0u
                            : static_cast<std::uint32_t>(nodes_.size());
  if (my_index != 0) nodes_.emplace_back();

  Node node;
  for (int d = 0; d < 3; ++d) {
    node.lo[d] = std::numeric_limits<float>::max();
    node.hi[d] = std::numeric_limits<float>::lowest();
  }
  if (end - begin <= leaf_size_) {
    node.begin = begin;
    node.end = end;
    for (std::uint32_t s = begin; s < end; ++s) {
      node.lo[0] = std::min(node.lo[0], px_[s]); node.hi[0] = std::max(node.hi[0], px_[s]);
      node.lo[1] = std::min(node.lo[1], py_[s]); node.hi[1] = std::max(node.hi[1], py_[s]);
      node.lo[2] = std::min(node.lo[2], pz_[s]); node.hi[2] = std::max(node.hi[2], pz_[s]);
    }
    nodes_[my_index] = node;
    return my_index;
  }
  const std::uint32_t mid = begin + (end - begin) / 2;
  const std::uint32_t left = build_range(begin, mid);
  const std::uint32_t right = build_range(mid, end);
  node.left = left;
  node.right = right;
  for (int d = 0; d < 3; ++d) {
    node.lo[d] = std::min(nodes_[left].lo[d], nodes_[right].lo[d]);
    node.hi[d] = std::max(nodes_[left].hi[d], nodes_[right].hi[d]);
  }
  nodes_[my_index] = node;
  return my_index;
}

float Bvh::aabb_point_distance_sq(const Node& node, float x, float y, float z) {
  float d2 = 0.f;
  const float p[3] = {x, y, z};
  for (int d = 0; d < 3; ++d) {
    const float gap = std::max({0.f, node.lo[d] - p[d], p[d] - node.hi[d]});
    d2 += gap * gap;
  }
  return d2;
}

}  // namespace crkhacc::tree
