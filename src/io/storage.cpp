#include "io/storage.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/assertions.h"

namespace crkhacc::io {
namespace {

namespace fs = std::filesystem;

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ThrottledStore::ThrottledStore(const StoreConfig& config) : config_(config) {
  CHECK(!config.root.empty());
  fs::create_directories(config.root);
}

std::string ThrottledStore::full_path(const std::string& rel_path) const {
  return (fs::path(config_.root) / rel_path).string();
}

double ThrottledStore::occupy_channel(std::uint64_t bytes,
                                      double already_spent) {
  if (config_.bandwidth_bytes_per_s <= 0.0 && config_.latency_s <= 0.0) {
    return 0.0;
  }
  const double service = std::max(
      0.0, config_.latency_s +
               (config_.bandwidth_bytes_per_s > 0.0
                    ? static_cast<double>(bytes) / config_.bandwidth_bytes_per_s
                    : 0.0) -
               already_spent);
  double wait_until;
  if (config_.shared_channel) {
    std::lock_guard<std::mutex> lock(channel_mutex_);
    const double now = monotonic_seconds();
    const double start = std::max(now, channel_available_at_);
    channel_available_at_ = start + service;
    wait_until = channel_available_at_;
  } else {
    wait_until = monotonic_seconds() + service;
  }
  const double now = monotonic_seconds();
  if (wait_until > now) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait_until - now));
  }
  return service;
}

void ThrottledStore::set_fault_policy(const FaultPolicy& policy) {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  fault_policy_ = policy;
}

bool ThrottledStore::tier_failed() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return tier_failed_;
}

void ThrottledStore::reset_tier() {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  tier_failed_ = false;
}

FaultStats ThrottledStore::fault_stats() const {
  std::lock_guard<std::mutex> lock(fault_mutex_);
  return fault_stats_;
}

ThrottledStore::Fault ThrottledStore::draw_fault(std::uint64_t op) {
  // One uniform draw per op, partitioned into fault bands. Counter-based,
  // so the schedule is a pure function of (seed, op index).
  const CounterRng rng(fault_policy_.seed, /*stream=*/0x51F0);
  const double u = rng.uniform(op);
  double edge = fault_policy_.transient_eio;
  if (u < edge) return Fault::kEio;
  edge += fault_policy_.enospc;
  if (u < edge) return Fault::kEnospc;
  edge += fault_policy_.torn_write;
  if (u < edge) return Fault::kTorn;
  edge += fault_policy_.bit_flip;
  if (u < edge) return Fault::kBitFlip;
  return Fault::kNone;
}

double ThrottledStore::write(const std::string& rel_path,
                             const std::vector<std::uint8_t>& data) {
  const auto outcome = try_write(rel_path, data);
  CHECK_MSG(outcome.status == IoStatus::kOk, "store write failed");
  return outcome.seconds;
}

WriteOutcome ThrottledStore::try_write(const std::string& rel_path,
                                       const std::vector<std::uint8_t>& data) {
  const double start = monotonic_seconds();

  Fault fault = Fault::kNone;
  std::uint64_t op = 0;
  {
    std::lock_guard<std::mutex> lock(fault_mutex_);
    if (tier_failed_) {
      ++fault_stats_.enospc_errors;
      return WriteOutcome{IoStatus::kNoSpace, monotonic_seconds() - start};
    }
    op = write_ops_;
    if (fault_policy_.any()) {
      fault = draw_fault(op);
      switch (fault) {
        case Fault::kEio: ++fault_stats_.eio_errors; break;
        case Fault::kEnospc:
          ++fault_stats_.enospc_errors;
          tier_failed_ = true;
          break;
        case Fault::kTorn: ++fault_stats_.torn_writes; break;
        case Fault::kBitFlip: ++fault_stats_.bit_flips; break;
        case Fault::kNone: break;
      }
    }
    ++write_ops_;
  }
  if (fault == Fault::kEio || fault == Fault::kEnospc) {
    // Reported errors leave no partial file behind; the device rejected
    // the operation up front. Only the setup latency is charged.
    occupy_channel(0, monotonic_seconds() - start);
    return WriteOutcome{fault == Fault::kEio ? IoStatus::kTransientError
                                             : IoStatus::kNoSpace,
                        monotonic_seconds() - start};
  }

  // Silent faults mutate the bytes that actually land on disk.
  std::size_t write_size = data.size();
  std::vector<std::uint8_t> flipped;
  const std::uint8_t* payload = data.data();
  if (fault == Fault::kTorn && !data.empty()) {
    // Deterministic torn fraction in [0, 90%) of the payload.
    const CounterRng params(fault_policy_.seed, /*stream=*/0x7EA2);
    write_size = static_cast<std::size_t>(
        0.9 * params.uniform(op) * static_cast<double>(data.size()));
  } else if (fault == Fault::kBitFlip && !data.empty()) {
    const CounterRng params(fault_policy_.seed, /*stream=*/0x7EA2);
    flipped = data;
    const std::uint64_t bit = params.u64(op) % (flipped.size() * 8);
    flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    payload = flipped.data();
  }

  const auto path = fs::path(full_path(rel_path));
  fs::create_directories(path.parent_path());
  {
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    CHECK_MSG(static_cast<bool>(file), "cannot open store file for write");
    file.write(reinterpret_cast<const char*>(payload),
               static_cast<std::streamsize>(write_size));
    CHECK_MSG(static_cast<bool>(file), "store write failed");
  }
  occupy_channel(write_size, monotonic_seconds() - start);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    bytes_written_ += write_size;
  }
  return WriteOutcome{IoStatus::kOk, monotonic_seconds() - start};
}

bool ThrottledStore::read(const std::string& rel_path,
                          std::vector<std::uint8_t>& out) {
  const double start = monotonic_seconds();
  std::ifstream file(full_path(rel_path), std::ios::binary | std::ios::ate);
  if (!file) return false;
  const auto size = static_cast<std::size_t>(file.tellg());
  file.seekg(0);
  out.resize(size);
  file.read(reinterpret_cast<char*>(out.data()),
            static_cast<std::streamsize>(size));
  if (!file) return false;
  occupy_channel(size, monotonic_seconds() - start);
  return true;
}

double ThrottledStore::ingest(ThrottledStore& from,
                              const std::string& rel_path) {
  const double start = monotonic_seconds();
  const auto src = fs::path(from.full_path(rel_path));
  if (!fs::exists(src)) return 0.0;
  const auto dst = fs::path(full_path(rel_path));
  fs::create_directories(dst.parent_path());
  const auto size = static_cast<std::uint64_t>(fs::file_size(src));
  fs::rename(src, dst);  // the low-level OS move
  occupy_channel(size, monotonic_seconds() - start);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    bytes_written_ += size;
  }
  return monotonic_seconds() - start;
}

bool ThrottledStore::exists(const std::string& rel_path) const {
  return fs::exists(full_path(rel_path));
}

void ThrottledStore::remove(const std::string& rel_path) {
  std::error_code ec;
  fs::remove(full_path(rel_path), ec);
}

std::vector<std::string> ThrottledStore::list(const std::string& rel_dir) const {
  std::vector<std::string> out;
  const auto dir = fs::path(config_.root) / rel_dir;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      out.push_back(entry.path().filename().string());
    }
  }
  return out;
}

}  // namespace crkhacc::io
