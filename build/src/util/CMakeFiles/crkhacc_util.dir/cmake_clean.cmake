file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_util.dir/crc32.cpp.o"
  "CMakeFiles/crkhacc_util.dir/crc32.cpp.o.d"
  "CMakeFiles/crkhacc_util.dir/histogram.cpp.o"
  "CMakeFiles/crkhacc_util.dir/histogram.cpp.o.d"
  "CMakeFiles/crkhacc_util.dir/log.cpp.o"
  "CMakeFiles/crkhacc_util.dir/log.cpp.o.d"
  "CMakeFiles/crkhacc_util.dir/morton.cpp.o"
  "CMakeFiles/crkhacc_util.dir/morton.cpp.o.d"
  "CMakeFiles/crkhacc_util.dir/timer.cpp.o"
  "CMakeFiles/crkhacc_util.dir/timer.cpp.o.d"
  "libcrkhacc_util.a"
  "libcrkhacc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
