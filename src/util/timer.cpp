#include "util/timer.h"

#include <algorithm>

namespace crkhacc {

void TimerRegistry::add(const std::string& name, double seconds) {
  timers_[name] += seconds;
}

double TimerRegistry::total(const std::string& name) const {
  auto it = timers_.find(name);
  return it == timers_.end() ? 0.0 : it->second;
}

double TimerRegistry::grand_total() const {
  double sum = 0.0;
  for (const auto& [name, seconds] : timers_) sum += seconds;
  return sum;
}

double TimerRegistry::fraction(const std::string& name) const {
  const double total_seconds = grand_total();
  if (total_seconds <= 0.0) return 0.0;
  return total(name) / total_seconds;
}

std::vector<std::pair<std::string, double>> TimerRegistry::sorted() const {
  std::vector<std::pair<std::string, double>> out(timers_.begin(), timers_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  return out;
}

void TimerRegistry::merge(const TimerRegistry& other) {
  for (const auto& [name, seconds] : other.timers_) timers_[name] += seconds;
}

ScopedTimer::~ScopedTimer() { registry_.add(name_, watch_.seconds()); }

}  // namespace crkhacc
