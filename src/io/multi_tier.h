// Multi-tiered checkpoint writer (Section IV-B4).
//
// Per rank: synchronized writes go to the node-local tier (NVMe); a
// background bleeder thread then moves completed files to the PFS tier
// and stamps a completion marker, while a pruning pass removes
// checkpoints older than the retention window on both tiers. The
// simulation thread only ever blocks on the fast local write — the PFS
// never sits on the critical path, which is how the paper sustains an
// effective bandwidth above Orion's direct-write peak.
//
// write_checkpoint_direct() is the baseline: a synchronous write straight
// to the shared PFS, blocking the simulation for the full channel time.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/particles.h"
#include "io/generic_io.h"
#include "io/storage.h"

namespace crkhacc::io {

struct MultiTierConfig {
  int rank = 0;
  int checkpoint_window = 2;  ///< keep this many most-recent steps
};

/// One checkpoint's accounting.
struct IoRecord {
  std::uint64_t step = 0;
  std::uint64_t bytes = 0;
  double local_seconds = 0.0;  ///< simulation-blocking time
  double pfs_seconds = 0.0;    ///< asynchronous bleed time
  bool bled = false;
};

class MultiTierWriter {
 public:
  MultiTierWriter(ThrottledStore& local, ThrottledStore& pfs,
                  const MultiTierConfig& config);
  ~MultiTierWriter();

  MultiTierWriter(const MultiTierWriter&) = delete;
  MultiTierWriter& operator=(const MultiTierWriter&) = delete;

  /// Multi-tier path: blocking local write + queued async bleed.
  /// Returns the seconds the simulation was blocked.
  double write_checkpoint(const SnapshotMeta& meta, const Particles& particles);

  /// Baseline: synchronous write directly to the PFS (blocks for the
  /// full shared-channel service time).
  double write_checkpoint_direct(const SnapshotMeta& meta,
                                 const Particles& particles);

  /// Block until every queued bleed and prune has completed.
  void drain();

  /// Accounting snapshot (drain() first for settled pfs numbers).
  std::vector<IoRecord> records() const;

  std::uint64_t bytes_written() const;

  static std::string checkpoint_path(std::uint64_t step, int rank);
  static std::string marker_path(std::uint64_t step, int rank);

 private:
  void worker_loop();
  void prune(std::uint64_t newest_step);

  ThrottledStore& local_;
  ThrottledStore& pfs_;
  MultiTierConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;  ///< steps awaiting bleed
  std::vector<IoRecord> records_;
  bool stopping_ = false;
  std::size_t in_flight_ = 0;
  std::thread worker_;
};

}  // namespace crkhacc::io
