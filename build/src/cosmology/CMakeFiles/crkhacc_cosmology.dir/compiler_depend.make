# Empty compiler generated dependencies file for crkhacc_cosmology.
# This may be replaced when dependencies are built.
