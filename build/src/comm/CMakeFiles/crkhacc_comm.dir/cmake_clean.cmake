file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_comm.dir/decomposition.cpp.o"
  "CMakeFiles/crkhacc_comm.dir/decomposition.cpp.o.d"
  "CMakeFiles/crkhacc_comm.dir/world.cpp.o"
  "CMakeFiles/crkhacc_comm.dir/world.cpp.o.d"
  "libcrkhacc_comm.a"
  "libcrkhacc_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
