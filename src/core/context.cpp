#include "core/context.h"

#include <bit>
#include <sstream>

#include "fft/fft.h"

namespace crkhacc::core {
namespace {

/// Bit-exact field serialization: two doubles that differ in the last
/// ULP must key different assets, and -0.0 must not alias +0.0 — decimal
/// formatting guarantees neither, so fields key by their raw bits.
void put(std::ostringstream& out, double v) {
  out << std::hex << std::bit_cast<std::uint64_t>(v) << ';';
}
void put(std::ostringstream& out, float v) {
  out << std::hex << std::bit_cast<std::uint32_t>(v) << ';';
}
void put(std::ostringstream& out, std::uint64_t v) { out << v << ';'; }
void put(std::ostringstream& out, int v) { out << v << ';'; }
void put(std::ostringstream& out, bool v) { out << (v ? 1 : 0) << ';'; }

std::string cooling_key(const subgrid::CoolingConfig& config) {
  std::ostringstream out;
  put(out, config.h);
  put(out, config.x_hydrogen);
  put(out, config.t_floor_K);
  put(out, config.z_reion);
  put(out, config.enabled);
  return out.str();
}

}  // namespace

SimContext::SimContext(int threads)
    : pool_(threads < 0 ? 1u : static_cast<unsigned>(threads)) {}

std::shared_ptr<const subgrid::CoolingTable> SimContext::cooling_table(
    const subgrid::CoolingConfig& config) {
  const std::string key = cooling_key(config);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cooling_tables_.find(key);
    if (it != cooling_tables_.end()) {
      ++cooling_hits_;
      return it->second;
    }
  }
  // Build outside the lock: table construction is the expensive part and
  // must not serialize unrelated lookups.
  auto table = std::make_shared<const subgrid::CoolingTable>(config);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = cooling_tables_.emplace(key, std::move(table));
  if (inserted) {
    ++cooling_misses_;
  } else {
    ++cooling_hits_;
  }
  return it->second;
}

std::shared_ptr<const CachedInitialState> SimContext::find_initial_state(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = initial_states_.find(key);
  if (it != initial_states_.end()) {
    ++initial_state_hits_;
    return it->second;
  }
  ++initial_state_misses_;
  return nullptr;
}

void SimContext::store_initial_state(const std::string& key,
                                     CachedInitialState state) {
  auto shared = std::make_shared<const CachedInitialState>(std::move(state));
  std::lock_guard<std::mutex> lock(mutex_);
  initial_states_.emplace(key, std::move(shared));
}

std::string SimContext::initial_state_key(const SimConfig& config, int rank,
                                          int size) {
  std::ostringstream out;
  // Domain: the z-slab decomposition and per-rank IC emission depend on
  // both the rank and the rank count.
  put(out, rank);
  put(out, size);
  // IC generation.
  put(out, static_cast<std::uint64_t>(config.np));
  put(out, config.box);
  put(out, config.z_init);
  put(out, config.seed);
  put(out, config.hydro);
  put(out, config.t_init_K);
  put(out, config.cosmology.omega_m);
  put(out, config.cosmology.omega_b);
  put(out, config.cosmology.omega_l);
  put(out, config.cosmology.h);
  put(out, config.cosmology.n_s);
  put(out, config.cosmology.sigma8);
  put(out, config.cosmology.w0);
  put(out, config.cosmology.t_cmb);
  // Force split: sets the chaining-mesh bin width, the overload width,
  // and the smoothing-length cap applied before the exchange.
  put(out, static_cast<std::uint64_t>(config.ng));
  put(out, config.rs_cells);
  put(out, config.split_threshold);
  // SPH priming (one force pass + smoothing-length update).
  put(out, static_cast<int>(config.sph.kernel));
  put(out, config.sph.eta);
  put(out, config.sph.cfl);
  put(out, config.sph.h_change_limit);
  put(out, config.sph.h_max);
  put(out, config.sph.viscosity.alpha);
  put(out, config.sph.viscosity.beta);
  put(out, config.sph.viscosity.eps);
  put(out, config.sph.use_crk);
  // Launch policy: kFused SIMD math is ULP-bounded, not bitwise, so the
  // policy is part of the state's identity.
  put(out, static_cast<std::uint64_t>(config.sph.launch.warp_size));
  put(out, static_cast<int>(config.sph.launch.mode));
  put(out, static_cast<int>(config.sph.launch.schedule));
  put(out, static_cast<int>(config.sph.launch.simd_math));
  return out.str();
}

SimContext::AssetStats SimContext::asset_stats() const {
  AssetStats stats;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats.cooling_hits = cooling_hits_;
    stats.cooling_misses = cooling_misses_;
    stats.initial_state_hits = initial_state_hits_;
    stats.initial_state_misses = initial_state_misses_;
  }
  const fft::PlanCacheStats fft = fft::plan_cache_stats();
  stats.fft_plan_hits = fft.hits;
  stats.fft_plan_misses = fft.misses;
  return stats;
}

}  // namespace crkhacc::core
