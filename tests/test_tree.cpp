// Tests for the chaining mesh / coarse-leaf k-d trees and the LBVH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/particles.h"
#include "tree/chaining_mesh.h"
#include "tree/lbvh.h"
#include "util/rng.h"

namespace crkhacc::tree {
namespace {

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box), 0, 0, 0, 1.0f);
  }
  return p;
}

comm::Box3 unit_box(double size) {
  comm::Box3 box;
  box.lo = {0.0, 0.0, 0.0};
  box.hi = {size, size, size};
  return box;
}

// --- chaining mesh -----------------------------------------------------------

TEST(ChainingMesh, EveryParticleInExactlyOneLeaf) {
  const auto p = random_particles(500, 10.0, 1);
  ChainingMesh mesh(unit_box(10.0), {2.0, 16});
  mesh.build(p);
  std::vector<int> seen(p.size(), 0);
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    const Leaf& leaf = mesh.leaf(l);
    for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
      ++seen[mesh.permutation()[s]];
    }
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_EQ(mesh.num_particles(), p.size());
}

TEST(ChainingMesh, LeafSizeRespected) {
  const auto p = random_particles(1000, 10.0, 2);
  const std::uint32_t leaf_size = 24;
  ChainingMesh mesh(unit_box(10.0), {2.5, leaf_size});
  mesh.build(p);
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    EXPECT_LE(mesh.leaf(l).size(), leaf_size);
    EXPECT_GT(mesh.leaf(l).size(), 0u);
  }
}

TEST(ChainingMesh, BoundsContainMembers) {
  const auto p = random_particles(400, 8.0, 3);
  ChainingMesh mesh(unit_box(8.0), {2.0, 16});
  mesh.build(p);
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    const Leaf& leaf = mesh.leaf(l);
    for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
      const auto i = mesh.permutation()[s];
      EXPECT_GE(p.x[i], leaf.lo[0]);
      EXPECT_LE(p.x[i], leaf.hi[0]);
      EXPECT_GE(p.y[i], leaf.lo[1]);
      EXPECT_LE(p.y[i], leaf.hi[1]);
      EXPECT_GE(p.z[i], leaf.lo[2]);
      EXPECT_LE(p.z[i], leaf.hi[2]);
    }
  }
}

TEST(ChainingMesh, RefitTracksMotionWithoutRepartition) {
  auto p = random_particles(300, 10.0, 4);
  ChainingMesh mesh(unit_box(10.0), {2.0, 16});
  mesh.build(p);
  const auto perm_before = mesh.permutation();
  // Drift everything.
  for (std::size_t i = 0; i < p.size(); ++i) p.x[i] += 0.3f;
  mesh.refit_bounds(p);
  EXPECT_EQ(mesh.permutation(), perm_before);  // membership unchanged
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    const Leaf& leaf = mesh.leaf(l);
    for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
      const auto i = mesh.permutation()[s];
      EXPECT_GE(p.x[i], leaf.lo[0]);
      EXPECT_LE(p.x[i], leaf.hi[0]);
    }
  }
}

/// Property: every particle pair within `radius` is covered by some
/// leaf pair in interaction_pairs(radius).
TEST(ChainingMesh, InteractionPairsCoverAllCloseParticlePairs) {
  const double box = 6.0, radius = 0.9;
  const auto p = random_particles(250, box, 5);
  ChainingMesh mesh(unit_box(box), {1.0, 8});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(radius);

  // leaf of each particle
  std::vector<std::uint32_t> leaf_of(p.size());
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    const Leaf& leaf = mesh.leaf(l);
    for (std::uint32_t s = leaf.begin; s < leaf.end; ++s) {
      leaf_of[mesh.permutation()[s]] = static_cast<std::uint32_t>(l);
    }
  }
  std::set<std::pair<std::uint32_t, std::uint32_t>> pair_set(pairs.begin(),
                                                             pairs.end());
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = i + 1; j < p.size(); ++j) {
      const double dx = p.x[i] - p.x[j];
      const double dy = p.y[i] - p.y[j];
      const double dz = p.z[i] - p.z[j];
      if (dx * dx + dy * dy + dz * dz > radius * radius) continue;
      auto a = leaf_of[i], b = leaf_of[j];
      if (a > b) std::swap(a, b);
      EXPECT_TRUE(pair_set.count({a, b}))
          << "pair (" << i << "," << j << ") not covered";
    }
  }
}

TEST(ChainingMesh, SubsetBuildUsesOnlySubset) {
  const auto p = random_particles(200, 10.0, 6);
  std::vector<std::uint32_t> subset;
  for (std::uint32_t i = 0; i < 200; i += 2) subset.push_back(i);
  ChainingMesh mesh(unit_box(10.0), {2.0, 16});
  mesh.build(p, subset);
  EXPECT_EQ(mesh.num_particles(), subset.size());
  for (std::uint32_t idx : mesh.permutation()) {
    EXPECT_EQ(idx % 2, 0u);
  }
}

TEST(ChainingMesh, ForEachInRadiusMatchesBruteForce) {
  const double box = 6.0;
  const auto p = random_particles(300, box, 7);
  ChainingMesh mesh(unit_box(box), {1.5, 8});
  mesh.build(p);
  const float radius = 1.2f;
  for (int trial = 0; trial < 20; ++trial) {
    const float qx = static_cast<float>(0.5 + trial * 0.25);
    const float qy = static_cast<float>(3.0 - trial * 0.1);
    const float qz = 2.0f;
    std::set<std::uint32_t> found;
    mesh.for_each_in_radius(p, qx, qy, qz, radius,
                            [&](std::uint32_t i, float) { found.insert(i); });
    std::set<std::uint32_t> expected;
    for (std::size_t i = 0; i < p.size(); ++i) {
      const float dx = p.x[i] - qx, dy = p.y[i] - qy, dz = p.z[i] - qz;
      if (dx * dx + dy * dy + dz * dz <= radius * radius) {
        expected.insert(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(found, expected);
  }
}

TEST(ChainingMesh, AabbDistanceSq) {
  Leaf a, b;
  a.lo = {0, 0, 0};
  a.hi = {1, 1, 1};
  b.lo = {3, 0, 0};
  b.hi = {4, 1, 1};
  EXPECT_DOUBLE_EQ(ChainingMesh::aabb_distance_sq(a, b), 4.0);
  b.lo = {0.5, 0.5, 0.5};
  b.hi = {2, 2, 2};
  EXPECT_DOUBLE_EQ(ChainingMesh::aabb_distance_sq(a, b), 0.0);
}

TEST(ChainingMesh, ClampsStrayParticlesIntoEdgeBins) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, -0.5f, 5.0f, 5.0f, 0, 0, 0, 1.0f);
  p.push_back(1, Species::kDarkMatter, 10.5f, 5.0f, 5.0f, 0, 0, 0, 1.0f);
  ChainingMesh mesh(unit_box(10.0), {2.0, 16});
  mesh.build(p);  // must not crash; both particles land in edge bins
  EXPECT_EQ(mesh.num_particles(), 2u);
}

// --- LBVH ---------------------------------------------------------------------

class BvhTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BvhTest, RadiusQueryMatchesBruteForce) {
  const std::size_t n = GetParam();
  const auto p = random_particles(n, 4.0, 8);
  const Bvh bvh(p.x, p.y, p.z);
  EXPECT_EQ(bvh.size(), n);
  SplitMix64 rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    const float qx = static_cast<float>(rng.next_double() * 4.0);
    const float qy = static_cast<float>(rng.next_double() * 4.0);
    const float qz = static_cast<float>(rng.next_double() * 4.0);
    const float radius = static_cast<float>(0.2 + rng.next_double());
    std::set<std::uint32_t> found;
    bvh.radius_query(qx, qy, qz, radius,
                     [&](std::uint32_t i) { found.insert(i); });
    std::set<std::uint32_t> expected;
    for (std::size_t i = 0; i < n; ++i) {
      const float dx = p.x[i] - qx, dy = p.y[i] - qy, dz = p.z[i] - qz;
      if (dx * dx + dy * dy + dz * dz <= radius * radius) {
        expected.insert(static_cast<std::uint32_t>(i));
      }
    }
    EXPECT_EQ(found, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BvhTest, ::testing::Values(1, 2, 7, 64, 500));

TEST(Bvh, EmptySetHandled) {
  std::vector<float> none;
  const Bvh bvh(none, none, none);
  std::size_t visits = 0;
  bvh.radius_query(0, 0, 0, 10, [&](std::uint32_t) { ++visits; });
  EXPECT_EQ(visits, 0u);
}

TEST(Bvh, CountWithinIncludesSelf) {
  std::vector<float> x{1.0f, 2.0f}, y{0.0f, 0.0f}, z{0.0f, 0.0f};
  const Bvh bvh(x, y, z);
  EXPECT_EQ(bvh.count_within(1.0f, 0.0f, 0.0f, 0.5f), 1u);
  EXPECT_EQ(bvh.count_within(1.0f, 0.0f, 0.0f, 1.5f), 2u);
}

TEST(Bvh, DuplicatePointsAllFound) {
  std::vector<float> x(10, 1.0f), y(10, 1.0f), z(10, 1.0f);
  const Bvh bvh(x, y, z);
  EXPECT_EQ(bvh.count_within(1.0f, 1.0f, 1.0f, 0.1f), 10u);
}

// --- bin occupancy census edge cases -----------------------------------------

TEST(BinOccupancy, EmptyRankCountsNothing) {
  const Particles none;
  const auto stats = bin_occupancy(unit_box(10.0), 2.0, none, 0.5);
  EXPECT_EQ(stats.counted, 0u);
  EXPECT_EQ(stats.out_of_domain, 0u);
  EXPECT_EQ(stats.max_bin, 0u);
  EXPECT_EQ(stats.mean_bin, 0.0);
  EXPECT_GT(stats.bins, 0u);
}

TEST(BinOccupancy, SingleOccupiedBinHoldsEveryParticle) {
  // All particles at the same position: max_bin must equal counted.
  Particles p;
  for (std::size_t i = 0; i < 25; ++i) {
    p.push_back(i, Species::kDarkMatter, 3.1f, 3.1f, 3.1f, 0, 0, 0, 1.0f);
  }
  const auto stats = bin_occupancy(unit_box(10.0), 2.0, p, 0.5);
  EXPECT_EQ(stats.counted, 25u);
  EXPECT_EQ(stats.max_bin, 25u);
  EXPECT_EQ(stats.out_of_domain, 0u);
}

TEST(BinOccupancy, BinWiderThanDomainCollapsesToOneBin) {
  const auto p = random_particles(40, 4.0, 11);
  const auto stats = bin_occupancy(unit_box(4.0), 100.0, p, 0.5);
  EXPECT_EQ(stats.bins, 1u);
  EXPECT_EQ(stats.counted, 40u);
  EXPECT_EQ(stats.max_bin, 40u);
  EXPECT_EQ(stats.mean_bin, 40.0);
}

// --- load-balancer support accessors -----------------------------------------

TEST(ChainingMesh, BinParticleCountAndLeafBinAgreeWithLeaves) {
  const auto p = random_particles(300, 10.0, 21);
  ChainingMesh mesh(unit_box(10.0), {2.0, 16});
  mesh.build(p);
  std::uint64_t total = 0;
  std::vector<std::uint64_t> by_bin(mesh.num_bins(), 0);
  for (std::size_t l = 0; l < mesh.num_leaves(); ++l) {
    ASSERT_LT(mesh.leaf_bin(l), mesh.num_bins());
    by_bin[mesh.leaf_bin(l)] += mesh.leaf(l).size();
  }
  for (std::size_t b = 0; b < mesh.num_bins(); ++b) {
    EXPECT_EQ(mesh.bin_particle_count(b), by_bin[b]) << "bin " << b;
    total += mesh.bin_particle_count(b);
  }
  EXPECT_EQ(total, p.size());
}

TEST(ChainingMesh, AdoptRebuildsLeafRangesWithIdentityPermutation) {
  const std::vector<std::uint32_t> leaf_begin{0, 3, 3, 7};
  const ChainingMesh mesh = ChainingMesh::adopt(leaf_begin);
  ASSERT_EQ(mesh.num_leaves(), 3u);
  EXPECT_EQ(mesh.leaf(0).begin, 0u);
  EXPECT_EQ(mesh.leaf(0).end, 3u);
  EXPECT_EQ(mesh.leaf(1).size(), 0u);
  EXPECT_EQ(mesh.leaf(2).begin, 3u);
  EXPECT_EQ(mesh.leaf(2).end, 7u);
  ASSERT_EQ(mesh.permutation().size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(mesh.permutation()[i], i);
  }
}

}  // namespace
}  // namespace crkhacc::tree
