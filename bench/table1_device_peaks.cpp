// Table I: device peak FP32 rates, plus the measured "hardware peak" of
// this host and the peak CRK-HACC kernel measurement.
//
// The paper determines peak FLOP rates by profiling the hottest kernel —
// the high-order SPH correction-coefficient kernel. We reproduce the
// measurement methodology: calibrate this host's FP32 FMA peak, run the
// CRK coefficient pipeline on a realistic particle load, and report the
// achieved fraction exactly as Section V-B defines utilization.
#include <cstdio>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"
#include "gpu/device.h"

using namespace crkhacc;

int main() {
  bench::print_header("Table I — GPU specifications + peak-kernel measurement");

  std::printf("%-28s %-28s %-10s\n", "device", "peak FP32 (TFLOPs)",
              "warp size");
  bench::print_rule();
  for (const auto& device : gpu::known_devices()) {
    std::printf("%-28s %-28.1f %-10d\n", device.name.c_str(),
                device.peak_fp32_tflops, device.warp_size);
  }
  bench::print_rule();

  const double host_peak = gpu::host_peak_gflops();
  std::printf("\nthis host (substitute device): measured FMA peak = %.2f "
              "GFLOP/s\n",
              host_peak);

  // Peak-kernel measurement: run the short-range solver stack once on a
  // clustered load and report the hottest kernel, as rocprof would.
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    auto config = bench::scaled_config(1, 14, /*hydro=*/true);
    config.num_pm_steps = 1;
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    sim.step();
    const auto& flops = sim.flops();
    std::printf("\nper-kernel FP32 accounting (profiler convention: FMA = 2, "
                "transcendental = 1):\n");
    std::printf("%-26s %-14s %-12s %-12s\n", "kernel", "GFLOP", "seconds",
                "GFLOP/s");
    bench::print_rule();
    for (const auto& [name, kernel_flops, seconds] : flops.sorted()) {
      std::printf("%-26s %-14.3f %-12.4f %-12.2f\n", name.c_str(),
                  kernel_flops / 1e9, seconds,
                  seconds > 0 ? kernel_flops / seconds / 1e9 : 0.0);
    }
    bench::print_rule();
    std::printf("\npeak kernel: '%s' at %.2f GFLOP/s -> utilization %.1f%% "
                "of host peak\n",
                flops.peak_kernel().c_str(), flops.peak_gflops(),
                100.0 * flops.peak_gflops() / host_peak);
    std::printf("sustained (all kernels): %.2f GFLOP/s -> %.1f%% of host "
                "peak\n",
                flops.sustained_gflops(),
                100.0 * flops.sustained_gflops() / host_peak);
    std::printf("\npaper reference: peak kernel = SPH correction "
                "coefficients; full-machine peak 513.1 PFLOPs = 29.8%% of "
                "1.72 EFLOPs theoretical.\n");
  });
  return 0;
}
