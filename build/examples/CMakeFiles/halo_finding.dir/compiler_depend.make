# Empty compiler generated dependencies file for halo_finding.
# This may be replaced when dependencies are built.
