// GenericIO-analog particle snapshot format.
//
// Self-describing blocked binary: a fixed header carrying run metadata,
// followed by the particle record block, with independent CRC32 checksums
// on header and payload. Like HACC's GenericIO, corruption is detected at
// read time (truncated files, bit flips) instead of silently corrupting a
// restart. Files are written rank-per-file — the pattern the multi-tier
// strategy relies on to avoid PFS contention.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/particles.h"

namespace crkhacc::io {

/// Checkpoint wire-format version this build writes and reads.
/// v1 was the opaque "GIO1" record blob (single whole-payload CRC);
/// v2 is the "CKC2" self-describing chunked column format
/// (io/column_file.h). v1 files are detected and rejected with a clear
/// error, never misparsed.
inline constexpr std::uint32_t kCkptFormatVersion = 2;

struct SnapshotMeta {
  std::uint64_t step = 0;
  double scale_factor = 1.0;
  std::int32_t rank = 0;
  std::int32_t num_ranks = 1;
  std::uint64_t particle_count = 0;  ///< filled on write
  std::uint32_t format_version = kCkptFormatVersion;  ///< filled on read
};

/// Serialize owned particles (ghosts skipped unless include_ghosts) into
/// the snapshot wire format.
std::vector<std::uint8_t> encode_snapshot(const SnapshotMeta& meta,
                                          const Particles& particles,
                                          bool include_ghosts);

/// Decode result: false on any integrity failure (bad magic, CRC
/// mismatch, truncation). Particles are appended to `out`.
bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                     SnapshotMeta& meta, Particles& out);

/// Convenience file wrappers (unthrottled; the storage tiers wrap these
/// with bandwidth modeling).
bool write_snapshot_file(const std::string& path, const SnapshotMeta& meta,
                         const Particles& particles, bool include_ghosts);
bool read_snapshot_file(const std::string& path, SnapshotMeta& meta,
                        Particles& out);

}  // namespace crkhacc::io
