// Tests for the in-process message-passing substrate and the cartesian
// domain decomposition, including the fault domain: injected rank
// failures and the hang watchdog.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>

#include "comm/decomposition.h"
#include "comm/world.h"

namespace crkhacc::comm {
namespace {

TEST(World, SingleRankRuns) {
  World world(1);
  int visited = 0;
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++visited;
  });
  EXPECT_EQ(visited, 1);
}

TEST(World, PointToPointDelivers) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      std::vector<int> payload{1, 2, 3};
      comm.send(1, /*tag=*/7, std::span<const int>(payload));
    } else {
      const auto got = comm.recv<int>(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[2], 3);
    }
  });
}

TEST(World, TagMatchingIsSelective) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      comm.send_value(1, /*tag=*/1, 111);
      comm.send_value(1, /*tag=*/2, 222);
    } else {
      // Receive out of send order: tag 2 first.
      EXPECT_EQ(comm.recv_value<int>(0, 2), 222);
      EXPECT_EQ(comm.recv_value<int>(0, 1), 111);
    }
  });
}

TEST(World, FifoPerSourceAndTag) {
  World world(2);
  world.run([](Communicator& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i) comm.send_value(1, 5, i);
    } else {
      for (int i = 0; i < 10; ++i) EXPECT_EQ(comm.recv_value<int>(0, 5), i);
    }
  });
}

TEST(World, BarrierSynchronizes) {
  const int p = 4;
  World world(p);
  std::atomic<int> before{0}, after_min{100};
  world.run([&](Communicator& comm) {
    ++before;
    comm.barrier();
    // Everyone must have incremented before anyone proceeds.
    int seen = before.load();
    int expected = p;
    EXPECT_EQ(seen, expected);
    int current = after_min.load();
    while (seen < current && !after_min.compare_exchange_weak(current, seen)) {
    }
  });
}

TEST(World, ReusableAcrossRuns) {
  World world(3);
  for (int round = 0; round < 3; ++round) {
    world.run([round](Communicator& comm) {
      const auto total = comm.allreduce_scalar(
          static_cast<std::int64_t>(comm.rank() + round), ReduceOp::kSum);
      EXPECT_EQ(total, 3 + 3 * round);
    });
  }
}

class CollectivesTest : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesTest, AllreduceSumMinMax) {
  const int p = GetParam();
  World world(p);
  world.run([p](Communicator& comm) {
    const double mine = static_cast<double>(comm.rank() + 1);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ReduceOp::kSum),
                     p * (p + 1) / 2.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ReduceOp::kMin), 1.0);
    EXPECT_DOUBLE_EQ(comm.allreduce_scalar(mine, ReduceOp::kMax),
                     static_cast<double>(p));
  });
}

TEST_P(CollectivesTest, AllreduceVectorElementwise) {
  const int p = GetParam();
  World world(p);
  world.run([p](Communicator& comm) {
    std::vector<std::int64_t> values{comm.rank(), 2 * comm.rank()};
    comm.allreduce(std::span<std::int64_t>(values), ReduceOp::kSum);
    const std::int64_t sum = static_cast<std::int64_t>(p) * (p - 1) / 2;
    EXPECT_EQ(values[0], sum);
    EXPECT_EQ(values[1], 2 * sum);
  });
}

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  const int p = GetParam();
  World world(p);
  world.run([p](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<int> data;
      if (comm.rank() == root) data = {root, root + 1, root + 2};
      comm.bcast(data, root);
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[0], root);
      EXPECT_EQ(data[2], root + 2);
    }
  });
}

TEST_P(CollectivesTest, AllgatherCollectsAllRanks) {
  const int p = GetParam();
  World world(p);
  world.run([p](Communicator& comm) {
    const auto all = comm.allgather_value(comm.rank() * 10);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(p));
    for (int r = 0; r < p; ++r) EXPECT_EQ(all[static_cast<std::size_t>(r)], r * 10);
  });
}

TEST_P(CollectivesTest, AlltoallvPersonalizedExchange) {
  const int p = GetParam();
  World world(p);
  world.run([p](Communicator& comm) {
    // Rank r sends to rank d a vector of r*100+d with length (d+1).
    std::vector<std::vector<int>> sends(static_cast<std::size_t>(p));
    for (int d = 0; d < p; ++d) {
      sends[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d + 1),
                                                comm.rank() * 100 + d);
    }
    const auto recvs = comm.alltoallv(sends);
    ASSERT_EQ(recvs.size(), static_cast<std::size_t>(p));
    for (int s = 0; s < p; ++s) {
      const auto& batch = recvs[static_cast<std::size_t>(s)];
      ASSERT_EQ(batch.size(), static_cast<std::size_t>(comm.rank() + 1));
      for (int v : batch) EXPECT_EQ(v, s * 100 + comm.rank());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 8));

// --- fault domain: rank failures + hang watchdog ---------------------------

WatchdogConfig fast_watchdog() {
  WatchdogConfig config;
  config.poll_interval_s = 0.01;
  return config;
}

TEST(WorldFaults, WatchdogConvertsMismatchedRecvIntoDiagnostic) {
  // Guaranteed deadlock: both ranks block on recvs nobody will ever
  // send. Without the watchdog this test would hang ctest forever.
  World world(2, fast_watchdog());
  const auto start = std::chrono::steady_clock::now();
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.recv_bytes(1, /*tag=*/7);
      } else {
        comm.recv_bytes(0, /*tag=*/9);  // deliberately mismatched
      }
    });
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
    EXPECT_NE(what.find("recv(source=1, tag=7)"), std::string::npos) << what;
    EXPECT_NE(what.find("recv(source=0, tag=9)"), std::string::npos) << what;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // Bounded detection: well under CI timeouts.
  EXPECT_LT(std::chrono::duration<double>(elapsed).count(), 10.0);
}

TEST(WorldFaults, WatchdogReportsBarrierDeadlock) {
  // Rank 1 dies before the barrier; the survivor waits on a barrier that
  // can never complete. The diagnosis must lead with the dead rank and
  // its last comm op — not a generic all-ranks-blocked deadlock.
  World world(2, fast_watchdog());
  world.schedule_rank_failure(1, /*op=*/0);
  try {
    world.run([](Communicator& comm) { comm.barrier(); });
    FAIL() << "expected RankLossError";
  } catch (const RankLossError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1 died at comm op 0"), std::string::npos)
        << what;
    EXPECT_EQ(what.find("communication deadlock"), std::string::npos) << what;
    EXPECT_NE(what.find("blocked in barrier"), std::string::npos) << what;
    EXPECT_NE(what.find("failed (rank lost at comm op 0)"), std::string::npos)
        << what;
    ASSERT_EQ(e.lost().size(), 1u);
    EXPECT_EQ(e.lost()[0].rank, 1);
    EXPECT_EQ(e.lost()[0].op, 0u);
  }
  ASSERT_EQ(world.failures().size(), 1u);
  EXPECT_EQ(world.failures()[0].rank, 1);
  EXPECT_GT(world.last_loss_latency_seconds(), 0.0);
  world.clear_failure_schedule();
}

TEST(WorldFaults, RankLossNamesDeadSourceInRecvDiagnosis) {
  // Rank 0 blocks receiving from rank 1, which dies instead of sending:
  // the survivor's blocked line must point at the dead source.
  World world(2, fast_watchdog());
  world.schedule_rank_failure(1, /*op=*/0);
  try {
    world.run([](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.recv_value<int>(1, /*tag=*/3);
      } else {
        comm.send_value(0, /*tag=*/3, 42);  // op 0: dies before sending
      }
    });
    FAIL() << "expected RankLossError";
  } catch (const RankLossError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank 1 died at comm op 0"), std::string::npos)
        << what;
    EXPECT_NE(what.find("recv(source=1, tag=3) — awaited source is dead"),
              std::string::npos)
        << what;
  }
  world.clear_failure_schedule();
}

TEST(WorldFaults, TrueDeadlockStillRaisesPlainDeadlockError) {
  // No failure schedule: a genuine deadlock must NOT be classified as a
  // rank loss.
  World world(2, fast_watchdog());
  try {
    world.run([](Communicator& comm) {
      comm.recv_bytes(1 - comm.rank(), /*tag=*/1);  // nobody sends
    });
    FAIL() << "expected DeadlockError";
  } catch (const RankLossError&) {
    FAIL() << "a failure-free deadlock must not be a RankLossError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("communication deadlock"), std::string::npos) << what;
  }
  EXPECT_TRUE(world.failures().empty());
  EXPECT_DOUBLE_EQ(world.last_loss_latency_seconds(), 0.0);
}

TEST(WorldFaults, RankFailureUnwindsCleanlyWhenUnobserved) {
  // The failing rank aborts after the collective everyone depends on:
  // the other ranks finish normally and run() returns instead of
  // throwing.
  World world(3, fast_watchdog());
  world.schedule_rank_failure(2, /*op=*/1);
  std::atomic<int> completed{0};
  world.run([&](Communicator& comm) {
    const auto total = comm.allreduce_scalar(std::int64_t{1}, ReduceOp::kSum);
    EXPECT_EQ(total, 3);
    if (comm.rank() == 2) {
      comm.allreduce_scalar(std::int64_t{1}, ReduceOp::kSum);  // op 1: dies here
      FAIL() << "rank 2 should have failed";
    }
    ++completed;
  });
  EXPECT_EQ(completed.load(), 2);
  ASSERT_EQ(world.failures().size(), 1u);
  EXPECT_EQ(world.failures()[0].rank, 2);
  EXPECT_EQ(world.failures()[0].op, 1u);
  world.clear_failure_schedule();
}

TEST(WorldFaults, FailureScheduleIsDeterministic) {
  // The same schedule kills the same rank at the same op every run.
  for (int repeat = 0; repeat < 2; ++repeat) {
    World world(2, fast_watchdog());
    world.schedule_rank_failure(0, /*op=*/2);
    world.run([](Communicator& comm) {
      if (comm.rank() == 0) {
        comm.send_value(1, 1, 10);  // op 0
        comm.send_value(1, 1, 20);  // op 1
        try {
          comm.send_value(1, 1, 30);  // op 2: dies before delivering
          FAIL() << "expected RankFailure";
        } catch (const RankFailure& f) {
          EXPECT_EQ(f.rank(), 0);
          EXPECT_EQ(f.op(), 2u);
          throw;
        }
      } else {
        EXPECT_EQ(comm.recv_value<int>(0, 1), 10);
        EXPECT_EQ(comm.recv_value<int>(0, 1), 20);
      }
    });
    ASSERT_EQ(world.failures().size(), 1u);
    EXPECT_EQ(world.failures()[0].op, 2u);
  }
}

TEST(WorldFaults, WorldIsReusableAfterDeadlock) {
  World world(2, fast_watchdog());
  world.schedule_rank_failure(1, /*op=*/0);
  EXPECT_THROW(world.run([](Communicator& comm) {
    comm.send_value(1 - comm.rank(), 1, comm.rank());
    comm.recv_value<int>(1 - comm.rank(), 1);
    comm.barrier();
  }),
               DeadlockError);
  // Undelivered messages and the half-formed barrier must not leak into
  // the next run.
  world.clear_failure_schedule();
  world.run([](Communicator& comm) {
    const auto total = comm.allreduce_scalar(std::int64_t{1}, ReduceOp::kSum);
    EXPECT_EQ(total, 2);
    comm.barrier();
  });
  EXPECT_TRUE(world.failures().empty());
}

TEST(WorldFaults, HealthyTrafficDoesNotTripWatchdog) {
  // Sustained send/recv/barrier traffic with an aggressive poll interval:
  // the watchdog must never fire on a live machine.
  World world(4, fast_watchdog());
  world.run([](Communicator& comm) {
    for (int round = 0; round < 50; ++round) {
      const int peer = comm.rank() ^ 1;
      if (comm.rank() < peer) {
        comm.send_value(peer, round, comm.rank());
        EXPECT_EQ(comm.recv_value<int>(peer, round), peer);
      } else {
        EXPECT_EQ(comm.recv_value<int>(peer, round), peer);
        comm.send_value(peer, round, comm.rank());
      }
      comm.barrier();
    }
  });
}

// --- decomposition ---------------------------------------------------------

TEST(Factorization, ProducesExactFactors) {
  for (int n : {1, 2, 3, 4, 6, 8, 12, 16, 27, 64, 100}) {
    const auto f = near_cubic_factorization(n);
    EXPECT_EQ(f[0] * f[1] * f[2], n) << "n=" << n;
    EXPECT_GE(f[0], f[1]);
    EXPECT_GE(f[1], f[2]);
  }
}

TEST(Factorization, PrefersCubicSplits) {
  EXPECT_EQ(near_cubic_factorization(8), (std::array<int, 3>{2, 2, 2}));
  EXPECT_EQ(near_cubic_factorization(27), (std::array<int, 3>{3, 3, 3}));
  EXPECT_EQ(near_cubic_factorization(12), (std::array<int, 3>{3, 2, 2}));
}

class DecompositionTest : public ::testing::TestWithParam<int> {};

TEST_P(DecompositionTest, RankCoordinateRoundTrip) {
  const CartDecomposition decomp(GetParam(), 100.0);
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    EXPECT_EQ(decomp.rank_of(decomp.coords_of(r)), r);
  }
}

TEST_P(DecompositionTest, LocalBoxesTileTheDomain) {
  const CartDecomposition decomp(GetParam(), 100.0);
  double volume = 0.0;
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    volume += decomp.local_box(r).volume();
  }
  EXPECT_NEAR(volume, 100.0 * 100.0 * 100.0, 1e-6);
}

TEST_P(DecompositionTest, OwnerOfMatchesLocalBox) {
  const CartDecomposition decomp(GetParam(), 100.0);
  for (int trial = 0; trial < 200; ++trial) {
    std::array<double, 3> p;
    for (int d = 0; d < 3; ++d) {
      p[d] = 100.0 * ((trial * 37 + d * 13) % 100) / 100.0 + 0.001;
    }
    const int owner = decomp.owner_of(p);
    EXPECT_TRUE(decomp.local_box(owner).contains(p));
  }
}

TEST_P(DecompositionTest, NeighborRelationIsSymmetric) {
  const CartDecomposition decomp(GetParam(), 100.0);
  for (int r = 0; r < decomp.num_ranks(); ++r) {
    for (int nb : decomp.neighbors_of(r)) {
      const auto back = decomp.neighbors_of(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), r), back.end());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RankCounts, DecompositionTest,
                         ::testing::Values(1, 2, 4, 8, 12, 27));

// Shrink remapping: after a rank loss the survivors rebuild the
// decomposition at N-1 and every particle must land in exactly one new
// domain. Exercised over the (N, N-1) pairs a shrink actually produces.
class ShrinkRemapTest : public ::testing::TestWithParam<int> {};

TEST_P(ShrinkRemapTest, OwnerOfIsTotalDisjointCoverAtBothRankCounts) {
  const double box = 100.0;
  for (const int n : {GetParam(), GetParam() - 1}) {
    const CartDecomposition decomp(n, box);
    ASSERT_EQ(decomp.num_ranks(), n);
    std::vector<std::uint64_t> owned(static_cast<std::size_t>(n), 0);
    // Dense lattice sample, offset off the domain faces where ownership
    // changes hands.
    const int samples = 16;
    for (int i = 0; i < samples; ++i) {
      for (int j = 0; j < samples; ++j) {
        for (int k = 0; k < samples; ++k) {
          const std::array<double, 3> p{(i + 0.37) * box / samples,
                                        (j + 0.37) * box / samples,
                                        (k + 0.37) * box / samples};
          const int owner = decomp.owner_of(p);
          ASSERT_GE(owner, 0);
          ASSERT_LT(owner, n);
          ++owned[static_cast<std::size_t>(owner)];
          // Disjoint: the owner's box contains the point and no other
          // rank's does (local boxes are half-open, so membership is
          // exclusive by construction — assert it anyway).
          EXPECT_TRUE(decomp.local_box(owner).contains(p));
          for (int r = 0; r < n; ++r) {
            if (r == owner) continue;
            EXPECT_FALSE(decomp.local_box(r).contains(p))
                << "n=" << n << " point owned by both " << owner << " and "
                << r;
          }
        }
      }
    }
    // Total: every rank owns a share of a uniform sample.
    for (int r = 0; r < n; ++r) {
      EXPECT_GT(owned[static_cast<std::size_t>(r)], 0u)
          << "n=" << n << " rank " << r << " owns nothing";
    }
  }
}

TEST_P(ShrinkRemapTest, NeighborsStaySymmetricAfterRefactorization) {
  // The N-1 grid is a different factorization, not a sub-grid of N; the
  // neighbor relation must come out symmetric from scratch.
  const CartDecomposition shrunk(GetParam() - 1, 100.0);
  for (int r = 0; r < shrunk.num_ranks(); ++r) {
    for (int nb : shrunk.neighbors_of(r)) {
      const auto back = shrunk.neighbors_of(nb);
      EXPECT_NE(std::find(back.begin(), back.end(), r), back.end())
          << "rank " << nb << " does not list " << r << " back";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(ShrinkPairs, ShrinkRemapTest,
                         ::testing::Values(2, 3, 4, 8, 12, 27));

TEST(Decomposition, WrapAndMinImage) {
  const CartDecomposition decomp(8, 10.0);
  EXPECT_DOUBLE_EQ(decomp.wrap(10.5), 0.5);
  EXPECT_DOUBLE_EQ(decomp.wrap(-0.5), 9.5);
  EXPECT_DOUBLE_EQ(decomp.wrap(0.0), 0.0);
  EXPECT_DOUBLE_EQ(decomp.min_image(9.0), -1.0);
  EXPECT_DOUBLE_EQ(decomp.min_image(-9.0), 1.0);
  EXPECT_DOUBLE_EQ(decomp.min_image(3.0), 3.0);
}

TEST(Decomposition, OverloadedBoxCapsAtOneBox) {
  // The pad is capped at one box length so the +-1 periodic image
  // offsets used by the ghost exchange always cover the overloaded box.
  const CartDecomposition decomp(1, 10.0);
  const auto box = decomp.overloaded_box(0, 100.0);
  EXPECT_NEAR(box.lo[0], -10.0, 1e-9);
  EXPECT_NEAR(box.hi[0], 20.0, 1e-9);
  // A single-rank box with a small overload keeps its ghost shell.
  const auto shell = decomp.overloaded_box(0, 1.5);
  EXPECT_NEAR(shell.lo[0], -1.5, 1e-12);
  EXPECT_NEAR(shell.hi[0], 11.5, 1e-12);
}

TEST(Decomposition, OverloadedBoxExpandsByRequestedPad) {
  const CartDecomposition decomp(8, 10.0);  // 2x2x2, subdomains 5 wide
  const auto box = decomp.overloaded_box(0, 1.0);
  EXPECT_NEAR(box.lo[0], -1.0, 1e-12);
  EXPECT_NEAR(box.hi[0], 6.0, 1e-12);
}

}  // namespace
}  // namespace crkhacc::comm
