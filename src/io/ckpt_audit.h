// Offline checkpoint audit and repair.
//
// Because checkpoints are self-describing chunked column files
// (io/column_file.h) with an independent CRC per chunk, anything — not
// just the simulator — can verify one and say exactly which column chunk
// of which rank file is damaged. This library does that over a PFS tier,
// and, when a redundant copy exists (MultiTierWriter's node-local tier
// kept via CkptConfig::redundant_local, or any mirror), repairs in
// place:
//
//   * a damaged or truncated chunk is patched from the matching valid
//     chunk of a redundant copy;
//   * a destroyed header/directory (or missing payload) is replaced by a
//     whole redundant copy that validates end to end;
//   * a lost/garbled `.ok` marker over a provably-intact payload (all
//     internal CRCs pass) is re-stamped from the payload itself.
//
// Repairs are only written back once the patched bytes verify end to
// end. The `ckpt_audit` CLI (examples/) wraps this for operators.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "io/storage.h"

namespace crkhacc::io {

struct CkptAuditOptions {
  int num_ranks = 0;   ///< files per step; 0 = infer from the directory
  int only_rank = -1;  ///< restrict to one rank's files (-1 = all)
  int rank_stride = 0;  ///< with only_rank >= 0: audit every writer rank r
                        ///< with r % rank_stride == only_rank — the
                        ///< round-robin adoption set a shrunken run will
                        ///< restore. 0 = only_rank's own files only.
  std::optional<std::uint64_t> only_step;  ///< restrict to one step
  bool repair = false;  ///< attempt repairs (requires a source for chunk
                        ///< and whole-file repairs; marker re-stamping
                        ///< needs none)
};

/// One located fault. `column` is a column name for chunk-level damage,
/// or "<file>" / "<marker>" for file-level damage.
struct CkptDamage {
  std::uint64_t step = 0;
  int rank = 0;
  std::string column;
  std::uint32_t chunk = 0;
  bool repaired = false;
  std::string reason;
};

struct CkptAuditReport {
  std::uint64_t files_scanned = 0;
  std::uint64_t files_ok = 0;       ///< intact before any repair
  std::uint64_t files_damaged = 0;
  std::uint64_t files_repaired = 0;  ///< damaged, fully healed
  std::uint64_t files_legacy = 0;    ///< format v1; reported, unrepairable
  std::uint64_t chunks_checked = 0;
  std::uint64_t chunks_damaged = 0;
  std::uint64_t chunks_repaired = 0;
  std::uint64_t chains_checked = 0;  ///< diff files whose chain was walked
  std::uint64_t chains_broken = 0;   ///< missing/damaged ancestor
  std::vector<CkptDamage> damage;

  /// No unrepaired damage anywhere (legacy files and broken chains count
  /// as damage).
  bool clean() const {
    return files_damaged == files_repaired && files_legacy == 0 &&
           chains_broken == 0;
  }

  /// Human-readable multi-line summary (the CLI's output).
  std::string summary() const;
};

/// Audit (and optionally repair) every selected checkpoint file on
/// `pfs`. `repair_sources` are tiers that may hold redundant copies;
/// each is tried in order. Runs entirely from the on-disk format — no
/// simulator state needed.
CkptAuditReport audit_checkpoints(
    ThrottledStore& pfs, const CkptAuditOptions& options,
    const std::vector<ThrottledStore*>& repair_sources = {});

}  // namespace crkhacc::io
