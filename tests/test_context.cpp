// Shared-context tests: bitwise identity of context-borrowing runs
// against private-context runs (across thread counts), asset-cache hit
// accounting (cooling tables, primed initial states, process-wide FFT
// plans), the initial-state cache key's inclusion/exclusion semantics,
// RunResult::merge's per-field policies, and the tightened
// MemFaultInjector armed-refs contract.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "comm/world.h"
#include "core/context.h"
#include "core/sdc.h"
#include "core/simulation.h"
#include "subgrid/cooling.h"

namespace crkhacc::core {
namespace {

SimConfig tiny_config() {
  SimConfig config;
  config.np = 6;
  config.box = 16.0;
  config.ng = 8;
  config.z_init = 20.0;
  config.z_final = 10.0;
  config.num_pm_steps = 2;
  config.hydro = true;
  config.subgrid_on = true;
  config.bins.max_depth = 2;
  config.seed = 321;
  return config;
}

bool same_floats(const std::vector<float>& a, const std::vector<float>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0);
}

void expect_bitwise_equal(const Particles& a, const Particles& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.id, b.id);
  EXPECT_TRUE(same_floats(a.x, b.x));
  EXPECT_TRUE(same_floats(a.y, b.y));
  EXPECT_TRUE(same_floats(a.z, b.z));
  EXPECT_TRUE(same_floats(a.vx, b.vx));
  EXPECT_TRUE(same_floats(a.vy, b.vy));
  EXPECT_TRUE(same_floats(a.vz, b.vz));
  EXPECT_TRUE(same_floats(a.mass, b.mass));
  EXPECT_TRUE(same_floats(a.u, b.u));
  EXPECT_TRUE(same_floats(a.rho, b.rho));
  EXPECT_TRUE(same_floats(a.hsml, b.hsml));
}

Particles run_private(const SimConfig& config) {
  Particles final_state;
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();
    ASSERT_TRUE(result.completed);
    final_state = sim.particles();
  });
  return final_state;
}

// --- shared-vs-private bitwise identity --------------------------------------

TEST(SimContext, SharedContextBitwiseIdenticalToPrivate) {
  // The redesign's core promise: borrowing a shared context — including
  // the cache fast-path where the second simulation adopts the first's
  // primed initial state instead of regenerating it — changes no bits,
  // at serial and oversubscribed pool widths alike.
  for (int threads : {1, 8}) {
    SimConfig config = tiny_config();
    config.threads = threads;
    const Particles reference = run_private(config);

    comm::World world(1);
    world.run([&](comm::Communicator& comm) {
      SimContext ctx(config.threads);
      for (int repeat = 0; repeat < 2; ++repeat) {
        Simulation sim(ctx, comm, config);
        sim.initialize();
        const auto result = sim.run();
        ASSERT_TRUE(result.completed);
        expect_bitwise_equal(sim.particles(), reference);
      }
      // The second run must have been served from the cache, so the
      // identity above covered the fast-path, not two cold starts.
      EXPECT_EQ(ctx.asset_stats().initial_state_hits, 1u) << threads;
    });
  }
}

// --- asset-cache accounting --------------------------------------------------

TEST(SimContext, CachesPrimedInitialStateAndCoolingByConfig) {
  const SimConfig config = tiny_config();
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    SimContext ctx(1);
    for (int repeat = 0; repeat < 3; ++repeat) {
      Simulation sim(ctx, comm, config);
      sim.initialize();
    }
    const auto stats = ctx.asset_stats();
    EXPECT_EQ(stats.initial_state_misses, 1u);
    EXPECT_EQ(stats.initial_state_hits, 2u);
    // One cooling table serves all three (subgrid_on with one config).
    EXPECT_EQ(stats.cooling_misses, 1u);
    EXPECT_GE(stats.cooling_hits, 2u);

    // A different realization must NOT share the cached state.
    SimConfig other = config;
    other.seed = config.seed + 1;
    Simulation sim(ctx, comm, other);
    sim.initialize();
    EXPECT_EQ(ctx.asset_stats().initial_state_misses, 2u);
  });
}

TEST(SimContext, CoolingTableHandleIsSharedBitExact) {
  SimContext ctx(1);
  subgrid::CoolingConfig cooling;
  const auto a = ctx.cooling_table(cooling);
  const auto b = ctx.cooling_table(cooling);
  ASSERT_TRUE(a);
  EXPECT_EQ(a.get(), b.get());  // same immutable asset, not a copy

  subgrid::CoolingConfig warmer = cooling;
  warmer.t_floor_K *= 2.0;
  const auto c = ctx.cooling_table(warmer);
  ASSERT_TRUE(c);
  EXPECT_NE(a.get(), c.get());

  const auto stats = ctx.asset_stats();
  EXPECT_EQ(stats.cooling_hits, 1u);
  EXPECT_EQ(stats.cooling_misses, 2u);
}

TEST(SimContext, FftPlanCacheServesRepeatRuns) {
  // The plan cache is process-wide, so assert on deltas: a second
  // identical simulation must add plan hits but no new plans.
  const SimConfig config = tiny_config();
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    SimContext ctx(1);
    {
      Simulation sim(ctx, comm, config);
      sim.initialize();
      ASSERT_TRUE(sim.run().completed);
    }
    const auto warm = ctx.asset_stats();
    {
      Simulation sim(ctx, comm, config);
      sim.initialize();
      ASSERT_TRUE(sim.run().completed);
    }
    const auto after = ctx.asset_stats();
    EXPECT_GT(after.fft_plan_hits, warm.fft_plan_hits);
    EXPECT_EQ(after.fft_plan_misses, warm.fft_plan_misses);
  });
}

// --- initial-state cache key semantics ---------------------------------------

TEST(SimContext, InitialStateKeyTracksPrimingInputsOnly) {
  const SimConfig base = tiny_config();
  const std::string key = SimContext::initial_state_key(base, 0, 1);

  // Fields that feed IC generation or solver priming change the key.
  SimConfig reseeded = base;
  reseeded.seed += 1;
  EXPECT_NE(SimContext::initial_state_key(reseeded, 0, 1), key);

  SimConfig denser = base;
  denser.np += 2;
  EXPECT_NE(SimContext::initial_state_key(denser, 0, 1), key);

  SimConfig hotter = base;
  hotter.sph.eta *= 1.1;  // priming iterates smoothing lengths with eta
  EXPECT_NE(SimContext::initial_state_key(hotter, 0, 1), key);

  // The domain is part of the key.
  EXPECT_NE(SimContext::initial_state_key(base, 1, 2), key);

  // Evolution-only knobs do NOT change the key — this is what lets a
  // calibration sweep (softening, step count, final epoch) share one
  // primed realization through the farm.
  SimConfig sweep = base;
  sweep.softening = 0.123;
  sweep.num_pm_steps += 5;
  sweep.z_final = 2.0;
  EXPECT_EQ(SimContext::initial_state_key(sweep, 0, 1), key);

  // Thread count never changes results, so it never splits the cache.
  SimConfig wide = base;
  wide.threads = 8;
  EXPECT_EQ(SimContext::initial_state_key(wide, 0, 1), key);
}

// --- RunResult::merge --------------------------------------------------------

TEST(RunResult, MergeSumsCountersAndAppendsReports) {
  RunResult a;
  a.steps_done = 3;
  a.interruptions = 1;
  a.recovery_attempts = 2;
  a.sdc_detections = 1;
  a.io.local_retries = 4;
  a.io.longest_chain = 3;
  a.reports.resize(3);
  a.trace_events = 10;

  RunResult b;
  b.steps_done = 5;
  b.interruptions = 2;
  b.recovery_attempts = 1;
  b.sdc_detections = 2;
  b.io.local_retries = 1;
  b.io.degraded_to_direct = true;
  b.io.longest_chain = 2;
  b.reports.resize(5);
  b.trace_events = 7;

  a.merge(b);
  EXPECT_EQ(a.steps_done, 8u);
  EXPECT_EQ(a.interruptions, 3u);
  EXPECT_EQ(a.recovery_attempts, 3u);
  EXPECT_EQ(a.sdc_detections, 3u);
  EXPECT_EQ(a.io.local_retries, 5u);
  EXPECT_TRUE(a.io.degraded_to_direct);          // OR
  EXPECT_EQ(a.io.longest_chain, 3u);             // max, not sum
  EXPECT_EQ(a.reports.size(), 8u);               // append
  EXPECT_EQ(a.trace_events, 17u);
}

TEST(RunResult, MergeCombinesPhaseStatsByNameAndThreading) {
  RunResult a;
  a.phase_stats.push_back({"gravity", 1.0, 2.0});
  a.threading.threads = 2;
  a.threading.busy_seconds = {1.0, 2.0};
  a.threading.steals = 5;

  RunResult b;
  b.phase_stats.push_back({"gravity", 0.5, 1.0});
  b.phase_stats.push_back({"sph", 3.0, 4.0});
  b.threading.threads = 4;
  b.threading.busy_seconds = {0.5, 0.5, 0.25, 0.25};
  b.threading.steals = 2;

  a.merge(b);
  ASSERT_EQ(a.phase_stats.size(), 2u);
  EXPECT_EQ(a.phase_stats[0].name, "gravity");
  EXPECT_DOUBLE_EQ(a.phase_stats[0].mean_seconds, 1.5);
  EXPECT_DOUBLE_EQ(a.phase_stats[0].max_seconds, 3.0);
  EXPECT_EQ(a.phase_stats[1].name, "sph");
  EXPECT_EQ(a.threading.threads, 4u);            // max pool width
  EXPECT_EQ(a.threading.steals, 7u);
  ASSERT_EQ(a.threading.busy_seconds.size(), 4u);  // widened, summed
  EXPECT_DOUBLE_EQ(a.threading.busy_seconds[0], 1.5);
  EXPECT_DOUBLE_EQ(a.threading.busy_seconds[1], 2.5);
}

TEST(RunResult, MergeKeepsCompletedAndTakesNewestSchedule) {
  RunResult a;
  a.completed = true;
  a.launch_schedule = "leaf_owner";

  RunResult failed;
  failed.completed = false;
  failed.launch_schedule = "simd";
  a.merge(failed);
  // `completed` is a caller-level judgment, never merged.
  EXPECT_TRUE(a.completed);
  EXPECT_EQ(a.launch_schedule, "simd");  // newest non-empty wins

  RunResult empty;
  a.merge(empty);
  EXPECT_EQ(a.launch_schedule, "simd");  // empty never overwrites
}

// --- MemFaultInjector armed-refs contract ------------------------------------

TEST(MemFaultInjector, ArmedRefsBalanceAcrossArmDisarmAndSimDeath) {
  const SimConfig config = tiny_config();
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    MemFaultInjector injector(0.0, 7);
    SimContext ctx(1);
    {
      Simulation sim(ctx, comm, config);
      sim.set_memory_fault_injector(&injector);
      EXPECT_EQ(injector.armed_refs(), 1);
      sim.set_memory_fault_injector(&injector);  // re-arm is not a leak
      EXPECT_EQ(injector.armed_refs(), 1);
      sim.set_memory_fault_injector(nullptr);
      EXPECT_EQ(injector.armed_refs(), 0);

      sim.set_memory_fault_injector(&injector);
      EXPECT_EQ(injector.armed_refs(), 1);
    }
    // Simulation destruction releases the armed reference, so the
    // injector may now be destroyed without tripping its CHECK.
    EXPECT_EQ(injector.armed_refs(), 0);
  });
}

// --- legacy constructor ------------------------------------------------------

// The deprecated private-context constructor must stay constructible for
// one release even though no in-repo caller uses it.
static_assert(
    std::is_constructible_v<Simulation, comm::Communicator&,
                            const SimConfig&>,
    "legacy Simulation(comm, config) constructor must remain available");

}  // namespace
}  // namespace crkhacc::core
