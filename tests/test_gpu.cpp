// Tests for the device model and the warp-split launch drivers.
//
// The central property: the naive and warp-split drivers produce the
// same physics for any kernel written against the concept, while the
// warp-split driver performs measurably fewer global loads and partial
// evaluations — the exact claim of the paper's Algorithm 1.
#include <gtest/gtest.h>

#include <cmath>

#include "core/particles.h"
#include "gpu/device.h"
#include "gpu/warp.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc::gpu {
namespace {

Particles random_particles(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box), 0, 0, 0,
                static_cast<float>(0.5 + rng.next_double()));
  }
  return p;
}

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

/// Test kernel with a separable structure: phi_i = sum_j m_i * m_j / (1 + r^2).
/// partial() computes the per-particle mass term once (f_i = g_i = m).
class SeparableKernel {
 public:
  static constexpr const char* kName = "test_separable";
  static constexpr double kFlopsPerInteraction = 10.0;
  static constexpr double kFlopsPerPartial = 2.0;

  struct State {
    float x, y, z, m;
  };
  struct Partial {
    float fm;  ///< 2 * m (any nontrivial separable term)
  };
  struct Accum {
    double phi = 0.0;
  };

  explicit SeparableKernel(const Particles& particles, std::vector<double>& out)
      : p_(particles), out_(out) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.mass[i]};
  }
  Partial partial(const State& s) const { return Partial{2.0f * s.m}; }
  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    acc.phi += 0.25 * static_cast<double>(self_p.fm) *
               static_cast<double>(other_p.fm) / (1.0 + r2);
  }
  void store(std::uint32_t i, const Accum& acc) { out_[i] += acc.phi; }

 private:
  const Particles& p_;
  std::vector<double>& out_;
};

/// Brute-force reference for the separable kernel over all pairs within
/// the chaining mesh's neighbor reach (here: all pairs, small box).
std::vector<double> reference_phi(const Particles& p) {
  std::vector<double> phi(p.size(), 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i == j) continue;
      const double dx = static_cast<double>(p.x[i]) - p.x[j];
      const double dy = static_cast<double>(p.y[i]) - p.y[j];
      const double dz = static_cast<double>(p.z[i]) - p.z[j];
      const double r2 = dx * dx + dy * dy + dz * dz;
      phi[i] += static_cast<double>(p.mass[i]) * p.mass[j] / (1.0 + r2);
    }
  }
  return phi;
}

class WarpDriverTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WarpDriverTest, WarpSplitMatchesNaiveAndReference) {
  const std::uint32_t warp_size = GetParam();
  // Single CM bin -> all leaf pairs interact: full N^2 comparison.
  const auto p = random_particles(150, 1.0, 42);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 16});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);

  std::vector<double> naive_phi(p.size(), 0.0);
  std::vector<double> split_phi(p.size(), 0.0);
  Particles copy = p;
  SeparableKernel naive_kernel(copy, naive_phi);
  SeparableKernel split_kernel(copy, split_phi);
  const auto naive_stats = launch_pair_kernel(naive_kernel, mesh, pairs,
                                              warp_size, LaunchMode::kNaive);
  const auto split_stats = launch_pair_kernel(split_kernel, mesh, pairs,
                                              warp_size, LaunchMode::kWarpSplit);

  const auto expected = reference_phi(p);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(naive_phi[i], expected[i], 1e-5 * std::abs(expected[i]));
    EXPECT_NEAR(split_phi[i], expected[i], 1e-5 * std::abs(expected[i]));
  }
  // Identical pair coverage.
  EXPECT_EQ(naive_stats.interactions, split_stats.interactions);
  EXPECT_EQ(naive_stats.interactions, 150u * 149u);
}

TEST_P(WarpDriverTest, WarpSplitReducesMemoryTraffic) {
  const std::uint32_t warp_size = GetParam();
  const auto p = random_particles(400, 1.0, 7);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 32});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);

  std::vector<double> sink(p.size(), 0.0);
  Particles copy = p;
  SeparableKernel kernel(copy, sink);
  const auto naive = launch_pair_kernel(kernel, mesh, pairs, warp_size,
                                        LaunchMode::kNaive);
  const auto split = launch_pair_kernel(kernel, mesh, pairs, warp_size,
                                        LaunchMode::kWarpSplit);
  // The whole point of Algorithm 1: far fewer loads and partials (the
  // reduction factor approaches the half-warp width W for full tiles).
  EXPECT_LT(split.global_loads * 2, naive.global_loads);
  EXPECT_LT(split.partial_evals * 2, naive.partial_evals);
  EXPECT_LT(split.register_bytes_per_thread, naive.register_bytes_per_thread);
  // FLOP accounting reflects the shared partials.
  EXPECT_LT(split.flops, naive.flops);
}

INSTANTIATE_TEST_SUITE_P(WarpSizes, WarpDriverTest,
                         ::testing::Values(8u, 16u, 32u, 64u));

TEST(WarpDriver, RaggedLeavesHandled) {
  // 13 particles in a tiny leaf-size mesh: chunks are ragged everywhere.
  const auto p = random_particles(13, 1.0, 3);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 4});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  std::vector<double> naive_phi(p.size(), 0.0), split_phi(p.size(), 0.0);
  Particles copy = p;
  SeparableKernel k1(copy, naive_phi), k2(copy, split_phi);
  launch_pair_kernel(k1, mesh, pairs, 64, LaunchMode::kNaive);
  launch_pair_kernel(k2, mesh, pairs, 64, LaunchMode::kWarpSplit);
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_NEAR(split_phi[i], naive_phi[i], 1e-9 + 1e-5 * std::abs(naive_phi[i]));
  }
}

TEST(WarpDriver, SinglePairNoSelfInteraction) {
  Particles p;
  p.push_back(0, Species::kDarkMatter, 0.1f, 0.1f, 0.1f, 0, 0, 0, 2.0f);
  tree::ChainingMesh mesh(cube(1.0), {2.0, 8});
  mesh.build(p);
  const auto pairs = mesh.interaction_pairs(10.0);
  std::vector<double> phi(1, 0.0);
  SeparableKernel kernel(p, phi);
  const auto stats =
      launch_pair_kernel(kernel, mesh, pairs, 64, LaunchMode::kWarpSplit);
  EXPECT_EQ(stats.interactions, 0u);
  EXPECT_DOUBLE_EQ(phi[0], 0.0);
}

// --- device model ------------------------------------------------------------

TEST(DeviceModel, TableOneSpecs) {
  const auto& devices = known_devices();
  ASSERT_EQ(devices.size(), 3u);
  EXPECT_NEAR(devices[0].peak_fp32_tflops, 23.9, 1e-9);  // MI250X GCD
  EXPECT_EQ(devices[0].warp_size, 64);
  EXPECT_NEAR(devices[1].peak_fp32_tflops, 22.5, 1e-9);  // PVC tile
  EXPECT_NEAR(devices[2].peak_fp32_tflops, 66.9, 1e-9);  // H100
  EXPECT_EQ(devices[2].warp_size, 32);
}

TEST(DeviceModel, HostPeakPositiveAndCached) {
  const double peak1 = host_peak_gflops();
  EXPECT_GT(peak1, 0.1);
  EXPECT_DOUBLE_EQ(host_peak_gflops(), peak1);
}

TEST(FlopRegistry, AccumulatesAndTracksPeak) {
  FlopRegistry registry;
  registry.add("slow", 1e6, 1.0);    // 1e-3 GFLOP/s
  registry.add("fast", 4e9, 1.0);    // 4 GFLOP/s
  registry.add("fast", 4e9, 1.0);
  EXPECT_DOUBLE_EQ(registry.total_flops(), 1e6 + 8e9);
  EXPECT_DOUBLE_EQ(registry.flops_of("fast"), 8e9);
  EXPECT_EQ(registry.peak_kernel(), "fast");
  EXPECT_NEAR(registry.peak_gflops(), 4.0, 1e-9);
  EXPECT_NEAR(registry.sustained_gflops(), (1e6 + 8e9) / 3.0 / 1e9, 1e-9);
}

TEST(FlopRegistry, MergeCombines) {
  FlopRegistry a, b;
  a.add("k", 100.0, 1.0);
  b.add("k", 200.0, 2.0);
  b.add("other", 50.0, 0.5);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.flops_of("k"), 300.0);
  EXPECT_DOUBLE_EQ(a.flops_of("other"), 50.0);
}

TEST(FlopRegistry, SortedByFlops) {
  FlopRegistry registry;
  registry.add("minor", 1.0, 1.0);
  registry.add("major", 100.0, 1.0);
  const auto sorted = registry.sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(std::get<0>(sorted[0]), "major");
}

}  // namespace
}  // namespace crkhacc::gpu
