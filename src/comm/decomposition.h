// Cartesian domain decomposition of a periodic box over ranks.
//
// CRK-HACC divides the simulation volume into cuboid subdomains, one per
// rank, with overlapping ("overloaded") boundary regions so short-range
// work is node-local. This class owns the geometry: near-cubic rank grid
// factorization, rank <-> coordinate maps, subdomain bounds, periodic
// neighbor enumeration, and point-in-overloaded-region tests.
#pragma once

#include <array>
#include <string>
#include <vector>

namespace crkhacc::comm {

/// Axis-aligned cuboid in box coordinates.
struct Box3 {
  std::array<double, 3> lo{0.0, 0.0, 0.0};
  std::array<double, 3> hi{0.0, 0.0, 0.0};

  bool contains(const std::array<double, 3>& p) const {
    for (int d = 0; d < 3; ++d) {
      if (p[d] < lo[d] || p[d] >= hi[d]) return false;
    }
    return true;
  }
  double volume() const {
    return (hi[0] - lo[0]) * (hi[1] - lo[1]) * (hi[2] - lo[2]);
  }
};

class CartDecomposition {
 public:
  /// Decompose a periodic cube of side `box_size` over `num_ranks` ranks,
  /// choosing the most cubic factorization nx*ny*nz = num_ranks.
  CartDecomposition(int num_ranks, double box_size);

  int num_ranks() const { return dims_[0] * dims_[1] * dims_[2]; }
  double box_size() const { return box_size_; }
  const std::array<int, 3>& dims() const { return dims_; }

  std::array<int, 3> coords_of(int rank) const;
  int rank_of(const std::array<int, 3>& coords) const;

  /// Owned (non-overloaded) subdomain of `rank`.
  Box3 local_box(int rank) const;

  /// Subdomain of `rank` expanded by `overload` on every face (may extend
  /// outside [0, box) — callers handle periodic wrapping of particles).
  Box3 overloaded_box(int rank, double overload) const;

  /// Rank owning position `p` (positions wrapped periodically).
  int owner_of(const std::array<double, 3>& p) const;

  /// The up-to-26 distinct neighbor ranks (periodic), excluding `rank`
  /// itself. With few ranks per axis, neighbors collapse and duplicates
  /// are removed.
  std::vector<int> neighbors_of(int rank) const;

  /// Wrap a coordinate into [0, box).
  double wrap(double x) const;
  std::array<double, 3> wrap(const std::array<double, 3>& p) const;

  /// Minimum-image displacement a-b in the periodic box.
  double min_image(double dx) const;

  /// "AxBxC grid over N ranks" — shrink/relaunch log and report lines.
  std::string describe() const;

 private:
  std::array<int, 3> dims_;
  double box_size_;
};

/// Most cubic factorization of n into three factors (descending).
std::array<int, 3> near_cubic_factorization(int n);

}  // namespace crkhacc::comm
