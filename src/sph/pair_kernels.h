// CRKSPH pair kernels, written against the warp-split kernel concept
// (gpu/warp.h). Three passes per hydro sub-step:
//
//   1. DensityKernel    — rho_i = sum_j m_j W(|x_ij|, h_i), neighbor count
//   2. CrkMomentKernel  — geometric moments m0, m1, m2 (volumes from rho)
//   3. MomentumEnergyKernel — corrected, symmetrized momentum and energy
//      exchange with Monaghan artificial viscosity and signal-speed
//      tracking for the CFL criterion
//
// All state is FP32 (the paper's short-range precision). FLOP constants
// are analytic per-operation counts in the profiler convention of
// Section V-B (FMA = 2 ops, transcendental = 1).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "core/particles.h"
#include "gpu/simd.h"
#include "sph/crk.h"
#include "sph/kernel.h"

namespace crkhacc::sph {

/// Per-particle scratch shared by the kernels and owned by SphSolver.
struct SphScratch {
  std::vector<float> volume;   ///< V_i = m_i / rho_i
  std::vector<float> press;    ///< pressure
  std::vector<float> cs;       ///< sound speed
  std::vector<float> crk_a;    ///< CRK A_i
  std::vector<std::array<float, 3>> crk_b;  ///< CRK B_i
  std::vector<CrkMoments> moments;
  std::vector<float> vsig;     ///< max signal speed seen this step
  std::vector<float> nnbr;     ///< neighbor count within 2 h_i

  void resize(std::size_t n) {
    volume.assign(n, 0.0f);
    press.assign(n, 0.0f);
    cs.assign(n, 0.0f);
    crk_a.assign(n, 1.0f);
    crk_b.assign(n, {0.0f, 0.0f, 0.0f});
    moments.assign(n, CrkMoments{});
    vsig.assign(n, 0.0f);
    nnbr.assign(n, 0.0f);
  }
};

// ---------------------------------------------------------------------------

template <typename Shape = CubicSpline>
class DensityKernelT {
 public:
  static constexpr const char* kName = "sph_density";
  static constexpr double kFlopsPerInteraction = 26.0;
  static constexpr double kFlopsPerPartial = 6.0;

  struct State {
    float x, y, z;
    float h;
    float mass;
  };
  struct Partial {
    float inv_h;    ///< f_i term: shared normalization
    float support;  ///< 2h (squared test radius precursor)
  };
  struct Accum {
    float rho = 0.0f;
    float nnbr = 0.0f;
  };

  DensityKernelT(Particles& particles, SphScratch& scratch,
                 const std::uint8_t* active)
      : p_(particles), scratch_(scratch), active_(active) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.hsml[i], p_.mass[i]};
  }

  Partial partial(const State& s) const {
    return Partial{1.0f / s.h, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& /*other_p*/, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= self_p.support * self_p.support) return;
    const float r = std::sqrt(r2);
    acc.rho += other.mass * Shape::w(r, self.h);
    acc.nnbr += 1.0f;
  }

  // += semantics: the driver stores once per leaf pair / warp tile (the
  // "per-leaf atomic"). The solver zeroes rho and adds the self term.
  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.rho[i] += acc.rho;
    scratch_.nnbr[i] += acc.nnbr;
  }

  // --- kSimd surface (gpu/warp_simd.h): interact's DAG per lane, the
  // support early-out as a mask, accumulators blended. Keep in lockstep
  // with interact.

  struct SimdLanes {
    gpu::simd::LaneArray x, y, z, h, mass, support;
    void set(std::uint32_t k, const State& s, const Partial& p) {
      x[k] = s.x;
      y[k] = s.y;
      z[k] = s.z;
      h[k] = s.h;
      mass[k] = s.mass;
      support[k] = p.support;
    }
  };

  struct SimdAccum {
    gpu::simd::vfloat rho = gpu::simd::vzero();
    gpu::simd::vfloat nnbr = gpu::simd::vzero();
    Accum lane(std::uint32_t l) const {
      return Accum{gpu::simd::extract(rho, l), gpu::simd::extract(nnbr, l)};
    }
  };

  template <typename Math>
  void interact_simd(const SimdLanes& self, std::uint32_t sb,
                     const SimdLanes& other, std::uint32_t ob,
                     gpu::simd::vmask live, SimdAccum& acc) const {
    namespace v = gpu::simd;
    const v::vfloat sx = v::load_aligned(self.x.data() + sb);
    const v::vfloat sy = v::load_aligned(self.y.data() + sb);
    const v::vfloat sz = v::load_aligned(self.z.data() + sb);
    const v::vfloat sh = v::load_aligned(self.h.data() + sb);
    const v::vfloat ssup = v::load_aligned(self.support.data() + sb);
    const v::vfloat ox = v::loadu(other.x.data() + ob);
    const v::vfloat oy = v::loadu(other.y.data() + ob);
    const v::vfloat oz = v::loadu(other.z.data() + ob);
    const v::vfloat omass = v::loadu(other.mass.data() + ob);
    const v::vfloat dx = sx - ox;
    const v::vfloat dy = sy - oy;
    const v::vfloat dz = sz - oz;
    const v::vfloat r2 = Math::madd(dz, dz, Math::madd(dy, dy, dx * dx));
    live = live & v::cmp_lt(r2, ssup * ssup);
    // Fully-dead blocks skip the kernel evaluation — the scalar driver's
    // early-out, block-wise. Bitwise neutral: every op below blends
    // under `live`.
    if (v::mask_bits(live) == 0) return;
    const v::vfloat r = v::sqrt(r2);
    const v::vfloat w = Shape::w_v(r, sh);
    acc.rho = v::select(live, Math::madd(omass, w, acc.rho), acc.rho);
    acc.nnbr = v::select(live, acc.nnbr + v::broadcast(1.0f), acc.nnbr);
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
};

// ---------------------------------------------------------------------------

template <typename Shape = CubicSpline>
class CrkMomentKernelT {
 public:
  static constexpr const char* kName = "crk_moments";
  static constexpr double kFlopsPerInteraction = 48.0;
  static constexpr double kFlopsPerPartial = 6.0;

  struct State {
    float x, y, z;
    float h;
    float volume;
  };
  struct Partial {
    float inv_h;
    float support;
  };
  struct Accum {
    CrkMoments m;
  };

  CrkMomentKernelT(Particles& particles, SphScratch& scratch,
                   const std::uint8_t* active)
      : p_(particles), scratch_(scratch), active_(active) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.hsml[i], scratch_.volume[i]};
  }

  Partial partial(const State& s) const {
    return Partial{1.0f / s.h, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& /*other_p*/, Accum& acc) const {
    // d = x_j - x_i with self playing i.
    const float dx = other.x - self.x;
    const float dy = other.y - self.y;
    const float dz = other.z - self.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= self_p.support * self_p.support) return;
    const float r = std::sqrt(r2);
    const float vw = other.volume * Shape::w(r, self.h);
    acc.m.m0 += vw;
    acc.m.m1[0] += vw * dx;
    acc.m.m1[1] += vw * dy;
    acc.m.m1[2] += vw * dz;
    acc.m.m2[0] += vw * dx * dx;
    acc.m.m2[1] += vw * dy * dy;
    acc.m.m2[2] += vw * dz * dz;
    acc.m.m2[3] += vw * dx * dy;
    acc.m.m2[4] += vw * dx * dz;
    acc.m.m2[5] += vw * dy * dz;
  }

  // += semantics (see DensityKernel::store); self term added by solver.
  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    CrkMoments& m = scratch_.moments[i];
    m.m0 += acc.m.m0;
    for (int d = 0; d < 3; ++d) m.m1[d] += acc.m.m1[d];
    for (int d = 0; d < 6; ++d) m.m2[d] += acc.m.m2[d];
  }

  // --- kSimd surface: interact's DAG per lane (note d = other - self
  // here). Keep in lockstep with interact.

  struct SimdLanes {
    gpu::simd::LaneArray x, y, z, h, volume, support;
    void set(std::uint32_t k, const State& s, const Partial& p) {
      x[k] = s.x;
      y[k] = s.y;
      z[k] = s.z;
      h[k] = s.h;
      volume[k] = s.volume;
      support[k] = p.support;
    }
  };

  struct SimdAccum {
    gpu::simd::vfloat m0 = gpu::simd::vzero();
    gpu::simd::vfloat m1x = gpu::simd::vzero();
    gpu::simd::vfloat m1y = gpu::simd::vzero();
    gpu::simd::vfloat m1z = gpu::simd::vzero();
    gpu::simd::vfloat m2xx = gpu::simd::vzero();
    gpu::simd::vfloat m2yy = gpu::simd::vzero();
    gpu::simd::vfloat m2zz = gpu::simd::vzero();
    gpu::simd::vfloat m2xy = gpu::simd::vzero();
    gpu::simd::vfloat m2xz = gpu::simd::vzero();
    gpu::simd::vfloat m2yz = gpu::simd::vzero();
    Accum lane(std::uint32_t l) const {
      namespace v = gpu::simd;
      Accum a;
      a.m.m0 = v::extract(m0, l);
      a.m.m1 = {v::extract(m1x, l), v::extract(m1y, l), v::extract(m1z, l)};
      a.m.m2 = {v::extract(m2xx, l), v::extract(m2yy, l), v::extract(m2zz, l),
                v::extract(m2xy, l), v::extract(m2xz, l), v::extract(m2yz, l)};
      return a;
    }
  };

  template <typename Math>
  void interact_simd(const SimdLanes& self, std::uint32_t sb,
                     const SimdLanes& other, std::uint32_t ob,
                     gpu::simd::vmask live, SimdAccum& acc) const {
    namespace v = gpu::simd;
    const v::vfloat sx = v::load_aligned(self.x.data() + sb);
    const v::vfloat sy = v::load_aligned(self.y.data() + sb);
    const v::vfloat sz = v::load_aligned(self.z.data() + sb);
    const v::vfloat sh = v::load_aligned(self.h.data() + sb);
    const v::vfloat ssup = v::load_aligned(self.support.data() + sb);
    const v::vfloat ox = v::loadu(other.x.data() + ob);
    const v::vfloat oy = v::loadu(other.y.data() + ob);
    const v::vfloat oz = v::loadu(other.z.data() + ob);
    const v::vfloat ovol = v::loadu(other.volume.data() + ob);
    // d = x_j - x_i with self playing i.
    const v::vfloat dx = ox - sx;
    const v::vfloat dy = oy - sy;
    const v::vfloat dz = oz - sz;
    const v::vfloat r2 = Math::madd(dz, dz, Math::madd(dy, dy, dx * dx));
    live = live & v::cmp_lt(r2, ssup * ssup);
    // Fully-dead blocks skip the moment sums — see DensityKernelT.
    if (v::mask_bits(live) == 0) return;
    const v::vfloat r = v::sqrt(r2);
    const v::vfloat vw = ovol * Shape::w_v(r, sh);
    const v::vfloat vwdx = vw * dx;
    const v::vfloat vwdy = vw * dy;
    const v::vfloat vwdz = vw * dz;
    acc.m0 = v::select(live, acc.m0 + vw, acc.m0);
    acc.m1x = v::select(live, Math::madd(vw, dx, acc.m1x), acc.m1x);
    acc.m1y = v::select(live, Math::madd(vw, dy, acc.m1y), acc.m1y);
    acc.m1z = v::select(live, Math::madd(vw, dz, acc.m1z), acc.m1z);
    acc.m2xx = v::select(live, Math::madd(vwdx, dx, acc.m2xx), acc.m2xx);
    acc.m2yy = v::select(live, Math::madd(vwdy, dy, acc.m2yy), acc.m2yy);
    acc.m2zz = v::select(live, Math::madd(vwdz, dz, acc.m2zz), acc.m2zz);
    acc.m2xy = v::select(live, Math::madd(vwdx, dy, acc.m2xy), acc.m2xy);
    acc.m2xz = v::select(live, Math::madd(vwdx, dz, acc.m2xz), acc.m2xz);
    acc.m2yz = v::select(live, Math::madd(vwdy, dz, acc.m2yz), acc.m2yz);
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
};

// ---------------------------------------------------------------------------

/// Artificial viscosity parameters (Monaghan-style).
struct ViscosityParams {
  float alpha = 1.0f;
  float beta = 2.0f;
  float eps = 0.01f;  ///< softening of mu in units of h^2
};

template <typename Shape = CubicSpline>
class MomentumEnergyKernelT {
 public:
  static constexpr const char* kName = "crk_momentum_energy";
  static constexpr double kFlopsPerInteraction = 112.0;
  static constexpr double kFlopsPerPartial = 4.0;

  struct State {
    float x, y, z;
    float vx, vy, vz;
    float h;
    float volume;
    float press;
    float cs;
    float rho;
    float crk_a;
    float bx, by, bz;
  };
  struct Partial {
    float pv;       ///< P_i V_i — the separable f_i / g_j term
    float support;  ///< 2h
  };
  struct Accum {
    float ax = 0.0f, ay = 0.0f, az = 0.0f;
    float du = 0.0f;
    float vsig = 0.0f;
  };

  /// `accel_scale` multiplies the stored accelerations and du (the
  /// cosmological 1/a factor converting comoving-gradient forces to
  /// peculiar-velocity rates; 1 for non-cosmological problems).
  MomentumEnergyKernelT(Particles& particles, SphScratch& scratch,
                        const std::uint8_t* active,
                        const ViscosityParams& visc,
                        float accel_scale = 1.0f)
      : p_(particles),
        scratch_(scratch),
        active_(active),
        visc_(visc),
        scale_(accel_scale) {}

  State load(std::uint32_t i) const {
    const auto& b = scratch_.crk_b[i];
    return State{p_.x[i],  p_.y[i],  p_.z[i],  p_.vx[i], p_.vy[i],
                 p_.vz[i], p_.hsml[i], scratch_.volume[i], scratch_.press[i],
                 scratch_.cs[i], p_.rho[i], scratch_.crk_a[i], b[0], b[1], b[2]};
  }

  Partial partial(const State& s) const {
    return Partial{s.press * s.volume, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;  // d_ij = x_i - x_j
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float support = std::max(self_p.support, other_p.support);
    if (r2 >= support * support || r2 <= 0.0f) return;
    const float r = std::sqrt(r2);

    // Corrected gradient of self's kernel w.r.t. x_i.
    const CrkCoefficients ci{self.crk_a, {self.bx, self.by, self.bz}};
    const std::array<float, 3> d_ij{dx, dy, dz};
    const auto gi = corrected_grad(ci, Shape::w(r, self.h),
                                   Shape::dw_dr(r, self.h), d_ij, r);
    // Corrected gradient of other's kernel w.r.t. x_j (d_ji = -d_ij).
    const CrkCoefficients cj{other.crk_a, {other.bx, other.by, other.bz}};
    const std::array<float, 3> d_ji{-dx, -dy, -dz};
    const auto gj = corrected_grad(cj, Shape::w(r, other.h),
                                   Shape::dw_dr(r, other.h), d_ji, r);
    // Antisymmetrized mean gradient: G_ij = (gi - gj)/2 = -G_ji.
    const float gx = 0.5f * (gi[0] - gj[0]);
    const float gy = 0.5f * (gi[1] - gj[1]);
    const float gz = 0.5f * (gi[2] - gj[2]);

    // Monaghan viscosity on approaching pairs.
    const float dvx = self.vx - other.vx;
    const float dvy = self.vy - other.vy;
    const float dvz = self.vz - other.vz;
    const float vdotr = dvx * dx + dvy * dy + dvz * dz;
    const float h_mean = 0.5f * (self.h + other.h);
    const float cs_mean = 0.5f * (self.cs + other.cs);
    const float rho_mean = 0.5f * (self.rho + other.rho);
    float visc = 0.0f;
    float mu = 0.0f;
    if (vdotr < 0.0f) {
      mu = h_mean * vdotr / (r2 + visc_.eps * h_mean * h_mean);
      visc = (-visc_.alpha * cs_mean * mu + visc_.beta * mu * mu) / rho_mean;
    }

    // Pair force on self: F = -[V_i V_j (P_i + P_j) + m_i m_j Pi_ij] G_ij.
    // (self_p.pv * other.volume + other_p.pv * self.volume) recovers
    // V_i V_j (P_i + P_j) from the shuffled separable partials.
    const float pressure_term =
        self_p.pv * other.volume + other_p.pv * self.volume;
    const float visc_term = self.volume * other.volume * rho_mean * rho_mean * visc;
    const float f = -(pressure_term + visc_term);
    const float mass = self.rho * self.volume;  // m_i
    const float inv_m = 1.0f / mass;
    acc.ax += f * gx * inv_m;
    acc.ay += f * gy * inv_m;
    acc.az += f * gz * inv_m;
    // Half of the pair's compressive work heats self:
    // du_i = -(1/2 m_i) F . (v_i - v_j).
    acc.du += -0.5f * f * (gx * dvx + gy * dvy + gz * dvz) * inv_m;

    // Signal speed for the CFL criterion.
    const float vsig = self.cs + other.cs - 3.0f * std::min(0.0f, mu);
    acc.vsig = std::max(acc.vsig, vsig);
  }

  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.ax[i] += scale_ * acc.ax;
    p_.ay[i] += scale_ * acc.ay;
    p_.az[i] += scale_ * acc.az;
    p_.du[i] += scale_ * acc.du;
    scratch_.vsig[i] = std::max(scratch_.vsig[i], acc.vsig);
  }

  // --- kSimd surface: interact's DAG per lane. The viscosity branch
  // (vdotr < 0) and std::min/std::max become selects; vsig tracking
  // max-blends under the live mask. Keep in lockstep with interact.

  struct SimdLanes {
    gpu::simd::LaneArray x, y, z, vx, vy, vz, h, volume, cs, rho;
    gpu::simd::LaneArray crk_a, bx, by, bz, pv, support;
    void set(std::uint32_t k, const State& s, const Partial& p) {
      x[k] = s.x;
      y[k] = s.y;
      z[k] = s.z;
      vx[k] = s.vx;
      vy[k] = s.vy;
      vz[k] = s.vz;
      h[k] = s.h;
      volume[k] = s.volume;
      cs[k] = s.cs;
      rho[k] = s.rho;
      crk_a[k] = s.crk_a;
      bx[k] = s.bx;
      by[k] = s.by;
      bz[k] = s.bz;
      pv[k] = p.pv;
      support[k] = p.support;
    }
  };

  struct SimdAccum {
    gpu::simd::vfloat ax = gpu::simd::vzero();
    gpu::simd::vfloat ay = gpu::simd::vzero();
    gpu::simd::vfloat az = gpu::simd::vzero();
    gpu::simd::vfloat du = gpu::simd::vzero();
    gpu::simd::vfloat vsig = gpu::simd::vzero();
    Accum lane(std::uint32_t l) const {
      namespace v = gpu::simd;
      return Accum{v::extract(ax, l), v::extract(ay, l), v::extract(az, l),
                   v::extract(du, l), v::extract(vsig, l)};
    }
  };

  template <typename Math>
  void interact_simd(const SimdLanes& self, std::uint32_t sb,
                     const SimdLanes& other, std::uint32_t ob,
                     gpu::simd::vmask live, SimdAccum& acc) const {
    namespace v = gpu::simd;
    // Geometry first: only the position/support lanes gate the cutoff,
    // so fully-dead blocks return before touching the other 12 fields.
    const v::vfloat sx = v::load_aligned(self.x.data() + sb);
    const v::vfloat sy = v::load_aligned(self.y.data() + sb);
    const v::vfloat sz = v::load_aligned(self.z.data() + sb);
    const v::vfloat ssup = v::load_aligned(self.support.data() + sb);
    const v::vfloat ox = v::loadu(other.x.data() + ob);
    const v::vfloat oy = v::loadu(other.y.data() + ob);
    const v::vfloat oz = v::loadu(other.z.data() + ob);
    const v::vfloat osup = v::loadu(other.support.data() + ob);

    const v::vfloat dx = sx - ox;  // d_ij = x_i - x_j
    const v::vfloat dy = sy - oy;
    const v::vfloat dz = sz - oz;
    const v::vfloat r2 = Math::madd(dz, dz, Math::madd(dy, dy, dx * dx));
    const v::vfloat support = v::max_std(ssup, osup);
    live = live & v::cmp_lt(r2, support * support) &
           v::cmp_gt(r2, v::vzero());
    // Fully-dead blocks skip both gradient evaluations and the viscosity
    // chain — see DensityKernelT.
    if (v::mask_bits(live) == 0) return;

    const v::vfloat svx = v::load_aligned(self.vx.data() + sb);
    const v::vfloat svy = v::load_aligned(self.vy.data() + sb);
    const v::vfloat svz = v::load_aligned(self.vz.data() + sb);
    const v::vfloat sh = v::load_aligned(self.h.data() + sb);
    const v::vfloat svol = v::load_aligned(self.volume.data() + sb);
    const v::vfloat scs = v::load_aligned(self.cs.data() + sb);
    const v::vfloat srho = v::load_aligned(self.rho.data() + sb);
    const v::vfloat sa = v::load_aligned(self.crk_a.data() + sb);
    const v::vfloat sbx = v::load_aligned(self.bx.data() + sb);
    const v::vfloat sby = v::load_aligned(self.by.data() + sb);
    const v::vfloat sbz = v::load_aligned(self.bz.data() + sb);
    const v::vfloat spv = v::load_aligned(self.pv.data() + sb);
    const v::vfloat ovx = v::loadu(other.vx.data() + ob);
    const v::vfloat ovy = v::loadu(other.vy.data() + ob);
    const v::vfloat ovz = v::loadu(other.vz.data() + ob);
    const v::vfloat oh = v::loadu(other.h.data() + ob);
    const v::vfloat ovol = v::loadu(other.volume.data() + ob);
    const v::vfloat ocs = v::loadu(other.cs.data() + ob);
    const v::vfloat orho = v::loadu(other.rho.data() + ob);
    const v::vfloat oa = v::loadu(other.crk_a.data() + ob);
    const v::vfloat obx = v::loadu(other.bx.data() + ob);
    const v::vfloat oby = v::loadu(other.by.data() + ob);
    const v::vfloat obz = v::loadu(other.bz.data() + ob);
    const v::vfloat opv = v::loadu(other.pv.data() + ob);
    const v::vfloat r = v::sqrt(r2);

    // Corrected gradients of self's kernel (w.r.t. x_i) and other's
    // (w.r.t. x_j; d_ji = -d_ij), then the antisymmetrized mean.
    const CorrectedGradV gi = corrected_grad_v<Math>(
        sa, sbx, sby, sbz, Shape::w_v(r, sh), Shape::dw_dr_v(r, sh), dx, dy,
        dz, r);
    const CorrectedGradV gj = corrected_grad_v<Math>(
        oa, obx, oby, obz, Shape::w_v(r, oh), Shape::dw_dr_v(r, oh),
        v::neg(dx), v::neg(dy), v::neg(dz), r);
    const v::vfloat gx = v::broadcast(0.5f) * (gi.x - gj.x);
    const v::vfloat gy = v::broadcast(0.5f) * (gi.y - gj.y);
    const v::vfloat gz = v::broadcast(0.5f) * (gi.z - gj.z);

    // Monaghan viscosity on approaching pairs: both sides computed, the
    // vdotr < 0 branch becomes a select (mu = visc = 0 otherwise).
    const v::vfloat dvx = svx - ovx;
    const v::vfloat dvy = svy - ovy;
    const v::vfloat dvz = svz - ovz;
    const v::vfloat vdotr =
        Math::madd(dvz, dz, Math::madd(dvy, dy, dvx * dx));
    const v::vfloat h_mean = v::broadcast(0.5f) * (sh + oh);
    const v::vfloat cs_mean = v::broadcast(0.5f) * (scs + ocs);
    const v::vfloat rho_mean = v::broadcast(0.5f) * (srho + orho);
    const v::vmask approach = v::cmp_lt(vdotr, v::vzero());
    const v::vfloat mu_raw =
        h_mean * vdotr /
        (r2 + v::broadcast(visc_.eps) * h_mean * h_mean);
    const v::vfloat visc_raw =
        (v::broadcast(-visc_.alpha) * cs_mean * mu_raw +
         v::broadcast(visc_.beta) * mu_raw * mu_raw) /
        rho_mean;
    const v::vfloat mu = v::select(approach, mu_raw, v::vzero());
    const v::vfloat visc = v::select(approach, visc_raw, v::vzero());

    const v::vfloat pressure_term = Math::madd(opv, svol, spv * ovol);
    const v::vfloat visc_term = svol * ovol * rho_mean * rho_mean * visc;
    const v::vfloat f = v::neg(pressure_term + visc_term);
    const v::vfloat mass = srho * svol;  // m_i
    const v::vfloat inv_m = v::broadcast(1.0f) / mass;
    acc.ax = v::select(live, Math::madd(f * gx, inv_m, acc.ax), acc.ax);
    acc.ay = v::select(live, Math::madd(f * gy, inv_m, acc.ay), acc.ay);
    acc.az = v::select(live, Math::madd(f * gz, inv_m, acc.az), acc.az);
    const v::vfloat gdotv =
        Math::madd(gz, dvz, Math::madd(gy, dvy, gx * dvx));
    acc.du = v::select(
        live, Math::madd(v::broadcast(-0.5f) * f * gdotv, inv_m, acc.du),
        acc.du);

    // Signal speed: vsig = cs_i + cs_j - 3 min(0, mu), max-tracked.
    const v::vfloat vsig =
        scs + ocs -
        v::broadcast(3.0f) * v::select(v::cmp_lt(mu, v::vzero()), mu,
                                       v::vzero());
    acc.vsig = v::select(live, v::max_std(acc.vsig, vsig), acc.vsig);
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
  ViscosityParams visc_;
  float scale_;
};

/// Default (cubic B-spline) instantiations — the names the rest of the
/// code uses; Wendland variants are selected by the solver config.
using DensityKernel = DensityKernelT<CubicSpline>;
using CrkMomentKernel = CrkMomentKernelT<CubicSpline>;
using MomentumEnergyKernel = MomentumEnergyKernelT<CubicSpline>;

}  // namespace crkhacc::sph
