file(REMOVE_RECURSE
  "CMakeFiles/crkhacc_integrator.dir/kdk.cpp.o"
  "CMakeFiles/crkhacc_integrator.dir/kdk.cpp.o.d"
  "CMakeFiles/crkhacc_integrator.dir/timestep.cpp.o"
  "CMakeFiles/crkhacc_integrator.dir/timestep.cpp.o.d"
  "libcrkhacc_integrator.a"
  "libcrkhacc_integrator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crkhacc_integrator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
