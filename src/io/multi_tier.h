// Multi-tiered checkpoint writer (Section IV-B4).
//
// Per rank: synchronized writes go to the node-local tier (NVMe); a
// background bleeder thread then moves completed files to the PFS tier
// and stamps a completion marker, while a pruning pass removes
// checkpoints older than the retention window on both tiers. The
// simulation thread only ever blocks on the fast local write — the PFS
// never sits on the critical path, which is how the paper sustains an
// effective bandwidth above Orion's direct-write peak.
//
// Fault hardening: every tier write is verified by read-back against the
// payload CRC32 and retried with bounded exponential backoff (torn
// writes, bit flips, and transient EIO are injectable via the stores'
// FaultPolicy). Completion markers carry the payload size + CRC, so a
// checkpoint only counts as complete once its bytes are provably intact
// on the PFS. If the node-local tier fails hard (sticky ENOSPC), the
// writer degrades gracefully to verified direct-to-PFS writes.
//
// write_checkpoint_direct() is the baseline: a synchronous write straight
// to the shared PFS, blocking the simulation for the full channel time.
//
// Checkpoints are written in the chunked column format (io/column_file.h).
// With CkptConfig::diff enabled the writer emits differential files —
// only the column chunks whose page CRC moved since the previous write —
// chained full -> diff -> ... with a bounded length; prune() is
// chain-aware and never drops a full (or intermediate diff) that a
// retained checkpoint still replays through. redundant_local keeps the
// node-local copy after the bleed as a repair source for ckpt_audit.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/particles.h"
#include "io/column_file.h"
#include "io/generic_io.h"
#include "io/storage.h"

namespace crkhacc::io {

struct MultiTierConfig {
  int rank = 0;
  int checkpoint_window = 2;  ///< keep this many most-recent steps
  int max_write_attempts = 4;   ///< verified-write attempts per tier op
  double backoff_base_s = 1e-3; ///< first retry delay (doubles per retry)
  double backoff_max_s = 5e-2;  ///< backoff ceiling
  CkptConfig ckpt{};            ///< checkpoint format / differential knobs
};

/// One checkpoint's accounting.
struct IoRecord {
  std::uint64_t step = 0;
  std::uint64_t bytes = 0;
  double local_seconds = 0.0;  ///< simulation-blocking time
  double pfs_seconds = 0.0;    ///< asynchronous bleed time
  bool bled = false;
  bool diff = false;                 ///< differential (vs full) write
  std::uint64_t chunks_written = 0;  ///< chunks carried in the file
  std::uint64_t chunks_total = 0;    ///< chunks a full write would carry
};

/// Fault-handling accounting across the writer's lifetime.
struct IoStats {
  std::uint64_t local_retries = 0;    ///< re-attempted node-local writes
  std::uint64_t pfs_retries = 0;      ///< re-attempted PFS writes
  std::uint64_t verify_failures = 0;  ///< read-back CRC mismatches caught
  std::uint64_t bleed_failures = 0;   ///< checkpoints that never completed
  bool degraded_to_direct = false;    ///< node-local tier abandoned
  std::uint64_t full_checkpoints = 0;
  std::uint64_t diff_checkpoints = 0;
  std::uint64_t chunks_written = 0;   ///< column chunks carried in files
  std::uint64_t chunks_skipped = 0;   ///< unchanged chunks elided by diffs
  std::uint64_t longest_chain = 0;    ///< deepest diff chain index reached
};

class MultiTierWriter {
 public:
  MultiTierWriter(ThrottledStore& local, ThrottledStore& pfs,
                  const MultiTierConfig& config);
  ~MultiTierWriter();

  MultiTierWriter(const MultiTierWriter&) = delete;
  MultiTierWriter& operator=(const MultiTierWriter&) = delete;

  /// Multi-tier path: blocking local write + queued async bleed.
  /// Returns the seconds the simulation was blocked.
  double write_checkpoint(const SnapshotMeta& meta, const Particles& particles);

  /// Baseline: synchronous write directly to the PFS (blocks for the
  /// full shared-channel service time).
  double write_checkpoint_direct(const SnapshotMeta& meta,
                                 const Particles& particles);

  /// Block until every queued bleed and prune has completed — or until
  /// the writer is shut down, whichever comes first.
  void drain();

  /// Stop the bleeder promptly, abandoning any still-queued bleeds, and
  /// release every blocked drain(). Idempotent; the destructor calls it.
  /// drain() first if settled bleeds are required.
  void shutdown();

  /// Accounting snapshot (drain() first for settled pfs numbers).
  std::vector<IoRecord> records() const;

  IoStats stats() const;

  std::uint64_t bytes_written() const;

  /// The tiers this writer is bound to. The node-local tier doubles as
  /// the redundant repair source for ckpt_audit when
  /// CkptConfig::redundant_local keeps copies after the bleed.
  ThrottledStore& local_tier() { return local_; }
  ThrottledStore& pfs_tier() { return pfs_; }

  static std::string checkpoint_path(std::uint64_t step, int rank);
  static std::string marker_path(std::uint64_t step, int rank);

 private:
  void worker_loop();
  void prune(std::uint64_t newest_step);
  /// Plan full-vs-diff, encode, and account the plan in stats/records.
  std::vector<std::uint8_t> encode_planned(const SnapshotMeta& meta,
                                           const Particles& particles,
                                           bool force_full, IoRecord& record);
  /// Verified write with bounded-backoff retries: write, read back,
  /// compare CRC; returns true once the bytes are provably on `store`.
  bool write_verified(ThrottledStore& store,  const std::string& rel_path,
                      const std::vector<std::uint8_t>& data,
                      std::uint32_t crc, std::uint64_t& retry_counter);
  /// Verified write of payload + CRC marker to the PFS; true on success.
  bool publish_to_pfs(std::uint64_t step,
                      const std::vector<std::uint8_t>& bytes);

  ThrottledStore& local_;
  ThrottledStore& pfs_;
  MultiTierConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::uint64_t> queue_;  ///< steps awaiting bleed
  std::vector<IoRecord> records_;
  IoStats stats_;
  bool stopping_ = false;
  bool degraded_ = false;  ///< local tier failed; direct PFS mode
  std::size_t in_flight_ = 0;

  CkptDiffPlanner planner_;  ///< simulation-thread only

  std::mutex prune_mutex_;
  std::uint64_t prune_floor_ = 0;  ///< lowest step not yet pruned
  /// step -> step of the full anchoring its chain; pruning must keep
  /// every step >= the chain root of any retained checkpoint.
  std::map<std::uint64_t, std::uint64_t> chain_roots_;

  std::thread worker_;
};

}  // namespace crkhacc::io
