#include "comm/decomposition.h"

#include <algorithm>
#include <cmath>

#include "util/assertions.h"

namespace crkhacc::comm {

std::array<int, 3> near_cubic_factorization(int n) {
  CHECK(n >= 1);
  std::array<int, 3> best{n, 1, 1};
  // Surface-to-volume ratio proxy: minimize the sum of the factors, which
  // for a fixed product favors the most cubic split.
  int best_cost = n + 2;
  for (int a = 1; a * a * a <= n; ++a) {
    if (n % a != 0) continue;
    const int rest = n / a;
    for (int b = a; b * b <= rest; ++b) {
      if (rest % b != 0) continue;
      const int c = rest / b;
      const int cost = a + b + c;
      if (cost < best_cost) {
        best_cost = cost;
        best = {c, b, a};  // descending
      }
    }
  }
  return best;
}

CartDecomposition::CartDecomposition(int num_ranks, double box_size)
    : dims_(near_cubic_factorization(num_ranks)), box_size_(box_size) {
  CHECK(box_size > 0.0);
}

std::array<int, 3> CartDecomposition::coords_of(int rank) const {
  CHECK(rank >= 0 && rank < num_ranks());
  std::array<int, 3> c;
  c[2] = rank % dims_[2];
  c[1] = (rank / dims_[2]) % dims_[1];
  c[0] = rank / (dims_[1] * dims_[2]);
  return c;
}

int CartDecomposition::rank_of(const std::array<int, 3>& coords) const {
  std::array<int, 3> c = coords;
  for (int d = 0; d < 3; ++d) {
    c[d] = ((c[d] % dims_[d]) + dims_[d]) % dims_[d];
  }
  return (c[0] * dims_[1] + c[1]) * dims_[2] + c[2];
}

Box3 CartDecomposition::local_box(int rank) const {
  const auto c = coords_of(rank);
  Box3 box;
  for (int d = 0; d < 3; ++d) {
    const double width = box_size_ / dims_[d];
    box.lo[d] = c[d] * width;
    box.hi[d] = (c[d] + 1) * width;
  }
  return box;
}

Box3 CartDecomposition::overloaded_box(int rank, double overload) const {
  Box3 box = local_box(rank);
  for (int d = 0; d < 3; ++d) {
    // The pad may exceed the subdomain (a rank can legitimately hold
    // ghost images of its own particles when an axis is unsplit — the
    // single-rank periodic case); cap at one full box so the +-1 image
    // offsets used by the exchange always suffice.
    const double pad = std::min(overload, box_size_);
    box.lo[d] -= pad;
    box.hi[d] += pad;
  }
  return box;
}

int CartDecomposition::owner_of(const std::array<double, 3>& p) const {
  std::array<int, 3> c;
  for (int d = 0; d < 3; ++d) {
    const double x = wrap(p[d]);
    const double width = box_size_ / dims_[d];
    c[d] = std::min(static_cast<int>(x / width), dims_[d] - 1);
  }
  return rank_of(c);
}

std::vector<int> CartDecomposition::neighbors_of(int rank) const {
  const auto c = coords_of(rank);
  std::vector<int> out;
  for (int dx = -1; dx <= 1; ++dx) {
    for (int dy = -1; dy <= 1; ++dy) {
      for (int dz = -1; dz <= 1; ++dz) {
        if (dx == 0 && dy == 0 && dz == 0) continue;
        const int r = rank_of({c[0] + dx, c[1] + dy, c[2] + dz});
        if (r != rank) out.push_back(r);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

double CartDecomposition::wrap(double x) const {
  double t = std::fmod(x, box_size_);
  if (t < 0.0) t += box_size_;
  // fmod can return exactly box_size_ after the correction when x is a
  // tiny negative value; fold it back.
  if (t >= box_size_) t = 0.0;
  return t;
}

std::array<double, 3> CartDecomposition::wrap(const std::array<double, 3>& p) const {
  return {wrap(p[0]), wrap(p[1]), wrap(p[2])};
}

double CartDecomposition::min_image(double dx) const {
  const double half = 0.5 * box_size_;
  while (dx > half) dx -= box_size_;
  while (dx < -half) dx += box_size_;
  return dx;
}

std::string CartDecomposition::describe() const {
  return std::to_string(dims_[0]) + "x" + std::to_string(dims_[1]) + "x" +
         std::to_string(dims_[2]) + " grid over " +
         std::to_string(num_ranks()) + " ranks";
}

}  // namespace crkhacc::comm
