// Overhead of the silent-data-corruption guardrails.
//
// The SDC layer wraps every PM step in (a) a paged, CRC-summed
// in-memory snapshot of rank-local particle state and (b) a post-step
// invariant audit (non-finite scan, bounds scan, conserved-quantity
// drift gates, chaining-mesh occupancy census, collective verdict).
// Both run on the critical path, so the layer is only deployable if the
// tax per step is small against the solver work it protects.
//
// This bench runs the identical multi-step problem with guardrails off
// and on (no fault injector armed, so no rollbacks — this is the
// steady-state cost, not the recovery cost), reports absolute and
// relative per-step overhead from the per-step stats the simulation
// already keeps, and gates the run: overhead must stay under 10% at the
// default page size. A second sweep varies the snapshot page size to
// show the CRC paging knob's (minor) effect.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "common.h"
#include "comm/world.h"
#include "core/simulation.h"

using namespace crkhacc;

namespace {

struct CasePoint {
  double wall_seconds = 0.0;      ///< full campaign wall time
  double snapshot_seconds = 0.0;  ///< summed capture time
  double audit_seconds = 0.0;     ///< summed audit time
  std::size_t snapshot_bytes = 0;
  std::size_t snapshot_pages = 0;
  std::uint64_t audits = 0;
  int steps = 0;
};

CasePoint run_case(const core::SimConfig& config) {
  CasePoint point;
  comm::World world(1);
  world.run([&](comm::Communicator& comm) {
    Stopwatch total;
    core::SimContext ctx(config.threads);
    core::Simulation sim(ctx, comm, config);
    sim.initialize();
    const auto result = sim.run();
    point.wall_seconds = total.seconds();
    point.steps = static_cast<int>(result.steps_done);
    point.audits = result.sdc_audits;
    for (const auto& report : result.reports) {
      point.snapshot_seconds += report.sdc.snapshot_seconds;
      point.audit_seconds += report.sdc.audit_seconds;
      point.snapshot_bytes = std::max(point.snapshot_bytes,
                                      report.sdc.snapshot_bytes);
      point.snapshot_pages = std::max(point.snapshot_pages,
                                      report.sdc.snapshot_pages);
    }
  });
  return point;
}

}  // namespace

int main() {
  auto base = bench::scaled_config(1, 12, /*hydro=*/true);
  base.num_pm_steps = 3;

  bench::print_header(
      "SDC guardrail overhead — snapshot + audit per PM step (1 rank, hydro)");

  auto off = base;
  off.sdc.enabled = false;
  const CasePoint baseline = run_case(off);

  auto on = base;
  on.sdc.enabled = true;
  const CasePoint guarded = run_case(on);

  const double per_step_base =
      baseline.steps > 0 ? baseline.wall_seconds / baseline.steps : 0.0;
  const double per_step_tax =
      guarded.steps > 0
          ? (guarded.snapshot_seconds + guarded.audit_seconds) / guarded.steps
          : 0.0;
  // Gate on the layer's own metered cost, not the wall-time delta: on a
  // shared machine the run-to-run wall noise of the solver dwarfs a
  // sub-percent guardrail tax.
  const double overhead_pct =
      per_step_base > 0.0 ? 100.0 * per_step_tax / per_step_base : 0.0;

  std::printf("%-22s %-12s %-12s %-12s %-10s\n", "case", "wall[s]",
              "snapshot[s]", "audit[s]", "steps");
  bench::print_rule();
  std::printf("%-22s %-12.3f %-12.3f %-12.3f %-10d\n", "guardrails off",
              baseline.wall_seconds, 0.0, 0.0, baseline.steps);
  std::printf("%-22s %-12.3f %-12.3f %-12.3f %-10d\n", "guardrails on",
              guarded.wall_seconds, guarded.snapshot_seconds,
              guarded.audit_seconds, guarded.steps);
  std::printf("\nsnapshot footprint: %.2f MiB in %zu pages (double-buffered: "
              "2x resident)\n",
              static_cast<double>(guarded.snapshot_bytes) / (1024.0 * 1024.0),
              guarded.snapshot_pages);
  std::printf("per-step solver time (off) : %.4f s\n", per_step_base);
  std::printf("per-step guardrail tax     : %.4f s (snapshot+audit, metered)\n",
              per_step_tax);
  std::printf("relative overhead          : %.2f%%  (gate: < 10%%)\n",
              overhead_pct);
  const bool pass = overhead_pct < 10.0 && guarded.steps == baseline.steps &&
                    guarded.audits == static_cast<std::uint64_t>(guarded.steps);
  std::printf("gate: %s\n\n", pass ? "PASS" : "FAIL");

  // Page-size sweep: smaller pages mean finer CRC granularity (better
  // corruption localization in logs) at more per-page overhead.
  std::printf("page-size sweep (snapshot capture cost):\n");
  std::printf("%-14s %-12s %-12s %-10s\n", "page[KiB]", "snapshot[s]",
              "audit[s]", "pages");
  bench::print_rule();
  std::vector<std::size_t> page_sizes = {4096, 16384, 65536, 262144};
  for (const std::size_t page : page_sizes) {
    auto swept = on;
    swept.sdc.page_bytes = page;
    const CasePoint point = run_case(swept);
    std::printf("%-14zu %-12.4f %-12.4f %-10zu\n", page / 1024,
                point.snapshot_seconds, point.audit_seconds,
                point.snapshot_pages);
  }

  std::printf("\nJSON: {\"bench\": \"sdc_overhead\", "
              "\"per_step_base_seconds\": %.6f, "
              "\"per_step_tax_seconds\": %.6f, "
              "\"overhead_pct\": %.4f, "
              "\"snapshot_bytes\": %zu, \"gate_pass\": %s}\n",
              per_step_base, per_step_tax, overhead_pct,
              guarded.snapshot_bytes, pass ? "true" : "false");
  return pass ? 0 : 1;
}
