file(REMOVE_RECURSE
  "CMakeFiles/ablation_tree_grow.dir/ablation_tree_grow.cpp.o"
  "CMakeFiles/ablation_tree_grow.dir/ablation_tree_grow.cpp.o.d"
  "ablation_tree_grow"
  "ablation_tree_grow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tree_grow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
