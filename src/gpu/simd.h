// Portable SIMD lane abstraction for the kSimd launch schedule.
//
// The warp-split tile (gpu/warp.h) rotates half-warp lanes so that every
// lane meets every partner exactly once; the per-accumulator operand order
// is fixed by that rotation. kSimd (gpu/warp_simd.h) evaluates kWidth of
// those lanes per instruction. The bitwise contract — kSimd results are
// bit-identical to the serial scalar driver — holds because:
//
//  * every operation here is a single IEEE-754 elementwise op (add, sub,
//    mul, div, sqrt), which produces the same bits lane-by-lane as the
//    scalar instruction (no reassociation, no widened intermediates);
//  * the build disables FP contraction globally (-ffp-contract=off in the
//    top-level CMakeLists), so the SCALAR kernels are also evaluated
//    operation-for-operation as written — GCC's default contract=fast
//    would otherwise fuse scalar a*b+c into FMA and break the identity;
//  * min/max follow the std::min/std::max selection semantics exactly
//    (implemented as compare + blend, NOT the SSE minps/maxps NaN/-0.0
//    rules); negation flips the sign bit (x ^ -0.0f, never 0 - x, which
//    differs on signed zeros); masked lanes BLEND the accumulator rather
//    than adding a zero contribution (-0.0f + 0.0f == +0.0f would flip
//    signed zeros);
//  * the fused-math policy (FusedMath) is the one deliberate departure:
//    madd() maps to real FMA, trading bitwise identity for an explicitly
//    ULP-gated mode (LaunchConfig::simd_math = kFused, tests/test_simd).
//
// Backend selection is configure-time (top-level CMakeLists):
//   CRKHACC_SIMD_AVX2      -> AVX2 intrinsics (kIsaName "avx2")
//   neither                -> portable scalar lanes (kIsaName "scalar")
//   CRKHACC_SIMD_DISABLED  -> same portable code, but kAvailable = false
//                             and LaunchConfig rejects kSimd ("none").
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>

#if defined(CRKHACC_SIMD_AVX2) && !defined(CRKHACC_SIMD_DISABLED)
#include <immintrin.h>
#define CRKHACC_SIMD_USE_AVX2 1
#endif

namespace crkhacc::gpu {

/// Largest supported half-warp (AMD's 64-lane warp split in two).
/// Lives here (not warp.h) so the lane-buffer geometry below can depend
/// on it without a circular include.
inline constexpr std::uint32_t kMaxHalfWarp = 32;

namespace simd {

/// Lanes evaluated per vector instruction.
inline constexpr std::uint32_t kWidth = 8;

#if defined(CRKHACC_SIMD_DISABLED)
inline constexpr bool kAvailable = false;
inline constexpr const char* kIsaName = "none";
#elif defined(CRKHACC_SIMD_USE_AVX2)
inline constexpr bool kAvailable = true;
inline constexpr const char* kIsaName = "avx2";
#else
inline constexpr bool kAvailable = true;
inline constexpr const char* kIsaName = "scalar";
#endif

/// Padded SoA slot count for one half-warp lane buffer: slot k holds lane
/// (k mod w), so a rotation by t is a contiguous (unaligned) load at
/// offset (base + t) mod w — base + t < w and k < kWidth keeps every such
/// load inside the padding. 40 floats = 160 bytes, a whole number of
/// 32-byte vectors.
inline constexpr std::uint32_t kLaneSlots = kMaxHalfWarp + kWidth;

/// One SoA field of a padded lane buffer. 32-byte aligned so block-base
/// loads (multiples of kWidth) can use aligned vector loads; rotated
/// partner loads go through loadu().
struct alignas(32) LaneArray {
  std::array<float, kLaneSlots> v{};

  float& operator[](std::uint32_t k) { return v[k]; }
  float operator[](std::uint32_t k) const { return v[k]; }
  float* data() { return v.data(); }
  const float* data() const { return v.data(); }
};

#if defined(CRKHACC_SIMD_USE_AVX2)

struct vfloat {
  __m256 v;
};
/// Per-lane all-ones (true) / all-zeros (false) bit mask.
struct vmask {
  __m256 m;
};

inline vfloat broadcast(float x) { return {_mm256_set1_ps(x)}; }
inline vfloat vzero() { return {_mm256_setzero_ps()}; }
inline vfloat load_aligned(const float* p) { return {_mm256_load_ps(p)}; }
inline vfloat loadu(const float* p) { return {_mm256_loadu_ps(p)}; }
inline void store(float* p, vfloat a) { _mm256_storeu_ps(p, a.v); }

inline vfloat operator+(vfloat a, vfloat b) { return {_mm256_add_ps(a.v, b.v)}; }
inline vfloat operator-(vfloat a, vfloat b) { return {_mm256_sub_ps(a.v, b.v)}; }
inline vfloat operator*(vfloat a, vfloat b) { return {_mm256_mul_ps(a.v, b.v)}; }
inline vfloat operator/(vfloat a, vfloat b) { return {_mm256_div_ps(a.v, b.v)}; }
inline vfloat sqrt(vfloat a) { return {_mm256_sqrt_ps(a.v)}; }
/// Exact IEEE negation: flip the sign bit (0 - x would turn +0 into +0).
inline vfloat neg(vfloat a) {
  return {_mm256_xor_ps(a.v, _mm256_set1_ps(-0.0f))};
}

inline vmask cmp_lt(vfloat a, vfloat b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_LT_OQ)};
}
inline vmask cmp_gt(vfloat a, vfloat b) {
  return {_mm256_cmp_ps(a.v, b.v, _CMP_GT_OQ)};
}
inline vmask operator&(vmask a, vmask b) {
  return {_mm256_and_ps(a.m, b.m)};
}
inline vmask operator|(vmask a, vmask b) {
  return {_mm256_or_ps(a.m, b.m)};
}
/// a where the mask lane is set, else b.
inline vfloat select(vmask m, vfloat a, vfloat b) {
  return {_mm256_blendv_ps(b.v, a.v, m.m)};
}
/// Reinterpret stored mask bits (LaneArray of 0x00000000 / 0xFFFFFFFF
/// lanes written via mask_on()) as a vmask.
inline vmask loadu_mask(const float* p) { return {_mm256_loadu_ps(p)}; }
/// Bit l of the result = lane l of the mask.
inline std::uint32_t mask_bits(vmask m) {
  return static_cast<std::uint32_t>(_mm256_movemask_ps(m.m));
}

/// Lane l of the result <- a[(l + n) mod kWidth] — the warp "shuffle".
inline vfloat rotate(vfloat a, std::uint32_t n) {
  alignas(32) std::int32_t idx[kWidth];
  for (std::uint32_t l = 0; l < kWidth; ++l) {
    idx[l] = static_cast<std::int32_t>((l + n) % kWidth);
  }
  return {_mm256_permutevar8x32_ps(
      a.v, _mm256_load_si256(reinterpret_cast<const __m256i*>(idx)))};
}

#else  // portable scalar-lane backend

struct vfloat {
  std::array<float, kWidth> v;
};
struct vmask {
  std::array<std::uint32_t, kWidth> m;
};

inline vfloat broadcast(float x) {
  vfloat r;
  r.v.fill(x);
  return r;
}
inline vfloat vzero() { return broadcast(0.0f); }
inline vfloat load_aligned(const float* p) {
  vfloat r;
  std::memcpy(r.v.data(), p, sizeof(r.v));
  return r;
}
inline vfloat loadu(const float* p) { return load_aligned(p); }
inline void store(float* p, vfloat a) { std::memcpy(p, a.v.data(), sizeof(a.v)); }

inline vfloat operator+(vfloat a, vfloat b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = a.v[l] + b.v[l];
  return a;
}
inline vfloat operator-(vfloat a, vfloat b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = a.v[l] - b.v[l];
  return a;
}
inline vfloat operator*(vfloat a, vfloat b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = a.v[l] * b.v[l];
  return a;
}
inline vfloat operator/(vfloat a, vfloat b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = a.v[l] / b.v[l];
  return a;
}
inline vfloat sqrt(vfloat a) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = std::sqrt(a.v[l]);
  return a;
}
inline vfloat neg(vfloat a) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.v[l] = -a.v[l];
  return a;
}

inline vmask cmp_lt(vfloat a, vfloat b) {
  vmask r;
  for (std::uint32_t l = 0; l < kWidth; ++l) {
    r.m[l] = a.v[l] < b.v[l] ? 0xFFFFFFFFu : 0u;
  }
  return r;
}
inline vmask cmp_gt(vfloat a, vfloat b) {
  vmask r;
  for (std::uint32_t l = 0; l < kWidth; ++l) {
    r.m[l] = a.v[l] > b.v[l] ? 0xFFFFFFFFu : 0u;
  }
  return r;
}
inline vmask operator&(vmask a, vmask b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.m[l] &= b.m[l];
  return a;
}
inline vmask operator|(vmask a, vmask b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) a.m[l] |= b.m[l];
  return a;
}
inline vfloat select(vmask m, vfloat a, vfloat b) {
  for (std::uint32_t l = 0; l < kWidth; ++l) {
    if (m.m[l] == 0u) a.v[l] = b.v[l];
  }
  return a;
}
inline vmask loadu_mask(const float* p) {
  vmask r;
  std::memcpy(r.m.data(), p, sizeof(r.m));
  return r;
}
inline std::uint32_t mask_bits(vmask m) {
  std::uint32_t bits = 0;
  for (std::uint32_t l = 0; l < kWidth; ++l) {
    if (m.m[l] != 0u) bits |= 1u << l;
  }
  return bits;
}

inline vfloat rotate(vfloat a, std::uint32_t n) {
  vfloat r;
  for (std::uint32_t l = 0; l < kWidth; ++l) r.v[l] = a.v[(l + n) % kWidth];
  return r;
}

#endif  // backend

inline float extract(vfloat a, std::uint32_t l) {
  alignas(32) float out[kWidth];
  store(out, a);
  return out[l];
}

/// Strictly sequential lane sum: l0 + l1 + ... + l7. The defined order is
/// part of the lane-primitive contract (golden-tested in tests/test_simd)
/// so reductions stay deterministic across backends.
inline float reduce_add(vfloat a) {
  alignas(32) float out[kWidth];
  store(out, a);
  float sum = out[0];
  for (std::uint32_t l = 1; l < kWidth; ++l) sum += out[l];
  return sum;
}

/// {0, 1, ..., kWidth-1} — with broadcast + cmp_lt, the ragged-chunk lane
/// liveness test.
inline vfloat iota() {
  alignas(32) float out[kWidth];
  for (std::uint32_t l = 0; l < kWidth; ++l) out[l] = static_cast<float>(l);
  return load_aligned(out);
}

/// std::min semantics per lane: (b < a) ? b : a — NOT minps, whose NaN
/// and signed-zero behavior differs from the scalar kernels.
inline vfloat min_std(vfloat a, vfloat b) { return select(cmp_lt(b, a), b, a); }
/// std::max semantics per lane: (a < b) ? b : a.
inline vfloat max_std(vfloat a, vfloat b) { return select(cmp_lt(a, b), b, a); }

inline std::uint32_t popcount(vmask m) { return std::popcount(mask_bits(m)); }

/// The float whose bits are all-ones: a stored "true" mask lane. NaN as a
/// float, so masks built in LaneArrays are written via bit copy.
inline float mask_on() {
  const std::uint32_t bits = 0xFFFFFFFFu;
  float f;
  std::memcpy(&f, &bits, sizeof(f));
  return f;
}

/// Math policy for the SIMD kernels: every scalar a*b + c site is written
/// as Math::madd(a, b, c).
///  * ExactMath — mul then add, two rounds: bit-identical to the scalar
///    kernels (the default, and the schedule's bitwise contract).
///  * FusedMath — single-rounded FMA: faster and *more* accurate per
///    operation, but not bitwise vs. scalar; selected by
///    LaunchConfig::simd_math = kFused and gated by per-field ULP bounds
///    (tests/test_simd, bench/simd_lanes).
struct ExactMath {
  static constexpr const char* kName = "exact";
  static vfloat madd(vfloat a, vfloat b, vfloat c) { return a * b + c; }
};

struct FusedMath {
  static constexpr const char* kName = "fused";
  static vfloat madd(vfloat a, vfloat b, vfloat c) {
#if defined(CRKHACC_SIMD_USE_AVX2)
    return {_mm256_fmadd_ps(a.v, b.v, c.v)};
#else
    for (std::uint32_t l = 0; l < kWidth; ++l) {
      a.v[l] = std::fma(a.v[l], b.v[l], c.v[l]);
    }
    return a;
#endif
  }
};

}  // namespace simd
}  // namespace crkhacc::gpu
