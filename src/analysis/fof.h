// Friends-of-friends (FOF) halo finding.
//
// The classic percolation group finder (Davis et al. 1985): particles
// closer than the linking length b belong to the same group; halos are
// the connected components with at least `min_members` members. Neighbor
// discovery runs through the ArborX-analog BVH, exactly as the paper's in
// situ pipeline does on-device. Operates on a rank's local (overloaded)
// particle set; cross-rank dedup keys halos on whether their center lies
// in the rank's owned box.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace crkhacc::analysis {

struct FofResult {
  /// Group id per particle: [0, num_groups) for grouped particles,
  /// kUngrouped for members of below-threshold components.
  std::vector<std::int32_t> group_of;
  /// Member indices per surviving group, largest group first.
  std::vector<std::vector<std::uint32_t>> groups;

  static constexpr std::int32_t kUngrouped = -1;
  std::size_t num_groups() const { return groups.size(); }
};

/// Find FOF groups over the point set with linking length `b`.
FofResult fof(std::span<const float> x, std::span<const float> y,
              std::span<const float> z, float linking_length,
              std::size_t min_members);

/// Mean-interparticle-spacing linking length: b_frac * (V / N)^(1/3),
/// the survey convention (b_frac typically 0.168-0.2).
double fof_linking_length(double box, std::size_t n_global, double b_frac);

}  // namespace crkhacc::analysis
