#include "io/ckpt_audit.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "io/checkpoint.h"
#include "io/column_file.h"
#include "io/multi_tier.h"
#include "util/crc32.h"

namespace crkhacc::io {
namespace {

std::string step_dir(std::uint64_t step) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "ckpt/step%06llu",
                static_cast<unsigned long long>(step));
  return buf;
}

/// Total byte size the file should have per its (CRC-verified) directory
/// — what a torn write cut it short of.
std::uint64_t expected_file_size(const ParsedCheckpoint& parsed) {
  std::uint64_t end = 0;
  for (const ParsedColumn& col : parsed.columns) {
    for (const ParsedChunk& chunk : col.chunks) {
      end = std::max(end, chunk.offset + chunk.length);
    }
  }
  return end;
}

/// Fetch a validated redundant copy of (step, rank): parses clean, every
/// carried chunk intact, and describes the same file (step/rank/layout).
bool fetch_source(const std::vector<ThrottledStore*>& sources,
                  std::uint64_t step, int rank,
                  std::vector<std::uint8_t>& bytes, ParsedCheckpoint& parsed) {
  const auto rel = MultiTierWriter::checkpoint_path(step, rank);
  for (ThrottledStore* source : sources) {
    if (source == nullptr) continue;
    if (!source->read(rel, bytes)) continue;
    if (parse_checkpoint(bytes, parsed) != ParseStatus::kOk) continue;
    if (parsed.chunks_damaged != 0) continue;
    if (parsed.meta.snapshot.step != step ||
        parsed.meta.snapshot.rank != rank) {
      continue;
    }
    return true;
  }
  return false;
}

/// Verified write-back: the repair itself must not silently tear.
bool write_back(ThrottledStore& store, const std::string& rel,
                const std::vector<std::uint8_t>& bytes) {
  if (store.try_write(rel, bytes).status != IoStatus::kOk) return false;
  std::vector<std::uint8_t> echo;
  return store.read(rel, echo) && echo == bytes;
}

bool stamp_marker(ThrottledStore& pfs, std::uint64_t step, int rank,
                  const std::vector<std::uint8_t>& payload) {
  CheckpointMarker marker;
  marker.payload_bytes = payload.size();
  marker.payload_crc = crc32(payload.data(), payload.size());
  return write_back(pfs, MultiTierWriter::marker_path(step, rank),
                    encode_marker(marker));
}

}  // namespace

CkptAuditReport audit_checkpoints(
    ThrottledStore& pfs, const CkptAuditOptions& options,
    const std::vector<ThrottledStore*>& repair_sources) {
  CkptAuditReport report;
  struct Healthy {
    std::uint64_t step;
    int rank;
    CkptKind kind;
  };
  std::vector<Healthy> healthy;

  for (const std::uint64_t step : checkpoint_steps(pfs)) {
    if (options.only_step && *options.only_step != step) continue;

    std::vector<int> ranks;
    if (options.num_ranks > 0) {
      for (int r = 0; r < options.num_ranks; ++r) ranks.push_back(r);
    } else {
      // Infer the rank set from the directory: self-description extends
      // to discovery — no run config needed to audit a tree. Markers
      // count too: a rank whose payload vanished but whose `.ok` marker
      // survived is exactly the damage the audit must surface.
      for (const std::string& name : pfs.list(step_dir(step))) {
        int rank = -1;
        if (std::sscanf(name.c_str(), "rank%d.gio", &rank) == 1 &&
            (name.size() == std::strlen("rank00000.gio") ||
             name.size() == std::strlen("rank00000.gio.ok"))) {
          ranks.push_back(rank);
        }
      }
      std::sort(ranks.begin(), ranks.end());
      ranks.erase(std::unique(ranks.begin(), ranks.end()), ranks.end());
    }

    for (const int rank : ranks) {
      if (options.only_rank >= 0) {
        // With a stride, "mine" is the round-robin adoption set: every
        // writer rank this (possibly shrunken) rank will restore.
        const bool mine = options.rank_stride > 0
                              ? rank % options.rank_stride == options.only_rank
                              : rank == options.only_rank;
        if (!mine) continue;
      }
      ++report.files_scanned;
      const auto rel = MultiTierWriter::checkpoint_path(step, rank);

      std::vector<std::uint8_t> marker_bytes;
      CheckpointMarker marker;
      const bool marker_ok =
          pfs.read(MultiTierWriter::marker_path(step, rank), marker_bytes) &&
          decode_marker(marker_bytes, marker);

      auto add_damage = [&](const std::string& column, std::uint32_t chunk,
                            bool repaired, const std::string& reason) {
        report.damage.push_back(
            CkptDamage{step, rank, column, chunk, repaired, reason});
      };

      // Whole-file replacement from a redundant copy; used when the
      // payload is missing or its header/directory is beyond parsing.
      auto repair_whole_file = [&]() -> bool {
        if (!options.repair) return false;
        std::vector<std::uint8_t> src;
        ParsedCheckpoint src_parsed;
        if (!fetch_source(repair_sources, step, rank, src, src_parsed)) {
          return false;
        }
        if (marker_ok && (src.size() != marker.payload_bytes ||
                          crc32(src.data(), src.size()) !=
                              marker.payload_crc)) {
          return false;  // the copy is not the file the marker promised
        }
        if (!write_back(pfs, rel, src)) return false;
        if (!marker_ok && !stamp_marker(pfs, step, rank, src)) return false;
        return true;
      };

      std::vector<std::uint8_t> bytes;
      if (!pfs.read(rel, bytes)) {
        ++report.files_damaged;
        const bool repaired = repair_whole_file();
        if (repaired) ++report.files_repaired;
        add_damage("<file>", 0, repaired, "payload missing");
        if (repaired) healthy.push_back({step, rank, CkptKind::kFull});
        continue;
      }

      ParsedCheckpoint parsed;
      const ParseStatus status = parse_checkpoint(bytes, parsed);
      if (status == ParseStatus::kLegacy) {
        ++report.files_legacy;
        add_damage("<file>", 0, false, "legacy format v1 (GIO1)");
        continue;
      }
      if (status != ParseStatus::kOk) {
        ++report.files_damaged;
        const bool repaired = repair_whole_file();
        if (repaired) ++report.files_repaired;
        add_damage("<file>", 0, repaired,
                   status == ParseStatus::kBadVersion
                       ? "unreadable newer format version"
                       : "header/directory corrupt");
        if (repaired) healthy.push_back({step, rank, parsed.meta.kind});
        continue;
      }

      report.chunks_checked += parsed.chunks_checked;
      const bool marker_match =
          marker_ok && bytes.size() == marker.payload_bytes &&
          crc32(bytes.data(), bytes.size()) == marker.payload_crc;

      if (parsed.chunks_damaged == 0) {
        if (marker_match) {
          ++report.files_ok;
          healthy.push_back({step, rank, parsed.meta.kind});
          continue;
        }
        // Payload provably intact (header, directory, and every chunk
        // CRC pass) but the completion marker is lost or stale: the
        // marker can be re-stamped from the payload itself.
        ++report.files_damaged;
        bool repaired = false;
        if (options.repair) repaired = stamp_marker(pfs, step, rank, bytes);
        if (repaired) ++report.files_repaired;
        add_damage("<marker>", 0, repaired, "marker missing or mismatched");
        if (repaired) healthy.push_back({step, rank, parsed.meta.kind});
        continue;
      }

      // Chunk-level damage: pinpoint each bad chunk, then patch from a
      // redundant copy if one carries that chunk intact.
      ++report.files_damaged;
      report.chunks_damaged += parsed.chunks_damaged;

      const std::uint64_t size_on_pfs = bytes.size();
      std::vector<std::uint8_t> src;
      ParsedCheckpoint src_parsed;
      const bool have_source =
          options.repair &&
          fetch_source(repair_sources, step, rank, src, src_parsed) &&
          src_parsed.meta.chunk_bytes == parsed.meta.chunk_bytes &&
          src_parsed.meta.snapshot.particle_count ==
              parsed.meta.snapshot.particle_count;
      if (have_source) {
        // A torn write may have truncated the payload region; restore
        // the directory-declared size before patching the tail chunks.
        const std::uint64_t full_size = expected_file_size(parsed);
        if (bytes.size() < full_size) bytes.resize(full_size, 0);
      }

      std::uint64_t patched = 0;
      for (const ParsedColumn& col : parsed.columns) {
        for (const ParsedChunk& chunk : col.chunks) {
          if (chunk.valid) continue;
          const std::string reason =
              chunk.offset + chunk.length > size_on_pfs
                  ? "chunk truncated (torn write)"
                  : "chunk CRC mismatch";
          bool repaired = false;
          if (have_source) {
            for (const ParsedColumn& scol : src_parsed.columns) {
              if (scol.name != col.name) continue;
              for (const ParsedChunk& schunk : scol.chunks) {
                if (schunk.index != chunk.index || !schunk.valid) continue;
                if (schunk.length != chunk.length) break;
                std::memcpy(bytes.data() + chunk.offset,
                            src.data() + schunk.offset, chunk.length);
                repaired = true;
                break;
              }
              break;
            }
          }
          if (repaired) ++patched;
          add_damage(col.name, chunk.index, repaired, reason);
        }
      }

      if (patched > 0) {
        // Only persist a repair the format itself can prove: re-parse
        // the patched bytes and check against the marker when we have
        // one (the healed file must be bitwise what the writer bled).
        ParsedCheckpoint verify;
        bool sound = parse_checkpoint(bytes, verify) == ParseStatus::kOk &&
                     verify.chunks_damaged == 0;
        if (sound && marker_ok) {
          sound = bytes.size() == marker.payload_bytes &&
                  crc32(bytes.data(), bytes.size()) == marker.payload_crc;
        }
        if (sound && write_back(pfs, rel, bytes) &&
            (marker_ok || stamp_marker(pfs, step, rank, bytes))) {
          report.chunks_repaired += patched;
          if (patched == parsed.chunks_damaged) {
            ++report.files_repaired;
            healthy.push_back({step, rank, parsed.meta.kind});
          }
        } else {
          // Roll the damage entries back to unrepaired: nothing landed.
          for (auto it = report.damage.rbegin();
               it != report.damage.rend() && patched > 0; ++it) {
            if (it->step == step && it->rank == rank && it->repaired) {
              it->repaired = false;
              --patched;
            }
          }
        }
      }
    }
  }

  // Chain pass (post-repair): a differential file is only as restorable
  // as its ancestry, so walk each healthy diff's chain on the PFS.
  for (const Healthy& h : healthy) {
    if (h.kind != CkptKind::kDiff) continue;
    ++report.chains_checked;
    if (!verify_checkpoint_rank(pfs, h.step, h.rank)) {
      ++report.chains_broken;
      report.damage.push_back(CkptDamage{h.step, h.rank, "<chain>", 0, false,
                                         "ancestor missing or damaged"});
    }
  }
  return report;
}

std::string CkptAuditReport::summary() const {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "ckpt_audit: %llu file(s) scanned — %llu ok, %llu damaged "
                "(%llu repaired), %llu legacy\n",
                static_cast<unsigned long long>(files_scanned),
                static_cast<unsigned long long>(files_ok),
                static_cast<unsigned long long>(files_damaged),
                static_cast<unsigned long long>(files_repaired),
                static_cast<unsigned long long>(files_legacy));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  chunks: %llu checked, %llu damaged, %llu repaired\n",
                static_cast<unsigned long long>(chunks_checked),
                static_cast<unsigned long long>(chunks_damaged),
                static_cast<unsigned long long>(chunks_repaired));
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  diff chains: %llu checked, %llu broken\n",
                static_cast<unsigned long long>(chains_checked),
                static_cast<unsigned long long>(chains_broken));
  out += buf;
  for (const CkptDamage& d : damage) {
    std::snprintf(buf, sizeof(buf),
                  "  step %llu rank %d: %s[%u] — %s%s\n",
                  static_cast<unsigned long long>(d.step), d.rank,
                  d.column.c_str(), d.chunk, d.reason.c_str(),
                  d.repaired ? " (repaired)" : "");
    out += buf;
  }
  out += clean() ? "  verdict: CLEAN\n" : "  verdict: DAMAGE REMAINS\n";
  return out;
}

}  // namespace crkhacc::io
