// CRKSPH pair kernels, written against the warp-split kernel concept
// (gpu/warp.h). Three passes per hydro sub-step:
//
//   1. DensityKernel    — rho_i = sum_j m_j W(|x_ij|, h_i), neighbor count
//   2. CrkMomentKernel  — geometric moments m0, m1, m2 (volumes from rho)
//   3. MomentumEnergyKernel — corrected, symmetrized momentum and energy
//      exchange with Monaghan artificial viscosity and signal-speed
//      tracking for the CFL criterion
//
// All state is FP32 (the paper's short-range precision). FLOP constants
// are analytic per-operation counts in the profiler convention of
// Section V-B (FMA = 2 ops, transcendental = 1).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "core/particles.h"
#include "sph/crk.h"
#include "sph/kernel.h"

namespace crkhacc::sph {

/// Per-particle scratch shared by the kernels and owned by SphSolver.
struct SphScratch {
  std::vector<float> volume;   ///< V_i = m_i / rho_i
  std::vector<float> press;    ///< pressure
  std::vector<float> cs;       ///< sound speed
  std::vector<float> crk_a;    ///< CRK A_i
  std::vector<std::array<float, 3>> crk_b;  ///< CRK B_i
  std::vector<CrkMoments> moments;
  std::vector<float> vsig;     ///< max signal speed seen this step
  std::vector<float> nnbr;     ///< neighbor count within 2 h_i

  void resize(std::size_t n) {
    volume.assign(n, 0.0f);
    press.assign(n, 0.0f);
    cs.assign(n, 0.0f);
    crk_a.assign(n, 1.0f);
    crk_b.assign(n, {0.0f, 0.0f, 0.0f});
    moments.assign(n, CrkMoments{});
    vsig.assign(n, 0.0f);
    nnbr.assign(n, 0.0f);
  }
};

// ---------------------------------------------------------------------------

template <typename Shape = CubicSpline>
class DensityKernelT {
 public:
  static constexpr const char* kName = "sph_density";
  static constexpr double kFlopsPerInteraction = 26.0;
  static constexpr double kFlopsPerPartial = 6.0;

  struct State {
    float x, y, z;
    float h;
    float mass;
  };
  struct Partial {
    float inv_h;    ///< f_i term: shared normalization
    float support;  ///< 2h (squared test radius precursor)
  };
  struct Accum {
    float rho = 0.0f;
    float nnbr = 0.0f;
  };

  DensityKernelT(Particles& particles, SphScratch& scratch,
                 const std::uint8_t* active)
      : p_(particles), scratch_(scratch), active_(active) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.hsml[i], p_.mass[i]};
  }

  Partial partial(const State& s) const {
    return Partial{1.0f / s.h, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& /*other_p*/, Accum& acc) const {
    const float dx = self.x - other.x;
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= self_p.support * self_p.support) return;
    const float r = std::sqrt(r2);
    acc.rho += other.mass * Shape::w(r, self.h);
    acc.nnbr += 1.0f;
  }

  // += semantics: the driver stores once per leaf pair / warp tile (the
  // "per-leaf atomic"). The solver zeroes rho and adds the self term.
  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.rho[i] += acc.rho;
    scratch_.nnbr[i] += acc.nnbr;
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
};

// ---------------------------------------------------------------------------

template <typename Shape = CubicSpline>
class CrkMomentKernelT {
 public:
  static constexpr const char* kName = "crk_moments";
  static constexpr double kFlopsPerInteraction = 48.0;
  static constexpr double kFlopsPerPartial = 6.0;

  struct State {
    float x, y, z;
    float h;
    float volume;
  };
  struct Partial {
    float inv_h;
    float support;
  };
  struct Accum {
    CrkMoments m;
  };

  CrkMomentKernelT(Particles& particles, SphScratch& scratch,
                   const std::uint8_t* active)
      : p_(particles), scratch_(scratch), active_(active) {}

  State load(std::uint32_t i) const {
    return State{p_.x[i], p_.y[i], p_.z[i], p_.hsml[i], scratch_.volume[i]};
  }

  Partial partial(const State& s) const {
    return Partial{1.0f / s.h, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& /*other_p*/, Accum& acc) const {
    // d = x_j - x_i with self playing i.
    const float dx = other.x - self.x;
    const float dy = other.y - self.y;
    const float dz = other.z - self.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    if (r2 >= self_p.support * self_p.support) return;
    const float r = std::sqrt(r2);
    const float vw = other.volume * Shape::w(r, self.h);
    acc.m.m0 += vw;
    acc.m.m1[0] += vw * dx;
    acc.m.m1[1] += vw * dy;
    acc.m.m1[2] += vw * dz;
    acc.m.m2[0] += vw * dx * dx;
    acc.m.m2[1] += vw * dy * dy;
    acc.m.m2[2] += vw * dz * dz;
    acc.m.m2[3] += vw * dx * dy;
    acc.m.m2[4] += vw * dx * dz;
    acc.m.m2[5] += vw * dy * dz;
  }

  // += semantics (see DensityKernel::store); self term added by solver.
  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    CrkMoments& m = scratch_.moments[i];
    m.m0 += acc.m.m0;
    for (int d = 0; d < 3; ++d) m.m1[d] += acc.m.m1[d];
    for (int d = 0; d < 6; ++d) m.m2[d] += acc.m.m2[d];
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
};

// ---------------------------------------------------------------------------

/// Artificial viscosity parameters (Monaghan-style).
struct ViscosityParams {
  float alpha = 1.0f;
  float beta = 2.0f;
  float eps = 0.01f;  ///< softening of mu in units of h^2
};

template <typename Shape = CubicSpline>
class MomentumEnergyKernelT {
 public:
  static constexpr const char* kName = "crk_momentum_energy";
  static constexpr double kFlopsPerInteraction = 112.0;
  static constexpr double kFlopsPerPartial = 4.0;

  struct State {
    float x, y, z;
    float vx, vy, vz;
    float h;
    float volume;
    float press;
    float cs;
    float rho;
    float crk_a;
    float bx, by, bz;
  };
  struct Partial {
    float pv;       ///< P_i V_i — the separable f_i / g_j term
    float support;  ///< 2h
  };
  struct Accum {
    float ax = 0.0f, ay = 0.0f, az = 0.0f;
    float du = 0.0f;
    float vsig = 0.0f;
  };

  /// `accel_scale` multiplies the stored accelerations and du (the
  /// cosmological 1/a factor converting comoving-gradient forces to
  /// peculiar-velocity rates; 1 for non-cosmological problems).
  MomentumEnergyKernelT(Particles& particles, SphScratch& scratch,
                        const std::uint8_t* active,
                        const ViscosityParams& visc,
                        float accel_scale = 1.0f)
      : p_(particles),
        scratch_(scratch),
        active_(active),
        visc_(visc),
        scale_(accel_scale) {}

  State load(std::uint32_t i) const {
    const auto& b = scratch_.crk_b[i];
    return State{p_.x[i],  p_.y[i],  p_.z[i],  p_.vx[i], p_.vy[i],
                 p_.vz[i], p_.hsml[i], scratch_.volume[i], scratch_.press[i],
                 scratch_.cs[i], p_.rho[i], scratch_.crk_a[i], b[0], b[1], b[2]};
  }

  Partial partial(const State& s) const {
    return Partial{s.press * s.volume, Shape::kSupport * s.h};
  }

  void interact(const State& self, const Partial& self_p, const State& other,
                const Partial& other_p, Accum& acc) const {
    const float dx = self.x - other.x;  // d_ij = x_i - x_j
    const float dy = self.y - other.y;
    const float dz = self.z - other.z;
    const float r2 = dx * dx + dy * dy + dz * dz;
    const float support = std::max(self_p.support, other_p.support);
    if (r2 >= support * support || r2 <= 0.0f) return;
    const float r = std::sqrt(r2);

    // Corrected gradient of self's kernel w.r.t. x_i.
    const CrkCoefficients ci{self.crk_a, {self.bx, self.by, self.bz}};
    const std::array<float, 3> d_ij{dx, dy, dz};
    const auto gi = corrected_grad(ci, Shape::w(r, self.h),
                                   Shape::dw_dr(r, self.h), d_ij, r);
    // Corrected gradient of other's kernel w.r.t. x_j (d_ji = -d_ij).
    const CrkCoefficients cj{other.crk_a, {other.bx, other.by, other.bz}};
    const std::array<float, 3> d_ji{-dx, -dy, -dz};
    const auto gj = corrected_grad(cj, Shape::w(r, other.h),
                                   Shape::dw_dr(r, other.h), d_ji, r);
    // Antisymmetrized mean gradient: G_ij = (gi - gj)/2 = -G_ji.
    const float gx = 0.5f * (gi[0] - gj[0]);
    const float gy = 0.5f * (gi[1] - gj[1]);
    const float gz = 0.5f * (gi[2] - gj[2]);

    // Monaghan viscosity on approaching pairs.
    const float dvx = self.vx - other.vx;
    const float dvy = self.vy - other.vy;
    const float dvz = self.vz - other.vz;
    const float vdotr = dvx * dx + dvy * dy + dvz * dz;
    const float h_mean = 0.5f * (self.h + other.h);
    const float cs_mean = 0.5f * (self.cs + other.cs);
    const float rho_mean = 0.5f * (self.rho + other.rho);
    float visc = 0.0f;
    float mu = 0.0f;
    if (vdotr < 0.0f) {
      mu = h_mean * vdotr / (r2 + visc_.eps * h_mean * h_mean);
      visc = (-visc_.alpha * cs_mean * mu + visc_.beta * mu * mu) / rho_mean;
    }

    // Pair force on self: F = -[V_i V_j (P_i + P_j) + m_i m_j Pi_ij] G_ij.
    // (self_p.pv * other.volume + other_p.pv * self.volume) recovers
    // V_i V_j (P_i + P_j) from the shuffled separable partials.
    const float pressure_term =
        self_p.pv * other.volume + other_p.pv * self.volume;
    const float visc_term = self.volume * other.volume * rho_mean * rho_mean * visc;
    const float f = -(pressure_term + visc_term);
    const float mass = self.rho * self.volume;  // m_i
    const float inv_m = 1.0f / mass;
    acc.ax += f * gx * inv_m;
    acc.ay += f * gy * inv_m;
    acc.az += f * gz * inv_m;
    // Half of the pair's compressive work heats self:
    // du_i = -(1/2 m_i) F . (v_i - v_j).
    acc.du += -0.5f * f * (gx * dvx + gy * dvy + gz * dvz) * inv_m;

    // Signal speed for the CFL criterion.
    const float vsig = self.cs + other.cs - 3.0f * std::min(0.0f, mu);
    acc.vsig = std::max(acc.vsig, vsig);
  }

  void store(std::uint32_t i, const Accum& acc) {
    if (active_ && !active_[i]) return;
    p_.ax[i] += scale_ * acc.ax;
    p_.ay[i] += scale_ * acc.ay;
    p_.az[i] += scale_ * acc.az;
    p_.du[i] += scale_ * acc.du;
    scratch_.vsig[i] = std::max(scratch_.vsig[i], acc.vsig);
  }

 private:
  Particles& p_;
  SphScratch& scratch_;
  const std::uint8_t* active_;
  ViscosityParams visc_;
  float scale_;
};

/// Default (cubic B-spline) instantiations — the names the rest of the
/// code uses; Wendland variants are selected by the solver config.
using DensityKernel = DensityKernelT<CubicSpline>;
using CrkMomentKernel = CrkMomentKernelT<CubicSpline>;
using MomentumEnergyKernel = MomentumEnergyKernelT<CubicSpline>;

}  // namespace crkhacc::sph
