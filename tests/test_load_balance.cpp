// Dynamic load balancing: the census cost model against brute-force
// pair counts, the pure assignment/gating/bin-pick policies, work-packet
// wire round-trips, the single-process ship/execute/apply path against
// the unbalanced launch (bitwise), and the 4-rank end-to-end contract —
// a balanced clustered run is bit_cast-identical to the unbalanced one
// at every thread count and launch schedule while the executed-FLOP
// imbalance drops.
#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "comm/decomposition.h"
#include "comm/work_packets.h"
#include "comm/world.h"
#include "core/load_balancer.h"
#include "core/simulation.h"
#include "gpu/device.h"
#include "gravity/short_range.h"
#include "support/clustered_ic.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc::core {
namespace {

comm::Box3 cube(double size) {
  comm::Box3 box;
  box.lo = {0, 0, 0};
  box.hi = {size, size, size};
  return box;
}

Particles random_cloud(std::size_t n, double box, std::uint64_t seed) {
  SplitMix64 rng(seed);
  Particles p;
  for (std::size_t i = 0; i < n; ++i) {
    p.push_back(i, Species::kDarkMatter,
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box),
                static_cast<float>(rng.next_double() * box), 0.0f, 0.0f, 0.0f,
                1.0f);
  }
  return p;
}

// --- cost model ---------------------------------------------------------

TEST(LbCostModel, CensusMatchesBruteForceOrderedPairCount) {
  const double box = 8.0;
  const auto p = random_cloud(500, box, 7);
  tree::ChainingMesh mesh(cube(box), {2.0, 8});
  mesh.build(p);

  // Brute force: per ordered particle pair (i, j), i != j, in the same
  // or adjacent bins (no periodic wrap — ghosts carry the wrap in
  // production), charge one interaction to i's bin.
  const auto& dims = mesh.dims();
  std::vector<std::array<int, 3>> coord(p.size());
  std::vector<std::size_t> bin(p.size());
  for (std::size_t i = 0; i < p.size(); ++i) {
    bin[i] = mesh.bin_of_position_for_test(p.x[i], p.y[i], p.z[i]);
    coord[i] = {static_cast<int>(bin[i] % dims[0]),
                static_cast<int>((bin[i] / dims[0]) % dims[1]),
                static_cast<int>(bin[i] / (static_cast<std::size_t>(dims[0]) *
                                           dims[1]))};
  }
  std::vector<double> brute(mesh.num_bins(), 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) {
    for (std::size_t j = 0; j < p.size(); ++j) {
      if (i == j) continue;
      if (std::abs(coord[i][0] - coord[j][0]) > 1 ||
          std::abs(coord[i][1] - coord[j][1]) > 1 ||
          std::abs(coord[i][2] - coord[j][2]) > 1) {
        continue;
      }
      brute[bin[i]] += 1.0;
    }
  }

  const auto costs = lb_bin_costs(mesh);
  ASSERT_EQ(costs.size(), mesh.num_bins());
  double total = 0.0;
  for (std::size_t b = 0; b < costs.size(); ++b) {
    EXPECT_EQ(costs[b], brute[b]) << "bin " << b;  // exact: integer-valued
    total += brute[b];
  }
  EXPECT_EQ(lb_census_cost(mesh), total);
}

TEST(LbCostModel, BlendFallsBackToCensusWithoutFullMeasurements) {
  const std::vector<double> census{4.0, 2.0, 6.0};
  // One missing measurement (first step / tracing off) => pure census.
  EXPECT_EQ(lb_blend_costs(census, {1.0, 0.0, 1.0}), census);
  EXPECT_EQ(lb_blend_costs(census, {0.0, 0.0, 0.0}), census);
}

TEST(LbCostModel, BlendAveragesNormalizedSignalsPreservingTotal) {
  const std::vector<double> census{4.0, 2.0, 6.0};     // mean 4
  const std::vector<double> measured{1.0, 1.0, 1.0};   // flat
  const auto blended = lb_blend_costs(census, measured);
  // Halfway between the census share and flat, in census units.
  EXPECT_DOUBLE_EQ(blended[0], 0.5 * (4.0 + 4.0));
  EXPECT_DOUBLE_EQ(blended[1], 0.5 * (2.0 + 4.0));
  EXPECT_DOUBLE_EQ(blended[2], 0.5 * (6.0 + 4.0));
  EXPECT_DOUBLE_EQ(blended[0] + blended[1] + blended[2], 12.0);
}

// --- assignment / gate / bin pick ---------------------------------------

TEST(LbAssign, OverloadedRankClaimsCheapestNeighborTiesToLowestRank) {
  const comm::CartDecomposition decomp(4, 32.0);  // 2x2x1: all adjacent
  LbConfig config;
  const std::vector<double> costs{100.0, 10.0, 10.0, 10.0};  // mean 32.5
  const auto plan = lb_assign(costs, decomp, config);
  EXPECT_DOUBLE_EQ(plan.imbalance_before, 100.0 / 32.5);
  ASSERT_EQ(plan.migrations.size(), 1u);
  EXPECT_EQ(plan.migrations[0].donor, 0);
  EXPECT_EQ(plan.migrations[0].helper, 1);  // cost tie -> lowest rank
  // min(excess 67.5, headroom 22.5, max_fraction 50) = 22.5.
  EXPECT_DOUBLE_EQ(plan.migrations[0].delta, 22.5);
  EXPECT_DOUBLE_EQ(plan.imbalance_after, 77.5 / 32.5);
}

TEST(LbAssign, DonorAndHelperSetsStayDisjoint) {
  const comm::CartDecomposition decomp(4, 32.0);
  LbConfig config;
  // Two donors, two near-empty ranks: each donor must claim its own
  // helper, never another donor, never a claimed helper.
  const std::vector<double> costs{100.0, 1.0, 1.0, 98.0};  // mean 50
  const auto plan = lb_assign(costs, decomp, config);
  ASSERT_EQ(plan.migrations.size(), 2u);
  EXPECT_EQ(plan.migrations[0].donor, 0);
  EXPECT_EQ(plan.migrations[0].helper, 1);
  EXPECT_DOUBLE_EQ(plan.migrations[0].delta, 49.0);  // helper headroom
  EXPECT_EQ(plan.migrations[1].donor, 3);
  EXPECT_EQ(plan.migrations[1].helper, 2);
  EXPECT_DOUBLE_EQ(plan.migrations[1].delta, 48.0);  // donor excess
}

TEST(LbAssign, MaxFractionCapsTheShift) {
  const comm::CartDecomposition decomp(4, 32.0);
  LbConfig config;
  config.max_fraction = 0.25;
  const std::vector<double> costs{100.0, 1.0, 1.0, 98.0};
  const auto plan = lb_assign(costs, decomp, config);
  ASSERT_EQ(plan.migrations.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.migrations[0].delta, 25.0);
  EXPECT_DOUBLE_EQ(plan.migrations[1].delta, 24.5);
}

TEST(LbAssign, BalancedCostsProduceNoMigration) {
  const comm::CartDecomposition decomp(4, 32.0);
  const auto plan = lb_assign({5.0, 5.0, 5.0, 5.0}, decomp, LbConfig{});
  EXPECT_DOUBLE_EQ(plan.imbalance_before, 1.0);
  EXPECT_DOUBLE_EQ(plan.imbalance_after, 1.0);
  EXPECT_TRUE(plan.migrations.empty());
}

TEST(LbGate, EngagesAboveThresholdAndRearmsBelowHysteresisLevel) {
  LbConfig config;
  config.threshold = 1.5;
  config.hysteresis = 0.8;  // re-arm level 1 + 0.8 * 0.5 = 1.4
  EXPECT_FALSE(lb_gate(1.45, false, config));  // below threshold, off
  EXPECT_TRUE(lb_gate(1.55, false, config));   // crossed: engage
  EXPECT_TRUE(lb_gate(1.45, true, config));    // hovering: stay engaged
  EXPECT_FALSE(lb_gate(1.35, true, config));   // fell below re-arm: off
  EXPECT_TRUE(lb_gate(1.55, true, config));
}

TEST(LbGate, NonPositiveThresholdIsAlwaysOff) {
  LbConfig config;
  config.threshold = 0.0;
  EXPECT_FALSE(lb_gate(100.0, false, config));
  EXPECT_FALSE(lb_gate(100.0, true, config));
  config.threshold = -1.0;
  EXPECT_FALSE(lb_gate(100.0, true, config));
}

TEST(LbPickBins, GreedyTakeWhileHalfTheBinFitsTheTarget) {
  // delta 5: the 10-bin fits (10/2 <= 5) and fills the budget; the
  // smaller bins would overshoot and are skipped.
  const auto a = lb_pick_bins({10.0, 4.0, 2.0}, 5.0);
  EXPECT_EQ(a, (std::vector<std::uint8_t>{1, 0, 0}));
  // delta 2: the 10-bin overshoots (10/2 > 2) but the 4-bin fits.
  const auto b = lb_pick_bins({10.0, 4.0, 2.0}, 2.0);
  EXPECT_EQ(b, (std::vector<std::uint8_t>{0, 1, 0}));
  // Non-positive delta ships nothing.
  EXPECT_EQ(lb_pick_bins({10.0, 4.0}, 0.0),
            (std::vector<std::uint8_t>{0, 0}));
  // Empty bins never ship (the scan stops at cost <= 0).
  EXPECT_EQ(lb_pick_bins({0.0, 0.0}, 5.0), (std::vector<std::uint8_t>{0, 0}));
}

TEST(LbPickBins, EqualCostTiesGoToTheLowerBinIndex) {
  const auto flags = lb_pick_bins({3.0, 3.0, 3.0}, 2.0);
  EXPECT_EQ(flags, (std::vector<std::uint8_t>{1, 0, 0}));
}

// --- wire format --------------------------------------------------------

TEST(WorkPackets, PacketSurvivesEncodeDecodeRoundTrip) {
  comm::WorkPacket packet;
  packet.donor = 3;
  packet.substep = 11;
  packet.a_mid = 0.251;
  packet.leaf_begin = {0, 2, 5};
  packet.x = {1.0f, 2.0f, 3.0f, 4.0f, 5.0f};
  packet.y = {0.5f, 1.5f, 2.5f, 3.5f, 4.5f};
  packet.z = {9.0f, 8.0f, 7.0f, 6.0f, 5.0f};
  packet.mass = {1.0f, 1.0f, 2.0f, 2.0f, 3.0f};
  packet.task_owner = {0, 1};
  packet.task_entry_begin = {0, 2, 3};
  packet.entry_partner = {1, 0, 0};
  packet.entry_side = {0, 1, 2};
  const auto bytes = comm::encode_work_packet(packet);
  const auto decoded = comm::decode_work_packet(bytes);
  EXPECT_EQ(decoded.donor, packet.donor);
  EXPECT_EQ(decoded.substep, packet.substep);
  EXPECT_EQ(decoded.a_mid, packet.a_mid);
  EXPECT_EQ(decoded.leaf_begin, packet.leaf_begin);
  EXPECT_EQ(decoded.x, packet.x);
  EXPECT_EQ(decoded.y, packet.y);
  EXPECT_EQ(decoded.z, packet.z);
  EXPECT_EQ(decoded.mass, packet.mass);
  EXPECT_EQ(decoded.task_owner, packet.task_owner);
  EXPECT_EQ(decoded.task_entry_begin, packet.task_entry_begin);
  EXPECT_EQ(decoded.entry_partner, packet.entry_partner);
  EXPECT_EQ(decoded.entry_side, packet.entry_side);
  EXPECT_EQ(decoded.num_leaves(), 2u);
  EXPECT_EQ(decoded.num_particles(), 5u);
  EXPECT_EQ(decoded.num_tasks(), 2u);
}

TEST(WorkPackets, ReplySurvivesEncodeDecodeRoundTrip) {
  comm::WorkReply reply;
  reply.substep = 4;
  reply.ax = {1.25f, -2.5f};
  reply.ay = {0.0f, 3.0f};
  reply.az = {-0.125f, 7.0f};
  const auto bytes = comm::encode_work_reply(reply);
  const auto decoded = comm::decode_work_reply(bytes);
  EXPECT_EQ(decoded.substep, reply.substep);
  EXPECT_EQ(decoded.ax, reply.ax);
  EXPECT_EQ(decoded.ay, reply.ay);
  EXPECT_EQ(decoded.az, reply.az);
}

// --- ship / execute / apply bitwise identity ----------------------------

// The whole migration data path in one process: extract a packet for a
// subset of owner tasks, execute it on "another rank" (fresh scratch
// state, adopted mesh), apply the reply, and require the result to be
// bit-identical to the plain unbalanced launch.
class MigrationBitwiseTest
    : public ::testing::TestWithParam<std::tuple<gpu::LaunchSchedule, int>> {};

TEST_P(MigrationBitwiseTest, RoundTripMatchesUnbalancedLaunchBitwise) {
  const auto [schedule, threads] = GetParam();
  if (schedule == gpu::LaunchSchedule::kSimd && !gpu::simd_support().available) {
    GTEST_SKIP() << "SIMD lanes unavailable in this build";
  }
  testsupport::ClusteredIcConfig ic;
  ic.box = 12.0;
  ic.count = 600;
  ic.scale = 1.0;
  ic.center_a = {3.0, 3.0, 6.0};
  ic.center_b = {9.0, 9.0, 6.0};
  const Particles base = testsupport::clustered_two_sphere_ic(ic);

  tree::ChainingMesh mesh(cube(ic.box), {2.0, 16});
  mesh.build(base);
  const auto pairs = mesh.interaction_pairs(3.0);
  const gpu::LaunchPlan plan(mesh, pairs);

  gravity::GravityConfig config;
  config.launch.schedule = schedule;
  util::ThreadPool pool(threads);
  util::ThreadPool* pool_ptr = threads > 1 ? &pool : nullptr;

  // Alternating activity mask: migrated inactive particles must keep
  // their zeroed accumulators on both paths.
  std::vector<std::uint8_t> active(base.size());
  for (std::size_t i = 0; i < base.size(); ++i) active[i] = (i % 3) != 0;

  Particles reference = base;
  gpu::FlopRegistry ref_flops;
  gravity::compute_short_range(reference, mesh, nullptr, config, 0.5,
                               active.data(), ref_flops, &pairs, pool_ptr);

  // Migrate the most expensive third of the census.
  const auto bin_costs = lb_bin_costs(mesh);
  const auto flags = lb_pick_bins(bin_costs, lb_census_cost(mesh) / 3.0);
  std::vector<std::uint8_t> skip(plan.num_owners(), 0);
  std::size_t migrated = 0;
  for (std::size_t t = 0; t < plan.num_owners(); ++t) {
    skip[t] = flags[mesh.leaf_bin(plan.owner(t))];
    migrated += skip[t];
  }
  ASSERT_GT(migrated, 0u);
  ASSERT_LT(migrated, plan.num_owners());  // both paths exercised

  Particles local = base;
  gpu::FlopRegistry flops;
  gravity::compute_short_range_owner_tasks(local, mesh, plan, nullptr, config,
                                           0.5, active.data(), flops,
                                           skip.data(), pool_ptr);
  const comm::WorkPacket packet = extract_work_packet(
      local, mesh, plan, skip, 0.5, /*substep=*/7, /*donor_rank=*/3);
  EXPECT_EQ(packet.num_tasks(), migrated);
  const comm::WorkReply reply =
      gravity::execute_work_packet(packet, nullptr, config, flops, pool_ptr);
  EXPECT_EQ(reply.substep, 7u);
  apply_work_reply(local, mesh, plan, skip, reply, active.data());

  // The helper charged the migrated interactions to the same kernel:
  // local-skipped + packet FLOPs must equal an unskipped owner-task
  // launch exactly. (Pair-order launches account partial tiles slightly
  // differently, so the reference registry is not the right yardstick.)
  Particles full = base;
  gpu::FlopRegistry full_flops;
  gravity::compute_short_range_owner_tasks(full, mesh, plan, nullptr, config,
                                           0.5, active.data(), full_flops,
                                           nullptr, pool_ptr);
  EXPECT_DOUBLE_EQ(flops.total_flops(), full_flops.total_flops());
  for (std::size_t i = 0; i < base.size(); ++i) {
    ASSERT_EQ(std::bit_cast<std::uint32_t>(local.ax[i]),
              std::bit_cast<std::uint32_t>(reference.ax[i]))
        << "particle " << i;
    ASSERT_EQ(std::bit_cast<std::uint32_t>(local.ay[i]),
              std::bit_cast<std::uint32_t>(reference.ay[i]));
    ASSERT_EQ(std::bit_cast<std::uint32_t>(local.az[i]),
              std::bit_cast<std::uint32_t>(reference.az[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, MigrationBitwiseTest,
    ::testing::Combine(::testing::Values(gpu::LaunchSchedule::kLeafOwner,
                                         gpu::LaunchSchedule::kDeferredStore,
                                         gpu::LaunchSchedule::kSimd),
                       ::testing::Values(1, 8)),
    [](const ::testing::TestParamInfo<std::tuple<gpu::LaunchSchedule, int>>&
           info) {
      const char* name =
          std::get<0>(info.param) == gpu::LaunchSchedule::kLeafOwner
              ? "leafowner"
              : (std::get<0>(info.param) == gpu::LaunchSchedule::kDeferredStore
                     ? "deferred"
                     : "simd");
      return std::string(name) + "_t" +
             std::to_string(std::get<1>(info.param));
    });

// --- RunResult merge policy ---------------------------------------------

TEST(RunResultMerge, LbCountersSumAndPhaseStatsFoldOnce) {
  RunResult a, b;
  a.lb_packets_migrated = 3;
  a.lb_steps = 2;
  a.lb_imbalance_before = 3.0;
  a.lb_imbalance_after = 2.2;
  a.phase_stats = {{"short_range", 1.0, 2.0}};
  b.lb_packets_migrated = 5;
  b.lb_steps = 1;
  b.lb_imbalance_before = 1.5;
  b.lb_imbalance_after = 1.1;
  b.phase_stats = {{"short_range", 3.0, 4.0}, {"exchange", 0.5, 0.75}};
  a.merge(b);
  EXPECT_EQ(a.lb_packets_migrated, 8u);
  EXPECT_EQ(a.lb_steps, 3u);
  EXPECT_DOUBLE_EQ(a.lb_imbalance_before, 4.5);
  EXPECT_DOUBLE_EQ(a.lb_imbalance_after, 3.3);
  ASSERT_EQ(a.phase_stats.size(), 2u);
  EXPECT_EQ(a.phase_stats[0].name, "short_range");
  EXPECT_DOUBLE_EQ(a.phase_stats[0].mean_seconds, 4.0);
  EXPECT_DOUBLE_EQ(a.phase_stats[0].max_seconds, 6.0);
  EXPECT_EQ(a.phase_stats[1].name, "exchange");
}

// --- 4-rank end-to-end acceptance ---------------------------------------

struct ClusteredRun {
  std::map<std::uint64_t, std::array<float, 6>> state;  ///< id -> x,v
  double flop_ratio = 0.0;        ///< executed short-range max/mean
  std::uint64_t packets = 0;      ///< migrated packets, all ranks
  double imbalance_before = 0.0;  ///< run-average decision input
};

// Two Plummer spheres on a 2x2x1 rank grid: ranks 0 and 3 hold the
// cores, ranks 1 and 2 are nearly empty — the canonical short-range
// hot-spot. Gravity-only, tracing off, so every decision is pure census
// and the runs are deterministic machine to machine.
ClusteredRun run_clustered(int threads, gpu::LaunchSchedule schedule,
                           double lb_threshold) {
  ClusteredRun out;
  std::mutex mu;
  comm::World world(4);
  world.run([&](comm::Communicator& comm) {
    SimConfig config;
    config.np = 32;
    config.box = 64.0;
    config.ng = 64;
    config.z_init = 20.0;
    config.z_final = 10.0;
    config.num_pm_steps = 2;
    config.hydro = false;
    config.subgrid_on = false;
    config.bins.max_depth = 2;
    config.threads = threads;
    config.seed = 77;
    config.sph.eta = 0.1f;  // bin width = short-range cutoff, not SPH
    config.gravity.launch.schedule = schedule;
    config.lb.threshold = lb_threshold;
    SimContext ctx(config.threads);
    Simulation sim(ctx, comm, config);

    testsupport::ClusteredIcConfig ic;
    ic.box = config.box;
    ic.count = 3000;
    ic.scale = 4.0;
    ic.seed = 5150;
    ic.center_a = {16.0, 16.0, 32.0};  // core of rank (0,0) on the 2x2x1 grid
    ic.center_b = {48.0, 48.0, 32.0};  // core of rank (1,1)
    // Rank 0 seeds the full cloud; the first exchange distributes it.
    Particles p;
    if (comm.rank() == 0) p = testsupport::clustered_two_sphere_ic(ic);
    sim.initialize_from(std::move(p), 0);
    const auto result = sim.run();
    EXPECT_TRUE(result.completed);

    const double local =
        sim.flops().flops_of(gravity::ShortRangeKernel::kName);
    const double peak = comm.allreduce_scalar(local, comm::ReduceOp::kMax);
    const double total = comm.allreduce_scalar(local, comm::ReduceOp::kSum);
    const auto packets = comm.allreduce_scalar(
        static_cast<std::int64_t>(result.lb_packets_migrated),
        comm::ReduceOp::kSum);

    std::lock_guard<std::mutex> lock(mu);
    out.flop_ratio = peak / (total / comm.size());
    out.packets = static_cast<std::uint64_t>(packets);
    if (result.lb_steps > 0) {
      out.imbalance_before =
          result.lb_imbalance_before / static_cast<double>(result.lb_steps);
    }
    const auto& particles = sim.particles();
    for (std::size_t i = 0; i < particles.size(); ++i) {
      if (!particles.is_owned(i)) continue;
      out.state[particles.id[i]] = {particles.x[i],  particles.y[i],
                                    particles.z[i],  particles.vx[i],
                                    particles.vy[i], particles.vz[i]};
    }
  });
  return out;
}

void expect_bitwise_equal(const ClusteredRun& got, const ClusteredRun& want) {
  ASSERT_EQ(got.state.size(), want.state.size());
  auto it = want.state.begin();
  for (const auto& [id, s] : got.state) {
    ASSERT_EQ(id, it->first);
    for (std::size_t c = 0; c < s.size(); ++c) {
      ASSERT_EQ(std::bit_cast<std::uint32_t>(s[c]),
                std::bit_cast<std::uint32_t>(it->second[c]))
          << "id " << id << " component " << c;
    }
    ++it;
  }
}

TEST(LoadBalanceEndToEnd, BalancedRunBitwiseEqualAndImbalanceDrops) {
  const auto baseline =
      run_clustered(1, gpu::LaunchSchedule::kLeafOwner, /*lb_threshold=*/0.0);
  EXPECT_EQ(baseline.packets, 0u);
  EXPECT_EQ(baseline.state.size(), 3000u);
  // The clustered IC really is imbalanced without the balancer.
  EXPECT_GT(baseline.flop_ratio, 1.3);

  const auto balanced =
      run_clustered(1, gpu::LaunchSchedule::kLeafOwner, /*lb_threshold=*/1.2);
  EXPECT_GT(balanced.packets, 0u);
  EXPECT_GT(balanced.imbalance_before, 1.2);
  // Acceptance: the executed-work imbalance ratio drops by >= 25%.
  EXPECT_LE(balanced.flop_ratio, 0.75 * baseline.flop_ratio);
  // And the particle state is exactly the unbalanced state.
  expect_bitwise_equal(balanced, baseline);
}

TEST(LoadBalanceEndToEnd, BalancedRunsMatchBaselineAcrossSchedulesAndThreads) {
  const auto baseline =
      run_clustered(1, gpu::LaunchSchedule::kLeafOwner, /*lb_threshold=*/0.0);
  std::vector<gpu::LaunchSchedule> schedules{
      gpu::LaunchSchedule::kLeafOwner, gpu::LaunchSchedule::kDeferredStore};
  if (gpu::simd_support().available) {
    schedules.push_back(gpu::LaunchSchedule::kSimd);
  }
  for (const auto schedule : schedules) {
    for (const int threads : {1, 8}) {
      if (schedule == gpu::LaunchSchedule::kLeafOwner && threads == 1) {
        continue;  // covered by the acceptance test above
      }
      SCOPED_TRACE("schedule " + std::to_string(static_cast<int>(schedule)) +
                   " threads " + std::to_string(threads));
      const auto balanced = run_clustered(threads, schedule, 1.2);
      EXPECT_GT(balanced.packets, 0u);
      expect_bitwise_equal(balanced, baseline);
    }
  }
}

}  // namespace
}  // namespace crkhacc::core
