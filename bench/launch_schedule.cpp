// Launch-schedule gate: leaf-owner accumulation vs deferred-store replay.
//
// The leaf-owner scheduler (gpu/launch.h) removes the two taxes of the
// deferred-store design — O(interactions) per-launch store buffers and a
// serial replay on the calling thread — while keeping parallel launches
// bitwise identical to serial. This bench drives the real physics kernels
// (CRKSPH momentum/energy + short-range gravity, warp-split) under both
// schedules at 8 pool threads and gates:
//
//   1. determinism — particle-state checksums equal across schedules,
//      thread counts, and BOTH launch modes (threads=8 == threads=1);
//   2. memory — the owner schedule holds zero store-buffer bytes where
//      the replay schedule holds one captured Accum per store;
//   3. speed — owner vs replay wall time at 8 threads, plus the
//      projected dedicated-lane time (serial remainder + longest worker
//      lane, measured on the thread CPU clock like bench/thread_scaling)
//      since on this substitute machine all workers share one core and
//      the replay tax is the only wall-time difference visible.
//
// --quick shrinks the problem and gates only (1) and (2) — that variant
// runs as a ctest smoke target, so a scheduler regression fails the
// build rather than the nightly. The full run also gates the >= 1.2x
// owner-vs-replay speedup claim (wall or projected).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "core/particles.h"
#include "gpu/launch.h"
#include "gpu/warp.h"
#include "gravity/short_range.h"
#include "mesh/force_split.h"
#include "sph/eos.h"
#include "sph/pair_kernels.h"
#include "sph/solver.h"
#include "tree/chaining_mesh.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/thread_pool.h"

using namespace crkhacc;

namespace {

constexpr double kBox = 8.0;
constexpr float kCutoff = 0.8f;

/// Clustered gas cloud with valid densities and smoothing lengths — the
/// same population shape as bench/ablation_warp_split.
struct Fixture {
  Particles particles;
  tree::ChainingMesh mesh;
  sph::SphScratch scratch;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;

  explicit Fixture(std::size_t count)
      : mesh(
            [] {
              comm::Box3 box;
              box.lo = {0, 0, 0};
              box.hi = {kBox, kBox, kBox};
              return box;
            }(),
            {2.0, 64}) {
    SplitMix64 rng(7);
    for (std::size_t i = 0; i < count; ++i) {
      float x, y, z;
      if (i % 2) {
        x = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        y = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        z = static_cast<float>(4.0 + 0.8 * rng.next_gaussian());
        x = std::clamp(x, 0.01f, static_cast<float>(kBox) - 0.01f);
        y = std::clamp(y, 0.01f, static_cast<float>(kBox) - 0.01f);
        z = std::clamp(z, 0.01f, static_cast<float>(kBox) - 0.01f);
      } else {
        x = static_cast<float>(rng.next_double() * kBox);
        y = static_cast<float>(rng.next_double() * kBox);
        z = static_cast<float>(rng.next_double() * kBox);
      }
      const auto idx =
          particles.push_back(i, Species::kGas, x, y, z, 0, 0, 0, 0.5f);
      particles.hsml[idx] = 0.35f;
      particles.u[idx] = 50.0f;
      particles.rho[idx] = 8.0f;
    }
    mesh.build(particles);
    pairs = mesh.interaction_pairs(kCutoff);
    scratch.resize(particles.size());
    for (std::size_t i = 0; i < particles.size(); ++i) {
      scratch.volume[i] = particles.mass[i] / particles.rho[i];
      scratch.press[i] = sph::pressure(particles.rho[i], particles.u[i]);
      scratch.cs[i] = sph::sound_speed(particles.u[i]);
    }
  }
};

const mesh::ForceSplit& force_split() {
  static const mesh::ForceSplit split(0.15);
  return split;
}

struct RunResult {
  gpu::LaunchStats stats;       ///< both kernels, accumulated
  std::uint32_t checksum = 0;   ///< accumulated ax/ay/az/du
};

/// One full evaluation (momentum/energy + gravity) on fresh copies of the
/// particle state, so the accumulated result is comparable bitwise.
RunResult run_once(const Fixture& f, const gpu::LaunchPlan& plan,
                   const gpu::LaunchConfig& config, util::ThreadPool* pool) {
  Particles p = f.particles;
  sph::SphScratch scratch = f.scratch;
  RunResult r;
  {
    sph::MomentumEnergyKernel kernel(p, scratch, nullptr,
                                     sph::ViscosityParams{}, 1.0f);
    r.stats += gpu::launch_pair_kernel(kernel, f.mesh, plan, config, pool);
  }
  {
    gravity::ShortRangeKernel kernel(p, nullptr, &force_split(), 43.0f, 0.05f,
                                     kCutoff);
    r.stats += gpu::launch_pair_kernel(kernel, f.mesh, plan, config, pool);
  }
  std::uint32_t crc = 0;
  crc = crc32(p.ax.data(), p.ax.size() * sizeof(float), crc);
  crc = crc32(p.ay.data(), p.ay.size() * sizeof(float), crc);
  crc = crc32(p.az.data(), p.az.size() * sizeof(float), crc);
  crc = crc32(p.du.data(), p.du.size() * sizeof(float), crc);
  r.checksum = crc;
  return r;
}

const char* schedule_name(gpu::LaunchSchedule s) {
  return s == gpu::LaunchSchedule::kLeafOwner ? "leaf_owner" : "deferred_store";
}

struct TimedPoint {
  double wall = 0.0;           ///< summed launch wall seconds
  double region_wall = 0.0;    ///< pool wall time inside parallel regions
  double busy_total = 0.0;     ///< summed worker CPU-clock busy seconds
  double critical_path = 0.0;  ///< longest worker lane
  std::uint64_t store_buffer_bytes = 0;
  std::uint64_t interactions = 0;

  /// Dedicated-lane projection: the serial remainder (replay, merges —
  /// everything outside parallel regions) plus the longest worker lane.
  double projected() const {
    return std::max(wall - region_wall, 0.0) + critical_path;
  }
};

TimedPoint time_schedule(const Fixture& f, const gpu::LaunchPlan& plan,
                         gpu::LaunchSchedule schedule, util::ThreadPool& pool,
                         int reps) {
  gpu::LaunchConfig config;
  config.schedule = schedule;
  TimedPoint point;
  // Timing reuses one particle copy across reps: the accumulators keep
  // growing, which changes no code path and nothing we time.
  Particles p = f.particles;
  sph::SphScratch scratch = f.scratch;
  sph::MomentumEnergyKernel momentum(p, scratch, nullptr,
                                     sph::ViscosityParams{}, 1.0f);
  gravity::ShortRangeKernel short_range(p, nullptr, &force_split(), 43.0f,
                                        0.05f, kCutoff);
  pool.reset_stats();
  for (int rep = 0; rep < reps; ++rep) {
    const auto m =
        gpu::launch_pair_kernel(momentum, f.mesh, plan, config, &pool);
    const auto g =
        gpu::launch_pair_kernel(short_range, f.mesh, plan, config, &pool);
    point.wall += m.seconds + g.seconds;
    point.interactions += m.interactions + g.interactions;
    point.store_buffer_bytes = std::max(
        {point.store_buffer_bytes, m.store_buffer_bytes, g.store_buffer_bytes});
  }
  const auto& stats = pool.stats();
  point.region_wall = stats.wall_seconds;
  for (double b : stats.busy_seconds) point.busy_total += b;
  point.critical_path = stats.critical_path_seconds();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::size_t count = quick ? 1500 : 4000;
  const int reps = quick ? 2 : 8;

  bench::print_header(
      std::string("Launch-schedule gate — leaf-owner vs deferred-store") +
      (quick ? " (--quick)" : ""));
  Fixture f(count);
  const gpu::LaunchPlan plan(f.mesh, f.pairs);
  std::printf("particles %zu, leaves %zu, pairs %zu, plan owners %zu "
              "(entries %zu)\n\n",
              f.particles.size(), f.mesh.num_leaves(), f.pairs.size(),
              plan.num_owners(), plan.num_entries());

  util::ThreadPool pool(8);
  bool deterministic = true;

  // Gate 1: threads=8 bitwise identical to threads=1 under both
  // schedules, for BOTH launch modes.
  for (const auto mode : {gpu::LaunchMode::kWarpSplit, gpu::LaunchMode::kNaive}) {
    gpu::LaunchConfig config;
    config.mode = mode;
    const auto serial = run_once(f, plan, config, nullptr);
    for (const auto schedule : {gpu::LaunchSchedule::kLeafOwner,
                                gpu::LaunchSchedule::kDeferredStore}) {
      config.schedule = schedule;
      const auto threaded = run_once(f, plan, config, &pool);
      const bool match = threaded.checksum == serial.checksum &&
                         threaded.stats.interactions ==
                             serial.stats.interactions;
      deterministic = deterministic && match;
      std::printf("determinism %-10s %-15s serial %08x vs 8-thread %08x  %s\n",
                  mode == gpu::LaunchMode::kNaive ? "naive" : "warp_split",
                  schedule_name(schedule), serial.checksum, threaded.checksum,
                  match ? "OK" : "MISMATCH");
    }
  }

  // Gates 2 + 3: transient store memory and wall time at 8 threads.
  const auto owner =
      time_schedule(f, plan, gpu::LaunchSchedule::kLeafOwner, pool, reps);
  const auto deferred =
      time_schedule(f, plan, gpu::LaunchSchedule::kDeferredStore, pool, reps);

  std::printf("\n%-16s %-10s %-12s %-12s %-13s %-16s\n", "schedule",
              "wall[s]", "region[s]", "busy[s]", "critical[s]",
              "store-buffer[B]");
  bench::print_rule();
  for (const auto* pt : {&owner, &deferred}) {
    std::printf("%-16s %-10.3f %-12.3f %-12.3f %-13.3f %-16llu\n",
                pt == &owner ? "leaf_owner" : "deferred_store", pt->wall,
                pt->region_wall, pt->busy_total, pt->critical_path,
                static_cast<unsigned long long>(pt->store_buffer_bytes));
  }

  const bool memory_ok =
      owner.store_buffer_bytes == 0 && deferred.store_buffer_bytes > 0;
  const double wall_speedup =
      owner.wall > 0.0 ? deferred.wall / owner.wall : 1.0;
  const double projected_speedup =
      owner.projected() > 0.0 ? deferred.projected() / owner.projected() : 1.0;
  std::printf(
      "\nowner vs replay at 8 threads: %.2fx wall, %.2fx projected on "
      "dedicated lanes\n(single-core substitute machine: workers share one "
      "core, so the projection — serial remainder + longest worker lane —\n"
      " is the dedicated-lane wall time; the replay schedule's remainder "
      "carries its serial store replay.)\n",
      wall_speedup, projected_speedup);
  std::printf("transient store memory: replay buffers %llu bytes "
              "(O(interactions): %llu interactions/launch), owner 0 bytes\n",
              static_cast<unsigned long long>(deferred.store_buffer_bytes),
              static_cast<unsigned long long>(deferred.interactions /
                                              (2 * std::max(reps, 1))));

  std::printf("\ngates: determinism %s, store-memory %s",
              deterministic ? "PASS" : "FAIL", memory_ok ? "PASS" : "FAIL");
  bool ok = deterministic && memory_ok;
  if (!quick) {
    const bool speed_ok =
        std::max(wall_speedup, projected_speedup) >= 1.2;
    std::printf(", speedup>=1.2x %s", speed_ok ? "PASS" : "FAIL");
    ok = ok && speed_ok;
  }
  std::printf("\n");

  std::printf(
      "\nJSON: {\"bench\": \"launch_schedule\", \"quick\": %s, "
      "\"wall_speedup\": %.4f, \"projected_speedup\": %.4f, "
      "\"owner_store_buffer_bytes\": %llu, "
      "\"deferred_store_buffer_bytes\": %llu, \"deterministic\": %s}\n",
      quick ? "true" : "false", wall_speedup, projected_speedup,
      static_cast<unsigned long long>(owner.store_buffer_bytes),
      static_cast<unsigned long long>(deferred.store_buffer_bytes),
      deterministic ? "true" : "false");
  return ok ? 0 : 1;
}
