file(REMOVE_RECURSE
  "CMakeFiles/halo_finding.dir/halo_finding.cpp.o"
  "CMakeFiles/halo_finding.dir/halo_finding.cpp.o.d"
  "halo_finding"
  "halo_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
