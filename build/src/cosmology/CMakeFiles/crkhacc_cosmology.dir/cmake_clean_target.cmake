file(REMOVE_RECURSE
  "libcrkhacc_cosmology.a"
)
