// Wire format for migrated short-range work packets.
//
// Rank-level dynamic load balancing (core/load_balancer.h) ships whole
// owner-leaf work packets from an overloaded rank to an underloaded
// neighbor for one substep: the ghost data of the migrated leaves (and
// of every partner leaf their tiles read) travels out, the resulting
// owner-slot accelerations travel back, and the particles themselves
// never move. This header owns only the byte-level protocol — the
// structs, their (de)serialization, and the tagged send/recv plumbing —
// so the comm layer stays ignorant of meshes and launch plans (those
// live in tree/ and gpu/; the packet extraction that fills these
// structs lives in core/load_balancer.cpp).
//
// Leaf and task indices inside a packet are LOCAL: leaf l refers to the
// l-th leaf shipped in this packet (particle range
// [leaf_begin[l], leaf_begin[l+1]) of the flat arrays), in the donor's
// ascending global-leaf order. The helper rebuilds an adoption mesh
// (tree::ChainingMesh::adopt) and a launch plan
// (gpu::LaunchPlan::from_owner_tasks) directly from these CSRs, so the
// tile walk it executes is positionally identical to the walk the donor
// would have run — the load-balancer's bitwise contract rests on that.
#pragma once

#include <cstdint>
#include <vector>

#include "comm/world.h"

namespace crkhacc::comm {

/// Point-to-point tags of the migration protocol. One request and one
/// reply per (donor, helper, substep); FIFO matching by (source, tag)
/// keeps consecutive substeps unambiguous without per-substep tags.
inline constexpr int kTagLbWork = 7301;
inline constexpr int kTagLbReply = 7302;

/// Side of a cross-pair tile an owner task evaluates — mirrors
/// gpu::LaunchPlan::Side (0 = both/self, 1 = i-side, 2 = j-side). Kept
/// as a raw byte here so the wire format does not depend on gpu/.
using WorkEntrySide = std::uint8_t;

/// One substep's migrated owner-leaf work from one donor.
struct WorkPacket {
  std::uint32_t donor = 0;    ///< sending rank (sanity check)
  std::uint32_t substep = 0;  ///< donor's fine-substep index
  double a_mid = 0.0;         ///< substep-midpoint scale factor

  /// Particle ranges of the shipped leaves: leaf l owns flat-array slots
  /// [leaf_begin[l], leaf_begin[l+1]), in the donor's leaf-perm order.
  std::vector<std::uint32_t> leaf_begin;  ///< size = leaves + 1
  std::vector<float> x, y, z, mass;       ///< per shipped particle

  /// Migrated owner tasks (CSR, in the donor's plan order): task t owns
  /// local leaf task_owner[t] and evaluates entries
  /// [task_entry_begin[t], task_entry_begin[t+1]) — (local partner leaf,
  /// side) tiles in the donor's per-owner pair order.
  std::vector<std::uint32_t> task_owner;
  std::vector<std::uint32_t> task_entry_begin;  ///< size = tasks + 1
  std::vector<std::uint32_t> entry_partner;
  std::vector<WorkEntrySide> entry_side;

  std::size_t num_leaves() const {
    return leaf_begin.empty() ? 0 : leaf_begin.size() - 1;
  }
  std::size_t num_particles() const { return x.size(); }
  std::size_t num_tasks() const { return task_owner.size(); }
};

/// The helper's answer: accelerations of every particle slot of every
/// migrated owner leaf, concatenated in the packet's task order (task
/// t's owner leaf contributes its leaf_begin range's worth of slots).
/// Slots map back to donor particle indices through the donor's own
/// mesh permutation, so no ids travel.
struct WorkReply {
  std::uint32_t substep = 0;
  std::vector<float> ax, ay, az;
};

std::vector<std::uint8_t> encode_work_packet(const WorkPacket& packet);
WorkPacket decode_work_packet(const std::vector<std::uint8_t>& bytes);

std::vector<std::uint8_t> encode_work_reply(const WorkReply& reply);
WorkReply decode_work_reply(const std::vector<std::uint8_t>& bytes);

/// Non-blocking deposit into the helper's mailbox (send_bytes semantics).
void send_work_packet(Communicator& comm, int helper, const WorkPacket& packet);
/// Blocking receive of the donor's next packet (FIFO per donor).
WorkPacket recv_work_packet(Communicator& comm, int donor);

void send_work_reply(Communicator& comm, int donor, const WorkReply& reply);
WorkReply recv_work_reply(Communicator& comm, int helper);

}  // namespace crkhacc::comm
