
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_subgrid.cpp" "tests/CMakeFiles/test_subgrid.dir/test_subgrid.cpp.o" "gcc" "tests/CMakeFiles/test_subgrid.dir/test_subgrid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/subgrid/CMakeFiles/crkhacc_subgrid.dir/DependInfo.cmake"
  "/root/repo/build/src/tree/CMakeFiles/crkhacc_tree.dir/DependInfo.cmake"
  "/root/repo/build/src/cosmology/CMakeFiles/crkhacc_cosmology.dir/DependInfo.cmake"
  "/root/repo/build/src/fft/CMakeFiles/crkhacc_fft.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/crkhacc_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/crkhacc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
