// Tests for the distributed PM solver: deposit, Poisson solve, force
// interpolation, and the PM + short-range force-split accuracy.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.h"
#include "core/particles.h"
#include "cosmology/units.h"
#include "gpu/device.h"
#include "gravity/short_range.h"
#include "mesh/pm_solver.h"
#include "tree/chaining_mesh.h"
#include "util/rng.h"

namespace crkhacc::mesh {
namespace {

TEST(CicAxis, WeightsAndCells) {
  // Cell centers at (i + 0.5) * cell. A particle exactly on a center has
  // full weight in that cell.
  const auto at_center = cic_axis(2.5, 1.0);
  EXPECT_EQ(at_center.cell, 2);
  EXPECT_NEAR(at_center.w_hi, 0.0, 1e-12);
  const auto between = cic_axis(3.0, 1.0);
  EXPECT_EQ(between.cell, 2);
  EXPECT_NEAR(between.w_hi, 0.5, 1e-12);
  const auto negative = cic_axis(0.2, 1.0);
  EXPECT_EQ(negative.cell, -1);  // wraps periodically at deposit time
  EXPECT_NEAR(negative.w_hi, 0.7, 1e-12);
}

TEST(PmSolver, DepositConservesMass) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(comm.size(), 16.0);
    PMSolver pm(comm, decomp, PMConfig{16, 16.0, 1.5});
    Particles p;
    if (comm.rank() == 0) {
      SplitMix64 rng(5);
      for (int i = 0; i < 50; ++i) {
        p.push_back(static_cast<std::uint64_t>(i), Species::kDarkMatter,
                    static_cast<float>(rng.next_double() * 16.0),
                    static_cast<float>(rng.next_double() * 16.0),
                    static_cast<float>(rng.next_double() * 16.0), 0, 0, 0,
                    2.0f);
      }
    }
    const auto density = pm.deposit(comm, p);
    const double cell_volume = 1.0;
    double local_mass = 0.0;
    for (double d : density) local_mass += d * cell_volume;
    const double total = comm.allreduce_scalar(local_mass, comm::ReduceOp::kSum);
    EXPECT_NEAR(total, 100.0, 1e-6);
    EXPECT_NEAR(pm.mean_density(), 100.0 / (16.0 * 16.0 * 16.0), 1e-9);
  });
}

TEST(PmSolver, PointMassDepositsToSingleCellAtCenter) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(1, 8.0);
    PMSolver pm(comm, decomp, PMConfig{8, 8.0, 1.5});
    Particles p;
    // Cell centers at (i + 0.5): put the particle exactly on (2.5, 3.5, 4.5).
    p.push_back(0, Species::kDarkMatter, 2.5f, 3.5f, 4.5f, 0, 0, 0, 8.0f);
    const auto density = pm.deposit(comm, p);
    const std::size_t ng = 8;
    EXPECT_NEAR(density[(4 * ng + 3) * ng + 2], 8.0, 1e-5);
    double total = 0.0;
    for (double d : density) total += d;
    EXPECT_NEAR(total, 8.0, 1e-5);
  });
}

TEST(PmSolver, UniformLatticeGivesNearZeroForce) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(1, 16.0);
    PMSolver pm(comm, decomp, PMConfig{16, 16.0, 1.5});
    Particles p;
    std::uint64_t id = 0;
    for (int iz = 0; iz < 8; ++iz) {
      for (int iy = 0; iy < 8; ++iy) {
        for (int ix = 0; ix < 8; ++ix) {
          p.push_back(id++, Species::kDarkMatter, ix * 2.0f + 1.0f,
                      iy * 2.0f + 1.0f, iz * 2.0f + 1.0f, 0, 0, 0, 1.0f);
        }
      }
    }
    pm.apply(comm, p, 1.0);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_NEAR(p.ax[i], 0.0, 1e-4);
      EXPECT_NEAR(p.ay[i], 0.0, 1e-4);
      EXPECT_NEAR(p.az[i], 0.0, 1e-4);
    }
  });
}

TEST(PmSolver, ForceSplitRecoversNewtonianPairForce) {
  // Two particles at several separations: the PM mesh force plus the
  // split short-range pair force must reproduce G m / r^2 (up to small
  // periodic-image and grid corrections).
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const double box = 64.0;
    const comm::CartDecomposition decomp(1, box);
    PMSolver pm(comm, decomp, PMConfig{64, box, 1.8});
    const double cutoff = pm.split().cutoff();

    for (double r : {2.0, 3.5, 5.0, 8.0}) {
      Particles p;
      p.push_back(0, Species::kDarkMatter, 20.25f, 20.25f, 20.25f, 0, 0, 0,
                  100.0f);
      p.push_back(1, Species::kDarkMatter, static_cast<float>(20.25 + r),
                  20.25f, 20.25f, 0, 0, 0, 100.0f);
      // Long-range mesh piece.
      pm.apply(comm, p, 1.0);
      // Work in "G-free" units: divide by G m.
      const double mesh_part = p.ax[1] / (units::kGravity * 100.0);
      const double pair_part =
          (r < cutoff) ? -pm.split().short_range_factor(r) / (r * r) : 0.0;
      const double total = mesh_part + pair_part;
      const double newton = -1.0 / (r * r);
      EXPECT_NEAR(total, newton, 0.06 * std::abs(newton))
          << "separation " << r;
    }
  });
}

TEST(PmSolver, ForceIndependentOfRankCount) {
  // The same particle cloud split over 1 vs 8 ranks gets the same mesh
  // forces (the distributed deposit/solve/interpolate pipeline is exact).
  const double box = 16.0;
  SplitMix64 rng(31);
  std::vector<std::array<float, 3>> cloud(64);
  for (auto& pos : cloud) {
    for (int d = 0; d < 3; ++d) {
      pos[d] = static_cast<float>(rng.next_double() * box);
    }
  }

  auto forces_with_ranks = [&](int ranks) {
    std::vector<std::array<float, 3>> forces(cloud.size());
    std::mutex mutex;
    comm::World world(ranks);
    world.run([&](comm::Communicator& comm) {
      const comm::CartDecomposition decomp(comm.size(), box);
      PMSolver pm(comm, decomp, PMConfig{16, box, 1.5});
      Particles p;
      for (std::size_t i = 0; i < cloud.size(); ++i) {
        const std::array<double, 3> pos{cloud[i][0], cloud[i][1], cloud[i][2]};
        if (decomp.owner_of(pos) != comm.rank()) continue;
        p.push_back(i, Species::kDarkMatter, cloud[i][0], cloud[i][1],
                    cloud[i][2], 0, 0, 0, 1.5f);
      }
      pm.apply(comm, p, 0.5);
      std::lock_guard<std::mutex> lock(mutex);
      for (std::size_t k = 0; k < p.size(); ++k) {
        forces[p.id[k]] = {p.ax[k], p.ay[k], p.az[k]};
      }
    });
    return forces;
  };

  const auto serial = forces_with_ranks(1);
  const auto parallel = forces_with_ranks(8);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    for (int d = 0; d < 3; ++d) {
      const double scale = std::abs(serial[i][d]) + 1e-4;
      EXPECT_NEAR(parallel[i][d], serial[i][d], 1e-4 * scale);
    }
  }
}

TEST(PmSolver, GhostParticlesReceiveForces) {
  comm::World world(1);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(1, 16.0);
    PMSolver pm(comm, decomp, PMConfig{16, 16.0, 1.5});
    Particles p;
    p.push_back(0, Species::kDarkMatter, 8.0f, 8.0f, 8.0f, 0, 0, 0, 500.0f);
    // Ghost replica outside the box (unwrapped image coordinate).
    const std::size_t g =
        p.push_back(1, Species::kDarkMatter, -1.0f, 8.0f, 8.0f, 0, 0, 0, 1.0f);
    p.ghost[g] = 1;
    pm.apply(comm, p, 2.0);
    // The ghost must feel the central mass pulling it (periodically) —
    // nonzero interpolated force, no crash on out-of-box coordinates.
    EXPECT_TRUE(std::isfinite(p.ax[g]));
    EXPECT_NE(p.ax[g], 0.0f);
  });
}

TEST(PmSolver, OverdensitySpectrumFlatForUniformField) {
  comm::World world(2);
  world.run([](comm::Communicator& comm) {
    const comm::CartDecomposition decomp(comm.size(), 8.0);
    PMSolver pm(comm, decomp, PMConfig{8, 8.0, 1.5});
    Particles p;
    // Uniform lattice on cell centers, all owned by the right ranks.
    for (int iz = 0; iz < 8; ++iz) {
      for (int iy = 0; iy < 8; ++iy) {
        for (int ix = 0; ix < 8; ++ix) {
          const std::array<double, 3> pos{ix + 0.5, iy + 0.5, iz + 0.5};
          if (decomp.owner_of(pos) != comm.rank()) continue;
          p.push_back(static_cast<std::uint64_t>((iz * 8 + iy) * 8 + ix),
                      Species::kDarkMatter, static_cast<float>(pos[0]),
                      static_cast<float>(pos[1]), static_cast<float>(pos[2]),
                      0, 0, 0, 1.0f);
        }
      }
    }
    const auto spectrum = pm.overdensity_spectrum(comm, p);
    for (const auto& mode : spectrum) {
      EXPECT_NEAR(std::abs(mode), 0.0, 1e-6);
    }
  });
}

}  // namespace
}  // namespace crkhacc::mesh
